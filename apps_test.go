package kdchoice

import (
	"reflect"
	"strings"
	"sync"
	"testing"
)

// studyCells returns a small mixed-substrate grid: scheduler, storage and
// protocol cells in one study.
func studyCells() []AppCell {
	return []AppCell{
		SchedulerCell{Workers: 40, K: 4, D: 8, Jobs: 300, Rho: 0.7},
		SchedulerCell{Workers: 40, K: 4, D: 8, Jobs: 300, Rho: 0.7, Policy: SparrowBinding},
		SchedulerCell{Workers: 40, K: 4, Jobs: 300, Rho: 0.7, Policy: PerTaskChoice},
		StorageCell{Servers: 64, Files: 1500, K: 3, Distinct: true},
		StorageCell{Servers: 64, Files: 1500, K: 3, Distinct: true, Policy: PerCopyChoice},
		ProtocolCell{Servers: 128, K: 2, D: 4, Rounds: 64, Pipeline: 8, NetDelay: ExponentialDist(1)},
	}
}

// TestStudyWorkerCountInvariance is the harness's core determinism claim:
// the report must be byte-identical for any worker count. It runs under
// -race in scripts/ci.sh.
func TestStudyWorkerCountInvariance(t *testing.T) {
	base := Study{Cells: studyCells(), Runs: 3, Seed: 99}
	serial := base
	serial.Workers = 1
	parallel := base
	parallel.Workers = 8
	a, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("worker count changed the study report")
	}
}

// TestStudyReproducible: same study value, same report.
func TestStudyReproducible(t *testing.T) {
	s := Study{Cells: studyCells(), Runs: 2, Seed: 7, Workers: 4}
	a, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same study produced different reports")
	}
}

// TestStudyRunSeedStreams: distinct cells and distinct runs draw from
// different streams; run 0 keeps the cell seed (single-run studies
// reproduce direct substrate runs).
func TestStudyRunSeedStreams(t *testing.T) {
	if appRunSeed(42, 0) != 42 {
		t.Fatal("run 0 must keep the cell seed")
	}
	if appRunSeed(42, 1) == 42 {
		t.Fatal("run 1 must not reuse the cell seed")
	}
	rep, err := Study{Cells: studyCells()[:1], Runs: 4, Seed: 5}.Run()
	if err != nil {
		t.Fatal(err)
	}
	runs := rep.Cells[0].Runs
	distinct := make(map[float64]bool)
	for _, m := range runs {
		distinct[m.MeanResponse] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("4 runs produced %d distinct outcomes; seed streams look shared", len(distinct))
	}
}

// TestStudyExplicitSeedWins: a cell's explicit seed pins its stream
// regardless of position or root seed.
func TestStudyExplicitSeedWins(t *testing.T) {
	cell := SchedulerCell{Workers: 32, K: 2, D: 4, Jobs: 200, Rho: 0.6, Seed: 1234}
	a, err := Study{Cells: []AppCell{cell}, Seed: 1}.Run()
	if err != nil {
		t.Fatal(err)
	}
	pad := StorageCell{Servers: 32, Files: 100, K: 2, Distinct: true}
	b, err := Study{Cells: []AppCell{pad, cell}, Seed: 999}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cells[0].Runs, b.Cells[1].Runs) {
		t.Fatal("explicit cell seed did not pin the outcome")
	}
}

// TestStudyValidation: empty studies, nil cells and invalid cells fail
// eagerly with an error naming the cell.
func TestStudyValidation(t *testing.T) {
	if _, err := (Study{}).Run(); err == nil {
		t.Fatal("empty study accepted")
	}
	if _, err := (Study{Cells: []AppCell{nil}}).Run(); err == nil {
		t.Fatal("nil cell accepted")
	}
	if _, err := (Study{Cells: studyCells(), Runs: -1}).Run(); err == nil {
		t.Fatal("negative runs accepted")
	}
	bad := Study{Cells: []AppCell{
		SchedulerCell{Workers: 10, K: 4, D: 8, Jobs: 100, Rho: 0.5},
		SchedulerCell{Workers: 10, K: 4, D: 4, Jobs: 100, Rho: 0.5}, // D <= K
	}}
	_, err := bad.Run()
	if err == nil {
		t.Fatal("invalid cell accepted")
	}
	if !strings.Contains(err.Error(), "cell 1") {
		t.Fatalf("error does not name the failing cell: %v", err)
	}
}

// TestStudyDefaults: zero-value knobs resolve to the documented defaults.
func TestStudyDefaults(t *testing.T) {
	rep, err := Study{Cells: []AppCell{
		SchedulerCell{K: 2, Jobs: 100},
		StorageCell{K: 2, Files: 200, Distinct: true},
		ProtocolCell{Servers: 64, K: 2, D: 4},
	}, Seed: 3}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Cells[0].Runs[0].Units; got != 100 {
		t.Fatalf("scheduler units %d, want 100 jobs", got)
	}
	// Storage default D = K+1: messages per file = 3 probes.
	if mpu := rep.Cells[1].MessagesPerUnit; mpu != 3 {
		t.Fatalf("storage msgs/file %v, want 3 (d = k+1)", mpu)
	}
	// Protocol default Rounds = Servers/K: 32 rounds of 2 balls.
	if got := rep.Cells[2].Runs[0].Units; got != 64 {
		t.Fatalf("protocol units %d, want 64 balls", got)
	}
	if pm := rep.Cells[2].Runs[0].ProbeMessages; pm != 32*4 {
		t.Fatalf("protocol probe messages %d, want d x rounds = 128", pm)
	}
}

// TestStudyObservers: per-(cell, run) observers see every substrate round,
// and observation does not change the report.
func TestStudyObservers(t *testing.T) {
	cells := []AppCell{
		SchedulerCell{Workers: 32, K: 2, D: 4, Jobs: 150, Rho: 0.6},
		StorageCell{Servers: 32, Files: 120, K: 2, Distinct: true},
		ProtocolCell{Servers: 64, K: 2, D: 4, Rounds: 40},
	}
	wantRounds := []int{150, 120, 40}
	plain, err := Study{Cells: cells, Runs: 2, Seed: 11}.Run()
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	counts := make(map[[2]int]int)
	observed, err := Study{Cells: cells, Runs: 2, Seed: 11,
		Observe: func(cell, run int) []Observer {
			return []Observer{ObserverFunc(func(e RoundEvent) {
				if e.Round < 1 || e.Bins < 1 || e.Balls < 1 {
					t.Errorf("cell %d run %d: malformed event %+v", cell, run, e)
				}
				mu.Lock()
				counts[[2]int{cell, run}]++
				mu.Unlock()
			})}
		}}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Fatal("observers changed the study report")
	}
	for cell := range cells {
		for run := 0; run < 2; run++ {
			if got := counts[[2]int{cell, run}]; got != wantRounds[cell] {
				t.Fatalf("cell %d run %d: observed %d rounds, want %d", cell, run, got, wantRounds[cell])
			}
		}
	}
}

// TestStudyTimeSeriesRecorder: the existing public observers compose with
// event-driven substrates — the trajectory of a protocol cell is visible
// round by round.
func TestStudyTimeSeriesRecorder(t *testing.T) {
	recorders := make([]*TimeSeriesRecorder, 1)
	_, err := Study{
		Cells: []AppCell{ProtocolCell{Servers: 64, K: 2, D: 4, Rounds: 32}},
		Observe: func(cell, run int) []Observer {
			recorders[run] = NewTimeSeriesRecorder(1)
			return []Observer{recorders[run]}
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	pts := recorders[0].Points()
	if len(pts) != 32 {
		t.Fatalf("recorded %d points, want 32", len(pts))
	}
	last, _ := recorders[0].Last()
	if last.Balls != 64 || last.Messages == 0 {
		t.Fatalf("final trajectory point inconsistent: %+v", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Messages <= pts[i-1].Messages {
			t.Fatal("message trajectory not increasing")
		}
	}
}

// TestStudySingleRunMatchesDirectSubstrate: run 0 of a pinned-seed protocol
// cell must equal a direct netsim-style run through the same public path —
// exercised via two studies sharing the explicit seed but different root
// seeds and runs counts.
func TestStudySingleRunMatchesDirectSubstrate(t *testing.T) {
	cell := ProtocolCell{Servers: 128, K: 2, D: 4, Rounds: 64, Seed: 77}
	one, err := Study{Cells: []AppCell{cell}, Seed: 1}.Run()
	if err != nil {
		t.Fatal(err)
	}
	many, err := Study{Cells: []AppCell{cell}, Runs: 3, Seed: 2}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one.Cells[0].Runs[0], many.Cells[0].Runs[0]) {
		t.Fatal("run 0 depends on the runs count or root seed despite an explicit cell seed")
	}
}

// TestStorageSystemLifecycle: the interactive handle supports the failure
// injection scenario end to end on the public surface.
func TestStorageSystemLifecycle(t *testing.T) {
	sys, err := NewStorageSystem(StorageCell{Servers: 64, Files: 2000, K: 3, Distinct: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sys.IngestAll()
	if sys.Files() != 2000 {
		t.Fatalf("files %d", sys.Files())
	}
	if sys.SearchCost() != 4 {
		t.Fatalf("search cost %d, want d = k+1 = 4", sys.SearchCost())
	}
	moved := 0
	for sv := 0; sv < 6; sv++ {
		moved += sys.FailServer(sv)
	}
	if moved == 0 {
		t.Fatal("no copies re-replicated after killing 6 servers")
	}
	if err := sys.ReplicationOK(); err != nil {
		t.Fatal(err)
	}
	if sys.Imbalance() < 1 {
		t.Fatalf("imbalance %v < 1", sys.Imbalance())
	}
	if g := sys.Gini(); g < 0 || g > 1 {
		t.Fatalf("gini %v outside [0,1]", g)
	}
	if len(sys.Objects()) != 64 {
		t.Fatal("objects length")
	}
	if len(sys.FileServers(0)) != 3 {
		t.Fatal("file servers length")
	}
	if _, err := NewStorageSystem(StorageCell{Servers: 4, Files: 10, K: 9, Distinct: true}); err == nil {
		t.Fatal("invalid storage cell accepted")
	}
}

// TestStudyLabels: derived labels identify substrate, policy and geometry;
// explicit labels win.
func TestStudyLabels(t *testing.T) {
	for _, tc := range []struct {
		cell AppCell
		want string
	}{
		{SchedulerCell{K: 4}, "sched/batch-kd k=4 d=8 n=100"},
		{SchedulerCell{K: 4, Policy: SparrowBinding}, "sched/late-binding k=4 d=8 n=100"},
		{StorageCell{K: 3}, "store/kd k=3 d=4 n=256"},
		{ProtocolCell{Servers: 64, K: 2, D: 4}, "proto/kd k=2 d=4 n=64 pipe=1"},
		{ProtocolCell{Servers: 64, K: 2, D: 4, Pipeline: 16, Label: "deep"}, "deep"},
	} {
		if got := tc.cell.appLabel(); got != tc.want {
			t.Fatalf("label %q, want %q", got, tc.want)
		}
	}
}
