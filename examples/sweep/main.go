// Sweep: map the paper's whole (k, d) parameter space in one call.
//
// Sweep builds the cross product of bin counts, k values, d values and
// policies, drops the grid points the process rejects (k >= d — the blank
// cells of Table 1), and runs every cell × run on one shared bounded worker
// pool with deterministic per-(cell, run) random streams. The Report then
// answers cross-cell questions directly: here, the message-cost/max-load
// frontier of Theorem 1 over a 3×4 grid.
//
// Run with:
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	kdchoice "repro"
)

func main() {
	const n = 1 << 14

	report, err := kdchoice.Sweep{
		N:           []int{n},
		K:           []int{1, 2, 8},
		D:           []int{2, 4, 9, 17},
		Runs:        10,
		Seed:        7,
		Workers:     0,    // GOMAXPROCS
		SkipInvalid: true, // drop k >= d grid points
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("swept %d valid cells of the 3x4 (k,d) rectangle at n = %d\n\n", len(report.Cells), n)
	fmt.Printf("%-18s  %10s  %12s  %12s\n", "cell", "mean max", "probes/ball", "distinct max")
	for _, p := range report.TradeoffCurve() {
		cell := report.Find(p.Policy, p.Bins, p.K, p.D)
		fmt.Printf("%-18s  %10.2f  %12.3f  %v\n", p.Label, p.MeanMaxLoad, p.MessagesPerBall, cell.DistinctMax)
	}

	fmt.Println("\nEvery point is one (k,d) operating mode; scanning down the curve shows")
	fmt.Println("what max-load reduction each extra probe per ball buys — the paper's")
	fmt.Println("Theorem 1 tradeoff, measured rather than proved.")
}
