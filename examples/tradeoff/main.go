// Tradeoff: pick (k, d) for your cluster using the paper's Theorem 1.
//
// The paper's punchline is that (k,d)-choice spans the whole spectrum
// between single choice (1 probe/ball, ~ln n/ln ln n max load) and d-choice
// (d probes/ball, ~ln ln n/ln d max load), with two sweet spots:
//
//   - d = 2k, k = polylog n  -> constant max load at 2 probes per ball;
//   - d = k + ln n, k = ln²n -> o(ln ln n) max load at ~1 probe per ball.
//
// This example sweeps the frontier at a fixed n and prints max load vs
// message cost so you can pick your operating point.
//
// Run with:
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"math"

	kdchoice "repro"
)

func main() {
	const n = 1 << 16
	const runs = 10
	logn := int(math.Log(n)) // ~11

	type point struct {
		label string
		cfg   kdchoice.Config
	}
	points := []point{
		{"single choice (1 probe/ball)", kdchoice.Config{Bins: n, Policy: kdchoice.SingleChoice, Seed: 10}},
		{"(1+β)-choice, β=0.5", kdchoice.Config{Bins: n, Policy: kdchoice.OnePlusBeta, Beta: 0.5, Seed: 11}},
		{"two-choice (2 probes/ball)", kdchoice.Config{Bins: n, K: 1, D: 2, Seed: 12}},
		{fmt.Sprintf("(k,k+ln n) = (%d,%d)", logn*logn, logn*logn+logn),
			kdchoice.Config{Bins: n, K: logn * logn, D: logn*logn + logn, Seed: 13}},
		{fmt.Sprintf("(k,2k) = (%d,%d)", logn*logn/2, logn*logn),
			kdchoice.Config{Bins: n, K: logn * logn / 2, D: logn * logn, Seed: 14}},
		{"8-choice (8 probes/ball)", kdchoice.Config{Bins: n, K: 1, D: 8, Seed: 15}},
	}

	fmt.Printf("n = %d, %d runs per point\n\n", n, runs)
	fmt.Printf("%-32s  %-12s  %-12s  %s\n", "strategy", "mean max", "probes/ball", "regime")
	for _, p := range points {
		res, err := kdchoice.Simulate(p.cfg, 0, runs)
		if err != nil {
			log.Fatal(err)
		}
		regime := ""
		if p.cfg.K > 0 && p.cfg.D > p.cfg.K {
			regime = kdchoice.Regime(p.cfg.K, p.cfg.D, n)
		}
		fmt.Printf("%-32s  %-12.2f  %-12.3f  %s\n",
			p.label, res.MeanMax, res.MeanMessages/float64(n), regime)
	}

	fmt.Println("\nReading the table: the (k,2k) row achieves a small constant max load")
	fmt.Println("at exactly 2 probes/ball, and the (k,k+ln n) row beats two-choice's")
	fmt.Println("max load while spending barely more than 1 probe/ball — the paper's")
	fmt.Println("claim that no previously known non-adaptive O(n)-message scheme matched.")
}
