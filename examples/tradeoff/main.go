// Tradeoff: pick (k, d) for your cluster using the paper's Theorem 1.
//
// The paper's punchline is that (k,d)-choice spans the whole spectrum
// between single choice (1 probe/ball, ~ln n/ln ln n max load) and d-choice
// (d probes/ball, ~ln ln n/ln d max load), with two sweet spots:
//
//   - d = 2k, k = polylog n  -> constant max load at 2 probes per ball;
//   - d = k + ln n, k = ln²n -> o(ln ln n) max load at ~1 probe per ball.
//
// This example runs the whole frontier as ONE Experiment — every strategy's
// runs share a bounded worker pool — and prints the Report's cross-cell
// tradeoff curve so you can pick your operating point.
//
// Run with:
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"math"

	kdchoice "repro"
)

func main() {
	const n = 1 << 16
	const runs = 10
	logn := int(math.Log(n)) // ~11

	cells := []kdchoice.Cell{
		{Label: "single choice (1 probe/ball)",
			Config: kdchoice.Config{Bins: n, Policy: kdchoice.SingleChoice, Seed: 10}},
		{Label: "(1+β)-choice, β=0.5",
			Config: kdchoice.Config{Bins: n, Policy: kdchoice.OnePlusBeta, Beta: 0.5, Seed: 11}},
		{Label: "two-choice (2 probes/ball)",
			Config: kdchoice.Config{Bins: n, K: 1, D: 2, Seed: 12}},
		{Label: fmt.Sprintf("(k,k+ln n) = (%d,%d)", logn*logn, logn*logn+logn),
			Config: kdchoice.Config{Bins: n, K: logn * logn, D: logn*logn + logn, Seed: 13}},
		{Label: fmt.Sprintf("(k,2k) = (%d,%d)", logn*logn/2, logn*logn),
			Config: kdchoice.Config{Bins: n, K: logn * logn / 2, D: logn * logn, Seed: 14}},
		{Label: "8-choice (8 probes/ball)",
			Config: kdchoice.Config{Bins: n, K: 1, D: 8, Seed: 15}},
	}

	report, err := kdchoice.Experiment{Cells: cells, Runs: runs, Seed: 1}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("n = %d, %d runs per point, %d cells on one shared pool\n\n", n, runs, len(cells))
	fmt.Printf("%-32s  %-12s  %-12s  %s\n", "strategy (by rising msg cost)", "mean max", "probes/ball", "regime")
	for _, p := range report.TradeoffCurve() {
		regime := ""
		if p.Policy == kdchoice.KDChoice && p.K > 0 && p.D > p.K {
			regime = kdchoice.Regime(p.K, p.D, n)
		}
		fmt.Printf("%-32s  %-12.2f  %-12.3f  %s\n", p.Label, p.MeanMaxLoad, p.MessagesPerBall, regime)
	}

	fmt.Println("\nReading the curve: the (k,2k) row achieves a small constant max load")
	fmt.Println("at exactly 2 probes/ball, and the (k,k+ln n) row beats two-choice's")
	fmt.Println("max load while spending barely more than 1 probe/ball — the paper's")
	fmt.Println("claim that no previously known non-adaptive O(n)-message scheme matched.")
}
