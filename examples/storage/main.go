// Storage: the paper's Section 1.3 distributed-storage scenario.
//
// A file is replicated k times; (k,k+1)-choice probes k+1 servers once and
// stores the k copies on the k least loaded. Compared with per-copy
// two-choice this halves both the placement message cost (k+1 vs 2k probes
// per file) and the search cost, at asymptotically the same balance.
//
// The policy comparison runs as one kdchoice.Study (all three cells in
// parallel on the shared pool); the failure-injection scenario then drives
// an interactive kdchoice.StorageSystem, killing servers and showing
// re-replication restoring the replication factor.
//
// Run with:
//
//	go run ./examples/storage
package main

import (
	"fmt"
	"log"

	kdchoice "repro"
)

func main() {
	const servers = 256
	const files = 20000
	const k = 3

	cell := func(policy kdchoice.StoragePolicy) kdchoice.StorageCell {
		return kdchoice.StorageCell{
			Servers:  servers,
			Files:    files,
			K:        k,
			D:        k + 1,
			DPerCopy: 2,
			SizeDist: kdchoice.ParetoDist(2.5, 1.0), // heavy-tailed file sizes
			Distinct: true,                          // replicas on distinct servers
			Policy:   policy,
			Seed:     7,
		}
	}
	names := []string{"(k,k+1)-choice", "per-copy two-choice", "random"}
	rep, err := kdchoice.Study{Cells: []kdchoice.AppCell{
		cell(kdchoice.KDPlacement),
		cell(kdchoice.PerCopyChoice),
		cell(kdchoice.RandomCopyPlacement),
	}}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("storage: %d servers, %d files x %d replicas, distinct servers\n\n", servers, files, k)
	fmt.Printf("%-22s  %9s  %11s  %10s\n", "policy", "max load", "msgs/file", "search cost")
	for i, c := range rep.Cells {
		m := c.Runs[0]
		fmt.Printf("%-22s  %9.0f  %11.2f  %10d\n",
			names[i], m.MaxLoad, m.MessagesPerUnit(), m.SearchCost)
	}

	// Fault tolerance: kill a tenth of the fleet, one server at a time, on
	// an interactive system handle.
	fmt.Println("\nfailure injection on the (k,k+1) system:")
	c := cell(kdchoice.KDPlacement)
	c.Seed = 8
	sys, err := kdchoice.NewStorageSystem(c)
	if err != nil {
		log.Fatal(err)
	}
	sys.IngestAll()
	moved := 0
	for sv := 0; sv < servers/10; sv++ {
		moved += sys.FailServer(sv)
	}
	if err := sys.ReplicationOK(); err != nil {
		log.Fatalf("replication broken after failures: %v", err)
	}
	fmt.Printf("killed %d servers, re-replicated %d copies, replication factor intact\n",
		servers/10, moved)
	fmt.Printf("post-failure imbalance: %.3f\n", sys.Imbalance())
}
