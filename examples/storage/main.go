// Storage: the paper's Section 1.3 distributed-storage scenario.
//
// A file is replicated k times; (k,k+1)-choice probes k+1 servers once and
// stores the k copies on the k least loaded. Compared with per-copy
// two-choice this halves both the placement message cost (k+1 vs 2k probes
// per file) and the search cost, at asymptotically the same balance. The
// example also kills servers and shows re-replication restoring the
// replication factor.
//
// Run with:
//
//	go run ./examples/storage
package main

import (
	"fmt"
	"log"

	"repro/internal/storage"
	"repro/internal/workload"
)

func main() {
	const servers = 256
	const files = 20000
	const k = 3

	mk := func(policy storage.PlacementPolicy, seed uint64) *storage.System {
		s, err := storage.New(storage.Config{
			Servers:  servers,
			Files:    files,
			K:        k,
			D:        k + 1,
			DPerCopy: 2,
			SizeDist: workload.Pareto(2.5, 1.0), // heavy-tailed file sizes
			Distinct: true,                      // replicas on distinct servers
			Policy:   policy,
			Seed:     seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		s.IngestAll()
		return s
	}

	fmt.Printf("storage: %d servers, %d files x %d replicas, distinct servers\n\n", servers, files, k)
	fmt.Printf("%-22s  %9s  %9s  %11s  %10s\n", "policy", "max load", "imbalance", "msgs/file", "search cost")
	for _, row := range []struct {
		name   string
		policy storage.PlacementPolicy
	}{
		{"(k,k+1)-choice", storage.KDPlace},
		{"per-copy two-choice", storage.PerCopyD},
		{"random", storage.RandomPlace},
	} {
		s := mk(row.policy, 7)
		fmt.Printf("%-22s  %9.0f  %9.3f  %11.2f  %10d\n",
			row.name, s.MaxLoad(), s.Imbalance(),
			float64(s.Messages())/float64(files), s.SearchCost())
	}

	// Fault tolerance: kill a tenth of the fleet, one server at a time.
	fmt.Println("\nfailure injection on the (k,k+1) system:")
	s := mk(storage.KDPlace, 8)
	moved := 0
	for sv := 0; sv < servers/10; sv++ {
		moved += s.FailServer(sv)
	}
	if err := s.ReplicationOK(); err != nil {
		log.Fatalf("replication broken after failures: %v", err)
	}
	fmt.Printf("killed %d servers, re-replicated %d copies, replication factor intact\n",
		servers/10, moved)
	fmt.Printf("post-failure imbalance: %.3f\n", s.Imbalance())
}
