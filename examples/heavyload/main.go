// Heavyload: the m >> n regime of Theorem 2.
//
// The paper proves (for d >= 2k) that the maximum load stays within
// ln ln n/ln⌊d/k⌋ + O(1) of the average m/n no matter how large m grows —
// the process "forgets" its history. This example ingests up to 64n balls
// and tracks the gap, also contrasting a d < 2k pair (open question in the
// paper) and single choice, whose gap diverges like sqrt(m ln n / n).
//
// The whole 4×4 (config × ball-count) grid runs as one Experiment: every
// cell carries its own Balls override, and all cells × runs share one
// worker pool.
//
// Run with:
//
//	go run ./examples/heavyload
package main

import (
	"fmt"
	"log"

	kdchoice "repro"
)

func main() {
	const n = 1 << 12
	const runs = 8

	configs := []struct {
		label string
		cfg   kdchoice.Config
	}{
		{"(2,4)-choice [d=2k]", kdchoice.Config{Bins: n, K: 2, D: 4, Seed: 21}},
		{"(2,6)-choice [d=3k]", kdchoice.Config{Bins: n, K: 2, D: 6, Seed: 22}},
		{"(3,4)-choice [d<2k, open]", kdchoice.Config{Bins: n, K: 3, D: 4, Seed: 23}},
		{"single choice", kdchoice.Config{Bins: n, Policy: kdchoice.SingleChoice, Seed: 24}},
	}
	mults := []int{1, 4, 16, 64}

	// One cell per (config, m/n) point; the per-cell Balls override builds
	// the heavy-load axis.
	var cells []kdchoice.Cell
	for _, c := range configs {
		for mi, mult := range mults {
			cfg := c.cfg
			cfg.Seed += uint64(mi) * 1000 // independent streams per ball count
			cells = append(cells, kdchoice.Cell{Config: cfg, Balls: mult * n})
		}
	}
	report, err := kdchoice.Experiment{Cells: cells, Runs: runs, Seed: 2}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("n = %d bins, m growing to 64n, gap = max load - m/n (mean of %d runs)\n\n", n, runs)
	fmt.Printf("%-26s", "m/n:")
	for _, m := range mults {
		fmt.Printf("  %8d", m)
	}
	fmt.Println()
	for ci, c := range configs {
		fmt.Printf("%-26s", c.label)
		for mi := range mults {
			fmt.Printf("  %8.2f", report.Cells[ci*len(mults)+mi].MeanGap)
		}
		fmt.Println()
	}

	fmt.Println("\nThe (k,d)-choice gaps plateau (Theorem 2's m-independent bound) while")
	fmt.Println("single choice's gap keeps growing with m. The d < 2k row also appears")
	fmt.Println("to plateau — the regime the paper leaves as an open question.")
}
