// Analysis: watch the paper's proof machinery work on live data.
//
// The upper-bound proof (Theorem 4) controls the number of bins ν_y with
// load ≥ y through a doubly-exponentially shrinking sequence
//
//	β₀ = n/(6·d_k),   β_{i+1} = 6·(n/k)·C(d, d−k+1)·(β_i/n)^{d−k+1},
//
// and shows ν_{y₀+i} ≤ β_i layer by layer; after i* ≈ ln ln n/ln(d−k+1)
// layers the union bound finishes the job, giving max load ≤ y₀ + i* + 2.
// This example runs the real process and prints the measured ν against
// every β layer, so you can see the induction "staircase" of Figure 1.
//
// Run with:
//
//	go run ./examples/analysis
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/theory"
)

func main() {
	const n = 1 << 16
	const runs = 10

	for _, kd := range [][2]int{{1, 2}, {2, 4}, {4, 8}} {
		k, d := kd[0], kd[1]
		res, err := experiments.LayeredInductionCheck(k, d, n, runs, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== (%d,%d)-choice, n = %d, %d runs ===\n", k, d, n, runs)
		fmt.Printf("d_k = %.2f, anchor layer y0 = %d, proof layers i* = %d\n",
			theory.Dk(k, d), res.Y0, res.IStar)
		fmt.Printf("%8s  %14s  %18s  %s\n", "layer i", "beta_i", "measured nu_{y0+i}", "holds")
		for _, row := range res.Rows {
			fmt.Printf("%8d  %14.1f  %18.1f  %t\n", row.I, row.Beta, row.MeasNu, row.Holds)
		}
		fmt.Printf("proof bound y0+i*+2 = %d, measured max load = %.2f\n\n",
			res.ProofBound, res.MaxLoadMean)
	}

	fmt.Println("Each layer's measured occupancy sits under its beta envelope, and the")
	fmt.Println("envelope collapses doubly exponentially — that collapse is why the")
	fmt.Println("maximum load is ln ln n/ln(d-k+1) + O(1) rather than ln n-ish.")
}
