// Scheduler: the paper's Section 1.3 cluster-scheduling scenario.
//
// A job has k parallel tasks; its response time is decided by the LAST task
// to finish. If every task independently runs power-of-two probing, some
// task in a wide job is likely to land on a busy worker — the paper's
// motivation for (k,d)-choice: share one batch of d probes across the
// job's k tasks (this is Sparrow's "batch sampling").
//
// The example builds one kdchoice.Study over the (parallelism, policy)
// grid with EQUAL probe budgets (batch d = 2k vs per-task d = 2) and runs
// every cell concurrently on the shared worker pool, then prints mean and
// tail response times.
//
// Run with:
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	kdchoice "repro"
)

func main() {
	const workers = 100
	const jobs = 3000
	const rho = 0.85
	ks := []int{2, 4, 8, 16}
	policies := []kdchoice.SchedulerPolicy{
		kdchoice.BatchSampling, kdchoice.SparrowBinding, kdchoice.PerTaskChoice,
	}

	// One study cell per (k, policy); the whole grid shares the pool.
	cells := make([]kdchoice.AppCell, 0, len(ks)*len(policies))
	for _, k := range ks {
		for _, policy := range policies {
			cells = append(cells, kdchoice.SchedulerCell{
				Workers:  workers,
				K:        k,
				D:        2 * k,
				DPerTask: 2,
				Jobs:     jobs,
				Rho:      rho,
				TaskDist: kdchoice.ExponentialDist(1.0),
				Policy:   policy,
				Seed:     99,
			})
		}
	}
	rep, err := kdchoice.Study{Cells: cells}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cluster: %d workers, %d jobs, utilization %.0f%%, exp(1) tasks\n", workers, jobs, rho*100)
	fmt.Printf("equal probe budgets per job: batch (k,2k) vs per-task two-choice\n\n")
	fmt.Printf("%3s  %28s  %28s  %28s\n", "", "batch (k,d)-choice", "late binding (Sparrow)", "per-task 2-choice")
	fmt.Printf("%3s  %9s %9s %9s  %9s %9s %9s  %9s %9s %9s\n", "k", "mean", "p95", "p99", "mean", "p95", "p99", "mean", "p95", "p99")

	for i, k := range ks {
		fmt.Printf("%3d", k)
		for j := range policies {
			m := rep.Cells[i*len(policies)+j].Runs[0]
			fmt.Printf("  %9.2f %9.2f %9.2f", m.MeanResponse, m.P95Response, m.P99Response)
		}
		fmt.Println()
	}

	fmt.Println("\nSharing the probe batch across the job's tasks cuts the tail that the")
	fmt.Println("job's slowest task would otherwise contribute — and the advantage grows")
	fmt.Println("with parallelism k, exactly the paper's argument for (k,d)-choice.")
	fmt.Println("Late binding (Sparrow's refinement of the same idea) improves further by")
	fmt.Println("letting the first k of the d reserved workers pull the tasks.")
}
