// Scheduler: the paper's Section 1.3 cluster-scheduling scenario.
//
// A job has k parallel tasks; its response time is decided by the LAST task
// to finish. If every task independently runs power-of-two probing, some
// task in a wide job is likely to land on a busy worker — the paper's
// motivation for (k,d)-choice: share one batch of d probes across the
// job's k tasks (this is Sparrow's "batch sampling").
//
// The example drives the discrete-event cluster simulator at several
// parallelism levels with EQUAL probe budgets (batch d = 2k vs per-task
// d = 2) and prints mean and tail response times.
//
// Run with:
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/workload"
)

func main() {
	const workers = 100
	const jobs = 3000
	const rho = 0.85

	fmt.Printf("cluster: %d workers, %d jobs, utilization %.0f%%, exp(1) tasks\n", workers, jobs, rho*100)
	fmt.Printf("equal probe budgets per job: batch (k,2k) vs per-task two-choice\n\n")
	fmt.Printf("%3s  %28s  %28s  %28s\n", "", "batch (k,d)-choice", "late binding (Sparrow)", "per-task 2-choice")
	fmt.Printf("%3s  %9s %9s %9s  %9s %9s %9s  %9s %9s %9s\n", "k", "mean", "p95", "p99", "mean", "p95", "p99", "mean", "p95", "p99")

	for _, k := range []int{2, 4, 8, 16} {
		base := cluster.Config{
			NumWorkers: workers,
			K:          k,
			D:          2 * k,
			DPerTask:   2,
			Jobs:       jobs,
			Rho:        rho,
			TaskDist:   workload.Exponential(1.0),
			Seed:       99,
		}
		batchCfg := base
		batchCfg.Policy = cluster.BatchKD
		batch, err := cluster.Run(batchCfg)
		if err != nil {
			log.Fatal(err)
		}
		lateCfg := base
		lateCfg.Policy = cluster.LateBinding
		late, err := cluster.Run(lateCfg)
		if err != nil {
			log.Fatal(err)
		}
		ptCfg := base
		ptCfg.Policy = cluster.PerTaskD
		perTask, err := cluster.Run(ptCfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%3d  %9.2f %9.2f %9.2f  %9.2f %9.2f %9.2f  %9.2f %9.2f %9.2f\n",
			k,
			batch.MeanResponse(), batch.ResponseQuantile(0.95), batch.ResponseQuantile(0.99),
			late.MeanResponse(), late.ResponseQuantile(0.95), late.ResponseQuantile(0.99),
			perTask.MeanResponse(), perTask.ResponseQuantile(0.95), perTask.ResponseQuantile(0.99))
	}

	fmt.Println("\nSharing the probe batch across the job's tasks cuts the tail that the")
	fmt.Println("job's slowest task would otherwise contribute — and the advantage grows")
	fmt.Println("with parallelism k, exactly the paper's argument for (k,d)-choice.")
	fmt.Println("Late binding (Sparrow's refinement of the same idea) improves further by")
	fmt.Println("letting the first k of the d reserved workers pull the tasks.")
}
