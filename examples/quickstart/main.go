// Quickstart: place n balls into n bins with (k,d)-choice and inspect the
// result through the three layers of the public API — the process
// (Allocator), observers (Attach + recorders), and experiments (Sweep).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	kdchoice "repro"
)

func main() {
	const n = 1 << 16 // 65536 bins

	// Layer 1 — the process. Each round samples d bins and places the
	// k < d balls into the k least-loaded sampled bins.
	alloc, err := kdchoice.NewKD(n, 2, 3, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Layer 2 — observers. Attach instruments before placing: a time
	// series of the per-round trajectory and a height recorder that
	// reconstructs the occupancy numbers ν_y from the placement stream.
	ts := kdchoice.NewTimeSeriesRecorder(n / (2 * 8)) // 8 samples over n/2 rounds
	hr := kdchoice.NewHeightRecorder(0)
	alloc.Attach(ts, hr)

	alloc.PlaceAll() // n balls into n bins

	fmt.Println("=== (2,3)-choice quickstart ===")
	fmt.Printf("bins: %d, balls: %d, rounds: %d\n", alloc.N(), alloc.Balls(), alloc.Rounds())
	fmt.Printf("max load:  %d\n", alloc.MaxLoad())
	fmt.Printf("messages:  %d (%.2f probes per ball)\n",
		alloc.Messages(), float64(alloc.Messages())/float64(alloc.Balls()))
	fmt.Printf("theory:    gap term %.2f + crowd term %.2f (regime: %s)\n",
		kdchoice.PredictGapTerm(2, 3, n), kdchoice.PredictCrowdTerm(2, 3), kdchoice.Regime(2, 3, n))

	// Top of the sorted load vector (B_1, B_2, ... in the paper's notation).
	top := alloc.SortedLoads()[:8]
	fmt.Printf("top loads: %v\n", top)

	fmt.Println("\n=== observer streams ===")
	fmt.Printf("%10s  %8s  %8s  %6s\n", "round", "balls", "max", "gap")
	for _, p := range ts.Points() {
		fmt.Printf("%10d  %8d  %8d  %6.2f\n", p.Round, p.Balls, p.MaxLoad, p.Gap)
	}
	fmt.Printf("occupancy from the height stream: nu_1=%d nu_2=%d nu_3=%d (max height %d)\n",
		hr.NuY(1), hr.NuY(2), hr.NuY(3), hr.MaxHeight())

	// Layer 3 — experiments. One Sweep runs the baselines as a batch of
	// cells on a shared worker pool.
	fmt.Println("\n=== baselines (10 runs each, one sweep) ===")
	report, err := kdchoice.Experiment{
		Cells: []kdchoice.Cell{
			{Label: "single choice", Config: kdchoice.Config{Bins: n, Policy: kdchoice.SingleChoice, Seed: 1}},
			{Label: "two-choice   ", Config: kdchoice.Config{Bins: n, K: 1, D: 2, Seed: 2}},
			{Label: "(2,3)-choice ", Config: kdchoice.Config{Bins: n, K: 2, D: 3, Seed: 3}},
			{Label: "(8,17)-choice", Config: kdchoice.Config{Bins: n, K: 8, D: 17, Seed: 4}},
		},
		Runs: 10,
		Seed: 1,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	for i := range report.Cells {
		c := &report.Cells[i]
		fmt.Printf("%s  max loads %v  (%.2f msgs/ball)\n",
			c.Cell.Label, c.DistinctMax, c.MeanMessages/float64(n))
	}
}
