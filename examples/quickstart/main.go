// Quickstart: place n balls into n bins with (k,d)-choice and inspect the
// result through the public API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	kdchoice "repro"
)

func main() {
	const n = 1 << 16 // 65536 bins

	// The paper's process: each round samples d bins and places the k < d
	// balls into the k least-loaded sampled bins.
	alloc, err := kdchoice.NewKD(n, 2, 3, 42)
	if err != nil {
		log.Fatal(err)
	}
	alloc.PlaceAll() // n balls into n bins

	fmt.Println("=== (2,3)-choice quickstart ===")
	fmt.Printf("bins: %d, balls: %d, rounds: %d\n", alloc.N(), alloc.Balls(), alloc.Rounds())
	fmt.Printf("max load:  %d\n", alloc.MaxLoad())
	fmt.Printf("messages:  %d (%.2f probes per ball)\n",
		alloc.Messages(), float64(alloc.Messages())/float64(alloc.Balls()))
	fmt.Printf("theory:    gap term %.2f + crowd term %.2f (regime: %s)\n",
		kdchoice.PredictGapTerm(2, 3, n), kdchoice.PredictCrowdTerm(2, 3), kdchoice.Regime(2, 3, n))

	// Top of the sorted load vector (B_1, B_2, ... in the paper's notation).
	top := alloc.SortedLoads()[:8]
	fmt.Printf("top loads: %v\n", top)

	// Compare against the classical baselines on the same n.
	fmt.Println("\n=== baselines (10 runs each, distinct max loads) ===")
	for _, cfg := range []struct {
		name string
		c    kdchoice.Config
	}{
		{"single choice", kdchoice.Config{Bins: n, Policy: kdchoice.SingleChoice, Seed: 1}},
		{"two-choice   ", kdchoice.Config{Bins: n, K: 1, D: 2, Seed: 2}},
		{"(2,3)-choice ", kdchoice.Config{Bins: n, K: 2, D: 3, Seed: 3}},
		{"(8,17)-choice", kdchoice.Config{Bins: n, K: 8, D: 17, Seed: 4}},
	} {
		res, err := kdchoice.Simulate(cfg.c, 0, 10)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  max loads %v  (%.2f msgs/ball)\n",
			cfg.name, res.DistinctMax, res.MeanMessages/float64(n))
	}
}
