package kdchoice

import (
	"fmt"

	"repro/internal/appevent"
	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/workload"
)

// This file is the public surface of the paper's Section 1.3 application
// substrates: cluster job scheduling (Sparrow-style batch sampling),
// replicated storage, and the netsim message-level protocol. A Study runs
// any mix of their cells — each a (substrate, policy, k, d, load) tuple —
// on the same shared bounded worker pool as the core Experiment/Sweep
// harness, with deterministic per-(cell, run) seed streams, so application
// grids parallelize and reproduce exactly like Table 1 sweeps do.

// Dist is a non-negative scalar distribution for workload parameters (task
// durations, file sizes, network delays). The zero value means "substrate
// default" (documented per field).
type Dist struct {
	d workload.Dist
}

// DeterministicDist always yields v (v >= 0).
func DeterministicDist(v float64) Dist { return Dist{workload.Deterministic(v)} }

// ExponentialDist is the exponential distribution with the given mean > 0.
func ExponentialDist(mean float64) Dist { return Dist{workload.Exponential(mean)} }

// ParetoDist is the heavy-tailed Pareto distribution with shape alpha > 1,
// scaled to the given mean > 0.
func ParetoDist(alpha, mean float64) Dist { return Dist{workload.Pareto(alpha, mean)} }

// UniformDist is the uniform distribution on [lo, hi), 0 <= lo < hi.
func UniformDist(lo, hi float64) Dist { return Dist{workload.Uniform(lo, hi)} }

// Mean returns the distribution mean (0 for the zero value).
func (d Dist) Mean() float64 { return d.d.Mean() }

// SchedulerPolicy selects how a SchedulerCell assigns a job's tasks.
type SchedulerPolicy int

// Scheduler placement policies.
const (
	// BatchSampling is the (k,d)-choice strategy: one batch of D probes per
	// job, tasks to the K least-loaded probed workers (Sparrow's batch
	// sampling). The zero SchedulerPolicy defaults to it.
	BatchSampling SchedulerPolicy = iota + 1
	// SparrowBinding is Sparrow's late-binding refinement: D reservations,
	// the first K workers to free up pull the tasks.
	SparrowBinding
	// PerTaskChoice gives every task its own DPerTask-choice probes — the
	// classical strategy the paper argues against.
	PerTaskChoice
	// RandomAssignment sends every task to a uniformly random worker.
	RandomAssignment
)

// String returns the canonical name of the policy.
func (p SchedulerPolicy) String() string { return p.internal().String() }

func (p SchedulerPolicy) internal() cluster.PlacementPolicy {
	switch p {
	case 0, BatchSampling:
		return cluster.BatchKD
	case SparrowBinding:
		return cluster.LateBinding
	case PerTaskChoice:
		return cluster.PerTaskD
	case RandomAssignment:
		return cluster.RandomPlace
	default:
		return cluster.PlacementPolicy(-1)
	}
}

// SchedulerCell is one cluster-scheduling study cell: K-task parallel jobs
// placed on Workers FIFO machines under the chosen policy, with Poisson
// arrivals sized to utilization Rho.
type SchedulerCell struct {
	// Workers is the number of worker machines (default 100).
	Workers int
	// K is the number of parallel tasks per job (required, >= 1).
	K int
	// D is the probe (or reservation) budget per job for BatchSampling and
	// SparrowBinding (default 2K).
	D int
	// DPerTask is the per-task probe count under PerTaskChoice (default 2).
	DPerTask int
	// Jobs is the number of jobs run to completion (default 2000).
	Jobs int
	// Rho is the target utilization in (0, 1) (default 0.85).
	Rho float64
	// TaskDist draws task durations; the zero value means
	// ExponentialDist(1).
	TaskDist Dist
	// Policy is the placement policy (zero value = BatchSampling).
	Policy SchedulerPolicy
	// Seed, when non-zero, pins the cell's seed; otherwise the Study
	// derives one from its root seed and the cell index.
	Seed uint64
	// Label optionally names the cell in the report.
	Label string
}

// config maps the cell onto the internal substrate configuration.
func (c SchedulerCell) config() cluster.Config {
	if c.Workers == 0 {
		c.Workers = 100
	}
	if c.D == 0 {
		c.D = 2 * c.K
	}
	if c.DPerTask == 0 {
		c.DPerTask = 2
	}
	if c.Jobs == 0 {
		c.Jobs = 2000
	}
	if c.Rho == 0 {
		c.Rho = 0.85
	}
	dist := c.TaskDist.d
	if dist.Mean() == 0 {
		dist = workload.Exponential(1)
	}
	return cluster.Config{
		NumWorkers: c.Workers,
		K:          c.K,
		D:          c.D,
		DPerTask:   c.DPerTask,
		Jobs:       c.Jobs,
		Rho:        c.Rho,
		TaskDist:   dist,
		Policy:     c.Policy.internal(),
		Seed:       c.Seed,
	}
}

func (c SchedulerCell) appLabel() string {
	if c.Label != "" {
		return c.Label
	}
	cfg := c.config()
	return fmt.Sprintf("sched/%s k=%d d=%d n=%d", cfg.Policy, cfg.K, cfg.D, cfg.NumWorkers)
}

func (c SchedulerCell) appSeed() uint64 { return c.Seed }

func (c SchedulerCell) appValidate() error { return c.config().Validate() }

func (c SchedulerCell) runApp(seed uint64, obs []Observer) (AppMetrics, error) {
	cfg := c.config()
	cfg.Seed = seed
	cfg.Observer = fanoutObserver(obs)
	m, err := cluster.Run(cfg)
	if err != nil {
		return AppMetrics{}, err
	}
	met := AppMetrics{
		MaxLoad:       float64(m.MaxQueueSeen),
		Messages:      m.Probes,
		ProbeMessages: m.Probes,
		Units:         m.JobsRun,
		Makespan:      m.Makespan,
		MeanResponse:  m.MeanResponse(),
	}
	if len(m.ResponseTimes) > 0 {
		met.P95Response = m.ResponseQuantile(0.95)
		met.P99Response = m.ResponseQuantile(0.99)
	}
	return met, nil
}

// StoragePolicy selects how a StorageCell places the K copies of a file.
type StoragePolicy int

// Storage placement policies.
const (
	// KDPlacement probes D servers once per file and stores the K copies on
	// the K least loaded ((k,d)-choice). The zero StoragePolicy defaults to
	// it.
	KDPlacement StoragePolicy = iota + 1
	// PerCopyChoice places every copy independently with DPerCopy-choice.
	PerCopyChoice
	// RandomCopyPlacement puts every copy on a uniformly random server.
	RandomCopyPlacement
)

// String returns the canonical name of the policy.
func (p StoragePolicy) String() string { return p.internal().String() }

func (p StoragePolicy) internal() storage.PlacementPolicy {
	switch p {
	case 0, KDPlacement:
		return storage.KDPlace
	case PerCopyChoice:
		return storage.PerCopyD
	case RandomCopyPlacement:
		return storage.RandomPlace
	default:
		return storage.PlacementPolicy(-1)
	}
}

// StorageCell is one replicated-storage study cell: Files files of K copies
// each, placed on Servers under the chosen policy.
type StorageCell struct {
	// Servers is the number of storage servers (default 256).
	Servers int
	// Files is the number of files ingested per run (default 20000).
	Files int
	// K is the replication factor / chunk count per file (required, >= 1).
	K int
	// D is the probe budget per file for KDPlacement (default K+1, the
	// paper's storage sweet spot).
	D int
	// DPerCopy is the per-copy probe count under PerCopyChoice (default 2).
	DPerCopy int
	// SizeDist draws file sizes; the zero value means DeterministicDist(1),
	// i.e. balance by object count.
	SizeDist Dist
	// ByBytes balances on cumulative bytes instead of object count.
	ByBytes bool
	// Distinct forces the copies of one file onto distinct servers
	// (replication); false keeps the paper's multiset rule (chunk mode).
	Distinct bool
	// Policy is the placement policy (zero value = KDPlacement).
	Policy StoragePolicy
	// Seed, when non-zero, pins the cell's seed; otherwise the Study
	// derives one from its root seed and the cell index.
	Seed uint64
	// Label optionally names the cell in the report.
	Label string
}

// config maps the cell onto the internal substrate configuration.
func (c StorageCell) config() storage.Config {
	if c.Servers == 0 {
		c.Servers = 256
	}
	if c.Files == 0 {
		c.Files = 20000
	}
	if c.D == 0 {
		c.D = c.K + 1
	}
	if c.DPerCopy == 0 {
		c.DPerCopy = 2
	}
	return storage.Config{
		Servers:  c.Servers,
		Files:    c.Files,
		K:        c.K,
		D:        c.D,
		DPerCopy: c.DPerCopy,
		SizeDist: c.SizeDist.d,
		ByBytes:  c.ByBytes,
		Distinct: c.Distinct,
		Policy:   c.Policy.internal(),
		Seed:     c.Seed,
	}
}

func (c StorageCell) appLabel() string {
	if c.Label != "" {
		return c.Label
	}
	cfg := c.config()
	return fmt.Sprintf("store/%s k=%d d=%d n=%d", cfg.Policy, cfg.K, cfg.D, cfg.Servers)
}

func (c StorageCell) appSeed() uint64 { return c.Seed }

func (c StorageCell) appValidate() error { return c.config().Validate() }

func (c StorageCell) runApp(seed uint64, obs []Observer) (AppMetrics, error) {
	cfg := c.config()
	cfg.Seed = seed
	cfg.Observer = fanoutObserver(obs)
	s, err := storage.New(cfg)
	if err != nil {
		return AppMetrics{}, err
	}
	s.IngestAll()
	return AppMetrics{
		MaxLoad:       s.MaxLoad(),
		Messages:      s.Messages(),
		ProbeMessages: s.Messages(),
		Units:         s.Files(),
		SearchCost:    s.SearchCost(),
	}, nil
}

// ProtocolCell is one netsim study cell: the (k,d)-choice allocation run as
// a literal probe/reply/place message protocol over a simulated network,
// with Pipeline dispatchers deciding rounds concurrently on stale load
// reports.
type ProtocolCell struct {
	// Servers is the number of server nodes (required, >= 1).
	Servers int
	// K and D are the (k,d)-choice parameters (1 <= K < D <= Servers).
	K, D int
	// Rounds is the number of allocation rounds (default Servers/K, the
	// n-balls-into-n-bins experiment).
	Rounds int
	// Pipeline is the number of concurrent dispatchers (default 1, the
	// paper's sequential process).
	Pipeline int
	// NetDelay draws one-way message latencies; the zero value means
	// DeterministicDist(1).
	NetDelay Dist
	// Seed, when non-zero, pins the cell's seed; otherwise the Study
	// derives one from its root seed and the cell index.
	Seed uint64
	// Label optionally names the cell in the report.
	Label string
}

// config maps the cell onto the internal substrate configuration.
func (c ProtocolCell) config() netsim.Config {
	if c.Rounds == 0 && c.K > 0 {
		c.Rounds = c.Servers / c.K
	}
	return netsim.Config{
		Servers:  c.Servers,
		K:        c.K,
		D:        c.D,
		Rounds:   c.Rounds,
		Pipeline: c.Pipeline,
		NetDelay: c.NetDelay.d,
		Seed:     c.Seed,
	}
}

func (c ProtocolCell) appLabel() string {
	if c.Label != "" {
		return c.Label
	}
	cfg := c.config()
	return fmt.Sprintf("proto/kd k=%d d=%d n=%d pipe=%d", cfg.K, cfg.D, cfg.Servers, max(cfg.Pipeline, 1))
}

func (c ProtocolCell) appSeed() uint64 { return c.Seed }

func (c ProtocolCell) appValidate() error { return c.config().Validate() }

func (c ProtocolCell) runApp(seed uint64, obs []Observer) (AppMetrics, error) {
	cfg := c.config()
	cfg.Seed = seed
	cfg.Observer = fanoutObserver(obs)
	st, err := netsim.Run(cfg)
	if err != nil {
		return AppMetrics{}, err
	}
	met := AppMetrics{
		MaxLoad:       float64(st.MaxLoad),
		Messages:      st.Messages,
		ProbeMessages: st.ProbeMessages,
		Units:         cfg.Rounds * cfg.K,
		Makespan:      st.Makespan,
		MeanResponse:  st.MeanRoundLatency(),
	}
	if len(st.RoundLatencies) > 0 {
		met.P95Response = stats.Quantile(st.RoundLatencies, 0.95)
		met.P99Response = stats.Quantile(st.RoundLatencies, 0.99)
	}
	return met, nil
}

// AppCell is one application-study cell: a substrate plus its full
// configuration. The concrete implementations are SchedulerCell,
// StorageCell and ProtocolCell.
type AppCell interface {
	// appLabel names the cell for reports and errors.
	appLabel() string
	// appSeed returns the cell's explicit seed (0 = derive).
	appSeed() uint64
	// appValidate rejects unrunnable configurations before dispatch.
	appValidate() error
	// runApp executes one run with the given seed and observers.
	runApp(seed uint64, obs []Observer) (AppMetrics, error)
}

// fanoutObserver adapts public observers to the substrate round-event
// hook, translating each appevent.Round into the package's RoundEvent
// contract. It returns nil for an empty observer set so the substrate hot
// path stays observation-free.
func fanoutObserver(obs []Observer) appevent.Observer {
	live := obs[:0:0]
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return func(ev appevent.Round) {
		e := RoundEvent{
			Round:    ev.Round,
			Samples:  ev.Samples,
			Placed:   ev.Placed,
			Heights:  ev.Heights,
			Bins:     ev.Bins,
			Balls:    ev.Balls,
			MaxLoad:  ev.MaxLoad,
			Messages: ev.Messages,
			Weight:   len(ev.Placed),
		}
		for _, o := range live {
			o.ObserveRound(e)
		}
	}
}

// AppMetrics is the outcome of one application-cell run, reported on the
// axes every substrate shares: balance, message cost, and time. Fields
// that do not apply to a substrate are zero (e.g. SearchCost outside
// storage, response quantiles for storage).
type AppMetrics struct {
	// MaxLoad is the substrate's balance figure: the deepest queue observed
	// at any placement (scheduler), the maximum per-server load under the
	// configured metric (storage), or the final maximum bin load (protocol
	// and serving).
	MaxLoad float64
	// Gap is max load minus mean load at the end of the run (online
	// serving; 0 for the substrates that report MaxLoad only).
	Gap float64
	// Messages is the run's network cost: probes for the scheduler and
	// storage substrates, total wire messages for the protocol.
	Messages int64
	// ProbeMessages is the paper's "bins probed" cost measure; for the
	// protocol substrate it counts every sampled slot (duplicates included)
	// and can exceed Messages' probe share.
	ProbeMessages int64
	// Units is the number of placement units the run completed: jobs,
	// files, or balls.
	Units int
	// Makespan is the simulated completion time (0 for storage, which is
	// not a timed simulation).
	Makespan float64
	// MeanResponse is the mean job response time (scheduler) or mean round
	// latency (protocol).
	MeanResponse float64
	// P95Response and P99Response are tail quantiles of the same series.
	P95Response float64
	P99Response float64
	// SearchCost is the probes needed to retrieve all copies of one file
	// (storage only).
	SearchCost int
	// Faults holds the run's fault counters (online serving under a fault
	// plan; zero elsewhere).
	Faults FaultCounters
}

// MessagesPerUnit returns the run's amortized message cost.
func (m AppMetrics) MessagesPerUnit() float64 {
	if m.Units == 0 {
		return 0
	}
	return float64(m.Messages) / float64(m.Units)
}

// Study runs a set of application cells — each repeated Runs times — on one
// shared bounded worker pool, exactly as Experiment does for the core
// process. Scheduler, storage and protocol cells can be mixed freely in one
// study; all (cell, run) pairs are flattened onto the pool together.
//
// Determinism: run r of cell i uses seed stream (seedᵢ, r), where seedᵢ is
// the cell's explicit Seed when non-zero and is otherwise derived from
// (Seed, i); run 0 uses seedᵢ itself, so a one-run study reproduces a
// direct substrate run bit for bit. The StudyReport is a pure function of
// the Study value — identical for any Workers setting.
type Study struct {
	// Cells lists the application cells to run (at least one).
	Cells []AppCell
	// Runs is the number of independent runs per cell; 0 means 1.
	Runs int
	// Seed is the root seed from which cells without an explicit seed
	// derive theirs.
	Seed uint64
	// Workers bounds the shared pool; 0 means GOMAXPROCS.
	Workers int
	// Observe, when non-nil, is called once per (cell, run) before that run
	// starts; the returned observers receive a RoundEvent after every
	// placement round of the substrate (job, file, or protocol round). It
	// is called from the pool goroutines and must be safe for concurrent
	// use; per-(cell, run) observer instances keep runs independent.
	Observe func(cell, run int) []Observer
}

// appRunSeed derives run r's seed from the cell seed; run 0 keeps the cell
// seed itself so single-run cells reproduce direct substrate runs.
func appRunSeed(cellSeed uint64, run int) uint64 {
	return cellSeed ^ (uint64(run) * 0xBF58476D1CE4E5B9)
}

// Run executes the study and aggregates per-cell results into a
// StudyReport. Every cell is validated before any work starts; an invalid
// cell fails the whole study with an error naming it.
func (s Study) Run() (*StudyReport, error) {
	if len(s.Cells) == 0 {
		return nil, fmt.Errorf("kdchoice: Study needs at least one cell")
	}
	if s.Runs < 0 {
		return nil, fmt.Errorf("kdchoice: Study.Runs = %d, must be non-negative", s.Runs)
	}
	runs := s.Runs
	if runs == 0 {
		runs = 1
	}
	seeds := make([]uint64, len(s.Cells))
	counts := make([]int, len(s.Cells))
	results := make([][]AppMetrics, len(s.Cells))
	for i, c := range s.Cells {
		if c == nil {
			return nil, fmt.Errorf("kdchoice: study cell %d is nil", i)
		}
		if err := c.appValidate(); err != nil {
			return nil, fmt.Errorf("kdchoice: study cell %d (%s): %w", i, c.appLabel(), err)
		}
		seeds[i] = cellSeed(s.Seed, i, c.appSeed())
		counts[i] = runs
		results[i] = make([]AppMetrics, runs)
	}
	err := sim.RunTasks(s.Workers, counts, func(cell, run int) error {
		var obs []Observer
		if s.Observe != nil {
			obs = s.Observe(cell, run)
		}
		m, err := s.Cells[cell].runApp(appRunSeed(seeds[cell], run), obs)
		if err != nil {
			return fmt.Errorf("cell %d (%s) run %d: %w", cell, s.Cells[cell].appLabel(), run, err)
		}
		results[cell][run] = m
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("kdchoice: study: %w", err)
	}
	rep := &StudyReport{Cells: make([]StudyCellResult, len(s.Cells))}
	for i, c := range s.Cells {
		rep.Cells[i] = newStudyCellResult(i, c, results[i])
	}
	return rep, nil
}

// StudyCellResult is the outcome of one study cell: its per-run metrics in
// run order plus their aggregates.
type StudyCellResult struct {
	// Index is the cell's position in Study.Cells.
	Index int
	// Cell is the cell as submitted.
	Cell AppCell
	// Runs holds each run's metrics, indexed by run.
	Runs []AppMetrics
	// MeanMaxLoad, MeanGap, MeanMessages, MeanProbeMessages, MeanMakespan,
	// MeanResponse and MeanP95 average the corresponding AppMetrics field
	// over runs.
	MeanMaxLoad       float64
	MeanGap           float64
	MeanMessages      float64
	MeanProbeMessages float64
	MeanMakespan      float64
	MeanResponse      float64
	MeanP95           float64
	// MessagesPerUnit is total messages over total units across runs — the
	// paper's amortized cost measure (probes/job, msgs/file, msgs/ball).
	MessagesPerUnit float64
	// TotalFaults sums the fault counters over runs; zero unless the cell
	// ran under an active fault plan.
	TotalFaults FaultCounters
}

// Label returns the cell's display name.
func (c *StudyCellResult) Label() string { return c.Cell.appLabel() }

// newStudyCellResult aggregates one cell's runs.
func newStudyCellResult(index int, cell AppCell, runs []AppMetrics) StudyCellResult {
	r := StudyCellResult{Index: index, Cell: cell, Runs: runs}
	var maxes, gaps, msgs, probes, spans, resp, p95 stats.Online
	var totalMsgs int64
	totalUnits := 0
	for _, m := range runs {
		maxes.Add(m.MaxLoad)
		gaps.Add(m.Gap)
		msgs.Add(float64(m.Messages))
		probes.Add(float64(m.ProbeMessages))
		spans.Add(m.Makespan)
		resp.Add(m.MeanResponse)
		p95.Add(m.P95Response)
		totalMsgs += m.Messages
		totalUnits += m.Units
		r.TotalFaults.Add(m.Faults)
	}
	r.MeanMaxLoad = maxes.Mean()
	r.MeanGap = gaps.Mean()
	r.MeanMessages = msgs.Mean()
	r.MeanProbeMessages = probes.Mean()
	r.MeanMakespan = spans.Mean()
	r.MeanResponse = resp.Mean()
	r.MeanP95 = p95.Mean()
	if totalUnits > 0 {
		r.MessagesPerUnit = float64(totalMsgs) / float64(totalUnits)
	}
	return r
}

// StudyReport carries the results of a Study: one StudyCellResult per cell,
// in cell order.
type StudyReport struct {
	Cells []StudyCellResult
}

// StorageSystem is an interactive handle on one storage substrate instance,
// for scenarios a batch Study cannot express: incremental ingest, failure
// injection, and replication checks. Construct with NewStorageSystem; the
// cell's Seed is used directly (Study-style derivation does not apply).
type StorageSystem struct {
	sys *storage.System
}

// NewStorageSystem validates the cell and returns an empty system; the
// given observers receive one RoundEvent per ingested file.
func NewStorageSystem(c StorageCell, obs ...Observer) (*StorageSystem, error) {
	cfg := c.config()
	cfg.Observer = fanoutObserver(obs)
	s, err := storage.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("kdchoice: %w", err)
	}
	return &StorageSystem{sys: s}, nil
}

// Ingest places one file and returns its id.
func (s *StorageSystem) Ingest() int { return s.sys.Ingest() }

// IngestAll ingests the cell's configured number of files.
func (s *StorageSystem) IngestAll() { s.sys.IngestAll() }

// FailServer kills server sv, drops its copies, and re-replicates every
// affected file; it returns the number of copies re-replicated.
func (s *StorageSystem) FailServer(sv int) int { return s.sys.FailServer(sv) }

// RecoverServer is the inverse of FailServer: it returns server sv to the
// alive set (empty) and repairs under-replicated files by re-placing each
// dropped copy, returning the number of copies restored. Recovering an
// alive server is a no-op.
func (s *StorageSystem) RecoverServer(sv int) int { return s.sys.RecoverServer(sv) }

// ReplicationOK reports whether every file still has K live copies on
// distinct (when configured) servers.
func (s *StorageSystem) ReplicationOK() error { return s.sys.ReplicationOK() }

// MaxLoad returns the maximum per-server load under the balancing metric.
func (s *StorageSystem) MaxLoad() float64 { return s.sys.MaxLoad() }

// MeanLoad returns the mean per-server load over alive servers.
func (s *StorageSystem) MeanLoad() float64 { return s.sys.MeanLoad() }

// Imbalance returns MaxLoad/MeanLoad (1.0 is perfect balance).
func (s *StorageSystem) Imbalance() float64 { return s.sys.Imbalance() }

// Gini returns the Gini coefficient of the per-server object counts.
func (s *StorageSystem) Gini() float64 { return s.sys.Gini() }

// Messages returns the cumulative probe count (the paper's message cost).
func (s *StorageSystem) Messages() int64 { return s.sys.Messages() }

// SearchCost returns the probes needed to retrieve all copies of one file.
func (s *StorageSystem) SearchCost() int { return s.sys.SearchCost() }

// Files returns the number of ingested files.
func (s *StorageSystem) Files() int { return s.sys.Files() }

// Objects returns a copy of the per-server object counts.
func (s *StorageSystem) Objects() []int { return s.sys.Objects() }

// FileServers returns a copy of the server list holding file id.
func (s *StorageSystem) FileServers(id int) []int { return s.sys.FileServers(id) }
