package kdchoice

import (
	"repro/internal/core"
)

// RoundEvent describes one completed round of an allocation process. It is
// delivered to every attached Observer after the round's balls are placed.
//
// The Samples, Placed and Heights slices are reused between rounds: they are
// valid only for the duration of the callback. Observers that need to retain
// them must copy.
type RoundEvent struct {
	// Round is the 1-based round number.
	Round int
	// Samples holds the sampled bin ids in the order drawn (length d for
	// the round-based policies, 1-2 for the per-ball policies).
	Samples []int
	// Placed holds the bin that received each ball of the round, one entry
	// per placed ball.
	Placed []int
	// Heights holds the height at which each ball landed: Heights[i] is the
	// load of Placed[i] immediately after its ball arrived.
	Heights []int
	// Bins is the number of bins n.
	Bins int
	// Balls is the cumulative number of balls placed, including this round.
	Balls int
	// MaxLoad is the maximum bin load after this round.
	MaxLoad int
	// Messages is the cumulative message cost (bins probed) after this
	// round.
	Messages int64
	// Op is the kind of operation behind the event: OpInsert for every
	// one-shot round, and the serving operations (OpDelete, OpRebalance)
	// on the online path.
	Op Op
	// Weight is the operation's load-unit weight. One-shot rounds and unit
	// inserts report len(Placed); weighted inserts report the ball's
	// weight; deletes report the drained weight.
	Weight int
	// Faults holds the cumulative fault counters as of this event; zero
	// unless the allocator carries an active fault plan.
	Faults FaultCounters
}

// Gap returns the current max-load-minus-average-load, the heavily-loaded
// metric of Theorem 2, as of this event. It divides the ball count by the
// bin count, which equals the mean load only for unit-weight streams; use
// Allocator.Gap for the weighted reading.
func (e RoundEvent) Gap() float64 {
	return float64(e.MaxLoad) - float64(e.Balls)/float64(e.Bins)
}

// Observer receives a callback after every completed round of an Allocator
// it is attached to. Observers enable per-round instrumentation — height
// streams, time series, proof-machinery checks — without touching the
// process internals. When no observer is attached the allocation hot path
// performs no observation bookkeeping at all.
type Observer interface {
	ObserveRound(e RoundEvent)
}

// ObserverFunc adapts a plain function to the Observer interface.
type ObserverFunc func(e RoundEvent)

// ObserveRound implements Observer.
func (f ObserverFunc) ObserveRound(e RoundEvent) { f(e) }

// Attach registers observers to receive a RoundEvent after every round.
// Attaching is cumulative; nil observers are ignored. Observers are invoked
// in attachment order, synchronously, on the goroutine driving the
// Allocator.
func (a *Allocator) Attach(obs ...Observer) {
	for _, o := range obs {
		if o != nil {
			a.observers = append(a.observers, o)
		}
	}
	if len(a.observers) > 0 {
		a.pr.SetObserver(observerBridge{a})
	}
}

// DetachAll removes every attached observer, restoring the unobserved
// (bookkeeping-free) hot path.
func (a *Allocator) DetachAll() {
	a.observers = nil
	a.pr.SetObserver(nil)
}

// Observers returns the currently attached observers (shared slice; do not
// mutate).
func (a *Allocator) Observers() []Observer { return a.observers }

// observerBridge adapts the internal core.Observer callback to the public
// RoundEvent contract, enriching it with the process-level state the core
// callback does not carry.
type observerBridge struct{ a *Allocator }

// RoundPlaced implements core.Observer.
func (b observerBridge) RoundPlaced(round int, samples, placed, heights []int) {
	pr := b.a.pr
	weight := pr.LastOpWeight()
	if weight == 0 {
		// One-shot rounds never set an operation weight: one unit per ball.
		weight = len(placed)
	}
	e := RoundEvent{
		Round:    round,
		Samples:  samples,
		Placed:   placed,
		Heights:  heights,
		Bins:     pr.N(),
		Balls:    pr.Balls(),
		MaxLoad:  pr.MaxLoad(),
		Messages: pr.Messages(),
		Op:       pr.LastOp(),
		Weight:   weight,
		Faults:   pr.FaultCounters(),
	}
	for _, o := range b.a.observers {
		o.ObserveRound(e)
	}
}

// RecorderSnapshot is the occupancy state captured by a HeightRecorder at
// the end of a specific round.
type RecorderSnapshot = core.RecorderSnapshot

// HeightRecorder is an Observer that reconstructs the occupancy statistics
// ν_y (bins with at least y balls) and µ_y (balls with height at least y)
// from the stream of per-ball placement heights alone, without reading the
// load vector — the quantity the paper's layered-induction proof (Theorem 4)
// tracks round by round.
type HeightRecorder struct {
	rec *core.HeightRecorder
}

// NewHeightRecorder creates a height recorder; snapshotEvery > 0 captures a
// snapshot of the ν vector after each snapshotEvery rounds (<= 0 disables
// snapshots).
func NewHeightRecorder(snapshotEvery int) *HeightRecorder {
	return &HeightRecorder{rec: core.NewHeightRecorder(snapshotEvery)}
}

// ObserveRound implements Observer. The height stream only exists for
// unit-weight insertions: deletes, rebalances and weighted inserts are
// skipped, since a reconstruction from heights alone cannot account for
// removed or multi-unit mass.
func (h *HeightRecorder) ObserveRound(e RoundEvent) {
	if e.Op != OpInsert || e.Weight != len(e.Placed) {
		return
	}
	h.rec.RoundPlaced(e.Round, e.Samples, e.Placed, e.Heights)
}

// Balls returns the number of placements observed.
func (h *HeightRecorder) Balls() int { return h.rec.Balls() }

// Rounds returns the number of rounds observed.
func (h *HeightRecorder) Rounds() int { return h.rec.Rounds() }

// MaxHeight returns the largest placement height observed; it equals the
// allocator's MaxLoad when the recorder observed every round from the start.
func (h *HeightRecorder) MaxHeight() int { return h.rec.MaxHeight() }

// NuY returns ν_y reconstructed from the height stream (y >= 1; ν_0 is the
// bin count, which the height stream does not determine).
func (h *HeightRecorder) NuY(y int) int { return h.rec.NuY(y) }

// MuY returns µ_y, the number of balls at height >= y (y >= 1).
func (h *HeightRecorder) MuY(y int) int { return h.rec.MuY(y) }

// Snapshots returns the recorded ν snapshots (shared slice; do not mutate).
func (h *HeightRecorder) Snapshots() []RecorderSnapshot { return h.rec.Snapshots() }

// SetRoundHook installs a callback receiving each round's placement heights
// after the recorder's internal state is updated.
func (h *HeightRecorder) SetRoundHook(fn func(round int, heights []int)) {
	h.rec.SetRoundHook(fn)
}

// TimeSeriesPoint is one sample of a TimeSeriesRecorder: the allocator's
// headline metrics at the end of one round.
type TimeSeriesPoint struct {
	// Round is the 1-based round number of the sample.
	Round int
	// Balls is the cumulative ball count.
	Balls int
	// MaxLoad is the maximum bin load.
	MaxLoad int
	// Gap is max load minus average load.
	Gap float64
	// Messages is the cumulative message cost.
	Messages int64
}

// TimeSeriesRecorder is an Observer that streams the per-round trajectory
// of the paper's two headline quantities — maximum load (Theorems 1-2) and
// message cost — plus the heavily-loaded gap. It answers "how did the run
// get there", where SimResult only answers "where did it end".
type TimeSeriesRecorder struct {
	every  int
	points []TimeSeriesPoint
}

// NewTimeSeriesRecorder creates a recorder sampling every `every` rounds
// (values < 1 mean every round). The final round of a placement is always
// worth sampling; pair a sparse recorder with a final manual reading of the
// Allocator when exact end state matters.
func NewTimeSeriesRecorder(every int) *TimeSeriesRecorder {
	if every < 1 {
		every = 1
	}
	return &TimeSeriesRecorder{every: every}
}

// ObserveRound implements Observer.
func (t *TimeSeriesRecorder) ObserveRound(e RoundEvent) {
	if e.Round%t.every != 0 {
		return
	}
	t.points = append(t.points, TimeSeriesPoint{
		Round:    e.Round,
		Balls:    e.Balls,
		MaxLoad:  e.MaxLoad,
		Gap:      e.Gap(),
		Messages: e.Messages,
	})
}

// Points returns the recorded samples in round order (shared slice; do not
// mutate).
func (t *TimeSeriesRecorder) Points() []TimeSeriesPoint { return t.points }

// Len returns the number of recorded samples.
func (t *TimeSeriesRecorder) Len() int { return len(t.points) }

// Last returns the most recent sample, if any.
func (t *TimeSeriesRecorder) Last() (TimeSeriesPoint, bool) {
	if len(t.points) == 0 {
		return TimeSeriesPoint{}, false
	}
	return t.points[len(t.points)-1], true
}
