package kdchoice

import (
	"math"
	"testing"
)

// This file holds the public-surface fault tests: the conservation
// property over random serving interleavings on every store, the
// no-plan bit-identity at the API level, study/experiment counter
// plumbing, and the storage substrate's fail/recover inverse pair.

// TestFaultConservationAcrossStores drives a random (but seeded)
// interleaving of Insert/InsertW/Delete/Rebalance against an allocator
// under the full fault plan — outages, probe loss, retries, eviction —
// on every bin store, checking after every operation window that ball
// count and total live weight are conserved exactly (one-sidedly for
// the sketch store, whose estimates only overestimate). CI runs this
// under -race, so the serial fault path is also exercised for hidden
// sharing.
func TestFaultConservationAcrossStores(t *testing.T) {
	plan, err := ParseFaults("fail:0.02,16+loss:0.2+noise:1+retry:2+evict")
	if err != nil {
		t.Fatal(err)
	}
	for _, store := range []Store{StoreDense, StoreCompact, StoreHist, StoreNibble, StoreSketch} {
		t.Run(store.String(), func(t *testing.T) {
			alloc, err := New(Config{
				Bins:   48,
				D:      2,
				Policy: OnePlusBeta,
				Beta:   0.8,
				Store:  store,
				Faults: &plan,
				Seed:   321,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer alloc.Close()
			// The op mix comes from a plain LCG so the test exercises the
			// allocator's own streams without touching them.
			mix := uint64(12345)
			next := func(n int) int {
				mix = mix*6364136223846793005 + 1442695040888963407
				return int((mix >> 33) % uint64(n))
			}
			type rec struct {
				b Ball
				w int
			}
			var live []rec
			weight := 0
			check := func(op int) {
				t.Helper()
				if alloc.Live() != len(live) {
					t.Fatalf("op %d: Live() = %d, ledger says %d", op, alloc.Live(), len(live))
				}
				if alloc.Balls() != len(live) {
					t.Fatalf("op %d: Balls() = %d, ledger says %d", op, alloc.Balls(), len(live))
				}
				scan := 0
				for _, l := range alloc.Loads() {
					scan += l
				}
				if store == StoreSketch {
					// Count-min estimates are one-sided: never below truth.
					if scan < weight {
						t.Fatalf("op %d: sketch scan %d below true weight %d", op, scan, weight)
					}
				} else if scan != weight {
					t.Fatalf("op %d: scanned weight %d, ledger says %d", op, scan, weight)
				}
			}
			for op := 0; op < 4000; op++ {
				switch r := next(10); {
				case r < 4 && len(live) > 0: // delete
					vi := next(len(live))
					if err := alloc.Delete(live[vi].b); err != nil {
						t.Fatalf("op %d: Delete: %v", op, err)
					}
					weight -= live[vi].w
					live[vi] = live[len(live)-1]
					live = live[:len(live)-1]
				case r < 5 && len(live) > 0: // rebalance
					vi := next(len(live))
					if _, err := alloc.Rebalance(live[vi].b); err != nil {
						t.Fatalf("op %d: Rebalance: %v", op, err)
					}
				case r < 8: // weighted insert
					w := 1 + next(4)
					b, err := alloc.InsertW(w)
					if err != nil {
						t.Fatalf("op %d: InsertW: %v", op, err)
					}
					live = append(live, rec{b, w})
					weight += w
				default: // unit insert
					b, err := alloc.Insert()
					if err != nil {
						t.Fatalf("op %d: Insert: %v", op, err)
					}
					live = append(live, rec{b, 1})
					weight += 1
				}
				if op%97 == 0 {
					check(op)
				}
			}
			check(4000)
			c := alloc.FaultCounters()
			if !c.Any() {
				t.Fatal("fault plan injected nothing over 4000 ops")
			}
			if c.Evictions != c.Replacements {
				t.Fatalf("evictions %d != replacements %d — weight moved without landing", c.Evictions, c.Replacements)
			}
			// Every surviving handle still resolves with its weight intact.
			for i, r := range live {
				w, err := alloc.BallWeight(r.b)
				if err != nil {
					t.Fatalf("live handle %d died: %v", i, err)
				}
				if w != r.w {
					t.Fatalf("handle %d weight %d, want %d", i, w, r.w)
				}
			}
		})
	}
}

// TestNoPlanIdenticalPublicAPI: a Config with Faults nil, and one with
// an explicitly empty plan, must produce byte-identical experiment
// reports — the public reading of the zero-cost contract.
func TestNoPlanIdenticalPublicAPI(t *testing.T) {
	empty := FaultPlan{}
	base := Config{Bins: 512, K: 2, D: 8, Seed: 5}
	withEmpty := base
	withEmpty.Faults = &empty
	rep, err := Experiment{
		Cells: []Cell{{Config: base}, {Config: withEmpty}},
		Runs:  3,
		Seed:  5,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	a, b := rep.Cells[0], rep.Cells[1]
	for i := range a.MaxLoads {
		if a.MaxLoads[i] != b.MaxLoads[i] || a.Gaps[i] != b.Gaps[i] || a.Messages[i] != b.Messages[i] {
			t.Fatalf("run %d diverged under an empty plan: (%d,%v,%d) vs (%d,%v,%d)",
				i, a.MaxLoads[i], a.Gaps[i], a.Messages[i], b.MaxLoads[i], b.Gaps[i], b.Messages[i])
		}
	}
	if a.Faults != nil || b.Faults != nil {
		t.Fatal("inactive plans must not allocate per-run fault slices")
	}
}

// TestExperimentFaultCounters: an Experiment cell with an active plan
// reports per-run and total counters, reproducibly for any worker count.
func TestExperimentFaultCounters(t *testing.T) {
	plan, err := ParseFaults("loss:0.3+retry:1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Bins: 256, K: 2, D: 6, Seed: 9, Faults: &plan}
	var ref *Report
	for _, workers := range []int{1, 4} {
		rep, err := Experiment{
			Cells:   []Cell{{Config: cfg}},
			Runs:    4,
			Seed:    9,
			Workers: workers,
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		c := rep.Cells[0]
		if len(c.Faults) != 4 {
			t.Fatalf("workers=%d: %d per-run counter slots, want 4", workers, len(c.Faults))
		}
		var want FaultCounters
		for _, f := range c.Faults {
			if !f.Any() {
				t.Fatalf("workers=%d: a run recorded no faults under loss:0.3", workers)
			}
			want.Add(f)
		}
		if c.TotalFaults != want {
			t.Fatalf("workers=%d: TotalFaults %+v != per-run sum %+v", workers, c.TotalFaults, want)
		}
		if ref == nil {
			ref = rep
			continue
		}
		for i := range c.Faults {
			if c.Faults[i] != ref.Cells[0].Faults[i] {
				t.Fatalf("fault counters depend on worker count: run %d %+v vs %+v",
					i, c.Faults[i], ref.Cells[0].Faults[i])
			}
		}
	}
}

// TestChurnCellFaults: the serving study layer threads the plan through
// to the allocator and surfaces the counters in the study report.
func TestChurnCellFaults(t *testing.T) {
	plan, err := ParseFaults("loss:0.2+retry:1+evict+fail:0.01,8")
	if err != nil {
		t.Fatal(err)
	}
	cell := ChurnCell{
		Bins:   64,
		Beta:   1,
		Ops:    2000,
		Churn:  ChurnSpec{DepartureRate: 0.5},
		Faults: &plan,
	}
	rep, err := Study{Cells: []AppCell{cell}, Runs: 2, Seed: 77}.Run()
	if err != nil {
		t.Fatal(err)
	}
	res := rep.Cells[0]
	if !res.TotalFaults.Any() {
		t.Fatal("study cell under a fault plan reported zero counters")
	}
	for run, m := range res.Runs {
		if !m.Faults.Any() {
			t.Fatalf("run %d reported zero fault counters", run)
		}
	}
	if got := res.Label(); got == "" || !contains(got, "faults=") {
		t.Fatalf("faulty cell label %q does not name its plan", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestObserverFaultCounters: RoundEvent carries the cumulative counters.
func TestObserverFaultCounters(t *testing.T) {
	plan, err := ParseFaults("loss:0.5")
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := New(Config{Bins: 64, K: 2, D: 4, Seed: 2, Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	defer alloc.Close()
	var last FaultCounters
	monotone := true
	alloc.Attach(ObserverFunc(func(e RoundEvent) {
		if e.Faults.ProbesLost < last.ProbesLost {
			monotone = false
		}
		last = e.Faults
	}))
	alloc.PlaceAll()
	if !monotone {
		t.Fatal("cumulative fault counters decreased between rounds")
	}
	if !last.Any() {
		t.Fatal("observer saw zero fault counters under loss:0.5")
	}
	if got := alloc.FaultCounters(); got != last {
		t.Fatalf("final observer counters %+v != allocator counters %+v", last, got)
	}
}

// TestStorageFailRecoverConservation: FailServer/RecoverServer are a
// conserving inverse pair — every file keeps its full copy set through
// a failure with capacity to re-replicate, recovery repairs any dropped
// copies when capacity returns, and both calls are idempotent.
func TestStorageFailRecoverConservation(t *testing.T) {
	sys, err := NewStorageSystem(StorageCell{
		Servers: 12,
		Files:   200,
		K:       3,
		D:       4,
		Seed:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.IngestAll()
	if err := sys.ReplicationOK(); err != nil {
		t.Fatalf("fresh ingest under-replicated: %v", err)
	}
	countCopies := func() int {
		total := 0
		for fid := 0; fid < sys.Files(); fid++ {
			for _, sv := range sys.FileServers(fid) {
				if sv >= 0 {
					total++
				}
			}
		}
		return total
	}
	full := countCopies()
	if full != 200*3 {
		t.Fatalf("ingest produced %d copies, want %d", full, 200*3)
	}
	// Fail a server: with 11 healthy servers every lost copy re-replicates.
	moved := sys.FailServer(5)
	if moved == 0 {
		t.Fatal("failing a loaded server moved no copies")
	}
	if got := countCopies(); got != full {
		t.Fatalf("copies not conserved through failure: %d, want %d", got, full)
	}
	if err := sys.ReplicationOK(); err != nil {
		t.Fatalf("under-replicated after conserving failure: %v", err)
	}
	// Idempotency: failing a dead server is a no-op.
	if again := sys.FailServer(5); again != 0 {
		t.Fatalf("re-failing a dead server moved %d copies", again)
	}
	// Recovery: the server returns empty; with no dropped copies there is
	// nothing to repair, and recovering an alive server is a no-op.
	if restored := sys.RecoverServer(5); restored != 0 {
		t.Fatalf("recovery restored %d copies though none were dropped", restored)
	}
	if again := sys.RecoverServer(5); again != 0 {
		t.Fatalf("re-recovering an alive server restored %d copies", again)
	}
	if got := countCopies(); got != full {
		t.Fatalf("copies not conserved through recovery: %d, want %d", got, full)
	}
	if err := sys.ReplicationOK(); err != nil {
		t.Fatalf("under-replicated after recovery: %v", err)
	}
}

// TestStorageRecoverRepairsDroppedCopies: when failures outrun capacity
// (k copies need k distinct servers), copies drop; recovery must repair
// them and restore full replication.
func TestStorageRecoverRepairsDroppedCopies(t *testing.T) {
	sys, err := NewStorageSystem(StorageCell{
		Servers: 4,
		Files:   50,
		K:       3,
		D:       4,
		Seed:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.IngestAll()
	// Take the cluster to 2 servers: 3 copies cannot fit on 2 distinct
	// servers, so copies are dropped and replication is broken.
	sys.FailServer(0)
	sys.FailServer(1)
	if err := sys.ReplicationOK(); err == nil {
		t.Fatal("3-replication reported OK on a 2-server cluster")
	}
	// Bring one server back: capacity for 3 distinct holders returns, and
	// recovery repairs every dropped copy.
	restored := sys.RecoverServer(0)
	if restored == 0 {
		t.Fatal("recovery repaired no copies on a degraded cluster")
	}
	if err := sys.ReplicationOK(); err != nil {
		t.Fatalf("still under-replicated after recovery: %v", err)
	}
}

// TestFaultFrontierShape is a tiny smoke of the public frontier inputs:
// gap inflation must be finite and the counters populated. The measured
// full-size frontier lives in ROADMAP.md; internal/experiments has its
// own test.
func TestFaultFrontierShape(t *testing.T) {
	plan, err := ParseFaults("loss:0.4")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Bins: 256, K: 2, D: 8, Seed: 4, Faults: &plan}
	res, err := Simulate(cfg, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.MeanGap) || math.IsInf(res.MeanGap, 0) {
		t.Fatalf("degraded MeanGap = %v", res.MeanGap)
	}
	if res.TotalFaults.ProbesLost == 0 {
		t.Fatal("loss:0.4 lost no probes")
	}
}
