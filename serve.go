package kdchoice

// This file is the online serving layer of the public API: instead of
// placing a fixed batch of balls and stopping, an Allocator serves an
// operation stream — Insert/InsertW/InsertVec return handles to live balls,
// Delete drains them with full deletion-aware accounting (MaxLoad, Gap and
// ν_y stay correct as bins empty), and Rebalance migrates a ball when a
// re-probe finds a strictly better bin. The placement decisions are the
// per-ball (1+β)-capable policy family (SingleChoice, DChoice, OnePlusBeta),
// on the same deterministic streams as the one-shot path: an insert-only
// unit-weight stream is bit-identical to Place on the same seed.
//
// ChurnCell/ServeGrid run churned serving workloads — Poisson arrivals and
// departures, diurnal rate curves, skewed ball weights, adversarial
// delete-the-loaded victims — as study cells on the shared bounded pool,
// with the same per-(cell, run) seed-stream determinism as every other
// study.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/loadvec"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Ball is a handle to a live ball returned by the insert operations. A
// handle stays valid until the ball is deleted (or the allocator is reset);
// operations on stale handles are detected and rejected even after the
// internal slot has been recycled.
type Ball = core.Ball

// NoBall is the invalid handle returned alongside errors.
const NoBall = core.NoBall

// Op identifies the kind of operation behind a RoundEvent.
type Op = core.Op

// Operation kinds.
const (
	// OpInsert is a ball arrival — and the kind of every one-shot round.
	OpInsert = core.OpInsert
	// OpDelete is a ball departure.
	OpDelete = core.OpDelete
	// OpRebalance is a ball migration probe (which may or may not move).
	OpRebalance = core.OpRebalance
)

// Norm selects the scalar aggregation applied to a bin's load vector in
// vector-load mode (Config.VecDims): placement decisions and the aggregate
// statistics compare bins by the normed vector.
type Norm int

// Supported aggregation norms.
const (
	// NormLInf aggregates a bin's vector to its maximum component — the
	// bottleneck-resource reading, and the zero-value default.
	NormLInf Norm = iota
	// NormL1 aggregates to the component sum (total resource footprint).
	NormL1
	// NormL2 aggregates to the Euclidean length.
	NormL2
)

// toLoadvec maps the public norm onto the store-layer norm. The two enums
// are value-aligned by construction.
func (m Norm) toLoadvec() loadvec.Norm { return loadvec.Norm(m) }

// String returns the canonical short name of the norm.
func (m Norm) String() string { return m.toLoadvec().String() }

// NormNames returns the canonical norm names in sorted order.
func NormNames() []string { return loadvec.NormNames() }

// ParseNorm converts a short norm name ("linf", "l1", "l2") back into a
// Norm. Unknown names list the valid norms in sorted order.
func ParseNorm(s string) (Norm, error) {
	m, err := loadvec.ParseNorm(s)
	if err != nil {
		return 0, fmt.Errorf("kdchoice: unknown norm %q (valid: %s)", s, strings.Join(NormNames(), ", "))
	}
	return Norm(m), nil
}

// Insert places one unit-weight ball and returns its handle. Online
// serving requires a per-ball policy (SingleChoice, DChoice, OnePlusBeta).
func (a *Allocator) Insert() (Ball, error) {
	b, err := a.pr.Insert()
	if err != nil {
		return NoBall, fmt.Errorf("kdchoice: %w", err)
	}
	return b, nil
}

// InsertW places one ball of weight w >= 1 — w load units added atomically
// to the chosen bin — and returns its handle. The decision probes loads,
// not weights: the ball lands in the least-loaded probed bin regardless of
// its own size.
func (a *Allocator) InsertW(w int) (Ball, error) {
	b, err := a.pr.InsertW(w)
	if err != nil {
		return NoBall, fmt.Errorf("kdchoice: %w", err)
	}
	return b, nil
}

// InsertVec places one ball carrying the weight vector w (length
// Config.VecDims, non-negative finite components) and returns its handle.
// Vector-load mode only.
func (a *Allocator) InsertVec(w []float64) (Ball, error) {
	b, err := a.pr.InsertVec(w)
	if err != nil {
		return NoBall, fmt.Errorf("kdchoice: %w", err)
	}
	return b, nil
}

// Delete removes a live ball, draining its weight from its bin with full
// aggregate bookkeeping. The handle becomes invalid.
func (a *Allocator) Delete(b Ball) error {
	if err := a.pr.Delete(b); err != nil {
		return fmt.Errorf("kdchoice: %w", err)
	}
	return nil
}

// Rebalance re-probes for a live ball with the policy's decision rule and
// migrates it when the move strictly lowers the ball's landing height. It
// reports whether the ball moved.
func (a *Allocator) Rebalance(b Ball) (bool, error) {
	moved, err := a.pr.Rebalance(b)
	if err != nil {
		return false, fmt.Errorf("kdchoice: %w", err)
	}
	return moved, nil
}

// Live returns the number of live (inserted and not yet deleted) balls.
func (a *Allocator) Live() int { return a.pr.Live() }

// BallBin returns the bin currently holding a live ball.
func (a *Allocator) BallBin(b Ball) (int, error) {
	bin, err := a.pr.BallBin(b)
	if err != nil {
		return 0, fmt.Errorf("kdchoice: %w", err)
	}
	return bin, nil
}

// BallWeight returns a live ball's scalar weight (1 for vector-mode balls).
func (a *Allocator) BallWeight(b Ball) (int, error) {
	w, err := a.pr.BallWeight(b)
	if err != nil {
		return 0, fmt.Errorf("kdchoice: %w", err)
	}
	return w, nil
}

// Reserve pre-sizes the ball registry for n live balls, so a serving loop
// of known size never grows internal slices mid-measurement. It never
// shrinks.
func (a *Allocator) Reserve(n int) { a.pr.Reserve(n) }

// MaxAggLoad returns vector mode's maximum aggregated bin load (0 for
// scalar allocators).
func (a *Allocator) MaxAggLoad() float64 { return a.pr.MaxAggLoad() }

// AggGap returns vector mode's max-minus-mean aggregated load — the
// vector reading of Gap (0 for scalar allocators).
func (a *Allocator) AggGap() float64 { return a.pr.GapAgg() }

// AggLoad returns one bin's aggregated vector load (0 for scalar
// allocators).
func (a *Allocator) AggLoad(bin int) float64 { return a.pr.AggLoad(bin) }

// VecLoad returns a copy of one bin's load vector (nil for scalar
// allocators).
func (a *Allocator) VecLoad(bin int) []float64 { return a.pr.VecLoad(bin) }

// BoundedZipfDist is the continuous bounded power law with density
// proportional to x^(-s) on [1, max] (s > 0, max > 1) — the skewed
// key-popularity / item-size model for serving workloads.
func BoundedZipfDist(s, max float64) Dist { return Dist{workload.BoundedZipf(s, max)} }

// ChurnSpec describes the arrival/departure process of a ChurnCell.
type ChurnSpec struct {
	// ArrivalRate is the mean ball arrival rate λ; 0 means 1.
	ArrivalRate float64
	// DepartureRate is the per-live-ball departure rate μ (>= 0; 0 means an
	// insert-only stream). The live population settles near λ/μ.
	DepartureRate float64
	// DiurnalAmplitude is the relative amplitude A in [0, 1) of the diurnal
	// arrival curve λ(t) = λ·(1 + A·sin(2πt/DiurnalPeriod)); 0 disables it.
	DiurnalAmplitude float64
	// DiurnalPeriod is the period of the diurnal curve in simulated time
	// (default 512 when an amplitude is set; at λ = 1 that is ~512 ops per
	// cycle).
	DiurnalPeriod float64
	// Weights draws arriving balls' weights, rounded and clamped to >= 1;
	// the zero value means unit weights.
	Weights Dist
	// DeleteLoaded switches victim selection from uniform-over-live-balls to
	// the adversarial delete-the-loaded rule: every departure removes a ball
	// from a currently most-loaded bin.
	DeleteLoaded bool
}

// internal maps the spec (with defaults applied) onto the workload churn
// configuration.
func (s ChurnSpec) internal() workload.Churn {
	if s.ArrivalRate == 0 {
		s.ArrivalRate = 1
	}
	if s.DiurnalAmplitude > 0 && s.DiurnalPeriod == 0 {
		s.DiurnalPeriod = 512
	}
	return workload.Churn{
		Lambda:        s.ArrivalRate,
		Mu:            s.DepartureRate,
		DiurnalAmp:    s.DiurnalAmplitude,
		DiurnalPeriod: s.DiurnalPeriod,
		Weights:       s.Weights.d,
	}
}

// churnNames are the canonical churn model names, sorted.
var churnNames = []string{"adversarial", "diurnal", "none", "poisson"}

// ChurnNames returns the canonical churn model names in sorted order.
func ChurnNames() []string { return append([]string(nil), churnNames...) }

// ParseChurn converts a churn model string into a ChurnSpec:
//
//	none            insert-only stream
//	poisson:R       per-ball departure rate R, uniform victims
//	adversarial:R   per-ball departure rate R, delete-the-loaded victims
//	diurnal:R,A     per-ball departure rate R plus a diurnal arrival curve
//	                of amplitude A in [0, 1)
//
// Unknown models list the valid names in sorted order.
func ParseChurn(s string) (ChurnSpec, error) {
	name, arg, _ := strings.Cut(s, ":")
	bad := func() (ChurnSpec, error) {
		return ChurnSpec{}, fmt.Errorf("kdchoice: bad churn %q, want one of %s (e.g. poisson:0.5, diurnal:0.5,0.8)", s, strings.Join(ChurnNames(), ", "))
	}
	parse1 := func() (float64, bool) {
		v, err := strconv.ParseFloat(arg, 64)
		return v, err == nil
	}
	switch name {
	case "none":
		if arg != "" {
			return bad()
		}
		return ChurnSpec{}, nil
	case "poisson":
		if r, ok := parse1(); ok && r >= 0 {
			return ChurnSpec{DepartureRate: r}, nil
		}
	case "adversarial":
		if r, ok := parse1(); ok && r >= 0 {
			return ChurnSpec{DepartureRate: r, DeleteLoaded: true}, nil
		}
	case "diurnal":
		rs, as, ok := strings.Cut(arg, ",")
		if !ok {
			return bad()
		}
		r, err1 := strconv.ParseFloat(rs, 64)
		amp, err2 := strconv.ParseFloat(as, 64)
		if err1 == nil && err2 == nil && r >= 0 && amp >= 0 && amp < 1 {
			return ChurnSpec{DepartureRate: r, DiurnalAmplitude: amp}, nil
		}
	}
	return bad()
}

// weightNames are the canonical weight model names, sorted.
var weightNames = []string{"exp", "fixed", "uniform", "zipf"}

// WeightNames returns the canonical weight model names in sorted order.
func WeightNames() []string { return append([]string(nil), weightNames...) }

// ParseWeights converts a ball-weight model string into a Dist:
//
//	fixed:W         every ball weighs W (W >= 1)
//	exp:MEAN        exponential weights with the given mean
//	uniform:LO,HI   uniform weights on [LO, HI)
//	zipf:S,MAX      bounded power law x^(-S) on [1, MAX]
//
// Samples are rounded and clamped to >= 1 at insert time. Unknown models
// list the valid names in sorted order.
func ParseWeights(s string) (Dist, error) {
	name, arg, _ := strings.Cut(s, ":")
	bad := func() (Dist, error) {
		return Dist{}, fmt.Errorf("kdchoice: bad weights %q, want one of %s (e.g. fixed:4, zipf:1.5,100)", s, strings.Join(WeightNames(), ", "))
	}
	switch name {
	case "fixed":
		if w, err := strconv.ParseFloat(arg, 64); err == nil && w >= 1 {
			return DeterministicDist(w), nil
		}
	case "exp":
		if m, err := strconv.ParseFloat(arg, 64); err == nil && m > 0 {
			return ExponentialDist(m), nil
		}
	case "uniform":
		los, his, ok := strings.Cut(arg, ",")
		if !ok {
			return bad()
		}
		lo, err1 := strconv.ParseFloat(los, 64)
		hi, err2 := strconv.ParseFloat(his, 64)
		if err1 == nil && err2 == nil && lo >= 0 && hi > lo {
			return UniformDist(lo, hi), nil
		}
	case "zipf":
		ss, ms, ok := strings.Cut(arg, ",")
		if !ok {
			return bad()
		}
		sh, err1 := strconv.ParseFloat(ss, 64)
		mx, err2 := strconv.ParseFloat(ms, 64)
		if err1 == nil && err2 == nil && sh > 0 && mx > 1 {
			return BoundedZipfDist(sh, mx), nil
		}
	}
	return bad()
}

// churnStreamID separates the churn workload's random stream from the
// allocator's placement stream, so the operation mix and the placement
// decisions draw independently from one (cell, run) seed.
const churnStreamID = 0x636875726e // "churn"

// ChurnCell is one online-serving study cell: an Ops-operation churned
// stream served by a (1+β)-family allocator. It runs on a Study's shared
// pool like every other application cell.
type ChurnCell struct {
	// Bins is the number of bins n (required, >= 1).
	Bins int
	// D is the probe count of the β-branch (default 2, the classical
	// (1+β) process).
	D int
	// Beta is the multi-probe probability β in [0, 1]: 0 is single choice,
	// 1 is pure D-choice, values between interpolate.
	Beta float64
	// Ops is the number of stream operations served (default 10·Bins).
	Ops int
	// Churn describes the arrival/departure process (zero value: unit-rate
	// insert-only stream with unit weights).
	Churn ChurnSpec
	// Store selects the bin-load representation. StoreHist deletes in O(1)
	// amortized; dense and compact rescan when the maximum drains.
	Store Store
	// VecDims > 0 switches the cell to vector-load mode: each arriving
	// ball's weight lands on one uniformly chosen component, modeling
	// single-bottleneck-resource demands.
	VecDims int
	// VecNorm is the aggregation norm of vector-load mode.
	VecNorm Norm
	// Faults optionally attaches a deterministic fault plan to the cell's
	// allocator: bin outages, probe loss, read noise, and the degradation
	// policies (retry budget, eviction) all drawn from streams split off
	// the run seed. Scalar cells only (VecDims must be 0).
	Faults *FaultPlan
	// Seed, when non-zero, pins the cell's seed; otherwise the Study
	// derives one from its root seed and the cell index.
	Seed uint64
	// Label optionally names the cell in the report.
	Label string
}

// withDefaults returns the cell with the documented defaults applied.
func (c ChurnCell) withDefaults() ChurnCell {
	if c.D == 0 {
		c.D = 2
	}
	if c.Ops == 0 {
		c.Ops = 10 * c.Bins
	}
	return c
}

// config maps the cell onto an allocator configuration for the given run
// seed.
func (c ChurnCell) config(seed uint64) Config {
	return Config{
		Bins:    c.Bins,
		D:       c.D,
		Policy:  OnePlusBeta,
		Beta:    c.Beta,
		Store:   c.Store,
		VecDims: c.VecDims,
		VecNorm: c.VecNorm,
		Faults:  c.Faults,
		Seed:    seed,
	}
}

func (c ChurnCell) appLabel() string {
	if c.Label != "" {
		return c.Label
	}
	cc := c.withDefaults()
	s := fmt.Sprintf("serve/1+beta beta=%g d=%d n=%d mu=%g", cc.Beta, cc.D, cc.Bins, cc.Churn.DepartureRate)
	if cc.Churn.DeleteLoaded {
		s += " adv"
	}
	if cc.VecDims > 0 {
		s += fmt.Sprintf(" vec=%d/%s", cc.VecDims, cc.VecNorm)
	}
	if cc.Faults != nil && !cc.Faults.Empty() {
		s += " faults=" + cc.Faults.String()
	}
	return s
}

func (c ChurnCell) appSeed() uint64 { return c.Seed }

func (c ChurnCell) appValidate() error {
	cc := c.withDefaults()
	if cc.Ops < 1 {
		return fmt.Errorf("Ops = %d, must be >= 1", cc.Ops)
	}
	if err := cc.config(1).validate(); err != nil {
		return err
	}
	return cc.Churn.internal().Validate()
}

func (c ChurnCell) runApp(seed uint64, obs []Observer) (AppMetrics, error) {
	cc := c.withDefaults()
	alloc, err := New(cc.config(seed))
	if err != nil {
		return AppMetrics{}, err
	}
	alloc.Attach(obs...)
	wrng := xrand.NewStream(seed, churnStreamID)
	stream, err := workload.NewStream(cc.Churn.internal(), wrng)
	if err != nil {
		return AppMetrics{}, err
	}
	var vecBuf []float64
	if cc.VecDims > 0 {
		vecBuf = make([]float64, cc.VecDims)
	}
	live := make([]Ball, 0, cc.Bins)
	for i := 0; i < cc.Ops; i++ {
		op := stream.Next()
		switch op.Kind {
		case workload.OpInsert:
			var (
				b   Ball
				err error
			)
			if cc.VecDims > 0 {
				comp := wrng.Intn(cc.VecDims)
				vecBuf[comp] = float64(op.Weight)
				b, err = alloc.InsertVec(vecBuf)
				vecBuf[comp] = 0
			} else {
				b, err = alloc.InsertW(op.Weight)
			}
			if err != nil {
				return AppMetrics{}, err
			}
			live = append(live, b)
		case workload.OpDelete:
			vi := 0
			if cc.Churn.DeleteLoaded {
				vi = loadedVictim(alloc, live)
			} else {
				vi = int(op.U * float64(len(live)))
				if vi >= len(live) {
					vi = len(live) - 1
				}
			}
			if err := alloc.Delete(live[vi]); err != nil {
				return AppMetrics{}, err
			}
			live[vi] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	met := AppMetrics{
		MaxLoad:       float64(alloc.MaxLoad()),
		Gap:           alloc.Gap(),
		Messages:      alloc.Messages(),
		ProbeMessages: alloc.Messages(),
		Units:         cc.Ops,
		Faults:        alloc.FaultCounters(),
	}
	if cc.VecDims > 0 {
		met.MaxLoad = alloc.MaxAggLoad()
		met.Gap = alloc.AggGap()
	}
	return met, nil
}

// loadedVictim returns the index of a live ball held by a most-loaded bin —
// the adversarial delete-the-loaded victim rule. Deterministic: the first
// maximal ball in live order wins.
func loadedVictim(a *Allocator, live []Ball) int {
	best, bestLoad := 0, -1.0
	for i, b := range live {
		bin, err := a.BallBin(b)
		if err != nil {
			continue
		}
		l := float64(a.Load(bin))
		if a.cfg.VecDims > 0 {
			l = a.AggLoad(bin)
		}
		if l > bestLoad {
			best, bestLoad = i, l
		}
	}
	return best
}

// ServeGrid builds the online-serving study grid: one ChurnCell per
// (β, departure-rate) pair, the axes of the gap-vs-churn and (1+β)
// message/balance tradeoff frontiers. Run executes it as a Study on the
// shared bounded pool.
type ServeGrid struct {
	// Bins is the number of bins n (required).
	Bins int
	// D is the probe count of the β-branch (default 2).
	D int
	// Ops is the number of operations per cell (default 10·Bins).
	Ops int
	// Betas lists the β values of the grid (default {1}).
	Betas []float64
	// ChurnRates lists the per-ball departure rates μ (default {0, 0.5}).
	ChurnRates []float64
	// Weights draws ball weights (zero value: unit weights).
	Weights Dist
	// DeleteLoaded switches every cell to adversarial victim selection.
	DeleteLoaded bool
	// Store selects the bin-load representation for every cell.
	Store Store
	// Runs, Seed and Workers configure the underlying Study.
	Runs    int
	Seed    uint64
	Workers int
}

// Cells expands the grid into its study cells in deterministic order
// (β-major, then churn rate).
func (g ServeGrid) Cells() []AppCell {
	betas := g.Betas
	if len(betas) == 0 {
		betas = []float64{1}
	}
	rates := g.ChurnRates
	if len(rates) == 0 {
		rates = []float64{0, 0.5}
	}
	cells := make([]AppCell, 0, len(betas)*len(rates))
	for _, beta := range betas {
		for _, mu := range rates {
			cells = append(cells, ChurnCell{
				Bins: g.Bins,
				D:    g.D,
				Beta: beta,
				Ops:  g.Ops,
				Churn: ChurnSpec{
					DepartureRate: mu,
					Weights:       g.Weights,
					DeleteLoaded:  g.DeleteLoaded,
				},
				Store: g.Store,
			})
		}
	}
	return cells
}

// Run executes the grid as a Study. The report is a pure function of the
// grid — identical for any Workers setting.
func (g ServeGrid) Run() (*StudyReport, error) {
	return Study{Cells: g.Cells(), Runs: g.Runs, Seed: g.Seed, Workers: g.Workers}.Run()
}
