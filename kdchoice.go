// Package kdchoice is a library for the (k,d)-choice balanced-allocation
// process and its classical relatives, reproducing "A Generalization of
// Multiple Choice Balls-into-Bins: Tight Bounds" (Gahyun Park; brief
// announcement in PODC'11, full version arXiv:1201.3310).
//
// In the (k,d)-choice process, n balls are placed into n bins over n/k
// rounds: each round samples d bins independently and uniformly at random
// (with replacement) and places k < d balls into the k least-loaded sampled
// bins, where a bin sampled m times receives at most m balls. Choosing k
// and d trades maximum load against message cost (total bins probed):
//
//   - d = 2k with k = Θ(polylog n): constant maximum load at 2n messages;
//   - d − k = Θ(ln n) with k ≥ Θ(ln² n): o(ln ln n) maximum load at
//     (1+o(1))n messages;
//   - k = 1: the classical d-choice of Azar et al.;
//   - k = d−1 with large d: approaches classical single choice.
//
// The package is organized in four layers:
//
//   - Process: Allocator runs one allocation process instance (New, NewKD,
//     Place, Round, MaxLoad, Gap, Messages, ...), alongside the paper's
//     theoretical bound terms (Dk, PredictMaxLoad, Regime, ...).
//   - Observers: Attach streams a RoundEvent to any number of Observer
//     implementations after every round. HeightRecorder reconstructs the
//     occupancy statistics ν_y/µ_y from the height stream, and
//     TimeSeriesRecorder records the per-round max-load/gap/message
//     trajectory. Unobserved allocators pay no instrumentation cost.
//   - Experiments: Experiment runs many cells × runs on one shared bounded
//     worker pool with deterministic per-(cell,run) random streams; Sweep
//     builds experiment cells over a (N, K, D, Policy) grid; Report carries
//     the per-cell results plus cross-cell tradeoff summaries (the paper's
//     max-load vs message-cost frontier). Simulate remains as the one-cell
//     convenience wrapper.
//   - Application studies: Study runs the paper's Section 1.3 application
//     substrates — cluster job scheduling (SchedulerCell), replicated
//     storage (StorageCell), and the message-level protocol
//     (ProtocolCell) — as cells on the same shared worker pool with the
//     same seed-stream determinism, and carries the Observer contract
//     through to their per-round (per-job, per-file) events.
//     StorageSystem is the interactive handle for failure-injection
//     scenarios.
//
// All randomness is drawn from explicitly seeded deterministic generators:
// the same configuration and seed always reproduce the same results, for
// any worker count.
package kdchoice

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/loadvec"
)

// Policy selects the allocation process run by an Allocator.
type Policy int

// Supported allocation policies.
const (
	// KDChoice is the paper's (k,d)-choice process (default).
	KDChoice Policy = iota + 1
	// Serialized is Aσ(k,d), the serialized (k,d)-choice of Definition 1;
	// it is distributionally equivalent to KDChoice for every σ
	// (Property (i)) and exists for experimentation.
	Serialized
	// DChoice is the classical d-choice process (k = 1) of Azar et al.
	DChoice
	// SingleChoice is the classical single-choice process.
	SingleChoice
	// OnePlusBeta is the (1+β)-choice process of Peres, Talwar and Wieder.
	OnePlusBeta
	// AlwaysGoLeft is Vöcking's asymmetric d-choice process.
	AlwaysGoLeft
	// AdaptiveKD is the paper's Section 7 water-filling variant.
	AdaptiveKD
	// StaleBatch is the parallel-allocation baseline: the K balls of a
	// round probe independently (D probes each) against round-start loads
	// with no information sharing — the model the paper's intro contrasts
	// (k,d)-choice against.
	StaleBatch
	// DynamicKD adapts k per round (the paper's Section 7 future-work
	// sketch): every sampled slot at or below the running ceiling
	// floor(m/n)+1 receives a ball.
	DynamicKD
	// ThresholdChoice is the limited-memory accept/reject policy: probe up
	// to D bins one at a time and take the first whose load is under the
	// running ceiling floor(m/n)+1, falling back to the last probe. O(1)
	// decision state — the choice–memory tradeoff's low-memory end — and
	// tolerant of approximate stores (a sketch overestimate only makes the
	// accept test conservative).
	ThresholdChoice
	// CoarseDChoice is d-choice on quantized loads: the argmin compares
	// floor(load/Quantum) buckets and breaks bucket ties by deterministic
	// hash. With Quantum=1 it reproduces DChoice bit for bit; larger quanta
	// need only the information a sketch store can actually provide.
	CoarseDChoice
)

// String returns the canonical short name of the policy.
func (p Policy) String() string {
	if cp, err := p.toCore(); err == nil {
		return cp.String()
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// PolicyNames returns the canonical names of every public policy in sorted
// order — the deterministic list for usage strings and error messages.
func PolicyNames() []string {
	names := make([]string, 0, len(core.PolicyNames()))
	for _, name := range core.PolicyNames() {
		cp, err := core.ParsePolicy(name)
		if err != nil {
			continue
		}
		if _, ok := policyFromCore(cp); ok {
			names = append(names, name)
		}
	}
	return names
}

// PolicyHelp returns one sorted "name — note" line per public policy,
// summarizing each policy's decision rule and memory/accuracy profile —
// the deterministic list for CLI usage strings.
func PolicyHelp() []string {
	help := make([]string, 0, len(core.PolicyHelp()))
	for _, line := range core.PolicyHelp() {
		name, _, ok := strings.Cut(line, " — ")
		if !ok {
			continue
		}
		if cp, err := core.ParsePolicy(name); err == nil {
			if _, public := policyFromCore(cp); public {
				help = append(help, line)
			}
		}
	}
	return help
}

// ParsePolicy converts a short policy name (as printed by Policy.String,
// e.g. "kd", "dchoice", "single") back into a Policy. Unknown names list
// the valid policies in sorted order.
func ParsePolicy(s string) (Policy, error) {
	cp, err := core.ParsePolicy(s)
	if err != nil {
		return 0, fmt.Errorf("kdchoice: unknown policy %q (valid: %s)", s, strings.Join(PolicyNames(), ", "))
	}
	p, ok := policyFromCore(cp)
	if !ok {
		return 0, fmt.Errorf("kdchoice: policy %q is not part of the public API (valid: %s)", s, strings.Join(PolicyNames(), ", "))
	}
	return p, nil
}

// Store selects the bin-load representation backing an Allocator or
// experiment cell. All stores produce bit-identical results for equal
// seeds; they trade memory for statistics cost:
//
//   - StoreDense (default): one int per bin, 8 bytes/bin.
//   - StoreCompact: one uint16 per bin, 2 bytes/bin; a bin whose load
//     reaches 65535 escapes losslessly to a wide side table, so loads stay
//     exact at every magnitude. The right choice for 10⁷–10⁸ bin runs.
//   - StoreHist: int32 loads plus a maintained load histogram, 4 bytes/bin;
//     max load, gap and the occupancy counts ν_y come from the histogram
//     without ever scanning the bins.
//   - StoreNibble: 4 bits per bin (two bins per byte), ~0.5 bytes/bin; a
//     bin whose load reaches 15 escapes losslessly to a wide side table,
//     so loads stay exact at every magnitude. Under the paper's bounds the
//     escape table stays tiny, making this the 10⁸–10⁹ bin choice.
//   - StoreSketch: approximate count-min counters, under 0.5 bytes/bin at
//     the default geometry. The only non-exact store: per-bin loads are
//     one-sided overestimates (never under the true load), so results are
//     not bit-identical to the exact stores; pair it with the
//     sketch-tolerant policies (ThresholdChoice, CoarseDChoice).
type Store int

// Supported bin-load stores.
const (
	// StoreDense is the reference []int representation.
	StoreDense Store = iota
	// StoreCompact is the 2-bytes/bin representation with overflow escape.
	StoreCompact
	// StoreHist is the histogram-indexed representation.
	StoreHist
	// StoreNibble is the 4-bits/bin representation with overflow escape.
	StoreNibble
	// StoreSketch is the approximate count-min representation.
	StoreSketch
)

// String returns the canonical short name of the store.
func (s Store) String() string { return s.toKind().String() }

func (s Store) toKind() loadvec.StoreKind {
	switch s {
	case StoreCompact:
		return loadvec.StoreCompact
	case StoreHist:
		return loadvec.StoreHist
	case StoreNibble:
		return loadvec.StoreNibble
	case StoreSketch:
		return loadvec.StoreSketch
	default:
		return loadvec.StoreKind(s) // dense, or out of range (rejected by Validate)
	}
}

// StoreNames returns the canonical store names in sorted order.
func StoreNames() []string { return loadvec.StoreNames() }

// StoreHelp returns one sorted "name — note" line per store, summarizing
// each store's memory budget and accuracy contract — the deterministic list
// for CLI usage strings.
func StoreHelp() []string { return loadvec.StoreHelp() }

// ParseStore converts a short store name ("dense", "compact", "hist",
// "nibble", "sketch") back into a Store. Unknown names list the valid
// stores in sorted order.
func ParseStore(s string) (Store, error) {
	k, err := loadvec.ParseStoreKind(s)
	if err != nil {
		return 0, fmt.Errorf("kdchoice: unknown store %q (valid: %s)", s, strings.Join(StoreNames(), ", "))
	}
	switch k {
	case loadvec.StoreCompact:
		return StoreCompact, nil
	case loadvec.StoreHist:
		return StoreHist, nil
	case loadvec.StoreNibble:
		return StoreNibble, nil
	case loadvec.StoreSketch:
		return StoreSketch, nil
	default:
		return StoreDense, nil
	}
}

// policyFromCore maps a core policy back onto its public counterpart.
func policyFromCore(cp core.Policy) (Policy, bool) {
	switch cp {
	case core.KDChoice:
		return KDChoice, true
	case core.SerializedKD:
		return Serialized, true
	case core.DChoice:
		return DChoice, true
	case core.SingleChoice:
		return SingleChoice, true
	case core.OnePlusBeta:
		return OnePlusBeta, true
	case core.AlwaysGoLeft:
		return AlwaysGoLeft, true
	case core.AdaptiveKD:
		return AdaptiveKD, true
	case core.StaleBatch:
		return StaleBatch, true
	case core.DynamicKD:
		return DynamicKD, true
	case core.ThresholdChoice:
		return ThresholdChoice, true
	case core.CoarseDChoice:
		return CoarseDChoice, true
	default:
		return 0, false
	}
}

func (p Policy) toCore() (core.Policy, error) {
	switch p {
	case KDChoice:
		return core.KDChoice, nil
	case Serialized:
		return core.SerializedKD, nil
	case DChoice:
		return core.DChoice, nil
	case SingleChoice:
		return core.SingleChoice, nil
	case OnePlusBeta:
		return core.OnePlusBeta, nil
	case AlwaysGoLeft:
		return core.AlwaysGoLeft, nil
	case AdaptiveKD:
		return core.AdaptiveKD, nil
	case StaleBatch:
		return core.StaleBatch, nil
	case DynamicKD:
		return core.DynamicKD, nil
	case ThresholdChoice:
		return core.ThresholdChoice, nil
	case CoarseDChoice:
		return core.CoarseDChoice, nil
	default:
		return 0, fmt.Errorf("kdchoice: unknown policy %d", int(p))
	}
}

// Config fully describes an Allocator. The zero value is not valid: Bins
// must be positive and K/D set for the round-based policies (New applies
// defaults where documented).
type Config struct {
	// Bins is the number of bins n (required, >= 1).
	Bins int
	// K is the number of balls per round (KDChoice, Serialized,
	// AdaptiveKD).
	K int
	// D is the number of probes per round (all multi-choice policies).
	D int
	// Policy selects the process; zero value means KDChoice.
	Policy Policy
	// Seed makes the allocator deterministic; allocators with equal
	// Config produce identical sequences.
	Seed uint64
	// Beta is the two-choice probability for OnePlusBeta (in [0, 1]).
	Beta float64
	// Sigma is a fixed serialization permutation of {0..K-1} for the
	// Serialized policy (nil = identity).
	Sigma []int
	// RandomSigma draws a fresh random σ every round (Serialized).
	RandomSigma bool
	// ReferenceSelect runs the round-based policies on the reference
	// sort-based slot-selection kernel instead of the default O(d + k log k)
	// counting kernel. Both induce the same allocation law and, for a fixed
	// Seed, the same results; the option exists for verification and
	// benchmarking against the reference implementation.
	ReferenceSelect bool
	// Store selects the bin-load representation (StoreDense, StoreCompact,
	// StoreHist). The zero value is the dense reference; all stores are
	// bit-identical in outcome for equal seeds.
	Store Store
	// Pipeline moves random generation onto a producer goroutine while the
	// round loop consumes it (whole pre-drawn supersteps for the round
	// policies, raw word blocks otherwise) — bit-identical to the serial
	// path by construction, and typically faster for sample-heavy
	// configurations (large d). A pipelined Allocator owns a background
	// goroutine: call Close when done with it. Experiment/Sweep/Simulate
	// manage the lifecycle automatically.
	Pipeline bool
	// Block is the superstep size of the fixed-prologue round policies
	// (KDChoice, fixed-σ Serialized, DChoice, DynamicKD): randomness is
	// pre-drawn in blocks of Block rounds, amortizing per-round generator
	// and scratch setup. Results are bit-identical for every value. 0
	// (the default) auto-sizes the superstep to ~4096 samples; explicit
	// values must be >= 1. Policies without a fixed round prologue ignore
	// Block.
	Block int
	// VecDims > 0 switches the allocator to vector-load mode: every bin
	// carries a []float64 load vector of this many components, balls arrive
	// via InsertVec, and decisions compare the VecNorm aggregation of the
	// vectors. Vector mode is online-only (per-ball policies); the scalar
	// round entry points reject it.
	VecDims int
	// VecNorm is vector mode's aggregation norm (zero value NormLInf, the
	// bottleneck-resource reading).
	VecNorm Norm
	// Quantum is CoarseDChoice's load-bucket width: decisions compare
	// floor(load/Quantum). 0 applies the default (4); 1 reproduces exact
	// d-choice bit for bit. Other policies ignore it.
	Quantum int
	// SketchWidth is the count-min row width (counters per hash row) when
	// Store is StoreSketch; 0 auto-sizes to Bins/8, rounded up to a power
	// of two. More width means tighter estimates and more memory.
	SketchWidth int
	// SketchDepth is the count-min row count (independent hash rows, at
	// most 8) when Store is StoreSketch; 0 applies the default (2).
	SketchDepth int
	// Shards engages the sharded superstep engine: bins are partitioned
	// across this many workers, each block of rounds is decided in
	// parallel against a frozen load snapshot (all randomness pre-drawn
	// serially, so the stream never depends on the worker count), and
	// placements apply serially in round order. Results are bit-identical
	// across ANY shard count >= 2. Relative to serial: StaleBatch and
	// SingleChoice are bit-identical always; KDChoice, fixed-σ
	// Serialized, DChoice, and CoarseDChoice are bit-identical at
	// Block = 1 and otherwise see each round's loads as of its block
	// start (the staleness horizon is exactly Block rounds); OnePlusBeta
	// matches the serial law in distribution only. Policies with
	// data-dependent draw patterns reject Shards > 1.
	//
	// 0 = auto: GOMAXPROCS workers for StaleBatch (exact at any count),
	// serial for every other policy — auto never changes the allocation
	// law between hosts; sharding a staleness-coupled policy is an
	// explicit opt-in.
	Shards int
	// Faults attaches a deterministic fault-injection plan (see
	// ParseFaults and faults.go): seeded bin outages with recovery,
	// per-probe loss, bounded read noise, and graceful degradation
	// (bounded retries, deciding with the surviving d' < d probes,
	// evict-recover for serving). All fault randomness comes from
	// dedicated streams split off Seed, so faulty runs are bit-identical
	// for any Workers/Shards setting (a non-empty plan forces serial
	// decisions). Nil or empty is bit-identical to a fault-free
	// allocator at zero extra cost. Supported by KDChoice, fixed-σ
	// Serialized and the per-ball serving family, scalar mode only.
	Faults *FaultPlan
}

// withDefaults returns cfg with the documented zero-value defaults applied
// (Policy zero means KDChoice). New and Simulate share this normalization,
// so the two entry points can never disagree about what a zero field means.
func (cfg Config) withDefaults() Config {
	if cfg.Policy == 0 {
		cfg.Policy = KDChoice
	}
	return cfg
}

// coreConfig validates the fields core cannot diagnose clearly (negative
// K/D would otherwise surface as confusing "requires K >= 1" errors even
// for policies that ignore K) and maps cfg onto the core process
// parameters. cfg must already be normalized by withDefaults.
func (cfg Config) coreConfig() (core.Policy, core.Params, error) {
	cp, err := cfg.Policy.toCore()
	if err != nil {
		return 0, core.Params{}, err
	}
	if cfg.K < 0 {
		return 0, core.Params{}, fmt.Errorf("kdchoice: K = %d, must be non-negative", cfg.K)
	}
	if cfg.D < 0 {
		return 0, core.Params{}, fmt.Errorf("kdchoice: D = %d, must be non-negative", cfg.D)
	}
	return cp, core.Params{
		N:               cfg.Bins,
		K:               cfg.K,
		D:               cfg.D,
		Beta:            cfg.Beta,
		Sigma:           cfg.Sigma,
		RandomSigma:     cfg.RandomSigma,
		ReferenceSelect: cfg.ReferenceSelect,
		Store:           cfg.Store.toKind(),
		VecDims:         cfg.VecDims,
		VecNorm:         cfg.VecNorm.toLoadvec(),
		Pipeline:        cfg.Pipeline,
		Block:           cfg.Block,
		Shards:          cfg.Shards,
		Quantum:         cfg.Quantum,
		SketchWidth:     cfg.SketchWidth,
		SketchDepth:     cfg.SketchDepth,
		Faults:          cfg.Faults,
	}, nil
}

// validate checks cfg end to end — the public-layer checks plus the process
// parameter validation — without constructing an allocator (no N-sized
// allocations). Sweep uses it to classify grid cells.
func (cfg Config) validate() error {
	cp, params, err := cfg.withDefaults().coreConfig()
	if err != nil {
		return err
	}
	if err := core.Validate(cp, params); err != nil {
		return fmt.Errorf("kdchoice: %w", err)
	}
	return nil
}

// Allocator runs one allocation process instance. Construct with New or
// NewKD. Not safe for concurrent use; run one Allocator per goroutine.
type Allocator struct {
	pr        *core.Process
	cfg       Config
	observers []Observer
}

// New creates an Allocator from cfg.
func New(cfg Config) (*Allocator, error) {
	cfg = cfg.withDefaults()
	cp, params, err := cfg.coreConfig()
	if err != nil {
		return nil, err
	}
	pr, err := core.New(cp, params, newRNG(cfg.Seed))
	if err != nil {
		return nil, fmt.Errorf("kdchoice: %w", err)
	}
	return &Allocator{pr: pr, cfg: cfg}, nil
}

// NewKD creates a (k,d)-choice allocator over n bins — the common case.
func NewKD(n, k, d int, seed uint64) (*Allocator, error) {
	return New(Config{Bins: n, K: k, D: d, Seed: seed})
}

// Config returns the configuration the allocator was built with.
func (a *Allocator) Config() Config { return a.cfg }

// Place places m more balls (m >= 0). For round-based policies a final
// partial round is used when the round size does not divide m.
func (a *Allocator) Place(m int) error {
	if m < 0 {
		return fmt.Errorf("kdchoice: Place(%d): ball count must be non-negative", m)
	}
	a.pr.Place(m)
	return nil
}

// PlaceAll places one ball per bin (the paper's canonical n-balls-into-
// n-bins experiment).
func (a *Allocator) PlaceAll() {
	a.pr.Place(a.pr.N())
}

// Round advances the process by one full round (K balls for round-based
// policies, 1 ball otherwise).
func (a *Allocator) Round() { a.pr.Round() }

// N returns the number of bins.
func (a *Allocator) N() int { return a.pr.N() }

// Balls returns the number of balls placed.
func (a *Allocator) Balls() int { return a.pr.Balls() }

// Rounds returns the number of completed rounds.
func (a *Allocator) Rounds() int { return a.pr.Rounds() }

// MaxLoad returns the current maximum bin load — the quantity bounded by
// the paper's Theorem 1 and Theorem 2.
func (a *Allocator) MaxLoad() int { return a.pr.MaxLoad() }

// Gap returns max load minus average load, the heavily-loaded-case metric.
func (a *Allocator) Gap() float64 { return a.pr.Gap() }

// Messages returns the cumulative message cost (total bins probed).
func (a *Allocator) Messages() int64 { return a.pr.Messages() }

// Load returns the load of bin id (0-based). It panics when bin is out of
// range, consistent with the rest of the API's explicit validation — a bad
// index is a caller bug, not an empty bin.
func (a *Allocator) Load(bin int) int {
	if bin < 0 || bin >= a.pr.N() {
		panic(fmt.Sprintf("kdchoice: Load(%d): bin index out of range [0, %d)", bin, a.pr.N()))
	}
	return a.pr.Load(bin)
}

// Loads returns a copy of the per-bin load vector.
func (a *Allocator) Loads() []int { return a.pr.Loads() }

// SortedLoads returns the loads in decreasing order, so SortedLoads()[x-1]
// is B_x in the paper's notation (the x-th most loaded bin).
func (a *Allocator) SortedLoads() []int { return a.pr.Loads().Sorted() }

// BinsWithAtLeast returns ν_y: the number of bins holding at least y balls.
func (a *Allocator) BinsWithAtLeast(y int) int { return a.pr.NuY(y) }

// BytesPerBin returns the measured memory cost of the bin-load store in
// bytes per bin, including any overflow-escape surcharge — the quantity
// the approximate-store frontier trades against max-load accuracy.
func (a *Allocator) BytesPerBin() float64 { return a.pr.Store().BytesPerBin() }

// Reset empties all bins and zeroes the counters without rewinding the
// random stream, giving an independent fresh run.
func (a *Allocator) Reset() { a.pr.Reset() }

// Close releases background resources — the pipelined random engine's
// producer goroutine (Config.Pipeline). It is a no-op for serial
// allocators and is idempotent; a closed allocator must not place further
// balls, but its accessors remain valid.
func (a *Allocator) Close() { a.pr.Close() }
