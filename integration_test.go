package kdchoice_test

// Integration tests: cross-package flows exercised exactly as the command
// line tools and a downstream user would, checking the paper's claims end
// to end at moderate scale with fixed seeds.

import (
	"testing"

	kdchoice "repro"
	"repro/internal/experiments"
)

// TestEndToEndTable1Agreement reproduces a reduced-n Table 1 and requires
// near-total agreement with the paper's published cells (max loads are
// extremely concentrated, so even at n = 3·2^10 nearly every cell matches;
// single-choice cells differ because their max load grows with n).
func TestEndToEndTable1Agreement(t *testing.T) {
	cells, err := experiments.Table1(experiments.Table1Opts{N: 3 * (1 << 10), Runs: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	paper := experiments.PaperTable1()
	comparable, within1 := 0, 0
	for _, c := range cells {
		want, ok := paper[[2]int{c.K, c.D}]
		if !ok {
			continue
		}
		comparable++
		ok1 := true
		for _, g := range c.DistinctMax {
			hit := false
			for _, w := range want {
				if g >= w-1 && g <= w+1 {
					hit = true
					break
				}
			}
			if !hit {
				ok1 = false
			}
		}
		if ok1 {
			within1++
		}
	}
	if comparable < 60 {
		t.Fatalf("only %d comparable cells", comparable)
	}
	if frac := float64(within1) / float64(comparable); frac < 0.9 {
		t.Fatalf("only %.0f%% of cells within ±1 of the paper", frac*100)
	}
}

// TestPublicAPIAgreesWithExperiments: the public Simulate and the internal
// experiment harness must produce identical numbers for the same cell and
// seed derivation.
func TestPublicAPIAgreesWithExperiments(t *testing.T) {
	const n, k, d = 2048, 2, 3
	pub, err := kdchoice.Simulate(kdchoice.Config{Bins: n, K: k, D: d, Seed: 77}, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	pub2, err := kdchoice.Simulate(kdchoice.Config{Bins: n, K: k, D: d, Seed: 77}, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pub.MaxLoads {
		if pub.MaxLoads[i] != pub2.MaxLoads[i] {
			t.Fatal("Simulate not reproducible across calls")
		}
	}
}

// TestMessageCostMatchesTheory: the allocator's measured message counter
// must equal the closed-form MessageCost for every (k,d,m) combination.
func TestMessageCostMatchesTheory(t *testing.T) {
	cases := []struct{ n, k, d, m int }{
		{64, 2, 3, 64}, {64, 2, 3, 63}, {64, 4, 8, 130}, {128, 1, 2, 128},
	}
	for _, tc := range cases {
		a, err := kdchoice.NewKD(tc.n, tc.k, tc.d, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Place(tc.m); err != nil {
			t.Fatal(err)
		}
		if got, want := a.Messages(), kdchoice.MessageCost(tc.k, tc.d, tc.m); got != want {
			t.Fatalf("(%d,%d) m=%d: measured %d, theory %d", tc.k, tc.d, tc.m, got, want)
		}
	}
}

// TestRegimeTransition: walking k from 1 to d−1 at fixed d must move the
// regime from d-choice-like toward single-like behavior, with max load
// non-decreasing (property (iii) direction).
func TestRegimeTransition(t *testing.T) {
	const n, d = 4096, 64
	prevMax := -1.0
	for _, k := range []int{1, 16, 32, 48, 63} {
		res, err := kdchoice.Simulate(kdchoice.Config{Bins: n, K: k, D: d, Seed: 13}, 0, 8)
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanMax < prevMax-0.3 {
			t.Fatalf("k=%d: mean max %.2f dropped below previous %.2f", k, res.MeanMax, prevMax)
		}
		prevMax = res.MeanMax
	}
	// And the message cost per ball falls toward 1 as k -> d.
	lo := kdchoice.MessageCost(63, 64, n)
	hi := kdchoice.MessageCost(1, 64, n)
	if lo >= hi {
		t.Fatal("message cost should shrink as k approaches d")
	}
}

// TestFullSpectrumEndpoints: the (k,d) process interpolates between the
// classical processes — k=1 matches d-choice and k=d−1 with large d
// approaches single choice (within one ball at this scale).
func TestFullSpectrumEndpoints(t *testing.T) {
	const n = 4096
	kd1, err := kdchoice.Simulate(kdchoice.Config{Bins: n, K: 1, D: 3, Seed: 21}, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	dch, err := kdchoice.Simulate(kdchoice.Config{Bins: n, D: 3, Policy: kdchoice.DChoice, Seed: 22}, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if diff := kd1.MeanMax - dch.MeanMax; diff < -0.4 || diff > 0.4 {
		t.Fatalf("(1,3) mean %.2f vs 3-choice %.2f", kd1.MeanMax, dch.MeanMax)
	}

	wide, err := kdchoice.Simulate(kdchoice.Config{Bins: n, K: 255, D: 256, Seed: 23}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	single, err := kdchoice.Simulate(kdchoice.Config{Bins: n, Policy: kdchoice.SingleChoice, Seed: 24}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if wide.MeanMax > single.MeanMax {
		t.Fatalf("(255,256) mean %.2f should not exceed single choice %.2f", wide.MeanMax, single.MeanMax)
	}
	if wide.MeanMax < single.MeanMax-2.5 {
		t.Fatalf("(255,256) mean %.2f too far below single choice %.2f for the single-like regime",
			wide.MeanMax, single.MeanMax)
	}
}
