// Command schedsim runs the Section 1.3 cluster-scheduling experiment
// (A1): response time of parallel jobs under batch (k,d)-choice placement
// versus per-task d-choice at the SAME total probe budget, across job
// parallelism levels. The whole grid runs in parallel on the shared
// kdchoice.Study worker pool; -runs averages each cell over independent
// replicas.
//
// Usage:
//
//	schedsim [-workers 100] [-jobs 2000] [-rho 0.85] [-seed 1] [-runs 1]
//	         [-pool 0] [-pareto] [-format text|csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "schedsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("schedsim", flag.ContinueOnError)
	workers := fs.Int("workers", 100, "worker machines")
	jobs := fs.Int("jobs", 2000, "jobs per cell")
	rho := fs.Float64("rho", 0.85, "target utilization (0,1)")
	seed := fs.Uint64("seed", 1, "root seed")
	runs := fs.Int("runs", 1, "independent runs averaged per cell")
	pool := fs.Int("pool", 0, "study worker-pool bound (0 = GOMAXPROCS)")
	pareto := fs.Bool("pareto", false, "heavy-tailed (Pareto) task durations")
	format := fs.String("format", "text", "output format: text or csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "csv" {
		return fmt.Errorf("unknown -format %q (text, csv)", *format)
	}

	rows, err := experiments.SchedulerComparison(experiments.SchedulerOpts{
		Workers: *workers,
		Jobs:    *jobs,
		Rho:     *rho,
		Seed:    *seed,
		Runs:    *runs,
		Pool:    *pool,
		Pareto:  *pareto,
	})
	if err != nil {
		return err
	}

	dist := "exponential(1)"
	if *pareto {
		dist = "pareto(2, mean 1)"
	}
	fmt.Fprintf(out, "cluster scheduling: %d workers, %d jobs, rho=%.2f, tasks ~ %s, %d run(s)/cell\n", *workers, *jobs, *rho, dist, *runs)
	fmt.Fprintf(out, "batch = (k,2k)-choice per job; per-task = 2-choice per task (equal probe budgets)\n\n")
	t := table.New("k", "batch mean", "batch p95", "late-bind mean", "late-bind p95", "per-task mean", "per-task p95", "random mean", "probes/job")
	for _, r := range rows {
		t.AddRowf(r.K,
			fmt.Sprintf("%.3f", r.BatchMean), fmt.Sprintf("%.3f", r.BatchP95),
			fmt.Sprintf("%.3f", r.LateMean), fmt.Sprintf("%.3f", r.LateP95),
			fmt.Sprintf("%.3f", r.PerTaskMean), fmt.Sprintf("%.3f", r.PerTaskP95),
			fmt.Sprintf("%.3f", r.RandomMean),
			fmt.Sprintf("%.0f", r.ProbesPerJob))
	}
	if *format == "csv" {
		fmt.Fprint(out, t.CSV())
	} else {
		fmt.Fprint(out, t.Text())
	}
	return nil
}
