package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmall(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workers", "40", "-jobs", "300", "-rho", "0.7"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"40 workers", "batch mean", "per-task p95", "probes/job"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPareto(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workers", "40", "-jobs", "200", "-pareto"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pareto") {
		t.Fatalf("pareto header missing:\n%s", buf.String())
	}
}

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-workers", "40", "-jobs", "200", "-format", "csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k,batch mean") {
		t.Fatalf("csv output wrong:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-rho", "2"}, &buf); err == nil {
		t.Fatal("invalid rho accepted")
	}
	if err := run([]string{"-bad"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunRejectsUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-workers", "40", "-jobs", "50", "-format", "json"}, &buf)
	if err == nil {
		t.Fatal("unknown -format accepted")
	}
	if !strings.Contains(err.Error(), "json") {
		t.Fatalf("error does not name the bad format: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatal("output produced despite invalid format")
	}
}

func TestRunMultiRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	args := []string{"-workers", "40", "-jobs", "100", "-runs", "2", "-seed", "9"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-pool", "1"), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("pool size changed command output")
	}
}
