// Command sweep runs the figure-style experiment series of the
// reproduction and prints their data tables (text or CSV):
//
//	sweep -exp loadvec   — Figures 1 & 2: sorted-load profiles + checkpoints
//	sweep -exp scaling   — Theorem 1(i): max load vs n for d_k = O(1)
//	sweep -exp cor1      — Corollary 1: max load vs n for d = k+1
//	sweep -exp heavy     — Theorem 2: gap vs m/n for d >= 2k
//	sweep -exp tradeoff  — the message-cost/max-load frontier
//	sweep -exp adaptive  — Section 7 water-filling ablation
//	sweep -exp remarks   — the Section 1.2 remark comparisons
//	sweep -exp induction — Theorem 4's layered-induction sequence β_i vs measured ν
//	sweep -exp lemmas    — Lemma 2/11 occupancy bounds and the Lemma 4 overflow tail
//	sweep -exp pipeline  — distributed protocol: balance vs makespan as concurrent
//	                       dispatcher rounds decide on stale load reports
//	sweep -exp faults    — robustness frontier: gap inflation vs probe-loss
//	                       rate × retry budget under the fault layer
//
// Each experiment accepts -n, -runs, and -seed. Use -format csv for plots.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	exp := fs.String("exp", "scaling", "experiment: loadvec, scaling, cor1, heavy, tradeoff, adaptive, remarks")
	n := fs.Int("n", 1<<16, "bin count (loadvec/tradeoff/adaptive/remarks)")
	runs := fs.Int("runs", 10, "runs per point")
	seed := fs.Uint64("seed", 1, "root seed")
	format := fs.String("format", "text", "output format: text or csv")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tbl *table.Table
	var err error
	switch *exp {
	case "loadvec":
		tbl, err = loadvecTable(*n, *runs, *seed)
	case "scaling":
		tbl, err = scalingTable(*runs, *seed)
	case "cor1":
		tbl, err = cor1Table(*runs, *seed)
	case "heavy":
		tbl, err = heavyTable(*runs, *seed)
	case "tradeoff":
		tbl, err = tradeoffTable(*n, *runs, *seed)
	case "adaptive":
		tbl, err = adaptiveTable(*n, *runs, *seed)
	case "remarks":
		tbl, err = remarksTable(*n, *runs, *seed)
	case "induction":
		tbl, err = inductionTable(*n, *runs, *seed)
	case "lemmas":
		tbl, err = lemmasTable(*n, *runs, *seed)
	case "pipeline":
		tbl, err = pipelineTable(*runs, *seed)
	case "faults":
		tbl, err = faultsTable(*n, *runs, *seed)
	default:
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "experiment=%s runs=%d seed=%d\n\n", *exp, *runs, *seed)
	if *format == "csv" {
		fmt.Fprint(out, tbl.CSV())
	} else {
		fmt.Fprint(out, tbl.Text())
	}
	return nil
}

func loadvecTable(n, runs int, seed uint64) (*table.Table, error) {
	t := table.New("k", "d", "beta0", "gamma*", "B_1", "B_beta0", "B_gamma*",
		"gap B1-Bbeta0", "theory gap", "theory crowd")
	profiles, err := experiments.LoadVectorProfiles(
		[][2]int{{2, 3}, {8, 9}, {32, 48}, {128, 193}}, n, runs, seed)
	if err != nil {
		return nil, err
	}
	for _, p := range profiles {
		t.AddRowf(p.K, p.D, p.Beta0, p.GammaStar,
			fmt.Sprintf("%.2f", p.B1), fmt.Sprintf("%.2f", p.BBeta0),
			fmt.Sprintf("%.2f", p.BGammaStar), fmt.Sprintf("%.2f", p.MeasuredGap),
			fmt.Sprintf("%.2f", p.PredictedGap), fmt.Sprintf("%.2f", p.PredictedCrowd))
	}
	return t, nil
}

func scalingTable(runs int, seed uint64) (*table.Table, error) {
	ns := []int{1 << 10, 1 << 12, 1 << 14, 1 << 16, 1 << 18}
	t := table.New("k", "d", "n", "mean max", "theory leading term")
	grid, err := experiments.ScalingGrid([][2]int{{1, 2}, {2, 4}, {4, 8}, {8, 16}}, ns, runs, seed)
	if err != nil {
		return nil, err
	}
	for _, row := range grid {
		for _, p := range row.Points {
			t.AddRowf(row.K, row.D, p.N,
				fmt.Sprintf("%.2f", p.MeanMax), fmt.Sprintf("%.2f", p.Predicted))
		}
	}
	return t, nil
}

func cor1Table(runs int, seed uint64) (*table.Table, error) {
	ns := []int{1 << 12, 1 << 14, 1 << 16}
	pairs := make([][2]int, 0, 4)
	for _, k := range []int{4, 16, 64, 256} {
		pairs = append(pairs, [2]int{k, k + 1})
	}
	t := table.New("k", "d", "n", "mean max", "theory leading term")
	grid, err := experiments.ScalingGrid(pairs, ns, runs, seed)
	if err != nil {
		return nil, err
	}
	for _, row := range grid {
		for _, p := range row.Points {
			t.AddRowf(row.K, row.D, p.N,
				fmt.Sprintf("%.2f", p.MeanMax), fmt.Sprintf("%.2f", p.Predicted))
		}
	}
	return t, nil
}

func heavyTable(runs int, seed uint64) (*table.Table, error) {
	const n = 1 << 14
	mults := []int{1, 2, 4, 8, 16, 32}
	t := table.New("k", "d", "m/n", "mean gap", "theory lower", "theory upper")
	grid, err := experiments.HeavyGrid([][2]int{{1, 2}, {2, 4}, {4, 8}, {2, 6}}, n, mults, runs, seed)
	if err != nil {
		return nil, err
	}
	for _, row := range grid {
		for _, p := range row.Points {
			t.AddRowf(row.K, row.D, p.Mult,
				fmt.Sprintf("%.3f", p.MeanGap),
				fmt.Sprintf("%.2f", p.GapLower), fmt.Sprintf("%.2f", p.GapUpper))
		}
	}
	return t, nil
}

func tradeoffTable(n, runs int, seed uint64) (*table.Table, error) {
	pts, err := experiments.TradeoffFrontier(n, runs, seed)
	if err != nil {
		return nil, err
	}
	t := table.New("strategy", "k", "d", "mean max load", "messages/ball", "regime")
	for _, p := range pts {
		t.AddRowf(p.Label, p.K, p.D,
			fmt.Sprintf("%.2f", p.MeanMax), fmt.Sprintf("%.3f", p.MessagesPerBall), p.Regime)
	}
	return t, nil
}

func adaptiveTable(n, runs int, seed uint64) (*table.Table, error) {
	pts, err := experiments.AdaptiveAblation(n, runs, seed,
		[][2]int{{2, 3}, {8, 9}, {64, 65}, {192, 193}})
	if err != nil {
		return nil, err
	}
	t := table.New("k", "d", "strict mean max", "water-fill mean max", "dynamic-k mean max", "dynamic msgs/ball")
	for _, p := range pts {
		t.AddRowf(p.K, p.D,
			fmt.Sprintf("%.2f", p.StrictMax), fmt.Sprintf("%.2f", p.AdaptMax),
			fmt.Sprintf("%.2f", p.DynMax), fmt.Sprintf("%.3f", p.DynMsgsPerBall))
	}
	return t, nil
}

func inductionTable(n, runs int, seed uint64) (*table.Table, error) {
	t := table.New("k", "d", "layer i", "beta_i", "measured nu_{y0+i}", "holds")
	for _, kd := range [][2]int{{1, 2}, {2, 4}, {4, 8}} {
		res, err := experiments.LayeredInductionCheck(kd[0], kd[1], n, runs, seed)
		if err != nil {
			return nil, err
		}
		for _, row := range res.Rows {
			t.AddRowf(res.K, res.D, row.I,
				fmt.Sprintf("%.1f", row.Beta), fmt.Sprintf("%.1f", row.MeasNu),
				fmt.Sprintf("%t", row.Holds))
		}
		t.AddRowf(res.K, res.D, "proof",
			fmt.Sprintf("max <= y0+i*+2 = %d", res.ProofBound),
			fmt.Sprintf("measured max %.2f", res.MaxLoadMean),
			fmt.Sprintf("%t", res.MaxLoadMean <= float64(res.ProofBound)))
	}
	return t, nil
}

func lemmasTable(n, runs int, seed uint64) (*table.Table, error) {
	t := table.New("check", "y/j", "measured", "bound", "holds")
	occ, err := experiments.SingleChoiceOccupancy(n, runs, seed)
	if err != nil {
		return nil, err
	}
	for _, r := range occ {
		t.AddRowf("Lemma 2: mu_y <= 8n/y!", r.Y,
			fmt.Sprintf("%.1f", r.MuMeasured), fmt.Sprintf("%.1f", r.MuBound),
			fmt.Sprintf("%t", r.MuHolds))
		t.AddRowf("Lemma 11: nu_y >= n/(8y!)", r.Y,
			fmt.Sprintf("%.1f", r.NuMeasured), fmt.Sprintf("%.1f", r.NuBound),
			fmt.Sprintf("%t", r.NuHolds))
	}
	over, err := experiments.Lemma4Check(2, 4, n, runs, seed)
	if err != nil {
		return nil, err
	}
	for _, r := range over {
		t.AddRowf(fmt.Sprintf("Lemma 4 (2,4): nu_1/n <= %.1f", r.NuFracMax), r.J,
			fmt.Sprintf("%.4f", r.Freq), fmt.Sprintf("%.4f", r.Bound),
			fmt.Sprintf("%t", r.Holds))
	}
	return t, nil
}

func pipelineTable(runs int, seed uint64) (*table.Table, error) {
	pts, err := experiments.PipelineAblation(1024, 2, 4, 512, runs, seed, nil)
	if err != nil {
		return nil, err
	}
	t := table.New("pipeline depth", "mean max load", "mean makespan", "messages/ball")
	for _, p := range pts {
		t.AddRowf(p.Pipeline,
			fmt.Sprintf("%.2f", p.MeanMax), fmt.Sprintf("%.1f", p.MeanMakespan),
			fmt.Sprintf("%.2f", p.MsgsPerBall))
	}
	return t, nil
}

func faultsTable(n, runs int, seed uint64) (*table.Table, error) {
	pts, err := experiments.FaultFrontier(experiments.FaultFrontierOpts{
		N: n, Runs: runs, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	t := table.New("loss rate", "retry budget", "mean gap", "gap inflation",
		"probes lost/run", "retries/run", "fallbacks/run")
	for _, p := range pts {
		t.AddRowf(fmt.Sprintf("%.2f", p.LossRate), p.Retry,
			fmt.Sprintf("%.3f", p.MeanGap), fmt.Sprintf("%+.3f", p.GapInflation),
			fmt.Sprintf("%.0f", p.ProbesLost), fmt.Sprintf("%.0f", p.Retries),
			fmt.Sprintf("%.1f", p.Fallbacks))
	}
	return t, nil
}

func remarksTable(n, runs int, seed uint64) (*table.Table, error) {
	rows, err := experiments.Remarks(n, runs, seed)
	if err != nil {
		return nil, err
	}
	t := table.New("comparison", "left max", "right max", "left msgs/ball", "right msgs/ball", "paper's point")
	for _, r := range rows {
		t.AddRowf(r.Name,
			table.IntsCell(r.LeftMax), table.IntsCell(r.RightMax),
			fmt.Sprintf("%.3f", r.LeftMsgs), fmt.Sprintf("%.3f", r.RightMsgs),
			r.Explanation)
	}
	return t, nil
}
