package main

import (
	"bytes"
	"strings"
	"testing"
)

func runSweep(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestAllExperimentsSmall(t *testing.T) {
	exps := map[string][]string{
		"loadvec":   {"-exp", "loadvec", "-n", "2048", "-runs", "2"},
		"scaling":   {"-exp", "scaling", "-runs", "1"},
		"cor1":      {"-exp", "cor1", "-runs", "1"},
		"heavy":     {"-exp", "heavy", "-runs", "1"},
		"tradeoff":  {"-exp", "tradeoff", "-n", "2048", "-runs", "2"},
		"adaptive":  {"-exp", "adaptive", "-n", "2048", "-runs", "2"},
		"remarks":   {"-exp", "remarks", "-n", "2048", "-runs", "2"},
		"induction": {"-exp", "induction", "-n", "2048", "-runs", "2"},
		"lemmas":    {"-exp", "lemmas", "-n", "2048", "-runs", "2"},
	}
	// scaling/cor1/heavy sweep large internal n values; keep them but at
	// 1 run. They dominate this test's runtime (~seconds).
	if testing.Short() {
		delete(exps, "scaling")
		delete(exps, "cor1")
		delete(exps, "heavy")
	}
	for name, args := range exps {
		t.Run(name, func(t *testing.T) {
			out := runSweep(t, args...)
			if !strings.Contains(out, "experiment="+name) {
				t.Fatalf("missing header:\n%s", out)
			}
			if len(strings.Split(out, "\n")) < 4 {
				t.Fatalf("suspiciously short output:\n%s", out)
			}
		})
	}
}

func TestCSVFormat(t *testing.T) {
	out := runSweep(t, "-exp", "loadvec", "-n", "1024", "-runs", "1", "-format", "csv")
	if !strings.Contains(out, "k,d,") {
		t.Fatalf("CSV header missing:\n%s", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-exp", "zzz"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}
