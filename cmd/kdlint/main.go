// Command kdlint runs the repository's static-analysis suite: the four
// analyzers in internal/analysis that prove the determinism, hot-path,
// and layering invariants at compile time (see that package's doc for
// what each rejects).
//
// Modes:
//
//	kdlint [packages...]     analyze the packages (default ./...); print
//	                         diagnostics, exit 1 if any survive
//	kdlint -hot [packages]   list every //kd:hotpath-annotated function as
//	                         "file\tstartline\tendline\tname" — the input
//	                         scripts/escapecheck.sh joins against the
//	                         compiler's escape-analysis output
//	kdlint -list             print the analyzers and what they check
//	go vet -vettool=$(which kdlint) ./...
//	                         run under the go vet driver: kdlint speaks
//	                         the unitchecker protocol (-V=full handshake,
//	                         -flags query, and the JSON vet.cfg units the
//	                         driver hands it)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() {
	// The go vet tool handshake arrives before flag parsing: the driver
	// invokes `kdlint -V=full` to stamp the build cache and `kdlint
	// -flags` to discover analyzer flags.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			fmt.Printf("kdlint version v1\n")
			return
		}
		if arg == "-flags" || arg == "--flags" {
			fmt.Println("[]")
			return
		}
	}

	hot := flag.Bool("hot", false, "list //kd:hotpath-annotated functions (file\\tstart\\tend\\tname) instead of analyzing")
	list := flag.Bool("list", false, "print the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	pkgs, err := analysis.Load(args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kdlint:", err)
		os.Exit(2)
	}

	if *hot {
		listHot(pkgs)
		return
	}

	exit := 0
	for _, pkg := range pkgs {
		for _, d := range analysis.RunPackage(pkg, analysis.All()) {
			fmt.Println(renderDiag(d))
			exit = 1
		}
	}
	os.Exit(exit)
}

// renderDiag formats one diagnostic with the file path relative to the
// working directory (stable, clickable output regardless of how the
// loader resolved the package dir).
func renderDiag(d analysis.Diagnostic) string {
	pos := d.Pos
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			pos.Filename = rel
		}
	}
	return fmt.Sprintf("%s: [%s] %s", pos, d.Analyzer, d.Message)
}

// listHot prints every annotated hot-path function's file and line range.
func listHot(pkgs []*analysis.Package) {
	wd, _ := os.Getwd()
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !analysis.IsHotAnnotated(fd) {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.End())
				name := start.Filename
				if wd != "" {
					if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
						name = rel
					}
				}
				fmt.Printf("%s\t%d\t%d\t%s\n", name, start.Line, end.Line, fd.Name.Name)
			}
		}
	}
}

// vetConfig is the unit description the go vet driver writes for each
// package (a subset of cmd/go's internal vetConfig — unknown fields are
// ignored by encoding/json).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one vet unit and returns the process exit code
// (0 clean, 1 diagnostics, 2 internal error) following the unitchecker
// convention the go vet driver expects.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kdlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "kdlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// kdlint computes no cross-package facts, but the driver caches and
	// expects the vetx output file regardless.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "kdlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "kdlint:", err)
			return 2
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the driver already built
	// for the unit's dependencies; the stdlib gc importer reads it when
	// handed a lookup into cfg.PackageFile.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	pkg, info, err := analysis.Check(cfg.ImportPath, fset, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "kdlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	unit := &analysis.Package{
		Path:  cfg.ImportPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: files,
		Types: pkg,
		Info:  info,
	}
	diags := analysis.RunPackage(unit, analysis.All())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, renderDiag(d))
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
