// Command table1 regenerates Table 1 of the paper: the maximum bin load of
// (k,d)-choice after n balls are placed into n bins, for the paper's grid
// of k and d values, reporting the distinct maximum loads observed over
// repeated runs.
//
// The paper uses n = 3·2^16 = 196608 and 10 runs per cell; those are the
// defaults. Reduce -n for a quick pass.
//
// Usage:
//
//	table1 [-n 196608] [-runs 10] [-seed 1] [-format text|markdown|csv] [-compare] [-ks 1,2,4] [-ds 2,3,5]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("table1", flag.ContinueOnError)
	n := fs.Int("n", experiments.PaperN, "number of bins and balls")
	runs := fs.Int("runs", 10, "repetitions per cell")
	seed := fs.Uint64("seed", 1, "root seed")
	format := fs.String("format", "text", "output format: text, markdown or csv")
	compare := fs.Bool("compare", false, "append a comparison against the paper's published values")
	ks := fs.String("ks", "", "comma-separated k rows (default: the paper's grid)")
	ds := fs.String("ds", "", "comma-separated d columns (default: the paper's grid)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ks != "" {
		custom, err := parseIntList(*ks)
		if err != nil {
			return fmt.Errorf("-ks: %w", err)
		}
		experiments.Table1Ks = custom
	}
	if *ds != "" {
		custom, err := parseIntList(*ds)
		if err != nil {
			return fmt.Errorf("-ds: %w", err)
		}
		experiments.Table1Ds = custom
	}
	switch *format {
	case "text", "markdown", "csv":
	default:
		return fmt.Errorf("unknown format %q", *format)
	}

	fmt.Fprintf(out, "Table 1 reproduction: (k,d)-choice, n = %d, %d runs per cell, seed %d\n\n", *n, *runs, *seed)
	cells, err := experiments.Table1(experiments.Table1Opts{N: *n, Runs: *runs, Seed: *seed})
	if err != nil {
		return err
	}
	tbl := experiments.Table1Render(cells)
	switch *format {
	case "text":
		fmt.Fprint(out, tbl.Text())
	case "markdown":
		fmt.Fprint(out, tbl.Markdown())
	case "csv":
		fmt.Fprint(out, tbl.CSV())
	}

	if *compare {
		fmt.Fprintf(out, "\nComparison with the paper (paper values in brackets; paper used n = %d):\n\n", experiments.PaperN)
		paper := experiments.PaperTable1()
		cmp := table.New("k", "d", "measured", "paper", "match")
		for _, c := range cells {
			want, ok := paper[[2]int{c.K, c.D}]
			if !ok {
				continue
			}
			cmp.AddRow(
				fmt.Sprintf("%d", c.K),
				fmt.Sprintf("%d", c.D),
				table.IntsCell(c.DistinctMax),
				table.IntsCell(want),
				matchLabel(c.DistinctMax, want),
			)
		}
		fmt.Fprint(out, cmp.Text())
	}
	return nil
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("value %d must be >= 1", v)
		}
		out = append(out, v)
	}
	return out, nil
}

// matchLabel classifies agreement between measured and published distinct
// max loads: "exact" when the sets overlap entirely, "overlap" when they
// share a value, "±1" when every measured value is within one of a paper
// value, and "diff" otherwise.
func matchLabel(got, want []int) string {
	if len(got) == 0 || len(want) == 0 {
		return "n/a"
	}
	set := make(map[int]bool, len(want))
	for _, w := range want {
		set[w] = true
	}
	allIn := true
	anyIn := false
	within1 := true
	for _, g := range got {
		if set[g] {
			anyIn = true
		} else {
			allIn = false
		}
		ok := false
		for _, w := range want {
			if g >= w-1 && g <= w+1 {
				ok = true
				break
			}
		}
		if !ok {
			within1 = false
		}
	}
	switch {
	case allIn:
		return "exact"
	case anyIn:
		return "overlap"
	case within1:
		return "±1"
	default:
		return "diff"
	}
}
