package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmallTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "768", "-runs", "2", "-seed", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "k=1") || !strings.Contains(out, "d=193") {
		t.Fatalf("missing grid rows/cols:\n%s", out)
	}
	if !strings.Contains(out, "n = 768") {
		t.Fatalf("header missing n:\n%s", out)
	}
}

func TestRunMarkdownAndCSV(t *testing.T) {
	for _, format := range []string{"markdown", "csv"} {
		var buf bytes.Buffer
		if err := run([]string{"-n", "256", "-runs", "1", "-format", format}, &buf); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s produced no output", format)
		}
	}
}

func TestRunCompare(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "768", "-runs", "2", "-compare"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "paper") || !strings.Contains(out, "match") {
		t.Fatalf("compare section missing:\n%s", out)
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-format", "xml"}, &buf); err == nil {
		t.Fatal("bad format accepted")
	}
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bogus flag accepted")
	}
}

func TestMatchLabel(t *testing.T) {
	cases := []struct {
		got, want []int
		label     string
	}{
		{[]int{3, 4}, []int{3, 4}, "exact"},
		{[]int{3}, []int{3, 4}, "exact"},
		{[]int{3, 5}, []int{3, 4}, "overlap"},
		{[]int{5}, []int{4}, "±1"},
		{[]int{9}, []int{4}, "diff"},
		{nil, []int{4}, "n/a"},
	}
	for _, tc := range cases {
		if got := matchLabel(tc.got, tc.want); got != tc.label {
			t.Fatalf("matchLabel(%v, %v) = %q, want %q", tc.got, tc.want, got, tc.label)
		}
	}
}

func TestCustomGrid(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "512", "-runs", "1", "-ks", "1,2", "-ds", "2,3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "k=2") || strings.Contains(out, "k=192") {
		t.Fatalf("custom grid not applied:\n%s", out)
	}
}

func TestCustomGridErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-ks", "1,x"}, &buf); err == nil {
		t.Fatal("bad -ks accepted")
	}
	if err := run([]string{"-ds", "0"}, &buf); err == nil {
		t.Fatal("non-positive -ds accepted")
	}
}

func TestParseIntList(t *testing.T) {
	got, err := parseIntList(" 1, 2 ,3 ")
	if err != nil || len(got) != 3 || got[2] != 3 {
		t.Fatalf("parseIntList: %v %v", got, err)
	}
}
