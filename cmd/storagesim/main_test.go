package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSmall(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-servers", "64", "-files", "1000"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"64 servers", "kd max", "two search", "msgs/file"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-servers", "64", "-files", "500", "-format", "csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "k,kd max") {
		t.Fatalf("csv output wrong:\n%s", buf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-servers", "0"}, &buf); err == nil {
		t.Fatal("invalid servers accepted")
	}
	if err := run([]string{"-zz"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunRejectsUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-servers", "64", "-files", "100", "-format", "markdown"}, &buf)
	if err == nil {
		t.Fatal("unknown -format accepted")
	}
	if !strings.Contains(err.Error(), "markdown") {
		t.Fatalf("error does not name the bad format: %v", err)
	}
	if buf.Len() != 0 {
		t.Fatal("output produced despite invalid format")
	}
}

func TestRunMultiRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	args := []string{"-servers", "64", "-files", "300", "-runs", "2", "-seed", "9"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-pool", "1"), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("pool size changed command output")
	}
}
