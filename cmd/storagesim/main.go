// Command storagesim runs the Section 1.3 distributed-storage experiment
// (A2): balance, placement-message cost and search cost of (k,k+1)-choice
// replica placement versus per-copy two-choice and random placement. The
// whole grid runs in parallel on the shared kdchoice.Study worker pool;
// -runs averages each cell over independent replicas.
//
// Usage:
//
//	storagesim [-servers 256] [-files 20000] [-seed 1] [-runs 1] [-pool 0]
//	           [-format text|csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "storagesim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("storagesim", flag.ContinueOnError)
	servers := fs.Int("servers", 256, "storage servers")
	files := fs.Int("files", 20000, "files to ingest")
	seed := fs.Uint64("seed", 1, "root seed")
	runs := fs.Int("runs", 1, "independent runs averaged per cell")
	pool := fs.Int("pool", 0, "study worker-pool bound (0 = GOMAXPROCS)")
	format := fs.String("format", "text", "output format: text or csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "csv" {
		return fmt.Errorf("unknown -format %q (text, csv)", *format)
	}
	if *servers < 1 || *files < 1 {
		return fmt.Errorf("servers (%d) and files (%d) must be >= 1", *servers, *files)
	}

	rows, err := experiments.StorageComparison(experiments.StorageOpts{
		Servers: *servers,
		Files:   *files,
		Seed:    *seed,
		Runs:    *runs,
		Pool:    *pool,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "storage placement: %d servers, %d files, k replicas on distinct servers, %d run(s)/cell\n", *servers, *files, *runs)
	fmt.Fprintf(out, "kd = (k,k+1)-choice per file; two = 2-choice per copy\n\n")
	t := table.New("k", "kd max", "two max", "rand max",
		"kd msgs/file", "two msgs/file", "kd search", "two search")
	for _, r := range rows {
		t.AddRowf(r.K,
			fmt.Sprintf("%.0f", r.KDMax), fmt.Sprintf("%.0f", r.TwoMax), fmt.Sprintf("%.0f", r.RandMax),
			fmt.Sprintf("%.2f", r.KDMsgsPerFile), fmt.Sprintf("%.2f", r.TwoMsgsPerFile),
			fmt.Sprintf("%d", r.KDSearch), fmt.Sprintf("%d", r.TwoSearch))
	}
	if *format == "csv" {
		fmt.Fprint(out, t.CSV())
	} else {
		fmt.Fprint(out, t.Text())
	}
	return nil
}
