// Command storagesim runs the Section 1.3 distributed-storage experiment
// (A2): balance, placement-message cost and search cost of (k,k+1)-choice
// replica placement versus per-copy two-choice and random placement.
//
// Usage:
//
//	storagesim [-servers 256] [-files 20000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
	"repro/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "storagesim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("storagesim", flag.ContinueOnError)
	servers := fs.Int("servers", 256, "storage servers")
	files := fs.Int("files", 20000, "files to ingest")
	seed := fs.Uint64("seed", 1, "root seed")
	format := fs.String("format", "text", "output format: text or csv")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *servers < 1 || *files < 1 {
		return fmt.Errorf("servers (%d) and files (%d) must be >= 1", *servers, *files)
	}

	rows, err := experiments.StorageComparison(experiments.StorageOpts{
		Servers: *servers,
		Files:   *files,
		Seed:    *seed,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "storage placement: %d servers, %d files, k replicas on distinct servers\n", *servers, *files)
	fmt.Fprintf(out, "kd = (k,k+1)-choice per file; two = 2-choice per copy\n\n")
	t := table.New("k", "kd max", "two max", "rand max",
		"kd msgs/file", "two msgs/file", "kd search", "two search")
	for _, r := range rows {
		t.AddRowf(r.K,
			fmt.Sprintf("%.0f", r.KDMax), fmt.Sprintf("%.0f", r.TwoMax), fmt.Sprintf("%.0f", r.RandMax),
			fmt.Sprintf("%.2f", r.KDMsgsPerFile), fmt.Sprintf("%.2f", r.TwoMsgsPerFile),
			fmt.Sprintf("%d", r.KDSearch), fmt.Sprintf("%d", r.TwoSearch))
	}
	if *format == "csv" {
		fmt.Fprint(out, t.CSV())
	} else {
		fmt.Fprint(out, t.Text())
	}
	return nil
}
