package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunQuickScaleProducesAllSections(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "quick", "-seed", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	sections := []string{
		"## T1", "## F1/F2", "## E1", "## E2", "## E3", "## E4",
		"## E5", "## E6", "## A1", "## A2", "## AB1", "## E7", "## E8", "## AB2",
	}
	for _, s := range sections {
		if !strings.Contains(out, s) {
			t.Fatalf("report missing section %q", s)
		}
	}
	if !strings.Contains(out, "Agreement with the published table") {
		t.Fatal("missing Table 1 agreement summary")
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"-scale", "quick", "-seed", "5"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scale", "quick", "-seed", "5"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different reports")
	}
}

func TestScaleFor(t *testing.T) {
	for _, name := range []string{"quick", "full", "paper"} {
		sc, err := scaleFor(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.table1N <= 0 || sc.runs <= 0 || len(sc.scalingNs) == 0 {
			t.Fatalf("%s: bad scale %+v", name, sc)
		}
	}
	if _, err := scaleFor("huge"); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "zzz"}, &buf); err == nil {
		t.Fatal("bad scale accepted")
	}
	if err := run([]string{"-whatever"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestClassifyMatch(t *testing.T) {
	cases := []struct {
		got, want []int
		label     string
	}{
		{[]int{2}, []int{2}, "exact"},
		{[]int{2, 3}, []int{2}, "overlap"},
		{[]int{3}, []int{2}, "±1"},
		{[]int{7}, []int{2}, "diff"},
	}
	for _, tc := range cases {
		if got := classifyMatch(tc.got, tc.want); got != tc.label {
			t.Fatalf("classifyMatch(%v,%v) = %q, want %q", tc.got, tc.want, got, tc.label)
		}
	}
}
