// Command kdsim runs one allocation experiment and prints the resulting
// load statistics next to the paper's theoretical predictions. It is a thin
// front-end over the public kdchoice Experiment API.
//
// Usage:
//
//	kdsim [-n 65536] [-k 2] [-d 3] [-m 0] [-runs 10] [-policy kd] [-beta 0.5]
//	      [-store dense] [-pipeline] [-block 0] [-shards 0] [-seed 1]
//	      [-profile 10]
//
// -m 0 places n balls (the paper's canonical experiment); -m > n exercises
// the heavily loaded case of Theorem 2. -policy and -store list their valid
// values (sorted, with one-line memory/accuracy notes) in the flag help and
// in unknown-value errors. -store compact runs 10⁷–10⁸ bin experiments in
// ~2 bytes/bin, -store nibble in ~0.5, and -store sketch drops below 0.5 by
// trading exactness for one-sided overestimates; -pipeline pre-draws
// sample supersteps on a producer goroutine and -block overrides the
// superstep size (bit-identical results for any setting of either).
// -shards >= 2 engages the sharded superstep engine: decisions for each
// block of rounds run in parallel across that many workers, bit-identical
// for ANY worker count (StaleBatch and single-choice exactly match serial;
// the round policies trade a -block-bounded staleness horizon for the
// parallelism).
//
// -churn (poisson:R, adversarial:R, diurnal:R,A) or -weights (fixed:W,
// exp:MEAN, uniform:LO,HI, zipf:S,MAX) switch to the online serving mode:
// a churned operation stream of -m operations served by the (1+β) family
// with -d probes and -beta, instead of a one-shot placement.
//
// -faults attaches a deterministic fault plan to either mode: '+'-joined
// clauses fail:R[,T] (bin outages), loss:P (probe loss), noise:B (stale
// reads), retry:R (probe retry budget), evict (re-place balls out of
// failing bins). Faulty runs are bit-reproducible for any -shards value
// and report the fault counters alongside the load statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	kdchoice "repro"
	"repro/internal/stats"
	"repro/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "kdsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("kdsim", flag.ContinueOnError)
	n := fs.Int("n", 1<<16, "number of bins")
	k := fs.Int("k", 2, "balls per round")
	d := fs.Int("d", 3, "probes per round")
	m := fs.Int("m", 0, "balls to place (0 = n)")
	runs := fs.Int("runs", 10, "independent runs")
	policyName := fs.String("policy", "kd", "allocation policy, one of:\n"+strings.Join(kdchoice.PolicyHelp(), "\n"))
	beta := fs.Float64("beta", 0.5, "beta for oneplusbeta")
	storeName := fs.String("store", "dense", "bin-load store, one of:\n"+strings.Join(kdchoice.StoreHelp(), "\n"))
	pipeline := fs.Bool("pipeline", false, "pre-draw sample supersteps on a producer goroutine (bit-identical)")
	block := fs.Int("block", 0, "superstep size in rounds for the round policies (0 = auto, bit-identical for any value)")
	shards := fs.Int("shards", 0, "parallel decision workers (0 = auto; >=2 shards the fixed-prologue policies, bit-identical for any worker count; staleness horizon = -block for the round policies)")
	seed := fs.Uint64("seed", 1, "root seed")
	profile := fs.Int("profile", 10, "print the top P mean sorted loads (0 to disable)")
	churnName := fs.String("churn", "none", "serving churn model: "+strings.Join(kdchoice.ChurnNames(), ", ")+" (non-none serves an online stream)")
	weightsName := fs.String("weights", "", "serving ball weights: "+strings.Join(kdchoice.WeightNames(), ", ")+" (empty = unit)")
	faultsSpec := fs.String("faults", "none", "deterministic fault plan: '+'-joined fail:R[,T], loss:P, noise:B, retry:R, evict (e.g. fail:0.001,200+loss:0.1+retry:2)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	policy, err := kdchoice.ParsePolicy(*policyName)
	if err != nil {
		return err
	}
	store, err := kdchoice.ParseStore(*storeName)
	if err != nil {
		return err
	}
	var faultPlan *kdchoice.FaultPlan
	if *faultsSpec != "none" {
		plan, err := kdchoice.ParseFaults(*faultsSpec)
		if err != nil {
			return err
		}
		if !plan.Empty() {
			faultPlan = &plan
		}
	}
	if *churnName != "none" || *weightsName != "" {
		return runServe(out, *n, *d, *m, *runs, *beta, *seed, store, *churnName, *weightsName, faultPlan)
	}
	rep, err := kdchoice.Experiment{
		Cells: []kdchoice.Cell{{Config: kdchoice.Config{
			Bins:     *n,
			K:        *k,
			D:        *d,
			Policy:   policy,
			Beta:     *beta,
			Store:    store,
			Pipeline: *pipeline,
			Block:    *block,
			Shards:   *shards,
			Faults:   faultPlan,
			Seed:     *seed,
		}}},
		Balls:        *m,
		Runs:         *runs,
		Seed:         *seed,
		CollectLoads: *profile > 0,
	}.Run()
	if err != nil {
		return err
	}
	res := &rep.Cells[0]

	balls := *m
	if balls == 0 {
		balls = *n
	}
	fmt.Fprintf(out, "policy=%s n=%d k=%d d=%d balls=%d runs=%d seed=%d\n\n",
		policy, *n, *k, *d, balls, *runs, *seed)

	var maxStats stats.Online
	for _, m := range res.MaxLoads {
		maxStats.Add(float64(m))
	}
	t := table.New("metric", "value")
	t.AddRow("max load (distinct)", table.IntsCell(res.DistinctMax))
	t.AddRowf("max load (mean ± sd)", fmt.Sprintf("%.3f ± %.3f", res.MeanMax, maxStats.StdDev()))
	t.AddRowf("gap max-avg (mean)", fmt.Sprintf("%.3f", res.MeanGap))
	t.AddRowf("messages (mean)", fmt.Sprintf("%.0f", res.MeanMessages))
	t.AddRowf("messages per ball", fmt.Sprintf("%.3f", res.MeanMessages/float64(balls)))
	if faultPlan != nil {
		f := res.TotalFaults
		t.AddRowf("faults: plan", faultPlan.String())
		t.AddRowf("faults: outages / recoveries", fmt.Sprintf("%d / %d", f.Outages, f.Recoveries))
		t.AddRowf("faults: probes lost / retries", fmt.Sprintf("%d / %d", f.ProbesLost, f.Retries))
		t.AddRowf("faults: degraded / fallbacks", fmt.Sprintf("%d / %d", f.Degraded, f.Fallbacks))
		t.AddRowf("faults: evictions / replacements", fmt.Sprintf("%d / %d", f.Evictions, f.Replacements))
	}
	if policy == kdchoice.KDChoice && *k >= 1 && *d > *k {
		t.AddRowf("theory: d_k", fmt.Sprintf("%.3f", kdchoice.Dk(*k, *d)))
		t.AddRowf("theory: gap term", fmt.Sprintf("%.3f", kdchoice.PredictGapTerm(*k, *d, *n)))
		t.AddRowf("theory: crowd term", fmt.Sprintf("%.3f", kdchoice.PredictCrowdTerm(*k, *d)))
		t.AddRowf("theory: regime", kdchoice.Regime(*k, *d, *n))
	}
	fmt.Fprint(out, t.Text())

	if *profile > 0 {
		prof, err := res.MeanSortedProfile()
		if err != nil {
			return err
		}
		limit := *profile
		if limit > len(prof) {
			limit = len(prof)
		}
		fmt.Fprintf(out, "\nmean sorted loads B_1..B_%d:", limit)
		for _, v := range prof[:limit] {
			fmt.Fprintf(out, " %.2f", v)
		}
		fmt.Fprintln(out)
	}
	return nil
}

// runServe runs the online serving mode: a churned operation stream served
// by the (1+β)-capable family, reported on the gap/message axes.
func runServe(out io.Writer, n, d, ops, runs int, beta float64, seed uint64, store kdchoice.Store, churnName, weightsName string, faultPlan *kdchoice.FaultPlan) error {
	spec, err := kdchoice.ParseChurn(churnName)
	if err != nil {
		return err
	}
	if weightsName != "" {
		w, err := kdchoice.ParseWeights(weightsName)
		if err != nil {
			return err
		}
		spec.Weights = w
	}
	cell := kdchoice.ChurnCell{
		Bins:   n,
		D:      d,
		Beta:   beta,
		Ops:    ops,
		Churn:  spec,
		Store:  store,
		Faults: faultPlan,
	}
	rep, err := kdchoice.Study{
		Cells: []kdchoice.AppCell{cell},
		Runs:  runs,
		Seed:  seed,
	}.Run()
	if err != nil {
		return err
	}
	res := &rep.Cells[0]
	if ops == 0 {
		ops = 10 * n
	}
	fmt.Fprintf(out, "serve n=%d d=%d beta=%g ops=%d churn=%s runs=%d seed=%d\n\n",
		n, d, beta, ops, churnName, runs, seed)
	t := table.New("metric", "value")
	t.AddRowf("gap max-mean (mean)", fmt.Sprintf("%.3f", res.MeanGap))
	t.AddRowf("max load (mean)", fmt.Sprintf("%.3f", res.MeanMaxLoad))
	t.AddRowf("messages (mean)", fmt.Sprintf("%.0f", res.MeanMessages))
	t.AddRowf("messages per op", fmt.Sprintf("%.3f", res.MessagesPerUnit))
	if faultPlan != nil {
		f := res.TotalFaults
		t.AddRowf("faults: plan", faultPlan.String())
		t.AddRowf("faults: outages / recoveries", fmt.Sprintf("%d / %d", f.Outages, f.Recoveries))
		t.AddRowf("faults: probes lost / retries", fmt.Sprintf("%d / %d", f.ProbesLost, f.Retries))
		t.AddRowf("faults: degraded / fallbacks", fmt.Sprintf("%d / %d", f.Degraded, f.Fallbacks))
		t.AddRowf("faults: evictions / replacements", fmt.Sprintf("%d / %d", f.Evictions, f.Replacements))
	}
	fmt.Fprint(out, t.Text())
	return nil
}
