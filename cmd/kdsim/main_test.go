package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefaultsSmall(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "1024", "-runs", "3"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"max load (distinct)", "messages per ball", "theory: d_k", "mean sorted loads"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunHeavyCase(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "512", "-m", "4096", "-runs", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "balls=4096") {
		t.Fatalf("heavy-case header wrong:\n%s", buf.String())
	}
}

func TestRunAllPolicies(t *testing.T) {
	for _, policy := range []string{"kd", "kd-serialized", "kd-adaptive", "dchoice", "single", "oneplusbeta", "alwaysgoleft"} {
		var buf bytes.Buffer
		args := []string{"-n", "512", "-runs", "2", "-policy", policy}
		if err := run(args, &buf); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !strings.Contains(buf.String(), "policy="+policy) {
			t.Fatalf("%s: header missing policy", policy)
		}
	}
}

func TestRunNoProfile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "256", "-runs", "1", "-profile", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "mean sorted loads") {
		t.Fatal("profile printed despite -profile 0")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-policy", "nope"}, &buf); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if err := run([]string{"-n", "8", "-k", "5", "-d", "3"}, &buf); err == nil {
		t.Fatal("invalid k/d accepted")
	}
	if err := run([]string{"-zzz"}, &buf); err == nil {
		t.Fatal("bogus flag accepted")
	}
}

func TestRunBlockFlag(t *testing.T) {
	// Explicit superstep sizes are bit-identical to the auto default, so
	// the run must succeed and report the same summary stats.
	var auto, blocked bytes.Buffer
	if err := run([]string{"-n", "512", "-runs", "2"}, &auto); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "512", "-runs", "2", "-block", "3"}, &blocked); err != nil {
		t.Fatal(err)
	}
	if auto.String() != blocked.String() {
		t.Fatalf("-block 3 changed results:\nauto:\n%s\nblocked:\n%s", auto.String(), blocked.String())
	}
	var buf bytes.Buffer
	if err := run([]string{"-n", "512", "-block", "-2"}, &buf); err == nil {
		t.Fatal("negative -block accepted")
	} else if !strings.Contains(err.Error(), "Block") {
		t.Fatalf("negative -block error does not name the knob: %v", err)
	}
}
