// Command bench runs the repository's tracked performance grids and writes
// the results to BENCH_kd.json (per-round micro grid) and BENCH_scale.json
// (large-n scale grid), the benchmark trajectories future PRs regress
// against.
//
// Each cell of the micro grid benchmarks one allocation process
// configuration (n, k, d, policy) through the public API, measuring ns per
// round, heap allocations per round, and placement throughput in balls per
// second. The grid also times the (k,d)-choice acceptance cell (n = 1e5,
// k = 2, d = 64) on both slot-selection kernels and under the 4-shard
// superstep engine, reporting the fast-vs-sort and shards-vs-serial
// speedups.
//
// The parallel grid (-parallel) is the sharded-engine worker-count series:
// the kd acceptance cell and the large-k StaleBatch cell at
// Shards = 1, 2, 4, 8, each point reporting its speedup against the
// serial baseline, plus the GOMAXPROCS the box offered (on a single-CPU
// host the series measures engine overhead, not scaling — the honest
// reading there is parity or below).
//
// The scale grid (-scale) runs the heavy-load cells the compact stores
// exist for: n = 1e6 and 1e7 with k=2/d=64 and an m = 100n heavy-load
// cell, one column per bin store, measuring sustained balls/sec and the
// steady-state bytes per bin (via runtime.MemStats).
//
// The serve grid (-serve) benchmarks the online serving layer: a mixed
// insert/delete stream (churn = the per-op delete probability, uniform
// victims) served through Insert/Delete on every store, measuring ops/sec
// and allocs/op. The tracked acceptance cell
// (n=1e5, d=2, beta=1, churn=0.4, store=hist) rides the histogram store's
// O(1)-amortized deletes and the specialized kernels: its floor is 1M
// ops/sec at 0 allocs/op.
//
// The faults grid (-faults) is the serving grid under deterministic fault
// plans: the tracked serving mix with bin outages + probe loss + retries +
// eviction attached (and a degradation ablation alongside), tracked in
// BENCH_faults.json. Its floor is the serving floor with the plan's extra
// probes priced in, still at 0 allocs/op — -comparefaults FAILS (not
// warns) if the faulty hot path ever allocates.
//
// The approx grid (-approx) is the sub-byte store trajectory: the
// acceptance shape on the exact compact baseline vs the nibble store
// (~0.5 B/bin, exact) vs the count-min sketch store (<0.5 B/bin,
// approximate) at n = 1e7, plus the n = 1e8 compact/nibble pair, reporting
// measured bytes per bin and the max-load inflation against the exact
// compact baseline at the same n.
//
// Usage:
//
//	bench [-out BENCH_kd.json] [-quick]             # micro grid
//	bench -scale [-out BENCH_scale.json] [-quick]   # scale grid
//	bench -serve [-out BENCH_serve.json] [-quick]   # serving grid
//	bench -faults [-out BENCH_faults.json] [-quick] # faulty serving grid
//	bench -approx [-out BENCH_approx.json] [-quick] # approximate-store grid
//	bench -parallel [-out BENCH_parallel.json]      # shard-count series
//	bench -compare BENCH_kd.json                    # perf ratchet (CI)
//	bench -compareserve BENCH_serve.json            # serving ratchet (CI)
//	bench -compareapprox BENCH_approx.json          # approx ratchet (CI)
//	bench -comparefaults BENCH_faults.json          # fault-layer ratchet (CI)
//	bench -cpuprofile cpu.out -memprofile mem.out   # hot-path diagnosis
//
// -quick shrinks the grids to tiny cells (for smoke tests); tracked results
// should always come from the full grids, e.g. via `scripts/ci.sh bench`.
// -compare re-times only the tracked acceptance cells at full size against
// a committed BENCH_kd.json and prints a non-fatal PERF WARNING when a cell
// regresses more than 15% — the CI ratchet that keeps the committed
// trajectory honest; -compareapprox additionally warns when the tracked
// nibble cell's measured bytes per bin exceed its 0.6 budget.
// -cpuprofile/-memprofile write pprof profiles of the
// benchmark run so hot-path regressions can be diagnosed without editing
// the harness; -block overrides the superstep size of every cell, -shards
// the shard count of every micro-grid cell, and -store the bin store of
// every cell (ablations — they require an explicit empty -out, stdout
// only, so they can never overwrite a tracked trajectory, and they cannot
// be combined with the ratchets).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	kdchoice "repro"
)

// cell is one micro-grid entry.
type cell struct {
	Name string
	Cfg  kdchoice.Config
}

// result is the serialized outcome of one micro-grid cell.
type result struct {
	Name            string  `json:"name"`
	Policy          string  `json:"policy"`
	N               int     `json:"n"`
	K               int     `json:"k,omitempty"`
	D               int     `json:"d,omitempty"`
	ReferenceSelect bool    `json:"reference_select,omitempty"`
	Pipeline        bool    `json:"pipeline,omitempty"`
	Block           int     `json:"block,omitempty"`
	Shards          int     `json:"shards,omitempty"`
	NsPerRound      float64 `json:"ns_per_round"`
	BytesPerRound   int64   `json:"bytes_per_round"`
	AllocsPerRound  int64   `json:"allocs_per_round"`
	BallsPerRound   float64 `json:"balls_per_round"`
	BallsPerSec     float64 `json:"balls_per_sec"`
}

// report is the BENCH_kd.json schema.
type report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Grid      []result `json:"grid"`
	// SpeedupFastVsSort is ns/round(sort kernel) / ns/round(fast kernel)
	// on the n=1e5, k=2, d=64 acceptance cell; the floor is 1.5.
	SpeedupFastVsSort float64 `json:"speedup_fast_vs_sort_n1e5_k2_d64,omitempty"`
	// SpeedupShardsVsSerial is ns/round(serial fast kernel) / ns/round
	// (4-shard superstep engine) on the same cell — the headline number of
	// the sharded engine. On a single-CPU host the shard workers multiplex
	// one core, so parity or a mild slowdown is the expected reading
	// there; the engine only pulls ahead with spare cores (see
	// BENCH_parallel.json for the full worker-count series). It replaces
	// the retired speedup_pipe_vs_serial field, which had saturated at
	// parity (~1.0x) on this box.
	SpeedupShardsVsSerial float64 `json:"speedup_shards_vs_serial_n1e5_k2_d64,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// cellName derives the canonical cell name from its configuration, so
// names can never disagree with the recorded parameters (quick mode
// shrinks n, and the names shrink with it). Grid configs always set
// Policy explicitly, so no defaulting logic is duplicated here.
func cellName(cfg kdchoice.Config) string {
	policy := cfg.Policy
	name := fmt.Sprintf("%v/n=%d", policy, cfg.Bins)
	if policy == kdchoice.KDChoice {
		kernel := "fast"
		if cfg.ReferenceSelect {
			kernel = "sort"
		}
		if cfg.Pipeline {
			kernel += "+pipe"
		}
		name = fmt.Sprintf("kd/%s/n=%d", kernel, cfg.Bins)
	}
	if cfg.K > 0 {
		name += fmt.Sprintf(",k=%d", cfg.K)
	}
	if cfg.D > 0 {
		name += fmt.Sprintf(",d=%d", cfg.D)
	}
	if cfg.Beta > 0 {
		name += fmt.Sprintf(",beta=%g", cfg.Beta)
	}
	if cfg.Store != kdchoice.StoreDense {
		name += fmt.Sprintf(",store=%v", cfg.Store)
	}
	if cfg.Block > 0 {
		name += fmt.Sprintf(",block=%d", cfg.Block)
	}
	if cfg.Shards > 1 {
		name += fmt.Sprintf(",shards=%d", cfg.Shards)
	}
	return name
}

// grid returns the tracked micro-benchmark cells. The first two cells are
// the kernel-ablation pair the fast-vs-sort speedup is computed from; the
// third is the 4-shard superstep variant of cell 0 for the shards-vs-serial
// speedup.
func grid(quick bool) []cell {
	n, small := 100000, 10000
	if quick {
		n, small = 2048, 512
	}
	configs := []kdchoice.Config{
		{Bins: n, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice},
		{Bins: n, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice, ReferenceSelect: true},
		{Bins: n, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice, Shards: 4},
		{Bins: n, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice, Pipeline: true},
		{Bins: n, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice, Pipeline: true, Store: kdchoice.StoreCompact},
		{Bins: n, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice, Store: kdchoice.StoreHist},
		// Superstep ablation: Block=1 pays every per-round fixed cost the
		// auto-sized superstep amortizes away (results are bit-identical).
		{Bins: n, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice, Block: 1},
		{Bins: n, K: 8, D: 16, Seed: 1, Policy: kdchoice.KDChoice},
		{Bins: n, K: 128, D: 192, Seed: 1, Policy: kdchoice.KDChoice},
		{Bins: small, K: 2, D: 4, Seed: 1, Policy: kdchoice.KDChoice},
		{Bins: n, K: 2, D: 64, Seed: 1, Policy: kdchoice.Serialized},
		{Bins: n, D: 2, Seed: 1, Policy: kdchoice.DChoice},
		{Bins: n, Seed: 1, Policy: kdchoice.SingleChoice},
		{Bins: n, Beta: 0.5, Seed: 1, Policy: kdchoice.OnePlusBeta},
		{Bins: n, K: 8, D: 2, Seed: 1, Policy: kdchoice.StaleBatch},
		{Bins: n, K: 256, D: 2, Seed: 1, Policy: kdchoice.StaleBatch, Shards: 4},
	}
	cells := make([]cell, len(configs))
	for i, cfg := range configs {
		cells[i] = cell{Name: cellName(cfg), Cfg: cfg}
	}
	return cells
}

// runCell benchmarks one cell: steady-state rounds through the public API.
func runCell(c cell) (result, error) {
	probe, err := kdchoice.New(c.Cfg)
	if err != nil {
		return result{}, fmt.Errorf("cell %s: %w", c.Name, err)
	}
	probe.Close()
	// New normalizes the config (zero Policy means KDChoice), so the
	// stored Config carries the canonical policy name.
	policy := probe.Config().Policy.String()
	var ballsPerRound float64
	br := testing.Benchmark(func(b *testing.B) {
		alloc, err := kdchoice.New(c.Cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer alloc.Close()
		// Warm to steady state (~1 ball per bin) so scratch buffers are
		// grown and the load vector is realistic.
		alloc.PlaceAll()
		b.ReportAllocs()
		b.ResetTimer()
		start := alloc.Balls()
		for i := 0; i < b.N; i++ {
			alloc.Round()
		}
		ballsPerRound = float64(alloc.Balls()-start) / float64(b.N)
	})
	ns := float64(br.NsPerOp())
	res := result{
		Name:            c.Name,
		Policy:          policy,
		N:               c.Cfg.Bins,
		K:               c.Cfg.K,
		D:               c.Cfg.D,
		ReferenceSelect: c.Cfg.ReferenceSelect,
		Pipeline:        c.Cfg.Pipeline,
		Block:           c.Cfg.Block,
		Shards:          c.Cfg.Shards,
		NsPerRound:      ns,
		BytesPerRound:   br.AllocedBytesPerOp(),
		AllocsPerRound:  br.AllocsPerOp(),
		BallsPerRound:   ballsPerRound,
	}
	if ns > 0 {
		res.BallsPerSec = ballsPerRound * 1e9 / ns
	}
	return res, nil
}

// scaleCell is one scale-grid entry: a configuration plus its warmup and
// timed ball counts.
type scaleCell struct {
	Name  string
	Cfg   kdchoice.Config
	Warm  int // balls placed before the timed section
	Balls int // balls placed in the timed section
}

// scaleResult is the serialized outcome of one scale-grid cell.
type scaleResult struct {
	Name        string  `json:"name"`
	Policy      string  `json:"policy"`
	Store       string  `json:"store"`
	Pipeline    bool    `json:"pipeline,omitempty"`
	Block       int     `json:"block,omitempty"`
	N           int     `json:"n"`
	K           int     `json:"k"`
	D           int     `json:"d"`
	TotalBalls  int     `json:"total_balls"`
	TimedBalls  int     `json:"timed_balls"`
	BallsPerSec float64 `json:"balls_per_sec"`
	NsPerRound  float64 `json:"ns_per_round"`
	BytesPerBin float64 `json:"bytes_per_bin"`
	MaxLoad     int     `json:"max_load"`
	Gap         float64 `json:"gap"`
}

// scaleReport is the BENCH_scale.json schema.
type scaleReport struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Cells     []scaleResult `json:"cells"`
}

// scaleGrid returns the scale cells: the (k=2, d=64) acceptance shape at
// n = 1e6 and 1e7 plus a heavy-load m = 100n cell, each with one column
// per bin store. Quick mode shrinks n for smoke tests.
func scaleGrid(quick bool) []scaleCell {
	n1, n2, heavyN := 1_000_000, 10_000_000, 1_000_000
	if quick {
		n1, n2, heavyN = 20_000, 100_000, 20_000
	}
	stores := []kdchoice.Store{kdchoice.StoreDense, kdchoice.StoreCompact, kdchoice.StoreHist}
	var cells []scaleCell
	capBalls := func(n, cap int) int {
		if n < cap {
			return n
		}
		return cap
	}
	for _, n := range []int{n1, n2} {
		for _, store := range stores {
			cfg := kdchoice.Config{Bins: n, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice, Store: store, Pipeline: true}
			cells = append(cells, scaleCell{
				Name:  fmt.Sprintf("kd/n=%d,k=2,d=64,store=%v", n, store),
				Cfg:   cfg,
				Warm:  capBalls(n, 2_000_000),
				Balls: capBalls(n, 4_000_000),
			})
		}
	}
	// Heavy load: m = 100n exercises the Theorem 2 regime (gap growth with
	// m/n) at a cheaper per-ball shape (k=8, d=16).
	for _, store := range stores {
		cfg := kdchoice.Config{Bins: heavyN, K: 8, D: 16, Seed: 1, Policy: kdchoice.KDChoice, Store: store, Pipeline: true}
		cells = append(cells, scaleCell{
			Name:  fmt.Sprintf("kd-heavy/n=%d,k=8,d=16,m=100n,store=%v", heavyN, store),
			Cfg:   cfg,
			Warm:  0,
			Balls: 100 * heavyN,
		})
	}
	return cells
}

// runScaleCell places the cell's balls, timing the post-warmup section, and
// measures the steady-state heap footprint per bin.
func runScaleCell(c scaleCell) (scaleResult, error) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	alloc, err := kdchoice.New(c.Cfg)
	if err != nil {
		return scaleResult{}, fmt.Errorf("cell %s: %w", c.Name, err)
	}
	defer alloc.Close()
	if c.Warm > 0 {
		if err := alloc.Place(c.Warm); err != nil {
			return scaleResult{}, err
		}
	}
	startRounds := alloc.Rounds()
	start := time.Now()
	if err := alloc.Place(c.Balls); err != nil {
		return scaleResult{}, err
	}
	elapsed := time.Since(start)
	rounds := alloc.Rounds() - startRounds

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	bytesPerBin := 0.0
	if after.HeapAlloc > before.HeapAlloc {
		bytesPerBin = float64(after.HeapAlloc-before.HeapAlloc) / float64(c.Cfg.Bins)
	}

	res := scaleResult{
		Name:        c.Name,
		Policy:      alloc.Config().Policy.String(),
		Store:       c.Cfg.Store.String(),
		Pipeline:    c.Cfg.Pipeline,
		Block:       c.Cfg.Block,
		N:           c.Cfg.Bins,
		K:           c.Cfg.K,
		D:           c.Cfg.D,
		TotalBalls:  alloc.Balls(),
		TimedBalls:  c.Balls,
		BytesPerBin: bytesPerBin,
		MaxLoad:     alloc.MaxLoad(),
		Gap:         alloc.Gap(),
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.BallsPerSec = float64(c.Balls) / secs
		if rounds > 0 {
			res.NsPerRound = float64(elapsed.Nanoseconds()) / float64(rounds)
		}
	}
	runtime.KeepAlive(alloc)
	return res, nil
}

// runScale executes the scale grid and writes BENCH_scale.json.
func runScale(quick bool, block int, store string, outPath string, out io.Writer) error {
	rep := scaleReport{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	cells := scaleGrid(quick)
	if store != "" {
		s, err := kdchoice.ParseStore(store)
		if err != nil {
			return err
		}
		// Rewrite every cell onto the override store and drop the duplicate
		// rows the collapsed store column leaves behind.
		seen := make(map[string]bool, len(cells))
		dedup := cells[:0]
		for _, c := range cells {
			c.Cfg.Store = s
			if idx := strings.Index(c.Name, "store="); idx >= 0 {
				c.Name = c.Name[:idx] + "store=" + s.String()
			}
			if seen[c.Name] {
				continue
			}
			seen[c.Name] = true
			dedup = append(dedup, c)
		}
		cells = dedup
	}
	if block != 0 {
		for i := range cells {
			cells[i].Cfg.Block = block
			if block > 0 {
				cells[i].Name += fmt.Sprintf(",block=%d", block)
			}
		}
	}
	for _, c := range cells {
		res, err := runScaleCell(c)
		if err != nil {
			return err
		}
		rep.Cells = append(rep.Cells, res)
		fmt.Fprintf(out, "%-44s %14.0f balls/sec %7.2f B/bin  max=%d gap=%.2f\n",
			res.Name, res.BallsPerSec, res.BytesPerBin, res.MaxLoad, res.Gap)
	}
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", outPath)
	return nil
}

// approxResult is one approx-grid cell: a scale measurement plus the
// max-load inflation against the exact compact baseline at the same n.
type approxResult struct {
	scaleResult
	// MaxLoadInflation is this cell's max load minus the compact baseline's
	// at the same n — exactly 0 for every exact store (nibble is
	// bit-identical to compact), and the one-sided accuracy price of the
	// sketch. Absent when the grid carries no compact baseline for the n.
	MaxLoadInflation *int `json:"max_load_inflation,omitempty"`
}

// approxReport is the BENCH_approx.json schema.
type approxReport struct {
	GoVersion string         `json:"go_version"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	Cells     []approxResult `json:"cells"`
}

// approxGrid returns the approximate-store cells: the acceptance shape at
// n = 1e7 on compact/nibble/sketch, then the n = 1e8 compact/nibble pair
// (the tracked sub-byte cell). Light load (m = timed balls ≤ n) keeps the
// sketch's saturating counters in range and the nibble store escape-free,
// so the memory comparison is the structural one. Quick mode shrinks n.
func approxGrid(quick bool) []scaleCell {
	n1, n2 := 10_000_000, 100_000_000
	balls1, balls2 := n1, 20_000_000
	if quick {
		n1, n2 = 20_000, 100_000
		balls1, balls2 = n1, n2
	}
	var cells []scaleCell
	for _, store := range []kdchoice.Store{kdchoice.StoreCompact, kdchoice.StoreNibble, kdchoice.StoreSketch} {
		cells = append(cells, scaleCell{
			Name:  fmt.Sprintf("kd-approx/n=%d,k=2,d=64,store=%v", n1, store),
			Cfg:   kdchoice.Config{Bins: n1, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice, Store: store, Pipeline: true},
			Balls: balls1,
		})
	}
	for _, store := range []kdchoice.Store{kdchoice.StoreCompact, kdchoice.StoreNibble} {
		cells = append(cells, scaleCell{
			Name:  fmt.Sprintf("kd-approx/n=%d,k=2,d=64,store=%v", n2, store),
			Cfg:   kdchoice.Config{Bins: n2, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice, Store: store, Pipeline: true},
			Balls: balls2,
		})
	}
	return cells
}

// runApprox executes the approx grid and writes BENCH_approx.json. Cells
// run in grid order, so each n's compact baseline finishes before the
// cells measured against it.
func runApprox(quick bool, outPath string, out io.Writer) error {
	rep := approxReport{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	baseMax := make(map[int]int) // n -> compact baseline max load
	for _, c := range approxGrid(quick) {
		res, err := runScaleCell(c)
		if err != nil {
			return err
		}
		ar := approxResult{scaleResult: res}
		if res.Store == kdchoice.StoreCompact.String() {
			baseMax[res.N] = res.MaxLoad
		}
		if base, ok := baseMax[res.N]; ok {
			infl := res.MaxLoad - base
			ar.MaxLoadInflation = &infl
		}
		rep.Cells = append(rep.Cells, ar)
		inflStr := "n/a"
		if ar.MaxLoadInflation != nil {
			inflStr = fmt.Sprintf("%+d", *ar.MaxLoadInflation)
		}
		fmt.Fprintf(out, "%-48s %14.0f balls/sec %7.3f B/bin  max=%d infl=%s\n",
			res.Name, res.BallsPerSec, res.BytesPerBin, res.MaxLoad, inflStr)
	}
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", outPath)
	return nil
}

// approxBudgetBytesPerBin is the tracked nibble cell's memory budget: the
// packed half byte plus headroom for the escape table and runtime slack.
const approxBudgetBytesPerBin = 0.6

// runCompareApprox re-times the tracked n=1e8 nibble cell against a
// committed BENCH_approx.json: a non-fatal PERF WARNING on >15% throughput
// regression, and another when the measured bytes per bin exceed the 0.6
// budget the cell is tracked at.
func runCompareApprox(path string, out io.Writer) error {
	const threshold = 1.15
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compareapprox: %w", err)
	}
	var tracked approxReport
	if err := json.Unmarshal(data, &tracked); err != nil {
		return fmt.Errorf("compareapprox: parsing %s: %w", path, err)
	}
	// The tracked cell, constructed directly so grid edits can never
	// redirect the ratchet.
	c := scaleCell{
		Name:  fmt.Sprintf("kd-approx/n=%d,k=2,d=64,store=%v", 100_000_000, kdchoice.StoreNibble),
		Cfg:   kdchoice.Config{Bins: 100_000_000, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice, Store: kdchoice.StoreNibble, Pipeline: true},
		Balls: 20_000_000,
	}
	var prev *approxResult
	for i := range tracked.Cells {
		if tracked.Cells[i].Name == c.Name {
			prev = &tracked.Cells[i]
			break
		}
	}
	if prev == nil || prev.BallsPerSec <= 0 {
		fmt.Fprintf(out, "PERF WARNING: tracked approx cell %q missing from %s\n", c.Name, path)
		return nil
	}
	res, err := runScaleCell(c)
	if err != nil {
		return err
	}
	ratio := prev.BallsPerSec / res.BallsPerSec
	fmt.Fprintf(out, "%-48s tracked %.0f balls/sec, now %.0f balls/sec (%.2fx slower)\n",
		c.Name, prev.BallsPerSec, res.BallsPerSec, ratio)
	warned := false
	if ratio > threshold {
		warned = true
		fmt.Fprintf(out, "PERF WARNING: %s regressed %.0f%% vs %s (threshold %.0f%%)\n",
			c.Name, (ratio-1)*100, path, (threshold-1)*100)
	}
	if res.BytesPerBin > approxBudgetBytesPerBin {
		warned = true
		fmt.Fprintf(out, "PERF WARNING: %s measured %.3f B/bin, over the %.1f B/bin budget\n",
			c.Name, res.BytesPerBin, approxBudgetBytesPerBin)
	}
	if !warned {
		fmt.Fprintln(out, "compareapprox: tracked cell within threshold and budget")
	}
	return nil
}

// serveCell is one serving-grid entry: a (1+β)-family allocator serving a
// mixed insert/delete stream.
type serveCell struct {
	Name string
	N    int
	D    int
	Beta float64
	// Churn is the per-op delete probability (uniform victims); the rest
	// of the ops are inserts.
	Churn float64
	// MaxWeight > 1 draws each insert's weight uniformly from [1, MaxWeight]
	// (the weighted-add kernel path); 1 keeps unit weights.
	MaxWeight int
	Store     kdchoice.Store
	// Faults, when non-empty, is a fault-plan spec (kdchoice.ParseFaults)
	// attached to the cell's allocator — the -faults grid rows.
	Faults string
}

// serveResult is the serialized outcome of one serving-grid cell.
type serveResult struct {
	Name        string  `json:"name"`
	Store       string  `json:"store"`
	N           int     `json:"n"`
	D           int     `json:"d"`
	Beta        float64 `json:"beta"`
	Churn       float64 `json:"churn"`
	MaxWeight   int     `json:"max_weight,omitempty"`
	Faults      string  `json:"faults,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// serveReport is the BENCH_serve.json schema.
type serveReport struct {
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Cells     []serveResult `json:"cells"`
}

// serveCellName derives the canonical serving cell name from its
// parameters.
func serveCellName(c serveCell) string {
	name := fmt.Sprintf("serve/n=%d,d=%d,beta=%g,churn=%g,store=%v", c.N, c.D, c.Beta, c.Churn, c.Store)
	if c.MaxWeight > 1 {
		name += fmt.Sprintf(",w=%d", c.MaxWeight)
	}
	if c.Faults != "" {
		name += ",faults=" + c.Faults
	}
	return name
}

// serveGrid returns the serving cells: the tracked acceptance cell first
// (histogram store — O(1) amortized deletes), then the store ablation, the
// β ablation, the insert-only baseline and the weighted-kernel cell.
func serveGrid(quick bool) []serveCell {
	n := 100000
	if quick {
		n = 4096
	}
	cells := []serveCell{
		{N: n, D: 2, Beta: 1, Churn: 0.4, Store: kdchoice.StoreHist},
		{N: n, D: 2, Beta: 1, Churn: 0.4, Store: kdchoice.StoreDense},
		{N: n, D: 2, Beta: 1, Churn: 0.4, Store: kdchoice.StoreCompact},
		{N: n, D: 2, Beta: 0.5, Churn: 0.4, Store: kdchoice.StoreHist},
		{N: n, D: 2, Beta: 1, Churn: 0, Store: kdchoice.StoreHist},
		{N: n, D: 2, Beta: 1, Churn: 0.4, MaxWeight: 8, Store: kdchoice.StoreHist},
	}
	for i := range cells {
		cells[i].Name = serveCellName(cells[i])
	}
	return cells
}

// runServeCell benchmarks one serving cell: a steady-state mixed
// insert/delete loop through the public API, with the registry and the
// live-handle list pre-sized so the specialized kernels run at 0 allocs/op.
func runServeCell(c serveCell) (serveResult, error) {
	cfg := kdchoice.Config{
		Bins:   c.N,
		D:      c.D,
		Policy: kdchoice.OnePlusBeta,
		Beta:   c.Beta,
		Store:  c.Store,
		Seed:   1,
	}
	if c.Faults != "" {
		plan, err := kdchoice.ParseFaults(c.Faults)
		if err != nil {
			return serveResult{}, fmt.Errorf("cell %s: %w", c.Name, err)
		}
		cfg.Faults = &plan
	}
	probe, err := kdchoice.New(cfg)
	if err != nil {
		return serveResult{}, fmt.Errorf("cell %s: %w", c.Name, err)
	}
	probe.Close()
	br := testing.Benchmark(func(b *testing.B) {
		alloc, err := kdchoice.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer alloc.Close()
		// The op mix is drawn outside the allocator's deterministic stream;
		// a fixed-seed generator keeps the benchmark reproducible.
		mix := rand.New(rand.NewSource(7))
		// Warm to ~1 live ball per bin, pre-sizing for the worst case of
		// b.N further inserts so no slice grows inside the timed loop.
		alloc.Reserve(c.N + b.N)
		live := make([]kdchoice.Ball, 0, c.N+b.N)
		for i := 0; i < c.N; i++ {
			ball, err := alloc.Insert()
			if err != nil {
				b.Fatal(err)
			}
			live = append(live, ball)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if len(live) > 0 && mix.Float64() < c.Churn {
				vi := mix.Intn(len(live))
				if err := alloc.Delete(live[vi]); err != nil {
					b.Fatal(err)
				}
				live[vi] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			w := 1
			if c.MaxWeight > 1 {
				w = 1 + mix.Intn(c.MaxWeight)
			}
			ball, err := alloc.InsertW(w)
			if err != nil {
				b.Fatal(err)
			}
			live = append(live, ball)
		}
	})
	ns := float64(br.NsPerOp())
	res := serveResult{
		Name:        c.Name,
		Store:       c.Store.String(),
		N:           c.N,
		D:           c.D,
		Beta:        c.Beta,
		Churn:       c.Churn,
		MaxWeight:   c.MaxWeight,
		Faults:      c.Faults,
		NsPerOp:     ns,
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
	}
	if ns > 0 {
		res.OpsPerSec = 1e9 / ns
	}
	return res, nil
}

// runServe executes the serving grid and writes BENCH_serve.json.
func runServe(quick bool, outPath string, out io.Writer) error {
	rep := serveReport{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	for _, c := range serveGrid(quick) {
		res, err := runServeCell(c)
		if err != nil {
			return err
		}
		rep.Cells = append(rep.Cells, res)
		fmt.Fprintf(out, "%-52s %10.0f ns/op %14.0f ops/sec %3d allocs\n",
			res.Name, res.NsPerOp, res.OpsPerSec, res.AllocsPerOp)
	}
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", outPath)
	return nil
}

// runCompareServe re-times the tracked serving acceptance cell at full size
// against a committed BENCH_serve.json — the serving twin of runCompare,
// with the same non-fatal warning contract.
func runCompareServe(path string, out io.Writer) error {
	const threshold = 1.15
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compareserve: %w", err)
	}
	var tracked serveReport
	if err := json.Unmarshal(data, &tracked); err != nil {
		return fmt.Errorf("compareserve: parsing %s: %w", path, err)
	}
	// The tracked acceptance cell, constructed directly so grid edits can
	// never redirect the ratchet.
	c := serveCell{N: 100000, D: 2, Beta: 1, Churn: 0.4, Store: kdchoice.StoreHist}
	c.Name = serveCellName(c)
	var prev *serveResult
	for i := range tracked.Cells {
		if tracked.Cells[i].Name == c.Name {
			prev = &tracked.Cells[i]
			break
		}
	}
	if prev == nil || prev.NsPerOp <= 0 {
		fmt.Fprintf(out, "PERF WARNING: tracked serving cell %q missing from %s\n", c.Name, path)
		return nil
	}
	res, err := runServeCell(c)
	if err != nil {
		return err
	}
	ratio := res.NsPerOp / prev.NsPerOp
	fmt.Fprintf(out, "%-52s tracked %6.0f ns/op, now %6.0f ns/op (%.2fx)\n",
		c.Name, prev.NsPerOp, res.NsPerOp, ratio)
	switch {
	case ratio > threshold:
		fmt.Fprintf(out, "PERF WARNING: %s regressed %.0f%% vs %s (threshold %.0f%%)\n",
			c.Name, (ratio-1)*100, path, (threshold-1)*100)
	default:
		fmt.Fprintln(out, "compareserve: tracked cell within threshold")
	}
	if res.AllocsPerOp > 0 {
		fmt.Fprintf(out, "PERF WARNING: %s allocates %d/op; the serving hot path is tracked at 0 allocs/op\n",
			c.Name, res.AllocsPerOp)
	}
	return nil
}

// trackedFaultSpec is the fault plan of the tracked faulty serving cell:
// sparse bin outages with recovery and eviction, 10% probe loss, and a
// 2-probe retry budget — every fault-layer hot path exercised at once.
const trackedFaultSpec = "fail:0.0005,200+loss:0.1+retry:2+evict"

// faultsGrid returns the faulty serving cells: the tracked acceptance
// cell first (the full plan on the histogram store), then the
// degradation ablation — loss alone, loss with retries, heavy loss with
// a deep budget, outage/eviction alone, and the dense-store column.
func faultsGrid(quick bool) []serveCell {
	n := 100000
	if quick {
		n = 4096
	}
	cells := []serveCell{
		{N: n, D: 2, Beta: 1, Churn: 0.4, Store: kdchoice.StoreHist, Faults: trackedFaultSpec},
		{N: n, D: 2, Beta: 1, Churn: 0.4, Store: kdchoice.StoreHist, Faults: "loss:0.1"},
		{N: n, D: 2, Beta: 1, Churn: 0.4, Store: kdchoice.StoreHist, Faults: "loss:0.1+retry:2"},
		{N: n, D: 2, Beta: 1, Churn: 0.4, Store: kdchoice.StoreHist, Faults: "loss:0.3+retry:8"},
		{N: n, D: 2, Beta: 1, Churn: 0.4, Store: kdchoice.StoreHist, Faults: "fail:0.0005,200+evict"},
		{N: n, D: 2, Beta: 1, Churn: 0.4, Store: kdchoice.StoreDense, Faults: "loss:0.1+retry:2"},
	}
	for i := range cells {
		cells[i].Name = serveCellName(cells[i])
	}
	return cells
}

// runFaults executes the faulty serving grid and writes BENCH_faults.json.
func runFaults(quick bool, outPath string, out io.Writer) error {
	rep := serveReport{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	for _, c := range faultsGrid(quick) {
		res, err := runServeCell(c)
		if err != nil {
			return err
		}
		rep.Cells = append(rep.Cells, res)
		fmt.Fprintf(out, "%-76s %10.0f ns/op %14.0f ops/sec %3d allocs\n",
			res.Name, res.NsPerOp, res.OpsPerSec, res.AllocsPerOp)
	}
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", outPath)
	return nil
}

// runCompareFaults re-times the tracked faulty serving cell at full size
// against a committed BENCH_faults.json. Time regressions warn without
// failing (the serving-ratchet contract), but any per-op heap allocation
// is an error: the fault layer is tracked at 0 allocs/op, so an
// allocation means a hot-path buffer escaped.
func runCompareFaults(path string, out io.Writer) error {
	const threshold = 1.15
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("comparefaults: %w", err)
	}
	var tracked serveReport
	if err := json.Unmarshal(data, &tracked); err != nil {
		return fmt.Errorf("comparefaults: parsing %s: %w", path, err)
	}
	// The tracked acceptance cell, constructed directly so grid edits can
	// never redirect the ratchet.
	c := serveCell{N: 100000, D: 2, Beta: 1, Churn: 0.4, Store: kdchoice.StoreHist, Faults: trackedFaultSpec}
	c.Name = serveCellName(c)
	var prev *serveResult
	for i := range tracked.Cells {
		if tracked.Cells[i].Name == c.Name {
			prev = &tracked.Cells[i]
			break
		}
	}
	if prev == nil || prev.NsPerOp <= 0 {
		fmt.Fprintf(out, "PERF WARNING: tracked faulty serving cell %q missing from %s\n", c.Name, path)
		return nil
	}
	res, err := runServeCell(c)
	if err != nil {
		return err
	}
	ratio := res.NsPerOp / prev.NsPerOp
	fmt.Fprintf(out, "%-76s tracked %6.0f ns/op, now %6.0f ns/op (%.2fx)\n",
		c.Name, prev.NsPerOp, res.NsPerOp, ratio)
	switch {
	case ratio > threshold:
		fmt.Fprintf(out, "PERF WARNING: %s regressed %.0f%% vs %s (threshold %.0f%%)\n",
			c.Name, (ratio-1)*100, path, (threshold-1)*100)
	default:
		fmt.Fprintln(out, "comparefaults: tracked cell within threshold")
	}
	if res.AllocsPerOp > 0 {
		return fmt.Errorf("comparefaults: %s allocates %d/op; the faulty serving hot path is tracked at 0 allocs/op", c.Name, res.AllocsPerOp)
	}
	return nil
}

// compareCells returns the cells the -compare ratchet re-times — the
// serial, 4-shard and pipelined acceptance cells (n=1e5, k=2, d=64) —
// constructed directly rather than plucked from grid() by index, so
// reordering or extending the grid can never silently redirect the
// ratchet. The sharded cell is the parallel-engine ratchet: a >15%
// regression there means the superstep machinery itself (gather, pool
// dispatch, positional merge) got slower, independent of any multi-core
// speedup the host may or may not offer.
func compareCells() []cell {
	serial := kdchoice.Config{Bins: 100000, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice}
	sharded := serial
	sharded.Shards = 4
	pipe := serial
	pipe.Pipeline = true
	return []cell{
		{Name: cellName(serial), Cfg: serial},
		{Name: cellName(sharded), Cfg: sharded},
		{Name: cellName(pipe), Cfg: pipe},
	}
}

// runCompare re-times the tracked acceptance cells at full size and
// compares them against the committed BENCH_kd.json. Regressions beyond
// the threshold print a PERF WARNING but never fail the run — benchmark
// boxes are noisy, so the ratchet informs rather than blocks.
func runCompare(path string, out io.Writer) error {
	const threshold = 1.15
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	var tracked report
	if err := json.Unmarshal(data, &tracked); err != nil {
		return fmt.Errorf("compare: parsing %s: %w", path, err)
	}
	warned := false
	compared := 0
	for _, c := range compareCells() {
		var prev *result
		for i := range tracked.Grid {
			if tracked.Grid[i].Name == c.Name {
				prev = &tracked.Grid[i]
				break
			}
		}
		if prev == nil || prev.NsPerRound <= 0 {
			fmt.Fprintf(out, "compare: cell %q not tracked in %s; skipping\n", c.Name, path)
			continue
		}
		res, err := runCell(c)
		if err != nil {
			return err
		}
		compared++
		ratio := res.NsPerRound / prev.NsPerRound
		fmt.Fprintf(out, "%-44s tracked %6.0f ns/round, now %6.0f ns/round (%.2fx)\n",
			c.Name, prev.NsPerRound, res.NsPerRound, ratio)
		if ratio > threshold {
			warned = true
			fmt.Fprintf(out, "PERF WARNING: %s regressed %.0f%% vs %s (threshold %.0f%%)\n",
				c.Name, (ratio-1)*100, path, (threshold-1)*100)
		}
	}
	switch {
	case compared == 0:
		// A dead ratchet must not read as a green one.
		fmt.Fprintf(out, "PERF WARNING: no tracked cells compared — %s does not carry the acceptance cells\n", path)
	case !warned:
		fmt.Fprintln(out, "compare: tracked cells within threshold")
	}
	return nil
}

// parallelResult is one worker-count series point: a micro-grid result
// plus its speedup against the series' serial (Shards=1) baseline.
type parallelResult struct {
	result
	// SpeedupVsSerial is ns/round(Shards=1) / ns/round(this cell), from
	// the same run of the series. 0 on the baseline row itself.
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// parallelReport is the BENCH_parallel.json schema. GOMAXPROCS records how
// many cores the box actually offered: on a single-CPU host every
// worker-count point multiplexes one core, so speedups near or below 1.0x
// are the honest expected reading there, and the series measures the
// engine's overhead rather than its scaling.
type parallelReport struct {
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Cells      []parallelResult `json:"cells"`
}

// parallelGrid returns the worker-count series: the kd acceptance cell
// (staleness-trading superstep) and the large-k StaleBatch cell (exact
// sharding) at Shards = 1, 2, 4, 8 each. The Shards=1 row of each series
// is the serial baseline its speedups are computed against.
func parallelGrid(quick bool) [][]cell {
	n := 100000
	if quick {
		n = 2048
	}
	bases := []kdchoice.Config{
		{Bins: n, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice},
		{Bins: n, K: 256, D: 2, Seed: 1, Policy: kdchoice.StaleBatch},
	}
	series := make([][]cell, len(bases))
	for i, base := range bases {
		for _, p := range []int{1, 2, 4, 8} {
			cfg := base
			cfg.Shards = p
			series[i] = append(series[i], cell{Name: cellName(cfg), Cfg: cfg})
		}
	}
	return series
}

// runParallel executes the worker-count series and writes
// BENCH_parallel.json.
func runParallel(quick bool, outPath string, out io.Writer) error {
	rep := parallelReport{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	fmt.Fprintf(out, "gomaxprocs=%d\n", rep.GOMAXPROCS)
	for _, series := range parallelGrid(quick) {
		var baseline float64
		for _, c := range series {
			res, err := runCell(c)
			if err != nil {
				return err
			}
			pr := parallelResult{result: res}
			if c.Cfg.Shards == 1 {
				baseline = res.NsPerRound
			} else if baseline > 0 && res.NsPerRound > 0 {
				pr.SpeedupVsSerial = baseline / res.NsPerRound
			}
			rep.Cells = append(rep.Cells, pr)
			speedup := "baseline"
			if pr.SpeedupVsSerial > 0 {
				speedup = fmt.Sprintf("%.2fx", pr.SpeedupVsSerial)
			}
			fmt.Fprintf(out, "%-44s %12.0f ns/round %3d allocs  %s\n",
				res.Name, res.NsPerRound, res.AllocsPerRound, speedup)
		}
	}
	if outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", outPath)
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	outPath := fs.String("out", "", "output JSON path (default BENCH_kd.json, BENCH_scale.json with -scale, BENCH_serve.json with -serve, or BENCH_approx.json with -approx; empty: stdout only)")
	quick := fs.Bool("quick", false, "tiny cells for smoke testing (do not commit quick results)")
	scale := fs.Bool("scale", false, "run the large-n scale grid instead of the micro grid")
	serve := fs.Bool("serve", false, "run the online-serving grid (mixed insert/delete streams) instead of the micro grid")
	approx := fs.Bool("approx", false, "run the approximate-store grid (compact vs nibble vs sketch) instead of the micro grid")
	parallel := fs.Bool("parallel", false, "run the sharded-engine worker-count series (Shards = 1, 2, 4, 8) instead of the micro grid")
	faultsFlag := fs.Bool("faults", false, "run the faulty serving grid (deterministic fault plans on the serving mix) instead of the micro grid")
	block := fs.Int("block", 0, "superstep size in rounds applied to every cell (0 = auto, bit-identical for any value)")
	shardsFlag := fs.Int("shards", 0, "shard count applied to every micro-grid cell (ablation; bit-identical for any count >= 2; requires -out '')")
	storeFlag := fs.String("store", "", "bin store applied to every micro/scale cell (ablation; one of "+strings.Join(kdchoice.StoreNames(), ", ")+"; requires -out '')")
	compare := fs.String("compare", "", "compare the tracked acceptance cells against this BENCH_kd.json and warn (non-fatal) on >15% regression")
	compareServe := fs.String("compareserve", "", "compare the tracked serving cell against this BENCH_serve.json and warn (non-fatal) on >15% regression")
	compareApprox := fs.String("compareapprox", "", "compare the tracked n=1e8 nibble cell against this BENCH_approx.json and warn (non-fatal) on >15% regression or a blown B/bin budget")
	compareFaults := fs.String("comparefaults", "", "compare the tracked faulty serving cell against this BENCH_faults.json: warn (non-fatal) on >15% regression, FAIL on any per-op allocation")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench: memprofile:", err)
			}
		}()
	}
	// The tracked-file default applies only when -out is not given at all;
	// an explicit empty -out means stdout only (the smoke-test form).
	path := *outPath
	outSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "out" {
			outSet = true
		}
	})
	ratchets := 0
	for _, r := range []string{*compare, *compareServe, *compareApprox, *compareFaults} {
		if r != "" {
			ratchets++
		}
	}
	if ratchets > 0 {
		// The ratchets always re-time the full-size acceptance cells
		// against the named file; silently dropping grid flags would make
		// `-quick -compare` look like a smoke check it is not.
		if *quick || *scale || *serve || *approx || *parallel || *faultsFlag || *block != 0 || *shardsFlag != 0 || *storeFlag != "" || outSet {
			return fmt.Errorf("the -compare* ratchets cannot be combined with -quick, -scale, -serve, -approx, -parallel, -faults, -block, -shards, -store or -out (they always re-time the full-size acceptance cells)")
		}
		if ratchets > 1 {
			return fmt.Errorf("-compare, -compareserve, -compareapprox and -comparefaults are separate ratchets; run them one at a time")
		}
		switch {
		case *compare != "":
			return runCompare(*compare, out)
		case *compareServe != "":
			return runCompareServe(*compareServe, out)
		case *compareFaults != "":
			return runCompareFaults(*compareFaults, out)
		default:
			return runCompareApprox(*compareApprox, out)
		}
	}
	grids := 0
	for _, g := range []bool{*scale, *serve, *approx, *parallel, *faultsFlag} {
		if g {
			grids++
		}
	}
	if grids > 1 {
		return fmt.Errorf("-scale, -serve, -approx, -parallel and -faults select different grids; run them one at a time")
	}
	if !outSet {
		switch {
		case *scale:
			path = "BENCH_scale.json"
		case *serve:
			path = "BENCH_serve.json"
		case *approx:
			path = "BENCH_approx.json"
		case *parallel:
			path = "BENCH_parallel.json"
		case *faultsFlag:
			path = "BENCH_faults.json"
		default:
			path = "BENCH_kd.json"
		}
	}
	if *parallel {
		if *block != 0 || *shardsFlag != 0 || *storeFlag != "" {
			return fmt.Errorf("-block/-shards/-store do not apply to the parallel grid (it is itself a shard-count series)")
		}
		return runParallel(*quick, path, out)
	}
	if (*block != 0 || *shardsFlag != 0 || *storeFlag != "") && path != "" {
		// An overridden run is an ablation, not the tracked trajectory:
		// the canonical speedup fields and the -compare cell names assume
		// the default superstep and the grid's own store columns. Keep the
		// output inspectable but never let it masquerade as a tracked
		// BENCH_*.json.
		return fmt.Errorf("-block/-shards/-store runs are ablations: use -out '' (stdout only) so the override cannot overwrite a tracked trajectory")
	}
	if *serve || *faultsFlag {
		if *block != 0 || *shardsFlag != 0 {
			return fmt.Errorf("-block/-shards apply to the round-based grids, not the serving grids")
		}
		if *storeFlag != "" {
			return fmt.Errorf("-store applies to the micro and scale grids; the serving grids carry their own store column")
		}
		if *faultsFlag {
			return runFaults(*quick, path, out)
		}
		return runServe(*quick, path, out)
	}
	if *approx {
		if *block != 0 || *shardsFlag != 0 || *storeFlag != "" {
			return fmt.Errorf("-block/-shards/-store do not apply to the approx grid (it is itself a store comparison)")
		}
		return runApprox(*quick, path, out)
	}
	if *scale {
		if *shardsFlag != 0 {
			return fmt.Errorf("-shards applies to the micro grid; the scale grid is pipelined round-mode")
		}
		return runScale(*quick, *block, *storeFlag, path, out)
	}
	rep := report{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	cells := grid(*quick)
	if *storeFlag != "" {
		s, err := kdchoice.ParseStore(*storeFlag)
		if err != nil {
			return err
		}
		// Rewrite every cell onto the override store; the dedup below (also
		// used by -block) drops the rows the collapsed store column merges.
		for i := range cells {
			cells[i].Cfg.Store = s
			cells[i].Name = cellName(cells[i].Cfg)
		}
		seen := make(map[string]bool, len(cells))
		dedup := cells[:0]
		for _, c := range cells {
			if seen[c.Name] {
				continue
			}
			seen[c.Name] = true
			dedup = append(dedup, c)
		}
		cells = dedup
	}
	if *block != 0 {
		// Negative values flow through to Config validation, which names
		// the knob in its error. Cells with an explicit Block (the
		// ablation cell) keep their own size, and any resulting name
		// collision (e.g. -block 1 turning cell 0 into the ablation cell)
		// keeps only the first occurrence, so reports never carry
		// ambiguous duplicate rows.
		for i := range cells {
			if cells[i].Cfg.Block != 0 {
				continue
			}
			cells[i].Cfg.Block = *block
			cells[i].Name = cellName(cells[i].Cfg)
		}
		seen := make(map[string]bool, len(cells))
		dedup := cells[:0]
		for _, c := range cells {
			if seen[c.Name] {
				continue
			}
			seen[c.Name] = true
			dedup = append(dedup, c)
		}
		cells = dedup
	}
	if *shardsFlag != 0 {
		// Same contract as -block: cells with an explicit Shards (the
		// tracked sharded cells) keep their own count, negative values
		// flow through to Config validation, and name collisions keep the
		// first occurrence.
		for i := range cells {
			if cells[i].Cfg.Shards != 0 {
				continue
			}
			cells[i].Cfg.Shards = *shardsFlag
			cells[i].Name = cellName(cells[i].Cfg)
		}
		seen := make(map[string]bool, len(cells))
		dedup := cells[:0]
		for _, c := range cells {
			if seen[c.Name] {
				continue
			}
			seen[c.Name] = true
			dedup = append(dedup, c)
		}
		cells = dedup
	}
	for _, c := range cells {
		res, err := runCell(c)
		if err != nil {
			return err
		}
		rep.Grid = append(rep.Grid, res)
		fmt.Fprintf(out, "%-40s %12.0f ns/round %8.1f balls/round %14.0f balls/sec %3d allocs\n",
			res.Name, res.NsPerRound, res.BallsPerRound, res.BallsPerSec, res.AllocsPerRound)
	}
	if rep.Grid[0].NsPerRound > 0 {
		rep.SpeedupFastVsSort = rep.Grid[1].NsPerRound / rep.Grid[0].NsPerRound
		fmt.Fprintf(out, "fast-vs-sort speedup (%s): %.2fx\n", rep.Grid[0].Name, rep.SpeedupFastVsSort)
	}
	if rep.Grid[2].NsPerRound > 0 {
		rep.SpeedupShardsVsSerial = rep.Grid[0].NsPerRound / rep.Grid[2].NsPerRound
		fmt.Fprintf(out, "shards-vs-serial speedup (%s): %.2fx\n", rep.Grid[2].Name, rep.SpeedupShardsVsSerial)
	}
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}
