// Command bench runs the repository's tracked performance grid and writes
// the results to BENCH_kd.json, the benchmark trajectory future PRs regress
// against.
//
// Each cell of the grid benchmarks one allocation process configuration
// (n, k, d, policy) through the public API, measuring ns per round, heap
// allocations per round, and placement throughput in balls per second. The
// grid also times the (k,d)-choice acceptance cell (n = 1e5, k = 2, d = 64)
// on both slot-selection kernels and reports the fast-vs-sort speedup.
//
// Usage:
//
//	bench [-out BENCH_kd.json] [-quick]
//
// -quick shrinks the grid to tiny cells (for smoke tests); tracked results
// should always come from the full grid, e.g. via `scripts/ci.sh bench`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	kdchoice "repro"
)

// cell is one grid entry.
type cell struct {
	Name string
	Cfg  kdchoice.Config
}

// result is the serialized outcome of one cell.
type result struct {
	Name            string  `json:"name"`
	Policy          string  `json:"policy"`
	N               int     `json:"n"`
	K               int     `json:"k,omitempty"`
	D               int     `json:"d,omitempty"`
	ReferenceSelect bool    `json:"reference_select,omitempty"`
	NsPerRound      float64 `json:"ns_per_round"`
	BytesPerRound   int64   `json:"bytes_per_round"`
	AllocsPerRound  int64   `json:"allocs_per_round"`
	BallsPerRound   float64 `json:"balls_per_round"`
	BallsPerSec     float64 `json:"balls_per_sec"`
}

// report is the BENCH_kd.json schema.
type report struct {
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	Grid      []result `json:"grid"`
	// SpeedupFastVsSort is ns/round(sort kernel) / ns/round(fast kernel)
	// on the n=1e5, k=2, d=64 acceptance cell; the floor is 1.5.
	SpeedupFastVsSort float64 `json:"speedup_fast_vs_sort_n1e5_k2_d64,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// cellName derives the canonical cell name from its configuration, so
// names can never disagree with the recorded parameters (quick mode
// shrinks n, and the names shrink with it). Grid configs always set
// Policy explicitly, so no defaulting logic is duplicated here.
func cellName(cfg kdchoice.Config) string {
	policy := cfg.Policy
	name := fmt.Sprintf("%v/n=%d", policy, cfg.Bins)
	if policy == kdchoice.KDChoice {
		kernel := "fast"
		if cfg.ReferenceSelect {
			kernel = "sort"
		}
		name = fmt.Sprintf("kd/%s/n=%d", kernel, cfg.Bins)
	}
	if cfg.K > 0 {
		name += fmt.Sprintf(",k=%d", cfg.K)
	}
	if cfg.D > 0 {
		name += fmt.Sprintf(",d=%d", cfg.D)
	}
	if cfg.Beta > 0 {
		name += fmt.Sprintf(",beta=%g", cfg.Beta)
	}
	return name
}

// grid returns the tracked benchmark cells. The first two cells are the
// kernel-ablation pair the speedup criterion is computed from.
func grid(quick bool) []cell {
	n, small := 100000, 10000
	if quick {
		n, small = 2048, 512
	}
	configs := []kdchoice.Config{
		{Bins: n, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice},
		{Bins: n, K: 2, D: 64, Seed: 1, Policy: kdchoice.KDChoice, ReferenceSelect: true},
		{Bins: n, K: 8, D: 16, Seed: 1, Policy: kdchoice.KDChoice},
		{Bins: n, K: 128, D: 192, Seed: 1, Policy: kdchoice.KDChoice},
		{Bins: small, K: 2, D: 4, Seed: 1, Policy: kdchoice.KDChoice},
		{Bins: n, K: 2, D: 64, Seed: 1, Policy: kdchoice.Serialized},
		{Bins: n, D: 2, Seed: 1, Policy: kdchoice.DChoice},
		{Bins: n, Seed: 1, Policy: kdchoice.SingleChoice},
		{Bins: n, Beta: 0.5, Seed: 1, Policy: kdchoice.OnePlusBeta},
		{Bins: n, K: 8, D: 2, Seed: 1, Policy: kdchoice.StaleBatch},
	}
	cells := make([]cell, len(configs))
	for i, cfg := range configs {
		cells[i] = cell{Name: cellName(cfg), Cfg: cfg}
	}
	return cells
}

// runCell benchmarks one cell: steady-state rounds through the public API.
func runCell(c cell) (result, error) {
	probe, err := kdchoice.New(c.Cfg)
	if err != nil {
		return result{}, fmt.Errorf("cell %s: %w", c.Name, err)
	}
	// New normalizes the config (zero Policy means KDChoice), so the
	// stored Config carries the canonical policy name.
	policy := probe.Config().Policy.String()
	var ballsPerRound float64
	br := testing.Benchmark(func(b *testing.B) {
		alloc, err := kdchoice.New(c.Cfg)
		if err != nil {
			b.Fatal(err)
		}
		// Warm to steady state (~1 ball per bin) so scratch buffers are
		// grown and the load vector is realistic.
		alloc.PlaceAll()
		b.ReportAllocs()
		b.ResetTimer()
		start := alloc.Balls()
		for i := 0; i < b.N; i++ {
			alloc.Round()
		}
		ballsPerRound = float64(alloc.Balls()-start) / float64(b.N)
	})
	ns := float64(br.NsPerOp())
	res := result{
		Name:            c.Name,
		Policy:          policy,
		N:               c.Cfg.Bins,
		K:               c.Cfg.K,
		D:               c.Cfg.D,
		ReferenceSelect: c.Cfg.ReferenceSelect,
		NsPerRound:      ns,
		BytesPerRound:   br.AllocedBytesPerOp(),
		AllocsPerRound:  br.AllocsPerOp(),
		BallsPerRound:   ballsPerRound,
	}
	if ns > 0 {
		res.BallsPerSec = ballsPerRound * 1e9 / ns
	}
	return res, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	outPath := fs.String("out", "BENCH_kd.json", "output JSON path (empty: stdout only)")
	quick := fs.Bool("quick", false, "tiny cells for smoke testing (do not commit quick results)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep := report{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	for _, c := range grid(*quick) {
		res, err := runCell(c)
		if err != nil {
			return err
		}
		rep.Grid = append(rep.Grid, res)
		fmt.Fprintf(out, "%-32s %12.0f ns/round %8.1f balls/round %14.0f balls/sec %3d allocs\n",
			res.Name, res.NsPerRound, res.BallsPerRound, res.BallsPerSec, res.AllocsPerRound)
	}
	if rep.Grid[0].NsPerRound > 0 {
		rep.SpeedupFastVsSort = rep.Grid[1].NsPerRound / rep.Grid[0].NsPerRound
		fmt.Fprintf(out, "fast-vs-sort speedup (%s): %.2fx\n", rep.Grid[0].Name, rep.SpeedupFastVsSort)
	}
	if *outPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", *outPath)
	return nil
}
