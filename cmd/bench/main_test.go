package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	kdchoice "repro"
)

func TestGridShape(t *testing.T) {
	for _, quick := range []bool{false, true} {
		cells := grid(quick)
		if len(cells) < 8 {
			t.Fatalf("quick=%v: grid has %d cells, want >= 8", quick, len(cells))
		}
		// The first two cells must be the kernel-ablation pair the speedup
		// is computed from: same shape, fast vs reference kernel.
		a, b := cells[0].Cfg, cells[1].Cfg
		if a.ReferenceSelect || !b.ReferenceSelect {
			t.Fatalf("quick=%v: cells 0/1 are not the fast/sort pair", quick)
		}
		if a.Bins != b.Bins || a.K != b.K || a.D != b.D {
			t.Fatalf("quick=%v: ablation pair shapes differ: %+v vs %+v", quick, a, b)
		}
		// Cell 2 must be the 4-shard variant of cell 0 (the shards-vs-serial
		// speedup pair).
		s := cells[2].Cfg
		if s.Shards != 4 || s.ReferenceSelect || s.Pipeline || s.Bins != a.Bins || s.K != a.K || s.D != a.D {
			t.Fatalf("quick=%v: cell 2 is not the 4-shard twin of cell 0: %+v", quick, s)
		}
		for _, c := range cells {
			if _, err := kdchoice.New(c.Cfg); err != nil {
				t.Fatalf("cell %s has invalid config: %v", c.Name, err)
			}
			if !strings.Contains(c.Name, fmt.Sprintf("n=%d", c.Cfg.Bins)) {
				t.Fatalf("cell name %q does not reflect its bin count %d", c.Name, c.Cfg.Bins)
			}
			if c.Cfg.Policy == 0 || strings.Contains(c.Name, "policy(") {
				t.Fatalf("cell %q must set Policy explicitly (cellName does no defaulting)", c.Name)
			}
		}
	}
}

func TestRunCell(t *testing.T) {
	res, err := runCell(cell{"kd/tiny", kdchoice.Config{Bins: 512, K: 2, D: 8, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NsPerRound <= 0 {
		t.Fatalf("ns/round = %v", res.NsPerRound)
	}
	if res.BallsPerRound != 2 {
		t.Fatalf("balls/round = %v, want 2 (k)", res.BallsPerRound)
	}
	if res.AllocsPerRound != 0 {
		t.Fatalf("steady-state rounds allocated: %d allocs/round", res.AllocsPerRound)
	}
	if res.BallsPerSec <= 0 {
		t.Fatalf("balls/sec = %v", res.BallsPerSec)
	}
}

func TestRunQuickWritesReport(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-out", outPath}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatalf("summary missing speedup line:\n%s", buf.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Grid) != len(grid(true)) {
		t.Fatalf("report has %d cells, want %d", len(rep.Grid), len(grid(true)))
	}
	if rep.SpeedupFastVsSort <= 0 {
		t.Fatal("speedup not recorded")
	}
	if rep.GoVersion == "" {
		t.Fatal("go version not recorded")
	}
	for _, res := range rep.Grid {
		if strings.Contains(res.Policy, "policy(") {
			t.Fatalf("cell %s recorded unnormalized policy name %q", res.Name, res.Policy)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bogus flag accepted")
	}
}

func TestScaleGridShape(t *testing.T) {
	for _, quick := range []bool{false, true} {
		cells := scaleGrid(quick)
		// Two throughput n values plus one heavy row, three stores each.
		if len(cells) != 9 {
			t.Fatalf("quick=%v: scale grid has %d cells, want 9", quick, len(cells))
		}
		stores := map[string]int{}
		heavy := 0
		for _, c := range cells {
			a, err := kdchoice.New(c.Cfg)
			if err != nil {
				t.Fatalf("cell %s invalid: %v", c.Name, err)
			}
			a.Close()
			stores[c.Cfg.Store.String()]++
			if c.Balls == 100*c.Cfg.Bins {
				heavy++
				if c.Cfg.Bins < 10000 {
					t.Fatalf("quick=%v: heavy cell %s too small for a meaningful m=100n run", quick, c.Name)
				}
			}
		}
		for _, want := range []string{"dense", "compact", "hist"} {
			if stores[want] != 3 {
				t.Fatalf("quick=%v: store column %q appears %d times, want 3", quick, want, stores[want])
			}
		}
		if heavy != 3 {
			t.Fatalf("quick=%v: %d heavy-load cells, want 3 (one per store)", quick, heavy)
		}
	}
}

func TestRunScaleCellTiny(t *testing.T) {
	res, err := runScaleCell(scaleCell{
		Name:  "tiny",
		Cfg:   kdchoice.Config{Bins: 4096, K: 2, D: 16, Seed: 1, Policy: kdchoice.KDChoice, Store: kdchoice.StoreCompact, Pipeline: true},
		Warm:  4096,
		Balls: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BallsPerSec <= 0 || res.NsPerRound <= 0 {
		t.Fatalf("throughput not measured: %+v", res)
	}
	if res.TotalBalls != 4096+8192 {
		t.Fatalf("TotalBalls = %d", res.TotalBalls)
	}
	if res.Store != "compact" {
		t.Fatalf("Store = %q", res.Store)
	}
	if res.MaxLoad < 2 || res.Gap <= 0 {
		t.Fatalf("load stats missing: %+v", res)
	}
}

func TestRunScaleQuickWritesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("quick scale grid still places millions of balls")
	}
	outPath := filepath.Join(t.TempDir(), "scale.json")
	var buf bytes.Buffer
	if err := run([]string{"-scale", "-quick", "-out", outPath}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep scaleReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != len(scaleGrid(true)) {
		t.Fatalf("report has %d cells, want %d", len(rep.Cells), len(scaleGrid(true)))
	}
	for _, c := range rep.Cells {
		if c.BytesPerBin <= 0 {
			t.Fatalf("cell %s: bytes/bin not measured", c.Name)
		}
		if c.BallsPerSec <= 0 {
			t.Fatalf("cell %s: throughput not measured", c.Name)
		}
	}
}

func TestRunCompareRatchet(t *testing.T) {
	if testing.Short() {
		t.Skip("compare re-times full-size cells")
	}
	// The ratchet cells must exist in the committed grid under the exact
	// names -compare looks up.
	cmpCells := compareCells()
	for _, c := range cmpCells {
		found := false
		for _, g := range grid(false) {
			if g.Name == c.Name {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("compare cell %q is not part of the tracked grid", c.Name)
		}
	}
	// An empty tracked report must warn loudly instead of reading green.
	empty := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(empty, []byte(`{"grid":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var ebuf bytes.Buffer
	if err := run([]string{"-compare", empty}, &ebuf); err != nil {
		t.Fatalf("empty compare must be non-fatal: %v", err)
	}
	if !strings.Contains(ebuf.String(), "no tracked cells compared") {
		t.Fatalf("dead ratchet not flagged:\n%s", ebuf.String())
	}
	// Fabricate a tracked report carrying only the serial cell at an
	// impossibly fast time: one compare run then exercises the warning
	// path (guaranteed regression) AND the missing-cell skip path, while
	// re-timing just a single full-size cell — ci.sh already runs the real
	// two-cell ratchet, so the test keeps the duplicate work minimal.
	tracked := report{Grid: []result{
		{Name: cmpCells[0].Name, NsPerRound: 1},
	}}
	data, err := json.Marshal(tracked)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tracked.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-compare", path}, &buf); err != nil {
		t.Fatalf("compare must be non-fatal: %v", err)
	}
	out := buf.String()
	if strings.Count(out, "PERF WARNING") != 1 {
		t.Fatalf("want exactly one PERF WARNING:\n%s", out)
	}
	if !strings.Contains(out, cmpCells[0].Name) {
		t.Fatalf("compare output missing the timed cell line:\n%s", out)
	}
	if !strings.Contains(out, "not tracked") || !strings.Contains(out, cmpCells[1].Name) {
		t.Fatalf("compare output missing the skipped-cell notice:\n%s", out)
	}
}

func TestRunProfilesAndBlock(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-block", "3", "-out", "", "-cpuprofile", cpu, "-memprofile", mem}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "block=3") {
		t.Fatalf("-block 3 not reflected in cell names:\n%s", buf.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	var buf2 bytes.Buffer
	if err := run([]string{"-quick", "-block", "-3", "-out", ""}, &buf2); err == nil {
		t.Fatal("negative -block accepted")
	}
}

func TestFlagCombinations(t *testing.T) {
	var buf bytes.Buffer
	// -compare is exclusive with the grid flags.
	for _, args := range [][]string{
		{"-quick", "-compare", "x.json"},
		{"-scale", "-compare", "x.json"},
		{"-block", "2", "-compare", "x.json"},
		{"-out", "y.json", "-compare", "x.json"},
	} {
		if err := run(args, &buf); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
	// -block ablations must not overwrite a tracked trajectory: without an
	// explicit empty -out the default path would be BENCH_kd.json.
	if err := run([]string{"-quick", "-block", "2"}, &buf); err == nil {
		t.Fatal("-block without -out '' accepted")
	}
	// Same contract for the -shards ablation, and the grid selectors stay
	// mutually exclusive.
	for _, args := range [][]string{
		{"-quick", "-shards", "2"},
		{"-parallel", "-compare", "x.json"},
		{"-parallel", "-scale"},
		{"-parallel", "-shards", "2"},
		{"-serve", "-shards", "2"},
	} {
		if err := run(args, &buf); err == nil {
			t.Fatalf("%v accepted", args)
		}
	}
}

func TestParallelGridShape(t *testing.T) {
	series := parallelGrid(true)
	if len(series) != 2 {
		t.Fatalf("parallel grid has %d series, want 2", len(series))
	}
	for _, cells := range series {
		if len(cells) != 4 {
			t.Fatalf("series has %d points, want 4 (shards 1,2,4,8)", len(cells))
		}
		if cells[0].Cfg.Shards != 1 {
			t.Fatalf("series does not start at the serial baseline: %+v", cells[0].Cfg)
		}
		for i, c := range cells {
			want := 1 << i
			if c.Cfg.Shards != want {
				t.Fatalf("point %d has Shards=%d, want %d", i, c.Cfg.Shards, want)
			}
			a, err := kdchoice.New(c.Cfg)
			if err != nil {
				t.Fatalf("cell %s invalid: %v", c.Name, err)
			}
			a.Close()
		}
	}
}

func TestRunParallelQuickWritesReport(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "parallel.json")
	var buf bytes.Buffer
	if err := run([]string{"-parallel", "-quick", "-out", outPath}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep parallelReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.GOMAXPROCS < 1 {
		t.Fatalf("GOMAXPROCS = %d not recorded", rep.GOMAXPROCS)
	}
	if len(rep.Cells) != 8 {
		t.Fatalf("report has %d cells, want 8", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		if c.AllocsPerRound != 0 {
			t.Fatalf("cell %s allocates %d/round; the sharded hot path is tracked at 0", c.Name, c.AllocsPerRound)
		}
		if c.Shards == 1 && c.SpeedupVsSerial != 0 {
			t.Fatalf("baseline cell %s carries a speedup", c.Name)
		}
		if c.Shards > 1 && c.SpeedupVsSerial <= 0 {
			t.Fatalf("cell %s missing its speedup vs serial", c.Name)
		}
	}
}
