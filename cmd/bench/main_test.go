package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	kdchoice "repro"
)

func TestGridShape(t *testing.T) {
	for _, quick := range []bool{false, true} {
		cells := grid(quick)
		if len(cells) < 8 {
			t.Fatalf("quick=%v: grid has %d cells, want >= 8", quick, len(cells))
		}
		// The first two cells must be the kernel-ablation pair the speedup
		// is computed from: same shape, fast vs reference kernel.
		a, b := cells[0].Cfg, cells[1].Cfg
		if a.ReferenceSelect || !b.ReferenceSelect {
			t.Fatalf("quick=%v: cells 0/1 are not the fast/sort pair", quick)
		}
		if a.Bins != b.Bins || a.K != b.K || a.D != b.D {
			t.Fatalf("quick=%v: ablation pair shapes differ: %+v vs %+v", quick, a, b)
		}
		for _, c := range cells {
			if _, err := kdchoice.New(c.Cfg); err != nil {
				t.Fatalf("cell %s has invalid config: %v", c.Name, err)
			}
			if !strings.Contains(c.Name, fmt.Sprintf("n=%d", c.Cfg.Bins)) {
				t.Fatalf("cell name %q does not reflect its bin count %d", c.Name, c.Cfg.Bins)
			}
			if c.Cfg.Policy == 0 || strings.Contains(c.Name, "policy(") {
				t.Fatalf("cell %q must set Policy explicitly (cellName does no defaulting)", c.Name)
			}
		}
	}
}

func TestRunCell(t *testing.T) {
	res, err := runCell(cell{"kd/tiny", kdchoice.Config{Bins: 512, K: 2, D: 8, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NsPerRound <= 0 {
		t.Fatalf("ns/round = %v", res.NsPerRound)
	}
	if res.BallsPerRound != 2 {
		t.Fatalf("balls/round = %v, want 2 (k)", res.BallsPerRound)
	}
	if res.AllocsPerRound != 0 {
		t.Fatalf("steady-state rounds allocated: %d allocs/round", res.AllocsPerRound)
	}
	if res.BallsPerSec <= 0 {
		t.Fatalf("balls/sec = %v", res.BallsPerSec)
	}
}

func TestRunQuickWritesReport(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-out", outPath}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatalf("summary missing speedup line:\n%s", buf.String())
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Grid) != len(grid(true)) {
		t.Fatalf("report has %d cells, want %d", len(rep.Grid), len(grid(true)))
	}
	if rep.SpeedupFastVsSort <= 0 {
		t.Fatal("speedup not recorded")
	}
	if rep.GoVersion == "" {
		t.Fatal("go version not recorded")
	}
	for _, res := range rep.Grid {
		if strings.Contains(res.Policy, "policy(") {
			t.Fatalf("cell %s recorded unnormalized policy name %q", res.Name, res.Policy)
		}
	}
}

func TestRunBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bogus flag accepted")
	}
}
