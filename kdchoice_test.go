package kdchoice

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestNewDefaultsToKDChoice(t *testing.T) {
	a, err := New(Config{Bins: 64, K: 2, D: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Config().Policy != KDChoice {
		t.Fatalf("default policy = %v", a.Config().Policy)
	}
}

func TestNewKD(t *testing.T) {
	a, err := NewKD(128, 2, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	a.PlaceAll()
	if a.Balls() != 128 {
		t.Fatalf("Balls = %d", a.Balls())
	}
	if got := int64(128 / 2 * 5); a.Messages() != got {
		t.Fatalf("Messages = %d, want %d", a.Messages(), got)
	}
}

func TestNewErrors(t *testing.T) {
	cases := []Config{
		{Bins: 0, K: 1, D: 2},                     // bad n
		{Bins: 8, K: 2, D: 2},                     // k >= d
		{Bins: 8, K: 1, D: 2, Policy: Policy(99)}, // unknown policy
		{Bins: 8, Policy: OnePlusBeta, Beta: 2},   // bad beta
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestAllPoliciesConstructAndRun(t *testing.T) {
	cases := []Config{
		{Bins: 64, K: 2, D: 3, Policy: KDChoice},
		{Bins: 64, K: 2, D: 3, Policy: Serialized},
		{Bins: 64, K: 2, D: 3, Policy: Serialized, RandomSigma: true},
		{Bins: 64, K: 2, D: 3, Policy: Serialized, Sigma: []int{1, 0}},
		{Bins: 64, D: 2, Policy: DChoice},
		{Bins: 64, Policy: SingleChoice},
		{Bins: 64, Beta: 0.5, Policy: OnePlusBeta},
		{Bins: 64, D: 4, Policy: AlwaysGoLeft},
		{Bins: 64, K: 2, D: 3, Policy: AdaptiveKD},
		{Bins: 64, K: 4, D: 2, Policy: StaleBatch},
		{Bins: 64, D: 4, Policy: DynamicKD},
	}
	for _, cfg := range cases {
		t.Run(cfg.Policy.String(), func(t *testing.T) {
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			a.PlaceAll()
			if a.Balls() != 64 {
				t.Fatalf("Balls = %d", a.Balls())
			}
			sum := 0
			for _, l := range a.Loads() {
				sum += l
			}
			if sum != 64 {
				t.Fatalf("loads sum %d", sum)
			}
		})
	}
}

func TestPolicyString(t *testing.T) {
	names := map[Policy]string{
		KDChoice:     "kd",
		Serialized:   "kd-serialized",
		DChoice:      "dchoice",
		SingleChoice: "single",
		OnePlusBeta:  "oneplusbeta",
		AlwaysGoLeft: "alwaysgoleft",
		AdaptiveKD:   "kd-adaptive",
		StaleBatch:   "stale-batch",
		DynamicKD:    "kd-dynamic",
	}
	for p, want := range names {
		if got := p.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
	if !strings.Contains(Policy(42).String(), "42") {
		t.Fatal("unknown policy String")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{KDChoice, Serialized, DChoice, SingleChoice,
		OnePlusBeta, AlwaysGoLeft, AdaptiveKD, StaleBatch, DynamicKD} {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("ParsePolicy(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if _, err := ParsePolicy("zzz"); err == nil {
		t.Fatal("unknown policy name accepted")
	}
	// sax0 exists in the engine but is not part of the public surface.
	if _, err := ParsePolicy("sax0"); err == nil {
		t.Fatal("sax0 should not parse at the public layer")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []int {
		a, err := NewKD(256, 3, 7, 99)
		if err != nil {
			t.Fatal(err)
		}
		a.PlaceAll()
		return a.Loads()
	}
	if !reflect.DeepEqual(mk(), mk()) {
		t.Fatal("same seed produced different allocations")
	}
}

func TestPlaceErrors(t *testing.T) {
	a, _ := NewKD(16, 1, 2, 1)
	if err := a.Place(-1); err == nil {
		t.Fatal("Place(-1) accepted")
	}
	if err := a.Place(0); err != nil {
		t.Fatalf("Place(0): %v", err)
	}
	if err := a.Place(5); err != nil {
		t.Fatalf("Place(5): %v", err)
	}
	if a.Balls() != 5 {
		t.Fatalf("Balls = %d", a.Balls())
	}
}

func TestAccessors(t *testing.T) {
	a, _ := NewKD(32, 2, 4, 5)
	a.PlaceAll()
	if a.N() != 32 {
		t.Fatalf("N = %d", a.N())
	}
	if a.Rounds() != 16 {
		t.Fatalf("Rounds = %d", a.Rounds())
	}
	sorted := a.SortedLoads()
	if !sort.SliceIsSorted(sorted, func(i, j int) bool { return sorted[i] > sorted[j] }) {
		t.Fatal("SortedLoads not decreasing")
	}
	if sorted[0] != a.MaxLoad() {
		t.Fatal("SortedLoads[0] != MaxLoad")
	}
	if a.BinsWithAtLeast(0) != 32 {
		t.Fatal("BinsWithAtLeast(0) != n")
	}
	if a.BinsWithAtLeast(a.MaxLoad()+1) != 0 {
		t.Fatal("BinsWithAtLeast above max != 0")
	}
	for _, bin := range []int{-1, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Load(%d) should panic for out-of-range bin", bin)
				}
			}()
			a.Load(bin)
		}()
	}
	wantGap := float64(a.MaxLoad()) - 1
	if a.Gap() != wantGap {
		t.Fatalf("Gap = %v want %v", a.Gap(), wantGap)
	}
	// Loads is a copy.
	l := a.Loads()
	l[0] = 1 << 30
	if a.Load(0) == 1<<30 {
		t.Fatal("Loads aliases internals")
	}
}

func TestResetAndRound(t *testing.T) {
	a, _ := NewKD(16, 2, 4, 3)
	a.Round()
	if a.Balls() != 2 {
		t.Fatalf("after one round Balls = %d", a.Balls())
	}
	a.Reset()
	if a.Balls() != 0 || a.MaxLoad() != 0 || a.Messages() != 0 {
		t.Fatal("Reset incomplete")
	}
	a.PlaceAll()
	if a.Balls() != 16 {
		t.Fatal("allocator unusable after Reset")
	}
}

func TestTheoryHelpers(t *testing.T) {
	if Dk(1, 2) != 2 {
		t.Fatalf("Dk(1,2) = %v", Dk(1, 2))
	}
	n := 1 << 16
	if PredictMaxLoad(1, 2, n) <= 0 {
		t.Fatal("PredictMaxLoad should be positive")
	}
	if PredictGapTerm(1, 2, n) != PredictMaxLoad(1, 2, n) {
		t.Fatal("for (1,2), gap term should equal full prediction (crowd term 0)")
	}
	if PredictCrowdTerm(192, 193) <= 0 {
		t.Fatal("crowd term for k=192,d=193 should be positive")
	}
	if PredictSingleChoice(n) <= 0 {
		t.Fatal("single-choice prediction should be positive")
	}
	if MessageCost(2, 4, 100) != 200 {
		t.Fatalf("MessageCost = %d", MessageCost(2, 4, 100))
	}
	if Regime(1, 2, n) != "d-choice-like" {
		t.Fatalf("Regime(1,2) = %q", Regime(1, 2, n))
	}
	if Regime(192, 193, n) == "d-choice-like" {
		t.Fatal("Regime(192,193) misclassified")
	}
}

func TestSimulate(t *testing.T) {
	res, err := Simulate(Config{Bins: 256, K: 2, D: 4, Seed: 10}, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MaxLoads) != 8 {
		t.Fatalf("MaxLoads len %d", len(res.MaxLoads))
	}
	if len(res.DistinctMax) == 0 || res.MeanMax <= 0 {
		t.Fatal("summary fields empty")
	}
	// DistinctMax must be the sorted distinct values of MaxLoads.
	seen := map[int]bool{}
	for _, m := range res.MaxLoads {
		seen[m] = true
	}
	if len(seen) != len(res.DistinctMax) {
		t.Fatal("DistinctMax inconsistent")
	}
	// Deterministic.
	res2, err := Simulate(Config{Bins: 256, K: 2, D: 4, Seed: 10}, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.MaxLoads, res2.MaxLoads) {
		t.Fatal("Simulate not deterministic")
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(Config{Bins: 8, K: 1, D: 2}, 0, 0); err == nil {
		t.Fatal("runs=0 accepted")
	}
	if _, err := Simulate(Config{Bins: 8, K: 1, D: 2}, -1, 1); err == nil {
		t.Fatal("balls=-1 accepted")
	}
	if _, err := Simulate(Config{Bins: 8, K: 5, D: 2}, 0, 1); err == nil {
		t.Fatal("bad k/d accepted")
	}
	if _, err := Simulate(Config{Bins: 8, K: 1, D: 2, Policy: Policy(77)}, 0, 1); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSimulateHeavyCase(t *testing.T) {
	res, err := Simulate(Config{Bins: 64, K: 2, D: 4, Seed: 1}, 64*8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.MaxLoads {
		if m < 8 {
			t.Fatalf("heavy-case max load %d below average 8", m)
		}
	}
	if res.MeanGap < 0 {
		t.Fatalf("MeanGap = %v", res.MeanGap)
	}
}

// TestTheorem1Shape: the measured max load should track the predicted
// leading term within a small additive constant across regimes.
func TestTheorem1Shape(t *testing.T) {
	n := 1 << 14
	for _, tc := range []struct{ k, d int }{{1, 2}, {2, 3}, {1, 8}, {4, 8}} {
		res, err := Simulate(Config{Bins: n, K: tc.k, D: tc.d, Seed: 42}, 0, 5)
		if err != nil {
			t.Fatal(err)
		}
		pred := PredictMaxLoad(tc.k, tc.d, n)
		if res.MeanMax < pred-3 || res.MeanMax > pred+4 {
			t.Fatalf("(%d,%d): mean max %.2f too far from predicted leading term %.2f",
				tc.k, tc.d, res.MeanMax, pred)
		}
	}
}

func TestStaleBatchPublicAPI(t *testing.T) {
	a, err := New(Config{Bins: 128, K: 4, D: 2, Policy: StaleBatch, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a.PlaceAll()
	if a.Balls() != 128 {
		t.Fatalf("Balls = %d", a.Balls())
	}
	// 32 rounds x 4 balls x 2 probes each.
	if a.Messages() != 256 {
		t.Fatalf("Messages = %d, want 256", a.Messages())
	}
	if a.Config().Policy.String() != "stale-batch" {
		t.Fatalf("policy name %q", a.Config().Policy.String())
	}
}

func TestDynamicKDPublicAPI(t *testing.T) {
	a, err := New(Config{Bins: 256, D: 8, Policy: DynamicKD, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a.PlaceAll()
	if a.Balls() != 256 {
		t.Fatalf("Balls = %d", a.Balls())
	}
	// The ceiling property: max load stays within 1 of floor(m/n)+1 = 2.
	if a.MaxLoad() > 3 {
		t.Fatalf("dynamic max load %d above ceiling+1", a.MaxLoad())
	}
	if a.Config().Policy.String() != "kd-dynamic" {
		t.Fatalf("policy name %q", a.Config().Policy.String())
	}
}

// TestNegativeKDRejected: negative K or D must be rejected with a clear
// message at the kdchoice layer, by both New and Simulate, before they can
// reach core and surface as confusing policy-specific errors.
func TestNegativeKDRejected(t *testing.T) {
	bad := []Config{
		{Bins: 8, K: -1, D: 2},
		{Bins: 8, K: 1, D: -2},
		{Bins: 8, K: -3, D: -1, Policy: SingleChoice},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "non-negative") {
			t.Fatalf("New(K=%d,D=%d): err = %v, want non-negative complaint", cfg.K, cfg.D, err)
		}
		if _, err := Simulate(cfg, 0, 1); err == nil || !strings.Contains(err.Error(), "non-negative") {
			t.Fatalf("Simulate(K=%d,D=%d): err = %v, want non-negative complaint", cfg.K, cfg.D, err)
		}
	}
}

// TestSimulateZeroPolicyMatchesExplicit: Simulate's zero-value Policy
// default must agree with New's (both mean KDChoice, as the Config docs
// promise).
func TestSimulateZeroPolicyMatchesExplicit(t *testing.T) {
	base := Config{Bins: 128, K: 2, D: 4, Seed: 11}
	explicit := base
	explicit.Policy = KDChoice
	a, err := Simulate(base, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(explicit, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.MaxLoads, b.MaxLoads) {
		t.Fatalf("zero policy %v != explicit KDChoice %v", a.MaxLoads, b.MaxLoads)
	}
}

// TestReferenceSelectPublicCoupling: through the public API, the counting
// kernel and the reference sort kernel must produce identical results for
// the same seed (the select.go coupling, end to end).
func TestReferenceSelectPublicCoupling(t *testing.T) {
	fast, err := New(Config{Bins: 512, K: 4, D: 9, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(Config{Bins: 512, K: 4, D: 9, Seed: 21, ReferenceSelect: true})
	if err != nil {
		t.Fatal(err)
	}
	fast.PlaceAll()
	ref.PlaceAll()
	if !reflect.DeepEqual(fast.Loads(), ref.Loads()) {
		t.Fatal("public-API kernels diverged for equal seeds")
	}
	if fast.MaxLoad() != ref.MaxLoad() || fast.Messages() != ref.Messages() {
		t.Fatal("public-API kernel summaries diverged")
	}
}
