package kdchoice

// Native fuzz targets for the string-spec parsers: every user-facing
// surface that turns a flag value into configuration. The properties are
// cheap and absolute — a parser either rejects with the package's error
// shape or returns a value satisfying its documented invariants, and
// accepted values round-trip through their canonical rendering. ci.sh
// runs each target as a short smoke; longer runs work out of the box
// with go test -fuzz.

import (
	"strings"
	"testing"
)

func FuzzParsePolicy(f *testing.F) {
	for _, name := range PolicyNames() {
		f.Add(name)
	}
	f.Add("")
	f.Add("kd ")
	f.Add("KD")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePolicy(s)
		if err != nil {
			if !strings.Contains(err.Error(), "kdchoice:") {
				t.Fatalf("ParsePolicy(%q) error lacks package prefix: %v", s, err)
			}
			return
		}
		// Accepted names round-trip through the canonical rendering.
		back, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q) = %v, but re-parsing %q failed: %v", s, p, p.String(), err)
		}
		if back != p {
			t.Fatalf("round trip changed the policy: %q -> %v -> %q -> %v", s, p, p.String(), back)
		}
	})
}

func FuzzParseStore(f *testing.F) {
	for _, name := range StoreNames() {
		f.Add(name)
	}
	f.Add("")
	f.Add("dense\x00")
	f.Fuzz(func(t *testing.T, s string) {
		st, err := ParseStore(s)
		if err != nil {
			if !strings.Contains(err.Error(), "kdchoice:") {
				t.Fatalf("ParseStore(%q) error lacks package prefix: %v", s, err)
			}
			return
		}
		back, err := ParseStore(st.String())
		if err != nil {
			t.Fatalf("ParseStore(%q) = %v, but re-parsing %q failed: %v", s, st, st.String(), err)
		}
		if back != st {
			t.Fatalf("round trip changed the store: %q -> %v -> %q -> %v", s, st, st.String(), back)
		}
	})
}

func FuzzParseChurn(f *testing.F) {
	f.Add("none")
	f.Add("poisson:0.5")
	f.Add("adversarial:0.25")
	f.Add("diurnal:0.5,0.8")
	f.Add("diurnal:0.5,")
	f.Add("poisson:-1")
	f.Add("poisson:NaN")
	f.Fuzz(func(t *testing.T, s string) {
		spec, err := ParseChurn(s)
		if err != nil {
			if !strings.Contains(err.Error(), "kdchoice:") {
				t.Fatalf("ParseChurn(%q) error lacks package prefix: %v", s, err)
			}
			return
		}
		if !(spec.DepartureRate >= 0) {
			t.Fatalf("ParseChurn(%q) accepted departure rate %v", s, spec.DepartureRate)
		}
		if !(spec.DiurnalAmplitude >= 0 && spec.DiurnalAmplitude < 1) {
			t.Fatalf("ParseChurn(%q) accepted diurnal amplitude %v outside [0, 1)", s, spec.DiurnalAmplitude)
		}
		// Mapping the spec onto the workload configuration applies the
		// documented defaults and must never panic.
		ch := spec.internal()
		if ch.Lambda <= 0 {
			t.Fatalf("ParseChurn(%q).internal() lost the default arrival rate: %+v", s, ch)
		}
		if spec.DiurnalAmplitude > 0 && ch.DiurnalPeriod <= 0 {
			t.Fatalf("ParseChurn(%q).internal() lost the default diurnal period: %+v", s, ch)
		}
	})
}

func FuzzParseFaults(f *testing.F) {
	f.Add("none")
	f.Add("loss:0.1")
	f.Add("fail:0.001,200")
	f.Add("fail:0.001")
	f.Add("noise:2")
	f.Add("retry:3")
	f.Add("evict")
	f.Add("fail:0.0005,200+loss:0.1+retry:2+evict")
	f.Add("loss:0.1+loss:0.2")
	f.Add("loss:1.5")
	f.Add("loss:NaN")
	f.Add("retry:-1")
	f.Add("fail:0.5,0")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseFaults(s)
		if err != nil {
			if !strings.Contains(err.Error(), "kdchoice:") {
				t.Fatalf("ParseFaults(%q) error lacks package prefix: %v", s, err)
			}
			return
		}
		// Accepted plans satisfy the documented invariants...
		if err := p.Validate(); err != nil {
			t.Fatalf("ParseFaults(%q) accepted an invalid plan %+v: %v", s, p, err)
		}
		// ...and round-trip through the canonical rendering.
		back, err := ParseFaults(p.String())
		if err != nil {
			t.Fatalf("ParseFaults(%q) = %+v, but re-parsing %q failed: %v", s, p, p.String(), err)
		}
		if back != p {
			t.Fatalf("round trip changed the plan: %q -> %+v -> %q -> %+v", s, p, p.String(), back)
		}
	})
}

func FuzzParseWeights(f *testing.F) {
	f.Add("fixed:4")
	f.Add("exp:2")
	f.Add("uniform:1,8")
	f.Add("zipf:1.5,100")
	f.Add("zipf:1.5")
	f.Add("fixed:0.5")
	f.Add("uniform:8,1")
	f.Fuzz(func(t *testing.T, s string) {
		_, err := ParseWeights(s)
		if err != nil {
			if !strings.Contains(err.Error(), "kdchoice:") {
				t.Fatalf("ParseWeights(%q) error lacks package prefix: %v", s, err)
			}
			return
		}
		name, _, _ := strings.Cut(s, ":")
		valid := false
		for _, w := range WeightNames() {
			if name == w {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("ParseWeights(%q) accepted a model outside WeightNames()", s)
		}
	})
}
