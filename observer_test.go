package kdchoice

import (
	"reflect"
	"testing"
)

// TestAttachStreamsEveryRound: every round of a placement must reach every
// attached observer, with consistent running state in the event.
func TestAttachStreamsEveryRound(t *testing.T) {
	a, err := NewKD(64, 2, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	var rounds, balls int
	var lastMax int
	a.Attach(ObserverFunc(func(e RoundEvent) {
		rounds++
		balls += len(e.Placed)
		if len(e.Placed) != len(e.Heights) {
			t.Fatalf("round %d: %d placed vs %d heights", e.Round, len(e.Placed), len(e.Heights))
		}
		if len(e.Samples) != 4 {
			t.Fatalf("round %d: %d samples, want d=4", e.Round, len(e.Samples))
		}
		if e.Bins != 64 {
			t.Fatalf("round %d: Bins = %d", e.Round, e.Bins)
		}
		if e.Balls != balls {
			t.Fatalf("round %d: event Balls %d vs counted %d", e.Round, e.Balls, balls)
		}
		lastMax = e.MaxLoad
	}))
	a.PlaceAll()
	if rounds != 32 {
		t.Fatalf("observed %d rounds, want 32", rounds)
	}
	if balls != 64 {
		t.Fatalf("observed %d balls, want 64", balls)
	}
	if lastMax != a.MaxLoad() {
		t.Fatalf("final event MaxLoad %d vs allocator %d", lastMax, a.MaxLoad())
	}
}

// TestAttachDoesNotChangeAllocation: observation must be read-only — the
// same seed with and without observers yields identical loads.
func TestAttachDoesNotChangeAllocation(t *testing.T) {
	mk := func(observe bool) []int {
		a, err := NewKD(256, 3, 7, 41)
		if err != nil {
			t.Fatal(err)
		}
		if observe {
			a.Attach(NewHeightRecorder(0), NewTimeSeriesRecorder(1))
		}
		a.PlaceAll()
		return a.Loads()
	}
	if !reflect.DeepEqual(mk(false), mk(true)) {
		t.Fatal("attaching observers changed the allocation")
	}
}

// TestDetachAll: after DetachAll no further events are delivered.
func TestDetachAll(t *testing.T) {
	a, err := NewKD(32, 2, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	a.Attach(ObserverFunc(func(RoundEvent) { count++ }))
	a.Round()
	if count != 1 {
		t.Fatalf("count = %d after one round", count)
	}
	a.DetachAll()
	a.Round()
	if count != 1 {
		t.Fatal("observer fired after DetachAll")
	}
	if len(a.Observers()) != 0 {
		t.Fatal("Observers not cleared")
	}
	// Attaching nil observers must not install the bridge.
	a.Attach(nil)
	if len(a.Observers()) != 0 {
		t.Fatal("nil observer retained")
	}
}

// TestHeightRecorderMatchesLoads: the recorder's reconstructed ν_y must
// equal the occupancy computed from the final load vector, and its
// MaxHeight must equal the allocator's MaxLoad.
func TestHeightRecorderMatchesLoads(t *testing.T) {
	a, err := NewKD(512, 4, 9, 77)
	if err != nil {
		t.Fatal(err)
	}
	hr := NewHeightRecorder(8)
	a.Attach(hr)
	a.PlaceAll()
	if hr.Balls() != 512 {
		t.Fatalf("recorder balls = %d", hr.Balls())
	}
	if hr.Rounds() != a.Rounds() {
		t.Fatalf("recorder rounds = %d vs %d", hr.Rounds(), a.Rounds())
	}
	if hr.MaxHeight() != a.MaxLoad() {
		t.Fatalf("recorder max height %d vs max load %d", hr.MaxHeight(), a.MaxLoad())
	}
	for y := 1; y <= a.MaxLoad(); y++ {
		if got, want := hr.NuY(y), a.BinsWithAtLeast(y); got != want {
			t.Fatalf("nu_%d: recorder %d vs loads %d", y, got, want)
		}
	}
	if len(hr.Snapshots()) == 0 {
		t.Fatal("snapshots enabled but none captured")
	}
}

// TestTimeSeriesRecorder: the trajectory must be monotone in rounds, balls
// and messages, sample at the configured stride, and end at the allocator's
// final state.
func TestTimeSeriesRecorder(t *testing.T) {
	a, err := NewKD(128, 2, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTimeSeriesRecorder(1)
	sparse := NewTimeSeriesRecorder(16)
	a.Attach(ts, sparse)
	a.PlaceAll()

	pts := ts.Points()
	if len(pts) != 64 {
		t.Fatalf("dense recorder has %d points, want 64 rounds", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Round != pts[i-1].Round+1 {
			t.Fatalf("round gap at %d", i)
		}
		if pts[i].Balls < pts[i-1].Balls || pts[i].Messages < pts[i-1].Messages ||
			pts[i].MaxLoad < pts[i-1].MaxLoad {
			t.Fatalf("non-monotone trajectory at %d: %+v -> %+v", i, pts[i-1], pts[i])
		}
	}
	last, ok := ts.Last()
	if !ok {
		t.Fatal("Last on non-empty recorder")
	}
	if last.MaxLoad != a.MaxLoad() || last.Messages != a.Messages() || last.Balls != a.Balls() {
		t.Fatalf("final point %+v disagrees with allocator", last)
	}
	if g := last.Gap; g != a.Gap() {
		t.Fatalf("final gap %v vs %v", g, a.Gap())
	}

	if sparse.Len() != 4 {
		t.Fatalf("sparse recorder has %d points, want 4 (64 rounds / 16)", sparse.Len())
	}
	if _, ok := NewTimeSeriesRecorder(0).Last(); ok {
		t.Fatal("Last on empty recorder")
	}
}

// TestObserversAcrossPolicies: every public policy must deliver events whose
// placed-ball count per event sums to the total.
func TestObserversAcrossPolicies(t *testing.T) {
	cases := []Config{
		{Bins: 64, K: 2, D: 3, Policy: KDChoice},
		{Bins: 64, K: 2, D: 3, Policy: Serialized},
		{Bins: 64, D: 2, Policy: DChoice},
		{Bins: 64, Policy: SingleChoice},
		{Bins: 64, Beta: 0.5, Policy: OnePlusBeta},
		{Bins: 64, D: 4, Policy: AlwaysGoLeft},
		{Bins: 64, K: 2, D: 3, Policy: AdaptiveKD},
		{Bins: 64, K: 4, D: 2, Policy: StaleBatch},
		{Bins: 64, D: 4, Policy: DynamicKD},
	}
	for _, cfg := range cases {
		t.Run(cfg.Policy.String(), func(t *testing.T) {
			cfg.Seed = 13
			a, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			a.Attach(ObserverFunc(func(e RoundEvent) { total += len(e.Placed) }))
			a.PlaceAll()
			if total != 64 {
				t.Fatalf("events reported %d balls, want 64", total)
			}
		})
	}
}
