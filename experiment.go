package kdchoice

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// Cell is one experiment cell: a process configuration plus optional
// per-cell overrides of the experiment-wide ball and run counts.
type Cell struct {
	// Config describes the process. If Config.Seed is non-zero it becomes
	// the cell's seed; otherwise the cell draws a deterministic seed from
	// the experiment's root seed and the cell's position.
	Config Config
	// Balls overrides Experiment.Balls for this cell (0 = inherit).
	Balls int
	// Runs overrides Experiment.Runs for this cell (0 = inherit).
	Runs int
	// Label is an optional display name carried into the Report.
	Label string
}

// label returns the cell's display name, deriving one from the
// configuration when none was set.
func (c Cell) label() string {
	if c.Label != "" {
		return c.Label
	}
	cfg := c.Config.withDefaults()
	switch cfg.Policy {
	case KDChoice, Serialized, AdaptiveKD, StaleBatch:
		return fmt.Sprintf("%s(%d,%d) n=%d", cfg.Policy, cfg.K, cfg.D, cfg.Bins)
	case DChoice, AlwaysGoLeft, DynamicKD, ThresholdChoice, CoarseDChoice:
		return fmt.Sprintf("%s(d=%d) n=%d", cfg.Policy, cfg.D, cfg.Bins)
	default:
		return fmt.Sprintf("%s n=%d", cfg.Policy, cfg.Bins)
	}
}

// Experiment runs a set of cells — each repeated Runs times — on one shared
// bounded worker pool. All (cell, run) pairs are scheduled together, so a
// sweep of many cells with few runs each parallelizes as well as one cell
// with many runs.
//
// Determinism: run r of cell i draws from the random stream (seedᵢ, r),
// where seedᵢ is the cell's Config.Seed when non-zero and otherwise is
// derived from (Seed, i). The Report is therefore a pure function of the
// Experiment value — identical for any Workers setting.
type Experiment struct {
	// Cells lists the cells to run (at least one).
	Cells []Cell
	// Balls is the default per-run ball count; 0 means each cell's Bins
	// (the paper's canonical n-into-n experiment).
	Balls int
	// Runs is the default number of independent runs per cell; 0 means 1.
	Runs int
	// Seed is the root seed from which cells without an explicit
	// Config.Seed derive their seeds.
	Seed uint64
	// Workers bounds the shared pool; 0 means GOMAXPROCS.
	Workers int
	// CollectLoads retains each run's final load vector (memory:
	// cells × runs × N ints), enabling the Report's profile accessors and
	// RunLoads.
	CollectLoads bool
	// CollectProfiles streams each finished run's sorted-load profile and
	// occupancy counts into per-cell integer accumulators instead of
	// retaining the vectors: memory stays O(N) per cell regardless of the
	// run count, and the profile accessors still work. The aggregation
	// order cannot affect integer sums, so reports remain identical for any
	// Workers setting. Use this (not CollectLoads) on giant heavy-load
	// grids.
	CollectProfiles bool
}

// cellSeed derives the seed of cell i: an explicit (non-zero) cell seed
// wins, otherwise the root seed is mixed with the cell index (cell 0 keeps
// the root seed itself, which makes a one-cell Experiment bit-compatible
// with the classic Simulate seed derivation). Experiment and Study share
// this derivation so core and application grids stream seeds identically.
func cellSeed(root uint64, i int, explicit uint64) uint64 {
	if explicit != 0 {
		return explicit
	}
	return root ^ (uint64(i) * 0x9E3779B97F4A7C15)
}

// Run executes the experiment and aggregates per-cell results into a
// Report. Every cell is validated before any work starts; an invalid cell
// fails the whole experiment with an error naming it.
func (e Experiment) Run() (*Report, error) {
	if len(e.Cells) == 0 {
		return nil, fmt.Errorf("kdchoice: Experiment needs at least one cell")
	}
	if e.Balls < 0 {
		return nil, fmt.Errorf("kdchoice: Experiment.Balls = %d, must be non-negative", e.Balls)
	}
	if e.Runs < 0 {
		return nil, fmt.Errorf("kdchoice: Experiment.Runs = %d, must be non-negative", e.Runs)
	}
	cfgs := make([]sim.Config, len(e.Cells))
	for i, c := range e.Cells {
		cfg := c.Config.withDefaults()
		cp, params, err := cfg.coreConfig()
		if err == nil {
			err = core.Validate(cp, params)
		}
		if err != nil {
			return nil, fmt.Errorf("kdchoice: cell %d (%s): %w", i, c.label(), err)
		}
		balls := c.Balls
		if balls == 0 {
			balls = e.Balls
		}
		if balls < 0 {
			return nil, fmt.Errorf("kdchoice: cell %d (%s): Balls = %d, must be non-negative", i, c.label(), balls)
		}
		runs := c.Runs
		if runs == 0 {
			runs = e.Runs
		}
		if runs < 0 {
			return nil, fmt.Errorf("kdchoice: cell %d (%s): Runs = %d, must be non-negative", i, c.label(), runs)
		}
		if runs == 0 {
			runs = 1
		}
		cfgs[i] = sim.Config{
			Policy:          cp,
			Params:          params,
			Balls:           balls,
			Runs:            runs,
			Seed:            cellSeed(e.Seed, i, cfg.Seed),
			CollectLoads:    e.CollectLoads,
			CollectProfiles: e.CollectProfiles,
		}
	}
	results, err := sim.RunAll(e.Workers, cfgs)
	if err != nil {
		return nil, fmt.Errorf("kdchoice: %w", err)
	}
	rep := &Report{Cells: make([]CellResult, len(results))}
	for i, res := range results {
		rep.Cells[i] = CellResult{
			Index:     i,
			Cell:      e.Cells[i],
			SimResult: newSimResult(res),
		}
	}
	return rep, nil
}

// Sweep builds the cells of a grid experiment: the cross product of bin
// counts, K values, D values, and policies, sharing the remaining
// configuration from Base. It is the programmatic form of the paper's
// tables and figures, which all walk a (k, d) grid.
type Sweep struct {
	// N lists the bin counts; empty means {Base.Bins}.
	N []int
	// K lists the per-round ball counts; empty means {Base.K}.
	K []int
	// D lists the per-round probe counts; empty means {Base.D}.
	D []int
	// Policies lists the processes to sweep; empty means {Base.Policy}
	// (KDChoice when that is unset too).
	Policies []Policy
	// Base supplies every Config field the grid does not vary (Beta,
	// Sigma, ReferenceSelect, Seed, ...). Bins/K/D/Policy are overwritten
	// per cell.
	Base Config
	// Balls, Runs, Seed, Workers, CollectLoads and CollectProfiles
	// configure the Experiment built by Run, exactly as the Experiment
	// fields of the same names.
	Balls           int
	Runs            int
	Seed            uint64
	Workers         int
	CollectLoads    bool
	CollectProfiles bool
	// SkipInvalid drops grid points the process rejects (k >= d, d > n,
	// ...) instead of failing. This is how the paper's triangular Table 1
	// grid is expressed: sweep the full rectangle, keep the valid cells.
	SkipInvalid bool
}

// Cells materializes the grid in row-major order (N outermost, then
// Policies, then K, then D). With SkipInvalid set, invalid grid points are
// dropped; otherwise the first invalid point fails with an error naming it.
func (s Sweep) Cells() ([]Cell, error) {
	ns := s.N
	if len(ns) == 0 {
		if s.Base.Bins <= 0 {
			return nil, fmt.Errorf("kdchoice: Sweep needs N values (or Base.Bins)")
		}
		ns = []int{s.Base.Bins}
	}
	ks := s.K
	if len(ks) == 0 {
		ks = []int{s.Base.K}
	}
	ds := s.D
	if len(ds) == 0 {
		ds = []int{s.Base.D}
	}
	policies := s.Policies
	if len(policies) == 0 {
		p := s.Base.Policy
		if p == 0 {
			p = KDChoice
		}
		policies = []Policy{p}
	}
	cells := make([]Cell, 0, len(ns)*len(policies)*len(ks)*len(ds))
	for _, n := range ns {
		for _, pol := range policies {
			for _, k := range ks {
				for _, d := range ds {
					cfg := s.Base
					cfg.Bins, cfg.K, cfg.D, cfg.Policy = n, k, d, pol
					if err := cfg.validate(); err != nil {
						if s.SkipInvalid {
							continue
						}
						return nil, fmt.Errorf("kdchoice: sweep cell (n=%d, policy=%s, k=%d, d=%d): %w", n, pol, k, d, err)
					}
					cells = append(cells, Cell{Config: cfg})
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("kdchoice: sweep produced no valid cells")
	}
	return cells, nil
}

// Run materializes the grid and executes it as one Experiment on the shared
// pool.
func (s Sweep) Run() (*Report, error) {
	cells, err := s.Cells()
	if err != nil {
		return nil, err
	}
	return Experiment{
		Cells:           cells,
		Balls:           s.Balls,
		Runs:            s.Runs,
		Seed:            s.Seed,
		Workers:         s.Workers,
		CollectLoads:    s.CollectLoads,
		CollectProfiles: s.CollectProfiles,
	}.Run()
}

// CellResult is the outcome of one experiment cell: the cell description
// plus the aggregated SimResult of its runs.
type CellResult struct {
	// Index is the cell's position in Experiment.Cells.
	Index int
	// Cell is the cell as submitted.
	Cell Cell
	// SimResult aggregates the cell's runs.
	SimResult
}

// Label returns the cell's display name.
func (c *CellResult) Label() string { return c.Cell.label() }

// Report carries the results of an Experiment: one CellResult per cell, in
// cell order, plus cross-cell summaries.
type Report struct {
	Cells []CellResult
}

// Find returns the first cell result whose configuration matches (policy,
// bins, k, d), or nil.
func (r *Report) Find(policy Policy, bins, k, d int) *CellResult {
	for i := range r.Cells {
		cfg := r.Cells[i].Cell.Config.withDefaults()
		if cfg.Policy == policy && cfg.Bins == bins && cfg.K == k && cfg.D == d {
			return &r.Cells[i]
		}
	}
	return nil
}

// TradeoffPoint places one cell on the paper's headline plane: maximum load
// versus message cost.
type TradeoffPoint struct {
	// Label names the cell.
	Label string
	// Policy, Bins, K, D identify the configuration.
	Policy Policy
	Bins   int
	K, D   int
	// Balls is the per-run ball count of the cell.
	Balls int
	// MeanMaxLoad is the mean over runs of the maximum bin load.
	MeanMaxLoad float64
	// MeanMessages is the mean over runs of the total message cost.
	MeanMessages float64
	// MessagesPerBall is MeanMessages normalized by the ball count — the
	// paper's amortized cost measure.
	MessagesPerBall float64
}

// TradeoffCurve summarizes every cell on the max-load/message-cost plane,
// sorted by ascending message cost per ball (ties by mean max load). This
// is the cross-cell view of the paper's Theorem 1 tradeoff: scanning the
// curve shows what load each additional probe buys.
func (r *Report) TradeoffCurve() []TradeoffPoint {
	pts := make([]TradeoffPoint, 0, len(r.Cells))
	for i := range r.Cells {
		c := &r.Cells[i]
		cfg := c.Cell.Config.withDefaults()
		balls := c.EffectiveBalls
		pt := TradeoffPoint{
			Label:        c.Label(),
			Policy:       cfg.Policy,
			Bins:         cfg.Bins,
			K:            cfg.K,
			D:            cfg.D,
			Balls:        balls,
			MeanMaxLoad:  c.MeanMax,
			MeanMessages: c.MeanMessages,
		}
		if balls > 0 {
			pt.MessagesPerBall = c.MeanMessages / float64(balls)
		}
		pts = append(pts, pt)
	}
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].MessagesPerBall != pts[j].MessagesPerBall {
			return pts[i].MessagesPerBall < pts[j].MessagesPerBall
		}
		return pts[i].MeanMaxLoad < pts[j].MeanMaxLoad
	})
	return pts
}
