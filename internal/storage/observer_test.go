package storage

import (
	"testing"

	"repro/internal/appevent"
)

// TestObserverRounds: one event per ingested file with consistent
// cumulative counters, and observation must not perturb placement.
func TestObserverRounds(t *testing.T) {
	for _, policy := range []PlacementPolicy{KDPlace, PerCopyD, RandomPlace} {
		cfg := baseConfig()
		cfg.Policy = policy
		bare := MustNew(cfg)
		bare.IngestAll()

		cfg = baseConfig()
		cfg.Policy = policy
		rounds := 0
		var lastMessages int64
		cfg.Observer = func(ev appevent.Round) {
			rounds++
			if ev.Round != rounds {
				t.Fatalf("%s: round numbering %d, want %d", policy, ev.Round, rounds)
			}
			if ev.Bins != cfg.Servers {
				t.Fatalf("%s: bins %d", policy, ev.Bins)
			}
			if len(ev.Placed) != cfg.K || len(ev.Heights) != cfg.K {
				t.Fatalf("%s: %d placed / %d heights, want %d copies", policy, len(ev.Placed), len(ev.Heights), cfg.K)
			}
			if ev.Balls != rounds*cfg.K {
				t.Fatalf("%s: cumulative copies %d, want %d", policy, ev.Balls, rounds*cfg.K)
			}
			if ev.Messages <= lastMessages {
				t.Fatalf("%s: message counter not increasing", policy)
			}
			lastMessages = ev.Messages
			maxSeen := 0
			for _, h := range ev.Heights {
				if h < 1 {
					t.Fatalf("%s: height %d < 1", policy, h)
				}
				if h > maxSeen {
					maxSeen = h
				}
			}
			if ev.MaxLoad < maxSeen {
				t.Fatalf("%s: max load %d below placed height %d", policy, ev.MaxLoad, maxSeen)
			}
		}
		observed := MustNew(cfg)
		observed.IngestAll()
		if rounds != cfg.Files {
			t.Fatalf("%s: observed %d rounds, want %d files", policy, rounds, cfg.Files)
		}
		if observed.MaxLoad() != bare.MaxLoad() || observed.Messages() != bare.Messages() {
			t.Fatalf("%s: observer changed placement", policy)
		}
	}
}
