// Package storage simulates the paper's second application (Section 1.3):
// replica/chunk placement in a distributed storage system.
//
// Each incoming file is replicated into k copies (or split into k chunks);
// the (k,d)-choice strategy probes d servers once and stores the k copies
// on the k least-loaded probed servers. The paper's observations reproduced
// here:
//
//   - With d = k+1 and k = Θ(ln n), (k,d)-choice matches the two-choice
//     balance at HALF the message cost (d/k ≈ 1 probe per replica vs 2).
//   - A search retrieving all k chunks costs d = k+1 probes (one probe per
//     candidate of the single shared sample set), roughly half of the 2k
//     probes of per-chunk two-choice.
//
// Replication semantics: copies of the same file must live on distinct
// servers to be useful for fault tolerance, so KDPlace probes d DISTINCT
// servers (sampling without replacement) and picks the k least loaded.
// Chunk mode (Distinct=false) keeps the paper's multiset rule verbatim.
// Failure injection kills servers and re-replicates lost copies, verifying
// the replication factor is restored.
package storage

import (
	"fmt"
	"sort"

	"repro/internal/appevent"
	"repro/internal/loadvec"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// PlacementPolicy selects how the k copies of a file are placed.
type PlacementPolicy int

// Placement policies.
const (
	// KDPlace probes D servers once per file and stores the K copies on
	// the K least-loaded probed servers ((k,d)-choice).
	KDPlace PlacementPolicy = iota + 1
	// PerCopyD places every copy independently with DPerCopy-choice.
	PerCopyD
	// RandomPlace puts every copy on a uniformly random server.
	RandomPlace
)

// String returns the canonical name of the policy.
func (p PlacementPolicy) String() string {
	switch p {
	case KDPlace:
		return "kd"
	case PerCopyD:
		return "per-copy-d"
	case RandomPlace:
		return "random"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Config describes a storage placement experiment.
type Config struct {
	// Servers is the number of storage servers (required, >= 1).
	Servers int
	// Files is the number of files to ingest (required, >= 1).
	Files int
	// K is the replication factor / chunk count per file (required, >= 1).
	K int
	// D is the probes per file for KDPlace (K < D <= Servers).
	D int
	// DPerCopy is the probes per copy for PerCopyD (default 2).
	DPerCopy int
	// SizeDist draws file sizes; zero value means Deterministic(1), i.e.
	// balance by object count.
	SizeDist workload.Dist
	// ByBytes balances on cumulative bytes instead of object count.
	ByBytes bool
	// Distinct forces the copies of one file onto distinct servers
	// (replication). When false, the paper's multiset rule applies
	// verbatim (chunk mode). RandomPlace and PerCopyD also honor it.
	Distinct bool
	// Policy is the placement policy (required).
	Policy PlacementPolicy
	// Seed makes the run reproducible.
	Seed uint64
	// Observer, when non-nil, receives one appevent.Round per ingested
	// file. Ingestion performs no observation bookkeeping when it is nil.
	Observer appevent.Observer
}

// Validate reports whether the configuration is runnable; it is the check
// Run applies before starting. Exposed so batch harnesses can validate
// every cell before dispatching any work.
func (c Config) Validate() error { return c.validate() }

func (c Config) validate() error {
	if c.Servers < 1 {
		return fmt.Errorf("storage: Servers = %d, need >= 1", c.Servers)
	}
	if c.Files < 1 {
		return fmt.Errorf("storage: Files = %d, need >= 1", c.Files)
	}
	if c.K < 1 {
		return fmt.Errorf("storage: K = %d, need >= 1", c.K)
	}
	if c.Distinct && c.K > c.Servers {
		return fmt.Errorf("storage: K = %d distinct copies exceed %d servers", c.K, c.Servers)
	}
	switch c.Policy {
	case KDPlace:
		if c.D <= c.K {
			return fmt.Errorf("storage: KDPlace requires D > K, got K=%d D=%d", c.K, c.D)
		}
		if c.D > c.Servers {
			return fmt.Errorf("storage: KDPlace requires D <= Servers, got D=%d servers=%d", c.D, c.Servers)
		}
	case PerCopyD:
		if c.DPerCopy != 0 && (c.DPerCopy < 1 || c.DPerCopy > c.Servers) {
			return fmt.Errorf("storage: DPerCopy = %d out of range", c.DPerCopy)
		}
	case RandomPlace:
		// No extra parameters.
	default:
		return fmt.Errorf("storage: unknown policy %d", int(c.Policy))
	}
	return nil
}

// System is a storage cluster with files placed on servers. Construct with
// New, ingest with Ingest (or IngestAll), then inspect.
type System struct {
	cfg      Config
	rng      *xrand.Rand
	objects  []int     // per-server object count
	bytes    []float64 // per-server byte count
	alive    []bool
	files    [][]int // file -> server ids holding its copies
	sizes    []float64
	messages int64

	samples []int
	slots   []placeSlot

	// Observation state, touched only when cfg.Observer is non-nil.
	obsRound   int
	obsCopies  int
	obsSamples []int
	obsHeights []int
}

type placeSlot struct {
	server int
	load   float64
	tie    uint64
}

// New validates cfg and returns an empty storage system.
func New(cfg Config) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Policy == PerCopyD && cfg.DPerCopy == 0 {
		cfg.DPerCopy = 2
	}
	if cfg.SizeDist.Mean() == 0 {
		cfg.SizeDist = workload.Deterministic(1)
	}
	s := &System{
		cfg:     cfg,
		rng:     xrand.New(cfg.Seed),
		objects: make([]int, cfg.Servers),
		bytes:   make([]float64, cfg.Servers),
		alive:   make([]bool, cfg.Servers),
		files:   make([][]int, 0, cfg.Files),
		sizes:   make([]float64, 0, cfg.Files),
	}
	for i := range s.alive {
		s.alive[i] = true
	}
	bufSize := cfg.D
	if cfg.Policy == PerCopyD && cfg.DPerCopy > bufSize {
		bufSize = cfg.DPerCopy
	}
	if bufSize < 1 {
		bufSize = 1
	}
	s.samples = make([]int, bufSize)
	s.slots = make([]placeSlot, 0, bufSize)
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// load returns the balancing load of server sv under the configured metric.
func (s *System) load(sv int) float64 {
	if s.cfg.ByBytes {
		return s.bytes[sv]
	}
	return float64(s.objects[sv])
}

// addCopy records one copy of the given size on server sv.
func (s *System) addCopy(sv int, size float64) {
	s.objects[sv]++
	s.bytes[sv] += size
	if s.cfg.Observer != nil {
		s.obsCopies++
		s.obsHeights = append(s.obsHeights, s.objects[sv])
	}
}

// Ingest places one file and returns its id.
func (s *System) Ingest() int {
	size := s.cfg.SizeDist.Sample(s.rng)
	observing := s.cfg.Observer != nil
	if observing {
		s.obsSamples = s.obsSamples[:0]
		s.obsHeights = s.obsHeights[:0]
	}
	var servers []int
	switch s.cfg.Policy {
	case KDPlace:
		servers = s.placeKD(s.cfg.K, size, nil)
	case PerCopyD:
		servers = s.placePerCopy(s.cfg.K, s.cfg.DPerCopy, size, nil)
	case RandomPlace:
		servers = s.placePerCopy(s.cfg.K, 1, size, nil)
	}
	id := len(s.files)
	s.files = append(s.files, servers)
	s.sizes = append(s.sizes, size)
	if observing {
		s.obsRound++
		s.cfg.Observer(appevent.Round{
			Round:    s.obsRound,
			Samples:  s.obsSamples,
			Placed:   servers,
			Heights:  s.obsHeights,
			Bins:     s.cfg.Servers,
			Balls:    s.obsCopies,
			MaxLoad:  s.maxObjects(),
			Messages: s.messages,
		})
	}
	return id
}

// maxObjects scans for the largest per-server object count; only called on
// the observed path.
func (s *System) maxObjects() int {
	m := 0
	for _, c := range s.objects {
		if c > m {
			m = c
		}
	}
	return m
}

// IngestAll ingests the configured number of files.
func (s *System) IngestAll() {
	for i := 0; i < s.cfg.Files; i++ {
		s.Ingest()
	}
}

// placeKD probes d servers once and returns the k least loaded, honoring
// Distinct and skipping dead servers and any server in exclude.
func (s *System) placeKD(k int, size float64, exclude []int) []int {
	d := s.cfg.D
	s.messages += int64(d)
	slots := s.slots[:0]
	if s.cfg.Distinct {
		// Sample d distinct candidate servers (Floyd), then keep the k
		// least loaded among the eligible ones.
		cands := s.rng.SampleWithoutReplacement(s.cfg.Servers, d)
		if s.cfg.Observer != nil {
			s.obsSamples = append(s.obsSamples, cands...)
		}
		for _, sv := range cands {
			if !s.alive[sv] || contains(exclude, sv) {
				continue
			}
			slots = append(slots, placeSlot{server: sv, load: s.load(sv), tie: s.rng.Uint64()})
		}
	} else {
		// Multiset rule: the i-th sample of a server has height load+i
		// (in the object metric a copy weighs 1; in bytes it weighs size).
		s.rng.FillIntn(s.samples[:d], s.cfg.Servers)
		if s.cfg.Observer != nil {
			s.obsSamples = append(s.obsSamples, s.samples[:d]...)
		}
		sort.Ints(s.samples[:d])
		for i := 0; i < d; {
			sv := s.samples[i]
			j := i
			for j < d && s.samples[j] == sv {
				j++
			}
			if s.alive[sv] && !contains(exclude, sv) {
				base := s.load(sv)
				step := 1.0
				if s.cfg.ByBytes {
					step = size
				}
				for c := 1; c <= j-i; c++ {
					slots = append(slots, placeSlot{server: sv, load: base + float64(c)*step, tie: s.rng.Uint64()})
				}
			}
			i = j
		}
	}
	sort.Slice(slots, func(a, b int) bool {
		if slots[a].load != slots[b].load {
			return slots[a].load < slots[b].load
		}
		return slots[a].tie < slots[b].tie
	})
	s.slots = slots
	out := make([]int, 0, k)
	for _, sl := range slots {
		if len(out) == k {
			break
		}
		out = append(out, sl.server)
	}
	// If the probe set could not supply k copies (dead servers, excludes),
	// fall back to 1-of-d probes until filled — still counted as messages.
	for len(out) < k {
		sv := s.pickFallback(exclude, out)
		if sv < 0 {
			break
		}
		out = append(out, sv)
	}
	for _, sv := range out {
		s.addCopy(sv, size)
	}
	return out
}

// placePerCopy places k copies, each via dPerCopy-choice among alive
// servers, honoring Distinct by excluding servers already chosen for this
// file.
func (s *System) placePerCopy(k, dPerCopy int, size float64, exclude []int) []int {
	out := make([]int, 0, k)
	observing := s.cfg.Observer != nil
	for i := 0; i < k; i++ {
		best := -1
		for p := 0; p < dPerCopy; p++ {
			s.messages++
			sv := s.rng.Intn(s.cfg.Servers)
			if observing {
				s.obsSamples = append(s.obsSamples, sv)
			}
			if !s.alive[sv] || contains(exclude, sv) {
				continue
			}
			if s.cfg.Distinct && contains(out, sv) {
				continue
			}
			if best == -1 || s.load(sv) < s.load(best) {
				best = sv
			}
		}
		if best == -1 {
			best = s.pickFallback(exclude, out)
			if best < 0 {
				break
			}
		}
		out = append(out, best)
		s.addCopy(best, size)
	}
	return out
}

// pickFallback scans for any eligible alive server (uniformly at random
// start) when probing failed to find one; returns -1 if none exists.
func (s *System) pickFallback(exclude, chosen []int) int {
	start := s.rng.Intn(s.cfg.Servers)
	for off := 0; off < s.cfg.Servers; off++ {
		sv := (start + off) % s.cfg.Servers
		if !s.alive[sv] || contains(exclude, sv) {
			continue
		}
		if s.cfg.Distinct && contains(chosen, sv) {
			continue
		}
		s.messages++
		return sv
	}
	return -1
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// FailServer kills server sv, drops its copies, and re-replicates every
// affected file onto a new server chosen by 1-of-(d-k+1) probing among
// alive servers not already holding the file. It returns the number of
// copies re-replicated. Failing a dead server is a no-op.
func (s *System) FailServer(sv int) int {
	if sv < 0 || sv >= s.cfg.Servers || !s.alive[sv] {
		return 0
	}
	s.alive[sv] = false
	s.objects[sv] = 0
	s.bytes[sv] = 0
	moved := 0
	for fid, servers := range s.files {
		for i, holder := range servers {
			if holder != sv {
				continue
			}
			// Re-replicate this copy: exclude the file's other holders.
			repl := s.replacementFor(fid)
			if repl >= 0 {
				servers[i] = repl
				s.addCopy(repl, s.sizes[fid])
				moved++
			} else {
				// No eligible server; drop the copy (under-replicated).
				servers[i] = -1
			}
		}
	}
	return moved
}

// RecoverServer is the inverse of FailServer: it brings server sv back
// into the alive set — empty, since its copies were re-replicated or
// dropped at failure time — and then repairs every under-replicated file
// by placing each dropped copy with the same 1-of-(d-k+1) probe rule
// FailServer's re-replication uses. It returns the number of copies
// restored. Recovering an alive or out-of-range server is a no-op, so
// the call is idempotent.
func (s *System) RecoverServer(sv int) int {
	if sv < 0 || sv >= s.cfg.Servers || s.alive[sv] {
		return 0
	}
	s.alive[sv] = true
	restored := 0
	for fid, servers := range s.files {
		for i, holder := range servers {
			if holder != -1 {
				continue
			}
			repl := s.replacementFor(fid)
			if repl >= 0 {
				servers[i] = repl
				s.addCopy(repl, s.sizes[fid])
				restored++
			}
		}
	}
	return restored
}

// replacementFor picks a new server for one lost copy of file fid: the
// least loaded of a few probes among alive servers not already holding the
// file.
func (s *System) replacementFor(fid int) int {
	probes := s.cfg.D - s.cfg.K + 1
	if probes < 2 {
		probes = 2
	}
	exclude := s.files[fid]
	best := -1
	for p := 0; p < probes; p++ {
		s.messages++
		sv := s.rng.Intn(s.cfg.Servers)
		if !s.alive[sv] || contains(exclude, sv) {
			continue
		}
		if best == -1 || s.load(sv) < s.load(best) {
			best = sv
		}
	}
	if best == -1 {
		return s.pickFallback(exclude, nil)
	}
	return best
}

// Messages returns the cumulative probe count (the paper's message cost).
func (s *System) Messages() int64 { return s.messages }

// SearchCost returns the number of probes needed to retrieve all k copies
// of one file under the configured policy: d for the shared-sample KDPlace
// (one probe per candidate of the single sample set) versus k·dPerCopy for
// per-copy placement — the paper's "k+1 vs 2k" comparison when d = k+1 and
// dPerCopy = 2.
func (s *System) SearchCost() int {
	switch s.cfg.Policy {
	case KDPlace:
		return s.cfg.D
	case PerCopyD:
		return s.cfg.K * s.cfg.DPerCopy
	default:
		return s.cfg.K
	}
}

// MaxLoad returns the maximum per-server load under the balancing metric.
func (s *System) MaxLoad() float64 {
	m := 0.0
	for sv := range s.objects {
		if l := s.load(sv); l > m {
			m = l
		}
	}
	return m
}

// MeanLoad returns the mean per-server load over ALIVE servers.
func (s *System) MeanLoad() float64 {
	var o stats.Online
	for sv := range s.objects {
		if s.alive[sv] {
			o.Add(s.load(sv))
		}
	}
	return o.Mean()
}

// Imbalance returns MaxLoad/MeanLoad (1.0 is perfect balance); 0 when
// empty.
func (s *System) Imbalance() float64 {
	mean := s.MeanLoad()
	if mean == 0 {
		return 0
	}
	return s.MaxLoad() / mean
}

// Gini returns the Gini coefficient of the per-server object counts
// (0 = perfect balance), a scale-free companion to Imbalance.
func (s *System) Gini() float64 {
	return loadvec.Vector(s.objects).Gini()
}

// Objects returns a copy of the per-server object counts.
func (s *System) Objects() []int {
	out := make([]int, len(s.objects))
	copy(out, s.objects)
	return out
}

// ReplicationOK reports whether every file still has K live copies on
// distinct (when configured) servers.
func (s *System) ReplicationOK() error {
	for fid, servers := range s.files {
		if len(servers) != s.cfg.K {
			return fmt.Errorf("storage: file %d has %d copies, want %d", fid, len(servers), s.cfg.K)
		}
		for i, sv := range servers {
			if sv < 0 {
				return fmt.Errorf("storage: file %d copy %d was dropped", fid, i)
			}
			if !s.alive[sv] {
				return fmt.Errorf("storage: file %d copy %d on dead server %d", fid, i, sv)
			}
			if s.cfg.Distinct {
				for j := i + 1; j < len(servers); j++ {
					if servers[j] == sv {
						return fmt.Errorf("storage: file %d has duplicate server %d", fid, sv)
					}
				}
			}
		}
	}
	return nil
}

// FileServers returns a copy of the server list currently holding file id.
func (s *System) FileServers(id int) []int {
	out := make([]int, len(s.files[id]))
	copy(out, s.files[id])
	return out
}

// Files returns the number of ingested files.
func (s *System) Files() int { return len(s.files) }
