package storage

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func baseConfig() Config {
	return Config{
		Servers:  128,
		Files:    2000,
		K:        3,
		D:        4,
		Distinct: true,
		Policy:   KDPlace,
		Seed:     11,
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Servers = 0 }, "Servers"},
		{func(c *Config) { c.Files = 0 }, "Files"},
		{func(c *Config) { c.K = 0 }, "K ="},
		{func(c *Config) { c.K = 200 }, "distinct"},
		{func(c *Config) { c.D = 3 }, "D > K"},
		{func(c *Config) { c.D = 500; c.K = 3 }, "D <= Servers"},
		{func(c *Config) { c.Policy = PlacementPolicy(42) }, "unknown"},
		{func(c *Config) { c.Policy = PerCopyD; c.DPerCopy = 1000 }, "DPerCopy"},
	}
	for i, tc := range cases {
		cfg := baseConfig()
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("case %d: error %q does not mention %q", i, err, tc.want)
		}
	}
}

func TestIngestConservation(t *testing.T) {
	for _, policy := range []PlacementPolicy{KDPlace, PerCopyD, RandomPlace} {
		cfg := baseConfig()
		cfg.Policy = policy
		s := MustNew(cfg)
		s.IngestAll()
		if s.Files() != cfg.Files {
			t.Fatalf("%v: ingested %d files", policy, s.Files())
		}
		total := 0
		for _, c := range s.Objects() {
			total += c
		}
		if total != cfg.Files*cfg.K {
			t.Fatalf("%v: %d copies stored, want %d", policy, total, cfg.Files*cfg.K)
		}
		if err := s.ReplicationOK(); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
	}
}

func TestDistinctness(t *testing.T) {
	cfg := baseConfig()
	s := MustNew(cfg)
	s.IngestAll()
	for fid := 0; fid < s.Files(); fid++ {
		servers := s.FileServers(fid)
		seen := map[int]bool{}
		for _, sv := range servers {
			if seen[sv] {
				t.Fatalf("file %d has duplicate server %d", fid, sv)
			}
			seen[sv] = true
		}
	}
}

func TestChunkModeAllowsCoLocation(t *testing.T) {
	// With Distinct=false and tiny server count, duplicates must occur.
	cfg := Config{
		Servers: 3, Files: 200, K: 2, D: 3,
		Distinct: false, Policy: KDPlace, Seed: 5,
	}
	s := MustNew(cfg)
	s.IngestAll()
	dup := false
	for fid := 0; fid < s.Files(); fid++ {
		servers := s.FileServers(fid)
		if servers[0] == servers[1] {
			dup = true
			break
		}
	}
	if !dup {
		t.Fatal("chunk mode never co-located chunks on 3 servers; multiset rule broken")
	}
	if err := s.ReplicationOK(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseConfig()
	a := MustNew(cfg)
	a.IngestAll()
	b := MustNew(cfg)
	b.IngestAll()
	ao, bo := a.Objects(), b.Objects()
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatal("same seed produced different placements")
		}
	}
}

func TestKDBalancesBetterThanRandom(t *testing.T) {
	cfg := baseConfig()
	cfg.Files = 5000
	kd := MustNew(cfg)
	kd.IngestAll()
	cfg.Policy = RandomPlace
	rnd := MustNew(cfg)
	rnd.IngestAll()
	if kd.Imbalance() >= rnd.Imbalance() {
		t.Fatalf("kd imbalance %.3f not better than random %.3f", kd.Imbalance(), rnd.Imbalance())
	}
	if kd.MaxLoad() > rnd.MaxLoad() {
		t.Fatalf("kd max load %.1f worse than random %.1f", kd.MaxLoad(), rnd.MaxLoad())
	}
}

// TestHalfMessageCost reproduces the Section 1.3 claim: (k,k+1)-choice
// needs about half the placement messages of per-copy two-choice — and
// about half the search cost.
func TestHalfMessageCost(t *testing.T) {
	mk := func(policy PlacementPolicy) *System {
		cfg := Config{
			Servers: 256, Files: 4000, K: 4, D: 5, DPerCopy: 2,
			Distinct: true, Policy: policy, Seed: 3,
		}
		s := MustNew(cfg)
		s.IngestAll()
		return s
	}
	kd := mk(KDPlace)
	two := mk(PerCopyD)
	// Placement: kd uses D=5 probes per file, two-choice 2K=8.
	ratio := float64(kd.Messages()) / float64(two.Messages())
	if ratio > 0.7 {
		t.Fatalf("kd/two message ratio %.3f, want about 5/8", ratio)
	}
	// Search: k+1 = 5 vs 2k = 8.
	if kd.SearchCost() != 5 || two.SearchCost() != 8 {
		t.Fatalf("search costs %d vs %d, want 5 vs 8", kd.SearchCost(), two.SearchCost())
	}
	// And the balance must be comparable (the paper's claim is asymptotic
	// equality for k = Θ(ln n); at n=256 allow a small constant slack).
	if kd.MaxLoad() > two.MaxLoad()+3 {
		t.Fatalf("kd max load %.1f much worse than two-choice %.1f", kd.MaxLoad(), two.MaxLoad())
	}
}

func TestByBytesBalancing(t *testing.T) {
	// Byte-weighted balance with a heavy tail is noisy (the max is driven
	// by where the few giant files land), so give the policy real slack
	// (D=8 probes for K=3 copies) and average the imbalance over several
	// seeds before comparing against random placement.
	meanImbalance := func(policy PlacementPolicy) float64 {
		sum := 0.0
		const seeds = 5
		for seed := uint64(0); seed < seeds; seed++ {
			cfg := baseConfig()
			cfg.ByBytes = true
			cfg.SizeDist = workload.Pareto(2.5, 10.0)
			cfg.Files = 5000
			cfg.D = 8
			cfg.Policy = policy
			cfg.Seed = 100 + seed
			s := MustNew(cfg)
			s.IngestAll()
			if err := s.ReplicationOK(); err != nil {
				t.Fatal(err)
			}
			sum += s.Imbalance()
		}
		return sum / seeds
	}
	kd := meanImbalance(KDPlace)
	rnd := meanImbalance(RandomPlace)
	if kd >= rnd {
		t.Fatalf("byte-balanced kd mean imbalance %.3f not better than random %.3f", kd, rnd)
	}
}

func TestFailServerReReplicates(t *testing.T) {
	cfg := baseConfig()
	s := MustNew(cfg)
	s.IngestAll()
	preMessages := s.Messages()
	moved := s.FailServer(7)
	if moved == 0 {
		t.Fatal("failing a server moved no copies; server 7 held nothing?")
	}
	if err := s.ReplicationOK(); err != nil {
		t.Fatalf("replication not restored: %v", err)
	}
	if s.Messages() <= preMessages {
		t.Fatal("re-replication cost no messages")
	}
	// Copy conservation after failure.
	total := 0
	for _, c := range s.Objects() {
		total += c
	}
	if total != cfg.Files*cfg.K {
		t.Fatalf("copies after failure %d, want %d", total, cfg.Files*cfg.K)
	}
}

func TestFailServerIdempotent(t *testing.T) {
	cfg := baseConfig()
	s := MustNew(cfg)
	s.IngestAll()
	s.FailServer(3)
	if moved := s.FailServer(3); moved != 0 {
		t.Fatalf("failing dead server moved %d copies", moved)
	}
	if moved := s.FailServer(-1); moved != 0 {
		t.Fatal("failing invalid server id did something")
	}
}

func TestCascadingFailures(t *testing.T) {
	cfg := baseConfig()
	cfg.Servers = 64
	cfg.Files = 1000
	s := MustNew(cfg)
	s.IngestAll()
	// Kill a quarter of the fleet one by one; replication must hold
	// throughout.
	for sv := 0; sv < 16; sv++ {
		s.FailServer(sv)
		if err := s.ReplicationOK(); err != nil {
			t.Fatalf("after killing %d servers: %v", sv+1, err)
		}
	}
}

func TestIngestAfterFailure(t *testing.T) {
	cfg := baseConfig()
	s := MustNew(cfg)
	s.IngestAll()
	s.FailServer(0)
	s.FailServer(1)
	id := s.Ingest()
	for _, sv := range s.FileServers(id) {
		if sv == 0 || sv == 1 {
			t.Fatal("new file placed on dead server")
		}
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []PlacementPolicy{KDPlace, PerCopyD, RandomPlace} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
	if !strings.Contains(PlacementPolicy(9).String(), "9") {
		t.Fatal("unknown policy name")
	}
}

func TestSearchCostRandom(t *testing.T) {
	cfg := baseConfig()
	cfg.Policy = RandomPlace
	s := MustNew(cfg)
	if s.SearchCost() != cfg.K {
		t.Fatalf("random search cost %d, want %d", s.SearchCost(), cfg.K)
	}
}

func TestImbalanceEmptySystem(t *testing.T) {
	s := MustNew(baseConfig())
	if s.Imbalance() != 0 {
		t.Fatal("empty system imbalance should be 0")
	}
}

func TestGiniReporting(t *testing.T) {
	cfg := baseConfig()
	cfg.Files = 4000
	kd := MustNew(cfg)
	kd.IngestAll()
	cfg.Policy = RandomPlace
	rnd := MustNew(cfg)
	rnd.IngestAll()
	if kd.Gini() < 0 || kd.Gini() >= 1 {
		t.Fatalf("kd Gini out of range: %v", kd.Gini())
	}
	if kd.Gini() >= rnd.Gini() {
		t.Fatalf("kd Gini %.4f not better than random %.4f", kd.Gini(), rnd.Gini())
	}
}
