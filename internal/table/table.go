// Package table renders aligned plain-text, Markdown and CSV tables for the
// command-line tools and for EXPERIMENTS.md. It has no knowledge of the
// experiments themselves.
package table

import (
	"fmt"
	"strings"
)

// Table is a simple rectangular table with a header row. The zero value is
// unusable; construct with New.
type Table struct {
	header []string
	rows   [][]string
}

// New creates a table with the given column headers.
func New(header ...string) *Table {
	return &Table{header: append([]string(nil), header...)}
}

// AddRow appends a row. Rows shorter than the header are padded with empty
// cells; longer rows extend the header with empty column names.
func (t *Table) AddRow(cells ...string) {
	row := append([]string(nil), cells...)
	for len(row) < len(t.header) {
		row = append(row, "")
	}
	for len(t.header) < len(row) {
		t.header = append(t.header, "")
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row formatting each cell with fmt.Sprint.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprint(c)
	}
	t.AddRow(row...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// widths returns the rendered width of each column.
func (t *Table) widths() []int {
	w := make([]int, len(t.header))
	for i, h := range t.header {
		w[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Text renders the table as aligned plain text.
func (t *Table) Text() string {
	w := t.widths()
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", w[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = "---"
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes applied only when a cell
// contains a comma, quote or newline).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString("\"")
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteString("\"")
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// IntsCell formats a list of ints as the paper's Table 1 cells do:
// "7, 8, 9" for several distinct values, "-" for an empty list.
func IntsCell(vals []int) string {
	if len(vals) == 0 {
		return "-"
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return strings.Join(parts, ", ")
}
