package table

import (
	"strings"
	"testing"
)

func TestTextAlignment(t *testing.T) {
	tb := New("k", "d", "max")
	tb.AddRow("1", "2", "3, 4")
	tb.AddRow("128", "193", "2")
	out := tb.Text()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "k  ") {
		t.Fatalf("header misaligned: %q", lines[0])
	}
	// All rows must be equal width after trailing-space trim differences;
	// check the rule row covers each column.
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("rule row missing: %q", lines[1])
	}
}

func TestAddRowPadding(t *testing.T) {
	tb := New("a", "b")
	tb.AddRow("1")
	tb.AddRow("1", "2", "3")
	out := tb.Text()
	if !strings.Contains(out, "3") {
		t.Fatalf("overflow cell lost:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestAddRowf(t *testing.T) {
	tb := New("n", "x")
	tb.AddRowf(42, 3.5)
	if !strings.Contains(tb.Text(), "42") || !strings.Contains(tb.Text(), "3.5") {
		t.Fatalf("AddRowf formatting failed:\n%s", tb.Text())
	}
}

func TestMarkdown(t *testing.T) {
	tb := New("k", "d")
	tb.AddRow("1", "2|3")
	md := tb.Markdown()
	if !strings.Contains(md, "| k | d |") {
		t.Fatalf("markdown header wrong:\n%s", md)
	}
	if !strings.Contains(md, "| --- | --- |") {
		t.Fatalf("markdown rule wrong:\n%s", md)
	}
	if !strings.Contains(md, "2\\|3") {
		t.Fatalf("pipe not escaped:\n%s", md)
	}
}

func TestCSV(t *testing.T) {
	tb := New("name", "vals")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", "a\"b")
	csv := tb.CSV()
	want := "name,vals\nplain,1\n\"with,comma\",\"a\"\"b\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestIntsCell(t *testing.T) {
	cases := []struct {
		in   []int
		want string
	}{
		{nil, "-"},
		{[]int{2}, "2"},
		{[]int{7, 8, 9}, "7, 8, 9"},
	}
	for _, tc := range cases {
		if got := IntsCell(tc.in); got != tc.want {
			t.Fatalf("IntsCell(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	tb := New("only")
	out := tb.Text()
	if !strings.HasPrefix(out, "only") {
		t.Fatalf("empty table text:\n%s", out)
	}
	if tb.NumRows() != 0 {
		t.Fatal("empty table has rows")
	}
}
