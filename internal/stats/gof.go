package stats

import (
	"math"
	"sort"
)

// ChiSquare returns the chi-square goodness-of-fit statistic of observed
// counts against expected counts. It panics if the slices have different
// lengths, are empty, or any expected count is non-positive.
func ChiSquare(observed []int, expected []float64) float64 {
	if len(observed) == 0 || len(observed) != len(expected) {
		panic("stats: ChiSquare with mismatched or empty inputs")
	}
	chi2 := 0.0
	for i, o := range observed {
		e := expected[i]
		if e <= 0 {
			panic("stats: ChiSquare with non-positive expected count")
		}
		d := float64(o) - e
		chi2 += d * d / e
	}
	return chi2
}

// ChiSquareUniform returns the chi-square statistic of observed counts
// against the uniform distribution over the buckets.
func ChiSquareUniform(observed []int) float64 {
	total := 0
	for _, o := range observed {
		total += o
	}
	expected := make([]float64, len(observed))
	e := float64(total) / float64(len(observed))
	for i := range expected {
		expected[i] = e
	}
	return ChiSquare(observed, expected)
}

// KolmogorovSmirnov returns the KS statistic (max |F_emp - F|) of the sample
// against the given CDF. It panics on empty input. xs is not modified.
func KolmogorovSmirnov(xs []float64, cdf func(float64) float64) float64 {
	if len(xs) == 0 {
		panic("stats: KolmogorovSmirnov of empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	d := 0.0
	for i, x := range sorted {
		f := cdf(x)
		lo := f - float64(i)/n
		hi := float64(i+1)/n - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// KSCriticalValue returns the approximate critical value of the one-sample
// KS statistic at the given significance level alpha for sample size n
// (asymptotic formula c(alpha) / sqrt(n)).
func KSCriticalValue(n int, alpha float64) float64 {
	// c(alpha) = sqrt(-ln(alpha/2) / 2)
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c / math.Sqrt(float64(n))
}

// EmpiricalCDF returns F(t) = fraction of xs <= t as a closure over a sorted
// copy of xs.
func EmpiricalCDF(xs []float64) func(float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return func(t float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		idx := sort.SearchFloat64s(sorted, math.Nextafter(t, math.Inf(1)))
		return float64(idx) / float64(len(sorted))
	}
}

// Histogram is a fixed-width binning of float64 observations.
type Histogram struct {
	Lo, Hi   float64 // range covered; observations outside are clamped into the end buckets
	Counts   []int
	binWidth float64
	total    int
}

// NewHistogram creates a histogram with the given bucket count over [lo, hi).
// It panics if buckets <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 {
		panic("stats: NewHistogram with buckets <= 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram with hi <= lo")
	}
	return &Histogram{
		Lo:       lo,
		Hi:       hi,
		Counts:   make([]int, buckets),
		binWidth: (hi - lo) / float64(buckets),
	}
}

// Add records one observation, clamping out-of-range values into the
// terminal buckets.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / h.binWidth)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int { return h.total }

// BucketMid returns the midpoint of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.binWidth
}
