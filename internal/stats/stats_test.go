package stats

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestOnlineBasics(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d, want 8", o.N())
	}
	if !almostEqual(o.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", o.Mean())
	}
	// Population variance of this classic set is 4; sample variance is 32/7.
	if !almostEqual(o.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", o.Variance(), 32.0/7.0)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", o.Min(), o.Max())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.StdErr() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
	o.Add(42)
	if o.Mean() != 42 || o.Variance() != 0 {
		t.Fatalf("single observation: mean=%v var=%v", o.Mean(), o.Variance())
	}
}

func TestOnlineAddN(t *testing.T) {
	var a, b Online
	a.AddN(3, 5)
	for i := 0; i < 5; i++ {
		b.Add(3)
	}
	if a.N() != b.N() || a.Mean() != b.Mean() {
		t.Fatalf("AddN mismatch: %v vs %v", a, b)
	}
}

// TestOnlineAddNMatchesRepeatedAdd: property test of the closed-form
// weighted update — for arbitrary interleavings of Add and AddN, the
// accumulator must agree with the observation-by-observation reference on
// every statistic (up to floating-point rounding).
func TestOnlineAddNMatchesRepeatedAdd(t *testing.T) {
	approx := func(a, b float64) bool {
		diff := math.Abs(a - b)
		scale := math.Max(math.Abs(a), math.Abs(b))
		return diff <= 1e-9*math.Max(scale, 1)
	}
	// Deterministic pseudo-random stream of (value, weight) pairs.
	next := uint64(0x9E3779B97F4A7C15)
	rnd := func() uint64 {
		next ^= next << 13
		next ^= next >> 7
		next ^= next << 17
		return next
	}
	for trial := 0; trial < 50; trial++ {
		var fast, slow Online
		for step := 0; step < 20; step++ {
			x := float64(int64(rnd()%2001)-1000) / 7
			w := int64(rnd() % 500)
			if step%3 == 0 {
				w = 1
			}
			fast.AddN(x, w)
			for i := int64(0); i < w; i++ {
				slow.Add(x)
			}
		}
		if fast.N() != slow.N() {
			t.Fatalf("trial %d: n %d vs %d", trial, fast.N(), slow.N())
		}
		if fast.Min() != slow.Min() || fast.Max() != slow.Max() {
			t.Fatalf("trial %d: min/max (%v,%v) vs (%v,%v)", trial, fast.Min(), fast.Max(), slow.Min(), slow.Max())
		}
		if !approx(fast.Mean(), slow.Mean()) {
			t.Fatalf("trial %d: mean %v vs %v", trial, fast.Mean(), slow.Mean())
		}
		if !approx(fast.Variance(), slow.Variance()) {
			t.Fatalf("trial %d: variance %v vs %v", trial, fast.Variance(), slow.Variance())
		}
	}
}

// TestOnlineAddNEdgeCases: zero and negative weights are no-ops; AddN into
// an empty accumulator seeds it exactly.
func TestOnlineAddNEdgeCases(t *testing.T) {
	var o Online
	o.AddN(5, 0)
	o.AddN(5, -3)
	if o.N() != 0 {
		t.Fatalf("non-positive weights added observations: n=%d", o.N())
	}
	o.AddN(2.5, 4)
	if o.N() != 4 || o.Mean() != 2.5 || o.Variance() != 0 || o.Min() != 2.5 || o.Max() != 2.5 {
		t.Fatalf("AddN seed wrong: %v", o.String())
	}
}

func TestOnlineMergeMatchesSequential(t *testing.T) {
	xs := []float64{1, 2, 3, 10, 20, 30, -5, 0.5, 7, 7, 7}
	var whole Online
	for _, x := range xs {
		whole.Add(x)
	}
	var left, right Online
	for _, x := range xs[:4] {
		left.Add(x)
	}
	for _, x := range xs[4:] {
		right.Add(x)
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", left.N(), whole.N())
	}
	if !almostEqual(left.Mean(), whole.Mean(), 1e-9) {
		t.Fatalf("merged mean %v, want %v", left.Mean(), whole.Mean())
	}
	if !almostEqual(left.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merged variance %v, want %v", left.Variance(), whole.Variance())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestOnlineMergeEmptyCases(t *testing.T) {
	var a, b Online
	a.Merge(&b) // empty into empty
	if a.N() != 0 {
		t.Fatal("merging empties should stay empty")
	}
	b.Add(5)
	a.Merge(&b)
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatalf("merge into empty failed: %v", a)
	}
	var c Online
	a.Merge(&c) // merging empty is a no-op
	if a.N() != 1 {
		t.Fatal("merging empty changed accumulator")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if got := Quantile(xs, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	// Interpolation case.
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Fatalf("interpolated median = %v", got)
	}
	// Input must not be modified.
	if !reflect.DeepEqual(xs, []float64{3, 1, 2, 4, 5}) {
		t.Fatal("Quantile modified its input")
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, f := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQuantilesSorted(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	got := QuantilesSorted(xs, 0, 0.5, 0.9, 1)
	want := []float64{1, 5.5, 9.1, 10}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-9) {
			t.Fatalf("quantiles = %v, want %v", got, want)
		}
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	if err := quick.Check(func(raw []float64, qa, qb uint8) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		a := float64(qa%101) / 100
		b := float64(qb%101) / 100
		if a > b {
			a, b = b, a
		}
		return Quantile(raw, a) <= Quantile(raw, b)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if MeanInts(nil) != 0 {
		t.Fatal("MeanInts(nil) != 0")
	}
	if got := MeanInts([]int{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("MeanInts = %v", got)
	}
}

func TestMaxMinInts(t *testing.T) {
	if got := MaxInts([]int{3, 9, 2}); got != 9 {
		t.Fatalf("MaxInts = %d", got)
	}
	if got := MinInts([]int{3, 9, 2}); got != 2 {
		t.Fatalf("MinInts = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MaxInts(nil) did not panic")
		}
	}()
	MaxInts(nil)
}

func TestDistinctSortedInts(t *testing.T) {
	cases := []struct {
		in, want []int
	}{
		{nil, nil},
		{[]int{5}, []int{5}},
		{[]int{3, 1, 3, 2, 1}, []int{1, 2, 3}},
		{[]int{7, 8, 9, 7, 8, 9, 8, 8, 7, 9}, []int{7, 8, 9}},
	}
	for _, tc := range cases {
		if got := DistinctSortedInts(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("DistinctSortedInts(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestDistinctSortedIntsProperty(t *testing.T) {
	if err := quick.Check(func(xs []int) bool {
		got := DistinctSortedInts(xs)
		if !sort.IntsAreSorted(got) {
			return false
		}
		// Every input value appears, and no others.
		set := make(map[int]bool, len(xs))
		for _, v := range xs {
			set[v] = true
		}
		if len(got) != len(set) {
			return false
		}
		for _, v := range got {
			if !set[v] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFreqInts(t *testing.T) {
	got := FreqInts([]int{1, 1, 2, 3, 3, 3})
	want := map[int]int{1: 2, 2: 1, 3: 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FreqInts = %v, want %v", got, want)
	}
}
