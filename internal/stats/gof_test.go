package stats

import (
	"math"
	"testing"
)

func TestChiSquareZeroForExactFit(t *testing.T) {
	obs := []int{10, 10, 10, 10}
	exp := []float64{10, 10, 10, 10}
	if got := ChiSquare(obs, exp); got != 0 {
		t.Fatalf("ChiSquare exact fit = %v, want 0", got)
	}
}

func TestChiSquareKnownValue(t *testing.T) {
	obs := []int{8, 12}
	exp := []float64{10, 10}
	// (8-10)^2/10 + (12-10)^2/10 = 0.8
	if got := ChiSquare(obs, exp); !almostEqual(got, 0.8, 1e-12) {
		t.Fatalf("ChiSquare = %v, want 0.8", got)
	}
}

func TestChiSquarePanics(t *testing.T) {
	cases := []func(){
		func() { ChiSquare(nil, nil) },
		func() { ChiSquare([]int{1}, []float64{1, 2}) },
		func() { ChiSquare([]int{1}, []float64{0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestChiSquareUniform(t *testing.T) {
	obs := []int{25, 25, 25, 25}
	if got := ChiSquareUniform(obs); got != 0 {
		t.Fatalf("uniform fit = %v", got)
	}
	obs = []int{30, 20, 25, 25}
	// expected 25 each: (25+25+0+0)/25 = 2
	if got := ChiSquareUniform(obs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("ChiSquareUniform = %v, want 2", got)
	}
}

func TestKolmogorovSmirnovPerfectFit(t *testing.T) {
	// Sample = {0.25, 0.75} against U(0,1): D = max deviation = 0.25.
	xs := []float64{0.25, 0.75}
	uniform := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	if got := KolmogorovSmirnov(xs, uniform); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("KS = %v, want 0.25", got)
	}
}

func TestKolmogorovSmirnovPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KolmogorovSmirnov(nil, func(float64) float64 { return 0 })
}

func TestKSCriticalValue(t *testing.T) {
	// Classic value: c(0.05) = 1.3581, so D_crit(100, .05) ~ 0.13581.
	got := KSCriticalValue(100, 0.05)
	if !almostEqual(got, 0.13581, 1e-4) {
		t.Fatalf("KSCriticalValue = %v, want ~0.13581", got)
	}
}

func TestEmpiricalCDF(t *testing.T) {
	cdf := EmpiricalCDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := cdf(tc.x); !almostEqual(got, tc.want, 1e-12) {
			t.Fatalf("cdf(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	empty := EmpiricalCDF(nil)
	if empty(1) != 0 {
		t.Fatal("empty CDF should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5.5, 9.99, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	want := []int{3, 1, 1, 0, 2} // -3 clamps into bucket 0, 42 into bucket 4
	for i, c := range want {
		if h.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (counts=%v)", i, h.Counts[i], c, h.Counts)
		}
	}
	if got := h.BucketMid(0); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("BucketMid(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewHistogram(0, 10, 0) },
		func() { NewHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestKSUniformSanity(t *testing.T) {
	// A linearly spaced grid is as uniform as it gets; KS must be tiny.
	n := 1000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (float64(i) + 0.5) / float64(n)
	}
	d := KolmogorovSmirnov(xs, func(x float64) float64 { return math.Min(1, math.Max(0, x)) })
	if d > 0.001 {
		t.Fatalf("KS of perfect grid = %v", d)
	}
}
