// Package stats provides the statistical primitives used by the experiment
// harness: online moment accumulation, exact quantiles, integer frequency
// summaries, histograms, and the goodness-of-fit statistics used to validate
// the random-number substrate.
//
// Everything here is deterministic given its inputs; nothing draws
// randomness.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates count, mean and variance in one pass using Welford's
// algorithm. The zero value is an empty accumulator ready for use.
type Online struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// AddN incorporates the same observation w times (w >= 0) in O(1): it is
// the Chan et al. merge of o with a w-point accumulator concentrated at x
// (mean x, zero within-group variance), so heavy-multiplicity frequency
// summaries cost one update instead of w Welford steps. The result agrees
// with w repeated Add calls up to floating-point rounding.
func (o *Online) AddN(x float64, w int64) {
	if w <= 0 {
		return
	}
	if o.n == 0 {
		o.n = w
		o.mean = x
		o.m2 = 0
		o.min, o.max = x, x
		return
	}
	if x < o.min {
		o.min = x
	}
	if x > o.max {
		o.max = x
	}
	delta := x - o.mean
	total := o.n + w
	o.mean += delta * float64(w) / float64(total)
	o.m2 += delta * delta * float64(o.n) * float64(w) / float64(total)
	o.n = total
}

// N returns the number of observations.
func (o *Online) N() int64 { return o.n }

// Mean returns the sample mean, or 0 with no observations.
func (o *Online) Mean() float64 { return o.mean }

// Min returns the minimum observation, or 0 with no observations.
func (o *Online) Min() float64 { return o.min }

// Max returns the maximum observation, or 0 with no observations.
func (o *Online) Max() float64 { return o.max }

// Variance returns the unbiased sample variance (n-1 denominator), or 0 for
// fewer than two observations.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// StdErr returns the standard error of the mean, or 0 with no observations.
func (o *Online) StdErr() float64 {
	if o.n == 0 {
		return 0
	}
	return o.StdDev() / math.Sqrt(float64(o.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (o *Online) CI95() float64 { return 1.96 * o.StdErr() }

// Merge combines another accumulator into o (Chan et al. parallel variant).
func (o *Online) Merge(other *Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	delta := other.mean - o.mean
	total := o.n + other.n
	o.mean += delta * float64(other.n) / float64(total)
	o.m2 += other.m2 + delta*delta*float64(o.n)*float64(other.n)/float64(total)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n = total
}

// String summarizes the accumulator.
func (o *Online) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f", o.n, o.Mean(), o.StdDev(), o.Min(), o.Max())
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the numpy/R default).
// It panics if xs is empty or q is outside [0, 1]. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic("stats: Quantile with q outside [0, 1]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantilesSorted returns the q-quantiles of xs computed in one pass; xs
// must already be sorted ascending. It panics on empty input or out-of-range
// q values.
func QuantilesSorted(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		panic("stats: QuantilesSorted of empty slice")
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 {
			panic("stats: QuantilesSorted with q outside [0, 1]")
		}
		out[i] = quantileSorted(xs, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanInts returns the arithmetic mean of xs, or 0 for empty input.
func MeanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// MaxInts returns the maximum of xs; it panics on empty input.
func MaxInts(xs []int) int {
	if len(xs) == 0 {
		panic("stats: MaxInts of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MinInts returns the minimum of xs; it panics on empty input.
func MinInts(xs []int) int {
	if len(xs) == 0 {
		panic("stats: MinInts of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// DistinctSortedInts returns the sorted distinct values of xs. The paper's
// Table 1 reports exactly this summary of the max load over repeated runs
// (e.g. "7, 8, 9" for ten runs of single-choice).
func DistinctSortedInts(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	tmp := make([]int, len(xs))
	copy(tmp, xs)
	sort.Ints(tmp)
	out := tmp[:1]
	for _, v := range tmp[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// FreqInts returns the frequency of each value in xs keyed by value.
func FreqInts(xs []int) map[int]int {
	m := make(map[int]int)
	for _, v := range xs {
		m[v]++
	}
	return m
}
