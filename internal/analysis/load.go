package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// Load resolves the package patterns with the go tool, parses each
// package's non-test sources, and type-checks them against source (the
// stdlib "source" importer compiles nothing and needs no export data, so
// the loader works in a bare checkout). Analyzer scope is non-test code
// by design: tests are free to use literal seeds, maps, and math/rand.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	type listJSON struct {
		Dir        string
		ImportPath string
		GoFiles    []string
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listJSON
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			full := filepath.Join(lp.Dir, name)
			f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := Check(lp.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  lp.ImportPath,
			Dir:   lp.Dir,
			Fset:  fset,
			Files: files,
			Types: pkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// Check type-checks one package's parsed files under the given importer
// and returns the package with a fully populated Info. Shared by the
// loader, the vettool driver, and the fixture harness.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
