// Package analysistest runs kdlint analyzers over fixture packages and
// checks their diagnostics against // want comments in the fixture
// source, mirroring golang.org/x/tools/go/analysis/analysistest on the
// repo's stdlib-only framework.
//
// Fixtures live under a GOPATH-style tree: srcdir/<import path>/*.go.
// The import path is spoofed — a fixture at testdata/src/repro/internal/sim
// type-checks as package path "repro/internal/sim", so scope-gated
// analyzers treat it as the real simulation package. Fixture imports
// resolve against the same tree first (stub packages), then against the
// standard library.
//
// Expectations are written in the source:
//
//	bad()          // want "regexp"
//	worse()        // want "first" "second"
//	// want "applies to the PREVIOUS line"
//
// A want comment sharing a line with code expects a diagnostic on that
// line; a want comment alone on a line expects one on the line above it
// (needed when the flagged construct is itself a comment, e.g. a
// malformed //kdlint: directive). Patterns are regexps, quoted with
// double quotes or backticks, matched against the diagnostic message.
// Every expectation must be met and every diagnostic expected.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run analyzes the fixture package at srcdir/path with the given
// analyzers and reports any mismatch between diagnostics and the
// fixture's // want comments as test errors.
func Run(t *testing.T, srcdir, path string, analyzers ...*analysis.Analyzer) {
	t.Helper()

	fset := token.NewFileSet()
	imp := newFixtureImporter(srcdir, fset)
	files, sources, err := parseFixture(fset, filepath.Join(srcdir, filepath.FromSlash(path)))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	typesPkg, info, err := analysis.Check(path, fset, files, imp)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", path, err)
	}

	pkg := &analysis.Package{
		Path:  path,
		Dir:   filepath.Join(srcdir, filepath.FromSlash(path)),
		Fset:  fset,
		Files: files,
		Types: typesPkg,
		Info:  info,
	}
	diags := analysis.RunPackage(pkg, analyzers)

	wants, err := parseWants(sources)
	if err != nil {
		t.Fatalf("parsing want comments in %s: %v", path, err)
	}

	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("no diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

// want is one expectation: a diagnostic on file:line whose message
// matches re.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// parseFixture parses every .go file in dir and returns the ASTs plus
// each file's raw source (for want-comment scanning).
func parseFixture(fset *token.FileSet, dir string) ([]*ast.File, map[string][]byte, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	sources := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, nil, err
		}
		f, err := parser.ParseFile(fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		sources[e.Name()] = src
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no .go files in %s", dir)
	}
	return files, sources, nil
}

var wantComment = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantPattern = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// parseWants scans raw fixture sources line-by-line for want comments.
func parseWants(sources map[string][]byte) ([]want, error) {
	var names []string
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)

	var wants []want
	for _, name := range names {
		lines := strings.Split(string(sources[name]), "\n")
		for i, line := range lines {
			loc := wantComment.FindStringIndex(line)
			if loc == nil {
				continue
			}
			target := i + 1 // 1-based line of the comment itself
			if strings.TrimSpace(line[:loc[0]]) == "" {
				// Comment-only line: the expectation applies to the
				// line above (the construct may itself be a comment).
				target--
			}
			m := wantComment.FindStringSubmatch(line)
			pats := wantPattern.FindAllString(m[1], -1)
			if len(pats) == 0 {
				return nil, fmt.Errorf("%s:%d: want comment with no quoted pattern", name, i+1)
			}
			for _, p := range pats {
				var expr string
				if p[0] == '`' {
					expr = p[1 : len(p)-1]
				} else {
					unq, err := strconv.Unquote(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", name, i+1, p, err)
					}
					expr = unq
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", name, i+1, expr, err)
				}
				wants = append(wants, want{file: name, line: target, re: re})
			}
		}
	}
	return wants, nil
}

// fixtureImporter resolves imports against the fixture tree first (so
// fixtures can import spoofed repro/... stub packages), falling back to
// the source importer for the standard library. Fixture packages are
// type-checked on demand and memoized.
type fixtureImporter struct {
	srcdir   string
	fset     *token.FileSet
	memo     map[string]*types.Package
	fallback types.Importer
}

func newFixtureImporter(srcdir string, fset *token.FileSet) *fixtureImporter {
	return &fixtureImporter{
		srcdir:   srcdir,
		fset:     fset,
		memo:     map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "source", nil),
	}
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.memo[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.srcdir, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		return fi.fallback.Import(path)
	}
	files, _, err := parseFixture(fi.fset, dir)
	if err != nil {
		return nil, err
	}
	pkg, _, err := analysis.Check(path, fi.fset, files, fi)
	if err != nil {
		return nil, err
	}
	fi.memo[path] = pkg
	return pkg, nil
}
