package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestSeedflowFixtures covers literal and wall-clock seeds (flagged),
// the sanctioned Config.Seed stream-split derivation, and a justified
// //kdlint:allow suppression.
func TestSeedflowFixtures(t *testing.T) {
	analysistest.Run(t, "testdata/src", "repro/internal/workload", analysis.Seedflow)
}
