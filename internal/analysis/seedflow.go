package analysis

import "go/ast"

// Seedflow checks that every RNG constructed in simulation code flows
// from a derived per-(cell,run) stream: the seed argument of xrand.New /
// xrand.NewStream must be computed (a Config.Seed field, a cellSeed/
// splitmix derivation, a stream split), never a bare integer literal and
// never anything touching the wall clock. A literal seed pins every run
// of every cell to one stream — the byte-identical-Report-for-any-worker-
// count property PR 2 established only holds because run i of cell c
// draws from the derived stream (seed_c, i) and nothing else.
//
// Test files are exempt: fixed literal seeds are exactly what
// reproducible tests want. (Inside package xrand itself the constructors
// are the derivation primitives, so the check does not apply.)
var Seedflow = &Analyzer{
	Name: "seedflow",
	Doc:  "RNG seeds in simulation code must derive from Config.Seed or a stream split, not literals or the wall clock",
	Run:  runSeedflow,
}

const xrandPath = modulePath + "/internal/xrand"

func runSeedflow(pass *Pass) {
	if !inSimScope(pass.Path) || pass.Path == xrandPath {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Info, call)
			if !isPkgFunc(fn, xrandPath, "New") && !isPkgFunc(fn, xrandPath, "NewStream") {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			seed := call.Args[0]
			if tv, ok := pass.Info.Types[seed]; ok && tv.Value != nil {
				pass.Reportf(seed.Pos(), "xrand.%s seeded with constant %s; seeds must derive from Config.Seed or a stream split so every (cell,run) replays its own stream", fn.Name(), tv.Value)
				return true
			}
			wallClock := false
			ast.Inspect(seed, func(sn ast.Node) bool {
				if c, ok := sn.(*ast.CallExpr); ok && isPkgFunc(calleeOf(pass.Info, c), "time", "Now") {
					wallClock = true
				}
				return true
			})
			if wallClock {
				pass.Reportf(seed.Pos(), "xrand.%s seeded from the wall clock; runs must be replayable from Config.Seed alone", fn.Name())
			}
			return true
		})
	}
}
