// Command badtool is a layering fixture: a command reaching into the
// engine instead of staying on the public API.
package main

import (
	"repro/internal/core" // want `imports internal engine package`
	"repro/internal/stats"
)

func main() {
	_ = core.Sink{}
	_ = stats.Mean(nil)
}
