// Package stats is a stub of the presentation-allowlisted helper the
// layering fixtures import.
package stats

// Mean averages xs (fixture stub).
func Mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}
