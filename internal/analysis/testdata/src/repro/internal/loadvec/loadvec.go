// Package loadvec is a layering fixture: an engine package coupling to
// an application substrate.
package loadvec

import "repro/internal/cluster" // want `imports application substrate`

func use() int { return cluster.Nodes() }
