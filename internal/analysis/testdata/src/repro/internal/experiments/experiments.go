// Package experiments is a layering fixture: the evaluation suite is
// one of the two packages sanctioned to import the substrates, so this
// file produces no findings.
package experiments

import "repro/internal/cluster"

// Use touches the substrate from the allowed side of the boundary.
func Use() int { return cluster.Nodes() }
