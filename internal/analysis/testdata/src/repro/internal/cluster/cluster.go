// Package cluster is a stub of the application substrate the layering
// fixtures import.
package cluster

// Nodes reports the fixture cluster size.
func Nodes() int { return 3 }
