// Package xrand is a stub of the deterministic RNG package, just enough
// surface for the seedflow fixtures to type-check.
package xrand

// Rand is the fixture RNG.
type Rand struct{ s uint64 }

// New seeds a fixture RNG.
func New(seed uint64) *Rand { return &Rand{s: seed} }

// NewStream derives the fixture stream (seed, id).
func NewStream(seed, id uint64) *Rand { return &Rand{s: seed ^ id} }
