// Package sim is a detrand fixture: it spoofs the import path of the
// real simulation package so the determinism perimeter applies.
package sim

import (
	"math/rand" // want `simulation package imports math/rand`
	"sort"
	"time"
)

func useRand() int { return rand.Int() }

func wallClock() int64 {
	return time.Now().UnixNano() // want `reads the wall clock`
}

// keysUnsorted ranges a map and never sorts what it collected: flagged.
func keysUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is random`
		keys = append(keys, k)
	}
	return keys
}

// keysSorted is the canonical sorted-keys idiom: recognized, no finding.
func keysSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// countPositive is a commutative integer fold: recognized, no finding.
func countPositive(m map[string]int) int {
	n := 0
	for _, v := range m {
		if v > 0 {
			n++
		}
	}
	return n
}

// sumFloats accumulates floats, whose addition is order-dependent under
// rounding: flagged.
func sumFloats(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `map iteration order is random`
		s += v
	}
	return s
}

// guardReadsAccumulator increments under a condition that reads the
// accumulator, so the result depends on visit order: flagged.
func guardReadsAccumulator(m map[string]int) int {
	n := 0
	for range m { // want `map iteration order is random`
		if n < 5 {
			n++
		}
	}
	return n
}

// drain is the map-clear idiom: recognized, no finding.
func drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// firstMatch is order-insensitive for a deeper reason (values are unique,
// so at most one key matches) and carries the explicit suppression.
func firstMatch(m map[string]int, v int) string {
	//kdlint:ordered values are unique, so the single match is order-independent
	for k, mv := range m {
		if mv == v {
			return k
		}
	}
	return ""
}

// bareDirective carries a justification-free suppression: the directive
// is reported and does NOT silence the finding.
func bareDirective(m map[string]int) string {
	//kdlint:ordered
	// want `requires a justification`
	for k := range m { // want `map iteration order is random`
		if k != "" {
			return k
		}
	}
	return ""
}
