// Package workload is a seedflow fixture: it spoofs the import path of
// a simulation package, so RNG constructions here must derive from a
// configured seed.
package workload

import (
	"time"

	"repro/internal/xrand"
)

// Config mirrors the real configuration shape.
type Config struct{ Seed uint64 }

func literalSeed() *xrand.Rand {
	return xrand.New(42) // want `seeded with constant 42`
}

func clockSeed() *xrand.Rand {
	return xrand.New(uint64(time.Now().UnixNano())) // want `seeded from the wall clock`
}

// derived flows from the configured seed through a stream split: the
// sanctioned construction, no finding.
func derived(cfg Config, run uint64) *xrand.Rand {
	return xrand.NewStream(cfg.Seed, run)
}

// allowed shows a justified suppression silencing the literal-seed rule.
func allowed() *xrand.Rand {
	//kdlint:allow seedflow calibration helper, never feeds a Report
	return xrand.New(7)
}
