// Package core is a hotpath fixture (and the stub engine package the
// layering fixtures import).
package core

// Sink gives the fixtures a process-owned buffer to reslice and gives
// the layering fixtures an exported symbol to touch.
type Sink struct {
	Buf []int
}

func box(v any) any { return v }

//kd:hotpath
func hotClosure() int {
	f := func() int { return 1 } // want `closure literal in hot path`
	return f()
}

//kd:hotpath
func hotDefer() {
	defer println("done") // want `defer in hot path`
}

//kd:hotpath
func hotGo() {
	go println("spawned") // want `goroutine launch in hot path`
}

//kd:hotpath
func hotMake(n int) []int {
	return make([]int, n) // want `make allocates in hot path`
}

//kd:hotpath
func hotLiteral() []int {
	return []int{1, 2} // want `slice literal allocates in hot path`
}

//kd:hotpath
func hotAppendFresh(s *Sink, v int) {
	var out []int
	out = append(out, v) // want `append into a non-preallocated slice`
	s.Buf = out
}

// hotAppendPresized reuses a process-owned buffer through the reslice
// idiom: recognized, no finding.
//
//kd:hotpath
func hotAppendPresized(s *Sink, v int) {
	out := s.Buf[:0]
	out = append(out, v)
	s.Buf = out
}

//kd:hotpath
func hotBox(v int) any {
	return box(v) // want `implicit conversion of int to interface`
}

// hotAllowed shows a justified suppression: the finding is silenced.
//
//kd:hotpath
func hotAllowed() []int {
	//kdlint:allow hotpath setup-time helper, measured alloc-free in the round benchmarks
	return make([]int, 4)
}

// coldClosure is not annotated, so nothing here is checked.
func coldClosure() func() int {
	return func() int { return 2 }
}
