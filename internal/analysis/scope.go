package analysis

import (
	"go/ast"
	"strings"
)

// modulePath is this repository's module path. The analyzers are
// repo-specific tooling (they encode THIS repo's architecture), so the
// path is a constant rather than something rediscovered per run.
const modulePath = "repro"

// simPackages is the determinism perimeter: the packages whose behavior
// must be a pure function of configuration and seed, because their output
// feeds Reports, seed derivation, or event streams. Everything the round
// engine, the stores, the RNG, the workload generators, and the
// application substrates compute must replay bit-identically; the
// presentation and evaluation layers (experiments, stats, table, theory,
// cmd, examples) may format and aggregate however they like.
var simPackages = map[string]bool{
	modulePath:                        true, // root: Experiment/Study/serving layer
	modulePath + "/internal/core":     true,
	modulePath + "/internal/faults":   true, // fault schedules feed placement decisions
	modulePath + "/internal/sim":      true,
	modulePath + "/internal/loadvec":  true,
	modulePath + "/internal/workload": true,
	modulePath + "/internal/xrand":    true,
	modulePath + "/internal/cluster":  true, // application substrates
	modulePath + "/internal/netsim":   true,
	modulePath + "/internal/storage":  true,
	modulePath + "/internal/eventsim": true, // event-driven engine under the substrates
	modulePath + "/internal/sketch":   true, // count-min state read by the sketch kernel
}

// inSimScope reports whether the package at path carries the determinism
// invariants.
func inSimScope(path string) bool { return simPackages[path] }

// substrates are the Section-1.3 application substrate packages, reachable
// only from the root package and internal/experiments.
var substrates = map[string]bool{
	modulePath + "/internal/cluster": true,
	modulePath + "/internal/netsim":  true,
	modulePath + "/internal/storage": true,
}

// presentationAllowlist is the set of internal packages commands and
// examples may import: evaluation and formatting helpers that sit beside
// the public API, not the engine itself.
var presentationAllowlist = map[string]bool{
	modulePath + "/internal/experiments": true,
	modulePath + "/internal/stats":       true,
	modulePath + "/internal/table":       true,
	modulePath + "/internal/theory":      true,
	modulePath + "/internal/analysis":    true, // cmd/kdlint is the suite's own driver
}

func isCmdOrExample(path string) bool {
	return strings.HasPrefix(path, modulePath+"/cmd/") ||
		strings.HasPrefix(path, modulePath+"/examples/")
}

// isTestFile reports whether the file is a _test.go file. The standalone
// loader never feeds test files, but the vettool driver does (go vet
// analyzes test variants), and the analyzers exempt them uniformly.
func isTestFile(p *Pass, f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}
