package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// Layering is the facts-based replacement for ci.sh's two import-hygiene
// greps, deny-by-default so newly added internal packages are covered
// without editing any gate:
//
//  1. Commands and examples build only on the public API: a package under
//     cmd/ or examples/ may import no internal package at all, except the
//     presentation/evaluation helpers (experiments, stats, table, theory).
//     The public kdchoice package is the only sanctioned simulation entry
//     point.
//  2. The application substrates (cluster, netsim, storage) are reachable
//     only from the root package and internal/experiments — no other
//     internal package, command, or example may couple to them.
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "enforce the import DAG: cmd/examples on the public API only; substrates reachable only from root and internal/experiments",
	Run:  runLayering,
}

func runLayering(pass *Pass) {
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			// Matches the grep gates this analyzer replaces: they read
			// go list's .Imports, which excludes test-only imports.
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			checkImport(pass, imp, path)
		}
	}
}

func checkImport(pass *Pass, imp *ast.ImportSpec, path string) {
	internal := strings.HasPrefix(path, modulePath+"/internal/")

	// Rule 1: cmd/ and examples/ stay on the public API.
	if isCmdOrExample(pass.Path) && internal && !presentationAllowlist[path] {
		pass.Reportf(imp.Pos(), "%s imports internal engine package %s; commands and examples build only on the public kdchoice API (allowed internal helpers: experiments, stats, table, theory)", pass.Path, path)
		return
	}

	// Rule 2: the substrates are implementation details of the root
	// package's Study surface and the experiments evaluation suite.
	if substrates[path] && pass.Path != modulePath && pass.Path != modulePath+"/internal/experiments" {
		pass.Reportf(imp.Pos(), "%s imports application substrate %s; substrates are reachable only from the root package and internal/experiments", pass.Path, path)
	}
}
