package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestHotpathFixtures covers every alloc-risk construct the analyzer
// rejects in //kd:hotpath functions, the presized-append negative case,
// the //kdlint:allow suppression, and that unannotated functions are
// left alone.
func TestHotpathFixtures(t *testing.T) {
	analysistest.Run(t, "testdata/src", "repro/internal/core", analysis.Hotpath)
}
