package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotpathDirective is the annotation that opts a function into the
// alloc-risk checks (and into scripts/escapecheck.sh's escape-analysis
// pass): a comment line `//kd:hotpath` in the function's doc comment.
const HotpathDirective = "//kd:hotpath"

// Hotpath checks every function annotated //kd:hotpath for constructs
// that allocate (or force the escape analyzer's hand) on the per-round /
// per-bin path the annotation marks:
//
//   - function literals (closure environments are heap-allocated once a
//     capture escapes, and the capture analysis is fragile under inlining);
//   - defer and go statements (defer records and goroutine stacks);
//   - make/new calls and slice/map composite literals (a fresh allocation
//     per call; hot-path buffers live on the Process and are resliced);
//   - append into a slice that is not visibly preallocated — the first
//     argument must be a reslice (buf[:0]), a variable initialized from a
//     reslice, or a parameter, so steady-state appends reuse capacity;
//   - implicit concrete-to-interface conversions at calls, assignments,
//     and returns (the boxed value escapes; this is exactly the dispatch
//     cost the PR 5 kernel specialization removed).
//
// The analyzer is the static half of the alloc-free guarantee; the
// runtime half is the 0 allocs/round benchmark assertions, and
// scripts/escapecheck.sh closes the gap with the compiler's own escape
// verdicts over the same annotated set.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "forbid alloc-risk constructs in functions annotated //kd:hotpath",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !IsHotAnnotated(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
}

// IsHotAnnotated reports whether the function's doc comment carries the
// //kd:hotpath directive. Exported for cmd/kdlint's -hot listing mode.
func IsHotAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotpathDirective || strings.HasPrefix(c.Text, HotpathDirective+" ") {
			return true
		}
	}
	return false
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	presized := presizedSlices(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure literal in hot path %s: captured variables escape to the heap", fd.Name.Name)
			return false // don't double-report the literal's own body
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path %s allocates a defer record per call", fd.Name.Name)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch in hot path %s", fd.Name.Name)
		case *ast.CompositeLit:
			t := pass.Info.Types[n].Type
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s literal allocates in hot path %s; hoist the buffer to init/setup", typeKindName(t), fd.Name.Name)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, n, presized)
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN {
				for i := range n.Lhs {
					if i < len(n.Rhs) {
						checkIfaceConvert(pass, fd, pass.Info.Types[n.Lhs[i]].Type, n.Rhs[i])
					}
				}
			}
		case *ast.ReturnStmt:
			sig, _ := pass.Info.Defs[fd.Name].Type().(*types.Signature)
			if sig != nil && sig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					checkIfaceConvert(pass, fd, sig.Results().At(i).Type(), res)
				}
			}
		}
		return true
	})
}

func typeKindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

// checkHotCall flags make/new, non-preallocated appends, and implicit
// interface conversions of the call's arguments.
func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, presized map[types.Object]bool) {
	// Builtins and conversions first.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				pass.Reportf(call.Pos(), "%s allocates in hot path %s; hoist the buffer to init/setup", id.Name, fd.Name.Name)
			case "append":
				if len(call.Args) > 0 && !isPresizedAppendTarget(pass, call.Args[0], presized) {
					pass.Reportf(call.Pos(), "append into a non-preallocated slice in hot path %s; reslice a process-owned buffer (buf[:0]) instead", fd.Name.Name)
				}
			}
			return
		}
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x): flag when T is an interface.
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			checkIfaceConvert(pass, fd, tv.Type, call.Args[0])
		}
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing an existing slice through: no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkIfaceConvert(pass, fd, pt, arg)
	}
}

// checkIfaceConvert reports arg when assigning it to a destination of
// interface type boxes a concrete value (allocating the interface data
// word). nil and values already of interface type convert for free.
func checkIfaceConvert(pass *Pass, fd *ast.FuncDecl, dst types.Type, arg ast.Expr) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() {
		return
	}
	if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
		return
	}
	// Untyped constants assigned to interfaces still box, but a typed
	// check reads better in the message.
	pass.Reportf(arg.Pos(), "implicit conversion of %s to interface %s in hot path %s boxes the value on the heap", tv.Type, dst, fd.Name.Name)
}

// presizedSlices collects the variables an append may safely target: the
// function's parameters (the caller owns their capacity) and every local
// slice whose initializer is visibly capacity-reusing — a reslice
// expression like buf[:0] or buf[:n] (typically of a Process-owned
// scratch field).
func presizedSlices(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	set := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil {
				set[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if _, isSlice := unparen(as.Rhs[i]).(*ast.SliceExpr); !isSlice {
				continue
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				set[obj] = true
			}
		}
		return true
	})
	return set
}

// isPresizedAppendTarget reports whether the append target visibly reuses
// existing capacity: a direct reslice expression, or a variable in the
// presized set (parameter or reslice-initialized local).
func isPresizedAppendTarget(pass *Pass, target ast.Expr, presized map[types.Object]bool) bool {
	switch t := unparen(target).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		obj := pass.Info.Uses[t]
		if obj == nil {
			obj = pass.Info.Defs[t]
		}
		return obj != nil && presized[obj]
	}
	return false
}
