package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// Detrand rejects nondeterminism sources inside the simulation perimeter:
//
//   - importing math/rand or math/rand/v2 (all randomness flows through
//     internal/xrand so streams replay bit-for-bit);
//
//   - calling time.Now (wall-clock values reaching seeds, reports, or
//     event streams make runs unrepeatable);
//
//   - ranging over a map, unless the loop is one of the recognized
//     order-insensitive idioms:
//
//     sorted-keys — the body only appends to local slices, and every
//     such slice is sorted after the loop before further use;
//     integer fold — the body only increments/decrements or +=/-= into
//     integer accumulators (counting and integer summation commute;
//     float accumulation does NOT and is still flagged, since FP
//     rounding makes the sum order-dependent);
//     map clear — the body only deletes from the ranged map itself.
//
//     Residual loops that are order-insensitive for deeper reasons carry
//     an explicit //kdlint:ordered <reason> suppression on or above the
//     range line.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid math/rand, wall-clock reads, and order-leaking map iteration in simulation packages",
	Run:  runDetrand,
}

func runDetrand(pass *Pass) {
	if !inSimScope(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			// Tests replay fixed scenarios and may iterate maps or use
			// helper randomness freely; only shipped simulation code
			// carries the determinism contract.
			continue
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "simulation package imports %s; use internal/xrand so streams replay deterministically", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgFunc(calleeOf(pass.Info, n), "time", "Now") {
					pass.Reportf(n.Pos(), "simulation package reads the wall clock (time.Now); derive all values from Config.Seed and simulated time")
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
				// Keep descending: map ranges are handled above (the
				// idiom checks need the enclosing body), but time.Now
				// calls inside the body are this walk's job.
			}
			return true
		})
	}
}

// checkMapRanges walks one function body and reports map-range statements
// that match none of the order-insensitive idioms.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if isMapClearLoop(pass, rs) || isIntegerFoldLoop(pass, rs) || isSortedKeysLoop(pass, body, rs) {
			return true
		}
		pass.Reportf(rs.Pos(), "map iteration order is random and can reach a Report, seed, or event stream; sort the keys first or annotate //kdlint:ordered <reason>")
		return true
	})
}

// isMapClearLoop recognizes `for k := range m { delete(m, k) }`.
func isMapClearLoop(pass *Pass, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	es, ok := rs.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "delete" {
		return false
	}
	if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	return sameIdent(call.Args[0], rs.X)
}

// isIntegerFoldLoop recognizes bodies whose only effects are commutative
// integer accumulation: every leaf statement is x++/x--/x+=e/x-=e (and
// friends) into an integer variable, with control flow limited to
// if/else/blocks whose conditions never read an accumulator (a condition
// that reads the accumulator reintroduces order dependence). Counting and
// integer summation are order-insensitive; anything touching floats,
// slices, maps, or calls is not recognized and must sort or suppress.
func isIntegerFoldLoop(pass *Pass, rs *ast.RangeStmt) bool {
	var accums []types.Object
	var ok = true
	var conds []ast.Expr

	var walkStmts func([]ast.Stmt)
	walkStmts = func(stmts []ast.Stmt) {
		for _, s := range stmts {
			if !ok {
				return
			}
			switch s := s.(type) {
			case *ast.IncDecStmt:
				obj := accumTarget(pass, s.X)
				if obj == nil {
					ok = false
					return
				}
				accums = append(accums, obj)
			case *ast.AssignStmt:
				switch s.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
					if len(s.Lhs) != 1 {
						ok = false
						return
					}
					obj := accumTarget(pass, s.Lhs[0])
					if obj == nil {
						ok = false
						return
					}
					accums = append(accums, obj)
				default:
					ok = false
					return
				}
			case *ast.IfStmt:
				if s.Init != nil {
					ok = false
					return
				}
				conds = append(conds, s.Cond)
				walkStmts(s.Body.List)
				switch e := s.Else.(type) {
				case nil:
				case *ast.BlockStmt:
					walkStmts(e.List)
				case *ast.IfStmt:
					walkStmts([]ast.Stmt{e})
				default:
					ok = false
					return
				}
			case *ast.BlockStmt:
				walkStmts(s.List)
			case *ast.BranchStmt:
				if s.Tok != token.CONTINUE && s.Tok != token.BREAK {
					ok = false
					return
				}
			default:
				ok = false
				return
			}
		}
	}
	walkStmts(rs.Body.List)
	if !ok || len(accums) == 0 {
		return false
	}
	// No condition may read an accumulator: `if c < 5 { c++ }` is
	// order-dependent even though its leaf is a pure increment.
	for _, cond := range conds {
		bad := false
		ast.Inspect(cond, func(n ast.Node) bool {
			id, isIdent := n.(*ast.Ident)
			if !isIdent {
				return true
			}
			use := pass.Info.Uses[id]
			for _, acc := range accums {
				if use == acc {
					bad = true
				}
			}
			return true
		})
		if bad {
			return false
		}
	}
	return true
}

// accumTarget resolves an accumulation target expression to its variable
// if the target has integer type; nil otherwise. Plain identifiers only:
// accumulating into an index expression (histogram[k]++) depends on the
// ranged key and stays flagged.
func accumTarget(pass *Pass, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	basic, ok := obj.Type().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	return obj
}

// isSortedKeysLoop recognizes the canonical sorted-iteration idiom: the
// body's statements are all `x = append(x, ...)` into function-local
// slices, and after the loop every such slice passes through a sort
// call (sort.Strings/Ints/Float64s/Slice/SliceStable/Sort/Stable or
// slices.Sort*) within the same function.
func isSortedKeysLoop(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt) bool {
	var targets []types.Object
	for _, s := range rs.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		if _, isBuiltin := pass.Info.Uses[fn].(*types.Builtin); !isBuiltin {
			return false
		}
		if len(call.Args) == 0 || !sameIdent(call.Args[0], as.Lhs[0]) {
			return false
		}
		obj := pass.Info.Uses[lhs]
		if obj == nil {
			return false
		}
		targets = append(targets, obj)
	}
	if len(targets) == 0 {
		return false
	}
	for _, obj := range targets {
		if !sortedAfter(pass, fnBody, rs, obj) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether obj is passed to a recognized sorting
// function somewhere after the range statement in the enclosing body.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		fn := calleeOf(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort":
			switch fn.Name() {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			default:
				return true
			}
		case "slices":
			switch fn.Name() {
			case "Sort", "SortFunc", "SortStableFunc":
			default:
				return true
			}
		default:
			return true
		}
		if id, ok := unparen(call.Args[0]).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return true
	})
	return found
}

// sameIdent reports whether a and b are the same plain identifier.
func sameIdent(a, b ast.Expr) bool {
	ai, aok := unparen(a).(*ast.Ident)
	bi, bok := unparen(b).(*ast.Ident)
	return aok && bok && ai.Name == bi.Name
}
