package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestLayeringFixtures covers both rules of the import DAG: commands
// stay on the public API (allowlisted helpers excepted), and the
// substrates are reachable only from the root package and experiments.
func TestLayeringFixtures(t *testing.T) {
	t.Run("cmd-imports-engine", func(t *testing.T) {
		analysistest.Run(t, "testdata/src", "repro/cmd/badtool", analysis.Layering)
	})
	t.Run("engine-imports-substrate", func(t *testing.T) {
		analysistest.Run(t, "testdata/src", "repro/internal/loadvec", analysis.Layering)
	})
	t.Run("experiments-may-import-substrate", func(t *testing.T) {
		analysistest.Run(t, "testdata/src", "repro/internal/experiments", analysis.Layering)
	})
}
