package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// TestDetrandFixtures covers the flagged cases (math/rand import,
// wall-clock read, unsorted/float/order-guarded map ranges), the three
// recognized idioms (sorted-keys, integer fold, map clear), and the
// suppression-directive semantics including the bare-directive misuse.
func TestDetrandFixtures(t *testing.T) {
	analysistest.Run(t, "testdata/src", "repro/internal/sim", analysis.Detrand)
}
