// Package analysis is the repository's static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools go/analysis
// driver model (the container bakes no x/tools module, so the framework is
// stdlib-only) plus the four kdlint analyzers that prove the repo's
// determinism, hot-path, and layering invariants at compile time:
//
//   - detrand:  no nondeterminism sources in simulation packages — no
//     math/rand, no wall-clock reads, no map iteration whose order can
//     leak into results (sorted-keys and commutative-fold idioms are
//     recognized; residual loops need //kdlint:ordered <reason>).
//   - hotpath:  functions annotated //kd:hotpath contain no alloc-risk
//     constructs (closures, defer/go, make/new, fresh-slice append,
//     implicit interface conversions). scripts/escapecheck.sh is the
//     escape-analysis complement over the same annotation set.
//   - layering: the import DAG respects the architecture — commands and
//     examples build only on the public API plus the presentation
//     helpers, and the application substrates are reachable only from
//     the root package and internal/experiments.
//   - seedflow: every RNG in simulation code is constructed from a
//     derived per-(cell,run) stream, never a bare literal or wall-clock
//     seed.
//
// The suite runs through cmd/kdlint (standalone or as go vet -vettool)
// and through the analysistest-style fixtures in this package's tests.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. The Run function inspects a single package
// (one Pass) and reports diagnostics through the pass; it must not retain
// the pass after returning.
type Analyzer struct {
	Name string // short lower-case identifier, used in output and //kdlint:allow
	Doc  string // one-line description of what the analyzer rejects
	Run  func(*Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Path     string // import path of the package under analysis
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the four kdlint analyzers in their canonical order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Hotpath, Layering, Seedflow}
}

// RunPackage runs the given analyzers over one loaded package and returns
// the surviving diagnostics in file/line order: suppression directives
// (//kdlint:ordered, //kdlint:allow) are applied here, centrally, so every
// analyzer and every driver (standalone, vettool, fixtures) shares one
// suppression semantics. Directive misuse (a suppression with no reason)
// is itself reported, attributed to the pseudo-analyzer "directive".
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}

	sup := collectDirectives(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppresses(d) {
			kept = append(kept, d)
		}
	}
	diags = append(kept, sup.misuse...)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// directive is one parsed //kdlint: suppression comment.
type directive struct {
	file     string
	line     int    // line the comment sits on
	analyzer string // "" means the detrand map-order directive //kdlint:ordered
}

type directiveSet struct {
	dirs   []directive
	misuse []Diagnostic
}

// collectDirectives parses every //kdlint:ordered and //kdlint:allow
// comment in the files. A directive must carry a one-line justification
// after the directive word (ordered) or the analyzer name (allow); a bare
// directive is reported instead of honored — an unexplained suppression
// is exactly the kind of silent exception the suite exists to reject.
func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	s := &directiveSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, "//kdlint:") {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(text, "//kdlint:")
				word, arg, _ := strings.Cut(rest, " ")
				arg = strings.TrimSpace(arg)
				switch word {
				case "ordered":
					if arg == "" {
						s.misuse = append(s.misuse, Diagnostic{
							Analyzer: "directive", Pos: pos,
							Message: "//kdlint:ordered requires a justification: //kdlint:ordered <reason>",
						})
						continue
					}
					s.dirs = append(s.dirs, directive{file: pos.Filename, line: pos.Line, analyzer: "detrand"})
				case "allow":
					name, reason, _ := strings.Cut(arg, " ")
					if name == "" || strings.TrimSpace(reason) == "" {
						s.misuse = append(s.misuse, Diagnostic{
							Analyzer: "directive", Pos: pos,
							Message: "//kdlint:allow requires an analyzer and a justification: //kdlint:allow <analyzer> <reason>",
						})
						continue
					}
					s.dirs = append(s.dirs, directive{file: pos.Filename, line: pos.Line, analyzer: name})
				default:
					s.misuse = append(s.misuse, Diagnostic{
						Analyzer: "directive", Pos: pos,
						Message: fmt.Sprintf("unknown kdlint directive %q (want ordered or allow)", word),
					})
				}
			}
		}
	}
	return s
}

// suppresses reports whether a directive covers the diagnostic: a comment
// on the diagnostic's own line (trailing comment) or on the line directly
// above it (comment-above-statement style), naming the right analyzer.
func (s *directiveSet) suppresses(d Diagnostic) bool {
	for _, dir := range s.dirs {
		if dir.analyzer != d.Analyzer || dir.file != d.Pos.Filename {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// calleeOf resolves the called function of a call expression to its
// *types.Func (package-level functions and methods), or nil for builtins,
// function-typed variables, and type conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function path.name.
func isPkgFunc(fn *types.Func, path, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == path && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// unparen strips any number of enclosing parentheses (ast.Unparen needs a
// newer language version than go.mod declares).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
