// Package xrand provides a fast, deterministic pseudo-random number
// generator and the sampling primitives used throughout the repository.
//
// The paper ("A Generalization of Multiple Choice Balls-into-Bins: Tight
// Bounds", Park, PODC'11) only states that "a pseudo random number generator
// is used to sample d random bins in each round"; this package is the
// concrete substitute. It implements xoshiro256** seeded through splitmix64,
// which has a 2^256-1 period and passes the standard statistical batteries,
// and layers unbiased bounded integers, permutations and the variate
// generators needed by the workload models on top of it.
//
// Every generator is explicitly seeded, so any experiment in this repository
// can be reproduced bit-for-bit from its root seed. Generators are NOT safe
// for concurrent use; derive one per goroutine with NewStream.
package xrand

import "math/bits"

// Rand is a deterministic pseudo-random number generator (xoshiro256**).
// The zero value is not usable; construct with New or NewStream.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the given state and returns the next splitmix64 output.
// It is the recommended seeding procedure for the xoshiro family: it
// guarantees the xoshiro state is never all-zero and decorrelates similar
// seeds.
//
//kd:hotpath
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the state derived from seed.
func (r *Rand) Seed(seed uint64) {
	st := seed
	r.s0 = splitmix64(&st)
	r.s1 = splitmix64(&st)
	r.s2 = splitmix64(&st)
	r.s3 = splitmix64(&st)
}

// NewStream returns the id-th of 2^64 independent generators derived from a
// root seed. Streams with distinct (seed, id) pairs are statistically
// independent for all practical purposes because the combined 128 bits are
// diffused through splitmix64 before seeding.
func NewStream(seed, id uint64) *Rand {
	st := seed
	mixed := splitmix64(&st) ^ (id * 0xda942042e4dd58b5)
	return New(splitmix64(&mixed))
}

// Split derives the id-th child generator from r's CURRENT state without
// advancing r: the parent's 256-bit state is folded to one word, combined
// with id, and diffused through splitmix64 exactly as NewStream diffuses
// (seed, id). Splitting at different points of the parent's stream therefore
// yields unrelated children, and the same (parent state, id) always yields
// the same child — which is what lets coupled experiments run several
// replicas (e.g. a serial process and a sharded one, or divergence-test
// twins) from one base stream without the replicas sharing any draws.
//
// Note the sharded superstep engine itself does NOT use Split: its workers
// are stream-free by design (all randomness is pre-drawn serially; per-ball
// tie lotteries come from keyed hashes of a round nonce), which is what
// makes sharded results independent of the worker count.
func (r *Rand) Split(id uint64) *Rand {
	st := r.s0 ^ bits.RotateLeft64(r.s1, 13) ^ bits.RotateLeft64(r.s2, 29) ^ bits.RotateLeft64(r.s3, 43)
	mixed := splitmix64(&st) ^ (id * 0xda942042e4dd58b5)
	return New(splitmix64(&mixed))
}

// Uint64 returns a uniformly distributed 64-bit value.
//
//kd:hotpath
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Uint64n returns a uniformly distributed value in [0, n). It panics if
// n == 0. The implementation is Lemire's nearly-divisionless bounded
// generation, which is unbiased.
//
//kd:hotpath
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
//
//kd:hotpath
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a non-negative 63-bit value, mirroring math/rand.Int63.
//
//kd:hotpath
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly distributed value in [0, 1) with 53 random
// bits of mantissa.
//
//kd:hotpath
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool returns true with probability 1/2.
//
//kd:hotpath
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0,1]).
//
//kd:hotpath
func (r *Rand) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher–Yates). It panics if n < 0.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("xrand: Shuffle with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// FillIntn fills dst with independent uniform draws from [0, n). This is the
// hot-path primitive used to sample the d candidate bins of a round without
// per-round allocation. The batched loop inlines Lemire's nearly-divisionless
// bounded generation (Uint64n cannot be inlined by the compiler because of
// its rejection loop) and produces exactly the same draw sequence as
// repeated Intn calls, so batching never changes a seeded experiment.
//
//kd:hotpath
func (r *Rand) FillIntn(dst []int, n int) {
	if n <= 0 {
		panic("xrand: FillIntn with n <= 0")
	}
	un := uint64(n)
	for i := range dst {
		hi, lo := bits.Mul64(r.Uint64(), un)
		if lo < un {
			thresh := -un % un
			for lo < thresh {
				hi, lo = bits.Mul64(r.Uint64(), un)
			}
		}
		dst[i] = int(hi)
	}
}

// FillRounds bulk-draws the fixed round prologue of len(nonces) rounds in
// one call: for each round, d bounded samples in [0, n) followed by one raw
// 64-bit nonce. The draw sequence is exactly FillIntn(d samples) then
// Uint64() per round, so a block engine that pre-draws whole supersteps
// through FillRounds consumes the stream identically to the per-round
// serial path — pre-drawing can never change a seeded experiment.
//
// This is the superstep hot path: the generator state lives in locals for
// the whole block, and the inner loop is unrolled four wide with a single
// Lemire rejection test per group — four raw words are generated and
// width-reduced, and only when one of the four low products falls below n
// (probability ~4n/2^64) does the group rewind and replay through the exact
// serial rejection loop. len(samples) must equal len(nonces)*d.
//
//kd:hotpath
func (r *Rand) FillRounds(samples []int, nonces []uint64, d, n int) {
	if n <= 0 {
		panic("xrand: FillRounds with n <= 0")
	}
	if d < 0 || len(samples) != len(nonces)*d {
		panic("xrand: FillRounds buffer shape mismatch")
	}
	un := uint64(n)
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for ri := range nonces {
		dst := samples[ri*d : (ri+1)*d]
		i := 0
		for ; i+4 <= d; i += 4 {
			// Save the state so a (rare) rejection can rewind and replay
			// these four slots with exact serial semantics.
			t0, t1, t2, t3 := s0, s1, s2, s3
			w0 := bits.RotateLeft64(s1*5, 7) * 9
			t := s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = bits.RotateLeft64(s3, 45)
			w1 := bits.RotateLeft64(s1*5, 7) * 9
			t = s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = bits.RotateLeft64(s3, 45)
			w2 := bits.RotateLeft64(s1*5, 7) * 9
			t = s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = bits.RotateLeft64(s3, 45)
			w3 := bits.RotateLeft64(s1*5, 7) * 9
			t = s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = bits.RotateLeft64(s3, 45)
			hi0, lo0 := bits.Mul64(w0, un)
			hi1, lo1 := bits.Mul64(w1, un)
			hi2, lo2 := bits.Mul64(w2, un)
			hi3, lo3 := bits.Mul64(w3, un)
			if lo0 >= un && lo1 >= un && lo2 >= un && lo3 >= un {
				// No draw can be rejected (lo >= un >= thresh): accept all
				// four. This is the overwhelmingly common case.
				dst[i] = int(hi0)
				dst[i+1] = int(hi1)
				dst[i+2] = int(hi2)
				dst[i+3] = int(hi3)
				continue
			}
			// Rewind and replay the group through the canonical rejection
			// loop so the word stream stays bit-identical to FillIntn.
			s0, s1, s2, s3 = t0, t1, t2, t3
			for j := i; j < i+4; j++ {
				w := bits.RotateLeft64(s1*5, 7) * 9
				t = s1 << 17
				s2 ^= s0
				s3 ^= s1
				s1 ^= s2
				s0 ^= s3
				s2 ^= t
				s3 = bits.RotateLeft64(s3, 45)
				hi, lo := bits.Mul64(w, un)
				if lo < un {
					thresh := -un % un
					for lo < thresh {
						w = bits.RotateLeft64(s1*5, 7) * 9
						t = s1 << 17
						s2 ^= s0
						s3 ^= s1
						s1 ^= s2
						s0 ^= s3
						s2 ^= t
						s3 = bits.RotateLeft64(s3, 45)
						hi, lo = bits.Mul64(w, un)
					}
				}
				dst[j] = int(hi)
			}
		}
		// Tail (d % 4 slots): the same canonical per-slot generation on the
		// local state — no state round-trips, which matters for tiny d.
		for ; i < d; i++ {
			w := bits.RotateLeft64(s1*5, 7) * 9
			t := s1 << 17
			s2 ^= s0
			s3 ^= s1
			s1 ^= s2
			s0 ^= s3
			s2 ^= t
			s3 = bits.RotateLeft64(s3, 45)
			hi, lo := bits.Mul64(w, un)
			if lo < un {
				thresh := -un % un
				for lo < thresh {
					w = bits.RotateLeft64(s1*5, 7) * 9
					t = s1 << 17
					s2 ^= s0
					s3 ^= s1
					s1 ^= s2
					s0 ^= s3
					s2 ^= t
					s3 = bits.RotateLeft64(s3, 45)
					hi, lo = bits.Mul64(w, un)
				}
			}
			dst[i] = int(hi)
		}
		nonces[ri] = bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// SampleWithoutReplacement returns m distinct uniform values from [0, n)
// using Floyd's algorithm. It panics if m > n or m < 0. The result order is
// randomized.
func (r *Rand) SampleWithoutReplacement(n, m int) []int {
	if m < 0 || m > n {
		panic("xrand: SampleWithoutReplacement with m out of range")
	}
	chosen := make(map[int]struct{}, m)
	out := make([]int, 0, m)
	for j := n - m; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
