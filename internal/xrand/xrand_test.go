package xrand

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: generators with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestSeedsProduceDistinctStreams(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical 64-bit draws out of 1000", same)
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("draw %d after reseed: got %d, want %d", i, got, first[i])
		}
	}
}

func TestNewStreamIndependence(t *testing.T) {
	s0 := NewStream(99, 0)
	s1 := NewStream(99, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if s0.Uint64() == s1.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams 0 and 1 of seed 99 collided %d times", same)
	}
}

func TestNewStreamDeterministic(t *testing.T) {
	a := NewStream(5, 17)
	b := NewStream(5, 17)
	if a.Uint64() != b.Uint64() {
		t.Fatal("NewStream is not deterministic for equal (seed, id)")
	}
}

// TestSplitProperties: Split must be a pure function of (parent state, id)
// — deterministic, non-advancing, and pairwise decorrelated across ids and
// from the parent's own stream.
func TestSplitProperties(t *testing.T) {
	parent := New(1234)
	parent.Uint64() // advance to a mid-stream state
	a1 := parent.Split(7)
	a2 := parent.Split(7)
	if a1.Uint64() != a2.Uint64() {
		t.Fatal("Split is not deterministic for equal (state, id)")
	}
	b := parent.Split(8)
	same := 0
	aa, bb := parent.Split(7), b
	for i := 0; i < 1000; i++ {
		if aa.Uint64() == bb.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams 7 and 8 collided %d times", same)
	}
	// Splitting must not advance the parent.
	ref := New(1234)
	ref.Uint64()
	for i := 0; i < 16; i++ {
		if parent.Uint64() != ref.Uint64() {
			t.Fatalf("draw %d: Split advanced the parent stream", i)
		}
	}
	// A child must not replay the parent's continuation.
	parent2 := New(1234)
	parent2.Uint64()
	child := parent2.Split(0)
	same = 0
	for i := 0; i < 1000; i++ {
		if child.Uint64() == parent2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split child collided with parent continuation %d times", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(nRaw uint64) bool {
		n := nRaw%1_000_000 + 1
		v := r.Uint64n(n)
		return v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d) did not panic", n)
				}
			}()
			New(1).Intn(n)
		}()
	}
}

func TestIntnUniformityChiSquare(t *testing.T) {
	// Chi-square goodness of fit over 16 buckets. With 15 degrees of
	// freedom the 0.999 quantile is 37.70; a correct generator fails with
	// probability 0.1%, and the seed is fixed so the test is deterministic.
	const buckets = 16
	const draws = 160000
	r := New(2024)
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		diff := float64(c) - expected
		chi2 += diff * diff / expected
	}
	if chi2 > 37.70 {
		t.Fatalf("chi-square statistic %.2f exceeds 0.999 quantile 37.70; counts=%v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(12)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += r.Float64()
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	for _, n := range []int{0, 1, 2, 7, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	// The first element of Perm(4) should be uniform over {0,1,2,3}.
	r := New(6)
	const draws = 40000
	var counts [4]int
	for i := 0; i < draws; i++ {
		counts[r.Perm(4)[0]]++
	}
	for v, c := range counts {
		ratio := float64(c) / (draws / 4.0)
		if ratio < 0.95 || ratio > 1.05 {
			t.Fatalf("Perm(4)[0]=%d frequency ratio %.3f outside [0.95, 1.05]", v, ratio)
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(8)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8, 9}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("Shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestShuffleZeroAndOne(t *testing.T) {
	r := New(9)
	r.Shuffle(0, func(i, j int) { t.Fatal("swap called for n=0") })
	r.Shuffle(1, func(i, j int) { t.Fatal("swap called for n=1") })
}

func TestFillIntn(t *testing.T) {
	r := New(10)
	buf := make([]int, 1024)
	r.FillIntn(buf, 7)
	seen := make(map[int]bool)
	for _, v := range buf {
		if v < 0 || v >= 7 {
			t.Fatalf("FillIntn produced out-of-range value %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("FillIntn over 1024 draws hit only %d of 7 values", len(seen))
	}
}

// TestFillIntnMatchesIntn pins the batching contract: the inlined loop must
// produce exactly the draw sequence of repeated Intn calls, so switching a
// caller to FillIntn can never change a seeded experiment.
func TestFillIntnMatchesIntn(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 1000, 1 << 20} {
		a, b := New(99), New(99)
		buf := make([]int, 257)
		a.FillIntn(buf, n)
		for i, got := range buf {
			if want := b.Intn(n); got != want {
				t.Fatalf("n=%d: FillIntn[%d] = %d, Intn sequence gives %d", n, i, got, want)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: generators diverged after batch", n)
		}
	}
}

func TestFillIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FillIntn(dst, 0) did not panic")
		}
	}()
	New(1).FillIntn(make([]int, 4), 0)
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(13)
	for _, tc := range []struct{ n, m int }{{10, 0}, {10, 1}, {10, 5}, {10, 10}, {100, 37}} {
		s := r.SampleWithoutReplacement(tc.n, tc.m)
		if len(s) != tc.m {
			t.Fatalf("n=%d m=%d: got %d samples", tc.n, tc.m, len(s))
		}
		seen := make(map[int]bool, tc.m)
		for _, v := range s {
			if v < 0 || v >= tc.n {
				t.Fatalf("n=%d m=%d: out-of-range sample %d", tc.n, tc.m, v)
			}
			if seen[v] {
				t.Fatalf("n=%d m=%d: duplicate sample %d", tc.n, tc.m, v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleWithoutReplacement(3, 4) did not panic")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}

func TestSampleWithoutReplacementCoverage(t *testing.T) {
	// Every element should be selected roughly equally often.
	r := New(14)
	const draws = 20000
	counts := make([]int, 10)
	for i := 0; i < draws; i++ {
		for _, v := range r.SampleWithoutReplacement(10, 3) {
			counts[v]++
		}
	}
	want := float64(draws) * 3 / 10
	for v, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("element %d chosen %d times, want about %.0f", v, c, want)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(15)
	const draws = 100000
	trues := 0
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	ratio := float64(trues) / draws
	if ratio < 0.49 || ratio > 0.51 {
		t.Fatalf("Bool true-ratio %.4f outside [0.49, 0.51]", ratio)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(16)
	if r.Bernoulli(0) {
		t.Fatal("Bernoulli(0) returned true")
	}
	if !r.Bernoulli(1) {
		t.Fatal("Bernoulli(1) returned false")
	}
	if r.Bernoulli(-0.5) {
		t.Fatal("Bernoulli(-0.5) returned true")
	}
	if !r.Bernoulli(1.5) {
		t.Fatal("Bernoulli(1.5) returned false")
	}
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	ratio := float64(hits) / draws
	if math.Abs(ratio-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) hit ratio %.4f", ratio)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative value %d", v)
		}
	}
}

func TestUint64nSmallBoundsExactCoverage(t *testing.T) {
	r := New(18)
	for n := uint64(1); n <= 8; n++ {
		seen := make(map[uint64]bool)
		for i := 0; i < 2000; i++ {
			seen[r.Uint64n(n)] = true
		}
		if uint64(len(seen)) != n {
			t.Fatalf("Uint64n(%d) hit %d distinct values", n, len(seen))
		}
	}
}

// TestFillRoundsMatchesSerial pins the superstep contract: FillRounds must
// consume the stream exactly as FillIntn(d)+Uint64 per round, for every
// shape — including d below the unroll width, d not a multiple of it, and
// d = 0 — so block pre-drawing can never change a seeded experiment.
func TestFillRoundsMatchesSerial(t *testing.T) {
	for _, d := range []int{0, 1, 2, 3, 4, 5, 7, 8, 31, 64} {
		for _, n := range []int{1, 7, 1000, 1 << 20} {
			const rounds, seed = 9, 12345
			a, b := New(seed), New(seed)
			gotS := make([]int, rounds*d)
			gotN := make([]uint64, rounds)
			a.FillRounds(gotS, gotN, d, n)
			wantS := make([]int, rounds*d)
			wantN := make([]uint64, rounds)
			for r := 0; r < rounds; r++ {
				b.FillIntn(wantS[r*d:(r+1)*d], n)
				wantN[r] = b.Uint64()
			}
			if !reflect.DeepEqual(gotS, wantS) || !reflect.DeepEqual(gotN, wantN) {
				t.Fatalf("d=%d n=%d: FillRounds diverged from the serial prologue", d, n)
			}
			// The generators must land in the same state: the next word of
			// both streams agrees.
			if a.Uint64() != b.Uint64() {
				t.Fatalf("d=%d n=%d: generator states diverged after FillRounds", d, n)
			}
		}
	}
}

// TestFillRoundsRejectionHeavy forces the Lemire rejection path (a bound
// just above 2^63 rejects roughly half of all raw words), so the unrolled
// fill's rewind-and-replay branch runs constantly — and must still match
// the serial stream word for word.
func TestFillRoundsRejectionHeavy(t *testing.T) {
	const d, rounds, seed = 10, 40, 99
	n := 1<<62 + 3<<60 + 12345 // ~2^64 mod n ≈ 2^63: heavy rejection
	a, b := New(seed), New(seed)
	gotS := make([]int, rounds*d)
	gotN := make([]uint64, rounds)
	a.FillRounds(gotS, gotN, d, n)
	wantS := make([]int, rounds*d)
	wantN := make([]uint64, rounds)
	for r := 0; r < rounds; r++ {
		b.FillIntn(wantS[r*d:(r+1)*d], n)
		wantN[r] = b.Uint64()
	}
	if !reflect.DeepEqual(gotS, wantS) || !reflect.DeepEqual(gotN, wantN) {
		t.Fatal("rejection-heavy FillRounds diverged from the serial prologue")
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("generator states diverged after rejection-heavy FillRounds")
	}
}

// TestFillRoundsPanics: invalid bounds and mismatched buffer shapes are
// caller bugs and must fail loudly.
func TestFillRoundsPanics(t *testing.T) {
	mustPanicF := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanicF("n=0", func() { New(1).FillRounds(make([]int, 4), make([]uint64, 2), 2, 0) })
	mustPanicF("shape mismatch", func() { New(1).FillRounds(make([]int, 3), make([]uint64, 2), 2, 10) })
	mustPanicF("pipelined n=0", func() {
		p := NewPipelined(New(1), 0, 0)
		defer p.Close()
		p.FillRounds(make([]int, 4), make([]uint64, 2), 2, 0)
	})
}

// TestPipelinedFillRoundsMatchesRand extends the pipelined bit-identity
// contract to the superstep fill.
func TestPipelinedFillRoundsMatchesRand(t *testing.T) {
	const d, rounds, n, seed = 6, 50, 997, 4242
	ref := New(seed)
	p := NewPipelined(New(seed), 64, 2)
	defer p.Close()
	wantS := make([]int, rounds*d)
	wantN := make([]uint64, rounds)
	ref.FillRounds(wantS, wantN, d, n)
	gotS := make([]int, rounds*d)
	gotN := make([]uint64, rounds)
	p.FillRounds(gotS, gotN, d, n)
	if !reflect.DeepEqual(gotS, wantS) || !reflect.DeepEqual(gotN, wantN) {
		t.Fatal("Pipelined.FillRounds diverged from Rand.FillRounds")
	}
}

// TestFillRoundsAllocationFree: the superstep fill is on the hot path and
// must not allocate.
func TestFillRoundsAllocationFree(t *testing.T) {
	r := New(7)
	samples := make([]int, 16*64)
	nonces := make([]uint64, 16)
	if avg := testing.AllocsPerRun(100, func() {
		r.FillRounds(samples, nonces, 64, 100000)
	}); avg != 0 {
		t.Fatalf("FillRounds allocated %v per call, want 0", avg)
	}
}
