package xrand

import (
	"testing"
)

// TestPipelinedMatchesRand is the engine's bit-identity property: a
// Pipelined source over Rand(seed) must produce exactly the value sequence
// of Rand(seed) itself, across every derived operation and across block
// boundaries (the block size is set far below the draw count).
func TestPipelinedMatchesRand(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0xdeadbeef} {
		ref := New(seed)
		p := NewPipelined(New(seed), 64, 2)
		defer p.Close()

		dstR := make([]int, 37)
		dstP := make([]int, 37)
		permR := make([]int, 19)
		permP := make([]int, 19)
		for step := 0; step < 500; step++ {
			switch step % 7 {
			case 0:
				if a, b := ref.Uint64(), p.Uint64(); a != b {
					t.Fatalf("seed %d step %d: Uint64 %d != %d", seed, step, a, b)
				}
			case 1:
				if a, b := ref.Intn(1000), p.Intn(1000); a != b {
					t.Fatalf("seed %d step %d: Intn %d != %d", seed, step, a, b)
				}
			case 2:
				if a, b := ref.Float64(), p.Float64(); a != b {
					t.Fatalf("seed %d step %d: Float64 %v != %v", seed, step, a, b)
				}
			case 3:
				if a, b := ref.Bool(), p.Bool(); a != b {
					t.Fatalf("seed %d step %d: Bool %v != %v", seed, step, a, b)
				}
			case 4:
				if a, b := ref.Bernoulli(0.3), p.Bernoulli(0.3); a != b {
					t.Fatalf("seed %d step %d: Bernoulli %v != %v", seed, step, a, b)
				}
			case 5:
				ref.FillIntn(dstR, 97)
				p.FillIntn(dstP, 97)
				for i := range dstR {
					if dstR[i] != dstP[i] {
						t.Fatalf("seed %d step %d: FillIntn[%d] %d != %d", seed, step, i, dstR[i], dstP[i])
					}
				}
			case 6:
				for i := range permR {
					permR[i], permP[i] = i, i
				}
				ref.Shuffle(len(permR), func(i, j int) { permR[i], permR[j] = permR[j], permR[i] })
				p.Shuffle(len(permP), func(i, j int) { permP[i], permP[j] = permP[j], permP[i] })
				for i := range permR {
					if permR[i] != permP[i] {
						t.Fatalf("seed %d step %d: Shuffle[%d] %d != %d", seed, step, i, permR[i], permP[i])
					}
				}
			}
		}
	}
}

// TestPipelinedSmallBounds exercises the Lemire rejection path (tiny n
// makes rejections more likely relative to draws) across block boundaries.
func TestPipelinedSmallBounds(t *testing.T) {
	ref := New(7)
	p := NewPipelined(New(7), 16, 2)
	defer p.Close()
	dstR := make([]int, 5)
	dstP := make([]int, 5)
	for i := 0; i < 2000; i++ {
		n := i%3 + 1
		if a, b := ref.Uint64n(uint64(n)), p.Uint64n(uint64(n)); a != b {
			t.Fatalf("iter %d: Uint64n(%d) %d != %d", i, n, a, b)
		}
		ref.FillIntn(dstR, n)
		p.FillIntn(dstP, n)
		for j := range dstR {
			if dstR[j] != dstP[j] {
				t.Fatalf("iter %d: FillIntn(%d)[%d] %d != %d", i, n, j, dstR[j], dstP[j])
			}
		}
	}
}

func TestPipelinedCloseIdempotent(t *testing.T) {
	p := NewPipelined(New(1), 32, 2)
	_ = p.Uint64()
	p.Close()
	p.Close() // must not panic or deadlock
}

func TestPipelinedUseAfterCloseDrainsThenPanics(t *testing.T) {
	p := NewPipelined(New(1), 8, 2)
	p.Close()
	// Blocks already published may still be consumed; eventually the source
	// must panic rather than hang.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic after exhausting a closed Pipelined")
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = p.Uint64()
	}
}

func TestPipelinedPanicsMirrorRand(t *testing.T) {
	p := NewPipelined(New(1), 8, 2)
	defer p.Close()
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Uint64n(0)", func() { p.Uint64n(0) })
	mustPanic("Intn(0)", func() { p.Intn(0) })
	mustPanic("FillIntn n=0", func() { p.FillIntn(make([]int, 1), 0) })
	mustPanic("Shuffle(-1)", func() { p.Shuffle(-1, func(i, j int) {}) })
}

// TestPipelinedAllocFree pins that the steady-state consume path performs
// no heap allocations (blocks are recycled through the free list).
func TestPipelinedAllocFree(t *testing.T) {
	p := NewPipelined(New(3), 256, 3)
	defer p.Close()
	dst := make([]int, 64)
	p.FillIntn(dst, 1000) // warm: first blocks in flight
	if avg := testing.AllocsPerRun(200, func() {
		p.FillIntn(dst, 1000)
		_ = p.Uint64()
	}); avg != 0 {
		t.Fatalf("%v allocs per op, want 0", avg)
	}
}
