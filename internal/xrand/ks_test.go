package xrand

// Kolmogorov–Smirnov shape tests for the variate generators, using the
// stats substrate's KS machinery. Seeds are fixed, so the tests are
// deterministic; the critical values are at alpha = 0.001 to keep a large
// safety margin over sampling noise.

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func ksCheck(t *testing.T, name string, sample []float64, cdf func(float64) float64) {
	t.Helper()
	d := stats.KolmogorovSmirnov(sample, cdf)
	crit := stats.KSCriticalValue(len(sample), 0.001)
	if d > crit {
		t.Fatalf("%s: KS statistic %.5f exceeds critical value %.5f (n=%d)", name, d, crit, len(sample))
	}
}

func TestKSUniform(t *testing.T) {
	r := New(101)
	sample := make([]float64, 20000)
	for i := range sample {
		sample[i] = r.Float64()
	}
	ksCheck(t, "Float64", sample, func(x float64) float64 {
		return math.Min(1, math.Max(0, x))
	})
}

func TestKSExponential(t *testing.T) {
	r := New(102)
	const mean = 2.0
	sample := make([]float64, 20000)
	for i := range sample {
		sample[i] = r.Exponential(mean)
	}
	ksCheck(t, "Exponential", sample, func(x float64) float64 {
		if x < 0 {
			return 0
		}
		return 1 - math.Exp(-x/mean)
	})
}

func TestKSNormal(t *testing.T) {
	r := New(103)
	sample := make([]float64, 20000)
	for i := range sample {
		sample[i] = r.NormFloat64()
	}
	ksCheck(t, "NormFloat64", sample, func(x float64) float64 {
		return 0.5 * math.Erfc(-x/math.Sqrt2)
	})
}

func TestKSPareto(t *testing.T) {
	r := New(104)
	const alpha, xm = 2.5, 1.5
	sample := make([]float64, 20000)
	for i := range sample {
		sample[i] = r.Pareto(alpha, xm)
	}
	ksCheck(t, "Pareto", sample, func(x float64) float64 {
		if x < xm {
			return 0
		}
		return 1 - math.Pow(xm/x, alpha)
	})
}
