package xrand

import (
	"math"
	"testing"
)

func TestExponentialMoments(t *testing.T) {
	r := New(21)
	const draws = 200000
	const mean = 3.5
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.Exponential(mean)
		if v < 0 {
			t.Fatalf("Exponential returned negative value %v", v)
		}
		sum += v
		sumSq += v * v
	}
	m := sum / draws
	if math.Abs(m-mean)/mean > 0.02 {
		t.Fatalf("Exponential mean %.4f, want about %.1f", m, mean)
	}
	variance := sumSq/draws - m*m
	if math.Abs(variance-mean*mean)/(mean*mean) > 0.05 {
		t.Fatalf("Exponential variance %.4f, want about %.2f", variance, mean*mean)
	}
}

func TestExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	New(1).Exponential(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(22)
	const draws = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("NormFloat64 mean %.4f, want about 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("NormFloat64 variance %.4f, want about 1", variance)
	}
}

func TestParetoProperties(t *testing.T) {
	r := New(23)
	const alpha, xm = 3.0, 2.0
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		v := r.Pareto(alpha, xm)
		if v < xm {
			t.Fatalf("Pareto sample %v below scale %v", v, xm)
		}
		sum += v
	}
	wantMean := alpha * xm / (alpha - 1)
	mean := sum / draws
	if math.Abs(mean-wantMean)/wantMean > 0.03 {
		t.Fatalf("Pareto mean %.4f, want about %.4f", mean, wantMean)
	}
}

func TestParetoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto(0, 1) did not panic")
		}
	}()
	New(1).Pareto(0, 1)
}

func TestPoissonMoments(t *testing.T) {
	r := New(24)
	for _, mean := range []float64{0.5, 3, 12, 30, 80, 250} {
		const draws = 60000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			v := float64(r.Poisson(mean))
			if v < 0 {
				t.Fatalf("Poisson(%v) returned negative %v", mean, v)
			}
			sum += v
			sumSq += v * v
		}
		m := sum / draws
		variance := sumSq/draws - m*m
		if math.Abs(m-mean)/mean > 0.03 {
			t.Fatalf("Poisson(%v) mean %.4f", mean, m)
		}
		if math.Abs(variance-mean)/mean > 0.06 {
			t.Fatalf("Poisson(%v) variance %.4f", mean, variance)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := New(25)
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", v)
	}
}

func TestPoissonPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(-1) did not panic")
		}
	}()
	New(1).Poisson(-1)
}

func TestBinomialMoments(t *testing.T) {
	r := New(26)
	cases := []struct {
		n int
		p float64
	}{
		{10, 0.5}, {64, 0.1}, {500, 0.02}, {500, 0.4}, {2000, 0.001},
	}
	for _, tc := range cases {
		const draws = 40000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < draws; i++ {
			v := r.Binomial(tc.n, tc.p)
			if v < 0 || v > tc.n {
				t.Fatalf("Binomial(%d, %v) out of range: %d", tc.n, tc.p, v)
			}
			f := float64(v)
			sum += f
			sumSq += f * f
		}
		wantMean := float64(tc.n) * tc.p
		m := sum / draws
		if math.Abs(m-wantMean) > 0.05*wantMean+0.05 {
			t.Fatalf("Binomial(%d, %v) mean %.4f, want about %.4f", tc.n, tc.p, m, wantMean)
		}
		wantVar := wantMean * (1 - tc.p)
		variance := sumSq/draws - m*m
		if math.Abs(variance-wantVar) > 0.08*wantVar+0.08 {
			t.Fatalf("Binomial(%d, %v) variance %.4f, want about %.4f", tc.n, tc.p, variance, wantVar)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	r := New(27)
	if v := r.Binomial(0, 0.5); v != 0 {
		t.Fatalf("Binomial(0, .5) = %d", v)
	}
	if v := r.Binomial(100, 0); v != 0 {
		t.Fatalf("Binomial(100, 0) = %d", v)
	}
	if v := r.Binomial(100, 1); v != 100 {
		t.Fatalf("Binomial(100, 1) = %d", v)
	}
}

func TestBinomialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Binomial(-1, .5) did not panic")
		}
	}()
	New(1).Binomial(-1, 0.5)
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(28)
	const imax = 999
	z := NewZipf(r, 1.5, 1, imax)
	const draws = 100000
	counts := make([]int, imax+1)
	for i := 0; i < draws; i++ {
		v := z.Uint64()
		if v > imax {
			t.Fatalf("Zipf sample %d exceeds imax %d", v, imax)
		}
		counts[v]++
	}
	// Rank 0 must dominate, and frequencies should decay.
	if counts[0] <= counts[1] || counts[1] <= counts[10] {
		t.Fatalf("Zipf frequencies not decaying: c0=%d c1=%d c10=%d", counts[0], counts[1], counts[10])
	}
	// P(X=0) for s=1.5, v=1 is 1/zeta-ish; just require it is substantial.
	if float64(counts[0])/draws < 0.3 {
		t.Fatalf("Zipf P(0) = %.3f, suspiciously small", float64(counts[0])/draws)
	}
}

func TestZipfPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf with s=1 did not panic")
		}
	}()
	NewZipf(New(1), 1.0, 1, 10)
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(196608)
	}
	_ = sink
}

func BenchmarkExponential(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Exponential(1)
	}
	_ = sink
}
