package xrand

// This file implements the within-run pipelined random engine: a Pipelined
// source runs a producer goroutine that pre-fills fixed-size blocks of raw
// 64-bit outputs from an underlying stream, in stream order, while the
// consumer (the allocation round loop) derives samples from the buffered
// words. Every derived operation (bounded integers, floats, shuffles)
// replicates Rand's logic over the identical word sequence, so a Pipelined
// source is bit-identical to its underlying Rand by construction — the
// property TestPipelinedMatchesRand pins. The handoff uses channels, so the
// producer/consumer ordering is a happens-before edge and the engine is
// clean under the race detector.
//
// Blocks are recycled through a free list, so the steady state performs
// zero allocations. Close releases the producer goroutine; a Pipelined
// source must not be used after Close.

import (
	"math/bits"
	"sync"
)

// Source is the random-stream interface the allocation engine consumes.
// Both *Rand and *Pipelined implement it; for the same underlying seed the
// two produce identical value sequences, so swapping one for the other
// never changes a seeded experiment.
type Source interface {
	Uint64() uint64
	Uint64n(n uint64) uint64
	Intn(n int) int
	Float64() float64
	Bool() bool
	Bernoulli(p float64) bool
	Shuffle(n int, swap func(i, j int))
	FillIntn(dst []int, n int)
	FillRounds(samples []int, nonces []uint64, d, n int)
}

var (
	_ Source = (*Rand)(nil)
	_ Source = (*Pipelined)(nil)
)

// DefaultPipelineBlock is the default number of 64-bit words per prefetch
// block (16 KiB per block).
const DefaultPipelineBlock = 2048

// defaultPipelineDepth is the default number of blocks in flight.
const defaultPipelineDepth = 3

// Pipelined is a Source whose raw 64-bit words are produced ahead of time
// by a background goroutine. Not safe for concurrent use (like Rand);
// the concurrency is internal and ordered.
type Pipelined struct {
	buf  []uint64
	pos  int
	full chan []uint64
	free chan []uint64
	done chan struct{}
	once sync.Once
}

// NewPipelined wraps src in a pipelined prefetcher with the given block
// size (words; <= 0 means DefaultPipelineBlock) and pipeline depth (blocks
// in flight; < 2 means the default). src must not be used elsewhere while
// the Pipelined source is live — the producer goroutine owns it. Call Close
// when done, or the producer goroutine leaks.
func NewPipelined(src Source, blockWords, depth int) *Pipelined {
	if blockWords <= 0 {
		blockWords = DefaultPipelineBlock
	}
	if depth < 2 {
		depth = defaultPipelineDepth
	}
	p := &Pipelined{
		full: make(chan []uint64, depth),
		free: make(chan []uint64, depth),
		done: make(chan struct{}),
	}
	for i := 0; i < depth; i++ {
		p.free <- make([]uint64, blockWords)
	}
	go p.produce(src)
	return p
}

// produce is the producer loop: take a free block, fill it with the next
// words of the stream, publish it. Close unblocks both waits.
func (p *Pipelined) produce(src Source) {
	for {
		var b []uint64
		select {
		case <-p.done:
			return
		case b = <-p.free:
		}
		for i := range b {
			b[i] = src.Uint64()
		}
		select {
		case <-p.done:
			return
		case p.full <- b:
		}
	}
}

// Close stops the producer goroutine. Idempotent; the source must not be
// used after Close.
func (p *Pipelined) Close() {
	p.once.Do(func() { close(p.done) })
}

// advance recycles the exhausted block and takes the next one, preferring
// already-published blocks over the closed signal so in-flight data is
// never lost to a racing Close.
func (p *Pipelined) advance() {
	if p.buf != nil {
		p.free <- p.buf
		p.buf = nil
	}
	select {
	case b := <-p.full:
		p.buf, p.pos = b, 0
		return
	default:
	}
	select {
	case b := <-p.full:
		p.buf, p.pos = b, 0
	case <-p.done:
		panic("xrand: Pipelined used after Close")
	}
}

// Uint64 returns the next word of the underlying stream.
//
//kd:hotpath
func (p *Pipelined) Uint64() uint64 {
	if p.pos == len(p.buf) {
		p.advance()
	}
	v := p.buf[p.pos]
	p.pos++
	return v
}

// Uint64n mirrors Rand.Uint64n (Lemire) over the buffered stream.
//
//kd:hotpath
func (p *Pipelined) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(p.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(p.Uint64(), n)
		}
	}
	return hi
}

// Intn mirrors Rand.Intn.
//
//kd:hotpath
func (p *Pipelined) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(p.Uint64n(uint64(n)))
}

// Float64 mirrors Rand.Float64.
func (p *Pipelined) Float64() float64 {
	return float64(p.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bool mirrors Rand.Bool.
func (p *Pipelined) Bool() bool {
	return p.Uint64()&1 == 1
}

// Bernoulli mirrors Rand.Bernoulli.
func (p *Pipelined) Bernoulli(prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	return p.Float64() < prob
}

// Shuffle mirrors Rand.Shuffle (Fisher–Yates).
func (p *Pipelined) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("xrand: Shuffle with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		j := p.Intn(i + 1)
		swap(i, j)
	}
}

// FillRounds mirrors Rand.FillRounds over the buffered stream: per round,
// d bounded samples then one raw nonce, in exactly the serial draw order.
//
//kd:hotpath
func (p *Pipelined) FillRounds(samples []int, nonces []uint64, d, n int) {
	if n <= 0 {
		panic("xrand: FillRounds with n <= 0")
	}
	if d < 0 || len(samples) != len(nonces)*d {
		panic("xrand: FillRounds buffer shape mismatch")
	}
	for ri := range nonces {
		p.FillIntn(samples[ri*d:(ri+1)*d], n)
		nonces[ri] = p.Uint64()
	}
}

// FillIntn mirrors Rand.FillIntn: the inner loop reads buffered words
// directly, which is the hot path the pipelined engine exists for — the
// consumer only pays the Lemire reduction while the producer generates the
// next block in parallel.
//
//kd:hotpath
func (p *Pipelined) FillIntn(dst []int, n int) {
	if n <= 0 {
		panic("xrand: FillIntn with n <= 0")
	}
	un := uint64(n)
	for i := range dst {
		if p.pos == len(p.buf) {
			p.advance()
		}
		hi, lo := bits.Mul64(p.buf[p.pos], un)
		p.pos++
		if lo < un {
			thresh := -un % un
			for lo < thresh {
				if p.pos == len(p.buf) {
					p.advance()
				}
				hi, lo = bits.Mul64(p.buf[p.pos], un)
				p.pos++
			}
		}
		dst[i] = int(hi)
	}
}
