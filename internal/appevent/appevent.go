// Package appevent defines the round-event contract shared by the
// discrete-event application substrates (cluster scheduling, replicated
// storage, the netsim protocol). Each substrate emits one Round per
// placement round — one job, one file, one protocol round — to the observer
// installed in its Config, mirroring the core process observer so the public
// kdchoice Observer/RoundEvent machinery extends to the Section 1.3
// applications.
//
// Substrates pay no observation cost when no observer is installed: they
// must not compute any Round field (in particular MaxLoad, which can require
// an O(n) scan) unless the hook is non-nil.
package appevent

// Round describes one completed placement round of an application
// substrate. The slice fields are reused between rounds and are valid only
// for the duration of the callback; observers that retain them must copy.
type Round struct {
	// Round is the 1-based round number. Substrates whose rounds can
	// complete out of order (the pipelined netsim protocol) number rounds
	// by completion order.
	Round int
	// Samples holds the probed bin ids (workers, servers) in the order
	// drawn.
	Samples []int
	// Placed holds the bin that received each placed unit (task, copy,
	// ball), one entry per unit.
	Placed []int
	// Heights holds the load at which each unit landed: Heights[i] is the
	// load of Placed[i] immediately after its unit arrived. For the
	// late-binding scheduler policy it is the reservation-queue depth at
	// enqueue time.
	Heights []int
	// Bins is the number of bins (workers, servers).
	Bins int
	// Balls is the cumulative number of placed units, including this round.
	Balls int
	// MaxLoad is the maximum bin load after this round (object count for
	// the storage substrate, even when balancing by bytes).
	MaxLoad int
	// Messages is the cumulative message cost after this round: probes for
	// the scheduler and storage substrates, network sends for netsim.
	Messages int64
}

// Observer receives a callback after every completed round. Substrates
// invoke it synchronously on the goroutine driving the simulation.
type Observer func(Round)
