package workload

// Churn generates the operation streams of the online serving layer: a
// continuous-time arrival/departure process whose events are materialized
// one Op at a time from a deterministic xrand stream. Arrivals are Poisson
// at rate Lambda — optionally modulated by a diurnal sine curve — and each
// live ball departs independently at rate Mu, so the live population is an
// M/M/∞-style birth-death process whose steady state sits near Lambda/Mu.
//
// The generator draws by the competing-clocks construction with thinning:
// the next event time is exponential at the constant upper-bound rate
// λmax + live·Mu, and a uniform mark classifies it as departure, (thinned)
// arrival, or a rejected shadow event. Thinning keeps the diurnal
// modulation exact while every draw still comes from the explicitly seeded
// generator — the same stream discipline as every other workload model.

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// OpKind classifies one churn-stream operation.
type OpKind int

// Churn operation kinds.
const (
	// OpInsert is a ball arrival.
	OpInsert OpKind = iota
	// OpDelete is a ball departure.
	OpDelete
)

// Op is one operation of a churn stream.
type Op struct {
	// Kind says whether a ball arrives or departs.
	Kind OpKind
	// Weight is the arriving ball's integer weight (>= 1); 0 for deletes.
	Weight int
	// U is a uniform [0,1) victim selector for deletes: the consumer maps
	// it onto its live-ball population (e.g. index floor(U·live)), which
	// keeps the stream independent of how the consumer tracks handles.
	U float64
}

// Churn configures a churn stream.
type Churn struct {
	// Lambda is the mean arrival rate (required, > 0).
	Lambda float64
	// Mu is the per-live-ball departure rate (>= 0; 0 = insert-only).
	Mu float64
	// DiurnalAmp is the relative amplitude A in [0, 1) of the diurnal rate
	// curve λ(t) = Lambda·(1 + A·sin(2πt/DiurnalPeriod)); 0 disables the
	// modulation.
	DiurnalAmp float64
	// DiurnalPeriod is the period of the diurnal curve (required > 0 when
	// DiurnalAmp > 0).
	DiurnalPeriod float64
	// Weights draws arriving balls' weights, rounded to integers and
	// clamped to >= 1. The zero value means unit weights.
	Weights Dist
	// Live0 seeds the stream's live-ball count (>= 0) for consumers that
	// pre-populate the system before churn starts.
	Live0 int
}

// Validate rejects unusable churn configurations.
func (c Churn) Validate() error {
	if c.Lambda <= 0 || math.IsNaN(c.Lambda) || math.IsInf(c.Lambda, 0) {
		return fmt.Errorf("workload: Churn.Lambda = %v, need a positive finite rate", c.Lambda)
	}
	if c.Mu < 0 || math.IsNaN(c.Mu) || math.IsInf(c.Mu, 0) {
		return fmt.Errorf("workload: Churn.Mu = %v, need a non-negative finite rate", c.Mu)
	}
	if c.DiurnalAmp < 0 || c.DiurnalAmp >= 1 {
		return fmt.Errorf("workload: Churn.DiurnalAmp = %v, need [0, 1)", c.DiurnalAmp)
	}
	if c.DiurnalAmp > 0 && c.DiurnalPeriod <= 0 {
		return fmt.Errorf("workload: Churn.DiurnalPeriod = %v, need > 0 with a diurnal amplitude", c.DiurnalPeriod)
	}
	if c.Live0 < 0 {
		return fmt.Errorf("workload: Churn.Live0 = %d, need >= 0", c.Live0)
	}
	return nil
}

// Stream materializes a churn configuration as a sequence of Ops. Not safe
// for concurrent use.
type Stream struct {
	c    Churn
	rng  *xrand.Rand
	live int
	t    float64
}

// NewStream validates the configuration and binds it to a generator.
func NewStream(c Churn, rng *xrand.Rand) (*Stream, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("workload: NewStream with nil rng")
	}
	return &Stream{c: c, rng: rng, live: c.Live0}, nil
}

// Next returns the next operation. Deletes are only emitted while balls
// are live, so a consumer that applies every Op in order can never
// underflow.
func (s *Stream) Next() Op {
	lamMax := s.c.Lambda * (1 + s.c.DiurnalAmp)
	for {
		depRate := float64(s.live) * s.c.Mu
		total := lamMax + depRate
		s.t += s.rng.Exponential(1 / total)
		u := s.rng.Float64() * total
		if u < depRate {
			s.live--
			return Op{Kind: OpDelete, U: s.rng.Float64()}
		}
		lam := s.c.Lambda
		if s.c.DiurnalAmp > 0 {
			lam *= 1 + s.c.DiurnalAmp*math.Sin(2*math.Pi*s.t/s.c.DiurnalPeriod)
		}
		if u < depRate+lam {
			s.live++
			w := 1
			if s.c.Weights.kind != 0 {
				w = int(math.Round(s.c.Weights.Sample(s.rng)))
				if w < 1 {
					w = 1
				}
			}
			return Op{Kind: OpInsert, Weight: w}
		}
		// Thinned shadow event of the diurnal trough; redraw.
	}
}

// Now returns the stream's simulated clock.
func (s *Stream) Now() float64 { return s.t }

// Live returns the stream's live-ball count after the last emitted Op.
func (s *Stream) Live() int { return s.live }
