package workload

import (
	"math"
	"strings"
	"testing"

	"repro/internal/xrand"
)

func sampleMean(d Dist, n int, seed uint64) float64 {
	r := xrand.New(seed)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestDeterministic(t *testing.T) {
	d := Deterministic(3.5)
	r := xrand.New(1)
	for i := 0; i < 10; i++ {
		if got := d.Sample(r); got != 3.5 {
			t.Fatalf("Sample = %v", got)
		}
	}
	if d.Mean() != 3.5 {
		t.Fatalf("Mean = %v", d.Mean())
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential(2.0)
	got := sampleMean(d, 100000, 2)
	if math.Abs(got-2.0) > 0.05 {
		t.Fatalf("exp sample mean %v, want ~2", got)
	}
}

func TestParetoMeanAndScale(t *testing.T) {
	d := Pareto(2.5, 4.0)
	got := sampleMean(d, 200000, 3)
	if math.Abs(got-4.0)/4.0 > 0.05 {
		t.Fatalf("pareto sample mean %v, want ~4", got)
	}
	// Samples never fall below xm = mean*(alpha-1)/alpha = 2.4.
	r := xrand.New(4)
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v < 2.4-1e-9 {
			t.Fatalf("pareto sample %v below scale", v)
		}
	}
}

func TestUniform(t *testing.T) {
	d := Uniform(1, 3)
	if d.Mean() != 2 {
		t.Fatalf("Mean = %v", d.Mean())
	}
	r := xrand.New(5)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 1 || v >= 3 {
			t.Fatalf("uniform sample %v out of range", v)
		}
	}
	got := sampleMean(d, 100000, 6)
	if math.Abs(got-2.0) > 0.02 {
		t.Fatalf("uniform sample mean %v", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { Deterministic(-1) },
		func() { Exponential(0) },
		func() { Pareto(1, 1) },
		func() { Pareto(2, 0) },
		func() { Uniform(-1, 2) },
		func() { Uniform(2, 2) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestZeroValueDistPanics(t *testing.T) {
	var d Dist
	defer func() {
		if recover() == nil {
			t.Fatal("zero-value Dist Sample did not panic")
		}
	}()
	d.Sample(xrand.New(1))
}

func TestDistString(t *testing.T) {
	cases := []struct {
		d    Dist
		want string
	}{
		{Deterministic(1), "det"},
		{Exponential(2), "exp"},
		{Pareto(2, 3), "pareto"},
		{Uniform(0, 1), "uniform"},
		{Dist{}, "uninitialized"},
	}
	for _, tc := range cases {
		if !strings.Contains(tc.d.String(), tc.want) {
			t.Fatalf("String %q does not mention %q", tc.d.String(), tc.want)
		}
	}
}

func TestArrivals(t *testing.T) {
	a := NewArrivals(4.0, xrand.New(7))
	if a.Rate() != 4.0 {
		t.Fatalf("Rate = %v", a.Rate())
	}
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := a.Next()
		if v < 0 {
			t.Fatalf("negative interarrival %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.25) > 0.01 {
		t.Fatalf("interarrival mean %v, want ~0.25", mean)
	}
}

func TestArrivalsPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewArrivals(0, xrand.New(1)) },
		func() { NewArrivals(1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}
