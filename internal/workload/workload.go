// Package workload provides the shared workload generators for the
// application substrates: arrival processes and size/duration
// distributions. The paper's applications (cluster job scheduling and
// distributed storage, Section 1.3) are exercised with exponential,
// heavy-tailed (Pareto), uniform and deterministic workloads.
package workload

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Dist is a non-negative scalar distribution (task durations, file sizes).
type Dist struct {
	kind  distKind
	mean  float64
	alpha float64 // Pareto shape
	xm    float64 // Pareto scale
	lo    float64 // Uniform low
	hi    float64 // Uniform high
}

type distKind int

const (
	distDeterministic distKind = iota + 1
	distExponential
	distPareto
	distUniform
	distZipf
)

// Deterministic returns a distribution that always yields v (v >= 0).
func Deterministic(v float64) Dist {
	if v < 0 {
		panic("workload: Deterministic with negative value")
	}
	return Dist{kind: distDeterministic, mean: v}
}

// Exponential returns an exponential distribution with the given mean > 0.
func Exponential(mean float64) Dist {
	if mean <= 0 {
		panic("workload: Exponential with non-positive mean")
	}
	return Dist{kind: distExponential, mean: mean}
}

// Pareto returns a Pareto distribution with shape alpha > 1 scaled so its
// mean is the given value. Heavy-tailed: smaller alpha means heavier tail.
func Pareto(alpha, mean float64) Dist {
	if alpha <= 1 {
		panic("workload: Pareto requires alpha > 1 for a finite mean")
	}
	if mean <= 0 {
		panic("workload: Pareto with non-positive mean")
	}
	// mean = alpha*xm/(alpha-1)  =>  xm = mean*(alpha-1)/alpha.
	return Dist{kind: distPareto, mean: mean, alpha: alpha, xm: mean * (alpha - 1) / alpha}
}

// Uniform returns the uniform distribution on [lo, hi), 0 <= lo < hi.
func Uniform(lo, hi float64) Dist {
	if lo < 0 || hi <= lo {
		panic("workload: Uniform requires 0 <= lo < hi")
	}
	return Dist{kind: distUniform, mean: (lo + hi) / 2, lo: lo, hi: hi}
}

// BoundedZipf returns the continuous bounded power law with density
// proportional to x^(-s) on [1, max] (s > 0, max > 1) — the skewed
// key-popularity/item-size model of the online serving workloads. Larger s
// concentrates mass near 1; the bound keeps the mean finite for every s.
func BoundedZipf(s, max float64) Dist {
	if s <= 0 {
		panic("workload: BoundedZipf requires s > 0")
	}
	if max <= 1 {
		panic("workload: BoundedZipf requires max > 1")
	}
	// mean = I2/I1 with I1 = ∫ x^-s and I2 = ∫ x^(1-s) over [1, max].
	var i1, i2 float64
	if s == 1 {
		i1 = math.Log(max)
	} else {
		i1 = (math.Pow(max, 1-s) - 1) / (1 - s)
	}
	if s == 2 {
		i2 = math.Log(max)
	} else {
		i2 = (math.Pow(max, 2-s) - 1) / (2 - s)
	}
	return Dist{kind: distZipf, mean: i2 / i1, alpha: s, hi: max}
}

// Mean returns the distribution mean.
func (d Dist) Mean() float64 { return d.mean }

// Sample draws one value using r.
func (d Dist) Sample(r *xrand.Rand) float64 {
	switch d.kind {
	case distDeterministic:
		return d.mean
	case distExponential:
		return r.Exponential(d.mean)
	case distPareto:
		return r.Pareto(d.alpha, d.xm)
	case distUniform:
		return d.lo + r.Float64()*(d.hi-d.lo)
	case distZipf:
		// Inverse CDF of the bounded power law.
		u := r.Float64()
		if d.alpha == 1 {
			return math.Pow(d.hi, u)
		}
		p := 1 - d.alpha
		return math.Pow(1+u*(math.Pow(d.hi, p)-1), 1/p)
	default:
		panic("workload: Sample on zero-value Dist; use a constructor")
	}
}

// String describes the distribution.
func (d Dist) String() string {
	switch d.kind {
	case distDeterministic:
		return fmt.Sprintf("det(%g)", d.mean)
	case distExponential:
		return fmt.Sprintf("exp(mean=%g)", d.mean)
	case distPareto:
		return fmt.Sprintf("pareto(alpha=%g,mean=%g)", d.alpha, d.mean)
	case distUniform:
		return fmt.Sprintf("uniform[%g,%g)", d.lo, d.hi)
	case distZipf:
		return fmt.Sprintf("zipf(s=%g,max=%g)", d.alpha, d.hi)
	default:
		return "dist(uninitialized)"
	}
}

// Arrivals is a Poisson arrival process with the given rate (events per
// unit time).
type Arrivals struct {
	rate float64
	rng  *xrand.Rand
}

// NewArrivals creates a Poisson arrival process. It panics if rate <= 0 or
// rng is nil.
func NewArrivals(rate float64, rng *xrand.Rand) *Arrivals {
	if rate <= 0 || math.IsNaN(rate) {
		panic("workload: NewArrivals with non-positive rate")
	}
	if rng == nil {
		panic("workload: NewArrivals with nil rng")
	}
	return &Arrivals{rate: rate, rng: rng}
}

// Next returns the next exponential interarrival time.
func (a *Arrivals) Next() float64 {
	return a.rng.Exponential(1 / a.rate)
}

// Rate returns the arrival rate.
func (a *Arrivals) Rate() float64 { return a.rate }
