package loadvec

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestNibblePacking pins the two-bins-per-byte layout through the raw view:
// even bins occupy the low nibble, odd bins the high nibble.
func TestNibblePacking(t *testing.T) {
	s := NewNibble(6)
	s.AddN(0, 3)
	s.AddN(1, 5)
	s.AddN(4, 14)
	packed, wide := s.RawLoads()
	if len(packed) != 3 {
		t.Fatalf("packed length %d, want 3 bytes for 6 bins", len(packed))
	}
	if packed[0] != 0x53 {
		t.Fatalf("packed[0] = %#x, want 0x53 (bin0=3 low, bin1=5 high)", packed[0])
	}
	if packed[2] != 0x0e {
		t.Fatalf("packed[2] = %#x, want 0x0e", packed[2])
	}
	if len(wide) != 0 {
		t.Fatalf("wide table has %d entries before any escape", len(wide))
	}
	s.Add(4) // 14 -> 15: escapes
	packed, wide = s.RawLoads()
	if packed[2]&0xF != NibbleEscape {
		t.Fatalf("bin 4 cell = %#x, want escape sentinel", packed[2]&0xF)
	}
	if wide[4] != 15 || s.Load(4) != 15 {
		t.Fatalf("escaped load = %d (wide %d), want 15", s.Load(4), wide[4])
	}
	if s.Escaped() != 1 {
		t.Fatalf("Escaped() = %d, want 1", s.Escaped())
	}
}

// TestNibbleEscapeReclaim drives one bin across the escape boundary in both
// directions and checks the wide cell is reclaimed losslessly — the PR 6
// compact-store reclaim discipline, extended to the nibble escape path.
func TestNibbleEscapeReclaim(t *testing.T) {
	s := NewNibble(4)
	for i := 0; i < 40; i++ {
		s.Add(2)
	}
	if s.Load(2) != 40 || s.Escaped() != 1 {
		t.Fatalf("load %d escaped %d, want 40/1", s.Load(2), s.Escaped())
	}
	s.Sub(2, 26) // 40 -> 14: back under the sentinel
	if s.Load(2) != 14 || s.Escaped() != 0 {
		t.Fatalf("after drain: load %d escaped %d, want 14/0", s.Load(2), s.Escaped())
	}
	if s.MaxLoad() != 14 || s.Balls() != 14 {
		t.Fatalf("aggregates max %d balls %d, want 14/14", s.MaxLoad(), s.Balls())
	}
}

// escapeStore is the common surface of the two overflow-escape stores.
type escapeStore interface {
	Store
	Escaped() int
}

// TestEscapeNeverLeaks is the escape regression guard: random interleaved
// Add/AddN/Sub/BulkAdd/BulkSub/Set traffic that repeatedly crosses the
// escape boundary must leave the wide side table holding EXACTLY the bins
// whose load is at or above the sentinel — no leaked entries from bins
// that drained back, for either escape store.
func TestEscapeNeverLeaks(t *testing.T) {
	cases := []struct {
		name     string
		store    escapeStore
		sentinel int
	}{
		{"nibble", NewNibble(10), NibbleEscape},
		{"compact", NewCompact(10), CompactEscape},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			const n = 10
			rng := rand.New(rand.NewSource(11))
			s := tc.store
			shadow := make([]int, n)
			// Weights sized so loads regularly cross the sentinel.
			span := tc.sentinel + tc.sentinel/2 + 2
			for step := 0; step < 5000; step++ {
				b := rng.Intn(n)
				switch rng.Intn(6) {
				case 0:
					s.Add(b)
					shadow[b]++
				case 1:
					w := rng.Intn(span)
					s.AddN(b, w)
					shadow[b] += w
				case 2:
					if shadow[b] > 0 {
						w := 1 + rng.Intn(shadow[b])
						s.Sub(b, w)
						shadow[b] -= w
					}
				case 3:
					bins := make([]int, 1+rng.Intn(6))
					for i := range bins {
						bins[i] = rng.Intn(n)
						shadow[bins[i]]++
					}
					s.BulkAdd(bins)
				case 4:
					var bins []int
					for i := 0; i < 4; i++ {
						c := rng.Intn(n)
						if shadow[c] > 0 {
							bins = append(bins, c)
							shadow[c]--
						}
					}
					if len(bins) > 0 {
						s.BulkSub(bins)
					}
				case 5:
					v := rng.Intn(2 * span)
					s.Set(b, v)
					shadow[b] = v
				}
				wantEscaped := 0
				for _, v := range shadow {
					if v >= tc.sentinel {
						wantEscaped++
					}
				}
				if got := s.Escaped(); got != wantEscaped {
					t.Fatalf("step %d: Escaped() = %d, want %d (loads %v)", step, got, wantEscaped, shadow)
				}
				if got := s.Vector(); !reflect.DeepEqual([]int(got), shadow) {
					t.Fatalf("step %d: Vector() = %v, want %v", step, got, shadow)
				}
			}
		})
	}
}

// TestSketchStoreOneSided drives the sketch store through mixed traffic
// against an exact dense shadow: every estimate, the max load, ν_y and the
// ball counter must respect the one-sided (or exact) contracts.
func TestSketchStoreOneSided(t *testing.T) {
	const n = 512
	s, err := NewSketch(n, 64, 2) // deliberately tight: heavy collisions
	if err != nil {
		t.Fatal(err)
	}
	ref := NewDense(n)
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 4000; step++ {
		b := rng.Intn(n)
		if ref.Load(b) > 0 && rng.Intn(3) == 0 {
			s.Sub(b, 1)
			ref.Sub(b, 1)
		} else {
			s.Add(b)
			ref.Add(b)
		}
		if est := s.Load(b); est < ref.Load(b) {
			t.Fatalf("step %d: estimate %d below true load %d", step, est, ref.Load(b))
		}
		if s.Balls() != ref.Balls() {
			t.Fatalf("step %d: balls %d, want exact %d", step, s.Balls(), ref.Balls())
		}
		if s.MaxLoad() < ref.MaxLoad() {
			t.Fatalf("step %d: max %d below true max %d", step, s.MaxLoad(), ref.MaxLoad())
		}
	}
	for y := 1; y <= ref.MaxLoad(); y++ {
		if s.NuY(y) < ref.NuY(y) {
			t.Fatalf("NuY(%d) = %d undercounts true %d", y, s.NuY(y), ref.NuY(y))
		}
	}
	if s.NuY(0) != n || s.NuY(-1) != n {
		t.Fatal("NuY(<=0) must count every bin")
	}
}

// TestSketchStoreBudget pins the default geometry's memory budget: under
// 0.5 B/bin for any n >= 1024, and the Sub-below-zero panic contract.
func TestSketchStoreBudget(t *testing.T) {
	for _, n := range []int{1024, 100000, 1 << 20} {
		s, err := NewSketch(n, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if bpb := s.BytesPerBin(); bpb >= 0.5 {
			t.Fatalf("n=%d: default geometry costs %.3f B/bin, want < 0.5", n, bpb)
		}
	}
	s, _ := NewSketch(1024, 0, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("Sub on an empty bin did not panic")
		}
	}()
	s.Sub(3, 1)
}

// TestNibbleBytesPerBin pins the half-byte budget and its escape surcharge.
func TestNibbleBytesPerBin(t *testing.T) {
	s := NewNibble(1000)
	if got := s.BytesPerBin(); got != 0.5 {
		t.Fatalf("BytesPerBin() = %v, want 0.5 with no escapes", got)
	}
	s.AddN(7, 100)
	if got := s.BytesPerBin(); got <= 0.5 {
		t.Fatalf("BytesPerBin() = %v, want > 0.5 with one escape", got)
	}
}

// TestSketchReset pins Reset back to the all-empty state.
func TestSketchReset(t *testing.T) {
	s, _ := NewSketch(256, 64, 2)
	for i := 0; i < 500; i++ {
		s.Add(i % 256)
	}
	s.Reset()
	if s.Balls() != 0 || s.MaxLoad() != 0 {
		t.Fatalf("after Reset: balls %d max %d", s.Balls(), s.MaxLoad())
	}
	for b := 0; b < 256; b++ {
		if s.Load(b) != 0 {
			t.Fatalf("after Reset: Load(%d) = %d", b, s.Load(b))
		}
	}
}
