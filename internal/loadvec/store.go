package loadvec

// This file defines Store, the bin-load state abstraction behind the core
// allocation engine. A Store holds the load of every bin and maintains the
// aggregate statistics the processes and experiments query after (or during)
// a run: maximum load, total balls, and the occupancy counts ν_y.
//
// Five implementations exist, selectable per run (the two sub-byte stores
// live in approx.go):
//
//   - DenseStore: the reference representation, one int per bin (8 B/bin).
//   - CompactStore: one uint16 per bin (2 B/bin) with an overflow escape —
//     a cell that reaches load 65535 is marked escaped and its true load
//     moves to a wide side table. The paper's regimes keep loads tiny
//     (Theorems 1-2: O(ln ln n) or m/n + O(1)), so in practice the side
//     table stays empty and a 10⁸-bin run fits in ~200 MB instead of 800.
//   - HistStore: int32 loads (4 B/bin) plus a maintained load histogram
//     (count[y] = bins with load exactly y), giving MaxLoad, Gap and NuY
//     without ever scanning the n bins — NuY costs O(max load − y), and max
//     load in the processes studied here is tiny compared to n.
//   - NibbleStore: 4 bits per bin (~0.5 B/bin) with the same lossless
//     escape discipline as CompactStore at sentinel load 15; still exact.
//   - SketchStore: count-min counters (<0.5 B/bin at the default geometry);
//     loads become one-sided overestimates, the ball counter stays exact.
//
// Every store except SketchStore is exact: loads never saturate or
// approximate, so every process produces bit-identical results on every
// exact store for equal seeds (pinned by the cross-store equivalence tests
// in internal/core). SketchStore trades that for sub-nibble memory; its
// estimates never under-report, and the equivalence tests pin the
// specialized kernels bit-identical to the interface kernel on the same
// sketch.

import (
	"fmt"
	"math"
	"sort"
)

// StoreKind selects a Store implementation.
type StoreKind int

// Supported store kinds.
const (
	// StoreDense is the reference []int representation (8 bytes/bin).
	StoreDense StoreKind = iota
	// StoreCompact is the uint16-with-overflow-escape representation
	// (2 bytes/bin steady state).
	StoreCompact
	// StoreHist is the histogram-indexed representation (4 bytes/bin,
	// occupancy statistics without scanning the bins).
	StoreHist
	// StoreNibble is the 4-bits-per-bin packed representation with overflow
	// escape (~0.5 bytes/bin steady state, still exact).
	StoreNibble
	// StoreSketch is the count-min approximate representation (<0.5
	// bytes/bin at the default geometry; loads are one-sided overestimates).
	StoreSketch
)

var storeNames = map[StoreKind]string{
	StoreDense:   "dense",
	StoreCompact: "compact",
	StoreHist:    "hist",
	StoreNibble:  "nibble",
	StoreSketch:  "sketch",
}

// storeNotes carries the one-line memory/accuracy note printed next to each
// store name in command help output.
var storeNotes = map[StoreKind]string{
	StoreDense:   "exact []int reference, 8 B/bin",
	StoreCompact: "exact uint16 cells + overflow escape, 2 B/bin",
	StoreHist:    "exact int32 cells + load histogram, 4 B/bin, O(1) deletion stats",
	StoreNibble:  "exact 4-bit cells + overflow escape, ~0.5 B/bin",
	StoreSketch:  "approximate count-min counters, <0.5 B/bin, one-sided overestimates",
}

// String returns the canonical short name of the store kind.
func (k StoreKind) String() string {
	if s, ok := storeNames[k]; ok {
		return s
	}
	return fmt.Sprintf("store(%d)", int(k))
}

// StoreNames returns the canonical store names in sorted order.
func StoreNames() []string {
	names := make([]string, 0, len(storeNames))
	for _, n := range storeNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// StoreHelp returns one "name — note" line per store in sorted name order,
// for command flag help.
func StoreHelp() []string {
	lines := make([]string, 0, len(storeNames))
	for k, n := range storeNames {
		lines = append(lines, n+" — "+storeNotes[k])
	}
	sort.Strings(lines)
	return lines
}

// ParseStoreKind converts a short name (as printed by StoreKind.String)
// back into a StoreKind.
func ParseStoreKind(s string) (StoreKind, error) {
	//kdlint:ordered store names are unique, so the first (only) match is independent of iteration order
	for k, name := range storeNames {
		if name == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("loadvec: unknown store %q (valid: %v)", s, StoreNames())
}

// Store is the bin-load state of an allocation process. One-shot
// simulations only grow loads through Add/AddN; the online-serving layer
// also drains bins through Sub/BulkSub as balls depart. Set exists for test
// scenarios and snapshot restoration. A Store is not safe for concurrent
// mutation, but concurrent reads (Load/MaxLoad/NuY) with no writer are safe
// — the sharded StaleBatch round relies on this during its read-only
// decision phase.
type Store interface {
	// Kind identifies the implementation.
	Kind() StoreKind
	// Len returns the number of bins.
	Len() int
	// Load returns the load of the given bin.
	Load(bin int) int
	// Add places one ball into the bin and returns its new load (the
	// ball's height).
	Add(bin int) int
	// AddN adds w >= 0 load units to the bin in one step — a weighted ball
	// — and returns the bin's new load. AddN(bin, 1) is Add(bin).
	AddN(bin, w int) int
	// Sub removes w >= 0 load units from the bin and returns its new load,
	// keeping every aggregate (balls, max load, histogram) consistent as
	// the bin drains. It panics if the bin holds fewer than w units:
	// deleting a ball that is not there is a caller bug, not an empty bin.
	Sub(bin, w int) int
	// BulkAdd places one ball into every listed bin (bins may repeat) with
	// a single aggregate-bookkeeping update — the store-specific bulk
	// increment used by the round engines when no per-ball height needs to
	// be observed. The final state is exactly that of calling Add once per
	// entry in order.
	BulkAdd(bins []int)
	// BulkSub removes one ball from every listed bin (bins may repeat)
	// with a single aggregate-bookkeeping update: the deletion mirror of
	// BulkAdd. The final state is exactly that of calling Sub(bin, 1) once
	// per entry in order.
	BulkSub(bins []int)
	// Set overwrites the bin's load, keeping the aggregate bookkeeping
	// (balls, max load, histogram) consistent. Not a hot-path operation.
	Set(bin, load int)
	// MaxLoad returns the current maximum load in O(1).
	MaxLoad() int
	// Balls returns the total number of balls held.
	Balls() int
	// NuY returns ν_y, the number of bins with at least y balls.
	NuY(y int) int
	// Vector returns a dense copy of the per-bin loads.
	Vector() Vector
	// Reset restores all bins to empty.
	Reset()
	// BytesPerBin reports the approximate steady-state memory cost per bin
	// of this store instance.
	BytesPerBin() float64
}

// NewStore constructs the store of the given kind over n bins.
func NewStore(kind StoreKind, n int) (Store, error) {
	switch kind {
	case StoreDense:
		return NewDense(n), nil
	case StoreCompact:
		return NewCompact(n), nil
	case StoreHist:
		return NewHist(n), nil
	case StoreNibble:
		return NewNibble(n), nil
	case StoreSketch:
		return NewSketch(n, 0, 0)
	default:
		return nil, fmt.Errorf("loadvec: unknown store kind %d (valid: %v)", int(kind), StoreNames())
	}
}

// checkWeight rejects negative weights for AddN/Sub; a negative w would
// silently invert the operation and desynchronize the ball counter's sign
// conventions.
func checkWeight(w int) {
	if w < 0 {
		panic("loadvec: negative weight")
	}
}

// DenseStore is the reference representation: one int per bin.
type DenseStore struct {
	loads []int
	max   int
	balls int
}

// NewDense returns an empty dense store over n bins.
func NewDense(n int) *DenseStore {
	return &DenseStore{loads: make([]int, n)}
}

// Kind implements Store.
func (s *DenseStore) Kind() StoreKind { return StoreDense }

// Len implements Store.
func (s *DenseStore) Len() int { return len(s.loads) }

// Load implements Store.
//
//kd:hotpath
func (s *DenseStore) Load(bin int) int { return s.loads[bin] }

// Add implements Store.
//
//kd:hotpath
func (s *DenseStore) Add(bin int) int {
	s.loads[bin]++
	h := s.loads[bin]
	if h > s.max {
		s.max = h
	}
	s.balls++
	return h
}

// AddN implements Store.
//
//kd:hotpath
func (s *DenseStore) AddN(bin, w int) int {
	checkWeight(w)
	v := s.loads[bin] + w
	s.loads[bin] = v
	if v > s.max {
		s.max = v
	}
	s.balls += w
	return v
}

// Sub implements Store. Draining the (possibly shared) maximum triggers a
// full rescan; deletion-heavy workloads that cannot afford O(n) rescans
// should run on HistStore, whose histogram walks the max down in O(1)
// amortized.
//
//kd:hotpath
func (s *DenseStore) Sub(bin, w int) int {
	checkWeight(w)
	old := s.loads[bin]
	v := old - w
	if v < 0 {
		panic("loadvec: Sub below zero load")
	}
	s.loads[bin] = v
	s.balls -= w
	if w > 0 && old == s.max {
		s.max = Vector(s.loads).Max()
	}
	return v
}

// BulkAdd implements Store: the max and ball counters stay in registers
// across the whole batch instead of being re-written per ball.
//
//kd:hotpath
func (s *DenseStore) BulkAdd(bins []int) {
	max := s.max
	for _, b := range bins {
		v := s.loads[b] + 1
		s.loads[b] = v
		if v > max {
			max = v
		}
	}
	s.max = max
	s.balls += len(bins)
}

// BulkSub implements Store: one deferred max rescan for the whole batch
// instead of one per max-bin decrement.
//
//kd:hotpath
func (s *DenseStore) BulkSub(bins []int) {
	touchedMax := false
	for _, b := range bins {
		v := s.loads[b] - 1
		if v < 0 {
			panic("loadvec: Sub below zero load")
		}
		if v+1 == s.max {
			touchedMax = true
		}
		s.loads[b] = v
	}
	s.balls -= len(bins)
	if touchedMax {
		s.max = Vector(s.loads).Max()
	}
}

// Set implements Store.
func (s *DenseStore) Set(bin, load int) {
	old := s.loads[bin]
	s.loads[bin] = load
	s.balls += load - old
	switch {
	case load > s.max:
		s.max = load
	case old == s.max && load < old:
		s.max = Vector(s.loads).Max()
	}
}

// MaxLoad implements Store.
func (s *DenseStore) MaxLoad() int { return s.max }

// Balls implements Store.
func (s *DenseStore) Balls() int { return s.balls }

// NuY implements Store.
func (s *DenseStore) NuY(y int) int { return Vector(s.loads).NuY(y) }

// Vector implements Store.
func (s *DenseStore) Vector() Vector { return Vector(s.loads).Clone() }

// Reset implements Store.
func (s *DenseStore) Reset() {
	for i := range s.loads {
		s.loads[i] = 0
	}
	s.max, s.balls = 0, 0
}

// BytesPerBin implements Store.
func (s *DenseStore) BytesPerBin() float64 { return 8 }

// escape16 marks a compact cell whose load outgrew uint16; the true load
// lives in the wide side table.
const escape16 = math.MaxUint16

// CompactStore holds one uint16 per bin; cells that reach load 65535 escape
// to a wide side table. Loads stay exact at every magnitude.
type CompactStore struct {
	small []uint16
	wide  map[int]int
	max   int
	balls int
}

// NewCompact returns an empty compact store over n bins.
func NewCompact(n int) *CompactStore {
	return &CompactStore{small: make([]uint16, n), wide: make(map[int]int)}
}

// Kind implements Store.
func (s *CompactStore) Kind() StoreKind { return StoreCompact }

// Len implements Store.
func (s *CompactStore) Len() int { return len(s.small) }

// Load implements Store. The non-escaped fast path is small enough to
// inline into the specialized round kernels; the wide-table lookup is
// outlined so the map access cannot blow the inlining budget.
//
//kd:hotpath
func (s *CompactStore) Load(bin int) int {
	if v := s.small[bin]; v != escape16 {
		return int(v)
	}
	return s.loadWide(bin)
}

// loadWide returns the load of an escaped cell from the wide side table.
//
//kd:hotpath
func (s *CompactStore) loadWide(bin int) int { return s.wide[bin] }

// Add implements Store. Like Load, the in-range increment stays inlinable
// and the escape transitions are outlined into addEscaped.
//
//kd:hotpath
func (s *CompactStore) Add(bin int) int {
	if v := s.small[bin]; v < escape16-1 {
		v++
		s.small[bin] = v
		h := int(v)
		if h > s.max {
			s.max = h
		}
		s.balls++
		return h
	}
	return s.addEscaped(bin)
}

// addEscaped handles the two escape cases of Add — the cell is already
// wide, or this increment reaches the escape sentinel and moves it to the
// wide table — including the aggregate bookkeeping.
//
//kd:hotpath
func (s *CompactStore) addEscaped(bin int) int {
	h := escape16
	if s.small[bin] == escape16 {
		h = s.wide[bin] + 1
		s.wide[bin] = h
	} else {
		s.small[bin] = escape16
		s.wide[bin] = escape16
	}
	if h > s.max {
		s.max = h
	}
	s.balls++
	return h
}

// AddN implements Store: a weighted add that stays in the small cell
// whenever the result still fits under the escape sentinel, escaping
// otherwise.
//
//kd:hotpath
func (s *CompactStore) AddN(bin, w int) int {
	checkWeight(w)
	if v := s.small[bin]; v != escape16 && int(v)+w < escape16 {
		h := int(v) + w
		s.small[bin] = uint16(h)
		if h > s.max {
			s.max = h
		}
		s.balls += w
		return h
	}
	return s.addNEscaped(bin, w)
}

// addNEscaped handles the wide-table cases of AddN: the cell is already
// escaped, or this weighted add pushes it to (or past) the sentinel.
//
//kd:hotpath
func (s *CompactStore) addNEscaped(bin, w int) int {
	var h int
	if s.small[bin] == escape16 {
		h = s.wide[bin] + w
	} else {
		h = int(s.small[bin]) + w
		s.small[bin] = escape16
	}
	s.wide[bin] = h
	if h > s.max {
		s.max = h
	}
	s.balls += w
	return h
}

// Sub implements Store. A wide cell that drains back under the escape
// sentinel is reclaimed into its small cell and removed from the side
// table, so deletion-heavy workloads cannot turn a transient load spike
// into permanent side-table growth. Draining the maximum triggers a full
// rescan (see DenseStore.Sub; HistStore is the deletion-heavy choice).
//
//kd:hotpath
func (s *CompactStore) Sub(bin, w int) int {
	checkWeight(w)
	old := s.Load(bin)
	v := old - w
	if v < 0 {
		panic("loadvec: Sub below zero load")
	}
	if s.small[bin] == escape16 {
		if v < escape16 {
			// The cell fits in uint16 again: reclaim it losslessly.
			delete(s.wide, bin)
			s.small[bin] = uint16(v)
		} else {
			s.wide[bin] = v
		}
	} else {
		s.small[bin] = uint16(v)
	}
	s.balls -= w
	if w > 0 && old == s.max {
		s.max = s.rescanMax()
	}
	return v
}

// BulkSub implements Store: one deferred max rescan for the whole batch,
// with the same escape-cell reclaim as Sub.
//
//kd:hotpath
func (s *CompactStore) BulkSub(bins []int) {
	touchedMax := false
	for _, b := range bins {
		old := s.Load(b)
		if old == 0 {
			panic("loadvec: Sub below zero load")
		}
		if old == s.max {
			touchedMax = true
		}
		v := old - 1
		if s.small[b] == escape16 {
			if v < escape16 {
				delete(s.wide, b)
				s.small[b] = uint16(v)
			} else {
				s.wide[b] = v
			}
		} else {
			s.small[b] = uint16(v)
		}
	}
	s.balls -= len(bins)
	if touchedMax {
		s.max = s.rescanMax()
	}
}

// BulkAdd implements Store: in-range cells increment with the max counter
// in a register; escaped cells fall back to addEscaped.
//
//kd:hotpath
func (s *CompactStore) BulkAdd(bins []int) {
	max := s.max
	balls := s.balls
	for _, b := range bins {
		if v := s.small[b]; v < escape16-1 {
			s.small[b] = v + 1
			if h := int(v) + 1; h > max {
				max = h
			}
			balls++
			continue
		}
		// Escape transition: flush the register copies so addEscaped sees
		// consistent state, then reload them.
		s.max, s.balls = max, balls
		s.addEscaped(b)
		max, balls = s.max, s.balls
	}
	s.max = max
	s.balls = balls
}

// Set implements Store.
func (s *CompactStore) Set(bin, load int) {
	old := s.Load(bin)
	if s.small[bin] == escape16 {
		delete(s.wide, bin)
	}
	if load >= escape16 {
		s.small[bin] = escape16
		s.wide[bin] = load
	} else {
		s.small[bin] = uint16(load)
	}
	s.balls += load - old
	switch {
	case load > s.max:
		s.max = load
	case old == s.max && load < old:
		s.max = s.rescanMax()
	}
}

func (s *CompactStore) rescanMax() int {
	m := 0
	for bin := range s.small {
		if v := s.Load(bin); v > m {
			m = v
		}
	}
	return m
}

// MaxLoad implements Store.
func (s *CompactStore) MaxLoad() int { return s.max }

// Balls implements Store.
func (s *CompactStore) Balls() int { return s.balls }

// NuY implements Store.
func (s *CompactStore) NuY(y int) int {
	if y <= 0 {
		return len(s.small)
	}
	c := 0
	if y >= escape16 {
		// Only escaped cells can hold loads this large.
		for _, v := range s.wide {
			if v >= y {
				c++
			}
		}
		return c
	}
	yy := uint16(y)
	for _, v := range s.small {
		if v >= yy {
			c++ // escaped cells (v == escape16) hold >= 65535 >= y
		}
	}
	return c
}

// Vector implements Store.
func (s *CompactStore) Vector() Vector {
	out := make(Vector, len(s.small))
	for i, v := range s.small {
		if v == escape16 {
			out[i] = s.wide[i]
		} else {
			out[i] = int(v)
		}
	}
	return out
}

// Reset implements Store.
func (s *CompactStore) Reset() {
	for i := range s.small {
		s.small[i] = 0
	}
	s.wide = make(map[int]int)
	s.max, s.balls = 0, 0
}

// BytesPerBin implements Store.
func (s *CompactStore) BytesPerBin() float64 {
	// ~48 bytes per escaped entry is a conservative map-overhead estimate.
	return 2 + float64(len(s.wide)*48)/float64(len(s.small))
}

// Escaped returns the number of bins currently in the wide side table.
func (s *CompactStore) Escaped() int { return len(s.wide) }

// HistStore keeps int32 loads plus a maintained histogram over load values,
// so MaxLoad, Balls and NuY never scan the bins: NuY(y) sums the histogram
// tail above y, which is O(max load − y) — and max load is exponentially
// smaller than n in every regime the paper studies.
type HistStore struct {
	loads []int32
	// count[y] = number of bins with load exactly y; len(count) = max+1
	// (grown on demand).
	count []int
	max   int
	balls int
}

// NewHist returns an empty histogram-indexed store over n bins.
func NewHist(n int) *HistStore {
	return &HistStore{loads: make([]int32, n), count: []int{n}}
}

// Kind implements Store.
func (s *HistStore) Kind() StoreKind { return StoreHist }

// Len implements Store.
func (s *HistStore) Len() int { return len(s.loads) }

// Load implements Store.
//
//kd:hotpath
func (s *HistStore) Load(bin int) int { return int(s.loads[bin]) }

// Add implements Store. The histogram-growth path is outlined so the
// common increment stays small enough to inline into the specialized round
// kernels.
//
//kd:hotpath
func (s *HistStore) Add(bin int) int {
	y := int(s.loads[bin]) + 1
	s.loads[bin] = int32(y)
	s.count[y-1]--
	if y >= len(s.count) {
		s.grow(y)
	}
	s.count[y]++
	if y > s.max {
		s.max = y
	}
	s.balls++
	return y
}

// grow extends the histogram to cover load y.
func (s *HistStore) grow(y int) {
	for y >= len(s.count) {
		s.count = append(s.count, 0)
	}
}

// AddN implements Store: the bin's histogram cell moves from its old load
// to old+w in one step.
//
//kd:hotpath
func (s *HistStore) AddN(bin, w int) int {
	checkWeight(w)
	old := int(s.loads[bin])
	y := old + w
	if y > math.MaxInt32 {
		panic("loadvec: HistStore load exceeds int32")
	}
	s.loads[bin] = int32(y)
	s.count[old]--
	if y >= len(s.count) {
		s.grow(y)
	}
	s.count[y]++
	if y > s.max {
		s.max = y
	}
	s.balls += w
	return y
}

// Sub implements Store. This is the deletion-native store: draining the
// maximum walks the histogram down instead of scanning the bins, so a
// delete costs O(1) amortized even under adversarial delete-the-loaded
// workloads.
//
//kd:hotpath
func (s *HistStore) Sub(bin, w int) int {
	checkWeight(w)
	old := int(s.loads[bin])
	y := old - w
	if y < 0 {
		panic("loadvec: Sub below zero load")
	}
	s.loads[bin] = int32(y)
	s.count[old]--
	s.count[y]++
	s.balls -= w
	if old == s.max {
		for s.max > 0 && s.count[s.max] == 0 {
			s.max--
		}
	}
	return y
}

// BulkAdd implements Store. The histogram must move one unit per ball, so
// there is no cheaper aggregate form; the batch simply loops Add.
//
//kd:hotpath
func (s *HistStore) BulkAdd(bins []int) {
	for _, b := range bins {
		s.Add(b)
	}
}

// BulkSub implements Store. As with BulkAdd, the histogram moves one unit
// per ball; the batch loops Sub.
//
//kd:hotpath
func (s *HistStore) BulkSub(bins []int) {
	for _, b := range bins {
		s.Sub(b, 1)
	}
}

// Set implements Store.
func (s *HistStore) Set(bin, load int) {
	if load > math.MaxInt32 {
		panic("loadvec: HistStore load exceeds int32")
	}
	old := int(s.loads[bin])
	s.loads[bin] = int32(load)
	s.count[old]--
	for load >= len(s.count) {
		s.count = append(s.count, 0)
	}
	s.count[load]++
	s.balls += load - old
	if load > s.max {
		s.max = load
	} else if old == s.max {
		// Walk the histogram down; no bin scan needed.
		for s.max > 0 && s.count[s.max] == 0 {
			s.max--
		}
	}
}

// MaxLoad implements Store.
func (s *HistStore) MaxLoad() int { return s.max }

// Balls implements Store.
func (s *HistStore) Balls() int { return s.balls }

// NuY implements Store.
func (s *HistStore) NuY(y int) int {
	if y <= 0 {
		return len(s.loads)
	}
	if y > s.max {
		return 0
	}
	c := 0
	for h := y; h <= s.max; h++ {
		c += s.count[h]
	}
	return c
}

// Histogram returns a copy of count[0..MaxLoad()], where count[y] is the
// number of bins holding exactly y balls.
func (s *HistStore) Histogram() []int {
	out := make([]int, s.max+1)
	copy(out, s.count[:s.max+1])
	return out
}

// Vector implements Store.
func (s *HistStore) Vector() Vector {
	out := make(Vector, len(s.loads))
	for i, v := range s.loads {
		out[i] = int(v)
	}
	return out
}

// Reset implements Store.
func (s *HistStore) Reset() {
	for i := range s.loads {
		s.loads[i] = 0
	}
	s.count = s.count[:1]
	s.count[0] = len(s.loads)
	s.max, s.balls = 0, 0
}

// BytesPerBin implements Store.
func (s *HistStore) BytesPerBin() float64 {
	return 4 + float64(8*len(s.count))/float64(len(s.loads))
}

// CompactEscape is the sentinel cell value marking an escaped compact bin;
// exported for the specialized kernels' raw fast path.
const CompactEscape = escape16

// RawLoads exposes the dense store's backing load array for the
// store-specialized kernels. Read-only for callers: mutating it directly
// desynchronizes the aggregate bookkeeping.
func (s *DenseStore) RawLoads() []int { return s.loads }

// RawLoads exposes the compact store's small cells and wide side table for
// the store-specialized kernels: a cell equal to CompactEscape holds its
// true load in the map. Read-only for callers.
func (s *CompactStore) RawLoads() ([]uint16, map[int]int) { return s.small, s.wide }

// RawLoads exposes the histogram store's backing load array for the
// store-specialized kernels. Read-only for callers.
func (s *HistStore) RawLoads() []int32 { return s.loads }
