// Package loadvec provides utilities over bin-load vectors: the sorted-load
// view used throughout the paper's analysis (bin x = x-th most loaded bin),
// the occupancy counts ν_y (bins with at least y balls) and µ_y (balls with
// height at least y), the load gap, and the empirical majorization
// comparison used to validate the paper's Section 3 properties.
package loadvec

import (
	"fmt"
	"sort"
)

// Vector is a snapshot of bin loads indexed by bin id (NOT sorted).
type Vector []int

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Total returns the number of balls in the vector.
func (v Vector) Total() int {
	sum := 0
	for _, x := range v {
		sum += x
	}
	return sum
}

// Max returns the maximum load, or 0 for an empty vector.
func (v Vector) Max() int {
	m := 0
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum load, or 0 for an empty vector.
func (v Vector) Min() int {
	if len(v) == 0 {
		return 0
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Average returns the mean load, or 0 for an empty vector.
func (v Vector) Average() float64 {
	if len(v) == 0 {
		return 0
	}
	return float64(v.Total()) / float64(len(v))
}

// Gap returns max load minus average load — the quantity bounded in the
// heavily loaded case (Theorem 2 / Berenbrink et al.).
func (v Vector) Gap() float64 {
	return float64(v.Max()) - v.Average()
}

// Sorted returns the loads in decreasing order, so Sorted()[x-1] is B_x, the
// load of the x-th most loaded bin in the paper's notation.
func (v Vector) Sorted() []int {
	out := make([]int, len(v))
	copy(out, v)
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// NuY returns ν_y: the number of bins with at least y balls. ν_0 = n.
func (v Vector) NuY(y int) int {
	c := 0
	for _, x := range v {
		if x >= y {
			c++
		}
	}
	return c
}

// NuAll returns ν_y for all y in [0, Max()]; the returned slice has length
// Max()+1 and NuAll()[y] == NuY(y). Computed in one pass.
func (v Vector) NuAll() []int {
	maxLoad := v.Max()
	counts := make([]int, maxLoad+2)
	for _, x := range v {
		counts[x]++
	}
	nu := make([]int, maxLoad+1)
	running := 0
	for y := maxLoad; y >= 0; y-- {
		running += counts[y]
		nu[y] = running
	}
	return nu
}

// MuY returns µ_y: the number of balls with height at least y, which for a
// load vector equals sum over bins of max(load - y + 1, 0) for y >= 1, and
// the total number of balls for y <= 0. (Ball heights within a bin are
// 1..load.)
func (v Vector) MuY(y int) int {
	if y <= 0 {
		return v.Total()
	}
	c := 0
	for _, x := range v {
		if x >= y {
			c += x - y + 1
		}
	}
	return c
}

// PrefixTop returns B_{<=x}: the number of balls in the x most loaded bins
// (x is clamped to [0, n]).
func (v Vector) PrefixTop(x int) int {
	if x <= 0 {
		return 0
	}
	sorted := v.Sorted()
	if x > len(sorted) {
		x = len(sorted)
	}
	sum := 0
	for _, b := range sorted[:x] {
		sum += b
	}
	return sum
}

// Histogram returns how many bins hold exactly y balls, for y in
// [0, Max()].
func (v Vector) Histogram() []int {
	h := make([]int, v.Max()+1)
	for _, x := range v {
		h[x]++
	}
	return h
}

// Validate checks structural sanity: no negative loads and, if balls >= 0,
// that the total matches. It returns a descriptive error on violation.
func (v Vector) Validate(balls int) error {
	for i, x := range v {
		if x < 0 {
			return fmt.Errorf("loadvec: bin %d has negative load %d", i, x)
		}
	}
	if balls >= 0 {
		if got := v.Total(); got != balls {
			return fmt.Errorf("loadvec: total load %d does not match ball count %d", got, balls)
		}
	}
	return nil
}

// MajorizesPrefixes reports whether a weakly majorizes b in the prefix-sum
// sense used by the paper (Definition 2): for every x, the x most loaded
// bins of a hold at least as many balls as the x most loaded bins of b.
// The vectors may have different lengths; missing entries count as zero.
// Note the paper's A1 ≤mj A2 is a distributional statement; this function is
// the per-sample comparison used to verify it empirically over coupled runs.
func MajorizesPrefixes(a, b Vector) bool {
	sa, sb := a.Sorted(), b.Sorted()
	n := len(sa)
	if len(sb) > n {
		n = len(sb)
	}
	sumA, sumB := 0, 0
	for x := 0; x < n; x++ {
		if x < len(sa) {
			sumA += sa[x]
		}
		if x < len(sb) {
			sumB += sb[x]
		}
		if sumA < sumB {
			return false
		}
	}
	return true
}

// Dominates reports whether a dominates b pointwise on the sorted vectors
// (Definition 2(iii) per-sample analogue): B_x(a) >= B_x(b) for all x.
func Dominates(a, b Vector) bool {
	sa, sb := a.Sorted(), b.Sorted()
	n := len(sa)
	if len(sb) > n {
		n = len(sb)
	}
	for x := 0; x < n; x++ {
		va, vb := 0, 0
		if x < len(sa) {
			va = sa[x]
		}
		if x < len(sb) {
			vb = sb[x]
		}
		if va < vb {
			return false
		}
	}
	return true
}

// TailCDFAtLeast returns, for an ensemble of sorted-load snapshots, the
// empirical probability that B_{<=x} >= t. It is the building block for
// checking the majorization inequalities of Definition 2 at the
// distribution level.
func TailCDFAtLeast(ensemble []Vector, x, t int) float64 {
	if len(ensemble) == 0 {
		return 0
	}
	hit := 0
	for _, v := range ensemble {
		if v.PrefixTop(x) >= t {
			hit++
		}
	}
	return float64(hit) / float64(len(ensemble))
}
