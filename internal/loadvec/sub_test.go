package loadvec

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// shadowCheck compares a store against the reference []int shadow on every
// observable the online layer relies on.
func shadowCheck(t *testing.T, stage string, s Store, shadow []int) {
	t.Helper()
	max, balls := 0, 0
	for bin, v := range shadow {
		if got := s.Load(bin); got != v {
			t.Fatalf("%s: Load(%d) = %d, shadow %d", stage, bin, got, v)
		}
		if v > max {
			max = v
		}
		balls += v
	}
	if got := s.MaxLoad(); got != max {
		t.Fatalf("%s: MaxLoad = %d, shadow %d", stage, got, max)
	}
	if got := s.Balls(); got != balls {
		t.Fatalf("%s: Balls = %d, shadow %d", stage, got, balls)
	}
	for _, y := range []int{0, 1, max / 2, max, max + 1} {
		want := 0
		for _, v := range shadow {
			if v >= y {
				want++
			}
		}
		if got := s.NuY(y); got != want {
			t.Fatalf("%s: NuY(%d) = %d, shadow %d", stage, y, got, want)
		}
	}
}

// TestSubAddNProperty drives every store through a random interleaving of
// Add/AddN/Sub/BulkAdd/BulkSub against the []int reference, checking the
// full observable state after every mutation batch.
func TestSubAddNProperty(t *testing.T) {
	const n = 48
	for _, kind := range []StoreKind{StoreDense, StoreCompact, StoreHist, StoreNibble} {
		t.Run(kind.String(), func(t *testing.T) {
			s, err := NewStore(kind, n)
			if err != nil {
				t.Fatal(err)
			}
			shadow := make([]int, n)
			rng := xrand.New(0xD15EA5E)
			bulk := make([]int, 0, 16)
			for step := 0; step < 4000; step++ {
				bin := rng.Intn(n)
				switch op := rng.Intn(6); op {
				case 0:
					s.Add(bin)
					shadow[bin]++
				case 1:
					w := rng.Intn(9)
					if got, want := s.AddN(bin, w), shadow[bin]+w; got != want {
						t.Fatalf("step %d: AddN returned %d, want %d", step, got, want)
					}
					shadow[bin] += w
				case 2:
					w := rng.Intn(shadow[bin] + 1)
					if got, want := s.Sub(bin, w), shadow[bin]-w; got != want {
						t.Fatalf("step %d: Sub returned %d, want %d", step, got, want)
					}
					shadow[bin] -= w
				case 3:
					bulk = bulk[:0]
					for i := rng.Intn(16); i >= 0; i-- {
						b := rng.Intn(n)
						bulk = append(bulk, b)
						shadow[b]++
					}
					s.BulkAdd(bulk)
				case 4:
					bulk = bulk[:0]
					for i := rng.Intn(16); i >= 0; i-- {
						b := rng.Intn(n)
						if shadow[b] > 0 {
							bulk = append(bulk, b)
							shadow[b]--
						}
					}
					s.BulkSub(bulk)
				case 5:
					v := rng.Intn(20)
					s.Set(bin, v)
					shadow[bin] = v
				}
				if step%97 == 0 || step > 3900 {
					shadowCheck(t, kind.String(), s, shadow)
				}
			}
			shadowCheck(t, kind.String()+"/final", s, shadow)
		})
	}
}

// TestSubBelowZeroPanics pins the caller-bug contract on every store.
func TestSubBelowZeroPanics(t *testing.T) {
	for _, kind := range []StoreKind{StoreDense, StoreCompact, StoreHist, StoreNibble} {
		s, err := NewStore(kind, 4)
		if err != nil {
			t.Fatal(err)
		}
		s.Add(1)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%v: Sub below zero did not panic", kind)
				}
			}()
			s.Sub(1, 2)
		}()
	}
}

// TestCompactEscapeShrink is the regression test for the escape-cell
// reclaim: a bin pushed past the uint16 ceiling into the wide table must
// return to the small array — losslessly — once it drains back under the
// ceiling, whether via Sub, BulkSub or Set.
func TestCompactEscapeShrink(t *testing.T) {
	s, err := NewStore(StoreCompact, 8)
	if err != nil {
		t.Fatal(err)
	}
	cs := s.(*CompactStore)

	const high = CompactEscape + 1000
	s.AddN(3, high)
	if cs.Escaped() != 1 {
		t.Fatalf("Escaped = %d after crossing the ceiling, want 1", cs.Escaped())
	}
	if got := s.Load(3); got != high {
		t.Fatalf("escaped Load = %d, want %d", got, high)
	}

	// Drain in two steps: still escaped above the ceiling, reclaimed below.
	if got := s.Sub(3, 500); got != high-500 {
		t.Fatalf("Sub above ceiling returned %d, want %d", got, high-500)
	}
	if cs.Escaped() != 1 {
		t.Fatalf("Escaped = %d while above the ceiling, want 1", cs.Escaped())
	}
	if got := s.Sub(3, 2000); got != high-2500 {
		t.Fatalf("Sub across ceiling returned %d, want %d", got, high-2500)
	}
	if cs.Escaped() != 0 {
		t.Fatalf("Escaped = %d after draining under the ceiling, want 0", cs.Escaped())
	}
	if got := s.Load(3); got != high-2500 {
		t.Fatalf("reclaimed Load = %d, want %d", got, high-2500)
	}
	if got := s.MaxLoad(); got != high-2500 {
		t.Fatalf("MaxLoad = %d after reclaim, want %d", got, high-2500)
	}

	// BulkSub reclaims too: re-escape, then drain one unit at a time from
	// exactly the ceiling boundary.
	s.Set(3, CompactEscape+1)
	if cs.Escaped() != 1 {
		t.Fatalf("Escaped = %d after Set above ceiling, want 1", cs.Escaped())
	}
	s.BulkSub([]int{3, 3})
	if cs.Escaped() != 0 {
		t.Fatalf("Escaped = %d after BulkSub under the ceiling, want 0", cs.Escaped())
	}
	if got := s.Load(3); got != CompactEscape-1 {
		t.Fatalf("Load = %d after BulkSub reclaim, want %d", got, CompactEscape-1)
	}
	if got := s.Balls(); got != CompactEscape-1 {
		t.Fatalf("Balls = %d after reclaim, want %d", got, CompactEscape-1)
	}
}

// TestVecStoreShadow drives the vector store against a [][]float64 shadow
// under every norm.
func TestVecStoreShadow(t *testing.T) {
	const n, dims = 12, 3
	for _, norm := range []Norm{NormLInf, NormL1, NormL2} {
		t.Run(norm.String(), func(t *testing.T) {
			s, err := NewVecStore(n, dims, norm)
			if err != nil {
				t.Fatal(err)
			}
			shadow := make([][]float64, n)
			for i := range shadow {
				shadow[i] = make([]float64, dims)
			}
			rng := xrand.New(77)
			w := make([]float64, dims)
			for step := 0; step < 2000; step++ {
				bin := rng.Intn(n)
				for c := range w {
					w[c] = rng.Float64() * 4
				}
				if rng.Bool() || NormLInf.Apply(shadow[bin]) == 0 {
					s.AddVec(bin, w)
					for c := range w {
						shadow[bin][c] += w[c]
					}
				} else {
					// Remove a fraction of what the bin actually holds so no
					// component underflows.
					for c := range w {
						w[c] = shadow[bin][c] * rng.Float64()
					}
					s.SubVec(bin, w)
					for c := range w {
						shadow[bin][c] -= w[c]
					}
				}
				if step%53 != 0 {
					continue
				}
				maxAgg, sumAgg := 0.0, 0.0
				for b := range shadow {
					agg := norm.Apply(shadow[b])
					sumAgg += agg
					if agg > maxAgg {
						maxAgg = agg
					}
					if got := s.AggLoad(b); math.Abs(got-agg) > 1e-9 {
						t.Fatalf("step %d: AggLoad(%d) = %g, shadow %g", step, b, got, agg)
					}
				}
				if got := s.MaxAgg(); math.Abs(got-maxAgg) > 1e-9 {
					t.Fatalf("step %d: MaxAgg = %g, shadow %g", step, got, maxAgg)
				}
				if got := s.MeanAgg(); math.Abs(got-sumAgg/n) > 1e-9 {
					t.Fatalf("step %d: MeanAgg = %g, shadow %g", step, got, sumAgg/n)
				}
				if got, want := s.GapAgg(), s.MaxAgg()-s.MeanAgg(); math.Abs(got-want) > 1e-9 {
					t.Fatalf("step %d: GapAgg = %g, want %g", step, got, want)
				}
			}
			s.Reset()
			if s.MaxAgg() != 0 || s.MeanAgg() != 0 {
				t.Fatalf("Reset left MaxAgg=%g MeanAgg=%g", s.MaxAgg(), s.MeanAgg())
			}
		})
	}
}

// TestVecStoreValidation pins the constructor and mutation contracts.
func TestVecStoreValidation(t *testing.T) {
	if _, err := NewVecStore(0, 1, NormLInf); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewVecStore(1, 0, NormLInf); err == nil {
		t.Fatal("dims=0 accepted")
	}
	if _, err := NewVecStore(1, 1, Norm(99)); err == nil {
		t.Fatal("unknown norm accepted")
	}
	s, err := NewVecStore(2, 2, NormL1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]float64{{1}, {1, -1}, {1, math.NaN()}, {math.Inf(1), 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("AddVec(%v) did not panic", bad)
				}
			}()
			s.AddVec(0, bad)
		}()
	}
	s.AddVec(0, []float64{1, 2})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("SubVec underflow did not panic")
			}
		}()
		s.SubVec(0, []float64{2, 0})
	}()
}

// TestParseNorm pins the round trip and the sorted unknown-value error.
func TestParseNorm(t *testing.T) {
	for _, name := range NormNames() {
		m, err := ParseNorm(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != name {
			t.Fatalf("round trip %q -> %v", name, m)
		}
	}
	if _, err := ParseNorm("l7"); err == nil {
		t.Fatal("unknown norm accepted")
	}
}
