package loadvec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLorenzPerfectBalance(t *testing.T) {
	v := Vector{2, 2, 2, 2}
	curve := v.Lorenz()
	want := []float64{0.25, 0.5, 0.75, 1.0}
	for i, w := range want {
		if math.Abs(curve[i]-w) > 1e-12 {
			t.Fatalf("curve = %v, want %v", curve, want)
		}
	}
}

func TestLorenzConcentrated(t *testing.T) {
	v := Vector{0, 0, 0, 8}
	curve := v.Lorenz()
	want := []float64{0, 0, 0, 1}
	for i, w := range want {
		if math.Abs(curve[i]-w) > 1e-12 {
			t.Fatalf("curve = %v, want %v", curve, want)
		}
	}
}

func TestLorenzEmptyAndZero(t *testing.T) {
	if Vector(nil).Lorenz() != nil {
		t.Fatal("nil vector should give nil curve")
	}
	if (Vector{0, 0}).Lorenz() != nil {
		t.Fatal("zero-ball vector should give nil curve")
	}
}

func TestGiniExtremes(t *testing.T) {
	if g := (Vector{3, 3, 3}).Gini(); math.Abs(g) > 1e-12 {
		t.Fatalf("balanced Gini = %v, want 0", g)
	}
	// All mass in one of n bins: G = (n-1)/n.
	g := (Vector{0, 0, 0, 12}).Gini()
	if math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("concentrated Gini = %v, want 0.75", g)
	}
	if (Vector{}).Gini() != 0 || (Vector{0, 0}).Gini() != 0 {
		t.Fatal("degenerate Gini should be 0")
	}
}

func TestGiniKnownValue(t *testing.T) {
	// {1, 3}: mean 2, mean abs diff = |1-3|*2/4 = 1, G = 1/(2*2) = 0.25.
	g := (Vector{1, 3}).Gini()
	if math.Abs(g-0.25) > 1e-12 {
		t.Fatalf("Gini = %v, want 0.25", g)
	}
}

func TestGiniProperties(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		v := make(Vector, len(raw))
		total := 0
		for i, x := range raw {
			v[i] = int(x % 32)
			total += v[i]
		}
		g := v.Gini()
		if total == 0 {
			return g == 0
		}
		// Range [0, 1) and permutation invariance via sorted recompute.
		if g < -1e-12 || g >= 1 {
			return false
		}
		rev := make(Vector, len(v))
		for i := range v {
			rev[i] = v[len(v)-1-i]
		}
		return math.Abs(g-rev.Gini()) < 1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLorenzMonotoneProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		v := make(Vector, len(raw))
		for i, x := range raw {
			v[i] = int(x % 16)
		}
		curve := v.Lorenz()
		if curve == nil {
			return true
		}
		prev := 0.0
		for _, c := range curve {
			if c < prev-1e-12 {
				return false
			}
			prev = c
		}
		return math.Abs(curve[len(curve)-1]-1) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestGiniDominanceConsistency: a more balanced vector (majorized by the
// other) never has a larger Gini coefficient when totals match.
func TestGiniDominanceConsistency(t *testing.T) {
	flat := Vector{2, 2, 2, 2}
	tilted := Vector{4, 2, 1, 1}
	peaked := Vector{8, 0, 0, 0}
	if !(flat.Gini() <= tilted.Gini() && tilted.Gini() <= peaked.Gini()) {
		t.Fatalf("Gini ordering broken: %v %v %v", flat.Gini(), tilted.Gini(), peaked.Gini())
	}
}
