package loadvec

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicAccessors(t *testing.T) {
	v := Vector{3, 0, 2, 2, 1}
	if got := v.Total(); got != 8 {
		t.Fatalf("Total = %d", got)
	}
	if got := v.Max(); got != 3 {
		t.Fatalf("Max = %d", got)
	}
	if got := v.Min(); got != 0 {
		t.Fatalf("Min = %d", got)
	}
	if got := v.Average(); got != 1.6 {
		t.Fatalf("Average = %v", got)
	}
	if got := v.Gap(); got != 1.4 {
		t.Fatalf("Gap = %v", got)
	}
}

func TestEmptyVector(t *testing.T) {
	var v Vector
	if v.Total() != 0 || v.Max() != 0 || v.Min() != 0 || v.Average() != 0 {
		t.Fatal("empty vector accessors should be zero")
	}
	if len(v.Sorted()) != 0 {
		t.Fatal("Sorted of empty should be empty")
	}
}

func TestClone(t *testing.T) {
	v := Vector{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestSortedDecreasing(t *testing.T) {
	v := Vector{1, 5, 3, 3, 0}
	want := []int{5, 3, 3, 1, 0}
	if got := v.Sorted(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Sorted = %v, want %v", got, want)
	}
	// Original untouched.
	if !reflect.DeepEqual(v, Vector{1, 5, 3, 3, 0}) {
		t.Fatal("Sorted modified the receiver")
	}
}

func TestNuY(t *testing.T) {
	v := Vector{3, 0, 2, 2, 1}
	cases := []struct{ y, want int }{
		{0, 5}, {1, 4}, {2, 3}, {3, 1}, {4, 0},
	}
	for _, tc := range cases {
		if got := v.NuY(tc.y); got != tc.want {
			t.Fatalf("NuY(%d) = %d, want %d", tc.y, got, tc.want)
		}
	}
}

func TestNuAllMatchesNuY(t *testing.T) {
	v := Vector{3, 0, 2, 2, 1, 7, 7, 1}
	nu := v.NuAll()
	if len(nu) != v.Max()+1 {
		t.Fatalf("NuAll length = %d, want %d", len(nu), v.Max()+1)
	}
	for y := 0; y <= v.Max(); y++ {
		if nu[y] != v.NuY(y) {
			t.Fatalf("NuAll[%d] = %d, NuY = %d", y, nu[y], v.NuY(y))
		}
	}
}

func TestMuY(t *testing.T) {
	// Bin with 3 balls has heights 1,2,3; bin with 1 ball has height 1.
	v := Vector{3, 1}
	cases := []struct{ y, want int }{
		{0, 4}, {1, 4}, {2, 2}, {3, 1}, {4, 0},
	}
	for _, tc := range cases {
		if got := v.MuY(tc.y); got != tc.want {
			t.Fatalf("MuY(%d) = %d, want %d", tc.y, got, tc.want)
		}
	}
}

func TestNuLeMuProperty(t *testing.T) {
	// ν_y <= µ_y for all y >= 1 (every bin with >= y balls contributes at
	// least one ball of height >= y). Used implicitly by the paper.
	if err := quick.Check(func(raw []uint8, yRaw uint8) bool {
		v := make(Vector, len(raw))
		for i, x := range raw {
			v[i] = int(x % 16)
		}
		y := int(yRaw%18) + 1
		return v.NuY(y) <= v.MuY(y)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixTop(t *testing.T) {
	v := Vector{1, 5, 3}
	cases := []struct{ x, want int }{
		{-1, 0}, {0, 0}, {1, 5}, {2, 8}, {3, 9}, {10, 9},
	}
	for _, tc := range cases {
		if got := v.PrefixTop(tc.x); got != tc.want {
			t.Fatalf("PrefixTop(%d) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestHistogram(t *testing.T) {
	v := Vector{0, 0, 1, 3, 3, 3}
	want := []int{2, 1, 0, 3}
	if got := v.Histogram(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Histogram = %v, want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	v := Vector{1, 2, 3}
	if err := v.Validate(6); err != nil {
		t.Fatalf("valid vector rejected: %v", err)
	}
	if err := v.Validate(-1); err != nil {
		t.Fatalf("ball count check should be skipped for negative balls: %v", err)
	}
	if err := v.Validate(5); err == nil {
		t.Fatal("wrong total accepted")
	}
	if err := (Vector{1, -1}).Validate(-1); err == nil {
		t.Fatal("negative load accepted")
	}
}

func TestMajorizesPrefixes(t *testing.T) {
	// {4,0} majorizes {2,2}: prefixes 4>=2, 4>=4.
	if !MajorizesPrefixes(Vector{4, 0}, Vector{2, 2}) {
		t.Fatal("{4,0} should majorize {2,2}")
	}
	if MajorizesPrefixes(Vector{2, 2}, Vector{4, 0}) {
		t.Fatal("{2,2} should not majorize {4,0}")
	}
	// Equal vectors majorize each other.
	if !MajorizesPrefixes(Vector{3, 1}, Vector{1, 3}) || !MajorizesPrefixes(Vector{1, 3}, Vector{3, 1}) {
		t.Fatal("permuted vectors should majorize each other")
	}
}

func TestMajorizesDifferentLengths(t *testing.T) {
	// {2,1,1} vs {2,2}: prefix sums 2,3,4 vs 2,4,4 -> does NOT majorize.
	if MajorizesPrefixes(Vector{2, 1, 1}, Vector{2, 2}) {
		t.Fatal("{2,1,1} should not majorize {2,2}: prefix sum 3 < 4 at x=2")
	}
	// {2,2} vs {2,1,1}: prefix sums 2,4,4 vs 2,3,4 -> does majorize.
	if !MajorizesPrefixes(Vector{2, 2}, Vector{2, 1, 1}) {
		t.Fatal("{2,2} should majorize {2,1,1}")
	}
}

func TestDominates(t *testing.T) {
	if !Dominates(Vector{3, 2}, Vector{2, 2}) {
		t.Fatal("{3,2} should dominate {2,2}")
	}
	if Dominates(Vector{3, 1}, Vector{2, 2}) {
		t.Fatal("{3,1} should not dominate {2,2} (sorted second entries 1 < 2)")
	}
	if !Dominates(Vector{1, 1, 1}, Vector{1, 1}) {
		t.Fatal("longer vector with extra entries should dominate")
	}
	if Dominates(Vector{1, 1}, Vector{1, 1, 1}) {
		t.Fatal("{1,1} should not dominate {1,1,1}")
	}
}

func TestDominationImpliesMajorizationProperty(t *testing.T) {
	// The paper notes domination is stronger than majorization; verify the
	// per-sample analogue: Dominates(a,b) => MajorizesPrefixes(a,b).
	if err := quick.Check(func(ra, rb []uint8) bool {
		a := make(Vector, len(ra))
		for i, x := range ra {
			a[i] = int(x % 8)
		}
		b := make(Vector, len(rb))
		for i, x := range rb {
			b[i] = int(x % 8)
		}
		if Dominates(a, b) {
			return MajorizesPrefixes(a, b)
		}
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTailCDFAtLeast(t *testing.T) {
	ensemble := []Vector{{2, 0}, {1, 1}, {3, 1}}
	// PrefixTop(1) values: 2, 1, 3. P(>=2) = 2/3.
	if got := TailCDFAtLeast(ensemble, 1, 2); got != 2.0/3.0 {
		t.Fatalf("TailCDFAtLeast = %v", got)
	}
	if got := TailCDFAtLeast(nil, 1, 2); got != 0 {
		t.Fatalf("empty ensemble = %v", got)
	}
}

func TestSortedIsSortedProperty(t *testing.T) {
	if err := quick.Check(func(raw []uint16) bool {
		v := make(Vector, len(raw))
		for i, x := range raw {
			v[i] = int(x)
		}
		s := v.Sorted()
		return sort.SliceIsSorted(s, func(i, j int) bool { return s[i] > s[j] })
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMuNuTotalProperty(t *testing.T) {
	// Sum over y>=1 of ν_y equals the total number of balls.
	if err := quick.Check(func(raw []uint8) bool {
		v := make(Vector, len(raw))
		for i, x := range raw {
			v[i] = int(x % 10)
		}
		sum := 0
		for y := 1; y <= v.Max(); y++ {
			sum += v.NuY(y)
		}
		return sum == v.Total()
	}, nil); err != nil {
		t.Fatal(err)
	}
}
