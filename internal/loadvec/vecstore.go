package loadvec

// VecStore is the multidimensional companion of Store for the online
// serving layer: every bin carries a []float64 load vector (CPU, memory,
// network, ... — the style of multidimensional load Narang & Dutta's
// weighted/vector generalization of multi-choice studies), and placement
// decisions compare a configurable scalar aggregation norm of the vectors.
//
// The store maintains the per-bin aggregated load and its sum eagerly, so
// MeanAgg and GapAgg are O(1); the maximum is maintained lazily — a
// decrement that drains the current maximum only marks it dirty, and the
// next MaxAgg call rescans the n aggregates once. This mirrors the scalar
// stores' rescan-on-max-drain discipline without putting a scan on the
// SubVec hot path.

import (
	"fmt"
	"math"
	"sort"
)

// Norm selects the scalar aggregation applied to a bin's load vector when
// bins are compared and when aggregate statistics are reported.
type Norm int

// Supported aggregation norms.
const (
	// NormLInf aggregates a bin's vector to its maximum component — the
	// bottleneck-resource reading, and the zero-value default.
	NormLInf Norm = iota
	// NormL1 aggregates to the component sum (total resource footprint).
	NormL1
	// NormL2 aggregates to the Euclidean length.
	NormL2
)

var normNames = map[Norm]string{
	NormLInf: "linf",
	NormL1:   "l1",
	NormL2:   "l2",
}

// String returns the canonical short name of the norm.
func (m Norm) String() string {
	if s, ok := normNames[m]; ok {
		return s
	}
	return fmt.Sprintf("norm(%d)", int(m))
}

// NormNames returns the canonical norm names in sorted order.
func NormNames() []string {
	names := make([]string, 0, len(normNames))
	for _, n := range normNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseNorm converts a short name (as printed by Norm.String) back into a
// Norm.
func ParseNorm(s string) (Norm, error) {
	//kdlint:ordered norm names are unique, so the first (only) match is independent of iteration order
	for m, name := range normNames {
		if name == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("loadvec: unknown norm %q (valid: %v)", s, NormNames())
}

// Apply aggregates one load vector under the norm.
func (m Norm) Apply(vec []float64) float64 {
	switch m {
	case NormL1:
		sum := 0.0
		for _, v := range vec {
			sum += v
		}
		return sum
	case NormL2:
		sum := 0.0
		for _, v := range vec {
			sum += v * v
		}
		return math.Sqrt(sum)
	default: // NormLInf
		max := 0.0
		for _, v := range vec {
			if v > max {
				max = v
			}
		}
		return max
	}
}

// VecStore holds one load vector per bin plus its maintained aggregates.
// Like Store, it is not safe for concurrent mutation, but concurrent reads
// with no writer are safe.
type VecStore struct {
	dims int
	norm Norm
	// vecs holds all n vectors flat: bin b component c at vecs[b*dims+c].
	vecs []float64
	// agg[b] is norm.apply of bin b's vector, maintained on every mutation.
	agg []float64
	// sum is the maintained total of agg.
	sum float64
	// max is the maximum aggregate; stale when maxDirty (a decrement
	// drained the maximum) until the next MaxAgg rescan.
	max      float64
	maxDirty bool
}

// NewVecStore returns an empty vector store of n bins with dims >= 1
// components per bin.
func NewVecStore(n, dims int, norm Norm) (*VecStore, error) {
	if n < 1 {
		return nil, fmt.Errorf("loadvec: VecStore needs n >= 1, got %d", n)
	}
	if dims < 1 {
		return nil, fmt.Errorf("loadvec: VecStore needs dims >= 1, got %d", dims)
	}
	if _, ok := normNames[norm]; !ok {
		return nil, fmt.Errorf("loadvec: unknown norm %d (valid: %v)", int(norm), NormNames())
	}
	return &VecStore{
		dims: dims,
		norm: norm,
		vecs: make([]float64, n*dims),
		agg:  make([]float64, n),
	}, nil
}

// Len returns the number of bins.
func (s *VecStore) Len() int { return len(s.agg) }

// Dims returns the number of components per bin.
func (s *VecStore) Dims() int { return s.dims }

// Norm returns the configured aggregation norm.
func (s *VecStore) Norm() Norm { return s.norm }

// checkVec validates one ball's weight vector.
func (s *VecStore) checkVec(w []float64) {
	if len(w) != s.dims {
		panic(fmt.Sprintf("loadvec: weight vector has %d components, store has %d", len(w), s.dims))
	}
	for _, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			panic("loadvec: weight vector components must be finite and non-negative")
		}
	}
}

// AddVec adds the weight vector w (len dims, non-negative components) to
// the bin and returns its new aggregated load.
func (s *VecStore) AddVec(bin int, w []float64) float64 {
	s.checkVec(w)
	vec := s.vecs[bin*s.dims : (bin+1)*s.dims]
	for c, v := range w {
		vec[c] += v
	}
	return s.reaggregate(bin, vec)
}

// SubVec removes the weight vector w from the bin and returns its new
// aggregated load. It panics if any component would go negative: deleting
// weight that is not there is a caller bug.
func (s *VecStore) SubVec(bin int, w []float64) float64 {
	s.checkVec(w)
	vec := s.vecs[bin*s.dims : (bin+1)*s.dims]
	for c, v := range w {
		nv := vec[c] - v
		if nv < 0 {
			// Float cancellation can leave tiny negative residue when a
			// bin drains exactly; clamp it, but reject real underflow.
			if nv < -1e-9 {
				panic("loadvec: SubVec below zero load")
			}
			nv = 0
		}
		vec[c] = nv
	}
	return s.reaggregate(bin, vec)
}

// reaggregate refreshes the bin's aggregate and the store-level sum/max
// after its vector changed.
func (s *VecStore) reaggregate(bin int, vec []float64) float64 {
	old := s.agg[bin]
	a := s.norm.Apply(vec)
	s.agg[bin] = a
	s.sum += a - old
	switch {
	case a >= old:
		if !s.maxDirty && a > s.max {
			s.max = a
		}
	case old == s.max:
		// The (possibly shared) maximum drained; defer the rescan.
		s.maxDirty = true
	}
	return a
}

// AggLoad returns the bin's aggregated load.
func (s *VecStore) AggLoad(bin int) float64 { return s.agg[bin] }

// VecLoad returns a copy of the bin's load vector.
func (s *VecStore) VecLoad(bin int) []float64 {
	out := make([]float64, s.dims)
	copy(out, s.vecs[bin*s.dims:(bin+1)*s.dims])
	return out
}

// RawAgg exposes the per-bin aggregated loads for the decision scans.
// Read-only for callers: mutating it desynchronizes the bookkeeping.
func (s *VecStore) RawAgg() []float64 { return s.agg }

// MaxAgg returns the maximum aggregated load, rescanning once if a
// decrement invalidated the maintained maximum.
func (s *VecStore) MaxAgg() float64 {
	if s.maxDirty {
		max := 0.0
		for _, a := range s.agg {
			if a > max {
				max = a
			}
		}
		s.max = max
		s.maxDirty = false
	}
	return s.max
}

// MeanAgg returns the mean aggregated load over the bins.
func (s *VecStore) MeanAgg() float64 { return s.sum / float64(len(s.agg)) }

// GapAgg returns max minus mean aggregated load — the vector-mode reading
// of the scalar gap.
func (s *VecStore) GapAgg() float64 { return s.MaxAgg() - s.MeanAgg() }

// Reset restores every bin to the zero vector.
func (s *VecStore) Reset() {
	for i := range s.vecs {
		s.vecs[i] = 0
	}
	for i := range s.agg {
		s.agg[i] = 0
	}
	s.sum, s.max, s.maxDirty = 0, 0, false
}
