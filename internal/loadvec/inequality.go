package loadvec

import "sort"

// Lorenz returns the Lorenz curve of the load vector: point i (0-based) is
// the fraction of all balls held by the (i+1)/n least-loaded fraction of
// bins. The curve has n points, is non-decreasing, and ends at 1. It
// returns nil for an empty vector or a vector with no balls.
func (v Vector) Lorenz() []float64 {
	total := v.Total()
	if len(v) == 0 || total == 0 {
		return nil
	}
	asc := make([]int, len(v))
	copy(asc, v)
	sort.Ints(asc)
	curve := make([]float64, len(v))
	running := 0
	for i, x := range asc {
		running += x
		curve[i] = float64(running) / float64(total)
	}
	return curve
}

// Gini returns the Gini coefficient of the load vector: 0 for perfectly
// balanced loads, approaching 1 as all balls concentrate in one bin. The
// storage experiments report it as a balance metric alongside max/mean.
func (v Vector) Gini() float64 {
	n := len(v)
	total := v.Total()
	if n == 0 || total == 0 {
		return 0
	}
	asc := make([]int, n)
	copy(asc, v)
	sort.Ints(asc)
	// G = (2*sum(i*x_i) - (n+1)*sum(x_i)) / (n*sum(x_i)) with 1-based i
	// over ascending loads.
	var weighted int64
	for i, x := range asc {
		weighted += int64(i+1) * int64(x)
	}
	num := 2*weighted - int64(n+1)*int64(total)
	return float64(num) / (float64(n) * float64(total))
}
