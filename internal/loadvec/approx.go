package loadvec

// This file holds the sub-byte stores behind the 10⁸-10⁹-bin regime:
//
//   - NibbleStore: 4 bits per bin (two bins per byte, ~0.5 B/bin) with the
//     same lossless overflow escape as CompactStore — a cell that reaches
//     load 15 moves to a wide side table and is reclaimed when it drains
//     back under the sentinel. The store stays EXACT at every magnitude;
//     the paper's regimes (Theorems 1-2) keep loads far below 15, so the
//     side table stays empty in practice.
//   - SketchStore: the count-min approximate store (internal/sketch) —
//     configurable depth x width saturating uint8 counters, <0.5 B/bin at
//     the default geometry. Loads are ONE-SIDED ESTIMATES: Load/MaxLoad/
//     NuY never under-report (collisions inflate, never deflate), so a max
//     load read off a sketch is an upper bound on the true max. The ball
//     counter stays exact. This is the only store that breaks the
//     bit-identical-across-stores contract; the equivalence tests pin it
//     against the interface kernel on the SAME store instead.

import (
	"fmt"

	"repro/internal/sketch"
)

// nibbleEscape marks a packed cell whose load outgrew 4 bits; the true
// load lives in the wide side table.
const nibbleEscape = 0xF

// NibbleEscape is the sentinel nibble value marking an escaped packed bin;
// exported for the specialized kernels' raw fast path.
const NibbleEscape = nibbleEscape

// NibbleStore packs two bins per byte; cells that reach load 15 escape to
// a wide side table. Loads stay exact at every magnitude.
type NibbleStore struct {
	packed []uint8 // bin b occupies bits [4*(b&1), 4*(b&1)+4) of packed[b>>1]
	wide   map[int]int
	n      int
	max    int
	balls  int
}

// NewNibble returns an empty nibble-packed store over n bins.
func NewNibble(n int) *NibbleStore {
	return &NibbleStore{packed: make([]uint8, (n+1)/2), wide: make(map[int]int), n: n}
}

// Kind implements Store.
func (s *NibbleStore) Kind() StoreKind { return StoreNibble }

// Len implements Store.
func (s *NibbleStore) Len() int { return s.n }

// nib reads bin's packed cell (possibly the escape sentinel).
//
//kd:hotpath
func (s *NibbleStore) nib(bin int) int {
	return int(s.packed[bin>>1]>>((bin&1)<<2)) & 0xF
}

// setNib overwrites bin's packed cell with v in [0, 15].
//
//kd:hotpath
func (s *NibbleStore) setNib(bin, v int) {
	sh := uint(bin&1) << 2
	s.packed[bin>>1] = s.packed[bin>>1]&^(0xF<<sh) | uint8(v)<<sh
}

// Load implements Store. The non-escaped fast path is small enough to
// inline into the specialized round kernels; the wide-table lookup is
// outlined so the map access cannot blow the inlining budget.
//
//kd:hotpath
func (s *NibbleStore) Load(bin int) int {
	if v := int(s.packed[bin>>1]>>((bin&1)<<2)) & 0xF; v != nibbleEscape {
		return v
	}
	return s.loadWide(bin)
}

// loadWide returns the load of an escaped cell from the wide side table.
//
//kd:hotpath
func (s *NibbleStore) loadWide(bin int) int { return s.wide[bin] }

// Add implements Store. Like Load, the in-range increment stays inlinable
// and the escape transitions are outlined into addEscaped.
//
//kd:hotpath
func (s *NibbleStore) Add(bin int) int {
	if v := s.nib(bin); v < nibbleEscape-1 {
		v++
		s.setNib(bin, v)
		if v > s.max {
			s.max = v
		}
		s.balls++
		return v
	}
	return s.addEscaped(bin)
}

// addEscaped handles the two escape cases of Add — the cell is already
// wide, or this increment reaches the escape sentinel and moves it to the
// wide table — including the aggregate bookkeeping.
//
//kd:hotpath
func (s *NibbleStore) addEscaped(bin int) int {
	h := nibbleEscape
	if s.nib(bin) == nibbleEscape {
		h = s.wide[bin] + 1
		s.wide[bin] = h
	} else {
		s.setNib(bin, nibbleEscape)
		s.wide[bin] = nibbleEscape
	}
	if h > s.max {
		s.max = h
	}
	s.balls++
	return h
}

// AddN implements Store: a weighted add that stays in the packed cell
// whenever the result still fits under the escape sentinel, escaping
// otherwise.
//
//kd:hotpath
func (s *NibbleStore) AddN(bin, w int) int {
	checkWeight(w)
	if v := s.nib(bin); v != nibbleEscape && v+w < nibbleEscape {
		h := v + w
		s.setNib(bin, h)
		if h > s.max {
			s.max = h
		}
		s.balls += w
		return h
	}
	return s.addNEscaped(bin, w)
}

// addNEscaped handles the wide-table cases of AddN: the cell is already
// escaped, or this weighted add pushes it to (or past) the sentinel.
//
//kd:hotpath
func (s *NibbleStore) addNEscaped(bin, w int) int {
	var h int
	if s.nib(bin) == nibbleEscape {
		h = s.wide[bin] + w
	} else {
		h = s.nib(bin) + w
		s.setNib(bin, nibbleEscape)
	}
	s.wide[bin] = h
	if h > s.max {
		s.max = h
	}
	s.balls += w
	return h
}

// Sub implements Store. A wide cell that drains back under the escape
// sentinel is reclaimed into its packed cell and removed from the side
// table — the same no-leak discipline as CompactStore.Sub. Draining the
// maximum triggers a full rescan (HistStore remains the deletion-heavy
// choice).
//
//kd:hotpath
func (s *NibbleStore) Sub(bin, w int) int {
	checkWeight(w)
	old := s.Load(bin)
	v := old - w
	if v < 0 {
		panic("loadvec: Sub below zero load")
	}
	if s.nib(bin) == nibbleEscape {
		if v < nibbleEscape {
			// The cell fits in 4 bits again: reclaim it losslessly.
			delete(s.wide, bin)
			s.setNib(bin, v)
		} else {
			s.wide[bin] = v
		}
	} else {
		s.setNib(bin, v)
	}
	s.balls -= w
	if w > 0 && old == s.max {
		s.max = s.rescanMax()
	}
	return v
}

// BulkAdd implements Store: in-range cells increment with the max counter
// in a register; escaped cells fall back to addEscaped.
//
//kd:hotpath
func (s *NibbleStore) BulkAdd(bins []int) {
	max := s.max
	balls := s.balls
	for _, b := range bins {
		if v := s.nib(b); v < nibbleEscape-1 {
			s.setNib(b, v+1)
			if v+1 > max {
				max = v + 1
			}
			balls++
			continue
		}
		// Escape transition: flush the register copies so addEscaped sees
		// consistent state, then reload them.
		s.max, s.balls = max, balls
		s.addEscaped(b)
		max, balls = s.max, s.balls
	}
	s.max = max
	s.balls = balls
}

// BulkSub implements Store: one deferred max rescan for the whole batch,
// with the same escape-cell reclaim as Sub.
//
//kd:hotpath
func (s *NibbleStore) BulkSub(bins []int) {
	touchedMax := false
	for _, b := range bins {
		old := s.Load(b)
		if old == 0 {
			panic("loadvec: Sub below zero load")
		}
		if old == s.max {
			touchedMax = true
		}
		v := old - 1
		if s.nib(b) == nibbleEscape {
			if v < nibbleEscape {
				delete(s.wide, b)
				s.setNib(b, v)
			} else {
				s.wide[b] = v
			}
		} else {
			s.setNib(b, v)
		}
	}
	s.balls -= len(bins)
	if touchedMax {
		s.max = s.rescanMax()
	}
}

// Set implements Store.
func (s *NibbleStore) Set(bin, load int) {
	old := s.Load(bin)
	if s.nib(bin) == nibbleEscape {
		delete(s.wide, bin)
	}
	if load >= nibbleEscape {
		s.setNib(bin, nibbleEscape)
		s.wide[bin] = load
	} else {
		s.setNib(bin, load)
	}
	s.balls += load - old
	switch {
	case load > s.max:
		s.max = load
	case old == s.max && load < old:
		s.max = s.rescanMax()
	}
}

func (s *NibbleStore) rescanMax() int {
	m := 0
	for bin := 0; bin < s.n; bin++ {
		if v := s.Load(bin); v > m {
			m = v
		}
	}
	return m
}

// MaxLoad implements Store.
func (s *NibbleStore) MaxLoad() int { return s.max }

// Balls implements Store.
func (s *NibbleStore) Balls() int { return s.balls }

// NuY implements Store.
func (s *NibbleStore) NuY(y int) int {
	if y <= 0 {
		return s.n
	}
	c := 0
	if y >= nibbleEscape {
		// Only escaped cells can hold loads this large.
		for _, v := range s.wide {
			if v >= y {
				c++
			}
		}
		return c
	}
	for bin := 0; bin < s.n; bin++ {
		if s.nib(bin) >= y {
			c++ // escaped cells (nib == 15) hold >= 15 >= y
		}
	}
	return c
}

// Vector implements Store.
func (s *NibbleStore) Vector() Vector {
	out := make(Vector, s.n)
	for i := range out {
		out[i] = s.Load(i)
	}
	return out
}

// Reset implements Store.
func (s *NibbleStore) Reset() {
	for i := range s.packed {
		s.packed[i] = 0
	}
	s.wide = make(map[int]int)
	s.max, s.balls = 0, 0
}

// BytesPerBin implements Store.
func (s *NibbleStore) BytesPerBin() float64 {
	// ~48 bytes per escaped entry is a conservative map-overhead estimate.
	return 0.5 + float64(len(s.wide)*48)/float64(s.n)
}

// Escaped returns the number of bins currently in the wide side table.
func (s *NibbleStore) Escaped() int { return len(s.wide) }

// RawLoads exposes the nibble store's packed cells and wide side table for
// the store-specialized kernels: bin b occupies the low (b even) or high
// (b odd) nibble of packed[b/2], and a cell equal to NibbleEscape holds its
// true load in the map. Read-only for callers.
func (s *NibbleStore) RawLoads() ([]uint8, map[int]int) { return s.packed, s.wide }

// SketchStore is the count-min approximate store: Load returns a one-sided
// overestimate (never below the bin's true load), Balls stays exact, and
// MaxLoad is a running upper bound on the true maximum — on Add it tracks
// the largest post-add estimate, and draining the tracked maximum triggers
// a full estimate rescan, mirroring the dense store's discipline.
type SketchStore struct {
	cm    *sketch.CountMin
	n     int
	max   int
	balls int
}

// NewSketch returns an empty sketch store over n bins. width 0 auto-sizes
// to n/8 cells per row (~0.25 B/bin at the default depth) and depth 0
// defaults to 2 rows; explicit widths round up to a power of two.
func NewSketch(n, width, depth int) (*SketchStore, error) {
	if width == 0 {
		width = n / 8
	}
	if depth == 0 {
		depth = 2
	}
	cm, err := sketch.New(width, depth)
	if err != nil {
		return nil, fmt.Errorf("loadvec: %w", err)
	}
	return &SketchStore{cm: cm, n: n}, nil
}

// Kind implements Store.
func (s *SketchStore) Kind() StoreKind { return StoreSketch }

// Len implements Store.
func (s *SketchStore) Len() int { return s.n }

// Load implements Store: the bin's current estimate (>= its true load).
//
//kd:hotpath
func (s *SketchStore) Load(bin int) int { return s.cm.Estimate(bin) }

// Add implements Store.
//
//kd:hotpath
func (s *SketchStore) Add(bin int) int {
	h := s.cm.Add(bin, 1)
	if h > s.max {
		s.max = h
	}
	s.balls++
	return h
}

// AddN implements Store.
//
//kd:hotpath
func (s *SketchStore) AddN(bin, w int) int {
	checkWeight(w)
	h := s.cm.Add(bin, w)
	if h > s.max {
		s.max = h
	}
	s.balls += w
	return h
}

// Sub implements Store. The zero-load panic contract is enforced on the
// estimate: an estimate below w proves the true load is below w (estimates
// never under-report), so the caller is deleting a ball that is not there.
//
//kd:hotpath
func (s *SketchStore) Sub(bin, w int) int {
	checkWeight(w)
	old := s.cm.Estimate(bin)
	if old < w {
		panic("loadvec: Sub below zero load")
	}
	s.cm.Sub(bin, w)
	s.balls -= w
	if w > 0 && old == s.max {
		s.max = s.rescanMax()
	}
	return s.cm.Estimate(bin)
}

// BulkAdd implements Store: the max and ball counters stay in registers
// across the batch.
//
//kd:hotpath
func (s *SketchStore) BulkAdd(bins []int) {
	max := s.max
	for _, b := range bins {
		if h := s.cm.Add(b, 1); h > max {
			max = h
		}
	}
	s.max = max
	s.balls += len(bins)
}

// BulkSub implements Store: one deferred max rescan for the whole batch.
//
//kd:hotpath
func (s *SketchStore) BulkSub(bins []int) {
	touchedMax := false
	for _, b := range bins {
		old := s.cm.Estimate(b)
		if old < 1 {
			panic("loadvec: Sub below zero load")
		}
		if old == s.max {
			touchedMax = true
		}
		s.cm.Sub(b, 1)
	}
	s.balls -= len(bins)
	if touchedMax {
		s.max = s.rescanMax()
	}
}

// Set implements Store — approximately: the sketch cannot address one bin
// exclusively, so Set applies the delta between the target and the current
// ESTIMATE (colliding bins shift with it). Exact-restoration scenarios
// need an exact store; Set here keeps the Store contract total for generic
// store-iterating tests.
func (s *SketchStore) Set(bin, load int) {
	if load < 0 {
		panic("loadvec: negative load")
	}
	old := s.cm.Estimate(bin)
	switch {
	case load > old:
		s.cm.Add(bin, load-old)
	case load < old:
		s.cm.Sub(bin, old-load)
	}
	s.balls += load - old
	switch {
	case load > s.max:
		s.max = load
	case old == s.max && load < old:
		s.max = s.rescanMax()
	}
}

// rescanMax recomputes the maximum estimate over all bins — O(n · depth),
// paid only when a deletion drains the tracked maximum.
func (s *SketchStore) rescanMax() int {
	m := 0
	for bin := 0; bin < s.n; bin++ {
		if v := s.cm.Estimate(bin); v > m {
			m = v
		}
	}
	return m
}

// MaxLoad implements Store: an O(1) upper bound on the true maximum load
// (exact over the estimates after insert-only streams and after any
// deletion that drained the tracked maximum).
func (s *SketchStore) MaxLoad() int { return s.max }

// Balls implements Store (exact: ball accounting never routes through the
// counters).
func (s *SketchStore) Balls() int { return s.balls }

// NuY implements Store: the number of bins whose ESTIMATE is at least y —
// a one-sided overcount of the true ν_y. O(n · depth); a final-statistics
// operation, never on the placement path.
func (s *SketchStore) NuY(y int) int {
	if y <= 0 {
		return s.n
	}
	c := 0
	for bin := 0; bin < s.n; bin++ {
		if s.cm.Estimate(bin) >= y {
			c++
		}
	}
	return c
}

// Vector implements Store: the per-bin estimates.
func (s *SketchStore) Vector() Vector {
	out := make(Vector, s.n)
	for i := range out {
		out[i] = s.cm.Estimate(i)
	}
	return out
}

// Reset implements Store.
func (s *SketchStore) Reset() {
	s.cm.Reset()
	s.max, s.balls = 0, 0
}

// BytesPerBin implements Store.
func (s *SketchStore) BytesPerBin() float64 {
	return float64(s.cm.Bytes()) / float64(s.n)
}

// RawSketch exposes the underlying count-min array for the
// store-specialized kernels. Read-only for callers.
func (s *SketchStore) RawSketch() *sketch.CountMin { return s.cm }
