package loadvec

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func allStores(t *testing.T, n int) map[string]Store {
	t.Helper()
	out := make(map[string]Store)
	for _, kind := range []StoreKind{StoreDense, StoreCompact, StoreHist, StoreNibble} {
		s, err := NewStore(kind, n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Kind() != kind {
			t.Fatalf("Kind() = %v, want %v", s.Kind(), kind)
		}
		out[kind.String()] = s
	}
	return out
}

func TestStoreKindRoundTrip(t *testing.T) {
	for _, kind := range []StoreKind{StoreDense, StoreCompact, StoreHist, StoreNibble, StoreSketch} {
		got, err := ParseStoreKind(kind.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != kind {
			t.Fatalf("round trip %v -> %q -> %v", kind, kind.String(), got)
		}
	}
	if _, err := ParseStoreKind("nope"); err == nil {
		t.Fatal("ParseStoreKind accepted garbage")
	}
	if _, err := NewStore(StoreKind(99), 4); err == nil {
		t.Fatal("NewStore accepted an unknown kind")
	}
	names := StoreNames()
	want := []string{"compact", "dense", "hist", "nibble", "sketch"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("StoreNames() = %v, want sorted %v", names, want)
	}
	help := StoreHelp()
	if len(help) != len(want) {
		t.Fatalf("StoreHelp() has %d lines, want %d", len(help), len(want))
	}
	for i, line := range help {
		if !strings.HasPrefix(line, want[i]+" — ") || len(line) <= len(want[i])+5 {
			t.Fatalf("StoreHelp()[%d] = %q, want %q with a non-empty note", i, line, want[i])
		}
	}
}

// TestStoresAgreeWithDense drives all three stores through an identical
// random-ish Add/Set/Reset schedule and checks every accessor agrees with
// the dense reference after every mutation batch.
func TestStoresAgreeWithDense(t *testing.T) {
	const n = 17
	stores := allStores(t, n)
	ref := stores["dense"]

	check := func(stage string) {
		t.Helper()
		want := ref.Vector()
		for name, s := range stores {
			if s.Len() != n {
				t.Fatalf("%s/%s: Len = %d", stage, name, s.Len())
			}
			if got := s.Vector(); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/%s: Vector = %v, want %v", stage, name, got, want)
			}
			for b := 0; b < n; b++ {
				if s.Load(b) != want[b] {
					t.Fatalf("%s/%s: Load(%d) = %d, want %d", stage, name, b, s.Load(b), want[b])
				}
			}
			if s.MaxLoad() != ref.MaxLoad() {
				t.Fatalf("%s/%s: MaxLoad = %d, want %d", stage, name, s.MaxLoad(), ref.MaxLoad())
			}
			if s.Balls() != ref.Balls() {
				t.Fatalf("%s/%s: Balls = %d, want %d", stage, name, s.Balls(), ref.Balls())
			}
			for y := -1; y <= ref.MaxLoad()+2; y++ {
				if s.NuY(y) != ref.NuY(y) {
					t.Fatalf("%s/%s: NuY(%d) = %d, want %d", stage, name, y, s.NuY(y), ref.NuY(y))
				}
			}
		}
	}

	add := func(bin int) {
		var want int
		first := true
		for name, s := range stores {
			h := s.Add(bin)
			if first {
				want, first = h, false
			} else if h != want {
				t.Fatalf("Add(%d) on %s returned %d, other store returned %d", bin, name, h, want)
			}
		}
	}

	for i := 0; i < 200; i++ {
		add((i * 7) % n)
	}
	check("adds")

	for _, s := range stores {
		s.Set(3, 0)
		s.Set(5, 42)
	}
	check("sets")

	// Lowering the unique maximum must rescan correctly.
	for _, s := range stores {
		s.Set(5, 1)
	}
	check("lower-max")

	for _, s := range stores {
		s.Reset()
	}
	check("reset")
	if ref.Balls() != 0 || ref.MaxLoad() != 0 {
		t.Fatal("reset left non-zero aggregates")
	}

	for i := 0; i < 50; i++ {
		add(i % n)
	}
	check("post-reset adds")
}

// TestCompactOverflowEscape pushes a bin past the uint16 range and checks
// the wide-cell escape keeps loads exact.
func TestCompactOverflowEscape(t *testing.T) {
	s := NewCompact(3)
	d := NewDense(3)
	const target = escape16 + 10
	for i := 0; i < target; i++ {
		hs := s.Add(1)
		hd := d.Add(1)
		if hs != hd {
			t.Fatalf("height diverged at ball %d: compact %d dense %d", i, hs, hd)
		}
	}
	if s.Escaped() != 1 {
		t.Fatalf("Escaped = %d, want 1", s.Escaped())
	}
	if s.Load(1) != target || s.MaxLoad() != target {
		t.Fatalf("Load/MaxLoad = %d/%d, want %d", s.Load(1), s.MaxLoad(), target)
	}
	if got, want := s.Vector(), d.Vector(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Vector = %v, want %v", got, want)
	}
	for _, y := range []int{0, 1, escape16 - 1, escape16, target, target + 1} {
		if s.NuY(y) != d.NuY(y) {
			t.Fatalf("NuY(%d) = %d, want %d", y, s.NuY(y), d.NuY(y))
		}
	}
	// Set across the escape boundary in both directions.
	s.Set(1, 5)
	d.Set(1, 5)
	if s.Escaped() != 0 {
		t.Fatalf("Escaped after Set = %d, want 0", s.Escaped())
	}
	s.Set(2, escape16+3)
	d.Set(2, escape16+3)
	if !reflect.DeepEqual(s.Vector(), d.Vector()) || s.MaxLoad() != d.MaxLoad() || s.Balls() != d.Balls() {
		t.Fatalf("post-Set state diverged: %v vs %v", s.Vector(), d.Vector())
	}
	s.Reset()
	if s.Escaped() != 0 || s.Balls() != 0 || s.MaxLoad() != 0 {
		t.Fatal("Reset left escaped state behind")
	}
}

// TestHistStoreHistogram checks the maintained histogram against the dense
// Vector().Histogram().
func TestHistStoreHistogram(t *testing.T) {
	s := NewHist(9)
	for i := 0; i < 40; i++ {
		s.Add((i * i) % 9)
	}
	got := s.Histogram()
	want := s.Vector().Histogram()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Histogram = %v, want %v", got, want)
	}
}

// TestStoreAgreementProperty: random Add schedules leave all stores in
// identical observable states.
func TestStoreAgreementProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw, ballsRaw uint8) bool {
		n := int(nRaw%30) + 1
		balls := int(ballsRaw) * 4
		stores := []Store{NewDense(n), NewCompact(n), NewHist(n)}
		st := seed
		next := func() uint64 { // splitmix-style local stream
			st += 0x9e3779b97f4a7c15
			z := st
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			return z ^ (z >> 27)
		}
		for i := 0; i < balls; i++ {
			bin := int(next() % uint64(n))
			h := stores[0].Add(bin)
			for _, s := range stores[1:] {
				if s.Add(bin) != h {
					return false
				}
			}
		}
		ref := stores[0]
		for _, s := range stores[1:] {
			if !reflect.DeepEqual(s.Vector(), ref.Vector()) ||
				s.MaxLoad() != ref.MaxLoad() || s.Balls() != ref.Balls() ||
				s.NuY(ref.MaxLoad()) != ref.NuY(ref.MaxLoad()) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreBytesPerBin(t *testing.T) {
	n := 64
	stores := allStores(t, n)
	if b := stores["dense"].BytesPerBin(); b != 8 {
		t.Fatalf("dense BytesPerBin = %v", b)
	}
	if b := stores["compact"].BytesPerBin(); b != 2 {
		t.Fatalf("compact BytesPerBin (no escapes) = %v", b)
	}
	if b := stores["hist"].BytesPerBin(); b < 4 {
		t.Fatalf("hist BytesPerBin = %v", b)
	}
}

// TestBulkAddMatchesAdd: on every store, BulkAdd must leave exactly the
// state of calling Add once per entry — including the compact store's
// escape transition mid-batch, whose register flush/reload around
// addEscaped no process-level test crosses (the kernel equivalence oracle
// calls the same BulkAdd on both sides, so only a direct store-level
// coupling can catch a bug here).
func TestBulkAddMatchesAdd(t *testing.T) {
	build := func(kind StoreKind) (Store, Store) {
		a, err := NewStore(kind, 8)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewStore(kind, 8)
		if err != nil {
			t.Fatal(err)
		}
		return a, b
	}
	check := func(name string, a, b Store) {
		t.Helper()
		if !reflect.DeepEqual(a.Vector(), b.Vector()) {
			t.Fatalf("%s: vectors diverged:\nbulk %v\nadds %v", name, a.Vector(), b.Vector())
		}
		if a.MaxLoad() != b.MaxLoad() || a.Balls() != b.Balls() {
			t.Fatalf("%s: aggregates diverged: max %d/%d balls %d/%d",
				name, a.MaxLoad(), b.MaxLoad(), a.Balls(), b.Balls())
		}
	}
	bins := []int{3, 1, 3, 3, 7, 1, 3, 0, 3}
	for _, kind := range []StoreKind{StoreDense, StoreCompact, StoreHist, StoreNibble} {
		bulk, serial := build(kind)
		bulk.BulkAdd(bins)
		for _, b := range bins {
			serial.Add(b)
		}
		check(kind.String(), bulk, serial)
	}

	// Compact escape transition inside one batch: start bin 2 just below
	// the sentinel so the batch crosses 65534 -> escape -> wide increments,
	// interleaved with in-range increments on other bins.
	bulk, serial := build(StoreCompact)
	bulk.Set(2, 65533)
	serial.Set(2, 65533)
	batch := []int{2, 5, 2, 2, 5, 2}
	bulk.BulkAdd(batch)
	for _, b := range batch {
		serial.Add(b)
	}
	check("compact-escape", bulk, serial)
	if got := bulk.Load(2); got != 65537 {
		t.Fatalf("escaped bin load = %d, want 65537", got)
	}
	if bulk.(*CompactStore).Escaped() != 1 {
		t.Fatalf("escaped cells = %d, want 1", bulk.(*CompactStore).Escaped())
	}
	if bulk.MaxLoad() != 65537 {
		t.Fatalf("MaxLoad = %d, want 65537", bulk.MaxLoad())
	}
}
