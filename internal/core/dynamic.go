package core

// DynamicKD instantiates the paper's second Section 7 future-work sketch:
// "the performance of (k,d)-choice can be further improved by adjusting the
// parameter k dynamically in each round". The paper gives no concrete
// policy, so this file defines one natural instantiation (documented in
// DESIGN.md as our substitution):
//
// Each round samples d bins as usual and materializes the slots. Let
// T = floor(ballsPlaced/n) + 1 be the current target ceiling (the best
// possible max load if every bin were filled evenly, plus the ball being
// placed). The round places a ball into EVERY slot with height <= T — the
// round's k_r adapts to how much under-ceiling capacity the sample
// exposed. If no slot qualifies, the single lowest slot receives a ball so
// the process always makes progress.
//
// Intuition: rounds stop "wasting" balls on bins already at the ceiling,
// which is exactly what the paper hopes dynamic k buys; message cost stays
// d per round but the balls-per-round (and so the cost per ball) adapts.

// roundDynamic places between 1 and maxPlace balls and returns the number
// placed.
func (pr *Process) roundDynamic(maxPlace int) int {
	pr.makeSlots(pr.roundPrologue())
	sortSlots(pr.slots)
	target := pr.balls/pr.n + 1
	toPlace := 0
	for toPlace < len(pr.slots) && toPlace < maxPlace && pr.slots[toPlace].height <= target {
		toPlace++
	}
	if toPlace == 0 {
		toPlace = 1 // progress guarantee: lowest slot receives a ball
	}
	placed, heights := pr.beginObs(toPlace)
	for s := 0; s < toPlace; s++ {
		b := pr.slots[s].bin
		h := pr.place(b)
		if placed != nil {
			placed[s] = b
			heights[s] = h
		}
	}
	pr.messages += int64(pr.p.D)
	pr.notify(pr.samples, placed, heights)
	return toPlace
}
