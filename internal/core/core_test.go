package core

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func newKD(t *testing.T, n, k, d int, seed uint64) *Process {
	t.Helper()
	pr, err := New(KDChoice, Params{N: n, K: k, D: d}, xrand.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestNewValidation(t *testing.T) {
	rng := xrand.New(1)
	cases := []struct {
		name   string
		policy Policy
		p      Params
		bad    string
	}{
		{"nil rng handled separately", KDChoice, Params{N: 4, K: 1, D: 2}, ""},
		{"n zero", KDChoice, Params{N: 0, K: 1, D: 2}, "N"},
		{"k zero", KDChoice, Params{N: 4, K: 0, D: 2}, "K >= 1"},
		{"k equals d", KDChoice, Params{N: 4, K: 2, D: 2}, "D > K"},
		{"d exceeds n", KDChoice, Params{N: 4, K: 1, D: 5}, "D <= N"},
		{"serialized bad sigma len", SerializedKD, Params{N: 8, K: 3, D: 4, Sigma: []int{0, 1}}, "Sigma"},
		{"serialized sigma not perm", SerializedKD, Params{N: 8, K: 3, D: 4, Sigma: []int{0, 0, 1}}, "permutation"},
		{"dchoice d zero", DChoice, Params{N: 4, D: 0}, "D >= 1"},
		{"dchoice d exceeds n", DChoice, Params{N: 4, D: 5}, "D <= N"},
		{"alwaysgoleft d exceeds n", AlwaysGoLeft, Params{N: 4, D: 8}, "D <= N"},
		{"beta negative", OnePlusBeta, Params{N: 4, Beta: -0.1}, "Beta"},
		{"beta above one", OnePlusBeta, Params{N: 4, Beta: 1.1}, "Beta"},
		{"x0 negative", SAx0, Params{N: 4, X0: -1}, "X0"},
		{"x0 above n", SAx0, Params{N: 4, X0: 5}, "X0"},
		{"unknown policy", Policy(99), Params{N: 4}, "unknown policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.policy, tc.p, rng)
			if tc.bad == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error mentioning %q, got nil", tc.bad)
			}
			if !strings.Contains(err.Error(), tc.bad) {
				t.Fatalf("error %q does not mention %q", err, tc.bad)
			}
		})
	}
}

func TestNewNilRNG(t *testing.T) {
	if _, err := New(KDChoice, Params{N: 4, K: 1, D: 2}, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad params did not panic")
		}
	}()
	MustNew(KDChoice, Params{N: 0}, xrand.New(1))
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, p := range []Policy{KDChoice, SerializedKD, DChoice, SingleChoice, OnePlusBeta, AlwaysGoLeft, AdaptiveKD, SAx0} {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("round trip %v -> %q -> %v", p, p.String(), got)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
	if s := Policy(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("unknown policy String = %q", s)
	}
}

func TestBallConservationAllPolicies(t *testing.T) {
	type cfg struct {
		policy Policy
		p      Params
	}
	cases := []cfg{
		{KDChoice, Params{N: 64, K: 2, D: 3}},
		{KDChoice, Params{N: 64, K: 8, D: 17}},
		{SerializedKD, Params{N: 64, K: 3, D: 5}},
		{SerializedKD, Params{N: 64, K: 3, D: 5, RandomSigma: true}},
		{AdaptiveKD, Params{N: 64, K: 2, D: 3}},
		{DChoice, Params{N: 64, D: 2}},
		{SingleChoice, Params{N: 64}},
		{OnePlusBeta, Params{N: 64, Beta: 0.5}},
		{AlwaysGoLeft, Params{N: 64, D: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.policy.String(), func(t *testing.T) {
			pr := MustNew(tc.policy, tc.p, xrand.New(7))
			const m = 640
			pr.Place(m)
			if pr.Balls() != m {
				t.Fatalf("Balls = %d, want %d", pr.Balls(), m)
			}
			if got := pr.Loads().Total(); got != m {
				t.Fatalf("total load = %d, want %d", got, m)
			}
			if err := pr.Loads().Validate(m); err != nil {
				t.Fatal(err)
			}
			if pr.MaxLoad() != pr.Loads().Max() {
				t.Fatalf("MaxLoad %d != Loads().Max() %d", pr.MaxLoad(), pr.Loads().Max())
			}
		})
	}
}

func TestSAx0Conservation(t *testing.T) {
	pr := MustNew(SAx0, Params{N: 64, X0: 8}, xrand.New(7))
	const attempts = 1000
	pr.Place(attempts)
	if got := pr.Balls() + pr.Discarded(); got != attempts {
		t.Fatalf("placed %d + discarded %d != attempts %d", pr.Balls(), pr.Discarded(), attempts)
	}
	if got := pr.Loads().Total(); got != pr.Balls() {
		t.Fatalf("total load %d != placed %d", got, pr.Balls())
	}
	if pr.Discarded() == 0 {
		t.Fatal("SAx0 with x0=8 should discard some balls")
	}
}

func TestBallConservationProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw, kRaw, dRaw, mRaw uint16) bool {
		n := int(nRaw%200) + 8
		k := int(kRaw%8) + 1
		d := k + 1 + int(dRaw%8)
		if d > n {
			d = n
			if k >= d {
				k = d - 1
			}
		}
		m := int(mRaw % 2048)
		pr := MustNew(KDChoice, Params{N: n, K: k, D: d}, xrand.New(seed))
		pr.Place(m)
		return pr.Loads().Total() == m && pr.Balls() == m
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Scenario tests: the worked examples from the paper's introduction. Bins
// bin1..bin4 hold 3, 2, 1, 0 balls; (3,4)-choice with d = 4 samples.
func scenarioProcess(t *testing.T) *Process {
	t.Helper()
	pr := MustNew(KDChoice, Params{N: 4, K: 3, D: 4}, xrand.New(1))
	pr.setLoads([]int{3, 2, 1, 0})
	return pr
}

// checkLoads compares the process's load vector against want.
func checkLoads(t *testing.T, pr *Process, want []int, stage string) {
	t.Helper()
	got := pr.Loads()
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("%s: loads = %v, want %v", stage, got, want)
		}
	}
}

func TestPaperScenarioA(t *testing.T) {
	// (a) each of the four bins sampled once: bin2, bin3, bin4 receive one
	// ball each (the conceptual ball at height 4 in bin1 is removed).
	pr := scenarioProcess(t)
	copy(pr.samples, []int{0, 1, 2, 3})
	pr.roundKDFromSamples(3)
	checkLoads(t, pr, []int{3, 3, 2, 1}, "scenario (a)")
}

func TestPaperScenarioB(t *testing.T) {
	// (b) bin2 and bin3 sampled once, bin4 twice: "bin3 receives a ball and
	// bin4 receives two balls".
	pr := scenarioProcess(t)
	copy(pr.samples, []int{1, 2, 3, 3})
	pr.roundKDFromSamples(3)
	checkLoads(t, pr, []int{3, 2, 2, 2}, "scenario (b)")
}

func TestPaperScenarioC(t *testing.T) {
	// (c) bin1 and bin4 sampled twice each: "bin1 receives one ball and
	// bin4 receives two".
	pr := scenarioProcess(t)
	copy(pr.samples, []int{0, 0, 3, 3})
	pr.roundKDFromSamples(3)
	checkLoads(t, pr, []int{4, 2, 1, 2}, "scenario (c)")
}

func TestAdaptivePaperExample(t *testing.T) {
	// Section 7: in (2,3)-choice with sampled loads {0, 2, 3}, the adaptive
	// policy puts BOTH balls into the empty bin.
	pr := MustNew(AdaptiveKD, Params{N: 3, K: 2, D: 3}, xrand.New(1))
	pr.setLoads([]int{0, 2, 3})
	copy(pr.samples, []int{0, 1, 2})
	// Drive the adaptive round directly with fixed samples: replicate the
	// candidate scan portion by calling the internal round with a stacked
	// sample buffer. roundAdaptive re-samples, so instead check via many
	// trials that the strict policy never does this but adaptive does.
	cands := []int{0, 1, 2}
	pr.cands = pr.cands[:0]
	pr.cands = append(pr.cands, cands...)
	// Place 2 balls greedily among candidates.
	for j := 0; j < 2; j++ {
		best := -1
		for _, b := range pr.cands {
			if best == -1 || pr.Load(b) < pr.Load(best) {
				best = b
			}
		}
		pr.place(best)
	}
	checkLoads(t, pr, []int{2, 2, 3}, "adaptive example")
}

func TestPlacePartialRounds(t *testing.T) {
	pr := newKD(t, 32, 4, 8, 3)
	pr.Place(10) // 2 full rounds + 1 partial with 2 balls
	if pr.Balls() != 10 {
		t.Fatalf("Balls = %d", pr.Balls())
	}
	if pr.Rounds() != 3 {
		t.Fatalf("Rounds = %d, want 3", pr.Rounds())
	}
	if pr.Loads().Total() != 10 {
		t.Fatalf("total = %d", pr.Loads().Total())
	}
}

func TestPlaceNegativePanics(t *testing.T) {
	pr := newKD(t, 8, 1, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Place(-1) did not panic")
		}
	}()
	pr.Place(-1)
}

func TestPlaceZeroIsNoop(t *testing.T) {
	pr := newKD(t, 8, 1, 2, 1)
	pr.Place(0)
	if pr.Balls() != 0 || pr.Rounds() != 0 {
		t.Fatal("Place(0) did something")
	}
}

func TestRoundSize(t *testing.T) {
	cases := []struct {
		policy Policy
		p      Params
		want   int
	}{
		{KDChoice, Params{N: 8, K: 3, D: 4}, 3},
		{SerializedKD, Params{N: 8, K: 2, D: 4}, 2},
		{AdaptiveKD, Params{N: 8, K: 4, D: 5}, 4},
		{DChoice, Params{N: 8, D: 2}, 1},
		{SingleChoice, Params{N: 8}, 1},
		{OnePlusBeta, Params{N: 8, Beta: 0.3}, 1},
		{AlwaysGoLeft, Params{N: 8, D: 2}, 1},
		{SAx0, Params{N: 8, X0: 2}, 1},
	}
	for _, tc := range cases {
		pr := MustNew(tc.policy, tc.p, xrand.New(1))
		if got := pr.RoundSize(); got != tc.want {
			t.Fatalf("%v RoundSize = %d, want %d", tc.policy, got, tc.want)
		}
	}
}

func TestMessageAccounting(t *testing.T) {
	// KD: d per round.
	pr := newKD(t, 64, 2, 6, 1)
	pr.Place(64)
	if got, want := pr.Messages(), int64(64/2*6); got != want {
		t.Fatalf("KD messages = %d, want %d", got, want)
	}
	// Partial rounds still probe d bins.
	pr2 := newKD(t, 64, 4, 8, 1)
	pr2.Place(6) // one full + one partial round
	if got, want := pr2.Messages(), int64(16); got != want {
		t.Fatalf("KD partial messages = %d, want %d", got, want)
	}
	// Single choice: 1 per ball.
	sc := MustNew(SingleChoice, Params{N: 64}, xrand.New(1))
	sc.Place(100)
	if sc.Messages() != 100 {
		t.Fatalf("single messages = %d", sc.Messages())
	}
	// DChoice: d per ball.
	dc := MustNew(DChoice, Params{N: 64, D: 3}, xrand.New(1))
	dc.Place(100)
	if dc.Messages() != 300 {
		t.Fatalf("dchoice messages = %d", dc.Messages())
	}
	// OnePlusBeta: between 1 and 2 per ball, and matching the coin flips.
	ob := MustNew(OnePlusBeta, Params{N: 64, Beta: 0.5}, xrand.New(1))
	ob.Place(1000)
	if ob.Messages() < 1000 || ob.Messages() > 2000 {
		t.Fatalf("oneplusbeta messages = %d", ob.Messages())
	}
}

func TestResetRestoresEmptyState(t *testing.T) {
	for _, policy := range []Policy{KDChoice, SAx0} {
		p := Params{N: 32, K: 2, D: 4, X0: 4}
		pr := MustNew(policy, p, xrand.New(5))
		pr.Place(100)
		pr.Reset()
		if pr.Balls() != 0 || pr.MaxLoad() != 0 || pr.Messages() != 0 || pr.Rounds() != 0 || pr.Discarded() != 0 {
			t.Fatalf("%v: counters not reset", policy)
		}
		if pr.Loads().Total() != 0 {
			t.Fatalf("%v: loads not reset", policy)
		}
		// The process must still work after reset.
		pr.Place(100)
		total := pr.Loads().Total()
		if policy == SAx0 {
			if total != pr.Balls() {
				t.Fatalf("%v: post-reset inconsistent", policy)
			}
		} else if total != 100 {
			t.Fatalf("%v: post-reset total = %d", policy, total)
		}
	}
}

func TestAccessors(t *testing.T) {
	pr := newKD(t, 16, 1, 2, 9)
	pr.Place(16)
	if pr.N() != 16 {
		t.Fatalf("N = %d", pr.N())
	}
	if pr.Policy() != KDChoice {
		t.Fatalf("Policy = %v", pr.Policy())
	}
	if got := pr.Params(); got.K != 1 || got.D != 2 {
		t.Fatalf("Params = %+v", got)
	}
	sumLoad := 0
	for b := 0; b < 16; b++ {
		sumLoad += pr.Load(b)
	}
	if sumLoad != 16 {
		t.Fatalf("sum of Load(b) = %d", sumLoad)
	}
	wantGap := float64(pr.MaxLoad()) - 1.0
	if pr.Gap() != wantGap {
		t.Fatalf("Gap = %v, want %v", pr.Gap(), wantGap)
	}
	if pr.NuY(0) != 16 {
		t.Fatalf("NuY(0) = %d", pr.NuY(0))
	}
	if pr.NuY(pr.MaxLoad()+1) != 0 {
		t.Fatal("NuY above max load should be 0")
	}
	// Loads() must be a copy.
	l := pr.Loads()
	l[0] = 999
	if pr.Load(0) == 999 {
		t.Fatal("Loads() aliases internal state")
	}
}
