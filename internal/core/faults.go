package core

// This file threads the deterministic fault layer (internal/faults)
// through the process: degraded rounds for the (k,d) family, degraded
// per-ball decisions for the serving family, and the EvictRecover path
// that re-places live balls out of failing bins.
//
// Contract (mirrors the observer contract): pr.flt is nil whenever no
// plan — or an empty plan — is attached, every hook below is guarded by
// that nil check, and the guarded paths draw nothing from the main
// stream, so a no-plan process is bit-identical to one built before the
// fault layer existed and costs 0 allocs/round extra. With a plan
// attached, all fault randomness comes from streams split off the root
// seed (never the main stream) and every fault decision is serial:
// faulty runs are bit-identical for ANY Workers/Shards/Pipeline/Block
// setting (effectiveShards forces the serial engine under a plan).

import (
	"sort"

	"repro/internal/faults"
)

// FaultCounters returns the cumulative fault counters (zero when no
// fault plan is attached).
func (pr *Process) FaultCounters() faults.Counters {
	if pr.flt == nil {
		return faults.Counters{}
	}
	return pr.flt.Counters
}

// faultTick advances the fault schedule by one serving operation; the
// one-shot rounds tick in stepFaulty instead. Eviction callbacks run
// synchronously from inside the tick, before the operation proceeds.
func (pr *Process) faultTick() {
	if pr.flt != nil {
		pr.flt.Tick()
	}
}

// stepFaulty is the round dispatch under an active fault plan: one
// injector tick per round, then the policy's degraded round. Only the
// policies Validate admits for fault injection reach here.
func (pr *Process) stepFaulty(toPlace int) {
	pr.flt.Tick()
	switch pr.policy {
	case KDChoice, SerializedKD:
		pr.faultyRoundKD(toPlace)
	default:
		// Per-ball policies place one ball per round.
		bin, probes := pr.decideFaulty()
		h := pr.place(bin)
		pr.messages += int64(probes)
		placed, heights := pr.beginObs(1)
		if placed != nil {
			placed[0], heights[0] = bin, h
		}
		pr.notify(pr.obsSamples(), placed, heights)
	}
}

// faultyRoundKD is one degraded (k,d) round: the d probes are censored
// through the plan (down bins and loss coins), the retry budget replaces
// lost probes, and the surviving probes are materialized as slots exactly
// as makeSlots does — except each bin's base load is its noisy reading.
// The toPlace lowest slots receive balls; balls beyond the surviving
// slots fall back to uniform up bins. SerializedKD degrades identically
// (σ only permutes the placement order within a round, which the
// degraded multiset rule subsumes; Validate pins σ fixed under a plan).
func (pr *Process) faultyRoundKD(toPlace int) {
	nonce := pr.roundPrologue()
	surv, probes := pr.survivors(pr.samples)
	if len(surv) < len(pr.samples) {
		pr.flt.Counters.Degraded++
	}
	srt := append(pr.fltSort[:0], surv...)
	sort.Ints(srt)
	pr.fltSort = srt
	slots := pr.fltSlots[:0]
	for i := 0; i < len(srt); {
		b := srt[i]
		j := i
		for j < len(srt) && srt[j] == b {
			j++
		}
		load := pr.store.Load(b) - pr.flt.Noise()
		if load < 0 {
			load = 0
		}
		for c := 1; c <= j-i; c++ {
			slots = append(slots, slot{bin: b, height: load + c, tie: tieKey(nonce, b, load+c)})
		}
		i = j
	}
	pr.fltSlots = slots
	sortSlots(slots)
	sel := slots
	if toPlace < len(sel) {
		sel = sel[:toPlace]
	}
	placed, heights := pr.beginObs(toPlace)
	j := 0
	for _, s := range sel {
		h := pr.place(s.bin)
		if placed != nil {
			placed[j], heights[j] = s.bin, h
		}
		j++
	}
	for ; j < toPlace; j++ {
		b := pr.flt.FallbackBin()
		probes++
		h := pr.place(b)
		if placed != nil {
			placed[j], heights[j] = b, h
		}
	}
	pr.messages += int64(probes)
	pr.notify(pr.samples, placed, heights)
}

// survivors censors a probe multiset through the plan and spends the
// retry budget replacing lost probes (replacement probes are subject to
// the same loss law and are not themselves replaced beyond the budget).
// It returns the surviving multiset (in pr.fltSamples) and the total
// probe messages issued.
func (pr *Process) survivors(samples []int) ([]int, int) {
	in := pr.flt
	surv := pr.fltSamples[:0]
	for _, b := range samples {
		if !in.LoseProbe(b) {
			surv = append(surv, b)
		}
	}
	probes := len(samples)
	budget := in.RetryBudget()
	for lost := len(samples) - len(surv); lost > 0 && budget > 0; budget-- {
		b := in.Retry()
		probes++
		if !in.LoseProbe(b) {
			surv = append(surv, b)
			lost--
		}
	}
	pr.fltSamples = surv
	return surv, probes
}

// decideFaulty is the degraded per-ball decision: the policy's probes
// are censored, retried, read with noise, and the decision proceeds over
// the survivors (DegradeD); a decision whose every probe is lost falls
// back to a uniform up bin. The main-stream draw pattern matches the
// fault-free decide wherever the policy's probes are drawn from it, so
// faulty serving runs are deterministic under any engine configuration.
func (pr *Process) decideFaulty() (bin, probes int) {
	pr.obsPairBuf = pr.obsPairBuf[:0]
	switch pr.policy {
	case DChoice:
		nonce := pr.roundPrologue()
		return pr.faultyPickFrom(pr.samples, nonce, 1)
	case CoarseDChoice:
		nonce := pr.roundPrologue()
		return pr.faultyPickFrom(pr.samples, nonce, pr.quantum())
	case ThresholdChoice:
		return pr.faultyThreshold()
	case OnePlusBeta:
		if pr.rng.Bernoulli(pr.p.Beta) {
			if d := pr.p.D; d > 2 {
				pr.rng.FillIntn(pr.samples, pr.n)
				nonce := pr.rng.Uint64()
				return pr.faultyPickFrom(pr.samples, nonce, 1)
			}
			pair := pr.fltPair[:2]
			pair[0] = pr.rng.Intn(pr.n)
			pair[1] = pr.rng.Intn(pr.n)
			nonce := pr.rng.Uint64()
			return pr.faultyPickFrom(pair, nonce, 1)
		}
		fallthrough
	default: // SingleChoice
		b := pr.rng.Intn(pr.n)
		probes = 1
		in := pr.flt
		if in.LoseProbe(b) {
			in.Counters.Degraded++
			ok := false
			for budget := in.RetryBudget(); budget > 0; budget-- {
				b = in.Retry()
				probes++
				if !in.LoseProbe(b) {
					ok = true
					break
				}
			}
			if !ok {
				b = in.FallbackBin()
				probes++
			}
		}
		pr.obsPair(b, -1)
		return b, probes
	}
}

// faultyPickFrom censors the given probe multiset, replaces lost probes
// from the retry budget, and returns the noisy-load argmin among the
// survivors — loads quantized by q (CoarseDChoice), ties broken by the
// keyed per-decision hash — plus the probes issued.
func (pr *Process) faultyPickFrom(samples []int, nonce uint64, q int) (int, int) {
	surv, probes := pr.survivors(samples)
	if len(surv) < len(samples) {
		pr.flt.Counters.Degraded++
	}
	if len(surv) == 0 {
		return pr.flt.FallbackBin(), probes + 1
	}
	best := -1
	bestLoad := 0
	var bestTie uint64
	for _, cand := range surv {
		load := pr.store.Load(cand) - pr.flt.Noise()
		if load < 0 {
			load = 0
		}
		load /= q
		tie := mix64(nonce ^ uint64(cand)*0x9e3779b97f4a7c15)
		if best == -1 || load < bestLoad || (load == bestLoad && tie < bestTie) {
			best, bestLoad, bestTie = cand, load, tie
		}
	}
	if pr.obs != nil {
		pr.obsPairBuf = append(pr.obsPairBuf[:0], surv...)
	}
	return best, probes
}

// faultyThreshold is the degraded O(1)-memory accept/reject scan: up to
// D sequential probes against the running ceiling, lost probes replaced
// from the retry budget (the replacement destination comes from the
// retry stream), noisy reads compared against the exact threshold. When
// no probe accepts, the ball lands in the last surviving bin; when every
// probe was lost, in a uniform up bin.
func (pr *Process) faultyThreshold() (int, int) {
	t := pr.store.Balls()/pr.n + 1
	in := pr.flt
	budget := in.RetryBudget()
	probes := 0
	last := -1
	survived := 0
	for i := 0; i < pr.p.D; i++ {
		b := pr.rng.Intn(pr.n)
		probes++
		if in.LoseProbe(b) {
			if budget > 0 {
				budget--
				b = in.Retry()
				probes++
				if in.LoseProbe(b) {
					continue
				}
			} else {
				continue
			}
		}
		survived++
		if pr.obs != nil {
			if cap(pr.obsPairBuf) < pr.p.D {
				pr.obsPairBuf = make([]int, len(pr.obsPairBuf), pr.p.D)
			}
			pr.obsPairBuf = append(pr.obsPairBuf, b)
		}
		load := pr.store.Load(b) - in.Noise()
		if load < 0 {
			load = 0
		}
		last = b
		if load < t {
			return b, probes
		}
	}
	if survived < pr.p.D {
		in.Counters.Degraded++
	}
	if last >= 0 {
		return last, probes
	}
	return in.FallbackBin(), probes + 1
}

// evictBin is the EvictRecover hook (Injector.OnFail): every live ball
// registered in the failing bin is re-placed through a degraded decision
// — down bins, including the failing one, are invisible to its probes —
// conserving total ball count and weight. Handles stay valid (the
// generation is untouched). Round-mode processes have no registry, so
// their balls stay pinned in down bins (documented; the serving layer is
// where eviction is meaningful).
func (pr *Process) evictBin(bin int) {
	for idx := range pr.ballBin {
		if pr.ballWt[idx] <= 0 || int(pr.ballBin[idx]) != bin {
			continue
		}
		pr.flt.Counters.Evictions++
		w := int(pr.ballWt[idx])
		pr.kern.subW(bin, w)
		nb, probes := pr.decideFaulty()
		pr.messages += int64(probes)
		pr.kern.addW(nb, w)
		pr.ballBin[idx] = int32(nb)
		pr.flt.Counters.Replacements++
	}
}
