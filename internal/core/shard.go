package core

// This file is the sharded superstep engine: the parallel decision phase
// behind Params.Shards >= 2. It generalizes what PR 6's sharded StaleBatch
// round did for one policy to every fixed-prologue policy, on the
// theoretical license of the 1-2-3-Toolkit's batched-round model (Bertrand
// & Lenzen, arXiv:1407.8433): balls-into-bins tolerates bounded staleness
// within a batch, so a whole block of rounds may be DECIDED against the
// loads as of the block start and then APPLIED serially in round order.
//
// Each superstep runs three phases:
//
//  1. draw (serial): the block's randomness is pre-drawn through the exact
//     serial sequence — xrand.FillRounds for the fixed-width prologues,
//     FillIntn for SingleChoice, nonce-then-FillIntn for StaleBatch — so
//     the word stream is identical to the serial process for any shard
//     count and any block size. Randomness NEVER depends on P.
//  2. gather + decide (parallel): every worker owns a contiguous bin range
//     [edges[w], edges[w+1]) and fills the load snapshot cells of the
//     samples it owns — disjoint positional writes into one shared slice,
//     which IS the deterministic owner-shard merge: the merged snapshot is
//     a pure function of (samples, loads), independent of P and of
//     scheduling. The decide phase then splits the block's rounds into
//     contiguous chunks, each worker running the policy's store-free
//     decision kernel (selector / argminLdv) over the frozen snapshot.
//     Per-round decisions share no mutable state, so this, too, is
//     P-independent.
//  3. apply (serial): placements commit one round per step() call, in
//     round order, through the same store paths as the serial process.
//
// Consequences, pinned by the shard tests: results are bit-identical
// across ANY shard count >= 2; StaleBatch and SingleChoice are
// bit-identical to serial always; the load-coupled round policies
// (KDChoice, fixed-σ SerializedKD, DChoice, CoarseDChoice) are
// bit-identical to serial at Block = 1 and otherwise diverge only by
// within-block staleness (their gap statistics stay within the coupling
// bounds); OnePlusBeta recasts its data-dependent draw pattern into a
// fixed-width prologue and matches the serial law in distribution only.

import (
	"runtime"
	"sync"

	"repro/internal/xrand"
)

// shardEligible reports whether the policy can run under the sharded
// superstep engine: its per-round randomness must be pre-drawable (a fixed
// prologue) and its placement rule expressible as "decide from a frozen
// load snapshot, apply serially". Data-dependent draw patterns (AdaptiveKD
// reservoir ties, random-σ shuffles, ThresholdChoice's variable probe
// count, SAx0 rank draws, AlwaysGoLeft's group geometry) are out.
func shardEligible(policy Policy, p Params) bool {
	switch policy {
	case KDChoice, DChoice, CoarseDChoice, SingleChoice, OnePlusBeta, StaleBatch:
		return true
	case SerializedKD:
		return !p.RandomSigma
	}
	return false
}

// shardDrawWidth is the per-round draw width of the sharded prologue for
// the policies whose width is not Params.D: SingleChoice draws one sample,
// OnePlusBeta two samples plus a nonce.
func shardDrawWidth(policy Policy) int {
	if policy == SingleChoice {
		return 1
	}
	return 2 // OnePlusBeta
}

// effectiveShards resolves Params.Shards to a worker count. 0 (auto) means
// GOMAXPROCS for StaleBatch — whose sharded rounds are bit-identical to
// serial at any count, so auto can never change results — and serial for
// every other policy: engaging the engine on a load-coupled policy changes
// the allocation law (within-block staleness), and an implicit
// host-dependent law change would break cross-machine reproducibility.
// Sharding those policies is an explicit opt-in.
func effectiveShards(policy Policy, p Params) int {
	if faultsActive(p) {
		// Fault decisions are serial by design (the injector's streams
		// are consumed in round order), so an active plan forces the
		// serial engine — which is exactly what makes a faulty run
		// bit-identical for ANY Shards setting.
		return 1
	}
	s := p.Shards
	if s == 0 {
		if policy == StaleBatch {
			return runtime.GOMAXPROCS(0)
		}
		return 1
	}
	if !shardEligible(policy, p) {
		return 1
	}
	return s
}

// shardPool is the engine's persistent worker pool: workers-1 goroutines
// plus the caller (worker 0). The phase function is bound ONCE at creation
// — dispatch only rings per-worker doorbells — so the steady state
// allocates nothing and creates no goroutines. Synchronization is one
// channel send per worker per phase (the happens-before edge publishing
// the phase inputs) and one WaitGroup wait (the edge collecting the phase
// outputs); on a single-CPU host the scheduler simply interleaves the
// workers at those points, so the pool is correct — not just fast — at any
// GOMAXPROCS.
type shardPool struct {
	workers int
	run     func(w int)
	start   []chan struct{} // doorbell per spawned worker (workers-1)
	wg      sync.WaitGroup
	done    chan struct{}
	once    sync.Once
}

func newShardPool(workers int, run func(w int)) *shardPool {
	p := &shardPool{
		workers: workers,
		run:     run,
		start:   make([]chan struct{}, workers-1),
		done:    make(chan struct{}),
	}
	for i := range p.start {
		p.start[i] = make(chan struct{}, 1)
		go p.worker(i)
	}
	return p
}

func (p *shardPool) worker(i int) {
	for {
		select {
		case <-p.done:
			return
		case <-p.start[i]:
		}
		p.run(i + 1)
		p.wg.Done()
	}
}

// dispatch runs one phase on every worker and returns when all finished.
func (p *shardPool) dispatch() {
	p.wg.Add(p.workers - 1)
	for _, c := range p.start {
		c <- struct{}{}
	}
	p.run(0)
	p.wg.Wait()
}

// Close stops the spawned workers. Idempotent; must not be called
// concurrently with dispatch.
func (p *shardPool) Close() {
	p.once.Do(func() { close(p.done) })
}

// Phase selector for shardEngine.work (bound once into the pool's run
// function; per-dispatch state travels through engine fields, published by
// the doorbell send).
const (
	phaseGather = iota
	phaseDecide
	phaseStaleGather
	phaseStaleDecide
)

// shardEngine holds the sharded superstep state of one Process. The
// decided block is a buffer between the parallel decide phase and the
// serial one-round-at-a-time apply path (Round/Place), so the public
// round-loop API is unchanged.
type shardEngine struct {
	policy  Policy
	kern    kernelOps // refreshed from pr each superstep (test kernel seam)
	n       int
	k       int     // balls per full round (1 for the per-ball policies)
	d       int     // draw width per round (p.D, or 1 / 2, see shardDrawWidth)
	quantum int     // CoarseDChoice bucket width (1 = plain DChoice)
	beta    float64 // OnePlusBeta mixing probability
	block   int     // rounds per superstep B
	workers int

	pool  *shardPool
	eng   *roundEngine // FillRounds block source (nil: single / stale mode)
	edges []int        // worker w owns bins [edges[w], edges[w+1])
	sels  []*selector  // per-worker decision lane (kd / serialized only)

	blk    *kdBlock // current block (aliases eng's local block)
	single []int    // SingleChoice mode: the block's samples (= destinations)
	ldv    []int    // frozen load snapshot, positional per sample
	dests  []int    // decided bins: block×k in rank order (kd), else block
	probes []uint8  // OnePlusBeta: probes charged per round (1 or 2)

	appIdx int // next round to apply
	decEnd int // end of the decided window (appIdx == decEnd: refill)
	winLo  int // first round of the window the current phases cover

	phase int

	// StaleBatch per-round phase inputs.
	staleBuf     []int
	staleDests   []int
	staleNonce   uint64
	staleToPlace int
}

// newShardEngine builds the engine and its worker pool. The caller has
// already validated shardEligible and workers >= 2.
func newShardEngine(policy Policy, p Params, rng xrand.Source, workers int) *shardEngine {
	se := &shardEngine{
		policy:  policy,
		n:       p.N,
		k:       1,
		d:       p.D,
		beta:    p.Beta,
		workers: workers,
	}
	se.edges = make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		se.edges[w] = w * p.N / workers
	}
	switch policy {
	case StaleBatch:
		// One round per superstep; randomness is drawn by staleRound via
		// pr.rng (nonce then samples — the serial order), the snapshot
		// covers the round's k·D samples.
		se.ldv = make([]int, p.K*p.D)
	case SingleChoice:
		se.d = 1
		se.block = shardBlockRounds(1, p.Block)
		se.single = make([]int, se.block)
		se.dests = se.single // the sample IS the destination
	default:
		if policy == OnePlusBeta {
			se.d = shardDrawWidth(policy)
		}
		se.block = shardBlockRounds(se.d, p.Block)
		se.eng = newRoundEngine(rng, p.N, se.d, se.block, p.Pipeline)
		se.ldv = make([]int, se.block*se.d)
		switch policy {
		case KDChoice, SerializedKD:
			se.k = p.K
			se.dests = make([]int, se.block*se.k)
			se.sels = make([]*selector, workers)
			for w := range se.sels {
				se.sels[w] = newSelector(p.D)
			}
		case OnePlusBeta:
			se.dests = make([]int, se.block)
			se.probes = make([]uint8, se.block)
		default: // DChoice, CoarseDChoice
			se.dests = make([]int, se.block)
		}
		if policy == CoarseDChoice {
			se.quantum = p.Quantum
			if se.quantum == 0 {
				se.quantum = defaultQuantum
			}
		} else {
			se.quantum = 1
		}
	}
	se.appIdx = se.block
	se.decEnd = se.block
	se.pool = newShardPool(workers, se.work)
	return se
}

// Close stops the worker pool (and the block producer, if async).
// Idempotent.
func (se *shardEngine) Close() {
	se.pool.Close()
	if se.eng != nil {
		se.eng.Close()
	}
}

// invalidate drops the undecided-yet-unapplied tail of the current block:
// the decisions were made against pre-Reset loads. The DRAWN randomness is
// kept — the stream is never rewound (the Reset contract) — so the next
// step re-decides the remaining window against the fresh bins.
func (se *shardEngine) invalidate() {
	se.decEnd = se.appIdx
}

// step applies one round (the sharded replacement for the policy's serial
// round function). When the decided buffer is dry it first refills: draws
// a fresh block if the old one is exhausted, then runs the parallel gather
// and decide phases over the remaining window.
func (se *shardEngine) step(pr *Process, toPlace int) {
	if se.appIdx >= se.decEnd {
		se.refill(pr)
	}
	r := se.appIdx
	se.appIdx++
	switch se.policy {
	case KDChoice:
		se.applyKD(pr, r, toPlace)
	case SerializedKD:
		se.applySerialized(pr, r, toPlace)
	case SingleChoice:
		se.applySingle(pr, r)
	case OnePlusBeta:
		se.applyOnePlusBeta(pr, r)
	default: // DChoice, CoarseDChoice
		se.applyArgmin(pr, r)
	}
}

// refill decides the window [appIdx, block): fresh draw first if the whole
// block has been applied, then the two parallel phases. SingleChoice skips
// the phases entirely — its destination is its sample, loads never enter.
func (se *shardEngine) refill(pr *Process) {
	se.kern = pr.kern
	if se.appIdx == se.block {
		if se.eng != nil {
			se.blk = se.eng.nextBlock()
		} else {
			pr.rng.FillIntn(se.single, se.n)
		}
		se.appIdx = 0
	}
	se.winLo = se.appIdx
	if se.policy == SingleChoice {
		se.decEnd = se.block
		return
	}
	se.phase = phaseGather
	se.pool.dispatch()
	se.phase = phaseDecide
	se.pool.dispatch()
	se.decEnd = se.block
}

// work is the pool's phase body (run func, bound once at creation).
func (se *shardEngine) work(w int) {
	switch se.phase {
	case phaseGather:
		base, end := se.winLo*se.d, se.block*se.d
		se.kern.shardGather(se.blk.samples[base:end], se.ldv[base:end], se.edges[w], se.edges[w+1])
	case phaseDecide:
		se.decideChunk(w)
	case phaseStaleGather:
		se.kern.shardGather(se.staleBuf, se.ldv[:len(se.staleBuf)], se.edges[w], se.edges[w+1])
	case phaseStaleDecide:
		se.staleDecideChunk(w)
	}
}

// decideChunk decides worker w's contiguous chunk of the window's rounds
// against the frozen snapshot. Each round is decided independently (own
// samples, own snapshot cells, own nonce; kd workers use their own
// selector lane), so the chunk boundaries — the only P-dependent quantity
// — cannot influence any decision.
func (se *shardEngine) decideChunk(w int) {
	rounds := se.block - se.winLo
	chunk := (rounds + se.workers - 1) / se.workers
	lo := se.winLo + w*chunk
	hi := lo + chunk
	if hi > se.block {
		hi = se.block
	}
	d := se.d
	for r := lo; r < hi; r++ {
		samples := se.blk.samples[r*d : (r+1)*d]
		ldv := se.ldv[r*d : (r+1)*d]
		nonce := se.blk.nonces[r]
		switch se.policy {
		case KDChoice, SerializedKD:
			// Rank the full k selection; a partial round applies the
			// first toPlace ranks, which is exactly the serial partial
			// round's selection (the toPlace smallest slots of a strict
			// total order are a prefix of the k smallest, ranked).
			sel := se.sels[w].probeAndRank(samples, ldv, nonce, se.k)
			base := r * se.k
			for i := range sel {
				se.dests[base+i] = sel[i].bin
			}
		case OnePlusBeta:
			se.decideOnePlusBeta(r, samples, ldv, nonce)
		default: // DChoice, CoarseDChoice
			se.dests[r] = argminLdv(samples, ldv, nonce, 0, se.quantum)
		}
	}
}

// decideOnePlusBeta is the (1+β) decision recast as a fixed prologue: two
// samples plus a nonce per round, with the β coin and the equal-load tie
// bit both derived from the nonce instead of drawn on demand (the serial
// path's draw count is data-dependent, which no pre-drawn engine can
// replay). The law matches the serial process in DISTRIBUTION — coin
// probability β via the nonce's top 53 bits, fair tie via one mixed bit —
// but not bit-for-bit; the divergence tests pin the distribution.
func (se *shardEngine) decideOnePlusBeta(r int, samples, ldv []int, nonce uint64) {
	a, b := samples[0], samples[1]
	coin := false
	if se.beta > 0 {
		coin = se.beta >= 1 || float64(nonce>>11)*(1.0/(1<<53)) < se.beta
	}
	if !coin {
		se.dests[r] = a
		se.probes[r] = 1
		return
	}
	best := a
	la, lb := ldv[0], ldv[1]
	if lb < la || (lb == la && mix64(nonce^0xa0761d6478bd642f)&1 == 1) {
		best = b
	}
	se.dests[r] = best
	se.probes[r] = 2
}

// applyKD commits round r of a sharded (k,d)-choice block: the first
// toPlace ranked destinations, batch-incremented when unobserved exactly
// like the StaleBatch apply (one devirtualized BulkAdd per round).
func (se *shardEngine) applyKD(pr *Process, r, toPlace int) {
	dests := se.dests[r*se.k : r*se.k+toPlace]
	placed, heights := pr.beginObs(toPlace)
	if placed == nil {
		pr.kern.bulkAdd(dests)
		pr.balls += toPlace
	} else {
		for i, dst := range dests {
			h := pr.place(dst)
			placed[i] = dst
			heights[i] = h
		}
	}
	pr.messages += int64(se.d)
	pr.notify(se.roundSamples(r), placed, heights)
}

// applySerialized commits round r in σ order: the j-th ball goes to the
// slot of rank σ(j), with σ restricted to ranks below toPlace in a partial
// round — the same restriction rule as the serial path.
func (se *shardEngine) applySerialized(pr *Process, r, toPlace int) {
	dests := se.dests[r*se.k : (r+1)*se.k]
	placed, heights := pr.beginObs(toPlace)
	j := 0
	for _, rank := range pr.sigmaBuf {
		if rank >= toPlace {
			continue
		}
		b := dests[rank]
		h := pr.place(b)
		if placed != nil {
			placed[j] = b
			heights[j] = h
		}
		j++
		if j == toPlace {
			break
		}
	}
	pr.messages += int64(se.d)
	pr.notify(se.roundSamples(r), placed, heights)
}

// applySingle commits one SingleChoice ball. The destination is the
// pre-drawn sample itself, so sharded SingleChoice is bit-identical to
// serial for any P and any Block.
func (se *shardEngine) applySingle(pr *Process, r int) {
	b := se.single[r]
	h := pr.place(b)
	pr.messages++
	if pr.obs != nil {
		pr.notify(se.single[r:r+1], se.single[r:r+1], []int{h})
	}
}

// applyArgmin commits one DChoice / CoarseDChoice ball.
func (se *shardEngine) applyArgmin(pr *Process, r int) {
	best := se.dests[r]
	h := pr.place(best)
	pr.messages += int64(se.d)
	if pr.obs != nil {
		pr.notify(se.roundSamples(r), []int{best}, []int{h})
	}
}

// applyOnePlusBeta commits one (1+β) ball, charging the probes the coin
// actually spent.
func (se *shardEngine) applyOnePlusBeta(pr *Process, r int) {
	best := se.dests[r]
	h := pr.place(best)
	pb := int64(se.probes[r])
	pr.messages += pb
	if pr.obs != nil {
		samples := se.roundSamples(r)[:pb]
		pr.notify(samples, []int{best}, []int{h})
	}
}

// roundSamples returns round r's raw samples (aliasing the block buffer;
// observers see them for the duration of the callback, same contract as
// the serial engine's pre-drawn rounds).
func (se *shardEngine) roundSamples(r int) []int {
	return se.blk.samples[r*se.d : (r+1)*se.d]
}

// staleRound is the sharded StaleBatch round — the engine's one-round-wide
// configuration. The draw order (nonce, then every ball's samples in ball
// order) and the apply path are exactly the serial round's, and the
// gather-then-argmin pipeline reads the same frozen loads the serial scan
// reads live (nothing mutates during the decision phase), so the sharded
// round is bit-identical to serial at any worker count.
func (se *shardEngine) staleRound(pr *Process, toPlace int) {
	perBall := se.d
	nonce := pr.rng.Uint64()
	placed, heights := pr.beginObs(toPlace)
	if cap(pr.cands) < toPlace {
		pr.cands = make([]int, toPlace)
	}
	dests := pr.cands[:toPlace]
	buf := pr.shardBuf[:toPlace*perBall]
	pr.rng.FillIntn(buf, pr.n)

	se.kern = pr.kern
	se.staleBuf = buf
	se.staleDests = dests
	se.staleNonce = nonce
	se.staleToPlace = toPlace
	se.phase = phaseStaleGather
	se.pool.dispatch()
	se.phase = phaseStaleDecide
	se.pool.dispatch()
	pr.applyStaleDests(dests, placed, heights)
}

// staleDecideChunk runs worker w's contiguous chunk of a StaleBatch
// round's per-ball argmins over the frozen snapshot.
func (se *shardEngine) staleDecideChunk(w int) {
	toPlace := se.staleToPlace
	chunk := (toPlace + se.workers - 1) / se.workers
	lo := w * chunk
	hi := lo + chunk
	if hi > toPlace {
		hi = toPlace
	}
	perBall := se.d
	for b := lo; b < hi; b++ {
		samples := se.staleBuf[b*perBall : (b+1)*perBall]
		ldv := se.ldv[b*perBall : (b+1)*perBall]
		se.staleDests[b] = argminLdv(samples, ldv, se.staleNonce, b, 1)
	}
}
