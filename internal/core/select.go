package core

import "sort"

// This file is the round engine's selection kernel: given the d samples of a
// round it materializes the conceptual slots (the i-th sample of bin b has
// height load(b)+i) and returns the toPlace slots of minimum height, ranked
// by (height, tie, bin) ascending, with ties between bins at equal height
// broken uniformly at random.
//
// Two implementations exist:
//
//   - the counting kernel, the default: O(d + k log k) expected. The
//     store-specialized fused pass in kernel.go groups the samples with an
//     epoch-stamped open-addressed table (O(d) space, reused clear-free
//     across a whole superstep) and materializes the slots in the same
//     scan, reading each distinct bin's load exactly once through a
//     devirtualized store access; rankFromSlots below then locates the
//     k-th smallest height by counting over the round's dense height
//     window, deriving random tie keys lazily — only for slots at or below
//     the boundary height — via a keyed hash of (bin, height) under a
//     per-round nonce.
//   - the reference kernel (Params.ReferenceSelect): the original
//     sort-everything path, kept as the oracle the fast kernel is tested
//     against.
//
// Both kernels consume the random stream identically (d sample draws plus
// one nonce draw per round) and order slots by the same total order, so for
// a fixed seed they select bitwise-identical slot sets — the property
// TestFastSelectMatchesReference checks exhaustively. A keyed hash instead
// of one rng.Uint64 per slot is what makes this possible: tie keys are a
// pure function of (nonce, bin, height), so computing them lazily does not
// perturb the stream.

// tieKey derives the uniform tie-break key of the slot (bin, height) under
// the round nonce. Distinct slots of one round hash distinct (bin, height)
// pairs, so within a tied cohort (equal height, distinct bins) the keys are
// independent uniform lottery tickets, exactly as in ballDChoice.
//
//kd:hotpath
func tieKey(nonce uint64, bin, height int) uint64 {
	return mix64(nonce ^ uint64(bin)*0x9e3779b97f4a7c15 ^ uint64(height)*0xda942042e4dd58b5)
}

// rankSelect draws the round nonce and ranks the current pr.samples. The
// returned slice aliases process scratch and is valid until the next round.
// The engine round paths skip this and call rankSelectWith on their
// pre-drawn nonce.
func (pr *Process) rankSelect(toPlace int) []slot {
	return pr.rankSelectWith(pr.rng.Uint64(), toPlace)
}

// rankSelectWith is rankSelect with the nonce already materialized — either
// by rankSelect itself or by the superstep engine.
//
//kd:hotpath
func (pr *Process) rankSelectWith(nonce uint64, toPlace int) []slot {
	if pr.p.ReferenceSelect {
		pr.makeSlots(nonce)
		sortSlots(pr.slots)
		if toPlace > len(pr.slots) {
			toPlace = len(pr.slots)
		}
		return pr.slots[:toPlace]
	}
	return pr.kern.fastSelect(pr, nonce, toPlace)
}

// selector owns the scratch of the store-free counting selection kernel:
// the epoch-stamped group table, the height histogram, and the slot
// buffers. It is one DECISION LANE — a serial process owns exactly one,
// and every worker of the sharded superstep engine owns its own, so
// concurrent per-round selections never share mutable state. The selector
// reads only its arguments (samples, pre-gathered loads, the round nonce),
// never the store, which is what lets the sharded decide phase run over a
// frozen load snapshot.
type selector struct {
	gtab  *groupTab
	hist  []int32
	slots []slot
	sel   []slot
	bnd   []slot
}

// newSelector sizes a selection lane for rounds of d samples.
func newSelector(d int) *selector {
	return &selector{
		gtab: newGroupTab(d),
		// The counting window covers every height pattern whose sampled
		// loads span less than ~2d; wider spreads (extreme imbalance) fall
		// back to the reference sort inside the counting kernel.
		hist:  make([]int32, 2*d+16),
		slots: make([]slot, d),
		sel:   make([]slot, 0, d),
		bnd:   make([]slot, 0, d),
	}
}

// probeAndRank is the Process-level entry of the counting kernel, used by
// the serial round paths: it runs the process's own selection lane over
// pr.samples and the loads the kernel gathered into pr.ldv.
//
//kd:hotpath
func (pr *Process) probeAndRank(nonce uint64, toPlace int) []slot {
	return pr.selsc.probeAndRank(pr.samples, pr.ldv[:len(pr.samples)], nonce, toPlace)
}

// probeAndRank is the store-free heart of the counting kernel, shared by
// every kernel instantiation and every shard worker: ldv holds the load of
// each sample (filled by the kernel's specialized gather pass), and one
// scan over the samples probes the epoch-stamped group table and
// materializes the conceptual slots (the i-th sample of bin b has height
// load(b)+i). The slot SET and the final ranking are independent of slot
// emission order (the total order on (height, tie, bin) is strict), so
// fusing the former group-then-materialize pipeline changes no result. A
// repeat sample's height comes straight from its own ldv entry — the table
// records only the multiplicity, never the load.
//
//kd:hotpath
func (sc *selector) probeAndRank(samples, ldv []int, nonce uint64, toPlace int) []slot {
	gt := sc.gtab
	epoch := gt.nextEpoch()
	tab := gt.tab
	stamp := gt.stamp[:len(tab)] // same power-of-two size; ties the lengths for the prover
	mask := len(tab) - 1

	if toPlace > 0 && toPlace <= 4 && toPlace < len(samples) {
		// Small-k fast path: selection is fused into the probe scan as a
		// streaming top-toPlace under the full (height, tie, bin) order —
		// no slot materialization, no histogram, no second pass. A slot
		// strictly above the running worst can never enter the selection,
		// so its tie key is never derived; the surviving set (and, after
		// the final sort, its ranking) is exactly what the counting path
		// computes, for ANY height spread — the lazy-tie window exists
		// only to spare keys, not to define results.
		topk := sc.sel[:0]
		worst := -1
		var wslot slot // register copy of topk[worst]: the compare touches no memory
		for i, b := range samples {
			key := uint64(b+1) << 32
			h := int((uint64(uint32(b)) * 0x9e3779b97f4a7c15) >> 32)
			var ht int
			for {
				if stamp[h&mask] != epoch {
					stamp[h&mask] = epoch
					tab[h&mask] = key | 1
					ht = ldv[i] + 1
					break
				}
				if e := tab[h&mask]; e&^0xffffffff == key {
					c := int(uint32(e)) + 1
					tab[h&mask] = e + 1
					ht = ldv[i] + c
					break
				}
				h++
			}
			if worst >= 0 {
				if ht > wslot.height {
					continue // cannot contend; tie key never needed
				}
				s := slot{bin: b, height: ht, tie: tieKey(nonce, b, ht)}
				if slotLess(s, wslot) {
					topk[worst] = s
					worst = worstSlot(topk)
					wslot = topk[worst]
				}
				continue
			}
			topk = append(topk, slot{bin: b, height: ht, tie: tieKey(nonce, b, ht)})
			if len(topk) == toPlace {
				worst = worstSlot(topk)
				wslot = topk[worst]
			}
		}
		sortSlots(topk)
		sc.sel = topk
		return topk
	}

	slots := sc.slots[:len(samples)]
	minH := int(^uint(0) >> 1)
	maxH := 0
	for i, b := range samples {
		key := uint64(b+1) << 32
		h := int((uint64(uint32(b)) * 0x9e3779b97f4a7c15) >> 32)
		var ht int
		for {
			// Indexing through h&mask lets the compiler drop the bounds
			// checks: mask is len-1 of both power-of-two-sized arrays.
			if stamp[h&mask] != epoch {
				// First occurrence of b this round: claim a table slot.
				stamp[h&mask] = epoch
				tab[h&mask] = key | 1
				ht = ldv[i] + 1
				if ht < minH {
					minH = ht
				}
				break
			}
			if e := tab[h&mask]; e&^0xffffffff == key {
				// Repeat sample: the next conceptual ball of b sits its
				// multiplicity above the bin's load.
				c := int(uint32(e)) + 1
				tab[h&mask] = e + 1
				ht = ldv[i] + c
				break
			}
			h++
		}
		if ht > maxH {
			maxH = ht
		}
		slots[i] = slot{bin: b, height: ht}
	}
	sc.slots = slots
	return sc.rankFromSlots(nonce, toPlace, minH, maxH)
}

// rankFromSlots is the ranking tail of the counting kernel: sc.slots holds
// the round's materialized slots with heights spanning [minH, maxH]; the
// toPlace minimum slots are returned ranked ascending. In the steady-state
// common case every slot sits at one height (minH == maxH) and the
// boundary is known without touching the histogram at all.
//
//kd:hotpath
func (sc *selector) rankFromSlots(nonce uint64, toPlace, minH, maxH int) []slot {
	slots := sc.slots
	if toPlace > len(slots) {
		toPlace = len(slots)
	}
	if toPlace == 0 {
		return slots[:0]
	}

	boundary, need := minH, toPlace
	if maxH != minH {
		hist := sc.hist
		if maxH-minH >= len(hist) {
			// Sparse heights (sampled loads spread wider than the counting
			// window, only possible under extreme imbalance): fall back to
			// the reference full sort. Same comparator and keys, so the
			// selected set is identical to what the counting path would
			// pick.
			for i := range slots {
				slots[i].tie = tieKey(nonce, slots[i].bin, slots[i].height)
			}
			sortSlots(slots)
			return slots[:toPlace]
		}

		// Count slots per height and locate the boundary: the height of
		// the toPlace-th smallest slot.
		for i := range slots {
			hist[slots[i].height-minH]++
		}
		below := 0 // slots strictly below the boundary height
		off := 0
		for {
			c := int(hist[off])
			if below+c >= toPlace {
				break
			}
			below += c
			off++
		}
		boundary = minH + off
		need = toPlace - below // slots to take at the boundary height
		for i := 0; i <= maxH-minH; i++ {
			hist[i] = 0
		}
	}

	// Gather: everything below the boundary is selected outright; the
	// boundary cohort is genuinely tied, so only now are tie keys derived.
	// Small cohorts feed a streaming top-need selection directly (one
	// comparison per candidate against the running worst in the common
	// all-tied steady state); large cohorts are gathered and quickselected.
	// bkey hoists the height term of the boundary cohort's tie keys: every
	// cohort member shares the boundary height, so its key reduces to one
	// multiply and the mixer. Identical arithmetic to tieKey.
	bkey := nonce ^ uint64(boundary)*0xda942042e4dd58b5
	sel := sc.sel[:0]
	bnd := sc.bnd[:0]
	if need <= 4 {
		worst := -1
		for i := range slots {
			s := slots[i]
			if s.height > boundary {
				continue
			}
			if s.height < boundary {
				s.tie = tieKey(nonce, s.bin, s.height)
				sel = append(sel, s)
				continue
			}
			s.tie = mix64(bkey ^ uint64(s.bin)*0x9e3779b97f4a7c15)
			if len(bnd) < need {
				bnd = append(bnd, s)
				if len(bnd) == need {
					worst = worstSlot(bnd)
				}
				continue
			}
			if slotLess(s, bnd[worst]) {
				bnd[worst] = s
				worst = worstSlot(bnd)
			}
		}
		sel = append(sel, bnd...)
	} else {
		for i := range slots {
			s := slots[i]
			if s.height > boundary {
				continue
			}
			if s.height < boundary {
				s.tie = tieKey(nonce, s.bin, s.height)
				sel = append(sel, s)
			} else {
				s.tie = mix64(bkey ^ uint64(s.bin)*0x9e3779b97f4a7c15)
				bnd = append(bnd, s)
			}
		}
		if need < len(bnd) {
			selectSmallestSlots(bnd, need)
		}
		sel = append(sel, bnd[:need]...)
	}
	sc.bnd = bnd

	// Rank the k selected slots so SerializedKD sees a total order of
	// ranks; k is small, so this costs O(k log k) at worst.
	sortSlots(sel)
	sc.sel = sel
	return sel
}

// worstSlot returns the index of the largest element under the slot total
// order (the streaming top-k's replacement candidate).
//
//kd:hotpath
func worstSlot(s []slot) int {
	worst := 0
	for i := 1; i < len(s); i++ {
		if slotLess(s[worst], s[i]) {
			worst = i
		}
	}
	return worst
}

// selectSmallestSlots partially sorts s so that s[:k] holds its k smallest
// elements under the slot total order. Small k uses a single streaming pass
// that keeps the running top-k in the prefix — the common boundary cohort
// in steady state is "every slot tied at one height" (the process keeps
// loads flat), where one comparison per candidate against the running worst
// beats k min-scan passes — larger k uses expected-O(len) quickselect. Both
// compute the same smallest-k SET, and the caller sorts the final
// selection, so the choice cannot affect results.
//
//kd:hotpath
func selectSmallestSlots(s []slot, k int) {
	if k <= 0 {
		return
	}
	if k < len(s) && k <= 4 {
		// worst is the index of the largest element of the running top-k
		// prefix; most candidates lose one comparison against it and move on.
		worst := worstSlot(s[:k])
		for j := k; j < len(s); j++ {
			if slotLess(s[j], s[worst]) {
				s[worst], s[j] = s[j], s[worst]
				worst = worstSlot(s[:k])
			}
		}
		return
	}
	for k > 0 && k < len(s) && len(s) > 12 {
		p := partitionSlots(s)
		switch {
		case k <= p:
			s = s[:p]
		case k == p+1:
			return // s[:p+1] is exactly the k smallest
		default:
			s = s[p+1:]
			k -= p + 1
		}
	}
	if k <= 0 {
		return
	}
	// The residual segment is short; insertion sort finishes the job.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && slotLess(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// makeSlots materializes the round's slots (heights and tie-break keys)
// from the current pr.samples for the reference kernel. Sorting groups
// duplicate samples so heights can be assigned; the sort works on a scratch
// copy so pr.samples keeps the draw order observers are promised.
func (pr *Process) makeSlots(nonce uint64) {
	d := pr.p.D
	sorted := pr.sortBuf[:d]
	copy(sorted, pr.samples)
	sort.Ints(sorted)
	slots := pr.slots[:0]
	for i := 0; i < d; {
		b := sorted[i]
		j := i
		for j < d && sorted[j] == b {
			j++
		}
		load := pr.store.Load(b)
		for c := 1; c <= j-i; c++ {
			slots = append(slots, slot{bin: b, height: load + c, tie: tieKey(nonce, b, load+c)})
		}
		i = j
	}
	pr.slots = slots
}

// sortSlots orders slots by (height, tie, bin) ascending. Hand-rolled
// hybrid quicksort/insertion sort: zero allocations and no interface calls
// on the hot path.
//
//kd:hotpath
func sortSlots(s []slot) {
	for len(s) > 12 {
		p := partitionSlots(s)
		if p < len(s)-p-1 {
			sortSlots(s[:p])
			s = s[p+1:]
		} else {
			sortSlots(s[p+1:])
			s = s[:p]
		}
	}
	// Insertion sort for short (sub)slices.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && slotLess(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// slotLess is the slot total order: height, then tie key, then bin id. The
// bin fallback makes the order deterministic even under (astronomically
// rare) tie-key collisions, which keeps the fast and reference kernels
// bitwise-coupled.
//
//kd:hotpath
func slotLess(a, b slot) bool {
	if a.height != b.height {
		return a.height < b.height
	}
	if a.tie != b.tie {
		return a.tie < b.tie
	}
	return a.bin < b.bin
}

// partitionSlots performs Hoare-style partition around a median-of-three
// pivot and returns the pivot's final index.
//
//kd:hotpath
func partitionSlots(s []slot) int {
	mid := len(s) / 2
	hi := len(s) - 1
	// Median of three to s[0].
	if slotLess(s[mid], s[0]) {
		s[mid], s[0] = s[0], s[mid]
	}
	if slotLess(s[hi], s[0]) {
		s[hi], s[0] = s[0], s[hi]
	}
	if slotLess(s[hi], s[mid]) {
		s[hi], s[mid] = s[mid], s[hi]
	}
	pivot := s[mid]
	s[mid], s[hi-1] = s[hi-1], s[mid]
	i, j := 0, hi-1
	for {
		i++
		for slotLess(s[i], pivot) {
			i++
		}
		j--
		for slotLess(pivot, s[j]) {
			j--
		}
		if i >= j {
			break
		}
		s[i], s[j] = s[j], s[i]
	}
	s[i], s[hi-1] = s[hi-1], s[i]
	return i
}
