package core

import "sort"

// This file is the round engine's selection kernel: given the d samples of a
// round it materializes the conceptual slots (the i-th sample of bin b has
// height load(b)+i) and returns the toPlace slots of minimum height, ranked
// by (height, tie, bin) ascending, with ties between bins at equal height
// broken uniformly at random.
//
// Two implementations exist:
//
//   - fastSelect, the default: O(d + k log k) expected. Samples are grouped
//     by bin with a small open-addressed hash table (O(d) space — the old
//     per-bin multiplicity array cost O(n) scratch and one random cache
//     miss per sample at large n, which would have dwarfed the compact
//     store's 2-bytes/bin budget), the k-th smallest height is located by
//     counting over the round's dense height window, and random tie keys
//     are derived lazily — only for slots at or below the boundary height —
//     via a keyed hash of (bin, height) under a per-round nonce.
//   - the reference kernel (Params.ReferenceSelect): the original
//     sort-everything path, kept as the oracle the fast kernel is tested
//     against.
//
// Both kernels consume the random stream identically (d sample draws plus
// one nonce draw per round) and order slots by the same total order, so for
// a fixed seed they select bitwise-identical slot sets — the property
// TestFastSelectMatchesReference checks exhaustively. A keyed hash instead
// of one rng.Uint64 per slot is what makes this possible: tie keys are a
// pure function of (nonce, bin, height), so computing them lazily does not
// perturb the stream.

// tieKey derives the uniform tie-break key of the slot (bin, height) under
// the round nonce. Distinct slots of one round hash distinct (bin, height)
// pairs, so within a tied cohort (equal height, distinct bins) the keys are
// independent uniform lottery tickets, exactly as in ballDChoice.
func tieKey(nonce uint64, bin, height int) uint64 {
	return mix64(nonce ^ uint64(bin)*0x9e3779b97f4a7c15 ^ uint64(height)*0xda942042e4dd58b5)
}

// rankSelect draws the round nonce, groups the current pr.samples, and
// returns the toPlace minimum slots ranked ascending. The returned slice
// aliases process scratch and is valid until the next round. The pipelined
// round paths skip this and call rankSelectWith on their pre-drawn record.
func (pr *Process) rankSelect(toPlace int) []slot {
	nonce := pr.rng.Uint64()
	var groups []groupEntry
	if !pr.p.ReferenceSelect {
		groups = pr.groupSamples()
	}
	return pr.rankSelectWith(nonce, groups, toPlace)
}

// rankSelectWith is rankSelect with the nonce (and, for the counting
// kernel, the grouped samples) already materialized — either by rankSelect
// itself or by the pipeline producer.
func (pr *Process) rankSelectWith(nonce uint64, groups []groupEntry, toPlace int) []slot {
	if pr.p.ReferenceSelect {
		pr.makeSlots(nonce)
		sortSlots(pr.slots)
		if toPlace > len(pr.slots) {
			toPlace = len(pr.slots)
		}
		return pr.slots[:toPlace]
	}
	return pr.fastSelect(nonce, groups, toPlace)
}

// groupSamples groups pr.samples by bin in first-occurrence order: a
// half-full open-addressed hash table over the round's <= d distinct bins.
// The table lives in L1 regardless of n — the old per-bin multiplicity
// array cost O(n) scratch and one random cache miss per sample — and the
// selected slot set does not depend on grouping mechanics (the final
// ranking is by the (height, tie, bin) total order), so hashing preserves
// bit-identity with the reference kernel.
func (pr *Process) groupSamples() []groupEntry {
	pr.gbuf = pr.gtab.groupInto(pr.samples, pr.gbuf[:0])
	return pr.gbuf
}

// fastSelect is the O(d + k log k) selection kernel over pre-grouped
// samples.
func (pr *Process) fastSelect(nonce uint64, groups []groupEntry, toPlace int) []slot {
	// Materialize the slots and the round's height window.
	slots := pr.slots[:0]
	minH := int(^uint(0) >> 1)
	maxH := 0
	for i := range groups {
		b := int(groups[i].bin) - 1
		m := int(groups[i].count)
		load := pr.store.Load(b)
		for c := 1; c <= m; c++ {
			slots = append(slots, slot{bin: b, height: load + c})
		}
		if load+1 < minH {
			minH = load + 1
		}
		if load+m > maxH {
			maxH = load + m
		}
	}
	pr.slots = slots
	if toPlace > len(slots) {
		toPlace = len(slots)
	}
	if toPlace == 0 {
		return slots[:0]
	}

	if maxH-minH >= len(pr.hist) {
		// Sparse heights (sampled loads spread wider than the counting
		// window, only possible under extreme imbalance): fall back to the
		// reference full sort. Same comparator and keys, so the selected
		// set is identical to what the counting path would pick.
		for i := range slots {
			slots[i].tie = tieKey(nonce, slots[i].bin, slots[i].height)
		}
		sortSlots(slots)
		return slots[:toPlace]
	}

	// Count slots per height and locate the boundary: the height of the
	// toPlace-th smallest slot.
	hist := pr.hist
	for i := range slots {
		hist[slots[i].height-minH]++
	}
	below := 0 // slots strictly below the boundary height
	off := 0
	for {
		c := int(hist[off])
		if below+c >= toPlace {
			break
		}
		below += c
		off++
	}
	boundary := minH + off
	need := toPlace - below // slots to take at the boundary height
	for i := range slots {
		hist[slots[i].height-minH] = 0
	}

	// Gather: everything below the boundary is selected outright; the
	// boundary cohort is genuinely tied, so only now are tie keys derived.
	sel := pr.sel[:0]
	bnd := pr.bnd[:0]
	for i := range slots {
		s := slots[i]
		if s.height > boundary {
			continue
		}
		s.tie = tieKey(nonce, s.bin, s.height)
		if s.height < boundary {
			sel = append(sel, s)
		} else {
			bnd = append(bnd, s)
		}
	}
	if need < len(bnd) {
		selectSmallestSlots(bnd, need)
	}
	sel = append(sel, bnd[:need]...)
	pr.bnd = bnd

	// Rank the k selected slots so SerializedKD sees a total order of
	// ranks; k is small, so this costs O(k log k) at worst.
	sortSlots(sel)
	pr.sel = sel
	return sel
}

// selectSmallestSlots partially sorts s so that s[:k] holds its k smallest
// elements under the slot total order. Small k uses k min-scan passes —
// the common boundary cohort in steady state is "every slot tied at one
// height" (the process keeps loads flat), where O(k·len) scans beat
// quickselect's partition passes — larger k uses expected-O(len)
// quickselect. Both compute the same smallest-k SET, and the caller sorts
// the final selection, so the choice cannot affect results.
func selectSmallestSlots(s []slot, k int) {
	if k < len(s) && k <= 4 {
		for i := 0; i < k; i++ {
			min := i
			for j := i + 1; j < len(s); j++ {
				if slotLess(s[j], s[min]) {
					min = j
				}
			}
			s[i], s[min] = s[min], s[i]
		}
		return
	}
	for k > 0 && k < len(s) && len(s) > 12 {
		p := partitionSlots(s)
		switch {
		case k <= p:
			s = s[:p]
		case k == p+1:
			return // s[:p+1] is exactly the k smallest
		default:
			s = s[p+1:]
			k -= p + 1
		}
	}
	if k <= 0 {
		return
	}
	// The residual segment is short; insertion sort finishes the job.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && slotLess(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// makeSlots materializes the round's slots (heights and tie-break keys)
// from the current pr.samples for the reference kernel. Sorting groups
// duplicate samples so heights can be assigned; the sort works on a scratch
// copy so pr.samples keeps the draw order observers are promised.
func (pr *Process) makeSlots(nonce uint64) {
	d := pr.p.D
	sorted := pr.sortBuf[:d]
	copy(sorted, pr.samples)
	sort.Ints(sorted)
	slots := pr.slots[:0]
	for i := 0; i < d; {
		b := sorted[i]
		j := i
		for j < d && sorted[j] == b {
			j++
		}
		load := pr.store.Load(b)
		for c := 1; c <= j-i; c++ {
			slots = append(slots, slot{bin: b, height: load + c, tie: tieKey(nonce, b, load+c)})
		}
		i = j
	}
	pr.slots = slots
}

// sortSlots orders slots by (height, tie, bin) ascending. Hand-rolled
// hybrid quicksort/insertion sort: zero allocations and no interface calls
// on the hot path.
func sortSlots(s []slot) {
	for len(s) > 12 {
		p := partitionSlots(s)
		if p < len(s)-p-1 {
			sortSlots(s[:p])
			s = s[p+1:]
		} else {
			sortSlots(s[p+1:])
			s = s[:p]
		}
	}
	// Insertion sort for short (sub)slices.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && slotLess(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// slotLess is the slot total order: height, then tie key, then bin id. The
// bin fallback makes the order deterministic even under (astronomically
// rare) tie-key collisions, which keeps the fast and reference kernels
// bitwise-coupled.
func slotLess(a, b slot) bool {
	if a.height != b.height {
		return a.height < b.height
	}
	if a.tie != b.tie {
		return a.tie < b.tie
	}
	return a.bin < b.bin
}

// partitionSlots performs Hoare-style partition around a median-of-three
// pivot and returns the pivot's final index.
func partitionSlots(s []slot) int {
	mid := len(s) / 2
	hi := len(s) - 1
	// Median of three to s[0].
	if slotLess(s[mid], s[0]) {
		s[mid], s[0] = s[0], s[mid]
	}
	if slotLess(s[hi], s[0]) {
		s[hi], s[0] = s[0], s[hi]
	}
	if slotLess(s[hi], s[mid]) {
		s[hi], s[mid] = s[mid], s[hi]
	}
	pivot := s[mid]
	s[mid], s[hi-1] = s[hi-1], s[mid]
	i, j := 0, hi-1
	for {
		i++
		for slotLess(s[i], pivot) {
			i++
		}
		j--
		for slotLess(pivot, s[j]) {
			j--
		}
		if i >= j {
			break
		}
		s[i], s[j] = s[j], s[i]
	}
	s[i], s[hi-1] = s[hi-1], s[i]
	return i
}
