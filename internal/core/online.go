package core

// This file is the online-serving layer of the process: instead of
// simulating "n placements and stop", a process serves an operation stream
// of inserts, deletes and rebalances, with every surviving ball addressable
// through a handle. The placement decisions are exactly the per-ball
// policies' (SingleChoice, DChoice, OnePlusBeta — the (1+β)-capable family:
// β = 0 is single choice, β = 1 with D = d probes is d-choice, anything
// between interpolates — plus the limited-memory pair ThresholdChoice and
// CoarseDChoice of limited.go), drawing from the same deterministic stream
// discipline as the one-shot path: an insert stream with unit weights and
// no deletes is bit-identical to Place on the same seed.
//
// Deletion-aware accounting: every mutation goes through the store's
// Sub/AddN bookkeeping (via the devirtualized kernels), so MaxLoad, Gap and
// ν_y stay correct as bins drain — the property Narang & Dutta's
// deletion-surviving gap bounds are about. Weighted balls add w load units
// atomically; vector-load mode (Params.VecDims) keeps a []float64 load per
// bin and decides on the aggregated norm instead of the scalar store.

import "fmt"

// Op identifies the kind of operation behind a round/observer event.
type Op int

// Operation kinds.
const (
	// OpInsert is a ball arrival (also the kind of every one-shot round).
	OpInsert Op = iota
	// OpDelete is a ball departure.
	OpDelete
	// OpRebalance is a ball migration probe (which may or may not move).
	OpRebalance
)

var opNames = [...]string{OpInsert: "insert", OpDelete: "delete", OpRebalance: "rebalance"}

// String returns the canonical name of the operation kind.
func (o Op) String() string {
	if o >= 0 && int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Ball is a handle to a live ball returned by the insert operations. A
// handle stays valid until the ball is deleted (or the process is reset);
// handles to deleted balls are detected and rejected, even when their
// registry slot has been recycled, via a per-slot generation counter.
type Ball int64

// NoBall is the zero-value invalid handle.
const NoBall Ball = -1

func makeBall(idx int32, gen uint32) Ball {
	return Ball(uint64(gen)<<32 | uint64(uint32(idx)))
}

func (b Ball) slot() int32 { return int32(uint32(uint64(b))) }
func (b Ball) gen() uint32 { return uint32(uint64(b) >> 32) }

// onlineEligible reports whether the policy places balls one at a time
// with no cross-ball round state — the precondition for serving an
// insert/delete stream.
func onlineEligible(policy Policy) bool {
	switch policy {
	case SingleChoice, DChoice, OnePlusBeta, ThresholdChoice, CoarseDChoice:
		return true
	default:
		return false
	}
}

// vecEligible reports whether the policy supports vector-load mode: the
// (1+β)-capable family, whose decisions reduce to aggregated-load argmins.
// The limited-memory policies stay scalar (their decisions read the scalar
// store's integer loads and thresholds).
func vecEligible(policy Policy) bool {
	switch policy {
	case SingleChoice, DChoice, OnePlusBeta:
		return true
	default:
		return false
	}
}

// checkOnline rejects online operations on round-based policies.
func (pr *Process) checkOnline() error {
	if !onlineEligible(pr.policy) {
		return fmt.Errorf("core: online serving requires a per-ball policy (single, dchoice, oneplusbeta, threshold, dchoice-coarse), process runs %v", pr.policy)
	}
	return nil
}

// Live returns the number of live (inserted and not yet deleted) balls.
func (pr *Process) Live() int { return pr.live }

// LastOp returns the operation kind behind the most recent observer
// notification. Observers read it synchronously from their callback.
func (pr *Process) LastOp() Op { return pr.curOp }

// LastOpWeight returns the weight of the most recent operation; 0 means
// "one unit per placed ball" (the one-shot rounds, which never set it).
func (pr *Process) LastOpWeight() int { return pr.curWeight }

// Reserve pre-sizes the ball registry (and the free list) for n live
// balls, so a serving loop of known size never grows a registry slice
// mid-measurement. It never shrinks.
func (pr *Process) Reserve(n int) {
	if n <= cap(pr.ballBin) {
		return
	}
	grow := func(s []int32) []int32 {
		ns := make([]int32, len(s), n)
		copy(ns, s)
		return ns
	}
	pr.ballBin = grow(pr.ballBin)
	pr.ballWt = grow(pr.ballWt)
	ng := make([]uint32, len(pr.ballGen), n)
	copy(ng, pr.ballGen)
	pr.ballGen = ng
	pr.ballFree = grow(pr.ballFree)
	if pr.vec != nil {
		nv := make([]float64, len(pr.ballVec), n*pr.p.VecDims)
		copy(nv, pr.ballVec)
		pr.ballVec = nv
	}
}

// allocSlot takes a registry slot from the free list, growing the registry
// when none is free.
func (pr *Process) allocSlot() int32 {
	if n := len(pr.ballFree); n > 0 {
		idx := pr.ballFree[n-1]
		pr.ballFree = pr.ballFree[:n-1]
		return idx
	}
	pr.ballBin = append(pr.ballBin, 0)
	pr.ballWt = append(pr.ballWt, 0)
	pr.ballGen = append(pr.ballGen, 0)
	if pr.vec != nil {
		for c := 0; c < pr.p.VecDims; c++ {
			pr.ballVec = append(pr.ballVec, 0)
		}
	}
	return int32(len(pr.ballBin) - 1)
}

// resolve maps a handle to its registry slot, rejecting stale or foreign
// handles.
func (pr *Process) resolve(b Ball) (int32, error) {
	idx := b.slot()
	if b < 0 || int(idx) >= len(pr.ballBin) || pr.ballGen[idx] != b.gen() {
		return 0, fmt.Errorf("core: ball handle %#x is not live", int64(b))
	}
	return idx, nil
}

// decide runs one placement decision of the per-ball policy family and
// returns the chosen bin plus the number of bins probed. In scalar mode the
// loads are read through the devirtualized kernel; in vector mode the
// aggregated loads are compared with the same keyed-hash tie discipline.
//
// The random draw sequence is exactly that of the one-shot per-ball rounds
// (ballSingle, ballDChoice, ballOnePlusBeta), so an insert-only stream
// reproduces Place bit for bit. OnePlusBeta generalizes to D > 2: the β
// coin then chooses between one uniform probe and a D-probe argmin scan
// (D <= 2, the classical process of Peres et al., keeps the exact two-probe
// draws).
func (pr *Process) decide() (bin, probes int) {
	if pr.flt != nil {
		return pr.decideFaulty()
	}
	pr.obsPairBuf = pr.obsPairBuf[:0]
	switch pr.policy {
	case DChoice:
		nonce := pr.roundPrologue()
		return pr.argminSamples(nonce), pr.p.D
	case CoarseDChoice:
		nonce := pr.roundPrologue()
		return pr.coarseBest(nonce), pr.p.D
	case ThresholdChoice:
		return pr.decideThreshold()
	case OnePlusBeta:
		if pr.rng.Bernoulli(pr.p.Beta) {
			if d := pr.p.D; d > 2 {
				pr.rng.FillIntn(pr.samples, pr.n)
				nonce := pr.rng.Uint64()
				return pr.argminSamples(nonce), d
			}
			a := pr.rng.Intn(pr.n)
			b := pr.rng.Intn(pr.n)
			best := a
			la, lb := pr.loadOf(a), pr.loadOf(b)
			if lb < la || (lb == la && pr.rng.Bool()) {
				best = b
			}
			pr.obsPair(a, b)
			return best, 2
		}
		fallthrough
	default: // SingleChoice
		b := pr.rng.Intn(pr.n)
		pr.obsPair(b, -1)
		return b, 1
	}
}

// loadOf reads one bin's decision load: the scalar store's load, or the
// aggregated vector load widened to a comparison on float64s. Scalar mode
// routes through the concrete store's Load (devirtualized in argmin scans;
// this helper is only on the two-probe path).
func (pr *Process) loadOf(bin int) float64 {
	if pr.vec != nil {
		return pr.vec.RawAgg()[bin]
	}
	return float64(pr.store.Load(bin))
}

// argminSamples returns the least-loaded bin of pr.samples with the keyed
// per-round tie hash — kern.dchoiceBest in scalar mode, the same scan over
// the aggregated loads in vector mode.
func (pr *Process) argminSamples(nonce uint64) int {
	if pr.vec == nil {
		return pr.kern.dchoiceBest(pr, nonce)
	}
	agg := pr.vec.RawAgg()
	samples := pr.samples
	best := samples[0]
	bestLoad := agg[best]
	bestTie := mix64(nonce ^ uint64(best)*0x9e3779b97f4a7c15)
	for _, cand := range samples[1:] {
		if cand == best {
			continue
		}
		load := agg[cand]
		switch {
		case load < bestLoad:
			best, bestLoad = cand, load
			bestTie = mix64(nonce ^ uint64(cand)*0x9e3779b97f4a7c15)
		case load == bestLoad:
			if tie := mix64(nonce ^ uint64(cand)*0x9e3779b97f4a7c15); tie < bestTie {
				best = cand
				bestTie = tie
			}
		}
	}
	return best
}

// obsPair stashes up to two sampled bins for the observer notification of
// per-ball decisions that do not go through pr.samples (b == -1 means one
// sample). No-op when unobserved; decide clears the buffer at entry, so a
// populated buffer always describes the current decision.
func (pr *Process) obsPair(a, b int) {
	if pr.obs == nil {
		return
	}
	if cap(pr.obsPairBuf) < 2 {
		pr.obsPairBuf = make([]int, 0, 2)
	}
	pr.obsPairBuf = append(pr.obsPairBuf, a)
	if b >= 0 {
		pr.obsPairBuf = append(pr.obsPairBuf, b)
	}
}

// obsSamples returns the sample list of the decision just made, for
// observer notification.
func (pr *Process) obsSamples() []int {
	if len(pr.obsPairBuf) > 0 {
		return pr.obsPairBuf
	}
	return pr.samples
}

// notifyOp reports one online operation to the observer, if any, tagging
// it with kind and weight.
func (pr *Process) notifyOp(op Op, weight int, samples, placed, heights []int) {
	if pr.obs == nil {
		return
	}
	pr.curOp, pr.curWeight = op, weight
	pr.obs.RoundPlaced(pr.rounds, samples, placed, heights)
	pr.curOp, pr.curWeight = OpInsert, 0
}

// Insert places one unit-weight ball and returns its handle.
func (pr *Process) Insert() (Ball, error) { return pr.InsertW(1) }

// InsertW places one ball of weight w >= 1 (w load units added atomically
// to the chosen bin) and returns its handle. The decision probes loads,
// not weights: like Narang & Dutta's weighted process, the ball lands in
// the least-loaded probed bin regardless of its own size.
func (pr *Process) InsertW(w int) (Ball, error) {
	if err := pr.checkOnline(); err != nil {
		return NoBall, err
	}
	if pr.vec != nil {
		return NoBall, fmt.Errorf("core: InsertW on a vector-load process; use InsertVec")
	}
	if w < 1 || w > maxBallWeight {
		return NoBall, fmt.Errorf("core: ball weight %d out of range [1, %d]", w, maxBallWeight)
	}
	pr.faultTick()
	pr.rounds++
	bin, probes := pr.decide()
	h := pr.kern.addW(bin, w)
	pr.balls++
	pr.messages += int64(probes)
	idx := pr.allocSlot()
	pr.ballBin[idx] = int32(bin)
	pr.ballWt[idx] = int32(w)
	pr.live++
	if pr.obs != nil {
		pr.notifyOp(OpInsert, w, pr.obsSamples(), []int{bin}, []int{h})
	}
	return makeBall(idx, pr.ballGen[idx]), nil
}

// InsertVec places one ball carrying the weight vector w (len VecDims,
// non-negative finite components) and returns its handle. Vector mode
// only.
func (pr *Process) InsertVec(w []float64) (Ball, error) {
	if err := pr.checkOnline(); err != nil {
		return NoBall, err
	}
	if pr.vec == nil {
		return NoBall, fmt.Errorf("core: InsertVec on a scalar process; use Insert/InsertW (or set Params.VecDims)")
	}
	if len(w) != pr.p.VecDims {
		return NoBall, fmt.Errorf("core: weight vector has %d components, process has VecDims = %d", len(w), pr.p.VecDims)
	}
	pr.faultTick() // vector mode rejects fault plans; kept for symmetry
	pr.rounds++
	bin, probes := pr.decide()
	pr.vec.AddVec(bin, w)
	pr.balls++
	pr.messages += int64(probes)
	idx := pr.allocSlot()
	pr.ballBin[idx] = int32(bin)
	pr.ballWt[idx] = 1
	copy(pr.ballVec[int(idx)*pr.p.VecDims:], w)
	pr.live++
	if pr.obs != nil {
		pr.notifyOp(OpInsert, 1, pr.obsSamples(), []int{bin}, nil)
	}
	return makeBall(idx, pr.ballGen[idx]), nil
}

// Delete removes a live ball, draining its weight from its bin with full
// aggregate bookkeeping (MaxLoad, Gap and ν_y stay correct as the bin
// drains). The handle becomes invalid; its registry slot is recycled.
func (pr *Process) Delete(b Ball) error {
	idx, err := pr.resolve(b)
	if err != nil {
		return err
	}
	pr.faultTick()
	bin := int(pr.ballBin[idx])
	w := int(pr.ballWt[idx])
	if pr.vec != nil {
		pr.vec.SubVec(bin, pr.ballVec[int(idx)*pr.p.VecDims:(int(idx)+1)*pr.p.VecDims])
	} else {
		pr.kern.subW(bin, w)
	}
	pr.ballGen[idx]++
	// A zero weight marks the slot dead: ballWt > 0 ⇔ live, the
	// invariant the eviction scan (faults.go) and the conservation
	// property tests rely on.
	pr.ballWt[idx] = 0
	pr.ballFree = append(pr.ballFree, idx)
	pr.live--
	pr.balls--
	pr.rounds++
	if pr.obs != nil {
		pr.notifyOp(OpDelete, w, nil, []int{bin}, nil)
	}
	return nil
}

// BallBin returns the bin currently holding a live ball.
func (pr *Process) BallBin(b Ball) (int, error) {
	idx, err := pr.resolve(b)
	if err != nil {
		return 0, err
	}
	return int(pr.ballBin[idx]), nil
}

// BallWeight returns a live ball's scalar weight (1 for vector-mode
// balls).
func (pr *Process) BallWeight(b Ball) (int, error) {
	idx, err := pr.resolve(b)
	if err != nil {
		return 0, err
	}
	return int(pr.ballWt[idx]), nil
}

// Rebalance re-probes for a live ball using the policy's decision rule and
// migrates it when the move strictly lowers the ball's landing height:
// load(best) + w < load(current bin). It returns whether the ball moved.
// Probes are charged at the policy's rate; a migration is one extra
// message.
func (pr *Process) Rebalance(b Ball) (bool, error) {
	idx, err := pr.resolve(b)
	if err != nil {
		return false, err
	}
	pr.faultTick()
	cur := int(pr.ballBin[idx])
	pr.rounds++
	best, probes := pr.decide()
	pr.messages += int64(probes)
	moved := false
	if best != cur {
		if pr.vec != nil {
			w := pr.ballVec[int(idx)*pr.p.VecDims : (int(idx)+1)*pr.p.VecDims]
			agg := pr.vec.RawAgg()
			// Move iff the destination is strictly less loaded than the
			// source even after receiving the ball's aggregate weight.
			if agg[best]+pr.p.VecNorm.Apply(w) < agg[cur] {
				pr.vec.SubVec(cur, w)
				pr.vec.AddVec(best, w)
				moved = true
			}
		} else {
			w := int(pr.ballWt[idx])
			if pr.store.Load(best)+w < pr.store.Load(cur) {
				pr.kern.subW(cur, w)
				pr.kern.addW(best, w)
				moved = true
			}
		}
	}
	if moved {
		pr.ballBin[idx] = int32(best)
		pr.messages++
	}
	if pr.obs != nil {
		placed := []int{cur}
		if moved {
			placed = []int{best}
		}
		pr.notifyOp(OpRebalance, int(pr.ballWt[idx]), pr.obsSamples(), placed, nil)
	}
	return moved, nil
}

// maxBallWeight bounds a scalar ball's weight; it keeps per-ball weights
// within the registry's int32 slots with a wide safety margin.
const maxBallWeight = 1 << 30

// MaxAggLoad returns vector mode's maximum aggregated bin load (0 for
// scalar processes).
func (pr *Process) MaxAggLoad() float64 {
	if pr.vec == nil {
		return 0
	}
	return pr.vec.MaxAgg()
}

// GapAgg returns vector mode's max-minus-mean aggregated load (0 for
// scalar processes).
func (pr *Process) GapAgg() float64 {
	if pr.vec == nil {
		return 0
	}
	return pr.vec.GapAgg()
}

// AggLoad returns one bin's aggregated vector load (0 for scalar
// processes).
func (pr *Process) AggLoad(bin int) float64 {
	if pr.vec == nil {
		return 0
	}
	return pr.vec.AggLoad(bin)
}

// VecLoad returns a copy of one bin's load vector (nil for scalar
// processes).
func (pr *Process) VecLoad(bin int) []float64 {
	if pr.vec == nil {
		return nil
	}
	return pr.vec.VecLoad(bin)
}
