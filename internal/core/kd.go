package core

import "sort"

// roundKD executes one round of the (k,d)-choice process, placing toPlace
// balls (toPlace = k except possibly in a final partial round).
//
// Implementation of the paper's disambiguated policy: the d samples are
// materialized as slots, where the i-th sample of bin b this round has
// height load(b)+i; the toPlace slots of minimum height survive, with ties
// between bins broken uniformly at random (per-slot random keys). Because
// same-bin slot heights are consecutive and distinct, the surviving slots of
// any bin always form a prefix of its slots, which is exactly the rule "a
// bin sampled m times receives at most m balls".
func (pr *Process) roundKD(toPlace int) {
	pr.rng.FillIntn(pr.samples, len(pr.loads))
	pr.roundKDFromSamples(toPlace)
}

// roundKDFromSamples is roundKD with pr.samples already drawn; it is the
// seam that lets tests replay the paper's worked scenarios with fixed
// samples.
func (pr *Process) roundKDFromSamples(toPlace int) {
	pr.makeSlots()
	sortSlots(pr.slots)
	if toPlace > len(pr.slots) {
		toPlace = len(pr.slots)
	}
	placed, heights := pr.beginObs(toPlace)
	for s := 0; s < toPlace; s++ {
		b := pr.slots[s].bin
		h := pr.place(b)
		if placed != nil {
			placed[s] = b
			heights[s] = h
		}
	}
	pr.messages += int64(pr.p.D)
	pr.notify(pr.samples, placed, heights)
}

// roundSerialized executes one round of Aσ(k,d) (Definition 1): the slots
// are ranked exactly as in roundKD, and the j-th ball of the round is placed
// into the slot of rank σ_r(j). The multiset of receiving bins is identical
// to roundKD under the same random draws; only the placement order (and so
// the per-ball height labels) differs — this is Property (i).
func (pr *Process) roundSerialized(toPlace int) {
	pr.rng.FillIntn(pr.samples, len(pr.loads))
	pr.makeSlots()
	sortSlots(pr.slots)
	if toPlace > len(pr.slots) {
		toPlace = len(pr.slots)
	}
	sigma := pr.sigmaBuf
	if pr.p.RandomSigma {
		for i := range sigma {
			sigma[i] = i
		}
		pr.rng.Shuffle(len(sigma), func(i, j int) { sigma[i], sigma[j] = sigma[j], sigma[i] })
	}
	placed, heights := pr.beginObs(toPlace)
	// In a partial round (toPlace < K) only ranks below toPlace exist; σ is
	// restricted to those values with its relative order preserved, which
	// keeps the placed rank set exactly {0..toPlace-1} as in roundKD.
	j := 0
	for _, rank := range sigma {
		if rank >= toPlace {
			continue
		}
		b := pr.slots[rank].bin
		h := pr.place(b)
		if placed != nil {
			placed[j] = b
			heights[j] = h
		}
		j++
		if j == toPlace {
			break
		}
	}
	pr.messages += int64(pr.p.D)
	pr.notify(pr.samples, placed, heights)
}

// roundAdaptive executes one round of the Section 7 water-filling variant:
// d bins are sampled as usual, but the k balls are placed one at a time,
// each into the currently least-loaded DISTINCT sampled bin regardless of
// how many times it was sampled (ties broken uniformly at random). In the
// paper's (2,3) example with sampled loads {0,2,3} both balls land in the
// empty bin.
func (pr *Process) roundAdaptive(toPlace int) {
	pr.rng.FillIntn(pr.samples, len(pr.loads))
	cands := pr.cands[:0]
	for _, b := range pr.samples {
		seen := false
		for _, c := range cands {
			if c == b {
				seen = true
				break
			}
		}
		if !seen {
			cands = append(cands, b)
		}
	}
	pr.cands = cands
	placed, heights := pr.beginObs(toPlace)
	for j := 0; j < toPlace; j++ {
		best := -1
		ties := 0
		for _, b := range cands {
			switch {
			case best == -1 || pr.loads[b] < pr.loads[best]:
				best = b
				ties = 1
			case pr.loads[b] == pr.loads[best]:
				// Reservoir sampling over ties keeps the choice uniform.
				ties++
				if pr.rng.Intn(ties) == 0 {
					best = b
				}
			}
		}
		h := pr.place(best)
		if placed != nil {
			placed[j] = best
			heights[j] = h
		}
	}
	pr.messages += int64(pr.p.D)
	pr.notify(pr.samples, placed, heights)
}

// makeSlots materializes the round's slots (heights and tie-break keys)
// from the current pr.samples. The samples buffer is left sorted by bin id
// (sorting groups duplicates so heights can be assigned); observers receive
// this sorted order.
func (pr *Process) makeSlots() {
	d := pr.p.D
	sort.Ints(pr.samples)
	slots := pr.slots[:0]
	for i := 0; i < d; {
		b := pr.samples[i]
		j := i
		for j < d && pr.samples[j] == b {
			j++
		}
		load := pr.loads[b]
		for c := 1; c <= j-i; c++ {
			slots = append(slots, slot{bin: b, height: load + c, tie: pr.rng.Uint64()})
		}
		i = j
	}
	pr.slots = slots
}

// beginObs returns per-round observation buffers (nil when no observer is
// installed, keeping the hot path allocation-free).
func (pr *Process) beginObs(toPlace int) (placed, heights []int) {
	if pr.obs == nil {
		return nil, nil
	}
	if cap(pr.obsPlaced) < toPlace {
		pr.obsPlaced = make([]int, toPlace)
		pr.obsHeights = make([]int, toPlace)
	}
	return pr.obsPlaced[:toPlace], pr.obsHeights[:toPlace]
}

// sortSlots orders slots by (height, tie) ascending. Hand-rolled hybrid
// quicksort/insertion sort: zero allocations and no interface calls on the
// hot path.
func sortSlots(s []slot) {
	for len(s) > 12 {
		p := partitionSlots(s)
		if p < len(s)-p-1 {
			sortSlots(s[:p])
			s = s[p+1:]
		} else {
			sortSlots(s[p+1:])
			s = s[:p]
		}
	}
	// Insertion sort for short (sub)slices.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && slotLess(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func slotLess(a, b slot) bool {
	if a.height != b.height {
		return a.height < b.height
	}
	return a.tie < b.tie
}

// partitionSlots performs Hoare-style partition around a median-of-three
// pivot and returns the pivot's final index.
func partitionSlots(s []slot) int {
	mid := len(s) / 2
	hi := len(s) - 1
	// Median of three to s[0].
	if slotLess(s[mid], s[0]) {
		s[mid], s[0] = s[0], s[mid]
	}
	if slotLess(s[hi], s[0]) {
		s[hi], s[0] = s[0], s[hi]
	}
	if slotLess(s[hi], s[mid]) {
		s[hi], s[mid] = s[mid], s[hi]
	}
	pivot := s[mid]
	s[mid], s[hi-1] = s[hi-1], s[mid]
	i, j := 0, hi-1
	for {
		i++
		for slotLess(s[i], pivot) {
			i++
		}
		j--
		for slotLess(pivot, s[j]) {
			j--
		}
		if i >= j {
			break
		}
		s[i], s[j] = s[j], s[i]
	}
	s[i], s[hi-1] = s[hi-1], s[i]
	return i
}
