package core

// roundPrologue materializes the round's d samples into pr.samples and
// returns the round nonce: from the superstep engine's pre-drawn records
// when the policy has one, otherwise drawn directly — the identical
// FillIntn-then-nonce sequence either way.
func (pr *Process) roundPrologue() uint64 {
	if pr.eng != nil {
		r := pr.eng.next()
		pr.samples = r.samples // observers see the round's raw samples
		return r.nonce
	}
	pr.rng.FillIntn(pr.samples, pr.n)
	return pr.rng.Uint64()
}

// roundKD executes one round of the (k,d)-choice process, placing toPlace
// balls (toPlace = k except possibly in a final partial round).
//
// Implementation of the paper's disambiguated policy: the d samples are
// materialized as slots, where the i-th sample of bin b this round has
// height load(b)+i; the toPlace slots of minimum height survive, with ties
// between bins broken uniformly at random. Because same-bin slot heights
// are consecutive and distinct, the surviving slots of any bin always form
// a prefix of its slots, which is exactly the rule "a bin sampled m times
// receives at most m balls". Slot selection is delegated to the
// store-specialized counting kernel (kernel.go/select.go; reference sort
// kernel behind Params.ReferenceSelect).
func (pr *Process) roundKD(toPlace int) {
	nonce := pr.roundPrologue()
	pr.placeSelected(pr.rankSelectWith(nonce, toPlace))
}

// roundKDFromSamples is roundKD with pr.samples already drawn; it is the
// seam that lets tests replay the paper's worked scenarios with fixed
// samples.
func (pr *Process) roundKDFromSamples(toPlace int) {
	pr.placeSelected(pr.rankSelect(toPlace))
}

// placeSelected commits the round's ranked slots through the specialized
// kernel and accounts the round.
func (pr *Process) placeSelected(sel []slot) {
	placed, heights := pr.kern.placeSlots(pr, sel)
	pr.messages += int64(pr.p.D)
	pr.notify(pr.samples, placed, heights)
}

// roundSerialized executes one round of Aσ(k,d) (Definition 1): the slots
// are ranked exactly as in roundKD, and the j-th ball of the round is placed
// into the slot of rank σ_r(j). The multiset of receiving bins is identical
// to roundKD under the same random draws; only the placement order (and so
// the per-ball height labels) differs — this is Property (i).
func (pr *Process) roundSerialized(toPlace int) {
	sel := pr.rankSelectWith(pr.roundPrologue(), toPlace)
	toPlace = len(sel)
	sigma := pr.sigmaBuf
	if pr.p.RandomSigma {
		for i := range sigma {
			sigma[i] = i
		}
		pr.rng.Shuffle(len(sigma), func(i, j int) { sigma[i], sigma[j] = sigma[j], sigma[i] })
	}
	placed, heights := pr.beginObs(toPlace)
	// In a partial round (toPlace < K) only ranks below toPlace exist; σ is
	// restricted to those values with its relative order preserved, which
	// keeps the placed rank set exactly {0..toPlace-1} as in roundKD.
	j := 0
	for _, rank := range sigma {
		if rank >= toPlace {
			continue
		}
		b := sel[rank].bin
		h := pr.place(b)
		if placed != nil {
			placed[j] = b
			heights[j] = h
		}
		j++
		if j == toPlace {
			break
		}
	}
	pr.messages += int64(pr.p.D)
	pr.notify(pr.samples, placed, heights)
}

// roundAdaptive executes one round of the Section 7 water-filling variant:
// d bins are sampled as usual, but the k balls are placed one at a time,
// each into the currently least-loaded DISTINCT sampled bin regardless of
// how many times it was sampled (ties broken uniformly at random). In the
// paper's (2,3) example with sampled loads {0,2,3} both balls land in the
// empty bin.
func (pr *Process) roundAdaptive(toPlace int) {
	pr.rng.FillIntn(pr.samples, pr.n)
	cands := pr.cands[:0]
	for _, b := range pr.samples {
		seen := false
		for _, c := range cands {
			if c == b {
				seen = true
				break
			}
		}
		if !seen {
			cands = append(cands, b)
		}
	}
	pr.cands = cands
	placed, heights := pr.beginObs(toPlace)
	for j := 0; j < toPlace; j++ {
		best := -1
		ties := 0
		for _, b := range cands {
			switch {
			case best == -1 || pr.store.Load(b) < pr.store.Load(best):
				best = b
				ties = 1
			case pr.store.Load(b) == pr.store.Load(best):
				// Reservoir sampling over ties keeps the choice uniform.
				ties++
				if pr.rng.Intn(ties) == 0 {
					best = b
				}
			}
		}
		h := pr.place(best)
		if placed != nil {
			placed[j] = best
			heights[j] = h
		}
	}
	pr.messages += int64(pr.p.D)
	pr.notify(pr.samples, placed, heights)
}

// beginObs returns per-round observation buffers (nil when no observer is
// installed, keeping the hot path allocation-free). The capacity miss is
// the one amortized allocation of the placement path; noinline keeps it
// out of the //kd:hotpath callers' bodies so scripts/escapecheck.sh can
// account escapes per function instead of chasing inlined copies.
//
//go:noinline
func (pr *Process) beginObs(toPlace int) (placed, heights []int) {
	if pr.obs == nil {
		return nil, nil
	}
	if cap(pr.obsPlaced) < toPlace {
		pr.obsPlaced = make([]int, toPlace)
		pr.obsHeights = make([]int, toPlace)
	}
	return pr.obsPlaced[:toPlace], pr.obsHeights[:toPlace]
}
