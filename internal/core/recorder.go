package core

// HeightRecorder is an Observer that reconstructs the occupancy statistics
// ν_y (bins with at least y balls) and µ_y (balls with height at least y)
// from the stream of per-ball placement heights, without touching the
// process's load vector.
//
// The reconstruction uses the identity that a bin with load L contributed
// exactly one ball at each height 1..L, so the number of balls placed at
// height exactly y equals the number of bins with load ≥ y:
//
//	ν_y = #{balls placed at height y},   µ_y = Σ_{h ≥ y} ν_h.
//
// It can also take periodic snapshots of the ν vector, which is what the
// layered-induction experiments (Theorem 4's β_i recursion, Theorem 7's
// round groups R_i) consume.
type HeightRecorder struct {
	// heightCount[y] = number of balls placed so far at height exactly y;
	// index 0 is unused (heights start at 1).
	heightCount []int
	rounds      int
	balls       int

	// every > 0 takes a snapshot of heightCount after each `every` rounds.
	every     int
	snapshots []RecorderSnapshot

	// onRound, when set, receives each round's overflow counts; used by
	// the Lemma 4 verification. Called after heightCount is updated.
	onRound func(round int, heights []int)
}

// RecorderSnapshot is the occupancy state at the end of a specific round.
type RecorderSnapshot struct {
	Round int
	Balls int
	// NuByHeight[y] = ν_y at snapshot time (index 0 unused).
	NuByHeight []int
}

// NewHeightRecorder creates a recorder; every > 0 enables snapshots each
// `every` rounds (every <= 0 disables snapshots).
func NewHeightRecorder(every int) *HeightRecorder {
	return &HeightRecorder{heightCount: make([]int, 8), every: every}
}

// SetRoundHook installs a callback receiving each round's placement
// heights (after internal state is updated).
func (hr *HeightRecorder) SetRoundHook(fn func(round int, heights []int)) {
	hr.onRound = fn
}

// RoundPlaced implements Observer.
func (hr *HeightRecorder) RoundPlaced(round int, samples, placed, heights []int) {
	hr.rounds++
	for _, h := range heights {
		for h >= len(hr.heightCount) {
			hr.heightCount = append(hr.heightCount, 0)
		}
		hr.heightCount[h]++
		hr.balls++
	}
	if hr.every > 0 && hr.rounds%hr.every == 0 {
		hr.snapshots = append(hr.snapshots, RecorderSnapshot{
			Round:      hr.rounds,
			Balls:      hr.balls,
			NuByHeight: append([]int(nil), hr.heightCount...),
		})
	}
	if hr.onRound != nil {
		hr.onRound(round, heights)
	}
}

// Balls returns the number of placements observed.
func (hr *HeightRecorder) Balls() int { return hr.balls }

// Rounds returns the number of rounds observed.
func (hr *HeightRecorder) Rounds() int { return hr.rounds }

// MaxHeight returns the largest placement height observed.
func (hr *HeightRecorder) MaxHeight() int {
	for y := len(hr.heightCount) - 1; y >= 1; y-- {
		if hr.heightCount[y] > 0 {
			return y
		}
	}
	return 0
}

// NuY returns ν_y reconstructed from the height stream (y >= 1; ν_0 is the
// bin count, which the recorder does not know).
func (hr *HeightRecorder) NuY(y int) int {
	if y < 1 {
		panic("core: HeightRecorder.NuY requires y >= 1")
	}
	if y >= len(hr.heightCount) {
		return 0
	}
	return hr.heightCount[y]
}

// MuY returns µ_y reconstructed from the height stream (y >= 1).
func (hr *HeightRecorder) MuY(y int) int {
	if y < 1 {
		panic("core: HeightRecorder.MuY requires y >= 1")
	}
	total := 0
	for h := y; h < len(hr.heightCount); h++ {
		total += hr.heightCount[h]
	}
	return total
}

// Snapshots returns the recorded snapshots (shared slice; do not mutate).
func (hr *HeightRecorder) Snapshots() []RecorderSnapshot { return hr.snapshots }

// NuAt returns ν_y at a recorded snapshot.
func (s RecorderSnapshot) NuAt(y int) int {
	if y < 1 || y >= len(s.NuByHeight) {
		return 0
	}
	return s.NuByHeight[y]
}
