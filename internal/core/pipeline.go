package core

// This file is the within-run pipelined round engine (Params.Pipeline) for
// the policies whose per-round random-draw pattern is fixed: a producer
// goroutine repeatedly performs exactly the round prologue the serial path
// would perform — FillIntn(d samples) followed by one nonce draw, in stream
// order on the run's own generator — and packages the results as flat
// per-round records. Because the producer executes the identical draw
// sequence, the pipelined process is bit-identical to the serial one by
// construction (pinned by TestStorePolicyBitIdentity); the consumer simply
// starts each round with its samples already materialized.
//
// For the counting-kernel policies (KDChoice, fixed-σ SerializedKD) the
// producer additionally pre-groups each round's samples by bin — grouping
// is a pure function of the samples, so doing it ahead of time changes
// nothing — which removes both the sampling and the grouping work from the
// round loop, leaving it only the load reads and the selection itself.
//
// The consumer bulk-copies each block into its own buffers when it switches
// blocks: one streamed memcpy (prefetch-friendly) instead of per-round
// demand misses on cache lines still owned by the producer core, which is
// what makes the handoff profitable. Blocks are recycled through a free
// list (zero steady-state allocations) and handed over channels (clean
// happens-before edges under -race).
//
// On a single-CPU host (GOMAXPROCS == 1) a producer goroutine could only
// timeshare the consumer's core, so the handoff would be pure overhead;
// there the pipe degrades to filling blocks inline on demand — the same
// records in the same stream order, bit-identical either way — and the
// engine is simply at parity with the serial path instead of ahead of it.
//
// Policies with data-dependent draw patterns (AdaptiveKD's reservoir ties,
// RandomSigma's shuffles, SAx0's rank draws, ...) cannot pre-draw rounds;
// they fall back to the generic word-level prefetcher (xrand.Pipelined),
// which is bit-identical for any policy.

import (
	"runtime"
	"sync"

	"repro/internal/xrand"
)

// kdRound is the consumer's view of one pre-drawn round, aliasing the
// consumer-local block copy; it is valid until the next next() call.
type kdRound struct {
	samples []int
	groups  []groupEntry
	nonce   uint64
}

// kdBlock is a batch of pre-drawn rounds in flat layout (bulk-copyable).
type kdBlock struct {
	samples []int        // rounds × d raw samples
	nonces  []uint64     // rounds
	groups  []groupEntry // concatenated per-round groups (counting kernel)
	gend    []int32      // per-round end offsets into groups
}

func newKDBlock(rounds, d int, wantGroups bool) *kdBlock {
	b := &kdBlock{
		samples: make([]int, rounds*d),
		nonces:  make([]uint64, rounds),
	}
	if wantGroups {
		b.groups = make([]groupEntry, 0, rounds*d)
		b.gend = make([]int32, rounds)
	}
	return b
}

// copyFrom bulk-copies src into b (one streamed pass per array).
func (b *kdBlock) copyFrom(src *kdBlock) {
	copy(b.samples, src.samples)
	copy(b.nonces, src.nonces)
	if src.gend != nil {
		b.groups = b.groups[:len(src.groups)]
		copy(b.groups, src.groups)
		copy(b.gend, src.gend)
	}
}

// kdPipe produces kdRound records ahead of the round loop.
type kdPipe struct {
	d      int
	rounds int

	// Async mode (extra CPUs available): producer goroutine + channels.
	full chan *kdBlock
	free chan *kdBlock
	done chan struct{}
	once sync.Once

	// Inline mode (single CPU): the consumer fills local itself.
	inline     bool
	rng        xrand.Source
	n          int
	wantGroups bool
	gt         *groupTab

	local *kdBlock // consumer-owned copy of the current block
	idx   int
	cur   kdRound // scratch for next()'s return value
}

// pipeEligible reports whether the policy/params combination has the fixed
// FillIntn-then-nonce round prologue the record pipeline pre-draws.
func pipeEligible(policy Policy, p Params) bool {
	switch policy {
	case KDChoice, DChoice, DynamicKD:
		return true
	case SerializedKD:
		// RandomSigma draws a shuffle after the nonce, so its rounds are
		// not a fixed prologue.
		return !p.RandomSigma
	default:
		return false
	}
}

// kdPipeDepth is the number of producer blocks in flight.
const kdPipeDepth = 3

// kdPipeRounds sizes a block: ~4096 samples per block, at least 4 rounds.
func kdPipeRounds(d int) int {
	r := 4096 / d
	if r < 4 {
		r = 4
	}
	return r
}

// newKDPipe starts the engine. wantGroups enables producer-side grouping
// (the counting kernel's input); rng is owned by the pipe from here on. In
// async mode a producer goroutine pre-draws blocks; on a single-CPU host
// the pipe fills blocks inline instead.
func newKDPipe(rng xrand.Source, n, d int, wantGroups bool) *kdPipe {
	rounds := kdPipeRounds(d)
	p := &kdPipe{
		d:          d,
		rounds:     rounds,
		n:          n,
		wantGroups: wantGroups,
		local:      newKDBlock(rounds, d, wantGroups),
	}
	p.idx = rounds // force a refill on the first next()
	if runtime.GOMAXPROCS(0) <= 1 {
		p.inline = true
		p.rng = rng
		if wantGroups {
			p.gt = newGroupTab(d)
		}
		return p
	}
	p.full = make(chan *kdBlock, kdPipeDepth)
	p.free = make(chan *kdBlock, kdPipeDepth)
	p.done = make(chan struct{})
	for i := 0; i < kdPipeDepth; i++ {
		p.free <- newKDBlock(rounds, d, wantGroups)
	}
	go p.produce(rng, n, wantGroups)
	return p
}

// fillBlock pre-draws one block of rounds into b: per round, exactly
// FillIntn(samples, n) then one Uint64 nonce — the serial prologue — plus
// the pure grouping pass. Shared by the async producer and inline mode, so
// the two modes cannot diverge.
func fillBlock(b *kdBlock, rng xrand.Source, gt *groupTab, n, d, rounds int, wantGroups bool) {
	if wantGroups {
		b.groups = b.groups[:0]
	}
	for r := 0; r < rounds; r++ {
		samples := b.samples[r*d : (r+1)*d]
		rng.FillIntn(samples, n)
		b.nonces[r] = rng.Uint64()
		if wantGroups {
			b.groups = gt.groupInto(samples, b.groups)
			b.gend[r] = int32(len(b.groups))
		}
	}
}

// produce is the async producer loop.
func (p *kdPipe) produce(rng xrand.Source, n int, wantGroups bool) {
	var gt *groupTab
	if wantGroups {
		gt = newGroupTab(p.d)
	}
	for {
		var b *kdBlock
		select {
		case <-p.done:
			return
		case b = <-p.free:
		}
		fillBlock(b, rng, gt, n, p.d, p.rounds, wantGroups)
		select {
		case <-p.done:
			return
		case p.full <- b:
		}
	}
}

// next returns the next pre-drawn round. The returned record (and its
// samples/groups slices) is valid until the following next call.
func (p *kdPipe) next() *kdRound {
	if p.idx == p.rounds {
		p.advance()
	}
	i := p.idx
	p.idx++
	b := p.local
	p.cur.samples = b.samples[i*p.d : (i+1)*p.d]
	p.cur.nonce = b.nonces[i]
	if b.gend != nil {
		start := int32(0)
		if i > 0 {
			start = b.gend[i-1]
		}
		p.cur.groups = b.groups[start:b.gend[i]]
	}
	return &p.cur
}

// advance refills the local block: inline mode draws it directly; async
// mode takes the next producer block, bulk-copies it, and recycles it
// immediately (published blocks are drained before honoring Close).
func (p *kdPipe) advance() {
	if p.inline {
		fillBlock(p.local, p.rng, p.gt, p.n, p.d, p.rounds, p.wantGroups)
		p.idx = 0
		return
	}
	var b *kdBlock
	select {
	case b = <-p.full:
	default:
		select {
		case b = <-p.full:
		case <-p.done:
			panic("core: pipelined process used after Close")
		}
	}
	p.local.copyFrom(b)
	p.free <- b
	p.idx = 0
}

// Close stops the producer goroutine (no-op in inline mode). Idempotent.
func (p *kdPipe) Close() {
	if p.inline {
		return
	}
	p.once.Do(func() { close(p.done) })
}

// groupTab is the reusable open-addressed grouping scratch: tab entries
// pack (bin+1) in the high 32 bits and the multiplicity in the low 32, so
// an insert or increment is a single word load/store; used records the
// occupied table slots so clearing is one direct store per distinct bin
// (no re-probing).
type groupTab struct {
	tab  []uint64
	used []int32
}

func newGroupTab(d int) *groupTab {
	return &groupTab{tab: make([]uint64, groupTableSize(d)), used: make([]int32, 0, d)}
}

// groupInto appends samples grouped by bin to dst ((bin+1, multiplicity)
// pairs in first-occurrence order). It is the one grouping implementation —
// the serial round loop and the pipeline producer both call it, so the
// grouping order can never diverge between engines.
func (gt *groupTab) groupInto(samples []int, dst []groupEntry) []groupEntry {
	tab := gt.tab
	mask := uint32(len(tab) - 1)
	used := gt.used[:0]
	for _, b := range samples {
		key := uint64(b+1) << 32
		h := uint32((uint64(uint32(b))*0x9e3779b97f4a7c15)>>32) & mask
		for {
			e := tab[h]
			if e == 0 {
				tab[h] = key | 1
				used = append(used, int32(h))
				break
			}
			if e&^0xffffffff == key {
				tab[h] = e + 1
				break
			}
			h = (h + 1) & mask
		}
	}
	for _, h := range used {
		e := tab[h]
		tab[h] = 0
		dst = append(dst, groupEntry{bin: int32(e >> 32), count: int32(e)})
	}
	gt.used = used
	return dst
}
