package core

// This file is the superstep round engine behind every fixed-prologue
// policy: rounds whose random-draw pattern is a constant FillIntn(d
// samples) followed by one nonce draw (KDChoice, fixed-σ SerializedKD,
// DChoice, DynamicKD) are pre-drawn in blocks of B rounds — one
// xrand.FillRounds bulk fill per block instead of 2B separate generator
// calls — and consumed one kdRound record at a time. Because the bulk fill
// performs exactly the serial draw sequence (samples then nonce, per round,
// in stream order), the block engine is bit-identical to per-round drawing
// by construction; pre-drawing only moves work earlier in time, never
// changes a word of the stream.
//
// B comes from Params.Block (0 auto-sizes to ~4096 samples per superstep),
// which amortizes the fixed per-round costs — generator state loads, Lemire
// threshold setup, call overhead — across the whole block.
//
// The engine runs in one of two modes:
//
//   - inline (the default, and always on a single-CPU host): the consumer
//     fills its local block in place whenever it runs dry. Same records,
//     same stream order, zero copies, zero goroutines.
//   - async (Params.Pipeline on a multi-CPU host): a producer goroutine
//     pre-draws whole blocks ahead of the round loop and hands them through
//     channels (clean happens-before edges under -race). The consumer
//     bulk-copies each block into its own buffers when it switches blocks:
//     one streamed memcpy instead of per-round demand misses on cache lines
//     still owned by the producer core. Blocks are recycled through a free
//     list, so the steady state performs zero allocations.
//
// Policies with data-dependent draw patterns (AdaptiveKD's reservoir ties,
// RandomSigma's shuffles, SAx0's rank draws, StaleBatch's per-ball fills,
// ...) cannot pre-draw rounds; under Params.Pipeline they fall back to the
// generic word-level prefetcher (xrand.Pipelined), which is bit-identical
// for any policy.

import (
	"runtime"
	"sync"

	"repro/internal/xrand"
)

// kdRound is the consumer's view of one pre-drawn round, aliasing the
// consumer-local block; it is valid until the next next() call.
type kdRound struct {
	samples []int
	nonce   uint64
}

// kdBlock is one superstep of pre-drawn rounds in flat layout
// (bulk-copyable).
type kdBlock struct {
	samples []int    // rounds × d raw samples
	nonces  []uint64 // rounds
}

func newKDBlock(rounds, d int) *kdBlock {
	return &kdBlock{
		samples: make([]int, rounds*d),
		nonces:  make([]uint64, rounds),
	}
}

// copyFrom bulk-copies src into b (one streamed pass per array).
//
//kd:hotpath
func (b *kdBlock) copyFrom(src *kdBlock) {
	copy(b.samples, src.samples)
	copy(b.nonces, src.nonces)
}

// roundEngine produces kdRound records ahead of the round loop.
type roundEngine struct {
	d      int
	rounds int // superstep size B

	// Async mode (Params.Pipeline, extra CPUs): producer + channels.
	full chan *kdBlock
	free chan *kdBlock
	done chan struct{}
	once sync.Once

	// Inline mode: the consumer fills local itself. rng is shared with the
	// owning Process (pr.rng stays valid for the non-engine seams).
	inline bool
	rng    xrand.Source
	n      int

	local *kdBlock // consumer-owned copy of the current block
	idx   int
	cur   kdRound // scratch for next()'s return value
}

// blockEligible reports whether the policy/params combination has the
// fixed FillIntn-then-nonce round prologue the superstep engine pre-draws.
func blockEligible(policy Policy, p Params) bool {
	switch policy {
	case KDChoice, DChoice, DynamicKD, CoarseDChoice:
		return true
	case SerializedKD:
		// RandomSigma draws a shuffle after the nonce, so its rounds are
		// not a fixed prologue.
		return !p.RandomSigma
	default:
		return false
	}
}

// enginePipeDepth is the number of producer blocks in flight (async mode).
const enginePipeDepth = 3

// maxBlockSamples bounds Params.Block * D, the per-block sample buffer: a
// superstep past 2^24 samples (128 MB of ints, several blocks in flight
// when pipelined) would fail as an opaque giant allocation instead of a
// config error, and is far beyond any amortization benefit (auto-sizing
// picks a few thousand samples).
const maxBlockSamples = 1 << 24

// blockRounds sizes a superstep: Params.Block when set, otherwise ~4096
// samples per block with a floor of 4 rounds.
func blockRounds(d, block int) int {
	if block > 0 {
		return block
	}
	r := 4096 / d
	if r < 4 {
		r = 4
	}
	return r
}

// shardBlockRounds sizes a sharded superstep: Params.Block when set,
// otherwise ~32768 samples per block with a floor of 32 rounds — wider than
// the serial auto block because the parallel decide phase amortizes worker
// hand-off per block, not per round. Deliberately independent of the worker
// count: the block boundary is part of the allocation law (it sets the
// staleness horizon), so auto-sizing by P would break the
// bit-identical-for-any-P guarantee.
func shardBlockRounds(d, block int) int {
	if block > 0 {
		return block
	}
	r := 32768 / d
	if r < 32 {
		r = 32
	}
	return r
}

// newRoundEngine starts the engine over blocks of `rounds` rounds. In
// inline mode the rng is shared with the caller and drawn from lazily; in
// async mode (wantAsync on a multi-CPU host) a producer goroutine owns the
// rng from here on.
func newRoundEngine(rng xrand.Source, n, d, rounds int, wantAsync bool) *roundEngine {
	p := &roundEngine{
		d:      d,
		rounds: rounds,
		n:      n,
		local:  newKDBlock(rounds, d),
	}
	p.idx = rounds // force a refill on the first next()
	if !wantAsync || runtime.GOMAXPROCS(0) <= 1 {
		p.inline = true
		p.rng = rng
		return p
	}
	p.full = make(chan *kdBlock, enginePipeDepth)
	p.free = make(chan *kdBlock, enginePipeDepth)
	p.done = make(chan struct{})
	for i := 0; i < enginePipeDepth; i++ {
		p.free <- newKDBlock(rounds, d)
	}
	go p.produce(rng)
	return p
}

// fillBlock pre-draws one superstep into b: per round, exactly
// FillIntn(samples, n) then one Uint64 nonce — the serial prologue — via
// the unrolled bulk fill. Shared by the async producer and inline mode, so
// the two modes cannot diverge.
func fillBlock(b *kdBlock, rng xrand.Source, n, d int) {
	rng.FillRounds(b.samples, b.nonces, d, n)
}

// produce is the async producer loop.
func (p *roundEngine) produce(rng xrand.Source) {
	for {
		var b *kdBlock
		select {
		case <-p.done:
			return
		case b = <-p.free:
		}
		fillBlock(b, rng, p.n, p.d)
		select {
		case <-p.done:
			return
		case p.full <- b:
		}
	}
}

// next returns the next pre-drawn round. The returned record (and its
// samples slice) is valid until the following next call.
//
//kd:hotpath
func (p *roundEngine) next() *kdRound {
	if p.idx == p.rounds {
		p.advance()
	}
	i := p.idx
	p.idx++
	b := p.local
	p.cur.samples = b.samples[i*p.d : (i+1)*p.d]
	p.cur.nonce = b.nonces[i]
	return &p.cur
}

// nextBlock refills and returns the whole local block at once. The sharded
// superstep engine (shard.go) consumes blocks wholesale — it decides every
// round of a block in one parallel phase — so it bypasses the per-round
// cursor; next() and nextBlock() must not be mixed on one engine. The
// returned block aliases the consumer-local buffers and is valid until the
// following nextBlock call.
func (p *roundEngine) nextBlock() *kdBlock {
	p.advance()
	p.idx = p.rounds // keep the per-round cursor poisoned (exhausted)
	return p.local
}

// advance refills the local block: inline mode draws it directly; async
// mode takes the next producer block, bulk-copies it, and recycles it
// immediately (published blocks are drained before honoring Close).
func (p *roundEngine) advance() {
	if p.inline {
		fillBlock(p.local, p.rng, p.n, p.d)
		p.idx = 0
		return
	}
	var b *kdBlock
	select {
	case b = <-p.full:
	default:
		select {
		case b = <-p.full:
		case <-p.done:
			panic("core: pipelined process used after Close")
		}
	}
	p.local.copyFrom(b)
	p.free <- b
	p.idx = 0
}

// Close stops the producer goroutine (no-op in inline mode). Idempotent.
func (p *roundEngine) Close() {
	if p.inline {
		return
	}
	p.once.Do(func() { close(p.done) })
}
