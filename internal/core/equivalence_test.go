package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// TestSerializationEquivalenceExact verifies Property (i) in its strongest
// checkable form: under the same random stream, Aσ(k,d) and A(k,d) produce
// the IDENTICAL final load vector for any fixed serialization permutation σ,
// because a round's receiving-bin multiset does not depend on σ.
func TestSerializationEquivalenceExact(t *testing.T) {
	sigmas := map[string][]int{
		"identity": nil,
		"reverse":  {3, 2, 1, 0},
		"rotate":   {1, 2, 3, 0},
		"swap":     {1, 0, 3, 2},
	}
	for name, sigma := range sigmas {
		t.Run(name, func(t *testing.T) {
			const n, k, d, seed = 128, 4, 7, 42
			kd := MustNew(KDChoice, Params{N: n, K: k, D: d}, xrand.New(seed))
			ser := MustNew(SerializedKD, Params{N: n, K: k, D: d, Sigma: sigma}, xrand.New(seed))
			kd.Place(n)
			ser.Place(n)
			if !reflect.DeepEqual(kd.Loads(), ser.Loads()) {
				t.Fatalf("σ=%s: serialized loads differ from (k,d)-choice under coupled randomness", name)
			}
			if kd.MaxLoad() != ser.MaxLoad() {
				t.Fatalf("σ=%s: max loads differ", name)
			}
		})
	}
}

func TestSerializationEquivalenceProperty(t *testing.T) {
	if err := quick.Check(func(seed uint64, permSeed uint64, kRaw, dRaw uint8) bool {
		k := int(kRaw%6) + 1
		d := k + 1 + int(dRaw%6)
		n := 64
		sigma := xrand.New(permSeed).Perm(k)
		kd := MustNew(KDChoice, Params{N: n, K: k, D: d}, xrand.New(seed))
		ser := MustNew(SerializedKD, Params{N: n, K: k, D: d, Sigma: sigma}, xrand.New(seed))
		kd.Place(n)
		ser.Place(n)
		return reflect.DeepEqual(kd.Loads(), ser.Loads())
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSerializedRandomSigmaDistribution: with RandomSigma the coupling is
// broken (extra draws), but the final max-load distribution must match
// plain (k,d)-choice.
func TestSerializedRandomSigmaDistribution(t *testing.T) {
	const n, k, d, runs = 256, 3, 5, 400
	var kdMean, serMean stats.Online
	for i := 0; i < runs; i++ {
		kd := MustNew(KDChoice, Params{N: n, K: k, D: d}, xrand.NewStream(101, uint64(i)))
		kd.Place(n)
		kdMean.Add(float64(kd.MaxLoad()))
		ser := MustNew(SerializedKD, Params{N: n, K: k, D: d, RandomSigma: true}, xrand.NewStream(202, uint64(i)))
		ser.Place(n)
		serMean.Add(float64(ser.MaxLoad()))
	}
	if diff := kdMean.Mean() - serMean.Mean(); diff < -0.15 || diff > 0.15 {
		t.Fatalf("mean max load differs: kd=%.3f serialized=%.3f", kdMean.Mean(), serMean.Mean())
	}
}

// TestDChoiceMatchesKD1 cross-validates the two independent implementations
// of greedy[d]: (k=1,d)-choice and DChoice must produce the same max-load
// distribution.
func TestDChoiceMatchesKD1(t *testing.T) {
	const n, d, runs = 256, 3, 600
	var kd1, dch stats.Online
	maxCounts1 := make(map[int]int)
	maxCounts2 := make(map[int]int)
	for i := 0; i < runs; i++ {
		a := MustNew(KDChoice, Params{N: n, K: 1, D: d}, xrand.NewStream(7, uint64(i)))
		a.Place(n)
		kd1.Add(float64(a.MaxLoad()))
		maxCounts1[a.MaxLoad()]++
		b := MustNew(DChoice, Params{N: n, D: d}, xrand.NewStream(8, uint64(i)))
		b.Place(n)
		dch.Add(float64(b.MaxLoad()))
		maxCounts2[b.MaxLoad()]++
	}
	if diff := kd1.Mean() - dch.Mean(); diff < -0.12 || diff > 0.12 {
		t.Fatalf("KD(1,%d) mean %.3f vs DChoice mean %.3f (dist1=%v dist2=%v)",
			d, kd1.Mean(), dch.Mean(), maxCounts1, maxCounts2)
	}
}

// TestOnePlusBetaLimits: β=0 must behave like single choice and β=1 like
// two-choice, distributionally.
func TestOnePlusBetaLimits(t *testing.T) {
	const n, runs = 256, 400
	mean := func(policy Policy, p Params, seed uint64) float64 {
		var o stats.Online
		for i := 0; i < runs; i++ {
			pr := MustNew(policy, p, xrand.NewStream(seed, uint64(i)))
			pr.Place(n)
			o.Add(float64(pr.MaxLoad()))
		}
		return o.Mean()
	}
	beta0 := mean(OnePlusBeta, Params{N: n, Beta: 0}, 31)
	single := mean(SingleChoice, Params{N: n}, 32)
	if d := beta0 - single; d < -0.2 || d > 0.2 {
		t.Fatalf("β=0 mean %.3f vs single %.3f", beta0, single)
	}
	beta1 := mean(OnePlusBeta, Params{N: n, Beta: 1}, 33)
	two := mean(DChoice, Params{N: n, D: 2}, 34)
	if d := beta1 - two; d < -0.2 || d > 0.2 {
		t.Fatalf("β=1 mean %.3f vs two-choice %.3f", beta1, two)
	}
	// And the interpolation must sit strictly between the endpoints.
	betaHalf := mean(OnePlusBeta, Params{N: n, Beta: 0.5}, 35)
	if betaHalf >= beta0 || betaHalf <= beta1 {
		t.Fatalf("β=0.5 mean %.3f not between β=1 (%.3f) and β=0 (%.3f)", betaHalf, beta1, beta0)
	}
}

// ruleChecker is an Observer that validates the core disambiguation rule of
// the paper on every round: a bin sampled m times receives at most m balls,
// every receiving bin was sampled, and per-bin ball heights are consecutive.
type ruleChecker struct {
	t       *testing.T
	rounds  int
	maxSeen int
}

func (rc *ruleChecker) RoundPlaced(round int, samples, placed, heights []int) {
	rc.t.Helper()
	rc.rounds++
	sampleCount := make(map[int]int, len(samples))
	for _, b := range samples {
		sampleCount[b]++
	}
	placedCount := make(map[int]int, len(placed))
	binHeights := make(map[int][]int)
	for i, b := range placed {
		placedCount[b]++
		binHeights[b] = append(binHeights[b], heights[i])
	}
	for b, c := range placedCount {
		if sampleCount[b] == 0 {
			rc.t.Fatalf("round %d: bin %d received a ball without being sampled", round, b)
		}
		if c > sampleCount[b] {
			rc.t.Fatalf("round %d: bin %d sampled %d times but received %d balls",
				round, b, sampleCount[b], c)
		}
	}
	for b, hs := range binHeights {
		sort.Ints(hs)
		for i := 1; i < len(hs); i++ {
			if hs[i] != hs[i-1]+1 {
				rc.t.Fatalf("round %d: bin %d heights %v not consecutive", round, b, hs)
			}
		}
		if hs[len(hs)-1] > rc.maxSeen {
			rc.maxSeen = hs[len(hs)-1]
		}
	}
}

func TestMultiplicityRuleObserved(t *testing.T) {
	for _, tc := range []struct{ k, d int }{{1, 2}, {2, 3}, {3, 4}, {8, 17}, {5, 6}} {
		pr := MustNew(KDChoice, Params{N: 128, K: tc.k, D: tc.d}, xrand.New(99))
		rc := &ruleChecker{t: t}
		pr.SetObserver(rc)
		pr.Place(512)
		if rc.rounds != pr.Rounds() {
			t.Fatalf("observer saw %d rounds, process ran %d", rc.rounds, pr.Rounds())
		}
		if rc.maxSeen != pr.MaxLoad() {
			t.Fatalf("max height seen %d != max load %d", rc.maxSeen, pr.MaxLoad())
		}
	}
}

func TestMultiplicityRuleSerialized(t *testing.T) {
	pr := MustNew(SerializedKD, Params{N: 64, K: 3, D: 5, RandomSigma: true}, xrand.New(3))
	rc := &ruleChecker{t: t}
	pr.SetObserver(rc)
	pr.Place(300)
}

// countObserver records total placements per policy for lighter checks.
type countObserver struct {
	roundsSeen int
	ballsSeen  int
}

func (c *countObserver) RoundPlaced(round int, samples, placed, heights []int) {
	c.roundsSeen++
	c.ballsSeen += len(placed)
}

func TestObserverCountsAllPolicies(t *testing.T) {
	cases := []struct {
		policy Policy
		p      Params
	}{
		{KDChoice, Params{N: 32, K: 2, D: 4}},
		{SerializedKD, Params{N: 32, K: 2, D: 4}},
		{AdaptiveKD, Params{N: 32, K: 2, D: 4}},
		{DChoice, Params{N: 32, D: 2}},
		{SingleChoice, Params{N: 32}},
		{OnePlusBeta, Params{N: 32, Beta: 0.7}},
		{AlwaysGoLeft, Params{N: 32, D: 4}},
	}
	for _, tc := range cases {
		pr := MustNew(tc.policy, tc.p, xrand.New(4))
		obs := &countObserver{}
		pr.SetObserver(obs)
		pr.Place(64)
		if obs.ballsSeen != 64 {
			t.Fatalf("%v: observer saw %d balls, want 64", tc.policy, obs.ballsSeen)
		}
		if obs.roundsSeen != pr.Rounds() {
			t.Fatalf("%v: observer rounds %d != %d", tc.policy, obs.roundsSeen, pr.Rounds())
		}
	}
}

func TestSAx0TopIsFlat(t *testing.T) {
	// Lemma 8(ii): in SAx0 the top of the sorted load vector is flat —
	// B_1 <= B_{x0} + 1 at every point in time. Check at the end and
	// mid-stream.
	for _, x0 := range []int{1, 4, 16} {
		pr := MustNew(SAx0, Params{N: 64, X0: x0}, xrand.New(11))
		for step := 0; step < 20; step++ {
			pr.Place(100)
			sorted := pr.Loads().Sorted()
			if sorted[0] > sorted[x0-1]+1 {
				t.Fatalf("x0=%d: B_1=%d exceeds B_x0=%d + 1", x0, sorted[0], sorted[x0-1])
			}
		}
	}
}

func TestSAx0ZeroMatchesSingleChoice(t *testing.T) {
	const n, runs = 256, 300
	var sa, single stats.Online
	for i := 0; i < runs; i++ {
		a := MustNew(SAx0, Params{N: n, X0: 0}, xrand.NewStream(51, uint64(i)))
		a.Place(n)
		if a.Discarded() != 0 {
			t.Fatal("SAx0 with x0=0 discarded a ball")
		}
		sa.Add(float64(a.MaxLoad()))
		b := MustNew(SingleChoice, Params{N: n}, xrand.NewStream(52, uint64(i)))
		b.Place(n)
		single.Add(float64(b.MaxLoad()))
	}
	if d := sa.Mean() - single.Mean(); d < -0.25 || d > 0.25 {
		t.Fatalf("SAx0(0) mean %.3f vs single %.3f", sa.Mean(), single.Mean())
	}
}

func TestSAx0DiscardRate(t *testing.T) {
	// Each ball picks a uniform bin; it is discarded iff the bin's rank is
	// <= x0, which happens with probability exactly x0/n.
	const n, x0, attempts = 100, 25, 40000
	pr := MustNew(SAx0, Params{N: n, X0: x0}, xrand.New(77))
	pr.Place(attempts)
	rate := float64(pr.Discarded()) / attempts
	if rate < 0.23 || rate > 0.27 {
		t.Fatalf("discard rate %.4f, want about 0.25", rate)
	}
}

func TestAlwaysGoLeftGroupsPartition(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{10, 3}, {12, 4}, {7, 7}, {100, 6}} {
		pr := MustNew(AlwaysGoLeft, Params{N: tc.n, D: tc.d}, xrand.New(1))
		gs := pr.groupStart
		if gs[0] != 0 || gs[tc.d] != tc.n {
			t.Fatalf("n=%d d=%d: boundaries %v", tc.n, tc.d, gs)
		}
		for g := 0; g < tc.d; g++ {
			if gs[g+1] <= gs[g] {
				t.Fatalf("n=%d d=%d: empty or inverted group %d: %v", tc.n, tc.d, g, gs)
			}
			size := gs[g+1] - gs[g]
			if size != tc.n/tc.d && size != tc.n/tc.d+1 {
				t.Fatalf("n=%d d=%d: group %d has size %d", tc.n, tc.d, g, size)
			}
		}
	}
}

func TestAlwaysGoLeftBeatsSingleChoice(t *testing.T) {
	const n, runs = 512, 200
	var agl, single stats.Online
	for i := 0; i < runs; i++ {
		a := MustNew(AlwaysGoLeft, Params{N: n, D: 2}, xrand.NewStream(61, uint64(i)))
		a.Place(n)
		agl.Add(float64(a.MaxLoad()))
		b := MustNew(SingleChoice, Params{N: n}, xrand.NewStream(62, uint64(i)))
		b.Place(n)
		single.Add(float64(b.MaxLoad()))
	}
	if agl.Mean() >= single.Mean() {
		t.Fatalf("always-go-left mean %.3f not better than single %.3f", agl.Mean(), single.Mean())
	}
}

func TestSortSlotsMatchesReference(t *testing.T) {
	if err := quick.Check(func(seed uint64, size uint8) bool {
		n := int(size%200) + 1
		rng := xrand.New(seed)
		s := make([]slot, n)
		for i := range s {
			s[i] = slot{bin: rng.Intn(16), height: rng.Intn(8), tie: rng.Uint64() % 4}
		}
		ref := make([]slot, n)
		copy(ref, s)
		sort.SliceStable(ref, func(i, j int) bool { return slotLess(ref[i], ref[j]) })
		sortSlots(s)
		for i := range s {
			if s[i].height != ref[i].height || s[i].tie != ref[i].tie {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMakeSlotsHeights(t *testing.T) {
	pr := MustNew(KDChoice, Params{N: 6, K: 2, D: 5}, xrand.New(1))
	pr.setLoads([]int{2, 0, 1, 0, 0, 0})
	copy(pr.samples, []int{0, 0, 2, 1, 0})
	pr.makeSlots(1)
	// Sorted samples: 0,0,0,1,2 -> slots: bin0 h3,h4,h5; bin1 h1; bin2 h2.
	type hs struct{ bin, height int }
	want := []hs{{0, 3}, {0, 4}, {0, 5}, {1, 1}, {2, 2}}
	if len(pr.slots) != len(want) {
		t.Fatalf("got %d slots", len(pr.slots))
	}
	for i, w := range want {
		if pr.slots[i].bin != w.bin || pr.slots[i].height != w.height {
			t.Fatalf("slot %d = {bin %d, h %d}, want %+v", i, pr.slots[i].bin, pr.slots[i].height, w)
		}
	}
}

// TestSerializationEquivalenceHeavyLoad extends the exact Property (i)
// coupling to the heavily loaded case (m = 8n), where round counts and
// partial-round handling get more exercise.
func TestSerializationEquivalenceHeavyLoad(t *testing.T) {
	const n, k, d, seed = 64, 3, 7, 99
	m := 8*n + 5 // deliberately not a multiple of k
	kd := MustNew(KDChoice, Params{N: n, K: k, D: d}, xrand.New(seed))
	ser := MustNew(SerializedKD, Params{N: n, K: k, D: d, Sigma: []int{2, 0, 1}}, xrand.New(seed))
	kd.Place(m)
	ser.Place(m)
	if !reflect.DeepEqual(kd.Loads(), ser.Loads()) {
		t.Fatal("heavy-load serialized coupling diverged")
	}
}

// TestDynamicCeilingProperty: across random parameters the dynamic policy
// keeps the max load near the final ceiling. The guarantee is probabilistic
// — the single-ball progress fallback can exceed the ceiling when ALL d
// samples land in full bins — so the property uses d >= 5 (where fallbacks
// are rare) and a one-ball slack on top of the per-round fallback bound; a
// fixed Rand keeps the test deterministic.
func TestDynamicCeilingProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Rand:     rand.New(rand.NewSource(987654321)),
	}
	if err := quick.Check(func(seed uint64, nRaw, dRaw, multRaw uint8) bool {
		n := int(nRaw%120) + 16
		d := int(dRaw%4) + 5
		if d > n {
			d = n
		}
		mult := int(multRaw%6) + 1
		pr := MustNew(DynamicKD, Params{N: n, D: d}, xrand.New(seed))
		m := mult * n
		pr.Place(m)
		if pr.Loads().Total() != m {
			return false
		}
		return pr.MaxLoad() <= m/n+3
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestHeavyPartialRoundsProperty: arbitrary m with arbitrary k never loses
// or duplicates balls under any round-based policy.
func TestHeavyPartialRoundsProperty(t *testing.T) {
	policies := []Policy{KDChoice, SerializedKD, AdaptiveKD, StaleBatch}
	if err := quick.Check(func(seed uint64, pRaw, kRaw, mRaw uint8) bool {
		policy := policies[int(pRaw)%len(policies)]
		k := int(kRaw%5) + 1
		d := k + 2
		if policy == StaleBatch {
			d = 2 // per-ball probes
		}
		m := int(mRaw) * 3
		pr := MustNew(policy, Params{N: 64, K: k, D: d}, xrand.New(seed))
		pr.Place(m)
		return pr.Balls() == m && pr.Loads().Total() == m
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
