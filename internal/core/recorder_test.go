package core

import (
	"testing"

	"repro/internal/xrand"
)

func TestHeightRecorderMatchesLoadVector(t *testing.T) {
	for _, tc := range []struct {
		policy Policy
		p      Params
	}{
		{KDChoice, Params{N: 128, K: 2, D: 3}},
		{KDChoice, Params{N: 128, K: 8, D: 17}},
		{DChoice, Params{N: 128, D: 2}},
		{SingleChoice, Params{N: 128}},
	} {
		pr := MustNew(tc.policy, tc.p, xrand.New(31))
		hr := NewHeightRecorder(0)
		pr.SetObserver(hr)
		pr.Place(512)
		if hr.Balls() != 512 {
			t.Fatalf("%v: recorder saw %d balls", tc.policy, hr.Balls())
		}
		if hr.Rounds() != pr.Rounds() {
			t.Fatalf("%v: recorder rounds %d != %d", tc.policy, hr.Rounds(), pr.Rounds())
		}
		loads := pr.Loads()
		if hr.MaxHeight() != pr.MaxLoad() {
			t.Fatalf("%v: MaxHeight %d != MaxLoad %d", tc.policy, hr.MaxHeight(), pr.MaxLoad())
		}
		for y := 1; y <= pr.MaxLoad()+1; y++ {
			if got, want := hr.NuY(y), loads.NuY(y); got != want {
				t.Fatalf("%v: reconstructed nu_%d = %d, actual %d", tc.policy, y, got, want)
			}
			if got, want := hr.MuY(y), loads.MuY(y); got != want {
				t.Fatalf("%v: reconstructed mu_%d = %d, actual %d", tc.policy, y, got, want)
			}
		}
	}
}

func TestHeightRecorderSnapshots(t *testing.T) {
	pr := MustNew(KDChoice, Params{N: 64, K: 2, D: 4}, xrand.New(5))
	hr := NewHeightRecorder(4) // snapshot every 4 rounds
	pr.SetObserver(hr)
	pr.Place(64) // 32 rounds -> 8 snapshots
	snaps := hr.Snapshots()
	if len(snaps) != 8 {
		t.Fatalf("%d snapshots, want 8", len(snaps))
	}
	prevBalls := 0
	for i, s := range snaps {
		if s.Round != (i+1)*4 {
			t.Fatalf("snapshot %d at round %d", i, s.Round)
		}
		if s.Balls <= prevBalls {
			t.Fatalf("snapshot %d balls %d not increasing", i, s.Balls)
		}
		prevBalls = s.Balls
		// nu_1 at snapshot equals balls at height 1 so far, <= n.
		if s.NuAt(1) > 64 {
			t.Fatalf("snapshot %d nu_1 = %d > n", i, s.NuAt(1))
		}
		if s.NuAt(0) != 0 || s.NuAt(99) != 0 {
			t.Fatal("out-of-range NuAt should be 0")
		}
	}
	// The final snapshot must agree with the final load vector.
	final := snaps[len(snaps)-1]
	loads := pr.Loads()
	for y := 1; y <= pr.MaxLoad(); y++ {
		if final.NuAt(y) != loads.NuY(y) {
			t.Fatalf("final snapshot nu_%d = %d, actual %d", y, final.NuAt(y), loads.NuY(y))
		}
	}
}

func TestHeightRecorderRoundHook(t *testing.T) {
	pr := MustNew(KDChoice, Params{N: 64, K: 3, D: 5}, xrand.New(6))
	hr := NewHeightRecorder(0)
	calls := 0
	totalHeights := 0
	hr.SetRoundHook(func(round int, heights []int) {
		calls++
		totalHeights += len(heights)
	})
	pr.SetObserver(hr)
	pr.Place(60)
	if calls != pr.Rounds() {
		t.Fatalf("hook called %d times, rounds %d", calls, pr.Rounds())
	}
	if totalHeights != 60 {
		t.Fatalf("hook saw %d heights", totalHeights)
	}
}

func TestHeightRecorderPanics(t *testing.T) {
	hr := NewHeightRecorder(0)
	for _, f := range []func(){
		func() { hr.NuY(0) },
		func() { hr.MuY(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHeightRecorderEmpty(t *testing.T) {
	hr := NewHeightRecorder(0)
	if hr.MaxHeight() != 0 || hr.Balls() != 0 || hr.NuY(1) != 0 || hr.MuY(1) != 0 {
		t.Fatal("empty recorder should report zeros")
	}
}
