package core

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/loadvec"
	"repro/internal/xrand"
)

// This file pins the fault layer's contracts (faults.go):
//
//   - zero cost when inactive: a nil or empty plan is bit-identical to a
//     process built with no Faults field at all, at 0 extra allocs/round;
//   - engine independence when active: faulty runs are bit-identical for
//     ANY Shards/Pipeline/Block setting (fault decisions are serial by
//     design — effectiveShards forces the serial engine);
//   - conservation: the EvictRecover path moves balls without creating
//     or destroying weight, and handles stay valid across evictions;
//   - graceful degradation: even under total probe loss every ball still
//     lands in an up bin, with the fallback counter recording the loss.

// faultPolicyCases enumerates the (policy, params) pairs with a degraded
// path, spanning both round dispatch branches (kd multiset vs per-ball).
var faultPolicyCases = []struct {
	name   string
	policy Policy
	p      Params
}{
	{"kd", KDChoice, Params{N: 96, K: 4, D: 12}},
	{"kd-serialized", SerializedKD, Params{N: 96, K: 3, D: 8, Sigma: []int{2, 0, 1}}},
	{"dchoice", DChoice, Params{N: 96, D: 3}},
	{"dchoice-coarse", CoarseDChoice, Params{N: 96, D: 4, Quantum: 2}},
	{"single", SingleChoice, Params{N: 96}},
	{"oneplusbeta", OnePlusBeta, Params{N: 96, Beta: 0.7}},
	{"threshold", ThresholdChoice, Params{N: 96, D: 4}},
}

// testPlan is a plan exercising every fault mechanism at once.
var testPlan = faults.Plan{FailRate: 0.02, DownFor: 16, LossProb: 0.25, NoiseBound: 1, Retry: 2}

// TestNoPlanBitIdentical: attaching a nil or empty plan must leave the
// process bit-identical to one that never saw the Faults field — across
// policies, stores, and engine configurations.
func TestNoPlanBitIdentical(t *testing.T) {
	const seed, m = 1313, 257
	for _, tc := range faultPolicyCases {
		for _, store := range []loadvec.StoreKind{loadvec.StoreDense, loadvec.StoreCompact} {
			for _, plan := range []*faults.Plan{nil, {}} {
				ref := MustNew(tc.policy, withStore(tc.p, store), xrand.New(seed))
				p := withStore(tc.p, store)
				p.Faults = plan
				got := MustNew(tc.policy, p, xrand.New(seed))
				ref.Place(m)
				got.Place(m)
				stateEqual(t, fmt.Sprintf("%s/%s/plan=%v", tc.name, store, plan), ref, got)
				if c := got.FaultCounters(); c.Any() {
					t.Fatalf("%s: inactive plan accumulated counters %+v", tc.name, c)
				}
				ref.Close()
				got.Close()
			}
		}
	}
}

// TestNoPlanZeroAllocs: the nil-guarded hooks must not cost a single
// allocation per round, with and without an (empty) plan attached.
func TestNoPlanZeroAllocs(t *testing.T) {
	for _, plan := range []*faults.Plan{nil, {}} {
		p := Params{N: 256, K: 2, D: 8, Faults: plan}
		pr := MustNew(KDChoice, p, xrand.New(1))
		pr.Round() // warm buffers
		if avg := testing.AllocsPerRun(200, pr.Round); avg != 0 {
			t.Fatalf("plan=%v: %v allocs/round on the unobserved hot path, want 0", plan, avg)
		}
		pr.Close()
	}
}

// TestFaultyRoundZeroAllocs: the degraded round itself must run
// alloc-free once its buffers are warm — the contract -comparefaults
// enforces on the serving path, pinned here on the round path.
func TestFaultyRoundZeroAllocs(t *testing.T) {
	plan := testPlan
	p := Params{N: 256, K: 2, D: 8, Faults: &plan}
	pr := MustNew(KDChoice, p, xrand.New(1))
	for i := 0; i < 64; i++ {
		pr.Round() // warm buffers and the outage queue
	}
	if avg := testing.AllocsPerRun(200, pr.Round); avg != 0 {
		t.Fatalf("%v allocs/round on the degraded round path, want 0", avg)
	}
	pr.Close()
}

// TestFaultyBitIdenticalAnyEngine: with a plan attached, every engine
// configuration must reproduce the serial run bit for bit — the
// determinism half of the fault contract.
func TestFaultyBitIdenticalAnyEngine(t *testing.T) {
	const seed, m = 909, 4*32 + 5
	plan := testPlan
	for _, tc := range faultPolicyCases {
		base := tc.p
		base.Faults = &plan
		ref := MustNew(tc.policy, base, xrand.New(seed))
		ref.Place(m)
		refC := ref.FaultCounters()
		if !refC.Any() {
			t.Fatalf("%s: plan injected nothing over %d balls", tc.name, m)
		}
		for _, engine := range []struct {
			name string
			mut  func(*Params)
		}{
			{"shards=2", func(p *Params) { p.Shards = 2 }},
			{"shards=8", func(p *Params) { p.Shards = 8 }},
			{"block=1", func(p *Params) { p.Block = 1 }},
			{"shards=4,block=7", func(p *Params) { p.Shards = 4; p.Block = 7 }},
			{"pipeline", func(p *Params) { p.Pipeline = true }},
		} {
			p := base
			engine.mut(&p)
			if err := Validate(tc.policy, p); err != nil {
				// Engine knob undefined for this policy (e.g. threshold
				// rounds cannot be pre-drawn) — with or without faults.
				continue
			}
			got := MustNew(tc.policy, p, xrand.New(seed))
			got.Place(m)
			stateEqual(t, fmt.Sprintf("%s/%s", tc.name, engine.name), ref, got)
			if gotC := got.FaultCounters(); gotC != refC {
				t.Fatalf("%s/%s: fault counters diverged: %+v vs %+v", tc.name, engine.name, gotC, refC)
			}
			got.Close()
		}
		ref.Close()
	}
}

// TestTotalLossFallback: under loss:1 with no retries every probe is
// lost, yet every ball must still land (in an up bin) via the uniform
// fallback, and the counters must say so.
func TestTotalLossFallback(t *testing.T) {
	plan := faults.Plan{LossProb: 1}
	for _, tc := range faultPolicyCases {
		p := tc.p
		p.Faults = &plan
		pr := MustNew(tc.policy, p, xrand.New(7))
		pr.Place(200)
		if pr.Balls() != 200 {
			t.Fatalf("%s: placed %d of 200 balls under total loss", tc.name, pr.Balls())
		}
		c := pr.FaultCounters()
		if c.Fallbacks == 0 || c.ProbesLost == 0 {
			t.Fatalf("%s: total loss but counters %+v", tc.name, c)
		}
		if c.Retries != 0 {
			t.Fatalf("%s: retries spent with no budget: %+v", tc.name, c)
		}
		pr.Close()
	}
}

// TestRetryRestoresProbes: with a generous retry budget under pure probe
// loss, the decision quality must recover — the retried run's gap stays
// at the fault-free level while the unretried run degrades toward
// fewer-choice behavior. Pinned via the retry counters and the conserved
// ball count rather than a flaky gap comparison.
func TestRetryRestoresProbes(t *testing.T) {
	noRetry := faults.Plan{LossProb: 0.5}
	retry := faults.Plan{LossProb: 0.5, Retry: 8}
	p0 := Params{N: 128, K: 2, D: 8, Faults: &noRetry}
	p1 := Params{N: 128, K: 2, D: 8, Faults: &retry}
	a := MustNew(KDChoice, p0, xrand.New(11))
	b := MustNew(KDChoice, p1, xrand.New(11))
	a.Place(512)
	b.Place(512)
	ca, cb := a.FaultCounters(), b.FaultCounters()
	if ca.Retries != 0 || cb.Retries == 0 {
		t.Fatalf("retry budgets not exercised: %+v vs %+v", ca, cb)
	}
	// Retries are extra probes, so the retried run pays more messages.
	if b.Messages() <= a.Messages() {
		t.Fatalf("retried run sent %d messages, unretried %d — retries are not free", b.Messages(), a.Messages())
	}
	// Degraded rounds must be rarer with the budget than without.
	if cb.Degraded >= ca.Degraded {
		t.Fatalf("retry budget did not reduce degraded rounds: %d (retry) vs %d (none)", cb.Degraded, ca.Degraded)
	}
	a.Close()
	b.Close()
}

// TestEvictRecoverConservation: a churned serving run under outages with
// eviction must conserve live weight exactly — every ball is always in
// exactly one up-or-down bin, evictions move weight atomically, and the
// final scan total matches the live-ball ledger.
func TestEvictRecoverConservation(t *testing.T) {
	plan := faults.Plan{FailRate: 0.05, DownFor: 8, LossProb: 0.2, Retry: 1, Evict: true}
	for _, store := range []loadvec.StoreKind{loadvec.StoreDense, loadvec.StoreHist} {
		p := Params{N: 32, Beta: 0.8, D: 2, Store: store, Faults: &plan}
		pr := MustNew(OnePlusBeta, p, xrand.New(99))
		wrng := xrand.NewStream(99, 555)
		type liveBall struct {
			h Ball
			w int
		}
		var live []liveBall
		wantTotal := 0
		for op := 0; op < 3000; op++ {
			if len(live) > 0 && wrng.Bernoulli(0.4) {
				vi := wrng.Intn(len(live))
				if err := pr.Delete(live[vi].h); err != nil {
					t.Fatalf("op %d: Delete: %v", op, err)
				}
				wantTotal -= live[vi].w
				live[vi] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			w := 1 + wrng.Intn(4)
			h, err := pr.InsertW(w)
			if err != nil {
				t.Fatalf("op %d: InsertW: %v", op, err)
			}
			live = append(live, liveBall{h, w})
			wantTotal += w
		}
		if pr.Balls() != len(live) {
			t.Fatalf("store=%v: Balls() = %d, ledger says %d live", store, pr.Balls(), len(live))
		}
		scan := 0
		for _, l := range pr.Loads() {
			scan += l
		}
		if scan != wantTotal {
			t.Fatalf("store=%v: scanned load total %d, ledger says %d", store, scan, wantTotal)
		}
		c := pr.FaultCounters()
		if c.Evictions == 0 || c.Replacements != c.Evictions {
			t.Fatalf("store=%v: eviction counters inconsistent: %+v", store, c)
		}
		// Every surviving handle still resolves, and its weight is intact.
		for i, lb := range live {
			w, err := pr.BallWeight(lb.h)
			if err != nil {
				t.Fatalf("store=%v: live handle %d died: %v", store, i, err)
			}
			if w != lb.w {
				t.Fatalf("store=%v: handle %d weight %d, want %d", store, i, w, lb.w)
			}
		}
		pr.Close()
	}
}

// TestFaultyReset: Reset must clear the injector's schedule state so a
// replayed process starts from a clean (but not rewound) fault stream.
func TestFaultyReset(t *testing.T) {
	plan := faults.Plan{FailRate: 0.1, DownFor: 4, LossProb: 0.3}
	p := Params{N: 64, K: 2, D: 6, Faults: &plan}
	pr := MustNew(KDChoice, p, xrand.New(3))
	pr.Place(300)
	if !pr.FaultCounters().Any() {
		t.Fatal("plan injected nothing before Reset")
	}
	pr.Reset()
	if c := pr.FaultCounters(); c.Any() {
		t.Fatalf("Reset left fault counters %+v", c)
	}
	pr.Place(300)
	if !pr.FaultCounters().Any() {
		t.Fatal("injector dead after Reset")
	}
	pr.Close()
}

// TestFaultValidate: the plan gate must reject the combinations the
// degraded paths do not define.
func TestFaultValidate(t *testing.T) {
	plan := faults.Plan{LossProb: 0.1}
	evict := faults.Plan{LossProb: 0.1, Evict: true}
	bad := []struct {
		name   string
		policy Policy
		p      Params
	}{
		{"stale-batch", StaleBatch, Params{N: 16, K: 4, D: 2, Faults: &plan}},
		{"adaptive", AdaptiveKD, Params{N: 16, K: 2, D: 4, Faults: &plan}},
		{"vector-mode", DChoice, Params{N: 16, D: 2, VecDims: 2, Faults: &plan}},
		{"random-sigma", SerializedKD, Params{N: 16, K: 2, D: 4, RandomSigma: true, Faults: &plan}},
		{"evict-round-only", KDChoice, Params{N: 16, K: 2, D: 4, Faults: &evict}},
		{"invalid-plan", DChoice, Params{N: 16, D: 2, Faults: &faults.Plan{LossProb: 2}}},
	}
	for _, tc := range bad {
		if err := Validate(tc.policy, tc.p); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
	}
	if err := Validate(OnePlusBeta, Params{N: 16, Beta: 0.5, Faults: &evict}); err != nil {
		t.Errorf("oneplusbeta+evict rejected: %v", err)
	}
	// A non-splittable source cannot feed the injector's stream splits.
	src := xrand.NewPipelined(xrand.New(1), 0, 0)
	defer src.Close()
	if _, err := New(DChoice, Params{N: 16, D: 2, Faults: &plan}, src); err == nil {
		t.Error("New accepted a fault plan on a non-splittable source")
	}
}
