// Package core implements the paper's primary contribution — the
// (k,d)-choice allocation process — together with every allocation process
// the paper defines, uses in its analysis, or compares against:
//
//   - KDChoice: the (k,d)-choice process (Section 1.1). In each round d bins
//     are sampled independently and uniformly at random WITH replacement and
//     k < d balls are placed into the k least-loaded sampled bins, under the
//     disambiguation rule that a bin sampled m times receives at most m
//     balls. Operationally (and exactly as the paper reformulates it): d
//     conceptual balls are placed one per sample, and the d−k of maximal
//     height are removed.
//   - SerializedKD: Aσ(k,d), Definition 1 — the serialization of a round by
//     a permutation σ_r of {1..k}. Property (i) states Aσ ≡ A for every σ.
//   - DChoice: the classical multiple-choice process of Azar et al. (k = 1).
//   - SingleChoice: the classical single-choice process.
//   - OnePlusBeta: the (1+β)-choice process of Peres, Talwar and Wieder,
//     discussed by the paper as the other known single/multi mix.
//   - AlwaysGoLeft: Vöcking's asymmetric d-choice, a classical baseline.
//   - AdaptiveKD: the Section 7 future-work policy in which less-loaded
//     sampled bins may receive more balls than their sample multiplicity
//     (greedy water-filling over the distinct sampled bins).
//   - SAx0: Definition 3 — single choice where a ball landing in one of the
//     x0 most loaded bins is discarded; used by the paper's lower-bound
//     machinery and exposed here for completeness and testing.
//   - ThresholdChoice / CoarseDChoice: the limited-memory policies of
//     limited.go — O(1)-state sequential accept/reject and d-choice over
//     quantized loads — motivated by the choice-memory tradeoff literature
//     and designed to run on the approximate sketch store.
//
// All processes run over n bins, support m ≥ n balls (the heavily loaded
// case of Theorem 2), count message cost (number of bin probes, the paper's
// cost measure), and draw all randomness from an explicit xrand.Source so
// every run is reproducible.
//
// The bin-load state lives behind the loadvec.Store abstraction
// (Params.Store): the dense []int reference, the 2-bytes/bin compact store
// and the histogram-indexed store all produce bit-identical results for
// equal seeds, so production-scale runs (10⁷–10⁸ bins) can pick the memory
// layout without changing a single result. The store-touching inner loops
// are specialized per concrete store type through the generic kernels in
// kernel.go (one dynamic dispatch per round instead of one per bin
// access); fixed-prologue round policies batch their randomness into
// supersteps of Params.Block rounds (kernel and engine both bit-identical
// to the interface/per-round reference paths). Params.Pipeline moves
// random generation onto a producer goroutine (bit-identical by
// construction), and Params.Shards engages the sharded superstep engine
// (shard.go): bins are partitioned across a persistent worker pool, each
// superstep's randomness is pre-drawn serially, the workers gather owned
// bins' loads and decide whole rounds in parallel against that frozen
// snapshot, and placements apply serially in round order. Sharded results
// are bit-identical for ANY worker count (the merge is positional, not
// scheduling-dependent); relative to the serial process they are
// bit-identical wherever the policy's semantics allow (StaleBatch and
// SingleChoice always; the load-coupled round policies at Block = 1) and
// diverge only by bounded within-block staleness otherwise.
package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/faults"
	"repro/internal/loadvec"
	"repro/internal/xrand"
)

// Policy identifies an allocation process.
type Policy int

// Supported allocation policies.
const (
	// KDChoice is the paper's (k,d)-choice process.
	KDChoice Policy = iota + 1
	// SerializedKD is Aσ(k,d) (Definition 1).
	SerializedKD
	// DChoice is the classical d-choice (greedy[d]) process.
	DChoice
	// SingleChoice is the classical 1-choice process.
	SingleChoice
	// OnePlusBeta is the (1+β)-choice process of Peres et al.
	OnePlusBeta
	// AlwaysGoLeft is Vöcking's asymmetric d-choice process.
	AlwaysGoLeft
	// AdaptiveKD is the Section 7 water-filling variant of (k,d)-choice.
	AdaptiveKD
	// SAx0 is the discard process of Definition 3.
	SAx0
	// StaleBatch is the parallel-allocation baseline: k balls per round,
	// each independently probing D bins and deciding against the
	// round-start loads with no information sharing (collisions possible).
	StaleBatch
	// DynamicKD adjusts k per round (Section 7 future work): every sampled
	// slot at or below the current ceiling floor(m/n)+1 receives a ball.
	DynamicKD
	// ThresholdChoice is the O(1)-memory accept/reject policy (limited.go):
	// up to D sequential probes, the ball accepting the first bin under the
	// running ceiling floor(balls/n)+1.
	ThresholdChoice
	// CoarseDChoice is d-choice over quantized loads (limited.go): the
	// argmin compares floor(load/Quantum), tolerating bounded sketch
	// overestimates. Quantum = 1 is bit-identical to DChoice.
	CoarseDChoice
)

var policyNames = map[Policy]string{
	KDChoice:        "kd",
	SerializedKD:    "kd-serialized",
	DChoice:         "dchoice",
	SingleChoice:    "single",
	OnePlusBeta:     "oneplusbeta",
	AlwaysGoLeft:    "alwaysgoleft",
	AdaptiveKD:      "kd-adaptive",
	SAx0:            "sax0",
	StaleBatch:      "stale-batch",
	DynamicKD:       "kd-dynamic",
	ThresholdChoice: "threshold",
	CoarseDChoice:   "dchoice-coarse",
}

// policyNotes carries the one-line memory/accuracy note printed next to
// each policy name in command help output.
var policyNotes = map[Policy]string{
	KDChoice:        "the paper's (k,d)-choice rounds",
	SerializedKD:    "Aσ(k,d), serialized round placement",
	DChoice:         "classical greedy[d] of Azar et al.",
	SingleChoice:    "classical 1-choice",
	OnePlusBeta:     "(1+β)-choice of Peres et al.",
	AlwaysGoLeft:    "Vöcking's asymmetric d-choice",
	AdaptiveKD:      "water-filling (k,d) variant",
	SAx0:            "Definition 3 discard process; needs an exact store",
	StaleBatch:      "parallel balls on round-start loads",
	DynamicKD:       "per-round adaptive k under the running ceiling",
	ThresholdChoice: "O(1)-memory accept/reject under the running ceiling",
	CoarseDChoice:   "d-choice on quantized loads; sketch-tolerant",
}

// String returns the canonical short name of the policy.
func (p Policy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// PolicyNames returns the canonical names of every supported policy in
// sorted order — the deterministic list used by error messages and command
// usage strings (policyNames is a map, so ranging it directly would print a
// different order on every run).
func PolicyNames() []string {
	names := make([]string, 0, len(policyNames))
	for _, n := range policyNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PolicyHelp returns one "name — note" line per policy in sorted name
// order, for command flag help.
func PolicyHelp() []string {
	lines := make([]string, 0, len(policyNames))
	for p, n := range policyNames {
		lines = append(lines, n+" — "+policyNotes[p])
	}
	sort.Strings(lines)
	return lines
}

// ParsePolicy converts a short name (as printed by Policy.String) back into
// a Policy. Unknown names list the valid policies in sorted order.
func ParsePolicy(s string) (Policy, error) {
	//kdlint:ordered policy names are unique, so the first (only) match is independent of iteration order
	for p, name := range policyNames {
		if name == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown policy %q (valid: %s)", s, strings.Join(PolicyNames(), ", "))
}

// Params configures a process. Fields not used by the selected policy are
// ignored (but still validated when they are meaningful).
type Params struct {
	// N is the number of bins (required, >= 1).
	N int
	// K is the number of balls placed per round (KDChoice, SerializedKD,
	// AdaptiveKD).
	K int
	// D is the number of probes per round (KDChoice, SerializedKD,
	// AdaptiveKD, DChoice, AlwaysGoLeft).
	D int
	// Beta is the probability of probing a second bin (OnePlusBeta).
	Beta float64
	// X0 is the discard threshold of SAx0: a ball whose uniformly random
	// bin ranks among the X0 most loaded is discarded.
	X0 int
	// Sigma is the fixed serialization permutation of {0,..,K-1} used by
	// SerializedKD for every round. Nil means the identity permutation.
	Sigma []int
	// RandomSigma makes SerializedKD draw a fresh uniformly random σ_r each
	// round (overrides Sigma).
	RandomSigma bool
	// ReferenceSelect switches the round-based policies (KDChoice,
	// SerializedKD) to the reference sort-based slot-selection kernel
	// instead of the default O(d + k log k) counting kernel. Both kernels
	// consume the random stream identically and induce the same allocation
	// law (see select.go); the reference kernel exists as the oracle for
	// equivalence testing and debugging.
	ReferenceSelect bool
	// Store selects the bin-load representation: the dense []int reference
	// (zero value), the compact 2-bytes/bin store with overflow escape,
	// the histogram-indexed store with O(1) occupancy statistics, the
	// exact ~0.5-bytes/bin nibble store, or the approximate count-min
	// sketch store. Every exact store produces bit-identical results for
	// equal seeds; the sketch store's loads are one-sided overestimates.
	Store loadvec.StoreKind
	// SketchWidth is the count-min row width of the sketch store (cells
	// per row, rounded up to a power of two). 0 auto-sizes to N/8. Ignored
	// by the other stores.
	SketchWidth int
	// SketchDepth is the count-min row count of the sketch store. 0
	// defaults to 2. Ignored by the other stores.
	SketchDepth int
	// Quantum is the load-bucket width of CoarseDChoice: the argmin
	// compares floor(load/Quantum). 0 defaults to 4; 1 reproduces DChoice
	// bit for bit. Ignored by the other policies.
	Quantum int
	// Pipeline moves random generation onto a producer goroutine while the
	// round loop consumes it: whole pre-drawn supersteps for the
	// fixed-prologue policies, raw word blocks (xrand.Pipelined) for the
	// rest. Bit-identical to the serial path by construction. A pipelined
	// process owns a background goroutine: call Process.Close when done
	// with it.
	Pipeline bool
	// Block is the superstep size of the fixed-prologue round policies
	// (KDChoice, fixed-σ SerializedKD, DChoice, DynamicKD): rounds are
	// pre-drawn in blocks of Block rounds — one bulk random fill and one
	// group-table epoch per round instead of per-round setup — which is
	// bit-identical to per-round drawing for any value. 0 auto-sizes the
	// superstep (~4096 samples); explicit values must be >= 1. Policies
	// without a fixed prologue ignore Block.
	Block int
	// Shards engages the sharded superstep engine: bins are partitioned
	// across this many workers, each superstep's randomness is pre-drawn
	// serially, the workers gather the loads of the bins they own and
	// decide whole rounds in parallel against that frozen snapshot, and
	// placements apply serially in round order. Results are bit-identical
	// across ANY shard count >= 2 (the owner-shard merge is positional).
	// Relative to the serial process: StaleBatch and SingleChoice are
	// bit-identical always; KDChoice, fixed-σ SerializedKD, DChoice, and
	// CoarseDChoice are bit-identical at Block = 1 and otherwise see each
	// round's loads as of its block start (bounded within-block
	// staleness); OnePlusBeta shards under its own fixed-width prologue
	// and matches the serial law only in distribution. Policies with
	// data-dependent prologues (AdaptiveKD, DynamicKD, random-σ
	// SerializedKD, AlwaysGoLeft, SAx0) reject Shards > 1.
	//
	// 0 = auto: GOMAXPROCS workers for StaleBatch — whose sharding is
	// exact at any count — and serial for every other policy, so that an
	// auto-shard config can never change the allocation law between
	// hosts. Sharding a staleness-coupled policy is an explicit opt-in.
	Shards int
	// VecDims switches the process into vector-load mode when > 0: every
	// bin carries a VecDims-component []float64 load vector, balls arrive
	// through InsertVec with a weight vector each, and placement decisions
	// compare the bins' aggregated loads under VecNorm. Vector mode is an
	// online-serving mode: only the per-ball policies (SingleChoice,
	// DChoice, OnePlusBeta) support it, and the scalar round entry points
	// (Place, Round) reject it.
	VecDims int
	// VecNorm is the aggregation norm of vector mode (zero value: the
	// bottleneck-resource max-component norm, loadvec.NormLInf).
	VecNorm loadvec.Norm
	// Faults attaches a deterministic fault-injection plan (faults.go):
	// seeded bin outages with recovery, per-probe loss, bounded read
	// noise, and the graceful-degradation policies (retry / degrade-d /
	// evict-recover). Nil or empty means no faults — bit-identical to a
	// process built without the field, at zero extra cost. A non-empty
	// plan forces serial decisions: results are then bit-identical for
	// ANY Shards/Pipeline/Block setting. Supported by the (k,d) round
	// family (kd, fixed-σ kd-serialized) and the per-ball serving family
	// (single, dchoice, dchoice-coarse, oneplusbeta, threshold), scalar
	// mode only.
	Faults *faults.Plan
}

// faultsActive reports whether p carries a non-empty fault plan.
func faultsActive(p Params) bool {
	return p.Faults != nil && !p.Faults.Empty()
}

// Observer receives a callback after every round. It is intended for tests
// and instrumentation; the hot path skips all bookkeeping when no observer
// is installed.
type Observer interface {
	// RoundPlaced reports the 1-based round number, the sampled bin ids (in
	// the order drawn, length d for round-based policies), the bins that
	// received balls (one entry per placed ball), and the height at which
	// each ball landed.
	RoundPlaced(round int, samples, placed, heights []int)
}

// Process is a single allocation process instance. Construct with New; the
// zero value is not usable. A Process is not safe for concurrent use.
type Process struct {
	policy Policy
	p      Params
	rng    xrand.Source
	pipe   *xrand.Pipelined // word-level engine (Params.Pipeline fallback)
	eng    *roundEngine     // superstep engine (fixed-prologue policies)

	// kern is the store-specialized kernel the round loops dispatch
	// through: one dynamic call per round, with every bin access inside
	// devirtualized to the concrete store type (kernel.go).
	kern kernelOps

	store     loadvec.Store
	n         int
	balls     int
	messages  int64
	discarded int
	rounds    int

	obs Observer

	// Reused per-round buffers (never escape a round).
	samples  []int
	sortBuf  []int // bin-sorted copy of samples (reference kernel)
	slots    []slot
	ldv      []int // per-sample loads (kernel gather pass)
	sigmaBuf []int
	cands    []int // distinct candidate bins (AdaptiveKD) / dests (StaleBatch)

	// selsc is the process's serial selection lane (select.go): a small
	// epoch-stamped open-addressed hash table groups the d samples by bin
	// in O(d) space — no O(n) scratch, which is what keeps the compact
	// store's bytes/bin budget intact at 10⁸ bins. The sharded superstep
	// engine gives every worker its own selector instead.
	selsc   *selector
	binsBuf []int // receiving-bin scratch for batch placement

	// shard is the sharded superstep engine (shard.go), non-nil when the
	// effective shard count is >= 2: the decision phase of every
	// fixed-prologue round fans out over a persistent worker pool while
	// randomness stays serially pre-drawn and placements apply serially.
	shard *shardEngine

	// StaleBatch sharded rounds: all k·D samples of a round, drawn up
	// front so the decision phase is read-only.
	shardBuf []int

	// SAx0 bookkeeping: loadCount[y] = number of bins with load exactly y.
	loadCount []int

	// Online-serving state (online.go). The ball registry is lazily
	// allocated on the first Insert and recycled through a free list, so a
	// steady-state churn workload allocates nothing per operation. A slot's
	// generation increments on delete, which invalidates every outstanding
	// handle to it.
	ballBin  []int32
	ballWt   []int32
	ballGen  []uint32
	ballVec  []float64 // flat live weight vectors (vector mode), dims per slot
	ballFree []int32
	live     int

	// vec is the multidimensional bin state of vector-load mode (nil in
	// scalar mode); the scalar store stays empty alongside it.
	vec *loadvec.VecStore

	// curOp and curWeight describe the operation behind the most recent
	// observer notification: the public bridge reads them synchronously
	// from inside the callback. One-shot rounds leave curWeight 0, meaning
	// "one unit per placed ball".
	curOp     Op
	curWeight int

	// AlwaysGoLeft group boundaries: group g covers
	// [groupStart[g], groupStart[g+1]).
	groupStart []int

	obsPlaced  []int
	obsHeights []int
	obsPairBuf []int // 1-2 sampled bins of a per-ball online decision

	// flt is the fault injector (faults.go), non-nil only when a
	// non-empty Params.Faults plan is attached. Every fault hook on the
	// hot path is guarded by a flt == nil check, so no-plan processes pay
	// nothing. The flt* slices are the degraded paths' pre-allocated
	// scratch (probe survivors, their sorted copy, the degraded slot
	// list, the two-probe pair).
	flt        *faults.Injector
	fltSamples []int
	fltSort    []int
	fltSlots   []slot
	fltPair    []int
}

// slot is one conceptual ball of a round: the i-th sample of bin b this
// round lands at height load(b)+i. tie implements uniform random
// tie-breaking between equal heights in different bins (equal heights can
// never occur within one bin).
type slot struct {
	bin    int
	height int
	tie    uint64
}

// New validates params and returns a ready process with all-empty bins.
func New(policy Policy, p Params, rng xrand.Source) (*Process, error) {
	if rng == nil {
		return nil, fmt.Errorf("core: nil rng")
	}
	if err := Validate(policy, p); err != nil {
		return nil, err
	}
	var store loadvec.Store
	var err error
	if p.Store == loadvec.StoreSketch {
		// The sketch store is the one kind with geometry parameters.
		store, err = loadvec.NewSketch(p.N, p.SketchWidth, p.SketchDepth)
	} else {
		store, err = loadvec.NewStore(p.Store, p.N)
	}
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	pr := &Process{
		policy: policy,
		p:      p,
		rng:    rng,
		store:  store,
		n:      p.N,
		kern:   newKernel(store),
	}
	if faultsActive(p) {
		// The injector's streams are split off the root stream WITHOUT
		// advancing it, and the split must happen before any engine takes
		// rng ownership (a pipelined producer draws concurrently from
		// here on). Splitting requires the concrete xrand.Rand; every
		// construction path in the repository passes one.
		base, ok := rng.(*xrand.Rand)
		if !ok {
			return nil, fmt.Errorf("core: fault injection requires a splittable *xrand.Rand root stream, got %T", rng)
		}
		pr.flt = faults.NewInjector(*p.Faults, p.N, base)
		if p.Faults.Evict {
			pr.flt.OnFail = pr.evictBin
		}
		width := p.D + p.Faults.Retry
		if width < 2 {
			width = 2
		}
		pr.fltSamples = make([]int, 0, width)
		pr.fltSort = make([]int, 0, width)
		pr.fltSlots = make([]slot, 0, width)
		pr.fltPair = make([]int, 2)
	}
	shards := effectiveShards(policy, p)
	if shards > 1 {
		// Sharded superstep engine: randomness stays serially pre-drawn (a
		// round engine for the fixed-d policies, pr.rng for the rest) and
		// the decision phase fans out over a persistent worker pool. Only
		// an async round engine takes rng ownership away from pr.rng.
		pr.shard = newShardEngine(policy, p, rng, shards)
		if pr.shard.eng != nil && !pr.shard.eng.inline {
			pr.rng = nil
		} else if pr.shard.eng == nil && p.Pipeline {
			// Refills draw through pr.rng: prefetch raw words under it.
			pr.pipe = xrand.NewPipelined(rng, 0, 0)
			pr.rng = pr.pipe
		}
	} else if blockEligible(policy, p) {
		// Fixed round prologue: pre-draw whole supersteps of rounds. In
		// inline mode (the default) the engine shares pr.rng and fills
		// lazily; under Params.Pipeline on a multi-CPU host a producer
		// goroutine owns the rng from here on — then nil out pr.rng so any
		// future code path that tries to draw from it alongside the
		// producer fails fast (nil dereference) instead of racing the
		// producer goroutine.
		pr.eng = newRoundEngine(rng, p.N, p.D, blockRounds(p.D, p.Block), p.Pipeline)
		if !pr.eng.inline {
			pr.rng = nil
		}
	} else if p.Pipeline {
		// Data-dependent draw pattern: prefetch raw words instead.
		pr.pipe = xrand.NewPipelined(rng, 0, 0)
		pr.rng = pr.pipe
	}
	if d := p.D; d > 0 {
		pr.samples = make([]int, d)
		pr.sortBuf = make([]int, d)
		pr.slots = make([]slot, 0, d)
		pr.ldv = make([]int, d)
	}
	if policy == KDChoice || policy == SerializedKD {
		pr.selsc = newSelector(p.D)
		pr.binsBuf = make([]int, 0, p.D)
	}
	if policy == SerializedKD {
		pr.sigmaBuf = make([]int, p.K)
		if p.Sigma != nil {
			copy(pr.sigmaBuf, p.Sigma)
		} else {
			for i := range pr.sigmaBuf {
				pr.sigmaBuf[i] = i
			}
		}
	}
	if policy == AdaptiveKD {
		pr.cands = make([]int, 0, p.D)
	}
	if policy == StaleBatch {
		pr.cands = make([]int, p.K)
		if shards > 1 {
			pr.shardBuf = make([]int, p.K*p.D)
		}
	}
	if policy == SAx0 {
		pr.loadCount = make([]int, 8)
		pr.loadCount[0] = p.N
	}
	if p.VecDims > 0 {
		vs, err := loadvec.NewVecStore(p.N, p.VecDims, p.VecNorm)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		pr.vec = vs
	}
	if policy == AlwaysGoLeft {
		pr.groupStart = make([]int, p.D+1)
		base, rem := p.N/p.D, p.N%p.D
		pos := 0
		for g := 0; g < p.D; g++ {
			pr.groupStart[g] = pos
			pos += base
			if g < rem {
				pos++
			}
		}
		pr.groupStart[p.D] = p.N
	}
	return pr, nil
}

// groupTableSize returns the power-of-two hash-table size for grouping d
// samples: at most quarter full, so linear probing almost never collides
// (the table is a few KB regardless — epoch stamping means it is never
// cleared, so a larger table costs nothing per round).
func groupTableSize(d int) int {
	size := 8
	for size < 4*d {
		size *= 2
	}
	return size
}

// Validate checks policy and params exactly as New does, without allocating
// a process. It lets batch schedulers reject a bad configuration up front —
// even one with a large N — before spinning up workers.
func Validate(policy Policy, p Params) error {
	if p.N < 1 {
		return fmt.Errorf("core: N = %d, need N >= 1", p.N)
	}
	if p.N > math.MaxInt32 {
		return fmt.Errorf("core: N = %d exceeds the supported maximum %d", p.N, math.MaxInt32)
	}
	switch p.Store {
	case loadvec.StoreDense, loadvec.StoreCompact, loadvec.StoreHist, loadvec.StoreNibble, loadvec.StoreSketch:
	default:
		return fmt.Errorf("core: unknown store %d (valid: %s)", int(p.Store), strings.Join(loadvec.StoreNames(), ", "))
	}
	if p.SketchWidth < 0 {
		return fmt.Errorf("core: SketchWidth = %d, must be non-negative", p.SketchWidth)
	}
	if p.SketchDepth < 0 || p.SketchDepth > 8 {
		return fmt.Errorf("core: SketchDepth = %d, must be in [0, 8] (0 = default)", p.SketchDepth)
	}
	if p.Quantum < 0 {
		return fmt.Errorf("core: Quantum = %d, must be non-negative (0 = default %d)", p.Quantum, defaultQuantum)
	}
	if policy == SAx0 && p.Store == loadvec.StoreSketch {
		// SAx0's rank bookkeeping (loadCount) indexes by true loads; sketch
		// estimates would desynchronize (and can exceed) it.
		return fmt.Errorf("core: SAx0 requires an exact store, got %v (its load-rank bookkeeping breaks under approximate loads)", p.Store)
	}
	if p.Shards < 0 {
		return fmt.Errorf("core: Shards = %d, must be non-negative", p.Shards)
	}
	if p.Block < 0 {
		return fmt.Errorf("core: Block = %d, must be >= 1 (or 0 for the auto-sized superstep)", p.Block)
	}
	if p.Block > 0 && blockEligible(policy, p) {
		// A superstep buffers Block*D samples per block (several blocks in
		// flight when pipelined); reject sizes that could only end in an
		// opaque allocation failure. The product is what matters, so the
		// cap scales down with D. Policies without a fixed prologue never
		// allocate a superstep, so Block stays ignored there.
		d := p.D
		if d < 1 {
			d = 1
		}
		if p.Block > maxBlockSamples/d {
			return fmt.Errorf("core: Block = %d with D = %d exceeds the supported superstep size (%d samples)", p.Block, p.D, maxBlockSamples)
		}
	}
	if p.Shards > 1 {
		if !shardEligible(policy, p) {
			return fmt.Errorf("core: Shards > 1 requires a fixed-prologue policy (kd, fixed-σ kd-serialized, dchoice, dchoice-coarse, single, oneplusbeta, stale-batch); %v rounds cannot be pre-drawn", policy)
		}
		if p.VecDims > 0 {
			return fmt.Errorf("core: Shards > 1 is a round-mode knob; vector-load mode places per ball and cannot shard")
		}
		if p.Block > 0 && !blockEligible(policy, p) && policy != StaleBatch {
			// SingleChoice / OnePlusBeta supersteps buffer Block rounds of
			// width 1 / 2; apply the same product cap as the block engine.
			d := shardDrawWidth(policy)
			if p.Block > maxBlockSamples/d {
				return fmt.Errorf("core: Block = %d with sharded %v exceeds the supported superstep size (%d samples)", p.Block, policy, maxBlockSamples)
			}
		}
	}
	if p.VecDims < 0 {
		return fmt.Errorf("core: VecDims = %d, must be non-negative", p.VecDims)
	}
	if faultsActive(p) {
		if err := p.Faults.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		switch policy {
		case KDChoice, SerializedKD, DChoice, SingleChoice, OnePlusBeta, ThresholdChoice, CoarseDChoice:
		default:
			return fmt.Errorf("core: fault injection supports kd, kd-serialized, dchoice, dchoice-coarse, single, oneplusbeta and threshold; %v has no degraded path", policy)
		}
		if p.VecDims > 0 {
			return fmt.Errorf("core: fault injection is scalar-mode only (degraded vector-load decisions are not defined)")
		}
		if policy == SerializedKD && p.RandomSigma {
			return fmt.Errorf("core: fault injection requires a fixed σ for kd-serialized (the degraded round subsumes the placement order)")
		}
		if p.Faults.Evict && !onlineEligible(policy) {
			return fmt.Errorf("core: faults clause \"evict\" requires an online-serving policy (single, dchoice, oneplusbeta, threshold, dchoice-coarse); %v does not register balls", policy)
		}
	}
	if p.VecDims > 0 {
		if !vecEligible(policy) {
			return fmt.Errorf("core: vector-load mode requires a per-ball policy of the (1+β) family (single, dchoice, oneplusbeta), got %v", policy)
		}
		switch p.VecNorm {
		case loadvec.NormLInf, loadvec.NormL1, loadvec.NormL2:
		default:
			return fmt.Errorf("core: unknown norm %d (valid: %s)", int(p.VecNorm), strings.Join(loadvec.NormNames(), ", "))
		}
	}
	switch policy {
	case KDChoice, SerializedKD, AdaptiveKD:
		if p.K < 1 {
			return fmt.Errorf("core: %v requires K >= 1, got %d", policy, p.K)
		}
		if p.D <= p.K {
			return fmt.Errorf("core: %v requires D > K, got K=%d D=%d", policy, p.K, p.D)
		}
		if p.D > p.N {
			return fmt.Errorf("core: %v requires D <= N, got D=%d N=%d", policy, p.D, p.N)
		}
		if policy == SerializedKD && !p.RandomSigma && p.Sigma != nil {
			if err := checkPermutation(p.Sigma, p.K); err != nil {
				return err
			}
		}
	case DynamicKD:
		if p.D < 2 {
			return fmt.Errorf("core: DynamicKD requires D >= 2, got %d", p.D)
		}
		if p.D > p.N {
			return fmt.Errorf("core: DynamicKD requires D <= N, got D=%d N=%d", p.D, p.N)
		}
	case DChoice, AlwaysGoLeft, ThresholdChoice, CoarseDChoice:
		if p.D < 1 {
			return fmt.Errorf("core: %v requires D >= 1, got %d", policy, p.D)
		}
		if p.D > p.N {
			return fmt.Errorf("core: %v requires D <= N, got D=%d N=%d", policy, p.D, p.N)
		}
	case StaleBatch:
		if p.K < 1 {
			return fmt.Errorf("core: StaleBatch requires K >= 1, got %d", p.K)
		}
		if p.D < 1 {
			return fmt.Errorf("core: StaleBatch requires D >= 1 probes per ball, got %d", p.D)
		}
		if p.D > p.N {
			return fmt.Errorf("core: StaleBatch requires D <= N, got D=%d N=%d", p.D, p.N)
		}
	case SingleChoice:
		// No extra parameters.
	case OnePlusBeta:
		if p.Beta < 0 || p.Beta > 1 {
			return fmt.Errorf("core: OnePlusBeta requires Beta in [0,1], got %v", p.Beta)
		}
		if p.D < 0 {
			return fmt.Errorf("core: OnePlusBeta requires D >= 0 probes, got %d", p.D)
		}
	case SAx0:
		if p.X0 < 0 || p.X0 > p.N {
			return fmt.Errorf("core: SAx0 requires X0 in [0,N], got X0=%d N=%d", p.X0, p.N)
		}
	default:
		return fmt.Errorf("core: unknown policy %d", int(policy))
	}

	return nil
}

func checkPermutation(sigma []int, k int) error {
	if len(sigma) != k {
		return fmt.Errorf("core: Sigma has length %d, want K=%d", len(sigma), k)
	}
	seen := make([]bool, k)
	for _, v := range sigma {
		if v < 0 || v >= k || seen[v] {
			return fmt.Errorf("core: Sigma %v is not a permutation of 0..%d", sigma, k-1)
		}
		seen[v] = true
	}
	return nil
}

// MustNew is New but panics on error; intended for tests and examples with
// constant parameters.
func MustNew(policy Policy, p Params, rng xrand.Source) *Process {
	pr, err := New(policy, p, rng)
	if err != nil {
		panic(err)
	}
	return pr
}

// Close releases the pipelined random engine's producer goroutine
// (Params.Pipeline). It is a no-op for serial processes and is idempotent.
// A closed process must not place further balls; its accessors remain
// valid.
func (pr *Process) Close() {
	if pr.pipe != nil {
		pr.pipe.Close()
	}
	if pr.eng != nil {
		pr.eng.Close()
	}
	if pr.shard != nil {
		pr.shard.Close()
	}
}

// SetObserver installs (or removes, with nil) the round observer.
func (pr *Process) SetObserver(o Observer) { pr.obs = o }

// Policy returns the process policy.
func (pr *Process) Policy() Policy { return pr.policy }

// Params returns the process parameters (Sigma is not copied; treat as
// read-only).
func (pr *Process) Params() Params { return pr.p }

// N returns the number of bins.
func (pr *Process) N() int { return pr.n }

// Balls returns the number of balls placed so far (discarded balls in SAx0
// are not counted as placed).
func (pr *Process) Balls() int { return pr.balls }

// Rounds returns the number of completed rounds.
func (pr *Process) Rounds() int { return pr.rounds }

// Messages returns the cumulative message cost: the number of bin probes
// issued, the cost measure of the paper.
func (pr *Process) Messages() int64 { return pr.messages }

// Discarded returns the number of balls discarded by the SAx0 policy (zero
// for all other policies).
func (pr *Process) Discarded() int { return pr.discarded }

// MaxLoad returns the current maximum bin load (O(1) on every store).
func (pr *Process) MaxLoad() int { return pr.store.MaxLoad() }

// Load returns the load of the bin with the given id.
func (pr *Process) Load(bin int) int { return pr.store.Load(bin) }

// Store returns the process's bin-load store (read-only access; mutating
// it directly desynchronizes the process counters).
func (pr *Process) Store() loadvec.Store { return pr.store }

// Loads returns a copy of the load vector indexed by bin id.
func (pr *Process) Loads() loadvec.Vector {
	return pr.store.Vector()
}

// Gap returns max load minus average load. Both terms are measured in load
// units (store totals), so the reading stays correct under weighted balls
// and deletions; for unweighted one-shot runs it coincides with the
// ball-count definition.
func (pr *Process) Gap() float64 {
	return float64(pr.store.MaxLoad()) - float64(pr.store.Balls())/float64(pr.n)
}

// NuY returns ν_y, the number of bins with at least y balls. On the
// histogram store this never scans the bins.
func (pr *Process) NuY(y int) int { return pr.store.NuY(y) }

// setLoads overwrites the per-bin loads, keeping the store's aggregate
// bookkeeping consistent and syncing the ball counter. It is the seam the
// scenario tests use to start a round from a prescribed load vector.
func (pr *Process) setLoads(loads []int) {
	for b, v := range loads {
		pr.store.Set(b, v)
	}
	pr.balls = pr.store.Balls()
}

// Reset restores all bins to empty and zeroes the counters, dropping every
// live ball (outstanding handles stop resolving). The random stream is NOT
// rewound; reuse the process for an independent run.
func (pr *Process) Reset() {
	pr.store.Reset()
	pr.balls = 0
	pr.messages = 0
	pr.discarded = 0
	pr.rounds = 0
	pr.ballBin = pr.ballBin[:0]
	pr.ballWt = pr.ballWt[:0]
	pr.ballGen = pr.ballGen[:0]
	pr.ballVec = pr.ballVec[:0]
	pr.ballFree = pr.ballFree[:0]
	pr.live = 0
	pr.curOp, pr.curWeight = OpInsert, 0
	if pr.vec != nil {
		pr.vec.Reset()
	}
	if pr.policy == SAx0 {
		for i := range pr.loadCount {
			pr.loadCount[i] = 0
		}
		pr.loadCount[0] = pr.n
	}
	if pr.shard != nil {
		// Decisions buffered against the pre-reset loads are stale;
		// re-decide the rest of the window against the fresh bins. The
		// drawn randomness is kept (the stream is not rewound).
		pr.shard.invalidate()
	}
	if pr.flt != nil {
		// All bins come back up and the fault counters zero; like the
		// main stream, the fault streams are not rewound.
		pr.flt.Reset()
	}
}

// RoundSize returns the number of balls a full round places: K for the
// round-based policies and 1 for the per-ball policies.
func (pr *Process) RoundSize() int {
	switch pr.policy {
	case KDChoice, SerializedKD, AdaptiveKD, StaleBatch:
		return pr.p.K
	default:
		return 1
	}
}

// Round executes one full round (RoundSize balls; an SAx0 round may discard
// its ball; a DynamicKD round places a data-dependent number of balls up to
// d).
func (pr *Process) Round() {
	if pr.policy == DynamicKD {
		pr.rounds++
		pr.roundDynamic(pr.p.D)
		return
	}
	pr.step(pr.RoundSize())
}

// Place runs the process until m additional balls have been placed. For the
// round-based policies a final partial round (fewer than K balls, still
// probing D bins) is used when K does not divide m, mirroring the paper's
// convention that k divides n while still supporting arbitrary m for the
// heavily loaded case. For SAx0, m counts attempted balls (discards count
// as attempts).
func (pr *Process) Place(m int) {
	if m < 0 {
		panic("core: Place with negative ball count")
	}
	if pr.policy == DynamicKD {
		// The round size adapts; each round reports how many balls it
		// actually placed (at least one).
		for m > 0 {
			pr.rounds++
			m -= pr.roundDynamic(m)
		}
		return
	}
	size := pr.RoundSize()
	for m > 0 {
		batch := size
		if m < batch {
			batch = m
		}
		pr.step(batch)
		m -= batch
	}
}

// step executes one round placing toPlace balls (1 <= toPlace <= RoundSize).
func (pr *Process) step(toPlace int) {
	if pr.vec != nil {
		panic("core: scalar rounds on a vector-load process; use InsertVec")
	}
	pr.rounds++
	if pr.flt != nil {
		// Degraded rounds are always serial (effectiveShards forces the
		// serial engine whenever a plan is active).
		pr.stepFaulty(toPlace)
		return
	}
	if pr.shard != nil && pr.policy != StaleBatch {
		// Sharded superstep engine: decisions were (or will be) made in
		// parallel for the whole block; apply this round's serially.
		// StaleBatch keeps its own dispatch below — its superstep is one
		// round wide and runs gather + decide phases on the same pool.
		pr.shard.step(pr, toPlace)
		return
	}
	switch pr.policy {
	case KDChoice:
		pr.roundKD(toPlace)
	case SerializedKD:
		pr.roundSerialized(toPlace)
	case AdaptiveKD:
		pr.roundAdaptive(toPlace)
	case StaleBatch:
		pr.roundStaleBatch(toPlace)
	case DChoice:
		pr.ballDChoice()
	case SingleChoice:
		pr.ballSingle()
	case OnePlusBeta:
		pr.ballOnePlusBeta()
	case AlwaysGoLeft:
		pr.ballAlwaysGoLeft()
	case SAx0:
		pr.ballSAx0()
	case ThresholdChoice:
		pr.ballThreshold()
	case CoarseDChoice:
		pr.ballCoarse()
	}
}

// place adds one ball to bin b and returns its height (the bin's load after
// placement).
func (pr *Process) place(b int) int {
	h := pr.store.Add(b)
	pr.balls++
	return h
}

// notify reports a finished round to the observer, if any.
func (pr *Process) notify(samples, placed, heights []int) {
	if pr.obs == nil {
		return
	}
	pr.obs.RoundPlaced(pr.rounds, samples, placed, heights)
}
