package core

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// roundLog records the multiset of receiving bins of every round.
type roundLog struct {
	rounds [][]int
}

func (rl *roundLog) RoundPlaced(round int, samples, placed, heights []int) {
	r := append([]int(nil), placed...)
	sort.Ints(r)
	rl.rounds = append(rl.rounds, r)
}

// TestFastSelectMatchesReference is the kernel equivalence property: for
// random (n, k, d, seed) the counting kernel and the reference sort kernel
// — run under the same random stream — must select the identical
// receiving-bin multiset in EVERY round, and therefore identical final
// load vectors. This is exact coupling, not a distributional comparison:
// both kernels consume the stream identically and share the keyed-hash tie
// order.
func TestFastSelectMatchesReference(t *testing.T) {
	for _, policy := range []Policy{KDChoice, SerializedKD} {
		t.Run(policy.String(), func(t *testing.T) {
			if err := quick.Check(func(seed uint64, nRaw, kRaw, dRaw, multRaw uint8) bool {
				n := int(nRaw%120) + 8
				k := int(kRaw%8) + 1
				d := k + 1 + int(dRaw%12)
				if d > n {
					d = n
					if k >= d {
						k = d - 1
					}
				}
				m := (int(multRaw%4) + 1) * n / 2
				fast := MustNew(policy, Params{N: n, K: k, D: d}, xrand.New(seed))
				ref := MustNew(policy, Params{N: n, K: k, D: d, ReferenceSelect: true}, xrand.New(seed))
				fastLog, refLog := &roundLog{}, &roundLog{}
				fast.SetObserver(fastLog)
				ref.SetObserver(refLog)
				fast.Place(m)
				ref.Place(m)
				if !reflect.DeepEqual(fastLog.rounds, refLog.rounds) {
					return false
				}
				return reflect.DeepEqual(fast.Loads(), ref.Loads())
			}, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFastSelectMatchesReferenceHeavy extends the coupling to the heavily
// loaded case (m = 8n + partial final round).
func TestFastSelectMatchesReferenceHeavy(t *testing.T) {
	const n, k, d, seed = 96, 3, 9, 1234
	m := 8*n + 5
	fast := MustNew(KDChoice, Params{N: n, K: k, D: d}, xrand.New(seed))
	ref := MustNew(KDChoice, Params{N: n, K: k, D: d, ReferenceSelect: true}, xrand.New(seed))
	fast.Place(m)
	ref.Place(m)
	if !reflect.DeepEqual(fast.Loads(), ref.Loads()) {
		t.Fatal("fast and reference kernels diverged under heavy load")
	}
}

// TestFastSelectSparseFallback forces the counting window to overflow
// (sampled loads spread far wider than 2d) so the fast kernel must take its
// internal full-sort fallback — and still match the reference kernel
// exactly.
func TestFastSelectSparseFallback(t *testing.T) {
	const n, k, d, seed = 32, 2, 6, 7
	mk := func(reference bool) *Process {
		pr := MustNew(KDChoice, Params{N: n, K: k, D: d, ReferenceSelect: reference}, xrand.New(seed))
		// Extreme imbalance: loads 0, 1000, 2000, ... — any round sampling
		// two different bins spans far more than the counting window.
		loads := make([]int, n)
		for b := range loads {
			loads[b] = b * 1000
		}
		pr.setLoads(loads)
		return pr
	}
	fast, ref := mk(false), mk(true)
	fast.Place(20 * k)
	ref.Place(20 * k)
	if !reflect.DeepEqual(fast.Loads(), ref.Loads()) {
		t.Fatal("fallback path diverged from reference kernel")
	}
	if fast.MaxLoad() != ref.MaxLoad() {
		t.Fatal("fallback max loads differ")
	}
}

// TestSelectSmallestSlots: quickselect must put exactly the k smallest
// slots (under the slot total order) into the prefix, for arbitrary inputs.
func TestSelectSmallestSlots(t *testing.T) {
	if err := quick.Check(func(seed uint64, sizeRaw, kRaw uint8) bool {
		size := int(sizeRaw%100) + 1
		k := int(kRaw) % (size + 1)
		rng := xrand.New(seed)
		s := make([]slot, size)
		for i := range s {
			s[i] = slot{bin: i, height: rng.Intn(6), tie: rng.Uint64() % 8}
		}
		want := make([]slot, size)
		copy(want, s)
		sort.Slice(want, func(i, j int) bool { return slotLess(want[i], want[j]) })
		selectSmallestSlots(s, k)
		got := append([]slot{}, s[:k]...)
		sort.Slice(got, func(i, j int) bool { return slotLess(got[i], got[j]) })
		return reflect.DeepEqual(got, append([]slot{}, want[:k]...))
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBoundaryTieUniform checks the lazily derived tie keys statistically:
// with all bins empty and fixed samples {0,1,2,3}, a (1,4) round has a
// four-way tie at height 1 and each bin must win with probability 1/4.
func TestBoundaryTieUniform(t *testing.T) {
	const trials = 20000
	pr := MustNew(KDChoice, Params{N: 4, K: 1, D: 4}, xrand.New(5))
	counts := make([]int, 4)
	for i := 0; i < trials; i++ {
		copy(pr.samples, []int{0, 1, 2, 3})
		pr.roundKDFromSamples(1)
		for b := 0; b < 4; b++ {
			counts[b] += pr.Load(b)
		}
		pr.Reset()
	}
	for b, c := range counts {
		p := float64(c) / trials
		if p < 0.23 || p > 0.27 {
			t.Fatalf("bin %d won %0.4f of four-way ties, want ~0.25 (counts %v)", b, p, counts)
		}
	}
}

// TestRoundAllocationFree pins the acceptance criterion that the steady-
// state round hot path performs zero heap allocations, on both kernels.
func TestRoundAllocationFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		ref  bool
	}{{"fast", false}, {"sort", true}} {
		pr := MustNew(KDChoice, Params{N: 4096, K: 2, D: 64, ReferenceSelect: tc.ref}, xrand.New(9))
		pr.Place(4096) // warm the scratch buffers
		if avg := testing.AllocsPerRun(200, pr.Round); avg != 0 {
			t.Fatalf("%s kernel: %v allocs per round, want 0", tc.name, avg)
		}
	}
}

// TestMultiplicityRuleFastKernel re-runs the paper's disambiguation-rule
// observer over the fast kernel at adversarial (k, d) shapes, including the
// acceptance-cell shape k=2, d=64.
func TestMultiplicityRuleFastKernel(t *testing.T) {
	for _, tc := range []struct{ k, d int }{{1, 2}, {2, 64}, {7, 8}, {16, 33}} {
		pr := MustNew(KDChoice, Params{N: 256, K: tc.k, D: tc.d}, xrand.New(17))
		rc := &ruleChecker{t: t}
		pr.SetObserver(rc)
		pr.Place(1024)
		if rc.maxSeen != pr.MaxLoad() {
			t.Fatalf("k=%d d=%d: max height seen %d != max load %d", tc.k, tc.d, rc.maxSeen, pr.MaxLoad())
		}
	}
}
