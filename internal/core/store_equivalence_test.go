package core

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/loadvec"
	"repro/internal/xrand"
)

// allPolicyCases is the directed policy matrix: every supported policy with
// representative parameters, including the dynamic and stale paths whose
// max-load/occupancy bookkeeping the new stores must keep consistent.
func allPolicyCases() []struct {
	policy Policy
	p      Params
} {
	return []struct {
		policy Policy
		p      Params
	}{
		{KDChoice, Params{N: 64, K: 2, D: 7}},
		{KDChoice, Params{N: 64, K: 8, D: 17}},
		{SerializedKD, Params{N: 64, K: 3, D: 5, Sigma: []int{2, 0, 1}}},
		{SerializedKD, Params{N: 64, K: 3, D: 5, RandomSigma: true}},
		{AdaptiveKD, Params{N: 64, K: 2, D: 5}},
		{DChoice, Params{N: 64, D: 3}},
		{SingleChoice, Params{N: 64}},
		{OnePlusBeta, Params{N: 64, Beta: 0.4}},
		{AlwaysGoLeft, Params{N: 64, D: 4}},
		{SAx0, Params{N: 64, X0: 9}},
		{StaleBatch, Params{N: 64, K: 6, D: 3}},
		{DynamicKD, Params{N: 64, D: 6}},
		{ThresholdChoice, Params{N: 64, D: 4}},
		{CoarseDChoice, Params{N: 64, D: 3, Quantum: 2}},
		{CoarseDChoice, Params{N: 64, D: 5}}, // default quantum
	}
}

// stateEqual compares every observable of two processes.
func stateEqual(t *testing.T, stage string, ref, got *Process) {
	t.Helper()
	if !reflect.DeepEqual(ref.Loads(), got.Loads()) {
		t.Fatalf("%s: load vectors differ:\nref %v\ngot %v", stage, ref.Loads(), got.Loads())
	}
	if ref.MaxLoad() != got.MaxLoad() {
		t.Fatalf("%s: MaxLoad %d != %d", stage, ref.MaxLoad(), got.MaxLoad())
	}
	if ref.Balls() != got.Balls() {
		t.Fatalf("%s: Balls %d != %d", stage, ref.Balls(), got.Balls())
	}
	if ref.Messages() != got.Messages() {
		t.Fatalf("%s: Messages %d != %d", stage, ref.Messages(), got.Messages())
	}
	if ref.Rounds() != got.Rounds() {
		t.Fatalf("%s: Rounds %d != %d", stage, ref.Rounds(), got.Rounds())
	}
	if ref.Discarded() != got.Discarded() {
		t.Fatalf("%s: Discarded %d != %d", stage, ref.Discarded(), got.Discarded())
	}
	if ref.Gap() != got.Gap() {
		t.Fatalf("%s: Gap %v != %v", stage, ref.Gap(), got.Gap())
	}
	// The store's own bookkeeping must agree with a fresh scan. On the
	// sketch store the running max tracks post-Add estimates, and later
	// colliding keys can raise a bin's estimate without touching it again —
	// so the running max may lag the scanned estimate max (never exceed it
	// in insert-only runs); it still dominates the TRUE max, which
	// TestSketchProcessOneSided pins separately.
	if _, sketch := got.store.(*loadvec.SketchStore); sketch {
		if got.MaxLoad() > got.Loads().Max() {
			t.Fatalf("%s: sketch MaxLoad %d above scanned estimate max %d", stage, got.MaxLoad(), got.Loads().Max())
		}
	} else if got.MaxLoad() != got.Loads().Max() {
		t.Fatalf("%s: store MaxLoad %d != scanned max %d", stage, got.MaxLoad(), got.Loads().Max())
	}
	for _, y := range []int{0, 1, ref.MaxLoad(), ref.MaxLoad() + 1} {
		if ref.NuY(y) != got.NuY(y) {
			t.Fatalf("%s: NuY(%d) %d != %d", stage, y, ref.NuY(y), got.NuY(y))
		}
	}
}

// TestStorePolicyBitIdentity is the cross-store acceptance property: every
// policy produces bit-identical loads, max load and message counters on the
// compact and histogram stores — and on the pipelined engine — for equal
// seeds, including across a mid-run Reset (which must rebuild the stores'
// max-load/histogram bookkeeping from scratch).
func TestStorePolicyBitIdentity(t *testing.T) {
	variants := []struct {
		name     string
		store    loadvec.StoreKind
		pipeline bool
	}{
		{"compact", loadvec.StoreCompact, false},
		{"hist", loadvec.StoreHist, false},
		{"nibble", loadvec.StoreNibble, false},
		{"dense+pipeline", loadvec.StoreDense, true},
		{"compact+pipeline", loadvec.StoreCompact, true},
		{"nibble+pipeline", loadvec.StoreNibble, true},
	}
	for _, tc := range allPolicyCases() {
		t.Run(tc.policy.String(), func(t *testing.T) {
			const seed, m = 12345, 333 // m deliberately not a multiple of any k above
			ref := MustNew(tc.policy, tc.p, xrand.New(seed))
			ref.Place(m)
			for _, v := range variants {
				p := tc.p
				p.Store = v.store
				p.Pipeline = v.pipeline
				got := MustNew(tc.policy, p, xrand.New(seed))
				got.Place(m)
				stateEqual(t, v.name, ref, got)

				// Reset and re-place: the second run continues the random
				// stream, so it must stay coupled to the reference too.
				got.Reset()
				refReset := MustNew(tc.policy, tc.p, xrand.New(seed))
				refReset.Place(m)
				refReset.Reset()
				refReset.Place(m / 2)
				got.Place(m / 2)
				stateEqual(t, v.name+"/post-reset", refReset, got)
				got.Close()
				refReset.Close()
			}
		})
	}
}

// TestStorePolicyBitIdentityProperty fuzzes (policy, k, d, seed, m) over
// the compact, histogram and nibble stores.
func TestStorePolicyBitIdentityProperty(t *testing.T) {
	policies := []Policy{KDChoice, SerializedKD, AdaptiveKD, StaleBatch, DChoice, DynamicKD}
	exactStores := []loadvec.StoreKind{loadvec.StoreCompact, loadvec.StoreHist, loadvec.StoreNibble}
	if err := quick.Check(func(seed uint64, pRaw, kRaw, dRaw, mRaw, storeRaw uint8) bool {
		policy := policies[int(pRaw)%len(policies)]
		k := int(kRaw%6) + 1
		d := k + 1 + int(dRaw%7)
		if policy == StaleBatch || policy == DChoice {
			d = 1 + int(dRaw%5)
		}
		m := int(mRaw) * 3
		p := Params{N: 48, K: k, D: d}
		ref := MustNew(policy, p, xrand.New(seed))
		ref.Place(m)
		p.Store = exactStores[int(storeRaw)%len(exactStores)]
		got := MustNew(policy, p, xrand.New(seed))
		got.Place(m)
		return reflect.DeepEqual(ref.Loads(), got.Loads()) &&
			ref.MaxLoad() == got.MaxLoad() &&
			ref.Messages() == got.Messages() &&
			got.MaxLoad() == got.Loads().Max()
	}, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestStaleBatchShardedMatchesSerial pins the sharded round engine: for
// every store and several shard counts, the sharded StaleBatch process is
// bit-identical to the serial one (all randomness is drawn serially up
// front; only the read-only decision phase fans out). Run under -race in CI
// to prove the decision phase never races the store.
func TestStaleBatchShardedMatchesSerial(t *testing.T) {
	for _, store := range []loadvec.StoreKind{loadvec.StoreDense, loadvec.StoreCompact, loadvec.StoreHist, loadvec.StoreNibble, loadvec.StoreSketch} {
		for _, shards := range []int{2, 3, 8} {
			const seed = 777
			p := Params{N: 96, K: 32, D: 3, Store: store}
			ref := MustNew(StaleBatch, p, xrand.New(seed))
			p.Shards = shards
			got := MustNew(StaleBatch, p, xrand.New(seed))
			// 10 full rounds plus a partial one (m not divisible by k).
			const m = 32*10 + 7
			ref.Place(m)
			got.Place(m)
			stateEqual(t, store.String(), ref, got)
		}
	}
}

// TestStaleBatchShardedPipelined combines both parallel engines: sharded
// decisions fed by the pipelined random stream stay bit-identical to the
// fully serial path.
func TestStaleBatchShardedPipelined(t *testing.T) {
	const seed, m = 4242, 515
	ref := MustNew(StaleBatch, Params{N: 128, K: 50, D: 4}, xrand.New(seed))
	got := MustNew(StaleBatch, Params{N: 128, K: 50, D: 4, Shards: 4, Pipeline: true, Store: loadvec.StoreCompact}, xrand.New(seed))
	defer got.Close()
	ref.Place(m)
	got.Place(m)
	stateEqual(t, "sharded+pipelined", ref, got)
}

// TestPipelinedAsyncMatchesSerial forces the record pipeline's ASYNC mode
// (producer goroutine + block handoff) by raising GOMAXPROCS, so the
// concurrent path is exercised — and bit-identical — even when the test
// host has a single CPU (where newKDPipe would otherwise pick inline
// mode). Runs under -race in CI.
func TestPipelinedAsyncMatchesSerial(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for _, tc := range []struct {
		policy Policy
		p      Params
	}{
		{KDChoice, Params{N: 200, K: 2, D: 64}},
		{SerializedKD, Params{N: 200, K: 3, D: 8, Sigma: []int{1, 2, 0}}},
		{DChoice, Params{N: 200, D: 3}},
		{DynamicKD, Params{N: 200, D: 5}},
	} {
		const seed, m = 90125, 1111
		ref := MustNew(tc.policy, tc.p, xrand.New(seed))
		p := tc.p
		p.Pipeline = true
		p.Store = loadvec.StoreCompact
		got := MustNew(tc.policy, p, xrand.New(seed))
		if got.eng == nil || got.eng.inline {
			t.Fatalf("%v: expected async record pipeline (GOMAXPROCS=%d)", tc.policy, runtime.GOMAXPROCS(0))
		}
		ref.Place(m)
		got.Place(m)
		stateEqual(t, tc.policy.String()+"/async", ref, got)
		got.Close()
		got.Close() // idempotent
	}
}

// TestPipelinedObserverSeesSamples: the pipelined rounds must hand the
// observer the round's true raw samples (copied into the consumer-local
// block), under both pipe modes.
func TestPipelinedObserverSeesSamples(t *testing.T) {
	run := func(name string) {
		t.Helper()
		pr := MustNew(KDChoice, Params{N: 128, K: 2, D: 9, Pipeline: true}, xrand.New(44))
		defer pr.Close()
		rc := &ruleChecker{t: t}
		pr.SetObserver(rc)
		pr.Place(512)
		if rc.rounds != pr.Rounds() {
			t.Fatalf("%s: observer saw %d rounds, process ran %d", name, rc.rounds, pr.Rounds())
		}
		if rc.maxSeen != pr.MaxLoad() {
			t.Fatalf("%s: max height seen %d != max load %d", name, rc.maxSeen, pr.MaxLoad())
		}
	}
	run("default-mode")
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	run("async-mode")
}

// TestShardsValidation: the fixed-prologue policies may shard; the
// data-dependent ones must reject Shards > 1.
func TestShardsValidation(t *testing.T) {
	for _, tc := range []struct {
		policy Policy
		p      Params
	}{
		{KDChoice, Params{N: 8, K: 1, D: 2, Shards: 2}},
		{SerializedKD, Params{N: 8, K: 1, D: 2, Shards: 2}},
		{DChoice, Params{N: 8, D: 2, Shards: 3}},
		{CoarseDChoice, Params{N: 8, D: 2, Shards: 3}},
		{SingleChoice, Params{N: 8, Shards: 8}},
		{OnePlusBeta, Params{N: 8, Beta: 0.5, Shards: 2}},
		{StaleBatch, Params{N: 8, K: 2, D: 2, Shards: 4}},
	} {
		if err := Validate(tc.policy, tc.p); err != nil {
			t.Fatalf("%v rejected Shards = %d: %v", tc.policy, tc.p.Shards, err)
		}
	}
	for _, tc := range []struct {
		policy Policy
		p      Params
	}{
		{SerializedKD, Params{N: 8, K: 1, D: 2, RandomSigma: true, Shards: 2}},
		{AdaptiveKD, Params{N: 8, K: 1, D: 2, Shards: 2}},
		{DynamicKD, Params{N: 8, D: 2, Shards: 2}},
		{AlwaysGoLeft, Params{N: 8, D: 2, Shards: 2}},
		{ThresholdChoice, Params{N: 8, D: 2, Shards: 2}},
		{SAx0, Params{N: 8, X0: 1, Shards: 2}},
		{SingleChoice, Params{N: 8, Shards: 2, VecDims: 2}},
	} {
		if err := Validate(tc.policy, tc.p); err == nil {
			t.Fatalf("%v accepted Shards = %d", tc.policy, tc.p.Shards)
		}
	}
	if err := Validate(StaleBatch, Params{N: 8, K: 2, D: 2, Shards: -1}); err == nil {
		t.Fatal("negative Shards accepted")
	}
	if err := Validate(KDChoice, Params{N: 8, K: 1, D: 2, Store: loadvec.StoreKind(9)}); err == nil {
		t.Fatal("unknown store accepted")
	}
}

// TestSAx0LoadCountConsistentAcrossStores: the SAx0 rank histogram (process
// bookkeeping) must stay consistent with the store's occupancy counts on
// every store.
func TestSAx0LoadCountConsistentAcrossStores(t *testing.T) {
	for _, store := range []loadvec.StoreKind{loadvec.StoreDense, loadvec.StoreCompact, loadvec.StoreHist, loadvec.StoreNibble} {
		pr := MustNew(SAx0, Params{N: 64, X0: 8, Store: store}, xrand.New(3))
		pr.Place(500)
		for y := 0; y <= pr.MaxLoad(); y++ {
			want := pr.NuY(y) - pr.NuY(y+1) // bins with load exactly y
			if pr.loadCount[y] != want {
				t.Fatalf("%s: loadCount[%d] = %d, want %d", store, y, pr.loadCount[y], want)
			}
		}
	}
}

// TestRoundAllocationFreeEngines extends the zero-allocs-per-round pin to
// the new engines: compact and histogram stores, the pipelined sampler, and
// sharded StaleBatch rounds (goroutine launches recycle g's, so the steady
// state stays allocation-free).
func TestRoundAllocationFreeEngines(t *testing.T) {
	cases := []struct {
		name   string
		policy Policy
		p      Params
	}{
		{"kd/compact", KDChoice, Params{N: 4096, K: 2, D: 64, Store: loadvec.StoreCompact}},
		{"kd/hist", KDChoice, Params{N: 4096, K: 2, D: 64, Store: loadvec.StoreHist}},
		{"kd/pipeline", KDChoice, Params{N: 4096, K: 2, D: 64, Pipeline: true}},
		{"kd/compact+pipeline", KDChoice, Params{N: 4096, K: 2, D: 64, Store: loadvec.StoreCompact, Pipeline: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pr := MustNew(tc.policy, tc.p, xrand.New(9))
			defer pr.Close()
			pr.Place(4096) // warm the scratch buffers and pipeline blocks
			if avg := testing.AllocsPerRun(200, pr.Round); avg != 0 {
				t.Fatalf("%v allocs per round, want 0", avg)
			}
		})
	}
}

// TestCompactStoreEscapeUnderProcess drives a tiny-bin single-choice
// process far past the uint16 range so the escape path runs inside a real
// process, coupled against the dense reference.
func TestCompactStoreEscapeUnderProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("long escape run")
	}
	const seed = 11
	const m = 3 * 70000 // ~70k balls per bin across 3 bins
	ref := MustNew(SingleChoice, Params{N: 3}, xrand.New(seed))
	got := MustNew(SingleChoice, Params{N: 3, Store: loadvec.StoreCompact}, xrand.New(seed))
	ref.Place(m)
	got.Place(m)
	stateEqual(t, "escape", ref, got)
	if got.MaxLoad() <= 65535 {
		t.Fatalf("test did not cross the escape threshold (max %d)", got.MaxLoad())
	}
}

// TestSpecializedKernelMatchesInterface is the devirtualization acceptance
// property: for every policy, every concrete store, every superstep size
// (auto, B=1, and a non-divisor B), and both engine modes, the
// store-specialized kernels produce results bit-identical to the
// interface-dispatch reference kernel (the path custom stores take). The
// reference runs serially with the default superstep; the variants cover
// the full (policy × store × block × pipeline) matrix, so this pins kernel
// specialization, superstep batching, and the pipelined engine against one
// oracle at once. Run under -race in CI.
func TestSpecializedKernelMatchesInterface(t *testing.T) {
	stores := []loadvec.StoreKind{loadvec.StoreDense, loadvec.StoreCompact, loadvec.StoreHist, loadvec.StoreNibble, loadvec.StoreSketch}
	blocks := []int{0, 1, 3} // auto, single-round, non-divisor of the round count
	const seed, m = 90210, 331
	for _, tc := range allPolicyCases() {
		t.Run(tc.policy.String(), func(t *testing.T) {
			for _, store := range stores {
				// Reference: interface kernel, serial, default superstep.
				rp := tc.p
				rp.Store = store
				if Validate(tc.policy, rp) != nil {
					continue // e.g. SAx0 requires an exact store
				}
				ref := MustNew(tc.policy, rp, xrand.New(seed))
				ref.forceInterfaceKernel()
				ref.Place(m)
				for _, block := range blocks {
					for _, pipeline := range []bool{false, true} {
						p := tc.p
						p.Store = store
						p.Block = block
						p.Pipeline = pipeline
						got := MustNew(tc.policy, p, xrand.New(seed))
						got.Place(m)
						stage := fmt.Sprintf("%v/block=%d/pipeline=%v", store, block, pipeline)
						stateEqual(t, stage, ref, got)
						got.Close()
					}
				}
			}
		})
	}
}

// TestInterfaceKernelBlockMatrix closes the loop the other way: the
// interface kernel itself run at every block size matches the specialized
// default — superstep batching and kernel dispatch are independent axes.
func TestInterfaceKernelBlockMatrix(t *testing.T) {
	const seed, m = 777, 257
	p := Params{N: 96, K: 3, D: 11}
	ref := MustNew(KDChoice, p, xrand.New(seed))
	ref.Place(m)
	for _, block := range []int{1, 2, 5, 64} {
		pb := p
		pb.Block = block
		got := MustNew(KDChoice, pb, xrand.New(seed))
		got.forceInterfaceKernel()
		got.Place(m)
		stateEqual(t, fmt.Sprintf("iface/block=%d", block), ref, got)
	}
}

// TestBlockValidation: negative supersteps are rejected with a clear
// error; zero (auto) and explicit sizes are accepted, and non-prologue
// policies ignore the knob.
func TestBlockValidation(t *testing.T) {
	if err := Validate(KDChoice, Params{N: 8, K: 1, D: 2, Block: -1}); err == nil {
		t.Fatal("negative Block accepted")
	} else if !strings.Contains(err.Error(), "Block") {
		t.Fatalf("negative Block error does not name the field: %v", err)
	}
	for _, block := range []int{0, 1, 7, 4096, maxBlockSamples / 2} {
		if err := Validate(KDChoice, Params{N: 8, K: 1, D: 2, Block: block}); err != nil {
			t.Fatalf("Block=%d rejected: %v", block, err)
		}
	}
	// The cap bounds the Block*D product, so it scales down with D.
	if err := Validate(KDChoice, Params{N: 8, K: 1, D: 2, Block: maxBlockSamples/2 + 1}); err == nil {
		t.Fatal("absurd Block accepted (would allocate Block*D samples)")
	}
	if err := Validate(KDChoice, Params{N: 4096, K: 1, D: 4096, Block: maxBlockSamples / 8}); err == nil {
		t.Fatal("absurd Block*D accepted at large D")
	}
	if err := Validate(SingleChoice, Params{N: 8, Block: 3}); err != nil {
		t.Fatalf("non-prologue policy rejected Block: %v", err)
	}
	// Non-prologue policies never allocate a superstep, so the size cap
	// does not apply to them either.
	if err := Validate(SingleChoice, Params{N: 8, Block: maxBlockSamples + 1}); err != nil {
		t.Fatalf("non-prologue policy hit the superstep cap: %v", err)
	}
}

// TestRoundAllocationFreeKernels extends the zero-allocs-per-round pin to
// the specialized kernels across stores and superstep sizes, including
// B=1 (a refill every round) and a non-divisor B.
func TestRoundAllocationFreeKernels(t *testing.T) {
	cases := []struct {
		name string
		p    Params
	}{
		{"dense/auto", Params{N: 4096, K: 2, D: 64}},
		{"dense/block=1", Params{N: 4096, K: 2, D: 64, Block: 1}},
		{"dense/block=5", Params{N: 4096, K: 2, D: 64, Block: 5}},
		{"compact/block=3", Params{N: 4096, K: 2, D: 64, Store: loadvec.StoreCompact, Block: 3}},
		{"hist/block=1", Params{N: 4096, K: 2, D: 64, Store: loadvec.StoreHist, Block: 1}},
		{"nibble/auto", Params{N: 4096, K: 2, D: 64, Store: loadvec.StoreNibble}},
		{"nibble/block=3", Params{N: 4096, K: 2, D: 64, Store: loadvec.StoreNibble, Block: 3}},
		{"sketch/auto", Params{N: 4096, K: 2, D: 64, Store: loadvec.StoreSketch}},
		{"large-k/auto", Params{N: 4096, K: 16, D: 48}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pr := MustNew(KDChoice, tc.p, xrand.New(9))
			defer pr.Close()
			pr.Place(4096) // warm the scratch buffers and superstep blocks
			if avg := testing.AllocsPerRun(200, pr.Round); avg != 0 {
				t.Fatalf("%v allocs per round, want 0", avg)
			}
		})
	}
}
