package core

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestStaleBatchValidation(t *testing.T) {
	rng := xrand.New(1)
	cases := []Params{
		{N: 8, K: 0, D: 2},
		{N: 8, K: 2, D: 0},
		{N: 8, K: 2, D: 9},
	}
	for i, p := range cases {
		if _, err := New(StaleBatch, p, rng); err == nil {
			t.Fatalf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	// K >= D and even K > N are fine: balls probe independently.
	if _, err := New(StaleBatch, Params{N: 8, K: 16, D: 2}, rng); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestStaleBatchConservationAndMessages(t *testing.T) {
	pr := MustNew(StaleBatch, Params{N: 64, K: 4, D: 2}, xrand.New(3))
	pr.Place(640)
	if pr.Balls() != 640 || pr.Loads().Total() != 640 {
		t.Fatalf("conservation broken: balls=%d total=%d", pr.Balls(), pr.Loads().Total())
	}
	// 160 rounds x 4 balls x 2 probes.
	if got, want := pr.Messages(), int64(640*2); got != want {
		t.Fatalf("messages = %d, want %d", got, want)
	}
	if pr.RoundSize() != 4 {
		t.Fatalf("RoundSize = %d", pr.RoundSize())
	}
}

func TestStaleBatchK1MatchesDChoice(t *testing.T) {
	// With k = 1 there is nothing stale: StaleBatch(1, d) is exactly
	// d-choice, distributionally.
	const n, d, runs = 256, 2, 400
	var stale, dch stats.Online
	for i := 0; i < runs; i++ {
		a := MustNew(StaleBatch, Params{N: n, K: 1, D: d}, xrand.NewStream(71, uint64(i)))
		a.Place(n)
		stale.Add(float64(a.MaxLoad()))
		b := MustNew(DChoice, Params{N: n, D: d}, xrand.NewStream(72, uint64(i)))
		b.Place(n)
		dch.Add(float64(b.MaxLoad()))
	}
	if diff := stale.Mean() - dch.Mean(); diff < -0.15 || diff > 0.15 {
		t.Fatalf("StaleBatch(1,%d) mean %.3f vs DChoice %.3f", d, stale.Mean(), dch.Mean())
	}
}

// TestSharingBeatsStale is the information-sharing ablation: at equal probe
// budget, (k,d)-choice (shared batch, sequential within round) must not be
// worse than the stale parallel baseline; both beat single choice.
func TestSharingBeatsStale(t *testing.T) {
	const n, runs = 1024, 300
	const k = 8
	// Equal budgets: KD uses d = 16 probes per round; stale gives each of
	// the 8 balls 2 probes (16 total).
	var kd, stale, single stats.Online
	for i := 0; i < runs; i++ {
		a := MustNew(KDChoice, Params{N: n, K: k, D: 2 * k}, xrand.NewStream(81, uint64(i)))
		a.Place(n)
		kd.Add(float64(a.MaxLoad()))
		b := MustNew(StaleBatch, Params{N: n, K: k, D: 2}, xrand.NewStream(82, uint64(i)))
		b.Place(n)
		stale.Add(float64(b.MaxLoad()))
		c := MustNew(SingleChoice, Params{N: n}, xrand.NewStream(83, uint64(i)))
		c.Place(n)
		single.Add(float64(c.MaxLoad()))
	}
	if kd.Mean() > stale.Mean()+0.1 {
		t.Fatalf("shared batch mean %.3f worse than stale parallel %.3f", kd.Mean(), stale.Mean())
	}
	if stale.Mean() >= single.Mean() {
		t.Fatalf("stale parallel %.3f not better than single choice %.3f", stale.Mean(), single.Mean())
	}
}

func TestStaleBatchObserver(t *testing.T) {
	pr := MustNew(StaleBatch, Params{N: 32, K: 3, D: 2}, xrand.New(5))
	obs := &countObserver{}
	pr.SetObserver(obs)
	pr.Place(30)
	if obs.ballsSeen != 30 {
		t.Fatalf("observer saw %d balls", obs.ballsSeen)
	}
	if obs.roundsSeen != pr.Rounds() {
		t.Fatalf("observer rounds %d != %d", obs.roundsSeen, pr.Rounds())
	}
}

func TestStaleBatchCollisionsHappen(t *testing.T) {
	// With few bins and many balls per round, two balls must eventually
	// pick the same destination in one round (the defining weakness of the
	// stale model). Detect via an observer.
	pr := MustNew(StaleBatch, Params{N: 4, K: 4, D: 2}, xrand.New(9))
	collision := false
	pr.SetObserver(observerFunc(func(round int, samples, placed, heights []int) {
		seen := map[int]bool{}
		for _, b := range placed {
			if seen[b] {
				collision = true
			}
			seen[b] = true
		}
	}))
	pr.Place(400)
	if !collision {
		t.Fatal("no intra-round collision in 100 rounds on 4 bins; stale semantics broken")
	}
}

// observerFunc adapts a function to the Observer interface.
type observerFunc func(round int, samples, placed, heights []int)

func (f observerFunc) RoundPlaced(round int, samples, placed, heights []int) {
	f(round, samples, placed, heights)
}

func TestStaleBatchPolicyName(t *testing.T) {
	if StaleBatch.String() != "stale-batch" {
		t.Fatalf("name = %q", StaleBatch.String())
	}
	p, err := ParsePolicy("stale-batch")
	if err != nil || p != StaleBatch {
		t.Fatalf("round trip failed: %v %v", p, err)
	}
}
