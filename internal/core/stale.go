package core

import "sync"

// StaleBatch is the parallel-allocation counterpoint to (k,d)-choice: the
// k balls of a round probe INDEPENDENTLY (PerBallD probes each) and every
// ball commits to the least loaded of its own probes as of the START of
// the round — no information is shared between the balls, and loads update
// only after all k have decided. This is the round-synchronous model of
// the parallel balanced-allocation literature the paper contrasts with
// (Adler et al., Stemann; the paper's references [1, 16]): collisions are
// possible, and the paper's point is precisely that sharing one probe
// batch across the k balls avoids them.
//
// Message cost is k·PerBallD per round; to compare against A(k,d) at equal
// budget choose PerBallD = d/k.
//
// Because every ball decides against the frozen round-start loads with no
// shared state, the decision phase is embarrassingly parallel: with
// Params.Shards > 1 the per-ball argmin computations are split over
// goroutines while all randomness is drawn serially up front, so the
// sharded round is bit-identical to the serial one (pinned by
// TestStaleBatchShardedMatchesSerial, including under -race). Placements
// are applied serially in ball order afterwards, exactly as in the serial
// path. This is the one policy where true sharding is semantics-preserving;
// the round-based (k,d) policies share one probe batch and serialize
// through the selection kernel, so they cannot shard a round.

// The per-ball decision scan lives in kernel.go (kern.staleDecide): one
// dynamic dispatch per ball, with the d load reads inside devirtualized to
// the concrete store type.

// roundStaleBatch places toPlace balls, each with its own perBall probes
// judged against the stale round-start loads.
func (pr *Process) roundStaleBatch(toPlace int) {
	if shards := pr.p.Shards; shards > 1 && toPlace > 1 {
		pr.roundStaleBatchSharded(toPlace, shards)
		return
	}
	perBall := pr.p.D
	nonce := pr.rng.Uint64()
	placed, heights := pr.beginObs(toPlace)
	// Decide all destinations against stale loads first.
	if cap(pr.cands) < toPlace {
		pr.cands = make([]int, toPlace)
	}
	dests := pr.cands[:toPlace]
	for b := 0; b < toPlace; b++ {
		pr.rng.FillIntn(pr.samples[:perBall], pr.n)
		dests[b] = pr.kern.staleDecide(nonce, b, pr.samples[:perBall])
	}
	pr.applyStaleDests(dests, placed, heights)
}

// roundStaleBatchSharded is the multi-goroutine round: all randomness (the
// nonce plus every ball's samples, in ball order) is drawn serially first —
// the exact draw sequence of the serial path — and only the read-only
// argmin phase fans out over the shards.
func (pr *Process) roundStaleBatchSharded(toPlace, shards int) {
	perBall := pr.p.D
	nonce := pr.rng.Uint64()
	placed, heights := pr.beginObs(toPlace)
	if cap(pr.cands) < toPlace {
		pr.cands = make([]int, toPlace)
	}
	dests := pr.cands[:toPlace]
	buf := pr.shardBuf[:toPlace*perBall]
	pr.rng.FillIntn(buf, pr.n)

	if shards > toPlace {
		shards = toPlace
	}
	chunk := (toPlace + shards - 1) / shards
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > toPlace {
			hi = toPlace
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for b := lo; b < hi; b++ {
				dests[b] = pr.kern.staleDecide(nonce, b, buf[b*perBall:(b+1)*perBall])
			}
		}(lo, hi)
	}
	wg.Wait()
	pr.applyStaleDests(dests, placed, heights)
}

// applyStaleDests commits the round's decisions in ball order (the
// round-synchronous update) and accounts messages. Unobserved rounds use
// the store-specific batch increment (dests is already the plain bin list
// BulkAdd wants); observed rounds record per-ball heights.
func (pr *Process) applyStaleDests(dests, placed, heights []int) {
	if placed == nil {
		pr.kern.bulkAdd(dests)
		pr.balls += len(dests)
	} else {
		for i, dst := range dests {
			h := pr.place(dst)
			placed[i] = dst
			heights[i] = h
		}
	}
	pr.messages += int64(len(dests)) * int64(pr.p.D)
	pr.notify(nil, placed, heights)
}
