package core

// StaleBatch is the parallel-allocation counterpoint to (k,d)-choice: the
// k balls of a round probe INDEPENDENTLY (PerBallD probes each) and every
// ball commits to the least loaded of its own probes as of the START of
// the round — no information is shared between the balls, and loads update
// only after all k have decided. This is the round-synchronous model of
// the parallel balanced-allocation literature the paper contrasts with
// (Adler et al., Stemann; the paper's references [1, 16]): collisions are
// possible, and the paper's point is precisely that sharing one probe
// batch across the k balls avoids them.
//
// Message cost is k·PerBallD per round; to compare against A(k,d) at equal
// budget choose PerBallD = d/k.

// ballStaleBatchRound places toPlace balls, each with its own perBall
// probes judged against the stale round-start loads.
func (pr *Process) roundStaleBatch(toPlace int) {
	perBall := pr.p.D
	n := len(pr.loads)
	nonce := pr.rng.Uint64()
	placed, heights := pr.beginObs(toPlace)
	// Decide all destinations against stale loads first.
	if cap(pr.cands) < toPlace {
		pr.cands = make([]int, toPlace)
	}
	dests := pr.cands[:toPlace]
	for b := 0; b < toPlace; b++ {
		pr.rng.FillIntn(pr.samples[:perBall], n)
		best := pr.samples[0]
		bestTie := mix64(nonce ^ uint64(b)<<32 ^ uint64(best)*0x9e3779b97f4a7c15)
		for _, cand := range pr.samples[1:perBall] {
			if cand == best {
				continue
			}
			switch {
			case pr.loads[cand] < pr.loads[best]:
				best = cand
				bestTie = mix64(nonce ^ uint64(b)<<32 ^ uint64(cand)*0x9e3779b97f4a7c15)
			case pr.loads[cand] == pr.loads[best]:
				if tie := mix64(nonce ^ uint64(b)<<32 ^ uint64(cand)*0x9e3779b97f4a7c15); tie < bestTie {
					best = cand
					bestTie = tie
				}
			}
		}
		dests[b] = best
	}
	// Apply all placements afterwards (round-synchronous commit).
	for i, dst := range dests {
		h := pr.place(dst)
		if placed != nil {
			placed[i] = dst
			heights[i] = h
		}
	}
	pr.messages += int64(toPlace) * int64(perBall)
	pr.notify(nil, placed, heights)
}
