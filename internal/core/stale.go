package core

// StaleBatch is the parallel-allocation counterpoint to (k,d)-choice: the
// k balls of a round probe INDEPENDENTLY (PerBallD probes each) and every
// ball commits to the least loaded of its own probes as of the START of
// the round — no information is shared between the balls, and loads update
// only after all k have decided. This is the round-synchronous model of
// the parallel balanced-allocation literature the paper contrasts with
// (Adler et al., Stemann; the paper's references [1, 16]): collisions are
// possible, and the paper's point is precisely that sharing one probe
// batch across the k balls avoids them.
//
// Message cost is k·PerBallD per round; to compare against A(k,d) at equal
// budget choose PerBallD = d/k.
//
// Because every ball decides against the frozen round-start loads with no
// shared state, the decision phase is embarrassingly parallel: with
// Params.Shards > 1 (or 0 = auto on a multi-CPU host) the round runs as a
// one-round-wide superstep of the sharded engine (shard.go) — all
// randomness drawn serially up front in the exact serial order, the
// gather and per-ball argmin phases fanned out over the persistent worker
// pool — so the sharded round is bit-identical to the serial one (pinned
// by TestStaleBatchShardedMatchesSerial, including under -race) and
// allocation-free in steady state. Placements are applied serially in
// ball order afterwards, exactly as in the serial path. StaleBatch is the
// one policy whose sharding is exact for any block size; the load-coupled
// round policies shard under the same engine with a within-block
// staleness tradeoff instead (see shard.go).

// The per-ball decision scan lives in kernel.go: kern.staleDecide for the
// serial store-reading path, argminLdv over the gathered snapshot for the
// sharded one — identical arithmetic, pinned by the equivalence tests.

// roundStaleBatch places toPlace balls, each with its own perBall probes
// judged against the stale round-start loads.
func (pr *Process) roundStaleBatch(toPlace int) {
	if pr.shard != nil && toPlace > 1 {
		pr.shard.staleRound(pr, toPlace)
		return
	}
	perBall := pr.p.D
	nonce := pr.rng.Uint64()
	placed, heights := pr.beginObs(toPlace)
	// Decide all destinations against stale loads first.
	if cap(pr.cands) < toPlace {
		pr.cands = make([]int, toPlace)
	}
	dests := pr.cands[:toPlace]
	for b := 0; b < toPlace; b++ {
		pr.rng.FillIntn(pr.samples[:perBall], pr.n)
		dests[b] = pr.kern.staleDecide(nonce, b, pr.samples[:perBall])
	}
	pr.applyStaleDests(dests, placed, heights)
}

// applyStaleDests commits the round's decisions in ball order (the
// round-synchronous update) and accounts messages. Unobserved rounds use
// the store-specific batch increment (dests is already the plain bin list
// BulkAdd wants); observed rounds record per-ball heights.
func (pr *Process) applyStaleDests(dests, placed, heights []int) {
	if placed == nil {
		pr.kern.bulkAdd(dests)
		pr.balls += len(dests)
	} else {
		for i, dst := range dests {
			h := pr.place(dst)
			placed[i] = dst
			heights[i] = h
		}
	}
	pr.messages += int64(len(dests)) * int64(pr.p.D)
	pr.notify(nil, placed, heights)
}
