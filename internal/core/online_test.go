package core

import (
	"strings"
	"testing"

	"repro/internal/loadvec"
	"repro/internal/xrand"
)

// onlineCases is the per-ball policy matrix of the serving layer.
func onlineCases() []struct {
	name   string
	policy Policy
	p      Params
} {
	return []struct {
		name   string
		policy Policy
		p      Params
	}{
		{"single", SingleChoice, Params{N: 64}},
		{"dchoice", DChoice, Params{N: 64, D: 3}},
		{"oneplusbeta", OnePlusBeta, Params{N: 64, Beta: 0.4}},
		{"threshold", ThresholdChoice, Params{N: 64, D: 4}},
		{"dchoice-coarse", CoarseDChoice, Params{N: 64, D: 3, Quantum: 2}},
	}
}

// TestInsertOnlyMatchesPlace is the serving layer's anchor property: an
// insert-only unit-weight stream is bit-identical to Place on the same
// seed, for every per-ball policy, every store, and the interface-kernel
// fallback.
func TestInsertOnlyMatchesPlace(t *testing.T) {
	stores := []loadvec.StoreKind{loadvec.StoreDense, loadvec.StoreCompact, loadvec.StoreHist, loadvec.StoreNibble}
	for _, tc := range onlineCases() {
		t.Run(tc.name, func(t *testing.T) {
			const seed, m = 98765, 257
			ref := MustNew(tc.policy, tc.p, xrand.New(seed))
			ref.Place(m)
			for _, kind := range stores {
				for _, iface := range []bool{false, true} {
					p := tc.p
					p.Store = kind
					got := MustNew(tc.policy, p, xrand.New(seed))
					if iface {
						got.forceInterfaceKernel()
					}
					for i := 0; i < m; i++ {
						if _, err := got.Insert(); err != nil {
							t.Fatal(err)
						}
					}
					name := kind.String()
					if iface {
						name += "+iface"
					}
					stateEqual(t, name, ref, got)
					if got.Live() != m {
						t.Fatalf("%s: Live = %d, want %d", name, got.Live(), m)
					}
				}
			}
		})
	}
}

// TestOnlineAccountingShadow interleaves weighted inserts, deletes and
// rebalances on every store and checks the deletion-aware aggregates
// against a reference []int shadow maintained from the process's reported
// outcomes.
func TestOnlineAccountingShadow(t *testing.T) {
	stores := []loadvec.StoreKind{loadvec.StoreDense, loadvec.StoreCompact, loadvec.StoreHist, loadvec.StoreNibble}
	for _, tc := range onlineCases() {
		for _, kind := range stores {
			t.Run(tc.name+"/"+kind.String(), func(t *testing.T) {
				p := tc.p
				p.Store = kind
				pr := MustNew(tc.policy, p, xrand.New(4242))
				n := p.N
				shadow := make([]int, n)
				type liveBall struct {
					b Ball
					w int
				}
				var live []liveBall
				rng := xrand.New(555) // op-mix stream, separate from the process
				for step := 0; step < 3000; step++ {
					switch op := rng.Intn(10); {
					case op < 6 || len(live) == 0:
						w := 1 + rng.Intn(7)
						b, err := pr.InsertW(w)
						if err != nil {
							t.Fatal(err)
						}
						bin, err := pr.BallBin(b)
						if err != nil {
							t.Fatal(err)
						}
						shadow[bin] += w
						live = append(live, liveBall{b, w})
					case op < 9:
						vi := rng.Intn(len(live))
						lb := live[vi]
						bin, err := pr.BallBin(lb.b)
						if err != nil {
							t.Fatal(err)
						}
						if err := pr.Delete(lb.b); err != nil {
							t.Fatal(err)
						}
						shadow[bin] -= lb.w
						live[vi] = live[len(live)-1]
						live = live[:len(live)-1]
					default:
						vi := rng.Intn(len(live))
						lb := live[vi]
						before, _ := pr.BallBin(lb.b)
						if _, err := pr.Rebalance(lb.b); err != nil {
							t.Fatal(err)
						}
						after, _ := pr.BallBin(lb.b)
						if after != before {
							shadow[before] -= lb.w
							shadow[after] += lb.w
						}
					}
					if step%101 != 0 && step < 2900 {
						continue
					}
					max, balls := 0, 0
					for bin, v := range shadow {
						if got := pr.Load(bin); got != v {
							t.Fatalf("step %d: Load(%d) = %d, shadow %d", step, bin, got, v)
						}
						if v > max {
							max = v
						}
						balls += v
					}
					if got := pr.MaxLoad(); got != max {
						t.Fatalf("step %d: MaxLoad = %d, shadow %d", step, got, max)
					}
					if got := pr.Live(); got != len(live) {
						t.Fatalf("step %d: Live = %d, want %d", step, got, len(live))
					}
					wantGap := float64(max) - float64(balls)/float64(n)
					if got := pr.Gap(); got != wantGap {
						t.Fatalf("step %d: Gap = %v, shadow %v", step, got, wantGap)
					}
					for _, y := range []int{1, max, max + 1} {
						want := 0
						for _, v := range shadow {
							if v >= y {
								want++
							}
						}
						if got := pr.NuY(y); got != want {
							t.Fatalf("step %d: NuY(%d) = %d, shadow %d", step, y, got, want)
						}
					}
				}
			})
		}
	}
}

// TestStaleHandles pins handle lifetime: a deleted handle errors, and keeps
// erroring after its slot is recycled by a later insert.
func TestStaleHandles(t *testing.T) {
	pr := MustNew(SingleChoice, Params{N: 8}, xrand.New(1))
	b1, err := pr.Insert()
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Delete(b1); err != nil {
		t.Fatal(err)
	}
	if err := pr.Delete(b1); err == nil || !strings.Contains(err.Error(), "not live") {
		t.Fatalf("double delete: err = %v", err)
	}
	b2, err := pr.Insert() // recycles b1's slot with a bumped generation
	if err != nil {
		t.Fatal(err)
	}
	if b1 == b2 {
		t.Fatal("recycled slot produced an identical handle")
	}
	if _, err := pr.BallBin(b1); err == nil {
		t.Fatal("stale handle resolved after slot reuse")
	}
	if _, err := pr.BallBin(b2); err != nil {
		t.Fatal(err)
	}
	if err := pr.Delete(NoBall); err == nil {
		t.Fatal("NoBall accepted")
	}
}

// TestOnlineRejections pins the mode and policy guards.
func TestOnlineRejections(t *testing.T) {
	kd := MustNew(KDChoice, Params{N: 16, K: 2, D: 5}, xrand.New(1))
	if _, err := kd.Insert(); err == nil {
		t.Fatal("Insert on a round policy accepted")
	}
	pr := MustNew(SingleChoice, Params{N: 8}, xrand.New(1))
	if _, err := pr.InsertW(0); err == nil {
		t.Fatal("weight 0 accepted")
	}
	if _, err := pr.InsertW(maxBallWeight + 1); err == nil {
		t.Fatal("oversized weight accepted")
	}
	if _, err := pr.InsertVec([]float64{1}); err == nil {
		t.Fatal("InsertVec on a scalar process accepted")
	}
	vp := MustNew(DChoice, Params{N: 8, D: 2, VecDims: 2}, xrand.New(1))
	if _, err := vp.InsertW(1); err == nil {
		t.Fatal("InsertW on a vector process accepted")
	}
	if _, err := vp.InsertVec([]float64{1}); err == nil {
		t.Fatal("wrong-arity vector accepted")
	}
	if err := Validate(KDChoice, Params{N: 16, K: 2, D: 5, VecDims: 2}); err == nil {
		t.Fatal("vector mode on a round policy accepted")
	}
	if err := Validate(SingleChoice, Params{N: 16, VecDims: 2, VecNorm: loadvec.Norm(9)}); err == nil {
		t.Fatal("unknown norm accepted")
	}
}

// TestOnlineVectorMode runs a vector-load process against a [][]float64
// shadow and checks the aggregate accessors under every norm.
func TestOnlineVectorMode(t *testing.T) {
	for _, norm := range []loadvec.Norm{loadvec.NormLInf, loadvec.NormL1, loadvec.NormL2} {
		t.Run(norm.String(), func(t *testing.T) {
			const n, dims = 16, 3
			pr := MustNew(DChoice, Params{N: n, D: 3, VecDims: dims, VecNorm: norm}, xrand.New(9))
			shadow := make([][]float64, n)
			for i := range shadow {
				shadow[i] = make([]float64, dims)
			}
			rng := xrand.New(10)
			var handles []Ball
			var vecs [][]float64
			for step := 0; step < 800; step++ {
				if rng.Intn(3) > 0 || len(handles) == 0 {
					w := make([]float64, dims)
					for c := range w {
						w[c] = rng.Float64() * 3
					}
					b, err := pr.InsertVec(w)
					if err != nil {
						t.Fatal(err)
					}
					bin, _ := pr.BallBin(b)
					for c := range w {
						shadow[bin][c] += w[c]
					}
					handles = append(handles, b)
					vecs = append(vecs, w)
				} else {
					vi := rng.Intn(len(handles))
					bin, _ := pr.BallBin(handles[vi])
					if err := pr.Delete(handles[vi]); err != nil {
						t.Fatal(err)
					}
					for c, v := range vecs[vi] {
						shadow[bin][c] -= v
					}
					last := len(handles) - 1
					handles[vi], vecs[vi] = handles[last], vecs[last]
					handles, vecs = handles[:last], vecs[:last]
				}
				if step%67 != 0 {
					continue
				}
				maxAgg := 0.0
				for b := range shadow {
					agg := norm.Apply(shadow[b])
					if agg > maxAgg {
						maxAgg = agg
					}
					if got := pr.AggLoad(b); abs(got-agg) > 1e-9 {
						t.Fatalf("step %d: AggLoad(%d) = %g, shadow %g", step, b, got, agg)
					}
				}
				if got := pr.MaxAggLoad(); abs(got-maxAgg) > 1e-9 {
					t.Fatalf("step %d: MaxAggLoad = %g, shadow %g", step, got, maxAgg)
				}
			}
			if pr.GapAgg() < 0 {
				t.Fatalf("GapAgg = %g, want >= 0", pr.GapAgg())
			}
		})
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestReserveKeepsState pins that pre-sizing the registry changes no
// observable state and prevents growth.
func TestReserveKeepsState(t *testing.T) {
	pr := MustNew(SingleChoice, Params{N: 32}, xrand.New(3))
	ref := MustNew(SingleChoice, Params{N: 32}, xrand.New(3))
	pr.Reserve(128)
	var hs []Ball
	for i := 0; i < 100; i++ {
		b1, err := pr.Insert()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := ref.Insert()
		if err != nil {
			t.Fatal(err)
		}
		if b1 != b2 {
			t.Fatalf("insert %d: handle %v != %v", i, b1, b2)
		}
		hs = append(hs, b1)
	}
	stateEqual(t, "reserved", ref, pr)
	for _, b := range hs {
		if err := pr.Delete(b); err != nil {
			t.Fatal(err)
		}
	}
	if pr.Live() != 0 || pr.Balls() != 0 || pr.MaxLoad() != 0 {
		t.Fatalf("drained process not empty: live=%d balls=%d max=%d", pr.Live(), pr.Balls(), pr.MaxLoad())
	}
}

// TestOnlineObserverOps pins the observer's op/weight tagging on the
// serving path.
func TestOnlineObserverOps(t *testing.T) {
	pr := MustNew(OnePlusBeta, Params{N: 16, Beta: 0.5}, xrand.New(8))
	type event struct {
		op     Op
		weight int
		placed int
	}
	var events []event
	pr.SetObserver(observerFunc(func(round int, samples, placed, heights []int) {
		events = append(events, event{pr.LastOp(), pr.LastOpWeight(), len(placed)})
	}))
	b, err := pr.InsertW(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Rebalance(b); err != nil {
		t.Fatal(err)
	}
	if err := pr.Delete(b); err != nil {
		t.Fatal(err)
	}
	want := []event{{OpInsert, 5, 1}, {OpRebalance, 5, 1}, {OpDelete, 5, 1}}
	if len(events) != len(want) {
		t.Fatalf("got %d events, want %d", len(events), len(want))
	}
	for i, e := range events {
		if e != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
	if pr.LastOp() != OpInsert || pr.LastOpWeight() != 0 {
		t.Fatalf("op/weight not reset after notify: %v %d", pr.LastOp(), pr.LastOpWeight())
	}
}
