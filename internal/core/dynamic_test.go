package core

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func TestDynamicKDValidation(t *testing.T) {
	rng := xrand.New(1)
	if _, err := New(DynamicKD, Params{N: 8, D: 1}, rng); err == nil {
		t.Fatal("D=1 accepted")
	}
	if _, err := New(DynamicKD, Params{N: 8, D: 9}, rng); err == nil {
		t.Fatal("D>N accepted")
	}
	if _, err := New(DynamicKD, Params{N: 8, D: 4}, rng); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestDynamicKDConservation(t *testing.T) {
	pr := MustNew(DynamicKD, Params{N: 128, D: 8}, xrand.New(3))
	pr.Place(1000)
	if pr.Balls() != 1000 || pr.Loads().Total() != 1000 {
		t.Fatalf("conservation broken: balls=%d total=%d", pr.Balls(), pr.Loads().Total())
	}
	if pr.Rounds() < 1000/8 {
		t.Fatalf("rounds %d implausibly low", pr.Rounds())
	}
	// Messages = d per round.
	if pr.Messages() != int64(pr.Rounds()*8) {
		t.Fatalf("messages %d != rounds*d %d", pr.Messages(), pr.Rounds()*8)
	}
}

// TestDynamicKDCeiling: the defining property of the dynamic policy — the
// max load stays within one of the running ceiling floor(m/n)+1, even in
// the heavily loaded case, because balls only land at or below it (plus
// the progress fallback).
func TestDynamicKDCeiling(t *testing.T) {
	const n = 256
	pr := MustNew(DynamicKD, Params{N: n, D: 8}, xrand.New(5))
	for _, m := range []int{n, 2 * n, 8 * n} {
		pr.Reset()
		pr.Place(m)
		ceiling := m/n + 1
		if pr.MaxLoad() > ceiling+1 {
			t.Fatalf("m=%d: max load %d exceeds ceiling %d + 1", m, pr.MaxLoad(), ceiling)
		}
	}
}

// TestDynamicKDBeatsStrictAtSameProbeCost: at comparable message budgets
// the dynamic policy should match or beat strict (k,d)-choice on max load,
// the paper's stated motivation for dynamic k.
func TestDynamicKDBeatsStrictAtSameProbeCost(t *testing.T) {
	const n, runs = 1024, 150
	var dyn, strict stats.Online
	var dynMsgs, strictMsgs stats.Online
	for i := 0; i < runs; i++ {
		a := MustNew(DynamicKD, Params{N: n, D: 4}, xrand.NewStream(91, uint64(i)))
		a.Place(n)
		dyn.Add(float64(a.MaxLoad()))
		dynMsgs.Add(float64(a.Messages()))
		b := MustNew(KDChoice, Params{N: n, K: 2, D: 4}, xrand.NewStream(92, uint64(i)))
		b.Place(n)
		strict.Add(float64(b.MaxLoad()))
		strictMsgs.Add(float64(b.Messages()))
	}
	if dyn.Mean() > strict.Mean()+0.15 {
		t.Fatalf("dynamic mean max %.3f worse than strict (2,4) %.3f", dyn.Mean(), strict.Mean())
	}
	t.Logf("dynamic: max %.2f msgs %.0f; strict (2,4): max %.2f msgs %.0f",
		dyn.Mean(), dynMsgs.Mean(), strict.Mean(), strictMsgs.Mean())
}

func TestDynamicKDObserver(t *testing.T) {
	pr := MustNew(DynamicKD, Params{N: 64, D: 4}, xrand.New(7))
	obs := &countObserver{}
	pr.SetObserver(obs)
	pr.Place(200)
	if obs.ballsSeen != 200 {
		t.Fatalf("observer saw %d balls", obs.ballsSeen)
	}
	if obs.roundsSeen != pr.Rounds() {
		t.Fatalf("observer rounds %d != %d", obs.roundsSeen, pr.Rounds())
	}
}

func TestDynamicKDRound(t *testing.T) {
	pr := MustNew(DynamicKD, Params{N: 32, D: 4}, xrand.New(9))
	pr.Round()
	if pr.Balls() < 1 || pr.Balls() > 4 {
		t.Fatalf("one round placed %d balls, want 1..4", pr.Balls())
	}
	if pr.Rounds() != 1 {
		t.Fatalf("Rounds = %d", pr.Rounds())
	}
}

func TestDynamicKDPolicyName(t *testing.T) {
	if DynamicKD.String() != "kd-dynamic" {
		t.Fatalf("name %q", DynamicKD.String())
	}
	p, err := ParsePolicy("kd-dynamic")
	if err != nil || p != DynamicKD {
		t.Fatalf("round trip: %v %v", p, err)
	}
}

// TestDynamicKDRuleViaObserver: every ball lands at height <= ceiling+...
// — specifically at most one ball per round exceeds the ceiling (the
// progress fallback), and all other balls respect it.
func TestDynamicKDRuleViaObserver(t *testing.T) {
	const n = 64
	pr := MustNew(DynamicKD, Params{N: n, D: 6}, xrand.New(11))
	ballsSoFar := 0
	pr.SetObserver(observerFunc(func(round int, samples, placed, heights []int) {
		target := ballsSoFar/n + 1
		over := 0
		for _, h := range heights {
			if h > target {
				over++
			}
		}
		// Either all placements respect the ceiling, or the round was the
		// single-ball fallback.
		if over > 0 && len(placed) != 1 {
			t.Fatalf("round %d: %d balls above ceiling %d in a %d-ball round",
				round, over, target, len(placed))
		}
		ballsSoFar += len(placed)
	}))
	pr.Place(512)
}
