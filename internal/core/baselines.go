package core

// This file implements the classical baseline processes the paper positions
// (k,d)-choice against: single choice, d-choice (Azar et al.), the (1+β)
// process (Peres et al.), Vöcking's Always-Go-Left, and the SAx0 discard
// process from the paper's own lower-bound analysis (Definition 3).

// ballSingle places one ball into a bin chosen uniformly at random.
func (pr *Process) ballSingle() {
	b := pr.rng.Intn(pr.n)
	h := pr.place(b)
	pr.messages++
	if pr.obs != nil {
		pr.notify([]int{b}, []int{b}, []int{h})
	}
}

// ballDChoice places one ball into the least loaded of d uniform samples
// (with replacement), ties broken uniformly at random among the DISTINCT
// sampled bins. This is greedy[d] of Azar, Broder, Karlin and Upfal, and is
// distributionally identical to (k,d)-choice with k = 1; it is implemented
// independently so the two can cross-validate each other.
//
// Tie-breaking uses a per-round keyed hash of the bin id, which gives every
// distinct bin exactly one uniform lottery ticket even when it is sampled
// several times, in O(d) per ball.
func (pr *Process) ballDChoice() {
	nonce := pr.roundPrologue()
	best := pr.kern.dchoiceBest(pr, nonce)
	h := pr.place(best)
	pr.messages += int64(pr.p.D)
	if pr.obs != nil {
		pr.notify(pr.samples, []int{best}, []int{h})
	}
}

// mix64 is the splitmix64 finalizer: a fast bijective mixer used to derive
// per-(round, bin) tie-break keys.
//
//kd:hotpath
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ballOnePlusBeta places one ball following the (1+β)-choice process: with
// probability β the ball goes to the lesser loaded of two uniform samples,
// otherwise to a single uniform sample.
func (pr *Process) ballOnePlusBeta() {
	if pr.rng.Bernoulli(pr.p.Beta) {
		a := pr.rng.Intn(pr.n)
		b := pr.rng.Intn(pr.n)
		pr.messages += 2
		best := a
		la, lb := pr.store.Load(a), pr.store.Load(b)
		if lb < la || (lb == la && pr.rng.Bool()) {
			best = b
		}
		h := pr.place(best)
		if pr.obs != nil {
			pr.notify([]int{a, b}, []int{best}, []int{h})
		}
		return
	}
	pr.ballSingle()
}

// ballAlwaysGoLeft places one ball following Vöcking's asymmetric scheme:
// the bins are split into d contiguous groups, one uniform sample is drawn
// from each group, and the ball goes to the least loaded sample with ties
// broken in favor of the leftmost group.
func (pr *Process) ballAlwaysGoLeft() {
	d := pr.p.D
	best := -1
	for g := 0; g < d; g++ {
		lo, hi := pr.groupStart[g], pr.groupStart[g+1]
		if lo == hi {
			continue // empty group (d > n cannot happen, but stay safe)
		}
		b := lo + pr.rng.Intn(hi-lo)
		pr.samples[g] = b
		if best == -1 || pr.store.Load(b) < pr.store.Load(best) {
			best = b // strict inequality: ties stay with the leftmost group
		}
	}
	h := pr.place(best)
	pr.messages += int64(d)
	if pr.obs != nil {
		pr.notify(pr.samples[:d], []int{best}, []int{h})
	}
}

// ballSAx0 runs one step of Definition 3's SAx0 process: the ball picks a
// uniformly random bin; if that bin ranks among the x0 most loaded (rank
// ties broken uniformly at random) the ball is discarded, otherwise it is
// placed. Rank computation uses the maintained load histogram, so each step
// costs O(max load).
func (pr *Process) ballSAx0() {
	b := pr.rng.Intn(pr.n)
	load := pr.store.Load(b)
	// Number of bins strictly more loaded than b.
	greater := 0
	for y := load + 1; y <= pr.store.MaxLoad(); y++ {
		greater += pr.loadCount[y]
	}
	equal := pr.loadCount[load]
	// The rank of b among the equally loaded bins is uniform.
	rank := greater + 1 + pr.rng.Intn(equal)
	pr.messages++
	if rank <= pr.p.X0 {
		pr.discarded++
		if pr.obs != nil {
			pr.notify([]int{b}, nil, nil)
		}
		return
	}
	pr.loadCount[load]--
	if load+1 >= len(pr.loadCount) {
		pr.loadCount = append(pr.loadCount, 0)
	}
	pr.loadCount[load+1]++
	h := pr.place(b)
	if pr.obs != nil {
		pr.notify([]int{b}, []int{b}, []int{h})
	}
}
