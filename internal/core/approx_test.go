package core

import (
	"strings"
	"testing"

	"repro/internal/loadvec"
	"repro/internal/xrand"
)

// TestCoarseQuantumOneMatchesDChoice pins the limited-memory policy's
// exactness anchor: with Quantum=1 the quantized argmin degenerates to the
// exact argmin, and CoarseDChoice must reproduce DChoice bit for bit — same
// placements, same messages, same tie-breaks — in both the one-shot and the
// serving paths.
func TestCoarseQuantumOneMatchesDChoice(t *testing.T) {
	const seed, m = 31337, 400
	for _, store := range []loadvec.StoreKind{loadvec.StoreDense, loadvec.StoreCompact, loadvec.StoreNibble} {
		ref := MustNew(DChoice, Params{N: 48, D: 3, Store: store}, xrand.New(seed))
		got := MustNew(CoarseDChoice, Params{N: 48, D: 3, Quantum: 1, Store: store}, xrand.New(seed))
		ref.Place(m)
		got.Place(m)
		stateEqual(t, "place/"+store.String(), ref, got)

		refOn := MustNew(DChoice, Params{N: 48, D: 3, Store: store}, xrand.New(seed))
		gotOn := MustNew(CoarseDChoice, Params{N: 48, D: 3, Quantum: 1, Store: store}, xrand.New(seed))
		for i := 0; i < m; i++ {
			b1, err := refOn.Insert()
			if err != nil {
				t.Fatal(err)
			}
			b2, err := gotOn.Insert()
			if err != nil {
				t.Fatal(err)
			}
			if b1 != b2 {
				t.Fatalf("insert %d: handles diverged", i)
			}
		}
		stateEqual(t, "online/"+store.String(), refOn, gotOn)
	}
}

// TestCoarseQuantizesDecisions checks the knob actually changes behavior:
// with a large quantum every probed bin lands in bucket 0 at low loads, so
// ties are broken by hash alone and the trajectory diverges from exact
// d-choice (if it did not, the quantization would be dead code).
func TestCoarseQuantizesDecisions(t *testing.T) {
	const seed, m = 2024, 2000
	ref := MustNew(DChoice, Params{N: 32, D: 3}, xrand.New(seed))
	got := MustNew(CoarseDChoice, Params{N: 32, D: 3, Quantum: 64}, xrand.New(seed))
	ref.Place(m)
	got.Place(m)
	if ref.MaxLoad() == got.MaxLoad() && ref.Loads().Max() == got.Loads().Max() {
		// Max loads may coincide; the full vectors must not for this m.
		same := true
		for b, v := range ref.Loads() {
			if got.Loads()[b] != v {
				same = false
				break
			}
		}
		if same {
			t.Fatal("Quantum=64 trajectory identical to exact d-choice; quantization is dead code")
		}
	}
}

// TestThresholdChoiceBehavior checks the O(1)-memory accept/reject policy:
// insert-only equals Place (shared decision path), messages count the probes
// actually spent, and the resulting allocation beats single-choice on the
// same stream (the point of the running-ceiling test).
func TestThresholdChoiceBehavior(t *testing.T) {
	const seed, m = 777, 3000
	pr := MustNew(ThresholdChoice, Params{N: 64, D: 5}, xrand.New(seed))
	pr.Place(m)
	if pr.Balls() != m {
		t.Fatalf("Balls = %d, want %d", pr.Balls(), m)
	}
	// Probes per ball are in [1, D].
	if pr.Messages() < m || pr.Messages() > m*5 {
		t.Fatalf("Messages = %d, want within [%d, %d]", pr.Messages(), m, m*5)
	}
	single := MustNew(SingleChoice, Params{N: 64}, xrand.New(seed))
	single.Place(m)
	if pr.MaxLoad() > single.MaxLoad() {
		t.Fatalf("threshold max %d worse than single-choice max %d", pr.MaxLoad(), single.MaxLoad())
	}
}

// TestNibbleEscapeUnderProcess drives a tiny-bin process past the 4-bit
// range so the nibble escape path runs inside a real allocation, coupled
// bit-for-bit against the dense reference. Loads reach ~300 per bin —
// twenty times past the sentinel — so escape, wide-table updates and
// max-load bookkeeping all run on the hot path.
func TestNibbleEscapeUnderProcess(t *testing.T) {
	const seed, m = 11, 3 * 300
	ref := MustNew(DChoice, Params{N: 3, D: 2}, xrand.New(seed))
	got := MustNew(DChoice, Params{N: 3, D: 2, Store: loadvec.StoreNibble}, xrand.New(seed))
	ref.Place(m)
	got.Place(m)
	stateEqual(t, "nibble-escape", ref, got)
	if got.MaxLoad() <= loadvec.NibbleEscape {
		t.Fatalf("test did not cross the nibble escape threshold (max %d)", got.MaxLoad())
	}
}

// TestSketchProcessOneSided runs real allocations on the sketch store while
// an observer maintains the exact load vector from reported placements.
// Every per-bin estimate must dominate the true load and the reported max
// must dominate the true max on any geometry; with a comfortable explicit
// geometry (8 cells per bin per row, 4 rows) the max-load inflation must
// additionally stay within a small additive band (deterministic for fixed
// seeds; a regression in the hash spreading breaks this).
func TestSketchProcessOneSided(t *testing.T) {
	const wide, deep = 4096, 4 // comfortable: collisions rare, tight estimates
	cases := []struct {
		name   string
		policy Policy
		p      Params
		banded bool // explicit wide geometry: assert the inflation band too
	}{
		{"dchoice", DChoice, Params{N: 512, D: 2, Store: loadvec.StoreSketch, SketchWidth: wide, SketchDepth: deep}, true},
		{"kd", KDChoice, Params{N: 512, K: 4, D: 9, Store: loadvec.StoreSketch, SketchWidth: wide, SketchDepth: deep}, true},
		{"threshold", ThresholdChoice, Params{N: 512, D: 4, Store: loadvec.StoreSketch, SketchWidth: wide, SketchDepth: deep}, true},
		{"dchoice-coarse", CoarseDChoice, Params{N: 512, D: 3, Store: loadvec.StoreSketch, SketchWidth: wide, SketchDepth: deep}, true},
		// Default sub-half-byte geometry: heavy collisions by design, so
		// only the one-sided contract holds, not any tightness band.
		{"dchoice/default-geometry", DChoice, Params{N: 512, D: 2, Store: loadvec.StoreSketch}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pr := MustNew(tc.policy, tc.p, xrand.New(99))
			truth := make([]int, tc.p.N)
			pr.SetObserver(observerFunc(func(round int, samples, placed, heights []int) {
				for _, b := range placed {
					truth[b]++
				}
			}))
			pr.Place(4 * tc.p.N)
			trueMax := 0
			for b, v := range truth {
				if est := pr.Load(b); est < v {
					t.Fatalf("bin %d: estimate %d below true load %d", b, est, v)
				}
				if v > trueMax {
					trueMax = v
				}
			}
			if pr.MaxLoad() < trueMax {
				t.Fatalf("MaxLoad %d below true max %d", pr.MaxLoad(), trueMax)
			}
			if infl := pr.MaxLoad() - trueMax; tc.banded && infl > 3 {
				t.Fatalf("max-load inflation %d (sketch max %d, true max %d) exceeds the band",
					infl, pr.MaxLoad(), trueMax)
			}
		})
	}
}

// TestOnlineSketchOneSided exercises the serving layer's Sub path on the
// sketch store: an insert/delete mix must keep every estimate one-sided
// against the exact shadow — deletes never under-cut a surviving ball
// (saturated counters are sticky, live counters are decremented exactly
// once per hashed ball).
func TestOnlineSketchOneSided(t *testing.T) {
	const n = 256
	pr := MustNew(DChoice, Params{N: n, D: 2, Store: loadvec.StoreSketch, SketchWidth: 128, SketchDepth: 2}, xrand.New(5))
	shadow := make([]int, n)
	type liveBall struct {
		b   Ball
		bin int
		w   int
	}
	var live []liveBall
	rng := xrand.New(6)
	for step := 0; step < 2500; step++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			w := 1 + rng.Intn(4)
			b, err := pr.InsertW(w)
			if err != nil {
				t.Fatal(err)
			}
			bin, _ := pr.BallBin(b)
			shadow[bin] += w
			live = append(live, liveBall{b, bin, w})
		} else {
			vi := rng.Intn(len(live))
			lb := live[vi]
			if err := pr.Delete(lb.b); err != nil {
				t.Fatal(err)
			}
			shadow[lb.bin] -= lb.w
			live[vi] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if step%97 != 0 {
			continue
		}
		trueMax := 0
		for b, v := range shadow {
			if est := pr.Load(b); est < v {
				t.Fatalf("step %d: bin %d estimate %d below true %d", step, b, est, v)
			}
			if v > trueMax {
				trueMax = v
			}
		}
		if pr.MaxLoad() < trueMax {
			t.Fatalf("step %d: MaxLoad %d below true max %d", step, pr.MaxLoad(), trueMax)
		}
	}
}

// TestApproxValidation pins the new parameter guards and the exact-store
// requirements.
func TestApproxValidation(t *testing.T) {
	reject := func(policy Policy, p Params, frag string) {
		t.Helper()
		err := Validate(policy, p)
		if err == nil {
			t.Fatalf("%v/%+v accepted, want error mentioning %q", policy, p, frag)
		}
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("%v error = %v, want mention of %q", policy, err, frag)
		}
	}
	reject(DChoice, Params{N: 8, D: 2, Quantum: -1}, "Quantum")
	reject(DChoice, Params{N: 8, D: 2, SketchWidth: -1}, "SketchWidth")
	reject(DChoice, Params{N: 8, D: 2, SketchDepth: 9}, "SketchDepth")
	reject(DChoice, Params{N: 8, D: 2, SketchDepth: -1}, "SketchDepth")
	reject(SAx0, Params{N: 8, X0: 2, Store: loadvec.StoreSketch}, "exact")
	reject(ThresholdChoice, Params{N: 8, D: 0}, "D")
	reject(CoarseDChoice, Params{N: 8, D: 0}, "D")
	// Vector-load mode stays restricted to the (1+β) family.
	reject(ThresholdChoice, Params{N: 8, D: 2, VecDims: 2}, "vector")
	reject(CoarseDChoice, Params{N: 8, D: 2, VecDims: 2}, "vector")

	for _, p := range []Params{
		{N: 8, D: 2, Store: loadvec.StoreSketch, SketchWidth: 64, SketchDepth: 3},
		{N: 8, D: 2, Quantum: 7},
		{N: 8, D: 2, Store: loadvec.StoreNibble},
	} {
		if err := Validate(CoarseDChoice, p); err != nil {
			t.Fatalf("valid params %+v rejected: %v", p, err)
		}
	}
}

// TestPolicyHelpAndNames pins the sorted help listing contract shared with
// the CLI flags: one "name — note" line per policy, sorted, note non-empty.
func TestPolicyHelpAndNames(t *testing.T) {
	names := PolicyNames()
	for _, want := range []string{"threshold", "dchoice-coarse"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("PolicyNames() = %v, missing %q", names, want)
		}
	}
	help := PolicyHelp()
	if len(help) != len(names) {
		t.Fatalf("PolicyHelp() has %d lines, PolicyNames() has %d", len(help), len(names))
	}
	for i, line := range help {
		if !strings.HasPrefix(line, names[i]+" — ") || len(line) <= len(names[i])+5 {
			t.Fatalf("PolicyHelp()[%d] = %q, want %q with a non-empty note", i, line, names[i])
		}
	}
	for _, name := range []string{"threshold", "dchoice-coarse"} {
		pol, err := ParsePolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if pol.String() != name {
			t.Fatalf("round trip %q -> %v -> %q", name, pol, pol.String())
		}
	}
}
