package core

// This file implements the limited-memory decision policies motivated by
// the choice-memory tradeoff of Alon, Gurel-Gurevich and Lubetzky
// (arXiv:0901.4056): allocators that decide with O(1) working state or
// with only coarse (sketch-compatible) load information, positioned
// against Park's exact (k,d)-choice baseline.
//
//   - ThresholdChoice: sequential accept/reject. The ball probes up to D
//     bins one at a time and commits to the FIRST whose load is below the
//     running ceiling T = floor(balls/n) + 1 — the best possible max load
//     if the current balls were spread evenly, plus the ball being placed.
//     If no probe qualifies the ball stays in the last probed bin (the
//     process always makes progress). The decision state is one candidate
//     bin and one threshold — O(1) memory, no ranking, no tie lottery —
//     and the message cost is the number of probes actually issued, so
//     lightly loaded phases pay ~1 probe per ball. The draw count is
//     data-dependent, which excludes the fixed-prologue superstep engine;
//     Params.Pipeline falls back to raw word prefetch like the other
//     adaptive policies.
//
//   - CoarseDChoice: d-choice over QUANTIZED loads. The round draws d
//     samples and a nonce exactly like DChoice, but the argmin compares
//     floor(load / Quantum) instead of the load itself, breaking
//     bucket-ties with the same per-(round, bin) keyed hash. Loads that
//     differ by less than a quantum are deliberately indistinguishable —
//     exactly the information a sub-quantum-accurate sketch can still
//     provide, so the policy's behavior is insensitive to bounded sketch
//     overestimates. With Quantum = 1 the bucket IS the load and the
//     policy is bit-identical to DChoice (pinned in tests); the prologue
//     is the fixed FillIntn-then-nonce sequence, so CoarseDChoice rides
//     the superstep engine and the pipelined producer like DChoice.

// defaultQuantum is the CoarseDChoice bucket width when Params.Quantum is
// left zero: coarse enough that a defensible sketch geometry (inflation of
// a few units) rarely crosses a bucket boundary, fine enough to keep the
// gap within a few units of exact d-choice.
const defaultQuantum = 4

// quantum returns the effective CoarseDChoice bucket width.
func (pr *Process) quantum() int {
	if q := pr.p.Quantum; q > 0 {
		return q
	}
	return defaultQuantum
}

// decideThreshold runs one ThresholdChoice decision and returns the chosen
// bin plus the number of probes issued. Shared verbatim by the one-shot
// round (ballThreshold) and the online decide path, so an insert-only
// stream is bit-identical to Place. Probed bins are recorded in
// pr.obsPairBuf only when an observer is installed (the hot path stays
// allocation-free).
func (pr *Process) decideThreshold() (bin, probes int) {
	t := pr.store.Balls()/pr.n + 1
	d := pr.p.D
	b := 0
	for i := 1; i <= d; i++ {
		b = pr.rng.Intn(pr.n)
		if pr.obs != nil {
			pr.obsPairBuf = append(pr.obsPairBuf, b)
		}
		if pr.kern.loadAt(b) < t {
			return b, i
		}
	}
	return b, d
}

// ballThreshold places one ball via the sequential accept/reject scan.
func (pr *Process) ballThreshold() {
	pr.obsPairBuf = pr.obsPairBuf[:0]
	bin, probes := pr.decideThreshold()
	h := pr.place(bin)
	pr.messages += int64(probes)
	if pr.obs != nil {
		pr.notify(pr.obsPairBuf, []int{bin}, []int{h})
	}
}

// coarseBest returns the sample whose QUANTIZED load is minimal, ties
// broken by the same keyed hash as dchoiceBest. The load gather runs
// through the devirtualized kernel; the bucket scan is the shared
// store-free argmin (kernel.go), which is also what the sharded decide
// phase runs — so serial and sharded CoarseDChoice cannot drift.
func (pr *Process) coarseBest(nonce uint64) int {
	pr.kern.gatherLoads(pr)
	return argminLdv(pr.samples, pr.ldv[:len(pr.samples)], nonce, 0, pr.quantum())
}

// ballCoarse places one ball via the quantized d-choice argmin. The
// prologue and accounting mirror ballDChoice exactly, which is what makes
// the Quantum = 1 bit-identity to DChoice hold.
func (pr *Process) ballCoarse() {
	nonce := pr.roundPrologue()
	best := pr.coarseBest(nonce)
	h := pr.place(best)
	pr.messages += int64(pr.p.D)
	if pr.obs != nil {
		pr.notify(pr.samples, []int{best}, []int{h})
	}
}
