package core

import (
	"fmt"
	"testing"

	"repro/internal/xrand"
)

// Throughput benchmarks: balls placed per second for each policy. These are
// ablation-grade microbenchmarks; the paper-reproduction benchmarks live in
// the repository root.

func benchPlace(b *testing.B, policy Policy, p Params) {
	b.Helper()
	pr, err := New(policy, p, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	const batch = 4096
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.Place(batch)
		if pr.Balls() > 1<<22 {
			b.StopTimer()
			pr.Reset()
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(batch), "balls/op")
}

func BenchmarkPlaceKD(b *testing.B) {
	for _, tc := range []struct{ k, d int }{{1, 2}, {2, 3}, {8, 17}, {128, 193}} {
		b.Run(fmt.Sprintf("k=%d,d=%d", tc.k, tc.d), func(b *testing.B) {
			benchPlace(b, KDChoice, Params{N: 1 << 16, K: tc.k, D: tc.d})
		})
	}
}

func BenchmarkPlaceSingle(b *testing.B) {
	benchPlace(b, SingleChoice, Params{N: 1 << 16})
}

func BenchmarkPlaceDChoice(b *testing.B) {
	benchPlace(b, DChoice, Params{N: 1 << 16, D: 2})
}

func BenchmarkPlaceOnePlusBeta(b *testing.B) {
	benchPlace(b, OnePlusBeta, Params{N: 1 << 16, Beta: 0.5})
}

func BenchmarkPlaceAlwaysGoLeft(b *testing.B) {
	benchPlace(b, AlwaysGoLeft, Params{N: 1 << 16, D: 2})
}

func BenchmarkPlaceAdaptiveKD(b *testing.B) {
	benchPlace(b, AdaptiveKD, Params{N: 1 << 16, K: 2, D: 3})
}

func BenchmarkPlaceSAx0(b *testing.B) {
	benchPlace(b, SAx0, Params{N: 1 << 16, X0: 64})
}
