package core

import (
	"fmt"
	"testing"

	"repro/internal/xrand"
)

// Throughput benchmarks: balls placed per second for each policy. These are
// ablation-grade microbenchmarks; the paper-reproduction benchmarks live in
// the repository root.

func benchPlace(b *testing.B, policy Policy, p Params) {
	b.Helper()
	pr, err := New(policy, p, xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	const batch = 4096
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.Place(batch)
		if pr.Balls() > 1<<22 {
			b.StopTimer()
			pr.Reset()
			b.StartTimer()
		}
	}
	b.ReportMetric(float64(batch), "balls/op")
}

// BenchmarkRound is the kernel ablation on the acceptance cell (n = 1e5,
// k = 2, d = 64): one (k,d)-choice round per op, counting kernel vs the
// reference sort kernel. The fast kernel must stay allocation-free and
// ≥1.5× faster than sort (tracked in BENCH_kd.json via cmd/bench).
func BenchmarkRound(b *testing.B) {
	for _, tc := range []struct {
		name string
		ref  bool
	}{{"fast", false}, {"sort", true}} {
		b.Run(tc.name+"/n=100000,k=2,d=64", func(b *testing.B) {
			pr, err := New(KDChoice, Params{N: 100000, K: 2, D: 64, ReferenceSelect: tc.ref}, xrand.New(1))
			if err != nil {
				b.Fatal(err)
			}
			pr.Place(100000) // steady state: every bin has load ~1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pr.Round()
			}
			b.ReportMetric(float64(pr.p.K), "balls/op")
		})
	}
}

func BenchmarkPlaceKD(b *testing.B) {
	for _, tc := range []struct{ k, d int }{{1, 2}, {2, 3}, {8, 17}, {128, 193}} {
		b.Run(fmt.Sprintf("k=%d,d=%d", tc.k, tc.d), func(b *testing.B) {
			benchPlace(b, KDChoice, Params{N: 1 << 16, K: tc.k, D: tc.d})
		})
	}
}

func BenchmarkPlaceSingle(b *testing.B) {
	benchPlace(b, SingleChoice, Params{N: 1 << 16})
}

func BenchmarkPlaceDChoice(b *testing.B) {
	benchPlace(b, DChoice, Params{N: 1 << 16, D: 2})
}

func BenchmarkPlaceOnePlusBeta(b *testing.B) {
	benchPlace(b, OnePlusBeta, Params{N: 1 << 16, Beta: 0.5})
}

func BenchmarkPlaceAlwaysGoLeft(b *testing.B) {
	benchPlace(b, AlwaysGoLeft, Params{N: 1 << 16, D: 2})
}

func BenchmarkPlaceAdaptiveKD(b *testing.B) {
	benchPlace(b, AdaptiveKD, Params{N: 1 << 16, K: 2, D: 3})
}

func BenchmarkPlaceSAx0(b *testing.B) {
	benchPlace(b, SAx0, Params{N: 1 << 16, X0: 64})
}
