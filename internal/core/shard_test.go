package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/loadvec"
	"repro/internal/xrand"
)

// This file pins the sharded superstep engine's contracts (shard.go):
//
//   - P-independence: for ANY shard count >= 2 (and any GOMAXPROCS) the
//     Report is byte-identical — the owner-shard merge is positional and
//     the decide chunks share no state.
//   - serial exactness where semantics allow: SingleChoice and StaleBatch
//     at any block size; the load-coupled round policies at Block = 1
//     (one-round blocks see fresh loads, and the pre-drawn stream is the
//     serial stream by FillRounds' replay guarantee).
//   - bounded divergence where exactness is impossible: wide-block
//     sharding changes only the staleness of the loads a round sees, so
//     gap statistics must stay within coupling distance of serial.
//
// CI runs this file under -race; the pool's channel edges make every
// cross-worker access ordered, so any missing happens-before is caught
// even on a single-CPU host (GOMAXPROCS is forced up where needed).

// shardStores is the store sweep of the bit-identity properties: one
// loadElem stencil representative (dense), the escape-coded compact store,
// and the hand-specialized nibble packing.
var shardStores = []loadvec.StoreKind{loadvec.StoreDense, loadvec.StoreCompact, loadvec.StoreNibble}

// shardExactCases enumerates (policy, params) pairs whose sharded rounds
// promise serial bit-identity at Block = 1.
var shardExactCases = []struct {
	name   string
	policy Policy
	p      Params
}{
	{"kd", KDChoice, Params{N: 96, K: 4, D: 12}},
	{"kd-serialized", SerializedKD, Params{N: 96, K: 3, D: 8, Sigma: []int{2, 0, 1}}},
	{"dchoice", DChoice, Params{N: 96, D: 3}},
	{"dchoice-coarse", CoarseDChoice, Params{N: 96, D: 4, Quantum: 2}},
	{"single", SingleChoice, Params{N: 96}},
}

// TestShardedBlock1MatchesSerial: at Block = 1 every round is decided
// against fresh loads, so the sharded engine must reproduce the serial
// process bit-for-bit — for every eligible policy, store, and shard count.
func TestShardedBlock1MatchesSerial(t *testing.T) {
	const seed, m = 777, 4*32 + 7 // partial final round included
	for _, tc := range shardExactCases {
		for _, store := range shardStores {
			for _, shards := range []int{2, 3, 8} {
				ref := MustNew(tc.policy, withStore(tc.p, store), xrand.New(seed))
				p := withStore(tc.p, store)
				p.Shards = shards
				p.Block = 1
				got := MustNew(tc.policy, p, xrand.New(seed))
				ref.Place(m)
				got.Place(m)
				stateEqual(t, fmt.Sprintf("%s/%s/shards=%d", tc.name, store, shards), ref, got)
				got.Close()
			}
		}
	}
}

func withStore(p Params, store loadvec.StoreKind) Params {
	p.Store = store
	return p
}

// TestShardedReportIndependentOfShardCount: with the block size fixed, the
// Report must be byte-identical for every shard count — the chunk
// partition is the only P-dependent quantity and must not leak into
// results. OnePlusBeta (serial-divergent by design) is covered here too:
// its sharded law must still be P-independent.
func TestShardedReportIndependentOfShardCount(t *testing.T) {
	const seed, m = 424242, 901
	cases := append(shardExactCases[:len(shardExactCases):len(shardExactCases)],
		struct {
			name   string
			policy Policy
			p      Params
		}{"oneplusbeta", OnePlusBeta, Params{N: 96, Beta: 0.7}})
	for _, tc := range cases {
		for _, store := range shardStores {
			for _, block := range []int{1, 7, 64} {
				var ref *Process
				for _, shards := range []int{2, 3, 4, 8} {
					p := withStore(tc.p, store)
					p.Shards = shards
					p.Block = block
					got := MustNew(tc.policy, p, xrand.New(seed))
					got.Place(m)
					if ref == nil {
						ref = got
						continue
					}
					stateEqual(t, fmt.Sprintf("%s/%s/block=%d/shards=%d", tc.name, store, block, shards), ref, got)
					got.Close()
				}
				ref.Close()
			}
		}
	}
}

// TestShardedSingleMatchesSerialAnyBlock: SingleChoice destinations never
// read loads, so sharding is exact at EVERY block size, not just 1.
func TestShardedSingleMatchesSerialAnyBlock(t *testing.T) {
	const seed, m = 5150, 1234
	for _, block := range []int{0, 1, 13, 256} {
		ref := MustNew(SingleChoice, Params{N: 64}, xrand.New(seed))
		got := MustNew(SingleChoice, Params{N: 64, Shards: 4, Block: block}, xrand.New(seed))
		ref.Place(m)
		got.Place(m)
		stateEqual(t, fmt.Sprintf("single/block=%d", block), ref, got)
		got.Close()
	}
}

// TestShardedAsyncPipelineMatchesInline: composing Shards with Pipeline
// swaps the block source from inline fills to the async producer; the
// stream (and so the Report) must not change. GOMAXPROCS is forced up so
// the async engine actually engages on a single-CPU CI host.
func TestShardedAsyncPipelineMatchesInline(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const seed, m = 90125, 2222
	for _, tc := range []struct {
		name   string
		policy Policy
		p      Params
	}{
		{"kd", KDChoice, Params{N: 200, K: 2, D: 64, Shards: 4}},
		{"dchoice", DChoice, Params{N: 200, D: 3, Shards: 4}},
		{"oneplusbeta", OnePlusBeta, Params{N: 200, Beta: 0.4, Shards: 4}},
		{"single", SingleChoice, Params{N: 200, Shards: 4}},
	} {
		ref := MustNew(tc.policy, tc.p, xrand.New(seed))
		p := tc.p
		p.Pipeline = true
		got := MustNew(tc.policy, p, xrand.New(seed))
		ref.Place(m)
		got.Place(m)
		stateEqual(t, tc.name+"/sharded-async", ref, got)
		ref.Close()
		got.Close()
	}
}

// TestShardedObserverContract: the sharded kd rounds must honor the full
// observer contract — raw samples in draw order, the multiplicity rule,
// consistent heights — which the ruleChecker enforces per round.
func TestShardedObserverContract(t *testing.T) {
	pr := MustNew(KDChoice, Params{N: 128, K: 2, D: 9, Shards: 3}, xrand.New(44))
	defer pr.Close()
	rc := &ruleChecker{t: t}
	pr.SetObserver(rc)
	pr.Place(512)
	if rc.rounds != pr.Rounds() {
		t.Fatalf("observer saw %d rounds, process ran %d", rc.rounds, pr.Rounds())
	}
	if rc.maxSeen != pr.MaxLoad() {
		t.Fatalf("max height seen %d != max load %d", rc.maxSeen, pr.MaxLoad())
	}
}

// TestShardedConservation: balls, rounds, and message accounting must obey
// the policy's invariants under sharding, including partial final rounds
// (the ranked-prefix apply) and ball counts far from block multiples.
func TestShardedConservation(t *testing.T) {
	for _, m := range []int{1, 5, 4*100 + 3, 4 * 64} {
		pr := MustNew(KDChoice, Params{N: 64, K: 4, D: 9, Shards: 4, Block: 16}, xrand.New(7))
		pr.Place(m)
		if pr.Balls() != m {
			t.Fatalf("m=%d: placed %d balls", m, pr.Balls())
		}
		wantRounds := (m + 3) / 4
		if pr.Rounds() != wantRounds {
			t.Fatalf("m=%d: %d rounds, want %d", m, pr.Rounds(), wantRounds)
		}
		if pr.Messages() != int64(wantRounds)*9 {
			t.Fatalf("m=%d: %d messages, want %d", m, pr.Messages(), int64(wantRounds)*9)
		}
		sum := 0
		for _, v := range pr.Loads() {
			sum += v
		}
		if sum != m {
			t.Fatalf("m=%d: loads sum to %d", m, sum)
		}
		pr.Close()
	}
}

// TestShardedResetInvalidatesDecisions: Reset mid-block must drop buffered
// decisions (they were made against the old loads) while keeping the
// stream un-rewound, and the process must stay deterministic: two
// identically driven processes agree after interleaved Resets, and the
// post-Reset ball count starts from zero.
func TestShardedResetInvalidatesDecisions(t *testing.T) {
	drive := func() *Process {
		pr := MustNew(KDChoice, Params{N: 64, K: 2, D: 8, Shards: 3, Block: 32}, xrand.New(99))
		pr.Place(37) // mid-block: 18 of 32 rounds applied
		pr.Reset()
		pr.Place(50)
		return pr
	}
	a, b := drive(), drive()
	defer a.Close()
	defer b.Close()
	stateEqual(t, "reset-determinism", a, b)
	if a.Balls() != 50 {
		t.Fatalf("post-Reset balls = %d, want 50", a.Balls())
	}
	// The re-decided tail must see the EMPTY bins: max load after 50 balls
	// in 64 bins under (2,8)-choice is far below what stale pre-Reset
	// decisions (loads near 37/64 higher) could produce; 2 is the
	// theoretical floor's neighborhood.
	if a.MaxLoad() > 3 {
		t.Fatalf("post-Reset max load %d: stale decisions applied?", a.MaxLoad())
	}
}

// TestShardedKernelSeam: forcing the interface kernel after New must
// reroute the sharded gather too (the engine re-reads pr.kern each
// superstep); specialized and interface sharded runs stay bit-identical.
func TestShardedKernelSeam(t *testing.T) {
	const seed, m = 31337, 600
	p := Params{N: 96, K: 3, D: 8, Shards: 4, Block: 8}
	ref := MustNew(KDChoice, p, xrand.New(seed))
	got := MustNew(KDChoice, p, xrand.New(seed))
	got.forceInterfaceKernel()
	ref.Place(m)
	got.Place(m)
	stateEqual(t, "sharded/iface-kernel", ref, got)
	ref.Close()
	got.Close()
}

// meanGapOver runs r independent seeds of (policy, params) to m balls and
// returns the mean final gap.
func meanGapOver(t *testing.T, policy Policy, p Params, m, runs int) float64 {
	t.Helper()
	sum := 0.0
	for r := 0; r < runs; r++ {
		pr := MustNew(policy, p, xrand.NewStream(0xdead, uint64(r)))
		pr.Place(m)
		sum += pr.Gap()
		pr.Close()
	}
	return sum / float64(runs)
}

// TestShardedStalenessDivergenceBounded: sharded kd and dchoice see
// within-block-stale loads, so per-seed divergence from serial is expected
// — but the staleness horizon is the BLOCK, so with blocks small relative
// to the run the allocation LAW barely moves: the mean gap over many seeds
// must stay within coupling distance of the serial mean. (At the opposite
// extreme — one block swallowing the whole run — every decision sees empty
// bins and the gap legitimately approaches single-choice; that frontier is
// measured, not bounded, by the internal/experiments staleness study.) The
// tolerance mirrors the distributional pins elsewhere in the suite
// (majorization_test.go): a broken merge or a load-reading race shifts the
// mean by whole units, an order of magnitude past the bound.
func TestShardedStalenessDivergenceBounded(t *testing.T) {
	const runs = 40
	for _, tc := range []struct {
		name   string
		policy Policy
		p      Params
		m      int
	}{
		// Block = 4 rounds: 8 (kd) / 4 (dchoice) balls of staleness per
		// block against 256 bins — a few hundredths of a load unit of
		// drift per horizon (measured kd frontier: 1.00 serial, 1.15 at
		// Block=4, 1.90 at Block=16, 3.75 at Block=64).
		{"kd", KDChoice, Params{N: 256, K: 2, D: 8, Block: 4}, 4 * 256},
		{"dchoice", DChoice, Params{N: 256, D: 2, Block: 4}, 4 * 256},
	} {
		serial := meanGapOver(t, tc.policy, withBlockCleared(tc.p), tc.m, runs)
		p := tc.p
		p.Shards = 4
		sharded := meanGapOver(t, tc.policy, p, tc.m, runs)
		if diff := sharded - serial; diff < -0.35 || diff > 0.35 {
			t.Fatalf("%s: mean gap serial %.3f vs sharded %.3f (diff %.3f) exceeds coupling bound", tc.name, serial, sharded, diff)
		}
		// The frontier must be monotone in the horizon: quadrupling the
		// block cannot help, and a much wider horizon must cost strictly
		// more than the near-serial small block (a flat frontier would
		// mean staleness is not actually bounded by the block).
		p.Block = 64
		wide := meanGapOver(t, tc.policy, p, tc.m, runs)
		if wide < sharded-0.15 {
			t.Fatalf("%s: wide-block mean gap %.3f below small-block %.3f: staleness not governed by Block", tc.name, wide, sharded)
		}
	}
}

// withBlockCleared strips the Block knob for the serial reference (serial
// results are block-invariant, but keep the baseline at the default).
func withBlockCleared(p Params) Params {
	p.Block = 0
	return p
}

// TestShardedOnePlusBetaDistribution: the recast (1+β) law (nonce-derived
// coin and tie) must match the serial law in distribution: mean gap within
// tolerance, and the message rate must reflect the β mix (1+β probes per
// ball on average).
func TestShardedOnePlusBetaDistribution(t *testing.T) {
	const runs, m = 40, 4 * 256
	p := Params{N: 256, Beta: 0.5}
	serial := meanGapOver(t, OnePlusBeta, p, m, runs)
	ps := p
	ps.Shards = 4
	ps.Block = 32 // staleness horizon: 32 balls against 256 bins
	sharded := meanGapOver(t, OnePlusBeta, ps, m, runs)
	if diff := sharded - serial; diff < -0.5 || diff > 0.5 {
		t.Fatalf("mean gap serial %.3f vs sharded %.3f: recast law diverges", serial, sharded)
	}
	pr := MustNew(OnePlusBeta, ps, xrand.New(5))
	pr.Place(m)
	rate := float64(pr.Messages()) / float64(m)
	if rate < 1.40 || rate > 1.60 {
		t.Fatalf("message rate %.3f per ball, want ~1.5 (β=0.5)", rate)
	}
	pr.Close()
}

// TestShardedAllocationFree: every sharded path must place balls with
// ZERO allocations per round in steady state — the superstep refill
// (dispatch, gather, decide) included, since AllocsPerRun's 200 rounds
// cross block boundaries for every block size below 200. This pins the
// satellite fix for the 528 B/round sharded StaleBatch leak: the
// persistent pool replaced the per-round goroutine launches.
func TestShardedAllocationFree(t *testing.T) {
	cases := []struct {
		name   string
		policy Policy
		p      Params
	}{
		{"kd/shards=2", KDChoice, Params{N: 4096, K: 2, D: 64, Shards: 2}},
		{"kd/shards=4/compact", KDChoice, Params{N: 4096, K: 2, D: 64, Shards: 4, Store: loadvec.StoreCompact}},
		{"kd/shards=4/block=8", KDChoice, Params{N: 4096, K: 2, D: 64, Shards: 4, Block: 8}},
		{"kd-serialized/shards=4", SerializedKD, Params{N: 4096, K: 3, D: 8, Shards: 4}},
		{"dchoice/shards=4", DChoice, Params{N: 4096, D: 3, Shards: 4}},
		{"dchoice-coarse/shards=4", CoarseDChoice, Params{N: 4096, D: 4, Shards: 4}},
		{"single/shards=4", SingleChoice, Params{N: 4096, Shards: 4}},
		{"oneplusbeta/shards=4", OnePlusBeta, Params{N: 4096, Beta: 0.5, Shards: 4}},
		{"stale-batch/shards=2", StaleBatch, Params{N: 4096, K: 32, D: 3, Shards: 2}},
		{"stale-batch/shards=4", StaleBatch, Params{N: 4096, K: 32, D: 3, Shards: 4}},
		{"stale-batch/shards=8/nibble", StaleBatch, Params{N: 4096, K: 32, D: 3, Shards: 8, Store: loadvec.StoreNibble}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pr := MustNew(tc.policy, tc.p, xrand.New(9))
			defer pr.Close()
			pr.Place(4096) // warm scratch buffers across a block boundary
			if avg := testing.AllocsPerRun(200, pr.Round); avg != 0 {
				t.Fatalf("%v allocs per round, want 0", avg)
			}
		})
	}
}

// TestShardedGOMAXPROCSInvariance: the engine must produce the same
// Report whether the workers truly run in parallel or are interleaved on
// one P — scheduling must not be able to reach results.
func TestShardedGOMAXPROCSInvariance(t *testing.T) {
	const seed, m = 1213, 777
	p := Params{N: 128, K: 2, D: 16, Shards: 4}
	run := func(procs int) *Process {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		pr := MustNew(KDChoice, p, xrand.New(seed))
		pr.Place(m)
		return pr
	}
	a, b := run(1), run(4)
	defer a.Close()
	defer b.Close()
	stateEqual(t, "gomaxprocs-1-vs-4", a, b)
}
