package core

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/xrand"
)

// meanMaxLoad runs the process `runs` times with seeds derived from seed and
// returns the mean maximum load. n balls into n bins.
func meanMaxLoad(t *testing.T, policy Policy, p Params, n, runs int, seed uint64) float64 {
	t.Helper()
	var o stats.Online
	for i := 0; i < runs; i++ {
		pr := MustNew(policy, p, xrand.NewStream(seed, uint64(i)))
		pr.Place(n)
		o.Add(float64(pr.MaxLoad()))
	}
	return o.Mean()
}

// The tests below verify the paper's Section 3 majorization properties at
// the level of the expected maximum load (majorization of B_{<=1} implies
// stochastic ordering of the max): with 300 paired runs the standard error
// is well under the 0.15 tolerance, and the seeds are fixed, so the tests
// are deterministic.
const (
	majN    = 1024
	majRuns = 300
	majTol  = 0.15
)

// Property (ii): A(k, d+alpha) is majorized by A(k, d) — more probes never
// hurt.
func TestMajorizationPropertyII(t *testing.T) {
	cases := []struct{ k, d, alpha int }{
		{2, 3, 3}, {1, 2, 2}, {4, 5, 4},
	}
	for _, tc := range cases {
		more := meanMaxLoad(t, KDChoice, Params{N: majN, K: tc.k, D: tc.d + tc.alpha}, majN, majRuns, 1001)
		base := meanMaxLoad(t, KDChoice, Params{N: majN, K: tc.k, D: tc.d}, majN, majRuns, 1002)
		if more > base+majTol {
			t.Fatalf("(%d,%d) mean %.3f should not exceed (%d,%d) mean %.3f",
				tc.k, tc.d+tc.alpha, more, tc.k, tc.d, base)
		}
	}
}

// Property (iii): A(k-alpha, d) is majorized by A(k, d) — placing fewer
// balls per round with the same probes never hurts.
func TestMajorizationPropertyIII(t *testing.T) {
	cases := []struct{ k, d, alpha int }{
		{3, 4, 2}, {4, 6, 3},
	}
	for _, tc := range cases {
		fewer := meanMaxLoad(t, KDChoice, Params{N: majN, K: tc.k - tc.alpha, D: tc.d}, majN, majRuns, 1003)
		base := meanMaxLoad(t, KDChoice, Params{N: majN, K: tc.k, D: tc.d}, majN, majRuns, 1004)
		if fewer > base+majTol {
			t.Fatalf("(%d,%d) mean %.3f should not exceed (%d,%d) mean %.3f",
				tc.k-tc.alpha, tc.d, fewer, tc.k, tc.d, base)
		}
	}
}

// Property (iv): A(alpha*k, alpha*d) is majorized by A(k, d) — scaling a
// round up shares information across more balls.
func TestMajorizationPropertyIV(t *testing.T) {
	cases := []struct{ k, d, alpha int }{
		{1, 2, 2}, {1, 2, 4}, {2, 3, 2},
	}
	for _, tc := range cases {
		scaled := meanMaxLoad(t, KDChoice, Params{N: majN, K: tc.alpha * tc.k, D: tc.alpha * tc.d}, majN, majRuns, 1005)
		base := meanMaxLoad(t, KDChoice, Params{N: majN, K: tc.k, D: tc.d}, majN, majRuns, 1006)
		if scaled > base+majTol {
			t.Fatalf("(%d,%d) mean %.3f should not exceed (%d,%d) mean %.3f",
				tc.alpha*tc.k, tc.alpha*tc.d, scaled, tc.k, tc.d, base)
		}
	}
}

// Property (v): A(k, d) is majorized by A(k+alpha, d+alpha) — the sandwich
// direction used for the lower bound (A(1, d-k+1) <= A(k,d)).
func TestMajorizationPropertyV(t *testing.T) {
	cases := []struct{ k, d, alpha int }{
		{1, 2, 1}, {1, 2, 3}, {2, 4, 2},
	}
	for _, tc := range cases {
		base := meanMaxLoad(t, KDChoice, Params{N: majN, K: tc.k, D: tc.d}, majN, majRuns, 1007)
		bigger := meanMaxLoad(t, KDChoice, Params{N: majN, K: tc.k + tc.alpha, D: tc.d + tc.alpha}, majN, majRuns, 1008)
		if base > bigger+majTol {
			t.Fatalf("(%d,%d) mean %.3f should not exceed (%d,%d) mean %.3f",
				tc.k, tc.d, base, tc.k+tc.alpha, tc.d+tc.alpha, bigger)
		}
	}
}

// TestTheorem2Sandwich exercises the heavy-load majorization chain
// A(1, d-k+1) <= A(k,d) <= A(1, floor(d/k)) with m = 8n balls and d >= 2k.
func TestTheorem2Sandwich(t *testing.T) {
	const n, runs = 512, 120
	const k, d = 2, 6
	m := 8 * n
	meanHeavy := func(policy Policy, p Params, seed uint64) float64 {
		var o stats.Online
		for i := 0; i < runs; i++ {
			pr := MustNew(policy, p, xrand.NewStream(seed, uint64(i)))
			pr.Place(m)
			o.Add(float64(pr.MaxLoad()))
		}
		return o.Mean()
	}
	// A <=mj B means B is the worse process, so the expected mean max-load
	// ordering is A(1, d-k+1) <= A(k,d) <= A(1, floor(d/k)).
	lower := meanHeavy(DChoice, Params{N: n, D: d - k + 1}, 2001) // A(1, d-k+1)
	mid := meanHeavy(KDChoice, Params{N: n, K: k, D: d}, 2002)    // A(k, d)
	upper := meanHeavy(DChoice, Params{N: n, D: d / k}, 2003)     // A(1, floor(d/k))
	if lower > mid+majTol {
		t.Fatalf("heavy case: A(1,%d) mean %.3f exceeds A(%d,%d) mean %.3f", d-k+1, lower, k, d, mid)
	}
	if mid > upper+majTol {
		t.Fatalf("heavy case: A(%d,%d) mean %.3f exceeds A(1,%d) mean %.3f", k, d, mid, d/k, upper)
	}
}

// TestTable1SpotChecks reproduces a handful of Table 1 cells at the paper's
// full scale n = 3*2^16 with 3 runs each, asserting the observed max load
// falls in the paper's reported value set (padded by one to keep the test
// deterministic-robust at 3 samples).
func TestTable1SpotChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale Table 1 spot checks skipped in -short mode")
	}
	const n = 3 * (1 << 16) // 196608, the paper's n
	cases := []struct {
		k, d     int
		lo, hi   int // acceptable max-load range (paper values +/- 1)
		paperVal string
	}{
		{1, 2, 3, 5, "3, 4"},
		{1, 5, 2, 3, "2"},
		{2, 3, 3, 5, "4"},
		{8, 9, 3, 5, "4"},
		{8, 17, 2, 4, "2, 3"},
		{128, 193, 2, 3, "2"},
	}
	for _, tc := range cases {
		for run := 0; run < 3; run++ {
			pr := MustNew(KDChoice, Params{N: n, K: tc.k, D: tc.d}, xrand.NewStream(3001, uint64(tc.k*1000+tc.d*7+run)))
			pr.Place(n)
			got := pr.MaxLoad()
			if got < tc.lo || got > tc.hi {
				t.Errorf("(%d,%d)-choice run %d: max load %d outside [%d,%d] (paper: %s)",
					tc.k, tc.d, run, got, tc.lo, tc.hi, tc.paperVal)
			}
		}
	}
}

// TestSingleChoiceFullScale checks the classical single-choice max load at
// the paper's n: Table 1 reports 7, 8 or 9.
func TestSingleChoiceFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale check skipped in -short mode")
	}
	const n = 3 * (1 << 16)
	pr := MustNew(SingleChoice, Params{N: n}, xrand.New(123))
	pr.Place(n)
	if got := pr.MaxLoad(); got < 6 || got > 11 {
		t.Fatalf("single-choice max load %d outside sanity range [6,11] (paper: 7-9)", got)
	}
}

// TestMaxLoadMonotoneInD: for fixed k the expected max load should not
// increase with d (consequence of property (ii)).
func TestMaxLoadMonotoneInD(t *testing.T) {
	const n, runs = 1024, 150
	prev := 1e18
	for _, d := range []int{3, 5, 9, 17} {
		m := meanMaxLoad(t, KDChoice, Params{N: n, K: 2, D: d}, n, runs, 4001)
		if m > prev+majTol {
			t.Fatalf("mean max load increased from %.3f to %.3f at d=%d", prev, m, d)
		}
		prev = m
	}
}

// TestHeavyLoadGapStabilizes: Theorem 2's consequence that the gap
// M - m/n stays bounded as m grows (d >= 2k). The gap at m=16n should not
// exceed the gap at m=4n by more than a constant.
func TestHeavyLoadGapStabilizes(t *testing.T) {
	const n, runs = 256, 60
	gapAt := func(mult int, seed uint64) float64 {
		var o stats.Online
		for i := 0; i < runs; i++ {
			pr := MustNew(KDChoice, Params{N: n, K: 2, D: 4}, xrand.NewStream(seed, uint64(i)))
			pr.Place(mult * n)
			o.Add(pr.Gap())
		}
		return o.Mean()
	}
	g4 := gapAt(4, 5001)
	g16 := gapAt(16, 5002)
	if g16 > g4+1.0 {
		t.Fatalf("gap grew from %.3f (m=4n) to %.3f (m=16n); should be ~constant", g4, g16)
	}
}
