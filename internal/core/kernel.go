package core

// This file is the devirtualized kernel layer: the store-touching inner
// loops of the round engine (slot materialization with its bin-load reads,
// ball placement, the d-choice argmin scan, the StaleBatch decision scan)
// are specialized per concrete bin store so every load read compiles to a
// direct array access instead of a dynamic interface call.
//
// The specialization mechanism is generics over the RAW LOAD ELEMENT TYPE
// (~int for the dense store, ~uint16 for the compact store, ~int32 for the
// histogram store): the three element widths have distinct GC shapes, so
// the compiler stencils a full instantiation per store in which indexing
// the load slice is straight-line inlined code the optimizer can
// bounds-check-eliminate, schedule, and overlap across loop iterations.
// (Generics over the store POINTER types would not achieve this: all
// pointers share one GC shape, so their method calls stay behind a shared
// dictionary and cost as much as interface dispatch.) The compact store's
// escape sentinel rides along as a plain value — a cell equal to esc
// defers to the wide side table; dense and hist pass esc = -1, which no
// cell can hold, so their escape branch is statically dead weight only.
//
// Two further raw layouts fall outside the loadElem stencil and get
// hand-specialized kernels: the nibble store packs two bins per byte (the
// gather unpacks with one shift+mask, escape sentinel 15 deferring to the
// wide table), and the sketch store reads a depth-way minimum over raw
// count-min counter rows (one-sided estimates; see loadvec/approx.go).
//
// The round loop pays ONE dynamic dispatch per round (through kernelOps)
// instead of one per bin access. The last kernelOps implementation,
// kernIface, routes every access through the loadvec.Store interface: it
// is the fallback for store implementations newKernel does not recognize,
// and the reference the specialized kernels are pinned bit-identical
// against in store_equivalence_test.go. The store-free ranking tail
// (rankFromSlots in select.go) is shared by every path, so the selection
// logic itself cannot drift.

import (
	"repro/internal/loadvec"
	"repro/internal/sketch"
)

// loadElem enumerates the raw per-bin element types of the concrete
// stores; each has its own GC shape, forcing one full kernel instantiation
// per store.
type loadElem interface {
	~int | ~int32 | ~uint16
}

// kernelOps is the per-round dispatch seam between the policy round
// functions and the store-specialized kernels: one dynamic call per round
// (or per StaleBatch ball), with all per-bin work devirtualized inside.
type kernelOps interface {
	// fastSelect groups pr.samples, materializes the round's slots, and
	// returns the toPlace minimum slots ranked ascending (the counting
	// selection kernel). The result aliases process scratch.
	fastSelect(pr *Process, nonce uint64, toPlace int) []slot
	// placeSlots commits one ball per selected slot and returns the
	// observation buffers (nil, nil when no observer is installed).
	placeSlots(pr *Process, sel []slot) (placed, heights []int)
	// dchoiceBest returns the least-loaded of pr.samples with ties broken
	// by the per-round keyed hash (the greedy[d] argmin scan).
	dchoiceBest(pr *Process, nonce uint64) int
	// staleDecide returns the destination of one StaleBatch ball judged
	// against the frozen round-start loads. Read-only: the sharded round
	// calls it concurrently.
	staleDecide(nonce uint64, ball int, samples []int) int
	// bulkAdd is the store-specific batch increment (no heights observed).
	bulkAdd(bins []int)
	// addW is the weighted increment of the online serving path: w load
	// units into one bin, returning the bin's new load. Each specialized
	// kernel calls its concrete store's AddN directly, so the compiler
	// devirtualizes (and can inline) the store fast path.
	addW(bin, w int) int
	// subW is the weighted decrement (ball deletion); same devirtualized
	// dispatch as addW.
	subW(bin, w int) int
	// bulkSub is the store-specific batch decrement — the deletion mirror
	// of bulkAdd.
	bulkSub(bins []int)
	// loadAt reads one bin's load (decision load: an estimate on the
	// sketch store). The per-probe read of the sequential ThresholdChoice
	// scan; devirtualized like every other per-bin access.
	loadAt(bin int) int
	// gatherLoads fills pr.ldv[:len(pr.samples)] with the sampled bins'
	// loads — the gather pass of CoarseDChoice's quantized argmin, shared
	// with fastSelect's first phase.
	gatherLoads(pr *Process)
	// shardGather fills ldv[i] for every i with lo <= samples[i] < hi —
	// the owner-bounded gather pass of the sharded superstep engine
	// (shard.go). Read-only on the store and positional on ldv, so P
	// workers with disjoint bin ranges fill disjoint cells of the same
	// slice concurrently, and the merged snapshot is independent of P.
	shardGather(samples, ldv []int, lo, hi int)
}

// newKernel returns the kernel specialized to the concrete store type, or
// the interface fallback for custom stores.
func newKernel(store loadvec.Store) kernelOps {
	switch st := store.(type) {
	case *loadvec.DenseStore:
		return kernDense{st}
	case *loadvec.CompactStore:
		return kernCompact{st}
	case *loadvec.HistStore:
		return kernHist{st}
	case *loadvec.NibbleStore:
		return kernNibble{st}
	case *loadvec.SketchStore:
		return kernSketch{st}
	default:
		return kernIface{store}
	}
}

// forceInterfaceKernel reroutes the process through the interface-dispatch
// kernel — the fallback custom stores get — regardless of the concrete
// store type. It is the test seam for the specialized-vs-interface
// bit-identity properties.
func (pr *Process) forceInterfaceKernel() {
	pr.kern = kernIface{pr.store}
}

// bulkAddMin is the selection size at which placeSlots switches from
// individual adds to the store's batch increment (registerized max/ball
// counters amortize only over larger batches).
const bulkAddMin = 16

// kernDense is the kernel over the dense []int store.
type kernDense struct{ s *loadvec.DenseStore }

func (k kernDense) fastSelect(pr *Process, nonce uint64, toPlace int) []slot {
	return fastSelectTyped(pr, k.s.RawLoads(), -1, nil, nonce, toPlace)
}
func (k kernDense) dchoiceBest(pr *Process, nonce uint64) int {
	return staleDecideTyped(pr.samples, k.s.RawLoads(), -1, nil, nonce, 0)
}
func (k kernDense) staleDecide(nonce uint64, ball int, samples []int) int {
	return staleDecideTyped(samples, k.s.RawLoads(), -1, nil, nonce, ball)
}
func (k kernDense) placeSlots(pr *Process, sel []slot) ([]int, []int) {
	return placeSlotsOn(pr, k.s, sel)
}
func (k kernDense) bulkAdd(bins []int)  { k.s.BulkAdd(bins) }
func (k kernDense) addW(bin, w int) int { return k.s.AddN(bin, w) }
func (k kernDense) subW(bin, w int) int { return k.s.Sub(bin, w) }
func (k kernDense) bulkSub(bins []int)  { k.s.BulkSub(bins) }
func (k kernDense) loadAt(bin int) int  { return k.s.Load(bin) }
func (k kernDense) gatherLoads(pr *Process) {
	gatherTyped(pr.samples, pr.ldv, k.s.RawLoads(), -1, nil)
}
func (k kernDense) shardGather(samples, ldv []int, lo, hi int) {
	gatherOwnedTyped(samples, ldv, k.s.RawLoads(), -1, nil, lo, hi)
}

// kernCompact is the kernel over the 2-bytes/bin compact store.
type kernCompact struct{ s *loadvec.CompactStore }

func (k kernCompact) fastSelect(pr *Process, nonce uint64, toPlace int) []slot {
	small, wide := k.s.RawLoads()
	return fastSelectTyped(pr, small, loadvec.CompactEscape, wide, nonce, toPlace)
}
func (k kernCompact) dchoiceBest(pr *Process, nonce uint64) int {
	small, wide := k.s.RawLoads()
	return staleDecideTyped(pr.samples, small, loadvec.CompactEscape, wide, nonce, 0)
}
func (k kernCompact) staleDecide(nonce uint64, ball int, samples []int) int {
	small, wide := k.s.RawLoads()
	return staleDecideTyped(samples, small, loadvec.CompactEscape, wide, nonce, ball)
}
func (k kernCompact) placeSlots(pr *Process, sel []slot) ([]int, []int) {
	return placeSlotsOn(pr, k.s, sel)
}
func (k kernCompact) bulkAdd(bins []int)  { k.s.BulkAdd(bins) }
func (k kernCompact) addW(bin, w int) int { return k.s.AddN(bin, w) }
func (k kernCompact) subW(bin, w int) int { return k.s.Sub(bin, w) }
func (k kernCompact) bulkSub(bins []int)  { k.s.BulkSub(bins) }
func (k kernCompact) loadAt(bin int) int  { return k.s.Load(bin) }
func (k kernCompact) gatherLoads(pr *Process) {
	small, wide := k.s.RawLoads()
	gatherTyped(pr.samples, pr.ldv, small, loadvec.CompactEscape, wide)
}
func (k kernCompact) shardGather(samples, ldv []int, lo, hi int) {
	small, wide := k.s.RawLoads()
	gatherOwnedTyped(samples, ldv, small, loadvec.CompactEscape, wide, lo, hi)
}

// kernHist is the kernel over the histogram-indexed store.
type kernHist struct{ s *loadvec.HistStore }

func (k kernHist) fastSelect(pr *Process, nonce uint64, toPlace int) []slot {
	return fastSelectTyped(pr, k.s.RawLoads(), -1, nil, nonce, toPlace)
}
func (k kernHist) dchoiceBest(pr *Process, nonce uint64) int {
	return staleDecideTyped(pr.samples, k.s.RawLoads(), -1, nil, nonce, 0)
}
func (k kernHist) staleDecide(nonce uint64, ball int, samples []int) int {
	return staleDecideTyped(samples, k.s.RawLoads(), -1, nil, nonce, ball)
}
func (k kernHist) placeSlots(pr *Process, sel []slot) ([]int, []int) {
	return placeSlotsOn(pr, k.s, sel)
}
func (k kernHist) bulkAdd(bins []int)  { k.s.BulkAdd(bins) }
func (k kernHist) addW(bin, w int) int { return k.s.AddN(bin, w) }
func (k kernHist) subW(bin, w int) int { return k.s.Sub(bin, w) }
func (k kernHist) bulkSub(bins []int)  { k.s.BulkSub(bins) }
func (k kernHist) loadAt(bin int) int  { return k.s.Load(bin) }
func (k kernHist) gatherLoads(pr *Process) {
	gatherTyped(pr.samples, pr.ldv, k.s.RawLoads(), -1, nil)
}
func (k kernHist) shardGather(samples, ldv []int, lo, hi int) {
	gatherOwnedTyped(samples, ldv, k.s.RawLoads(), -1, nil, lo, hi)
}

// kernNibble is the kernel over the 4-bits/bin packed store: the gather
// loops unpack the nibble inline (one shift + mask per read) with the same
// escape-sentinel branch shape as the compact kernel. The packed []uint8
// cells are a fourth raw layout the generic loadElem stencil cannot express
// (two bins share a byte), so the nibble loops are specialized by hand.
type kernNibble struct{ s *loadvec.NibbleStore }

func (k kernNibble) fastSelect(pr *Process, nonce uint64, toPlace int) []slot {
	packed, wide := k.s.RawLoads()
	gatherNibble(pr.samples, pr.ldv, packed, wide)
	return pr.probeAndRank(nonce, toPlace)
}
func (k kernNibble) dchoiceBest(pr *Process, nonce uint64) int {
	packed, wide := k.s.RawLoads()
	return staleDecideNibble(pr.samples, packed, wide, nonce, 0)
}
func (k kernNibble) staleDecide(nonce uint64, ball int, samples []int) int {
	packed, wide := k.s.RawLoads()
	return staleDecideNibble(samples, packed, wide, nonce, ball)
}
func (k kernNibble) placeSlots(pr *Process, sel []slot) ([]int, []int) {
	return placeSlotsOn(pr, k.s, sel)
}
func (k kernNibble) bulkAdd(bins []int)  { k.s.BulkAdd(bins) }
func (k kernNibble) addW(bin, w int) int { return k.s.AddN(bin, w) }
func (k kernNibble) subW(bin, w int) int { return k.s.Sub(bin, w) }
func (k kernNibble) bulkSub(bins []int)  { k.s.BulkSub(bins) }
func (k kernNibble) loadAt(bin int) int  { return k.s.Load(bin) }
func (k kernNibble) gatherLoads(pr *Process) {
	packed, wide := k.s.RawLoads()
	gatherNibble(pr.samples, pr.ldv, packed, wide)
}
func (k kernNibble) shardGather(samples, ldv []int, lo, hi int) {
	packed, wide := k.s.RawLoads()
	gatherOwnedNibble(samples, ldv, packed, wide, lo, hi)
}

// kernSketch is the kernel over the count-min approximate store: every
// load read is a depth-way minimum over the raw counter rows, computed
// inline from the sketch's raw view — no interface dispatch and no call
// into the store on the per-bin path. Loads here are one-sided estimates;
// the equivalence tests pin this kernel bit-identical to the interface
// kernel over the SAME store (exactness across stores is not a sketch
// property).
type kernSketch struct{ s *loadvec.SketchStore }

func (k kernSketch) fastSelect(pr *Process, nonce uint64, toPlace int) []slot {
	rows, seeds, mask := k.s.RawSketch().Raw()
	gatherSketch(pr.samples, pr.ldv, rows, seeds, mask)
	return pr.probeAndRank(nonce, toPlace)
}
func (k kernSketch) dchoiceBest(pr *Process, nonce uint64) int {
	return k.staleDecide(nonce, 0, pr.samples)
}
func (k kernSketch) staleDecide(nonce uint64, ball int, samples []int) int {
	rows, seeds, mask := k.s.RawSketch().Raw()
	best := samples[0]
	bestLoad := sketchEstimate(rows, seeds, mask, best)
	bestTie := mix64(nonce ^ uint64(ball)<<32 ^ uint64(best)*0x9e3779b97f4a7c15)
	for _, cand := range samples[1:] {
		if cand == best {
			continue
		}
		load := sketchEstimate(rows, seeds, mask, cand)
		switch {
		case load < bestLoad:
			best, bestLoad = cand, load
			bestTie = mix64(nonce ^ uint64(ball)<<32 ^ uint64(cand)*0x9e3779b97f4a7c15)
		case load == bestLoad:
			if tie := mix64(nonce ^ uint64(ball)<<32 ^ uint64(cand)*0x9e3779b97f4a7c15); tie < bestTie {
				best = cand
				bestTie = tie
			}
		}
	}
	return best
}
func (k kernSketch) placeSlots(pr *Process, sel []slot) ([]int, []int) {
	return placeSlotsOn(pr, k.s, sel)
}
func (k kernSketch) bulkAdd(bins []int)  { k.s.BulkAdd(bins) }
func (k kernSketch) addW(bin, w int) int { return k.s.AddN(bin, w) }
func (k kernSketch) subW(bin, w int) int { return k.s.Sub(bin, w) }
func (k kernSketch) bulkSub(bins []int)  { k.s.BulkSub(bins) }
func (k kernSketch) loadAt(bin int) int  { return k.s.Load(bin) }
func (k kernSketch) gatherLoads(pr *Process) {
	rows, seeds, mask := k.s.RawSketch().Raw()
	gatherSketch(pr.samples, pr.ldv, rows, seeds, mask)
}
func (k kernSketch) shardGather(samples, ldv []int, lo, hi int) {
	rows, seeds, mask := k.s.RawSketch().Raw()
	gatherOwnedSketch(samples, ldv, rows, seeds, mask, lo, hi)
}

// kernIface is the interface-dispatch fallback kernel: every bin access
// goes through loadvec.Store exactly as the pre-specialization engine did.
type kernIface struct{ s loadvec.Store }

func (k kernIface) fastSelect(pr *Process, nonce uint64, toPlace int) []slot {
	// Load-gather pass through the Store interface (the devirtualized
	// kernels index the raw array here), then the shared probe pass.
	samples := pr.samples
	ldv := pr.ldv[:len(samples)]
	for i, b := range samples {
		ldv[i] = k.s.Load(b)
	}
	return pr.probeAndRank(nonce, toPlace)
}
func (k kernIface) dchoiceBest(pr *Process, nonce uint64) int {
	return k.staleDecide(nonce, 0, pr.samples)
}
func (k kernIface) staleDecide(nonce uint64, ball int, samples []int) int {
	best := samples[0]
	bestLoad := k.s.Load(best)
	bestTie := mix64(nonce ^ uint64(ball)<<32 ^ uint64(best)*0x9e3779b97f4a7c15)
	for _, cand := range samples[1:] {
		if cand == best {
			continue
		}
		load := k.s.Load(cand)
		switch {
		case load < bestLoad:
			best, bestLoad = cand, load
			bestTie = mix64(nonce ^ uint64(ball)<<32 ^ uint64(cand)*0x9e3779b97f4a7c15)
		case load == bestLoad:
			if tie := mix64(nonce ^ uint64(ball)<<32 ^ uint64(cand)*0x9e3779b97f4a7c15); tie < bestTie {
				best = cand
				bestTie = tie
			}
		}
	}
	return best
}
func (k kernIface) placeSlots(pr *Process, sel []slot) ([]int, []int) {
	return placeSlotsOn(pr, k.s, sel)
}
func (k kernIface) bulkAdd(bins []int)  { k.s.BulkAdd(bins) }
func (k kernIface) addW(bin, w int) int { return k.s.AddN(bin, w) }
func (k kernIface) subW(bin, w int) int { return k.s.Sub(bin, w) }
func (k kernIface) bulkSub(bins []int)  { k.s.BulkSub(bins) }
func (k kernIface) loadAt(bin int) int  { return k.s.Load(bin) }
func (k kernIface) gatherLoads(pr *Process) {
	ldv := pr.ldv[:len(pr.samples)]
	for i, b := range pr.samples {
		ldv[i] = k.s.Load(b)
	}
}
func (k kernIface) shardGather(samples, ldv []int, lo, hi int) {
	for i, b := range samples {
		if b >= lo && b < hi {
			ldv[i] = k.s.Load(b)
		}
	}
}

// fastSelectTyped is the specialized entry of the counting kernel: the
// load-gather pass reads every sampled bin's load through a direct inlined
// index into the raw array — d independent reads in a tight loop the CPU
// overlaps at full memory-level parallelism, which is where the interface
// path loses — and hands off to the shared store-free probe/rank pass.
//
//kd:hotpath
func fastSelectTyped[E loadElem](pr *Process, raw []E, esc int, wide map[int]int, nonce uint64, toPlace int) []slot {
	gatherTyped(pr.samples, pr.ldv, raw, esc, wide)
	return pr.probeAndRank(nonce, toPlace)
}

// gatherTyped is the shared load-gather loop of the element-typed kernels:
// it fills ldv[:len(samples)] with the sampled bins' loads via direct
// inlined indexing.
//
//kd:hotpath
func gatherTyped[E loadElem](samples, ldv []int, raw []E, esc int, wide map[int]int) {
	ldv = ldv[:len(samples)]
	for i, b := range samples {
		v := int(raw[b])
		if v == esc {
			v = wide[b] // compact escape; unreachable otherwise
		}
		ldv[i] = v
	}
}

// gatherNibble is the load-gather loop over the packed nibble cells: one
// shift+mask unpack per read, escape cells (nibble 15) deferring to the
// wide side table.
//
//kd:hotpath
func gatherNibble(samples, ldv []int, packed []uint8, wide map[int]int) {
	ldv = ldv[:len(samples)]
	for i, b := range samples {
		v := int(packed[b>>1]>>((b&1)<<2)) & 0xF
		if v == loadvec.NibbleEscape {
			v = wide[b]
		}
		ldv[i] = v
	}
}

// gatherSketch is the load-gather loop over the raw count-min rows: each
// read is a depth-way minimum over the bin's counters.
//
//kd:hotpath
func gatherSketch(samples, ldv []int, rows []uint8, seeds []uint64, mask uint64) {
	ldv = ldv[:len(samples)]
	for i, b := range samples {
		ldv[i] = sketchEstimate(rows, seeds, mask, b)
	}
}

// sketchEstimate computes one bin's estimate from the sketch's raw view —
// the exact hash recipe sketch.CountMin.Cell documents, so the specialized
// and interface kernels read identical values from the same store.
//
//kd:hotpath
func sketchEstimate(rows []uint8, seeds []uint64, mask uint64, bin int) int {
	key := uint64(bin) * 0x9e3779b97f4a7c15
	est := int(rows[sketch.Mix64(seeds[0]^key)&mask])
	base := int(mask) + 1 // row width
	for r := 1; r < len(seeds); r++ {
		if v := int(rows[base+int(sketch.Mix64(seeds[r]^key)&mask)]); v < est {
			est = v
		}
		base += int(mask) + 1
	}
	return est
}

// gatherOwnedTyped is the owner-bounded variant of gatherTyped: it fills
// only the cells whose sampled bin falls in [lo, hi), skipping foreign
// shards' samples. Per-store stenciled like the serial gather so every
// owned read is a direct inlined index.
//
//kd:hotpath
func gatherOwnedTyped[E loadElem](samples, ldv []int, raw []E, esc int, wide map[int]int, lo, hi int) {
	ldv = ldv[:len(samples)]
	for i, b := range samples {
		if b < lo || b >= hi {
			continue
		}
		v := int(raw[b])
		if v == esc {
			v = wide[b] // compact escape; unreachable otherwise
		}
		ldv[i] = v
	}
}

// gatherOwnedNibble is the owner-bounded gather over the packed nibble
// cells. Reads may touch a byte shared with a foreign shard's bin, but
// never a byte another worker WRITES (the decide phase is read-only), so
// concurrent owned gathers are race-free.
//
//kd:hotpath
func gatherOwnedNibble(samples, ldv []int, packed []uint8, wide map[int]int, lo, hi int) {
	ldv = ldv[:len(samples)]
	for i, b := range samples {
		if b < lo || b >= hi {
			continue
		}
		v := int(packed[b>>1]>>((b&1)<<2)) & 0xF
		if v == loadvec.NibbleEscape {
			v = wide[b]
		}
		ldv[i] = v
	}
}

// gatherOwnedSketch is the owner-bounded gather over the raw count-min
// rows. Ownership is by bin id, not by counter cell — counter rows are
// shared across bins by construction — which is fine for the same reason as
// the nibble case: the phase only reads them.
//
//kd:hotpath
func gatherOwnedSketch(samples, ldv []int, rows []uint8, seeds []uint64, mask uint64, lo, hi int) {
	ldv = ldv[:len(samples)]
	for i, b := range samples {
		if b < lo || b >= hi {
			continue
		}
		ldv[i] = sketchEstimate(rows, seeds, mask, b)
	}
}

// argminLdv is the store-free argmin scan over an already-gathered load
// snapshot: the least-loaded sampled bin under quantum-q bucketing, ties
// broken by the keyed hash. It is the one scan body behind the sharded
// decide phase and the serial CoarseDChoice round: ball = 0, q = 1
// reproduces dchoiceBest's arithmetic exactly (the per-ball tie term
// vanishes); ball = 0, q = Quantum is coarseBest; ball = b, q = 1 is
// staleDecide against frozen loads. The duplicate-bin skip (cand == best)
// matches the store-reading scans, so the decisions are bit-identical to
// theirs whenever ldv holds the same loads they would read.
//
//kd:hotpath
func argminLdv(samples, ldv []int, nonce uint64, ball, q int) int {
	best := samples[0]
	bestLoad := ldv[0] / q
	bestTie := mix64(nonce ^ uint64(ball)<<32 ^ uint64(best)*0x9e3779b97f4a7c15)
	for j := 1; j < len(samples); j++ {
		cand := samples[j]
		if cand == best {
			continue
		}
		load := ldv[j] / q
		switch {
		case load < bestLoad:
			best, bestLoad = cand, load
			bestTie = mix64(nonce ^ uint64(ball)<<32 ^ uint64(cand)*0x9e3779b97f4a7c15)
		case load == bestLoad:
			if tie := mix64(nonce ^ uint64(ball)<<32 ^ uint64(cand)*0x9e3779b97f4a7c15); tie < bestTie {
				best = cand
				bestTie = tie
			}
		}
	}
	return best
}

// staleDecideNibble is staleDecideTyped over the packed nibble cells; like
// its typed sibling it must stay a pure function of (raw state, nonce,
// ball, samples) — the sharded StaleBatch round calls it concurrently.
//
//kd:hotpath
func staleDecideNibble(samples []int, packed []uint8, wide map[int]int, nonce uint64, ball int) int {
	best := samples[0]
	bestLoad := int(packed[best>>1]>>((best&1)<<2)) & 0xF
	if bestLoad == loadvec.NibbleEscape {
		bestLoad = wide[best]
	}
	bestTie := mix64(nonce ^ uint64(ball)<<32 ^ uint64(best)*0x9e3779b97f4a7c15)
	for _, cand := range samples[1:] {
		if cand == best {
			continue
		}
		load := int(packed[cand>>1]>>((cand&1)<<2)) & 0xF
		if load == loadvec.NibbleEscape {
			load = wide[cand]
		}
		switch {
		case load < bestLoad:
			best, bestLoad = cand, load
			bestTie = mix64(nonce ^ uint64(ball)<<32 ^ uint64(cand)*0x9e3779b97f4a7c15)
		case load == bestLoad:
			if tie := mix64(nonce ^ uint64(ball)<<32 ^ uint64(cand)*0x9e3779b97f4a7c15); tie < bestTie {
				best = cand
				bestTie = tie
			}
		}
	}
	return best
}

// The greedy[d] argmin scan of dchoiceBest is staleDecideTyped with
// ball = 0: the per-ball tie term uint64(ball)<<32 vanishes, leaving
// exactly the per-(round, bin) keyed hash ballDChoice documents, and the
// duplicate-bin skip is equivalent to the equal-load tie guard. One scan
// body therefore serves both policies.

// staleDecideTyped is the specialized StaleBatch per-ball decision scan; it
// must stay a pure function of (raw state, nonce, ball, samples) — the
// sharded round calls it concurrently.
//
//kd:hotpath
func staleDecideTyped[E loadElem](samples []int, raw []E, esc int, wide map[int]int, nonce uint64, ball int) int {
	best := samples[0]
	bestLoad := int(raw[best])
	if bestLoad == esc {
		bestLoad = wide[best]
	}
	bestTie := mix64(nonce ^ uint64(ball)<<32 ^ uint64(best)*0x9e3779b97f4a7c15)
	for _, cand := range samples[1:] {
		if cand == best {
			continue
		}
		load := int(raw[cand])
		if load == esc {
			load = wide[cand]
		}
		switch {
		case load < bestLoad:
			best, bestLoad = cand, load
			bestTie = mix64(nonce ^ uint64(ball)<<32 ^ uint64(cand)*0x9e3779b97f4a7c15)
		case load == bestLoad:
			if tie := mix64(nonce ^ uint64(ball)<<32 ^ uint64(cand)*0x9e3779b97f4a7c15); tie < bestTie {
				best = cand
				bestTie = tie
			}
		}
	}
	return best
}

// adderStore is the placement constraint: Add/BulkAdd mutate aggregate
// bookkeeping (max load, ball and histogram counters), so placement calls
// the store's own methods — k calls per round, off the per-bin read path.
type adderStore interface {
	Add(bin int) int
	BulkAdd(bins []int)
}

// placeSlotsOn commits the selected slots: the unobserved path uses direct
// (or, for large selections, batch) increments with no height bookkeeping;
// the observed path records each ball's bin and height.
//
//kd:hotpath
func placeSlotsOn[S adderStore](pr *Process, st S, sel []slot) (placed, heights []int) {
	placed, heights = pr.beginObs(len(sel))
	if placed == nil {
		if len(sel) >= bulkAddMin {
			bins := pr.binsBuf[:0]
			for i := range sel {
				bins = append(bins, sel[i].bin)
			}
			pr.binsBuf = bins
			st.BulkAdd(bins)
		} else {
			for i := range sel {
				st.Add(sel[i].bin)
			}
		}
		pr.balls += len(sel)
		return nil, nil
	}
	for s := range sel {
		b := sel[s].bin
		h := st.Add(b)
		placed[s] = b
		heights[s] = h
	}
	pr.balls += len(sel)
	return placed, heights
}

// groupTab is the reusable epoch-stamped grouping scratch of the fused
// kernels: a slot is live iff its stamp equals the current epoch, so a
// superstep of rounds reuses the table with one epoch increment per round
// instead of a per-round clear pass. tab packs (bin+1) in the high 32 bits
// and the sample multiplicity so far in the low 32.
type groupTab struct {
	tab   []uint64
	stamp []uint32
	epoch uint32
}

func newGroupTab(d int) *groupTab {
	size := groupTableSize(d)
	return &groupTab{
		tab:   make([]uint64, size),
		stamp: make([]uint32, size),
	}
}

// nextEpoch starts a new round. On uint32 wraparound the stamps are
// cleared so a slot stamped 4 billion rounds ago can never alias as live.
//
//kd:hotpath
func (gt *groupTab) nextEpoch() uint32 {
	gt.epoch++
	if gt.epoch == 0 {
		for i := range gt.stamp {
			gt.stamp[i] = 0
		}
		gt.epoch = 1
	}
	return gt.epoch
}
