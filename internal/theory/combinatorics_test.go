package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogFactorial(t *testing.T) {
	cases := []struct {
		y    int
		want float64
	}{
		{0, 0}, {1, 0}, {2, math.Log(2)}, {5, math.Log(120)}, {10, math.Log(3628800)},
	}
	for _, tc := range cases {
		if got := LogFactorial(tc.y); math.Abs(got-tc.want) > 1e-9 {
			t.Fatalf("LogFactorial(%d) = %v, want %v", tc.y, got, tc.want)
		}
	}
}

func TestLogFactorialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogFactorial(-1)
}

func TestFactorial(t *testing.T) {
	if got := Factorial(6); math.Abs(got-720) > 1e-6 {
		t.Fatalf("Factorial(6) = %v", got)
	}
	if !math.IsInf(Factorial(200), 1) {
		t.Fatal("Factorial(200) should overflow to +Inf")
	}
}

func TestChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {17, 9, 24310}, {193, 2, 18528},
	}
	for _, tc := range cases {
		if got := Choose(tc.n, tc.k); math.Abs(got-tc.want)/tc.want > 1e-9 {
			t.Fatalf("Choose(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
	}
	if Choose(3, 5) != 0 {
		t.Fatal("Choose(3,5) should be 0")
	}
}

func TestChoosePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogChoose(-1, 0)
}

func TestChooseSymmetryProperty(t *testing.T) {
	if err := quick.Check(func(nRaw, kRaw uint8) bool {
		n := int(nRaw%60) + 1
		k := int(kRaw) % (n + 1)
		a, b := Choose(n, k), Choose(n, n-k)
		return math.Abs(a-b) <= 1e-6*math.Max(a, 1)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoosePascalProperty(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) for 1 <= k <= n-1.
	if err := quick.Check(func(nRaw, kRaw uint8) bool {
		n := int(nRaw%40) + 2
		k := int(kRaw)%(n-1) + 1
		lhs := Choose(n, k)
		rhs := Choose(n-1, k-1) + Choose(n-1, k)
		return math.Abs(lhs-rhs) <= 1e-6*lhs
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLemmaBounds(t *testing.T) {
	n := 1 << 16
	// Lemma 2: 8n/y! decreasing in y; at y=1 it is 8n.
	if got := Lemma2Bound(n, 1); got != 8*float64(n) {
		t.Fatalf("Lemma2Bound(n,1) = %v", got)
	}
	if Lemma2Bound(n, 5) >= Lemma2Bound(n, 4) {
		t.Fatal("Lemma2Bound not decreasing")
	}
	// Lemma 11 is 1/64 of Lemma 2 at equal y.
	ratio := Lemma11Bound(n, 3) / Lemma2Bound(n, 3)
	if math.Abs(ratio-1.0/64.0) > 1e-12 {
		t.Fatalf("bound ratio = %v, want 1/64", ratio)
	}
}

func TestLemma4Bound(t *testing.T) {
	n := 1 << 12
	// Bound is a probability: in [0, 1].
	for j := 1; j <= 3; j++ {
		p := Lemma4Bound(3, 4, n, j, n/8)
		if p < 0 || p > 1 {
			t.Fatalf("Lemma4Bound j=%d out of range: %v", j, p)
		}
	}
	// Decreasing in j (higher overflow counts are rarer).
	if Lemma4Bound(3, 4, n, 2, n/8) > Lemma4Bound(3, 4, n, 1, n/8) {
		t.Fatal("Lemma4Bound not decreasing in j")
	}
	// Increasing in nu_y.
	if Lemma4Bound(3, 4, n, 1, n/16) > Lemma4Bound(3, 4, n, 1, n/4) {
		t.Fatal("Lemma4Bound not increasing in nu_y")
	}
	// Clamped to 1 when nu_y = n.
	if Lemma4Bound(1, 2, n, 1, n) != 1 {
		t.Fatal("Lemma4Bound should clamp to 1")
	}
}

func TestLemma4BoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Lemma4Bound(3, 4, 100, 0, 10)
}

func TestBetaSequence(t *testing.T) {
	n := 1 << 16
	beta := BetaSequence(1, 2, n)
	if len(beta) < 2 {
		t.Fatalf("sequence too short: %v", beta)
	}
	// β0 = n/(6 d_k) with d_k = 2.
	if math.Abs(beta[0]-float64(n)/12) > 1e-9 {
		t.Fatalf("beta0 = %v", beta[0])
	}
	// Strictly decreasing, and the last element is below the threshold.
	for i := 1; i < len(beta); i++ {
		if beta[i] >= beta[i-1] {
			t.Fatalf("beta not decreasing at %d: %v", i, beta)
		}
	}
	if beta[len(beta)-1] >= 6*math.Log(float64(n)) {
		t.Fatal("sequence did not cross the 6 ln n threshold")
	}
}

func TestIStarMatchesTheorem(t *testing.T) {
	// Theorem 4: i* <= ln ln n / ln(d-k+1) (up to rounding at finite n).
	for _, tc := range []struct{ k, d int }{{1, 2}, {2, 4}, {1, 5}, {4, 8}} {
		for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
			istar := IStar(tc.k, tc.d, n)
			bound := LnLn(n)/math.Log(float64(tc.d-tc.k+1)) + 2
			if float64(istar) > bound {
				t.Fatalf("IStar(%d,%d,%d) = %d exceeds theorem bound %.2f",
					tc.k, tc.d, n, istar, bound)
			}
		}
	}
}

func TestIStarGrowsWithN(t *testing.T) {
	// More bins -> more shrinking steps available (weakly).
	a := IStar(1, 2, 1<<10)
	b := IStar(1, 2, 1<<20)
	if b < a {
		t.Fatalf("IStar decreased with n: %d -> %d", a, b)
	}
}
