// Package theory computes the paper's theoretical quantities: the parameter
// d_k = d/(d−k), the Theorem 1 / Corollary 1 / Theorem 2 bound terms, the
// message-cost formulas, and the regime classification used to interpret
// experiments. All bounds are asymptotic with unspecified O(1)/o(1) terms,
// so these functions return the leading terms; experiment code compares
// shapes (growth, ordering, crossovers) rather than absolute values.
package theory

import (
	"fmt"
	"math"
)

// Dk returns d_k = d / (d - k), the paper's central parameter: d_k is O(1)
// in the d-choice-like regime and grows as k approaches d (single-choice
// limit). It panics unless 1 <= k < d.
func Dk(k, d int) float64 {
	if k < 1 || d <= k {
		panic(fmt.Sprintf("theory: Dk requires 1 <= k < d, got k=%d d=%d", k, d))
	}
	return float64(d) / float64(d-k)
}

// LnLn returns ln ln n, clamped to 0 for n <= e (ln ln of small n is
// negative or undefined and every bound in the paper is stated for n → ∞).
func LnLn(n int) float64 {
	if n <= 2 {
		return 0
	}
	l := math.Log(float64(n))
	if l <= 1 {
		return 0
	}
	return math.Log(l)
}

// GapTerm returns ln ln n / ln(d-k+1) — the load-difference term
// (B_1 − B_{β0}) in Theorem 1, which reduces to the classical d-choice
// bound ln ln n / ln d when k = 1.
func GapTerm(k, d, n int) float64 {
	if d-k+1 < 2 {
		return math.Inf(1) // d = k: no filtering power
	}
	return LnLn(n) / math.Log(float64(d-k+1))
}

// CrowdTerm returns ln d_k / ln ln d_k — the B_{β0} term of Theorem 1(ii).
// The expression is asymptotic in d_k; at finite parameters the denominator
// is clamped to >= 1 so the term stays finite and monotone (for d_k <= e,
// where the paper's case (i) applies anyway, the term is 0).
func CrowdTerm(k, d int) float64 {
	dk := Dk(k, d)
	if dk <= math.E {
		return 0
	}
	ln := math.Log(dk)
	lnln := math.Log(ln)
	if lnln < 1 {
		lnln = 1
	}
	return ln / lnln
}

// MaxLoadUpper returns the leading term of the Theorem 1 upper bound on the
// maximum load M(k,d,n): GapTerm + CrowdTerm. The true bound adds O(1)
// (case i) or a (1+o(1)) factor on the crowd term (case ii).
func MaxLoadUpper(k, d, n int) float64 {
	return GapTerm(k, d, n) + CrowdTerm(k, d)
}

// SingleChoiceMaxLoad returns the classical (1+o(1)) ln n / ln ln n leading
// term for single choice (Raab–Steger / ref [15]).
func SingleChoiceMaxLoad(n int) float64 {
	if n <= 2 {
		return 1
	}
	return math.Log(float64(n)) / LnLn(n)
}

// Regime labels the asymptotic regime of a (k,d) pair at a given n.
type Regime int

// Regimes of Theorem 1 and Corollary 1.
const (
	// RegimeDChoiceLike: d_k = O(1) — Theorem 1(i), max load
	// ln ln n / ln(d-k+1) + O(1).
	RegimeDChoiceLike Regime = iota + 1
	// RegimeMixed: d_k → ∞ but below the Corollary 1 threshold — both
	// Theorem 1(ii) terms matter.
	RegimeMixed
	// RegimeSingleLike: d_k >= e^{(ln ln n)^3} — Corollary 1, max load
	// (1 ± o(1)) ln d_k / ln ln d_k.
	RegimeSingleLike
)

// String returns a short label for the regime.
func (r Regime) String() string {
	switch r {
	case RegimeDChoiceLike:
		return "d-choice-like"
	case RegimeMixed:
		return "mixed"
	case RegimeSingleLike:
		return "single-like"
	default:
		return fmt.Sprintf("regime(%d)", int(r))
	}
}

// Classify returns the Theorem 1 regime of (k, d) at n. The O(1)-vs-∞
// distinction is necessarily heuristic at finite n; the cutoffs follow the
// paper: d_k constant (<= 8) is d-choice-like, d_k above e^{(ln ln n)^3} is
// single-like, anything between is mixed.
func Classify(k, d, n int) Regime {
	dk := Dk(k, d)
	if dk <= 8 {
		return RegimeDChoiceLike
	}
	lll := LnLn(n)
	if dk >= math.Exp(lll*lll*lll) {
		return RegimeSingleLike
	}
	return RegimeMixed
}

// Messages returns the total message cost of (k,d)-choice placing m balls
// into n bins: d probes per round over ceil(m/k) rounds. The paper's
// sweet-spot observations — 2n messages with d = 2k and (1+o(1))n messages
// with d = k + Θ(ln n), k = Θ(ln² n) — follow from this formula.
func Messages(k, d, m int) int64 {
	if k < 1 {
		panic("theory: Messages requires k >= 1")
	}
	rounds := (m + k - 1) / k
	return int64(rounds) * int64(d)
}

// MessagesPerBall returns the amortized probe count per ball, d/k.
func MessagesPerBall(k, d int) float64 {
	return float64(d) / float64(k)
}

// Beta0 returns β₀ = n/(6 d_k), the sorted-load-vector checkpoint of the
// upper-bound analysis (Theorem 3 / Figure 1): B_{β0} is bounded by the
// crowd term.
func Beta0(k, d, n int) int {
	b := float64(n) / (6 * Dk(k, d))
	if b < 1 {
		return 1
	}
	return int(b)
}

// GammaStar returns γ* = 4n/d_k, the lower-bound checkpoint (Theorem 6 /
// Figure 2): B_{γ*} ≥ (1−o(1)) ln d_k / ln ln d_k when d_k → ∞.
func GammaStar(k, d, n int) int {
	g := 4 * float64(n) / Dk(k, d)
	if g < 1 {
		return 1
	}
	if g > float64(n) {
		return n
	}
	return int(g)
}

// Gamma0 returns γ₀ = n/d, the checkpoint of the lower-bound load-difference
// analysis (Theorem 7).
func Gamma0(d, n int) int {
	g := n / d
	if g < 1 {
		return 1
	}
	return g
}

// HeavyGapUpper returns the Theorem 2 upper-bound leading term on the load
// above average for m > n balls with d >= 2k: ln ln n / ln floor(d/k).
func HeavyGapUpper(k, d, n int) float64 {
	q := d / k
	if q < 2 {
		return math.Inf(1) // Theorem 2 requires d >= 2k
	}
	return LnLn(n) / math.Log(float64(q))
}

// HeavyGapLower returns the Theorem 2 lower-bound leading term:
// ln ln n / ln(d-k+1).
func HeavyGapLower(k, d, n int) float64 {
	return GapTerm(k, d, n)
}

// TwoChoiceMaxLoad returns the classical ln ln n / ln 2 + Θ(1) leading term
// for d = 2 (Azar et al.), a frequent comparison point in Table 1.
func TwoChoiceMaxLoad(n int) float64 {
	return LnLn(n) / math.Ln2
}
