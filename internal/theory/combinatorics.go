package theory

import "math"

// LogFactorial returns ln(y!) via the log-gamma function.
func LogFactorial(y int) float64 {
	if y < 0 {
		panic("theory: LogFactorial of negative value")
	}
	lg, _ := math.Lgamma(float64(y) + 1)
	return lg
}

// Factorial returns y! as a float64 (overflows to +Inf around y = 171,
// which is fine for the tail bounds it feeds).
func Factorial(y int) float64 {
	return math.Exp(LogFactorial(y))
}

// LogChoose returns ln C(n, k); it panics for k < 0 or n < 0 and returns
// -Inf when k > n (C = 0).
func LogChoose(n, k int) float64 {
	if n < 0 || k < 0 {
		panic("theory: LogChoose with negative arguments")
	}
	if k > n {
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Choose returns C(n, k) as a float64.
func Choose(n, k int) float64 {
	return math.Exp(LogChoose(n, k))
}

// Lemma2Bound returns the Lemma 2 upper bound 8n/y! on µ_y for the single
// choice process (the number of balls of height at least y).
func Lemma2Bound(n, y int) float64 {
	return 8 * float64(n) * math.Exp(-LogFactorial(y))
}

// Lemma11Bound returns the Lemma 11 lower bound n/(8·y!) on ν_y for the
// single choice process (the number of bins with at least y balls), which
// holds with probability 1−exp(−n/(32·y!)).
func Lemma11Bound(n, y int) float64 {
	return float64(n) / 8 * math.Exp(-LogFactorial(y))
}

// Lemma4Bound returns the Lemma 4 tail bound on the number X_r of balls
// placed with height ≥ y+1 in one round of (k,d)-choice, given that ν_y
// bins hold at least y balls:
//
//	Pr(X_r >= j | ν_y) <= C(d, d−k+j) · (ν_y/n)^{d−k+j}.
//
// The returned value is clamped to 1.
func Lemma4Bound(k, d, n, j int, nuY int) float64 {
	if j < 1 || j > k {
		panic("theory: Lemma4Bound requires 1 <= j <= k")
	}
	exp := d - k + j
	p := math.Exp(LogChoose(d, exp) + float64(exp)*math.Log(float64(nuY)/float64(n)))
	if p > 1 {
		return 1
	}
	return p
}

// BetaSequence returns the Theorem 4 layered-induction sequence
//
//	β₀ = n/(6·d_k),   β_{i+1} = 6·(n/k)·C(d, d−k+1)·(β_i/n)^{d−k+1},
//
// truncated at the first i with β_i < 6·ln n (the proof's i*), always
// including that final below-threshold element so callers can see the
// crossing. The sequence decreases doubly exponentially — the heart of the
// upper-bound proof.
func BetaSequence(k, d, n int) []float64 {
	beta := []float64{float64(n) / (6 * Dk(k, d))}
	threshold := 6 * math.Log(float64(n))
	logC := LogChoose(d, d-k+1)
	for beta[len(beta)-1] >= threshold && len(beta) < 64 {
		cur := beta[len(beta)-1]
		next := 6 * float64(n) / float64(k) *
			math.Exp(logC+float64(d-k+1)*math.Log(cur/float64(n)))
		beta = append(beta, next)
	}
	return beta
}

// IStar returns the proof's i*: the largest i with BetaSequence[i] >=
// 6 ln n, i.e. the number of doubly-exponential shrinking steps available
// before the union bound takes over. Theorem 4 shows i* <= ln ln n /
// ln(d−k+1).
func IStar(k, d, n int) int {
	beta := BetaSequence(k, d, n)
	threshold := 6 * math.Log(float64(n))
	istar := 0
	for i, b := range beta {
		if b >= threshold {
			istar = i
		}
	}
	return istar
}
