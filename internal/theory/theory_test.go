package theory

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDk(t *testing.T) {
	cases := []struct {
		k, d int
		want float64
	}{
		{1, 2, 2},
		{1, 193, 193.0 / 192.0},
		{2, 3, 3},
		{192, 193, 193},
		{64, 128, 2},
	}
	for _, tc := range cases {
		if got := Dk(tc.k, tc.d); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("Dk(%d,%d) = %v, want %v", tc.k, tc.d, got, tc.want)
		}
	}
}

func TestDkPanics(t *testing.T) {
	for _, tc := range []struct{ k, d int }{{0, 2}, {2, 2}, {3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Dk(%d,%d) did not panic", tc.k, tc.d)
				}
			}()
			Dk(tc.k, tc.d)
		}()
	}
}

func TestLnLn(t *testing.T) {
	if got := LnLn(2); got != 0 {
		t.Fatalf("LnLn(2) = %v", got)
	}
	n := 1 << 16
	want := math.Log(math.Log(float64(n)))
	if got := LnLn(n); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LnLn(%d) = %v, want %v", n, got, want)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for _, n := range []int{2, 3, 10, 100, 10000, 1 << 20} {
		got := LnLn(n)
		if got < prev {
			t.Fatalf("LnLn not monotone at %d", n)
		}
		prev = got
	}
}

func TestGapTermReducesToDChoice(t *testing.T) {
	// k=1: gap term must equal ln ln n / ln d, the Azar et al. bound.
	n := 1 << 16
	for _, d := range []int{2, 3, 5} {
		want := LnLn(n) / math.Log(float64(d))
		if got := GapTerm(1, d, n); math.Abs(got-want) > 1e-12 {
			t.Fatalf("GapTerm(1,%d) = %v, want %v", d, got, want)
		}
	}
}

func TestGapTermInfiniteWhenNoFiltering(t *testing.T) {
	if got := GapTerm(2, 2, 100); !math.IsInf(got, 1) {
		t.Fatalf("GapTerm(k=d) = %v, want +Inf", got)
	}
}

func TestCrowdTermGrowsWithDk(t *testing.T) {
	// For d = k+1, d_k = d, so the crowd term grows like ln d / ln ln d
	// (with the denominator clamped at 1, the term is monotone throughout).
	prev := 0.0
	for _, k := range []int{4, 16, 64, 256, 1024} {
		got := CrowdTerm(k, k+1)
		if got < prev {
			t.Fatalf("CrowdTerm not monotone at k=%d: %v < %v", k, got, prev)
		}
		prev = got
	}
	// Small d_k: term is suppressed.
	if got := CrowdTerm(1, 2); got != 0 {
		t.Fatalf("CrowdTerm(1,2) = %v, want 0", got)
	}
}

func TestMaxLoadUpperComposition(t *testing.T) {
	n := 1 << 18
	if got, want := MaxLoadUpper(1, 2, n), GapTerm(1, 2, n); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MaxLoadUpper(1,2) = %v, want gap term %v", got, want)
	}
	k, d := 192, 193
	sum := GapTerm(k, d, n) + CrowdTerm(k, d)
	if got := MaxLoadUpper(k, d, n); math.Abs(got-sum) > 1e-12 {
		t.Fatalf("MaxLoadUpper = %v, want %v", got, sum)
	}
}

func TestSingleChoiceMaxLoad(t *testing.T) {
	n := 3 * (1 << 16)
	got := SingleChoiceMaxLoad(n)
	// ln(196608)/lnln(196608) = 12.19/2.50 ~ 4.9; the O(1)-free leading
	// term undershoots the observed 7-9, as expected for a leading term.
	if got < 4 || got > 6 {
		t.Fatalf("SingleChoiceMaxLoad(%d) = %v, outside [4,6]", n, got)
	}
	if SingleChoiceMaxLoad(2) != 1 {
		t.Fatal("degenerate n should return 1")
	}
}

func TestClassify(t *testing.T) {
	n := 3 * (1 << 16)
	cases := []struct {
		k, d int
		want Regime
	}{
		{1, 2, RegimeDChoiceLike},
		{2, 3, RegimeDChoiceLike},
		{8, 9, RegimeMixed},     // d_k = 9 > 8
		{192, 193, RegimeMixed}, // d_k = 193, threshold e^{2.5^3} ~ e^15.6 >> 193
		{1, 193, RegimeDChoiceLike},
	}
	for _, tc := range cases {
		if got := Classify(tc.k, tc.d, n); got != tc.want {
			t.Fatalf("Classify(%d,%d) = %v, want %v", tc.k, tc.d, got, tc.want)
		}
	}
	// Tiny n has (ln ln n)^3 ~ 0, so large d_k goes single-like.
	if got := Classify(63, 64, 16); got != RegimeSingleLike {
		t.Fatalf("Classify(63,64,16) = %v, want single-like", got)
	}
}

func TestRegimeString(t *testing.T) {
	for _, r := range []Regime{RegimeDChoiceLike, RegimeMixed, RegimeSingleLike} {
		if r.String() == "" {
			t.Fatal("empty regime label")
		}
	}
	if Regime(42).String() == "" {
		t.Fatal("unknown regime should still print")
	}
}

func TestMessages(t *testing.T) {
	// The paper's sweet spot: d = 2k gives exactly 2n messages when k | n.
	n := 1 << 16
	k := 256
	if got := Messages(k, 2*k, n); got != int64(2*n) {
		t.Fatalf("Messages(k,2k,n) = %d, want %d", got, 2*n)
	}
	// Partial round rounds up.
	if got := Messages(4, 8, 10); got != 3*8 {
		t.Fatalf("Messages partial = %d, want 24", got)
	}
	// Single choice equivalent: k=1, d=1.
	if got := Messages(1, 1, 100); got != 100 {
		t.Fatalf("Messages(1,1,100) = %d", got)
	}
}

func TestMessagesPerBall(t *testing.T) {
	if got := MessagesPerBall(128, 193); math.Abs(got-193.0/128.0) > 1e-12 {
		t.Fatalf("MessagesPerBall = %v", got)
	}
}

func TestCheckpointsSane(t *testing.T) {
	n := 1 << 16
	for _, tc := range []struct{ k, d int }{{1, 2}, {2, 3}, {8, 9}, {192, 193}} {
		b0 := Beta0(tc.k, tc.d, n)
		gs := GammaStar(tc.k, tc.d, n)
		g0 := Gamma0(tc.d, n)
		if b0 < 1 || b0 > n {
			t.Fatalf("Beta0(%d,%d) = %d out of range", tc.k, tc.d, b0)
		}
		if gs < 1 || gs > n {
			t.Fatalf("GammaStar(%d,%d) = %d out of range", tc.k, tc.d, gs)
		}
		if g0 < 1 || g0 > n {
			t.Fatalf("Gamma0(%d) = %d out of range", tc.d, g0)
		}
		// γ* = 4n/d_k and β0 = n/(6 d_k): γ* = 24 β0 > β0.
		if gs <= b0 {
			t.Fatalf("GammaStar %d should exceed Beta0 %d", gs, b0)
		}
	}
}

func TestHeavyGapBounds(t *testing.T) {
	n := 1 << 16
	// d >= 2k: upper and lower leading terms are finite and ordered
	// (ln(d-k+1) >= ln floor(d/k) for d >= 2k... check a concrete case).
	lo := HeavyGapLower(2, 6, n) // lnln n / ln 5
	hi := HeavyGapUpper(2, 6, n) // lnln n / ln 3
	if lo > hi {
		t.Fatalf("heavy-gap lower %v exceeds upper %v", lo, hi)
	}
	if !math.IsInf(HeavyGapUpper(3, 4, n), 1) {
		t.Fatal("HeavyGapUpper should be +Inf for d < 2k")
	}
}

func TestHeavyGapOrderingProperty(t *testing.T) {
	// For all valid (k, d >= 2k): floor(d/k) <= d-k+1, so the lower leading
	// term never exceeds the upper one.
	if err := quick.Check(func(kRaw, dRaw uint8) bool {
		k := int(kRaw%16) + 1
		d := 2*k + int(dRaw%16)
		n := 1 << 16
		return HeavyGapLower(k, d, n) <= HeavyGapUpper(k, d, n)+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTwoChoiceMaxLoad(t *testing.T) {
	n := 3 * (1 << 16)
	got := TwoChoiceMaxLoad(n)
	// lnln(196608)/ln2 ~ 3.6; Table 1 reports 3-4 for two-choice.
	if got < 3 || got > 4.5 {
		t.Fatalf("TwoChoiceMaxLoad = %v", got)
	}
}

func TestMessagesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Messages(0,...) did not panic")
		}
	}()
	Messages(0, 1, 10)
}
