package experiments

import "testing"

func TestShardFrontier(t *testing.T) {
	pts, err := ShardFrontier(ShardFrontierOpts{
		N: 1 << 10, Runs: 6, Seed: 5,
		Blocks: []int{1, 8, 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	// Block = 1 is bit-identical to the serial baseline: zero inflation,
	// not merely small.
	if pts[0].Block != 1 || pts[0].GapInflation != 0 {
		t.Fatalf("Block=1 inflation = %v, want exactly 0", pts[0].GapInflation)
	}
	rounds := 1 << 9 // n/k
	for _, p := range pts {
		want := (rounds + p.Block - 1) / p.Block
		if p.Syncs != want {
			t.Fatalf("Block=%d: Syncs = %d, want %d", p.Block, p.Syncs, want)
		}
		if p.MeanGap <= 0 {
			t.Fatalf("Block=%d: gap not measured", p.Block)
		}
	}
	// Staleness only hurts: the widest horizon must not beat the
	// bit-identical point by more than run noise.
	if pts[2].GapInflation < pts[0].GapInflation-0.2 {
		t.Fatalf("Block=128 inflation %.3f below Block=1 %.3f", pts[2].GapInflation, pts[0].GapInflation)
	}
}

func TestShardFrontierDefaults(t *testing.T) {
	pts, err := ShardFrontier(ShardFrontierOpts{N: 256, Runs: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("default sweep has %d points, want 5", len(pts))
	}
}
