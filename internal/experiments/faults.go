package experiments

import (
	"fmt"

	kdchoice "repro"
)

// FaultFrontierOpts configures the robustness frontier study.
type FaultFrontierOpts struct {
	// N is the bin count; N balls are placed (the paper's canonical m = n).
	N int
	// K, D are the round shape (default 2, 8).
	K, D int
	// LossRates are the per-probe loss probabilities to sweep
	// (default 0.05, 0.1, 0.2, 0.4).
	LossRates []float64
	// Retries are the retry budgets to sweep at every loss rate
	// (default 0, 2, 8).
	Retries []int
	// FailRate is the per-round bin outage probability layered under
	// every faulty cell (default 0 — pure probe loss); DownFor fixes the
	// outage length in rounds (default 256 when FailRate > 0).
	FailRate float64
	DownFor  int
	// Runs is the repetition count per cell.
	Runs int
	// Seed is the root seed.
	Seed uint64
}

// FaultFrontierPoint is one point of the robustness frontier.
type FaultFrontierPoint struct {
	// LossRate is the per-probe loss probability of the cell's plan.
	LossRate float64
	// Retry is the cell's retry budget: lost probes are replaced by up to
	// this many fresh draws per decision.
	Retry int
	// MeanGap is the faulty cell's mean max−avg gap.
	MeanGap float64
	// GapInflation is MeanGap minus the fault-free baseline's mean gap —
	// the balance price of degraded decisions at this (loss, retry) point.
	GapInflation float64
	// ProbesLost, Retries and Fallbacks are the per-run means of the
	// corresponding fault counters.
	ProbesLost float64
	Retries    float64
	Fallbacks  float64
}

// FaultFrontier measures graceful degradation under the deterministic
// fault layer: the same (k,d)-choice process run fault-free and under a
// grid of (probe-loss rate × retry budget) plans, optionally with bin
// outages layered underneath. Each lost probe deprives a round of one of
// its d choices (DegradeD); the retry budget buys the probes back at the
// price of extra messages (RetryProbes); a round whose every probe is
// lost falls back to a uniform up bin. GapInflation is the measured
// balance cost of that degradation — near 0 when retries restore the
// full probe multiset, growing toward the single-choice gap as survivors
// thin out.
//
// The whole grid (fault-free baseline + every plan) runs as one
// Experiment on the shared worker pool. Faulty cells force the serial
// engine internally, so results are deterministic given the seed and
// independent of the worker count.
func FaultFrontier(opts FaultFrontierOpts) ([]FaultFrontierPoint, error) {
	if opts.K == 0 {
		opts.K = 2
	}
	if opts.D == 0 {
		opts.D = 8
	}
	losses := opts.LossRates
	if len(losses) == 0 {
		losses = []float64{0.05, 0.1, 0.2, 0.4}
	}
	retries := opts.Retries
	if len(retries) == 0 {
		retries = []int{0, 2, 8}
	}
	downFor := opts.DownFor
	if opts.FailRate > 0 && downFor == 0 {
		downFor = 256
	}
	base := kdchoice.Config{
		Bins: opts.N, K: opts.K, D: opts.D,
		Policy: kdchoice.KDChoice, Seed: normalizeSeed(opts.Seed),
	}
	// Cell 0 is the fault-free baseline; cell 1+i*len(retries)+j carries
	// the plan (losses[i], retries[j]).
	cells := make([]kdchoice.Cell, 0, len(losses)*len(retries)+1)
	cells = append(cells, kdchoice.Cell{Config: base})
	for _, loss := range losses {
		for _, retry := range retries {
			plan := &kdchoice.FaultPlan{
				FailRate: opts.FailRate,
				DownFor:  downFor,
				LossProb: loss,
				Retry:    retry,
			}
			cfg := base
			cfg.Faults = plan
			cells = append(cells, kdchoice.Cell{Config: cfg})
		}
	}
	rep, err := kdchoice.Experiment{
		Cells: cells,
		Runs:  opts.Runs,
		Seed:  opts.Seed,
	}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: fault frontier: %w", err)
	}
	serialGap := rep.Cells[0].MeanGap
	out := make([]FaultFrontierPoint, 0, len(losses)*len(retries))
	for i, loss := range losses {
		for j, retry := range retries {
			c := &rep.Cells[1+i*len(retries)+j]
			runs := float64(c.EffectiveRuns)
			out = append(out, FaultFrontierPoint{
				LossRate:     loss,
				Retry:        retry,
				MeanGap:      c.MeanGap,
				GapInflation: c.MeanGap - serialGap,
				ProbesLost:   float64(c.TotalFaults.ProbesLost) / runs,
				Retries:      float64(c.TotalFaults.Retries) / runs,
				Fallbacks:    float64(c.TotalFaults.Fallbacks) / runs,
			})
		}
	}
	return out, nil
}
