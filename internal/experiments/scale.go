package experiments

// The heavy-load scale study: the regime the compact bin stores and the
// pipelined round engine exist for. ScalingGrid and HeavyGrid (see
// experiments.go) walk parameter grids at moderate n; HeavyScale pushes one
// (k, d) shape to production-scale bin counts with m = Mult·n balls,
// running every cell on the compact store with the pipelined engine and
// streaming per-run aggregation, so memory stays ~2 bytes/bin + O(runs)
// regardless of how many runs a cell repeats. n = 10⁷ runs in the default
// configuration; at 10⁸ bins the compact store needs ~200 MB for the load
// state (the dense reference would need 800 MB), which fits commodity
// hardware — see README "Scaling limits & memory".

import (
	"fmt"

	kdchoice "repro"
	"repro/internal/theory"
)

// HeavyScaleOpts configures the heavy-load scale study.
type HeavyScaleOpts struct {
	// K, D are the round shape (default 2, 64 — the repository's tracked
	// acceptance shape; d >= 2k keeps Theorem 2 applicable).
	K, D int
	// Ns are the bin counts (default 1e5, 1e6, 1e7).
	Ns []int
	// Mult is the heavy-load multiplier: each run places Mult·n balls
	// (default 100).
	Mult int
	// Runs is the number of independent runs per cell (default 3).
	Runs int
	// Seed is the root seed.
	Seed uint64
	// Store selects the bin-load representation; nil means the study
	// default, StoreCompact. A pointer distinguishes "unset" from an
	// explicit StoreDense (the zero Store value), so the dense baseline
	// is selectable too.
	Store *kdchoice.Store
	// Workers bounds the shared pool; 0 means GOMAXPROCS.
	Workers int
}

func (o HeavyScaleOpts) withDefaults() HeavyScaleOpts {
	if o.K == 0 {
		o.K = 2
	}
	if o.D == 0 {
		o.D = 64
	}
	if len(o.Ns) == 0 {
		o.Ns = []int{100_000, 1_000_000, 10_000_000}
	}
	if o.Mult == 0 {
		o.Mult = 100
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.Store == nil {
		def := kdchoice.StoreCompact
		o.Store = &def
	}
	return o
}

// HeavyScalePoint is one heavy-load scale measurement.
type HeavyScalePoint struct {
	N       int
	Balls   int
	MeanGap float64
	MeanMax float64
	// AboveAvg is the run-averaged number of bins loaded strictly above
	// the average m/n — ν_{m/n+1}, computed from the streamed occupancy
	// profile (CollectProfiles), so no run ever retains its O(n) load
	// vector.
	AboveAvg float64
	// GapUpper is the Theorem 2 upper leading term (m-independent), the
	// bound the measured gap must stay under as n grows.
	GapUpper float64
}

// HeavyScale runs the heavy-load scale study: Mult·n balls into n bins for
// every n, on the selected store with the pipelined round engine, streaming
// per-run aggregation (no O(n) retention per finished run). The gap
// (max − m/n) is the Theorem 2 quantity; the study shows it stays bounded
// by the m-independent leading term as n scales up.
func HeavyScale(opts HeavyScaleOpts) ([]HeavyScalePoint, error) {
	o := opts.withDefaults()
	cells := make([]kdchoice.Cell, len(o.Ns))
	for i, n := range o.Ns {
		cells[i] = kdchoice.Cell{
			Config: kdchoice.Config{
				Bins:     n,
				K:        o.K,
				D:        o.D,
				Store:    *o.Store,
				Pipeline: true,
				Seed:     o.Seed + uint64(i)*1e6,
			},
			Balls: o.Mult * n,
		}
	}
	rep, err := kdchoice.Experiment{
		Cells:   cells,
		Runs:    o.Runs,
		Seed:    o.Seed,
		Workers: o.Workers,
		// Streamed aggregation: each run folds its sorted/occupancy
		// profile into integer accumulators and drops its load vector, so
		// the study's memory stays ~one store per in-flight run.
		CollectProfiles: true,
	}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: heavy scale: %w", err)
	}
	out := make([]HeavyScalePoint, len(o.Ns))
	for i, n := range o.Ns {
		nu, err := rep.Cells[i].MeanNuY()
		if err != nil {
			return nil, fmt.Errorf("experiments: heavy scale: %w", err)
		}
		aboveAvg := 0.0
		if y := o.Mult + 1; y < len(nu) {
			aboveAvg = nu[y]
		}
		out[i] = HeavyScalePoint{
			N:        n,
			Balls:    o.Mult * n,
			MeanGap:  rep.Cells[i].MeanGap,
			MeanMax:  rep.Cells[i].MeanMax,
			AboveAvg: aboveAvg,
			GapUpper: theory.HeavyGapUpper(o.K, o.D, n),
		}
	}
	return out, nil
}
