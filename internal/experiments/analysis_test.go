package experiments

import "testing"

func TestLayeredInductionCheck(t *testing.T) {
	res, err := LayeredInductionCheck(2, 4, 1<<14, 5, 41)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no induction layers")
	}
	// Theorem 4's invariant must hold at every layer (run-averaged).
	for _, row := range res.Rows {
		if !row.Holds {
			t.Fatalf("layer %d: measured nu %.1f exceeds beta %.1f", row.I, row.MeasNu, row.Beta)
		}
	}
	// And the proof's bound y0 + i* + 2 must cover the measured max load.
	if res.MaxLoadMean > float64(res.ProofBound) {
		t.Fatalf("measured max %.2f exceeds proof bound %d", res.MaxLoadMean, res.ProofBound)
	}
}

func TestLayeredInductionCheckTwoChoice(t *testing.T) {
	res, err := LayeredInductionCheck(1, 2, 1<<14, 5, 43)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.Holds {
			t.Fatalf("two-choice layer %d: nu %.1f > beta %.1f", row.I, row.MeasNu, row.Beta)
		}
	}
	// For two-choice the anchor layer is small.
	if res.Y0 > 4 {
		t.Fatalf("y0 = %d suspiciously large for two-choice", res.Y0)
	}
}

func TestLayeredInductionErrors(t *testing.T) {
	if _, err := LayeredInductionCheck(2, 4, 1024, 0, 1); err == nil {
		t.Fatal("runs=0 accepted")
	}
	if _, err := LayeredInductionCheck(4, 2, 1024, 1, 1); err == nil {
		t.Fatal("k > d accepted")
	}
}

func TestSingleChoiceOccupancy(t *testing.T) {
	rows, err := SingleChoiceOccupancy(1<<14, 5, 47)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("only %d occupancy rows", len(rows))
	}
	for _, r := range rows {
		if !r.MuHolds {
			t.Fatalf("Lemma 2 violated at y=%d: mu %.1f > bound %.1f", r.Y, r.MuMeasured, r.MuBound)
		}
		if !r.NuHolds {
			t.Fatalf("Lemma 11 violated at y=%d: nu %.1f < bound %.1f", r.Y, r.NuMeasured, r.NuBound)
		}
		// The two bounds sandwich reality: nu <= mu always.
		if r.NuMeasured > r.MuMeasured {
			t.Fatalf("nu > mu at y=%d", r.Y)
		}
	}
}

func TestLemma4Check(t *testing.T) {
	rows, err := Lemma4Check(2, 4, 1<<12, 8, 53)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no overflow rows (all buckets under-populated?)")
	}
	for _, r := range rows {
		if !r.Holds {
			t.Fatalf("Lemma 4 violated: j=%d bucket<=%.1f freq %.4f > bound %.4f (%d rounds)",
				r.J, r.NuFracMax, r.Freq, r.Bound, r.Rounds)
		}
		if r.Freq < 0 || r.Freq > 1 {
			t.Fatalf("bad frequency %v", r.Freq)
		}
	}
}

func TestLemma4CheckOtherParams(t *testing.T) {
	rows, err := Lemma4Check(3, 5, 1<<12, 6, 59)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.Holds {
			t.Fatalf("Lemma 4 violated for (3,5): j=%d freq %.4f > bound %.4f", r.J, r.Freq, r.Bound)
		}
	}
}

func TestPipelineAblation(t *testing.T) {
	pts, err := PipelineAblation(256, 2, 4, 128, 10, 71, []int{1, 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	seq, deep := pts[0], pts[1]
	if deep.MeanMakespan >= seq.MeanMakespan {
		t.Fatalf("pipelining did not reduce makespan: %.1f vs %.1f",
			deep.MeanMakespan, seq.MeanMakespan)
	}
	if seq.MeanMax > deep.MeanMax+0.2 {
		t.Fatalf("sequential %.2f worse than stale deep pipeline %.2f", seq.MeanMax, deep.MeanMax)
	}
	if seq.MsgsPerBall <= 0 {
		t.Fatal("messages per ball not accounted")
	}
}
