package experiments

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/workload"
)

// These tests pin the Study-based comparisons to the pre-harness serial
// implementations: for equal seeds, every row must be BIT-identical. The
// serial reference below is the original driver verbatim — direct
// cluster.Run / storage.New calls, one policy after another — so any drift
// in seed derivation, policy mapping or aggregation shows up as a failure.

// serialSchedulerComparison is the pre-refactor SchedulerComparison.
func serialSchedulerComparison(opts SchedulerOpts) ([]SchedulerRow, error) {
	dist := workload.Exponential(1.0)
	if opts.Pareto {
		dist = workload.Pareto(2.0, 1.0)
	}
	rows := make([]SchedulerRow, 0, len(opts.Ks))
	for i, k := range opts.Ks {
		base := cluster.Config{
			NumWorkers: opts.Workers,
			K:          k,
			D:          2 * k,
			DPerTask:   2,
			Jobs:       opts.Jobs,
			Rho:        opts.Rho,
			TaskDist:   dist,
			Seed:       opts.Seed + uint64(i)*101,
		}
		run := func(p cluster.PlacementPolicy) (*cluster.Metrics, error) {
			cfg := base
			cfg.Policy = p
			return cluster.Run(cfg)
		}
		batch, err := run(cluster.BatchKD)
		if err != nil {
			return nil, err
		}
		late, err := run(cluster.LateBinding)
		if err != nil {
			return nil, err
		}
		perTask, err := run(cluster.PerTaskD)
		if err != nil {
			return nil, err
		}
		random, err := run(cluster.RandomPlace)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SchedulerRow{
			K:            k,
			BatchMean:    batch.MeanResponse(),
			BatchP95:     batch.ResponseQuantile(0.95),
			LateMean:     late.MeanResponse(),
			LateP95:      late.ResponseQuantile(0.95),
			PerTaskMean:  perTask.MeanResponse(),
			PerTaskP95:   perTask.ResponseQuantile(0.95),
			RandomMean:   random.MeanResponse(),
			RandomP95:    random.ResponseQuantile(0.95),
			ProbesPerJob: batch.ProbesPerJob(),
		})
	}
	return rows, nil
}

// serialStorageComparison is the pre-refactor StorageComparison.
func serialStorageComparison(opts StorageOpts) ([]StorageRow, error) {
	rows := make([]StorageRow, 0, len(opts.Ks))
	for i, k := range opts.Ks {
		mk := func(policy storage.PlacementPolicy, seedOff uint64) (*storage.System, error) {
			s, err := storage.New(storage.Config{
				Servers:  opts.Servers,
				Files:    opts.Files,
				K:        k,
				D:        k + 1,
				DPerCopy: 2,
				Distinct: true,
				Policy:   policy,
				Seed:     opts.Seed + uint64(i)*307 + seedOff,
			})
			if err != nil {
				return nil, err
			}
			s.IngestAll()
			return s, nil
		}
		kd, err := mk(storage.KDPlace, 0)
		if err != nil {
			return nil, err
		}
		two, err := mk(storage.PerCopyD, 1)
		if err != nil {
			return nil, err
		}
		rnd, err := mk(storage.RandomPlace, 2)
		if err != nil {
			return nil, err
		}
		files := float64(opts.Files)
		rows = append(rows, StorageRow{
			K:               k,
			KDMax:           kd.MaxLoad(),
			KDMsgsPerFile:   float64(kd.Messages()) / files,
			KDSearch:        kd.SearchCost(),
			TwoMax:          two.MaxLoad(),
			TwoMsgsPerFile:  float64(two.Messages()) / files,
			TwoSearch:       two.SearchCost(),
			RandMax:         rnd.MaxLoad(),
			RandMsgsPerFile: float64(rnd.Messages()) / files,
		})
	}
	return rows, nil
}

func TestSchedulerComparisonMatchesSerialPath(t *testing.T) {
	for _, opts := range []SchedulerOpts{
		{Workers: 50, Jobs: 400, Rho: 0.8, Seed: 29, Ks: []int{2, 8}},
		{Workers: 40, Jobs: 300, Rho: 0.7, Seed: 1, Ks: []int{4}, Pareto: true},
	} {
		got, err := SchedulerComparison(opts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := serialSchedulerComparison(opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("row counts %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("row %d diverged from the serial path:\nstudy:  %+v\nserial: %+v", i, got[i], want[i])
			}
		}
	}
}

func TestStorageComparisonMatchesSerialPath(t *testing.T) {
	opts := StorageOpts{Servers: 128, Files: 3000, Seed: 31, Ks: []int{2, 3, 5}}
	got, err := StorageComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := serialStorageComparison(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("row counts %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d diverged from the serial path:\nstudy:  %+v\nserial: %+v", i, got[i], want[i])
		}
	}
}

// TestComparisonSeedZeroNormalized: seed 0 would turn the shared row seed
// into the Study's derive-sentinel (splitting one row across different
// streams per policy); it must instead behave exactly as seed 1.
func TestComparisonSeedZeroNormalized(t *testing.T) {
	zero, err := SchedulerComparison(SchedulerOpts{Workers: 40, Jobs: 200, Rho: 0.7, Seed: 0, Ks: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	one, err := SchedulerComparison(SchedulerOpts{Workers: 40, Jobs: 200, Rho: 0.7, Seed: 1, Ks: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := serialSchedulerComparison(SchedulerOpts{Workers: 40, Jobs: 200, Rho: 0.7, Seed: 1, Ks: []int{2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range zero {
		if zero[i] != one[i] || one[i] != want[i] {
			t.Fatalf("row %d: seed 0 not normalized to seed 1:\nseed0:  %+v\nseed1:  %+v\nserial: %+v", i, zero[i], one[i], want[i])
		}
	}
	szero, err := StorageComparison(StorageOpts{Servers: 64, Files: 800, Seed: 0, Ks: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	sone, err := serialStorageComparison(StorageOpts{Servers: 64, Files: 800, Seed: 1, Ks: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if szero[0] != sone[0] {
		t.Fatalf("storage seed 0 not normalized to seed 1:\nseed0:  %+v\nserial: %+v", szero[0], sone[0])
	}
}

// TestComparisonPoolInvariance: the comparisons are pure functions of their
// options — the pool bound must not leak into any row.
func TestComparisonPoolInvariance(t *testing.T) {
	a, err := SchedulerComparison(SchedulerOpts{Workers: 40, Jobs: 200, Rho: 0.7, Seed: 5, Ks: []int{2, 4}, Pool: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SchedulerComparison(SchedulerOpts{Workers: 40, Jobs: 200, Rho: 0.7, Seed: 5, Ks: []int{2, 4}, Pool: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scheduler row %d depends on pool size", i)
		}
	}
	sa, err := StorageComparison(StorageOpts{Servers: 64, Files: 1000, Seed: 5, Ks: []int{2, 3}, Runs: 3, Pool: 1})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := StorageComparison(StorageOpts{Servers: 64, Files: 1000, Seed: 5, Ks: []int{2, 3}, Runs: 3, Pool: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("storage row %d depends on pool size", i)
		}
	}
}

// TestSchedulerComparisonMultiRun: averaging over runs keeps probe
// arithmetic exact and stays deterministic.
func TestSchedulerComparisonMultiRun(t *testing.T) {
	rows, err := SchedulerComparison(SchedulerOpts{Workers: 40, Jobs: 150, Rho: 0.7, Seed: 13, Ks: []int{2}, Runs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ProbesPerJob != 4 {
		t.Fatalf("probes/job %v, want 4 (d = 2k, averaged over runs)", rows[0].ProbesPerJob)
	}
	again, err := SchedulerComparison(SchedulerOpts{Workers: 40, Jobs: 150, Rho: 0.7, Seed: 13, Ks: []int{2}, Runs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0] != again[0] {
		t.Fatal("multi-run comparison not reproducible")
	}
}
