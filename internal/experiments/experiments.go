// Package experiments implements every experiment of the reproduction —
// Table 1, the Figure 1/2 load-vector profiles, the per-theorem scaling
// studies, the tradeoff frontier, the Section 1.3 application comparisons
// and the Section 7 ablation — as reusable functions shared by the command
// line tools, the benchmark harness and EXPERIMENTS.md generation.
//
// Every function is deterministic given its seed.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/theory"
)

// PaperN is the bin/ball count used throughout the paper's Table 1:
// n = 3·2^16 = 196608.
const PaperN = 3 * (1 << 16)

// Table1Ks lists the k values of the paper's Table 1 rows.
var Table1Ks = []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192}

// Table1Ds lists the d values of the paper's Table 1 columns.
var Table1Ds = []int{1, 2, 3, 5, 9, 17, 25, 49, 65, 193}

// Table1Opts configures the Table 1 reproduction.
type Table1Opts struct {
	// N is the bin/ball count (default PaperN).
	N int
	// Runs is the repetition count per cell (default 10, as in the paper).
	Runs int
	// Seed is the root seed.
	Seed uint64
}

// Table1Cell is one reproduced cell.
type Table1Cell struct {
	K, D        int
	DistinctMax []int
}

// Table1 reproduces the paper's Table 1: for every (k, d) cell of the grid
// with k < d (plus the single-choice cell k = d = 1), the distinct maximum
// loads over the configured number of runs. Cells are returned in row-major
// order.
func Table1(opts Table1Opts) ([]Table1Cell, error) {
	n := opts.N
	if n == 0 {
		n = PaperN
	}
	runs := opts.Runs
	if runs == 0 {
		runs = 10
	}
	var cells []Table1Cell
	for _, k := range Table1Ks {
		for _, d := range Table1Ds {
			if d > n {
				continue // the process requires d <= n (reduced-scale runs)
			}
			var cfg sim.Config
			switch {
			case k == 1 && d == 1:
				cfg = sim.Config{Policy: core.SingleChoice, Params: core.Params{N: n}}
			case k == 1 && d > 1:
				cfg = sim.Config{Policy: core.KDChoice, Params: core.Params{N: n, K: 1, D: d}}
			case k < d:
				cfg = sim.Config{Policy: core.KDChoice, Params: core.Params{N: n, K: k, D: d}}
			default:
				continue // the paper leaves k >= d blank
			}
			cfg.Runs = runs
			cfg.Seed = opts.Seed ^ (uint64(k)<<32 | uint64(d))
			res, err := sim.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: table1 cell k=%d d=%d: %w", k, d, err)
			}
			cells = append(cells, Table1Cell{K: k, D: d, DistinctMax: res.DistinctMax()})
		}
	}
	return cells, nil
}

// Table1Render renders cells in the paper's layout (k rows, d columns,
// "-" for empty cells).
func Table1Render(cells []Table1Cell) *table.Table {
	byKey := make(map[[2]int][]int, len(cells))
	for _, c := range cells {
		byKey[[2]int{c.K, c.D}] = c.DistinctMax
	}
	header := make([]string, 0, len(Table1Ds)+1)
	header = append(header, "k\\d")
	for _, d := range Table1Ds {
		header = append(header, fmt.Sprintf("d=%d", d))
	}
	t := table.New(header...)
	for _, k := range Table1Ks {
		row := make([]string, 0, len(Table1Ds)+1)
		row = append(row, fmt.Sprintf("k=%d", k))
		for _, d := range Table1Ds {
			row = append(row, table.IntsCell(byKey[[2]int{k, d}]))
		}
		t.AddRow(row...)
	}
	return t
}

// PaperTable1 returns the values published in the paper's Table 1 keyed by
// (k, d) — used by EXPERIMENTS.md and the comparison tests. Cells the paper
// leaves blank are absent.
func PaperTable1() map[[2]int][]int {
	return map[[2]int][]int{
		{1, 1}: {7, 8, 9}, {1, 2}: {3, 4}, {1, 3}: {3}, {1, 5}: {2}, {1, 9}: {2},
		{1, 17}: {2}, {1, 25}: {2}, {1, 49}: {2}, {1, 65}: {2}, {1, 193}: {2},
		{2, 3}: {4}, {2, 5}: {3}, {2, 9}: {2}, {2, 17}: {2}, {2, 25}: {2},
		{2, 49}: {2}, {2, 65}: {2}, {2, 193}: {2},
		{3, 5}: {3}, {3, 9}: {2}, {3, 17}: {2}, {3, 25}: {2}, {3, 49}: {2},
		{3, 65}: {2}, {3, 193}: {2},
		{4, 5}: {4}, {4, 9}: {3}, {4, 17}: {2}, {4, 25}: {2}, {4, 49}: {2},
		{4, 65}: {2}, {4, 193}: {2},
		{6, 9}: {3}, {6, 17}: {2}, {6, 25}: {2}, {6, 49}: {2}, {6, 65}: {2},
		{6, 193}: {2},
		{8, 9}:   {4}, {8, 17}: {2, 3}, {8, 25}: {2}, {8, 49}: {2}, {8, 65}: {2},
		{8, 193}: {2},
		{12, 17}: {3}, {12, 25}: {2}, {12, 49}: {2}, {12, 65}: {2}, {12, 193}: {2},
		{16, 17}: {4, 5}, {16, 25}: {3}, {16, 49}: {2}, {16, 65}: {2}, {16, 193}: {2},
		{24, 25}: {5}, {24, 49}: {2}, {24, 65}: {2}, {24, 193}: {2},
		{32, 49}: {3}, {32, 65}: {2}, {32, 193}: {2},
		{48, 49}: {5}, {48, 65}: {3}, {48, 193}: {2},
		{64, 65}: {5}, {64, 193}: {2},
		{96, 193}:  {2},
		{128, 193}: {2},
		{192, 193}: {5, 6},
	}
}

// Profile is the measured sorted-load-vector profile of one (k, d) pair —
// the empirical counterpart of the paper's schematic Figures 1 and 2.
type Profile struct {
	K, D, N int
	Runs    int
	// Checkpoints from the analysis.
	Beta0     int // β₀ = n/(6 d_k), Theorem 3 / Figure 1
	GammaStar int // γ* = 4n/d_k, Theorem 6 / Figure 2
	Gamma0    int // γ₀ = n/d, Theorem 7
	// Measured mean sorted loads at the checkpoints (1-indexed positions).
	B1, BBeta0, BGammaStar, BGamma0 float64
	// MeasuredGap is B1 − BBeta0, the Theorem 4 quantity.
	MeasuredGap float64
	// PredictedGap is ln ln n / ln(d−k+1).
	PredictedGap float64
	// PredictedCrowd is ln d_k / ln ln d_k, bounding B_{β0} (Theorem 3)
	// and (within 1−o(1)) B_{γ*} (Theorem 6).
	PredictedCrowd float64
	// MeanProfile is the full mean sorted-load curve (index x-1 = E[B_x]).
	MeanProfile []float64
}

// LoadVectorProfile measures the mean sorted-load vector of (k,d)-choice
// with n balls into n bins over the given runs (Figures 1 and 2).
func LoadVectorProfile(k, d, n, runs int, seed uint64) (*Profile, error) {
	res, err := sim.Run(sim.Config{
		Policy:       core.KDChoice,
		Params:       core.Params{N: n, K: k, D: d},
		Runs:         runs,
		Seed:         seed,
		CollectLoads: true,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: profile k=%d d=%d: %w", k, d, err)
	}
	prof := res.MeanSortedProfile()
	at := func(pos int) float64 {
		if pos < 1 {
			pos = 1
		}
		if pos > n {
			pos = n
		}
		return prof[pos-1]
	}
	p := &Profile{
		K: k, D: d, N: n, Runs: runs,
		Beta0:          theory.Beta0(k, d, n),
		GammaStar:      theory.GammaStar(k, d, n),
		Gamma0:         theory.Gamma0(d, n),
		PredictedGap:   theory.GapTerm(k, d, n),
		PredictedCrowd: theory.CrowdTerm(k, d),
		MeanProfile:    prof,
	}
	p.B1 = at(1)
	p.BBeta0 = at(p.Beta0)
	p.BGammaStar = at(p.GammaStar)
	p.BGamma0 = at(p.Gamma0)
	p.MeasuredGap = p.B1 - p.BBeta0
	return p, nil
}

// ScalingPoint is one (n, measured, predicted) triple of a scaling series.
type ScalingPoint struct {
	N         int
	MeanMax   float64
	Predicted float64
}

// ScalingSeries measures the mean max load of (k,d)-choice as n grows
// (Theorem 1 shape: ln ln n growth when d_k = O(1), Corollary 1 plateau
// when d_k is large). k = 1 uses the d-choice fast path semantics via
// KDChoice's k=1 case; d = 1 means single choice.
func ScalingSeries(k, d int, ns []int, runs int, seed uint64) ([]ScalingPoint, error) {
	out := make([]ScalingPoint, 0, len(ns))
	for i, n := range ns {
		var cfg sim.Config
		if d == 1 {
			cfg = sim.Config{Policy: core.SingleChoice, Params: core.Params{N: n}}
		} else {
			cfg = sim.Config{Policy: core.KDChoice, Params: core.Params{N: n, K: k, D: d}}
		}
		cfg.Runs = runs
		cfg.Seed = seed + uint64(i)*1e6
		res, err := sim.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: scaling n=%d: %w", n, err)
		}
		pred := theory.SingleChoiceMaxLoad(n)
		if d > 1 {
			pred = theory.MaxLoadUpper(k, d, n)
		}
		out = append(out, ScalingPoint{N: n, MeanMax: res.MaxStats().Mean(), Predicted: pred})
	}
	return out, nil
}

// HeavyPoint is one heavy-load measurement at m = Mult·n balls.
type HeavyPoint struct {
	Mult     int
	MeanGap  float64
	MeanMax  float64
	GapLower float64 // Theorem 2 lower leading term
	GapUpper float64 // Theorem 2 upper leading term
}

// HeavySeries measures the gap (max − m/n) of (k,d)-choice as the ball
// count grows to Mult·n (Theorem 2, d >= 2k).
func HeavySeries(k, d, n int, mults []int, runs int, seed uint64) ([]HeavyPoint, error) {
	out := make([]HeavyPoint, 0, len(mults))
	for i, mult := range mults {
		res, err := sim.Run(sim.Config{
			Policy: core.KDChoice,
			Params: core.Params{N: n, K: k, D: d},
			Balls:  mult * n,
			Runs:   runs,
			Seed:   seed + uint64(i)*1e6,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: heavy m=%dn: %w", mult, err)
		}
		out = append(out, HeavyPoint{
			Mult:     mult,
			MeanGap:  res.GapStats().Mean(),
			MeanMax:  res.MaxStats().Mean(),
			GapLower: theory.HeavyGapLower(k, d, n),
			GapUpper: theory.HeavyGapUpper(k, d, n),
		})
	}
	return out, nil
}

// TradeoffPoint is one point of the message-cost/max-load frontier.
type TradeoffPoint struct {
	Label           string
	Policy          string
	K, D            int
	MeanMax         float64
	MessagesPerBall float64
	Regime          string
}

// TradeoffFrontier measures the paper's headline tradeoff at one n: the
// max load and amortized message cost of single choice, two-choice,
// (1+β)-choice, and the (k,d) sweet spots (d = 2k constant-load regime and
// d = k + ln n minimal-message regime).
func TradeoffFrontier(n, runs int, seed uint64) ([]TradeoffPoint, error) {
	// Integer approximations of the paper's parameter choices.
	logn := ilog(n)       // ⌊ln n⌋
	k1 := logn * logn     // k = ln² n
	d1 := k1 + logn       // d = k + ln n  -> (1+o(1))n messages
	k2 := logn * logn / 2 // k = Θ(polylog n)
	d2 := 2 * k2          // d = 2k        -> 2n messages, O(1) load
	points := []struct {
		label  string
		policy core.Policy
		params core.Params
	}{
		{"single choice", core.SingleChoice, core.Params{N: n}},
		{"two-choice", core.KDChoice, core.Params{N: n, K: 1, D: 2}},
		{"(1+beta), beta=0.5", core.OnePlusBeta, core.Params{N: n, Beta: 0.5}},
		{fmt.Sprintf("(k,d)=(%d,%d) [d=k+ln n]", k1, d1), core.KDChoice, core.Params{N: n, K: k1, D: d1}},
		{fmt.Sprintf("(k,d)=(%d,%d) [d=2k]", k2, d2), core.KDChoice, core.Params{N: n, K: k2, D: d2}},
	}
	out := make([]TradeoffPoint, 0, len(points))
	for i, pt := range points {
		res, err := sim.Run(sim.Config{Policy: pt.policy, Params: pt.params, Runs: runs, Seed: seed + uint64(i)*7919})
		if err != nil {
			return nil, fmt.Errorf("experiments: tradeoff %q: %w", pt.label, err)
		}
		tp := TradeoffPoint{
			Label:           pt.label,
			Policy:          pt.policy.String(),
			K:               pt.params.K,
			D:               pt.params.D,
			MeanMax:         res.MaxStats().Mean(),
			MessagesPerBall: res.MeanMessages() / float64(n),
		}
		if pt.policy == core.KDChoice {
			tp.Regime = theory.Classify(pt.params.K, pt.params.D, n).String()
		}
		out = append(out, tp)
	}
	return out, nil
}

// ilog returns ⌊ln n⌋, at least 1.
func ilog(n int) int {
	l := int(math.Log(float64(n)))
	if l < 1 {
		l = 1
	}
	return l
}

// RemarkRow is one Section 1.2 remark comparison.
type RemarkRow struct {
	Name        string
	LeftLabel   string
	RightLabel  string
	LeftMax     []int
	RightMax    []int
	LeftMsgs    float64
	RightMsgs   float64
	Explanation string
}

// Remarks reproduces the three explicit observations of Section 1.2:
// (8,9) ≈ two-choice, (128,193) matches (1,193), and (64,65) clearly beats
// single choice.
func Remarks(n, runs int, seed uint64) ([]RemarkRow, error) {
	run := func(policy core.Policy, p core.Params, s uint64) (*sim.Result, error) {
		return sim.Run(sim.Config{Policy: policy, Params: p, Runs: runs, Seed: s})
	}
	type spec struct {
		name, explain string
		lp, rp        core.Policy
		l, r          core.Params
	}
	specs := []spec{
		{
			name: "(8,9) vs two-choice", explain: "close max loads at half the per-ball probes",
			lp: core.KDChoice, l: core.Params{N: n, K: 8, D: 9},
			rp: core.KDChoice, r: core.Params{N: n, K: 1, D: 2},
		},
		{
			name: "(128,193) vs (1,193)", explain: "identical max load 2 at 1/128 of the rounds",
			lp: core.KDChoice, l: core.Params{N: n, K: 128, D: 193},
			rp: core.KDChoice, r: core.Params{N: n, K: 1, D: 193},
		},
		{
			name: "(64,65) vs single choice", explain: "noticeably better than single choice",
			lp: core.KDChoice, l: core.Params{N: n, K: 64, D: 65},
			rp: core.SingleChoice, r: core.Params{N: n},
		},
	}
	out := make([]RemarkRow, 0, len(specs))
	for i, sp := range specs {
		lres, err := run(sp.lp, sp.l, seed+uint64(i)*2)
		if err != nil {
			return nil, err
		}
		rres, err := run(sp.rp, sp.r, seed+uint64(i)*2+1)
		if err != nil {
			return nil, err
		}
		out = append(out, RemarkRow{
			Name:        sp.name,
			LeftLabel:   fmt.Sprintf("(%d,%d)", sp.l.K, sp.l.D),
			RightLabel:  fmt.Sprintf("(%d,%d)", sp.r.K, sp.r.D),
			LeftMax:     lres.DistinctMax(),
			RightMax:    rres.DistinctMax(),
			LeftMsgs:    lres.MeanMessages() / float64(n),
			RightMsgs:   rres.MeanMessages() / float64(n),
			Explanation: sp.explain,
		})
	}
	return out, nil
}

// AdaptivePoint compares the strict (k,d) rule against the two Section 7
// future-work variants for one (k, d): water-filling (AdaptiveKD) and
// dynamic round size (DynamicKD, same d).
type AdaptivePoint struct {
	K, D                  int
	StrictMax, AdaptMax   float64
	StrictDist, AdaptDist []int
	// DynMax and DynMsgsPerBall measure the dynamic-k policy at the same
	// d (its k adapts, so only d carries over).
	DynMax         float64
	DynMsgsPerBall float64
}

// AdaptiveAblation measures the Section 7 conjectures: relaxing the
// multiplicity rule (water-filling) should help most when k ≈ d, and
// adjusting k dynamically should hold the ceiling at little message cost.
func AdaptiveAblation(n, runs int, seed uint64, pairs [][2]int) ([]AdaptivePoint, error) {
	out := make([]AdaptivePoint, 0, len(pairs))
	for i, kd := range pairs {
		k, d := kd[0], kd[1]
		strict, err := sim.Run(sim.Config{
			Policy: core.KDChoice, Params: core.Params{N: n, K: k, D: d},
			Runs: runs, Seed: seed + uint64(i)*11,
		})
		if err != nil {
			return nil, err
		}
		adapt, err := sim.Run(sim.Config{
			Policy: core.AdaptiveKD, Params: core.Params{N: n, K: k, D: d},
			Runs: runs, Seed: seed + uint64(i)*11 + 5,
		})
		if err != nil {
			return nil, err
		}
		dyn, err := sim.Run(sim.Config{
			Policy: core.DynamicKD, Params: core.Params{N: n, D: d},
			Runs: runs, Seed: seed + uint64(i)*11 + 9,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AdaptivePoint{
			K: k, D: d,
			StrictMax:      strict.MaxStats().Mean(),
			AdaptMax:       adapt.MaxStats().Mean(),
			StrictDist:     strict.DistinctMax(),
			AdaptDist:      adapt.DistinctMax(),
			DynMax:         dyn.MaxStats().Mean(),
			DynMsgsPerBall: dyn.MeanMessages() / float64(n),
		})
	}
	return out, nil
}

// MajCheck is one verified majorization relation (Section 3).
type MajCheck struct {
	Property    string
	Left, Right string
	LeftMean    float64
	RightMean   float64
	Holds       bool
}

// MajorizationChecks verifies properties (ii)-(v) at the expected-max-load
// level over `runs` independent runs per side.
func MajorizationChecks(n, runs int, seed uint64) ([]MajCheck, error) {
	mean := func(policy core.Policy, p core.Params, s uint64) (float64, error) {
		res, err := sim.Run(sim.Config{Policy: policy, Params: p, Runs: runs, Seed: s})
		if err != nil {
			return 0, err
		}
		return res.MaxStats().Mean(), nil
	}
	type check struct {
		prop   string
		lp, rp core.Params
	}
	checks := []check{
		{"(ii) A(k,d+a) <= A(k,d)", core.Params{N: n, K: 2, D: 6}, core.Params{N: n, K: 2, D: 3}},
		{"(iii) A(k-a,d) <= A(k,d)", core.Params{N: n, K: 1, D: 4}, core.Params{N: n, K: 3, D: 4}},
		{"(iv) A(ak,ad) <= A(k,d)", core.Params{N: n, K: 2, D: 4}, core.Params{N: n, K: 1, D: 2}},
		{"(v) A(k,d) <= A(k+a,d+a)", core.Params{N: n, K: 1, D: 2}, core.Params{N: n, K: 3, D: 4}},
	}
	// Tolerance for sampling noise at the configured run count.
	tol := 0.2
	if runs >= 400 {
		tol = 0.12
	}
	out := make([]MajCheck, 0, len(checks))
	for i, c := range checks {
		lm, err := mean(core.KDChoice, c.lp, seed+uint64(i)*13)
		if err != nil {
			return nil, err
		}
		rm, err := mean(core.KDChoice, c.rp, seed+uint64(i)*13+6)
		if err != nil {
			return nil, err
		}
		out = append(out, MajCheck{
			Property:  c.prop,
			Left:      fmt.Sprintf("(%d,%d)", c.lp.K, c.lp.D),
			Right:     fmt.Sprintf("(%d,%d)", c.rp.K, c.rp.D),
			LeftMean:  lm,
			RightMean: rm,
			Holds:     lm <= rm+tol,
		})
	}
	return out, nil
}

// MeanOfInts is a convenience re-export used by the cmds.
func MeanOfInts(xs []int) float64 { return stats.MeanInts(xs) }
