// Package experiments implements every experiment of the reproduction —
// Table 1, the Figure 1/2 load-vector profiles, the per-theorem scaling
// studies, the tradeoff frontier, the Section 1.3 application comparisons
// and the Section 7 ablation — as reusable functions shared by the command
// line tools, the benchmark harness and EXPERIMENTS.md generation.
//
// The simulation experiments are built entirely on the public kdchoice
// Experiment API: each study assembles its grid of cells once and runs
// every (cell, run) pair on one shared worker pool. Only the
// proof-machinery checks in analysis.go reach below the public surface
// (they drive the core engine round by round).
//
// Every function is deterministic given its seed.
package experiments

import (
	"fmt"
	"math"

	kdchoice "repro"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/theory"
)

// PaperN is the bin/ball count used throughout the paper's Table 1:
// n = 3·2^16 = 196608.
const PaperN = 3 * (1 << 16)

// Table1Ks lists the k values of the paper's Table 1 rows.
var Table1Ks = []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192}

// Table1Ds lists the d values of the paper's Table 1 columns.
var Table1Ds = []int{1, 2, 3, 5, 9, 17, 25, 49, 65, 193}

// Table1Opts configures the Table 1 reproduction.
type Table1Opts struct {
	// N is the bin/ball count (default PaperN).
	N int
	// Runs is the repetition count per cell (default 10, as in the paper).
	Runs int
	// Seed is the root seed.
	Seed uint64
}

// Table1Cell is one reproduced cell.
type Table1Cell struct {
	K, D        int
	DistinctMax []int
}

// table1Seed derives the historical per-cell seed: every cell's random
// stream is a pure function of (root seed, k, d), so adding or removing
// grid rows never reshuffles the other cells.
func table1Seed(seed uint64, k, d int) uint64 {
	return seed ^ (uint64(k)<<32 | uint64(d))
}

// Table1 reproduces the paper's Table 1: for every (k, d) cell of the grid
// with k < d (plus the single-choice cell k = d = 1), the distinct maximum
// loads over the configured number of runs. The triangular grid is built by
// a public Sweep over the full k × d rectangle with the invalid cells
// dropped, and all cells × runs execute together on one shared worker pool.
// Cells are returned in row-major order.
func Table1(opts Table1Opts) ([]Table1Cell, error) {
	n := opts.N
	if n == 0 {
		n = PaperN
	}
	runs := opts.Runs
	if runs == 0 {
		runs = 10
	}
	type gridKey struct{ k, d int }
	var cells []kdchoice.Cell
	var keys []gridKey

	// The k = d = 1 corner is the paper's single-choice cell; the sweep
	// proper covers the k < d triangle.
	if containsInt(Table1Ks, 1) && containsInt(Table1Ds, 1) && n >= 1 {
		cells = append(cells, kdchoice.Cell{
			Config: kdchoice.Config{Bins: n, Policy: kdchoice.SingleChoice, Seed: table1Seed(opts.Seed, 1, 1)},
			Label:  "single-choice",
		})
		keys = append(keys, gridKey{1, 1})
	}
	grid, err := kdchoice.Sweep{
		N:           []int{n},
		K:           Table1Ks,
		D:           Table1Ds,
		SkipInvalid: true, // drops k >= d and d > n, the blank cells
	}.Cells()
	if err != nil {
		return nil, fmt.Errorf("experiments: table1 grid: %w", err)
	}
	for _, c := range grid {
		k, d := c.Config.K, c.Config.D
		c.Config.Seed = table1Seed(opts.Seed, k, d)
		cells = append(cells, c)
		keys = append(keys, gridKey{k, d})
	}

	rep, err := kdchoice.Experiment{Cells: cells, Runs: runs, Seed: opts.Seed}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: table1: %w", err)
	}
	out := make([]Table1Cell, len(rep.Cells))
	for i := range rep.Cells {
		out[i] = Table1Cell{K: keys[i].k, D: keys[i].d, DistinctMax: rep.Cells[i].DistinctMax}
	}
	return out, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Table1Render renders cells in the paper's layout (k rows, d columns,
// "-" for empty cells).
func Table1Render(cells []Table1Cell) *table.Table {
	byKey := make(map[[2]int][]int, len(cells))
	for _, c := range cells {
		byKey[[2]int{c.K, c.D}] = c.DistinctMax
	}
	header := make([]string, 0, len(Table1Ds)+1)
	header = append(header, "k\\d")
	for _, d := range Table1Ds {
		header = append(header, fmt.Sprintf("d=%d", d))
	}
	t := table.New(header...)
	for _, k := range Table1Ks {
		row := make([]string, 0, len(Table1Ds)+1)
		row = append(row, fmt.Sprintf("k=%d", k))
		for _, d := range Table1Ds {
			row = append(row, table.IntsCell(byKey[[2]int{k, d}]))
		}
		t.AddRow(row...)
	}
	return t
}

// PaperTable1 returns the values published in the paper's Table 1 keyed by
// (k, d) — used by EXPERIMENTS.md and the comparison tests. Cells the paper
// leaves blank are absent.
func PaperTable1() map[[2]int][]int {
	return map[[2]int][]int{
		{1, 1}: {7, 8, 9}, {1, 2}: {3, 4}, {1, 3}: {3}, {1, 5}: {2}, {1, 9}: {2},
		{1, 17}: {2}, {1, 25}: {2}, {1, 49}: {2}, {1, 65}: {2}, {1, 193}: {2},
		{2, 3}: {4}, {2, 5}: {3}, {2, 9}: {2}, {2, 17}: {2}, {2, 25}: {2},
		{2, 49}: {2}, {2, 65}: {2}, {2, 193}: {2},
		{3, 5}: {3}, {3, 9}: {2}, {3, 17}: {2}, {3, 25}: {2}, {3, 49}: {2},
		{3, 65}: {2}, {3, 193}: {2},
		{4, 5}: {4}, {4, 9}: {3}, {4, 17}: {2}, {4, 25}: {2}, {4, 49}: {2},
		{4, 65}: {2}, {4, 193}: {2},
		{6, 9}: {3}, {6, 17}: {2}, {6, 25}: {2}, {6, 49}: {2}, {6, 65}: {2},
		{6, 193}: {2},
		{8, 9}:   {4}, {8, 17}: {2, 3}, {8, 25}: {2}, {8, 49}: {2}, {8, 65}: {2},
		{8, 193}: {2},
		{12, 17}: {3}, {12, 25}: {2}, {12, 49}: {2}, {12, 65}: {2}, {12, 193}: {2},
		{16, 17}: {4, 5}, {16, 25}: {3}, {16, 49}: {2}, {16, 65}: {2}, {16, 193}: {2},
		{24, 25}: {5}, {24, 49}: {2}, {24, 65}: {2}, {24, 193}: {2},
		{32, 49}: {3}, {32, 65}: {2}, {32, 193}: {2},
		{48, 49}: {5}, {48, 65}: {3}, {48, 193}: {2},
		{64, 65}: {5}, {64, 193}: {2},
		{96, 193}:  {2},
		{128, 193}: {2},
		{192, 193}: {5, 6},
	}
}

// Profile is the measured sorted-load-vector profile of one (k, d) pair —
// the empirical counterpart of the paper's schematic Figures 1 and 2.
type Profile struct {
	K, D, N int
	Runs    int
	// Checkpoints from the analysis.
	Beta0     int // β₀ = n/(6 d_k), Theorem 3 / Figure 1
	GammaStar int // γ* = 4n/d_k, Theorem 6 / Figure 2
	Gamma0    int // γ₀ = n/d, Theorem 7
	// Measured mean sorted loads at the checkpoints (1-indexed positions).
	B1, BBeta0, BGammaStar, BGamma0 float64
	// MeasuredGap is B1 − BBeta0, the Theorem 4 quantity.
	MeasuredGap float64
	// PredictedGap is ln ln n / ln(d−k+1).
	PredictedGap float64
	// PredictedCrowd is ln d_k / ln ln d_k, bounding B_{β0} (Theorem 3)
	// and (within 1−o(1)) B_{γ*} (Theorem 6).
	PredictedCrowd float64
	// MeanProfile is the full mean sorted-load curve (index x-1 = E[B_x]).
	MeanProfile []float64
}

// LoadVectorProfiles measures the mean sorted-load vectors of the given
// (k,d) pairs with n balls into n bins over the given runs (Figures 1
// and 2), running every pair's runs on one shared pool.
func LoadVectorProfiles(kds [][2]int, n, runs int, seed uint64) ([]*Profile, error) {
	cells := make([]kdchoice.Cell, len(kds))
	for i, kd := range kds {
		cells[i] = kdchoice.Cell{Config: kdchoice.Config{Bins: n, K: kd[0], D: kd[1], Seed: seed}}
	}
	rep, err := kdchoice.Experiment{Cells: cells, Runs: runs, Seed: seed, CollectLoads: true}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: profiles: %w", err)
	}
	out := make([]*Profile, len(kds))
	for i, kd := range kds {
		k, d := kd[0], kd[1]
		prof, err := rep.Cells[i].MeanSortedProfile()
		if err != nil {
			return nil, fmt.Errorf("experiments: profile k=%d d=%d: %w", k, d, err)
		}
		at := func(pos int) float64 {
			if pos < 1 {
				pos = 1
			}
			if pos > n {
				pos = n
			}
			return prof[pos-1]
		}
		p := &Profile{
			K: k, D: d, N: n, Runs: runs,
			Beta0:          theory.Beta0(k, d, n),
			GammaStar:      theory.GammaStar(k, d, n),
			Gamma0:         theory.Gamma0(d, n),
			PredictedGap:   theory.GapTerm(k, d, n),
			PredictedCrowd: theory.CrowdTerm(k, d),
			MeanProfile:    prof,
		}
		p.B1 = at(1)
		p.BBeta0 = at(p.Beta0)
		p.BGammaStar = at(p.GammaStar)
		p.BGamma0 = at(p.Gamma0)
		p.MeasuredGap = p.B1 - p.BBeta0
		out[i] = p
	}
	return out, nil
}

// LoadVectorProfile is the one-pair convenience form of LoadVectorProfiles.
func LoadVectorProfile(k, d, n, runs int, seed uint64) (*Profile, error) {
	ps, err := LoadVectorProfiles([][2]int{{k, d}}, n, runs, seed)
	if err != nil {
		return nil, err
	}
	return ps[0], nil
}

// ScalingPoint is one (n, measured, predicted) triple of a scaling series.
type ScalingPoint struct {
	N         int
	MeanMax   float64
	Predicted float64
}

// ScalingSeriesResult is one (k, d) row of a scaling grid.
type ScalingSeriesResult struct {
	K, D   int
	Points []ScalingPoint
}

// scalingCell builds the cell for one (k, d, n) grid point; d = 1 means
// single choice. The seed depends only on the n index, matching the
// historical derivation (all pairs share the per-n streams).
func scalingCell(k, d, n, ni int, seed uint64) kdchoice.Cell {
	cfg := kdchoice.Config{Bins: n, K: k, D: d, Seed: seed + uint64(ni)*1e6}
	if d == 1 {
		cfg = kdchoice.Config{Bins: n, Policy: kdchoice.SingleChoice, Seed: seed + uint64(ni)*1e6}
	}
	return kdchoice.Cell{Config: cfg}
}

// ScalingGrid measures the mean max load of every (k,d) pair at every n on
// one shared pool (Theorem 1 shape: ln ln n growth when d_k = O(1),
// Corollary 1 plateau when d_k is large). k = 1 uses the d-choice fast path
// semantics via KDChoice's k=1 case; d = 1 means single choice.
func ScalingGrid(pairs [][2]int, ns []int, runs int, seed uint64) ([]ScalingSeriesResult, error) {
	var cells []kdchoice.Cell
	for _, kd := range pairs {
		for i, n := range ns {
			cells = append(cells, scalingCell(kd[0], kd[1], n, i, seed))
		}
	}
	rep, err := kdchoice.Experiment{Cells: cells, Runs: runs, Seed: seed}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: scaling grid: %w", err)
	}
	out := make([]ScalingSeriesResult, len(pairs))
	ci := 0
	for pi, kd := range pairs {
		k, d := kd[0], kd[1]
		res := ScalingSeriesResult{K: k, D: d, Points: make([]ScalingPoint, len(ns))}
		for i, n := range ns {
			pred := theory.SingleChoiceMaxLoad(n)
			if d > 1 {
				pred = theory.MaxLoadUpper(k, d, n)
			}
			res.Points[i] = ScalingPoint{N: n, MeanMax: rep.Cells[ci].MeanMax, Predicted: pred}
			ci++
		}
		out[pi] = res
	}
	return out, nil
}

// ScalingSeries is the one-pair convenience form of ScalingGrid.
func ScalingSeries(k, d int, ns []int, runs int, seed uint64) ([]ScalingPoint, error) {
	grid, err := ScalingGrid([][2]int{{k, d}}, ns, runs, seed)
	if err != nil {
		return nil, err
	}
	return grid[0].Points, nil
}

// HeavyPoint is one heavy-load measurement at m = Mult·n balls.
type HeavyPoint struct {
	Mult     int
	MeanGap  float64
	MeanMax  float64
	GapLower float64 // Theorem 2 lower leading term
	GapUpper float64 // Theorem 2 upper leading term
}

// HeavySeriesResult is one (k, d) row of a heavy-load grid.
type HeavySeriesResult struct {
	K, D   int
	Points []HeavyPoint
}

// HeavyGrid measures the gap (max − m/n) of every (k,d) pair as the ball
// count grows to Mult·n (Theorem 2, d >= 2k), all on one shared pool.
func HeavyGrid(pairs [][2]int, n int, mults []int, runs int, seed uint64) ([]HeavySeriesResult, error) {
	var cells []kdchoice.Cell
	for _, kd := range pairs {
		for i, mult := range mults {
			cells = append(cells, kdchoice.Cell{
				Config: kdchoice.Config{Bins: n, K: kd[0], D: kd[1], Seed: seed + uint64(i)*1e6},
				Balls:  mult * n,
			})
		}
	}
	rep, err := kdchoice.Experiment{Cells: cells, Runs: runs, Seed: seed}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: heavy grid: %w", err)
	}
	out := make([]HeavySeriesResult, len(pairs))
	ci := 0
	for pi, kd := range pairs {
		k, d := kd[0], kd[1]
		res := HeavySeriesResult{K: k, D: d, Points: make([]HeavyPoint, len(mults))}
		for i, mult := range mults {
			res.Points[i] = HeavyPoint{
				Mult:     mult,
				MeanGap:  rep.Cells[ci].MeanGap,
				MeanMax:  rep.Cells[ci].MeanMax,
				GapLower: theory.HeavyGapLower(k, d, n),
				GapUpper: theory.HeavyGapUpper(k, d, n),
			}
			ci++
		}
		out[pi] = res
	}
	return out, nil
}

// HeavySeries is the one-pair convenience form of HeavyGrid.
func HeavySeries(k, d, n int, mults []int, runs int, seed uint64) ([]HeavyPoint, error) {
	grid, err := HeavyGrid([][2]int{{k, d}}, n, mults, runs, seed)
	if err != nil {
		return nil, err
	}
	return grid[0].Points, nil
}

// TradeoffPoint is one point of the message-cost/max-load frontier.
type TradeoffPoint struct {
	Label           string
	Policy          string
	K, D            int
	MeanMax         float64
	MessagesPerBall float64
	Regime          string
}

// TradeoffFrontier measures the paper's headline tradeoff at one n: the
// max load and amortized message cost of single choice, two-choice,
// (1+β)-choice, and the (k,d) sweet spots (d = 2k constant-load regime and
// d = k + ln n minimal-message regime), as one experiment batch.
func TradeoffFrontier(n, runs int, seed uint64) ([]TradeoffPoint, error) {
	// Integer approximations of the paper's parameter choices.
	logn := ilog(n)       // ⌊ln n⌋
	k1 := logn * logn     // k = ln² n
	d1 := k1 + logn       // d = k + ln n  -> (1+o(1))n messages
	k2 := logn * logn / 2 // k = Θ(polylog n)
	d2 := 2 * k2          // d = 2k        -> 2n messages, O(1) load
	cells := []kdchoice.Cell{
		{Label: "single choice", Config: kdchoice.Config{Bins: n, Policy: kdchoice.SingleChoice}},
		{Label: "two-choice", Config: kdchoice.Config{Bins: n, K: 1, D: 2}},
		{Label: "(1+beta), beta=0.5", Config: kdchoice.Config{Bins: n, Policy: kdchoice.OnePlusBeta, Beta: 0.5}},
		{Label: fmt.Sprintf("(k,d)=(%d,%d) [d=k+ln n]", k1, d1), Config: kdchoice.Config{Bins: n, K: k1, D: d1}},
		{Label: fmt.Sprintf("(k,d)=(%d,%d) [d=2k]", k2, d2), Config: kdchoice.Config{Bins: n, K: k2, D: d2}},
	}
	for i := range cells {
		cells[i].Config.Seed = seed + uint64(i)*7919
	}
	rep, err := kdchoice.Experiment{Cells: cells, Runs: runs, Seed: seed}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: tradeoff: %w", err)
	}
	out := make([]TradeoffPoint, 0, len(rep.Cells))
	for i := range rep.Cells {
		c := &rep.Cells[i]
		cfg := c.Cell.Config
		pol := cfg.Policy
		if pol == 0 {
			pol = kdchoice.KDChoice
		}
		tp := TradeoffPoint{
			Label:           c.Cell.Label,
			Policy:          pol.String(),
			K:               cfg.K,
			D:               cfg.D,
			MeanMax:         c.MeanMax,
			MessagesPerBall: c.MeanMessages / float64(n),
		}
		if pol == kdchoice.KDChoice {
			tp.Regime = theory.Classify(cfg.K, cfg.D, n).String()
		}
		out = append(out, tp)
	}
	return out, nil
}

// ilog returns ⌊ln n⌋, at least 1.
func ilog(n int) int {
	l := int(math.Log(float64(n)))
	if l < 1 {
		l = 1
	}
	return l
}

// RemarkRow is one Section 1.2 remark comparison.
type RemarkRow struct {
	Name        string
	LeftLabel   string
	RightLabel  string
	LeftMax     []int
	RightMax    []int
	LeftMsgs    float64
	RightMsgs   float64
	Explanation string
}

// Remarks reproduces the three explicit observations of Section 1.2:
// (8,9) ≈ two-choice, (128,193) matches (1,193), and (64,65) clearly beats
// single choice. All six sides run as one experiment batch.
func Remarks(n, runs int, seed uint64) ([]RemarkRow, error) {
	type spec struct {
		name, explain string
		l, r          kdchoice.Config
	}
	specs := []spec{
		{
			name: "(8,9) vs two-choice", explain: "close max loads at half the per-ball probes",
			l: kdchoice.Config{Bins: n, K: 8, D: 9},
			r: kdchoice.Config{Bins: n, K: 1, D: 2},
		},
		{
			name: "(128,193) vs (1,193)", explain: "identical max load 2 at 1/128 of the rounds",
			l: kdchoice.Config{Bins: n, K: 128, D: 193},
			r: kdchoice.Config{Bins: n, K: 1, D: 193},
		},
		{
			name: "(64,65) vs single choice", explain: "noticeably better than single choice",
			l: kdchoice.Config{Bins: n, K: 64, D: 65},
			r: kdchoice.Config{Bins: n, Policy: kdchoice.SingleChoice},
		},
	}
	cells := make([]kdchoice.Cell, 0, 2*len(specs))
	for i, sp := range specs {
		sp.l.Seed = seed + uint64(i)*2
		sp.r.Seed = seed + uint64(i)*2 + 1
		cells = append(cells, kdchoice.Cell{Config: sp.l}, kdchoice.Cell{Config: sp.r})
	}
	rep, err := kdchoice.Experiment{Cells: cells, Runs: runs, Seed: seed}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: remarks: %w", err)
	}
	out := make([]RemarkRow, 0, len(specs))
	for i, sp := range specs {
		lres, rres := &rep.Cells[2*i], &rep.Cells[2*i+1]
		out = append(out, RemarkRow{
			Name:        sp.name,
			LeftLabel:   fmt.Sprintf("(%d,%d)", sp.l.K, sp.l.D),
			RightLabel:  fmt.Sprintf("(%d,%d)", sp.r.K, sp.r.D),
			LeftMax:     lres.DistinctMax,
			RightMax:    rres.DistinctMax,
			LeftMsgs:    lres.MeanMessages / float64(n),
			RightMsgs:   rres.MeanMessages / float64(n),
			Explanation: sp.explain,
		})
	}
	return out, nil
}

// AdaptivePoint compares the strict (k,d) rule against the two Section 7
// future-work variants for one (k, d): water-filling (AdaptiveKD) and
// dynamic round size (DynamicKD, same d).
type AdaptivePoint struct {
	K, D                  int
	StrictMax, AdaptMax   float64
	StrictDist, AdaptDist []int
	// DynMax and DynMsgsPerBall measure the dynamic-k policy at the same
	// d (its k adapts, so only d carries over).
	DynMax         float64
	DynMsgsPerBall float64
}

// AdaptiveAblation measures the Section 7 conjectures: relaxing the
// multiplicity rule (water-filling) should help most when k ≈ d, and
// adjusting k dynamically should hold the ceiling at little message cost.
// The whole 3 × pairs grid runs as one experiment batch.
func AdaptiveAblation(n, runs int, seed uint64, pairs [][2]int) ([]AdaptivePoint, error) {
	cells := make([]kdchoice.Cell, 0, 3*len(pairs))
	for i, kd := range pairs {
		k, d := kd[0], kd[1]
		cells = append(cells,
			kdchoice.Cell{Config: kdchoice.Config{Bins: n, K: k, D: d, Seed: seed + uint64(i)*11}},
			kdchoice.Cell{Config: kdchoice.Config{Bins: n, K: k, D: d, Policy: kdchoice.AdaptiveKD, Seed: seed + uint64(i)*11 + 5}},
			kdchoice.Cell{Config: kdchoice.Config{Bins: n, D: d, Policy: kdchoice.DynamicKD, Seed: seed + uint64(i)*11 + 9}},
		)
	}
	rep, err := kdchoice.Experiment{Cells: cells, Runs: runs, Seed: seed}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: adaptive ablation: %w", err)
	}
	out := make([]AdaptivePoint, 0, len(pairs))
	for i, kd := range pairs {
		strict, adapt, dyn := &rep.Cells[3*i], &rep.Cells[3*i+1], &rep.Cells[3*i+2]
		out = append(out, AdaptivePoint{
			K: kd[0], D: kd[1],
			StrictMax:      strict.MeanMax,
			AdaptMax:       adapt.MeanMax,
			StrictDist:     strict.DistinctMax,
			AdaptDist:      adapt.DistinctMax,
			DynMax:         dyn.MeanMax,
			DynMsgsPerBall: dyn.MeanMessages / float64(n),
		})
	}
	return out, nil
}

// MajCheck is one verified majorization relation (Section 3).
type MajCheck struct {
	Property    string
	Left, Right string
	LeftMean    float64
	RightMean   float64
	Holds       bool
}

// MajorizationChecks verifies properties (ii)-(v) at the expected-max-load
// level over `runs` independent runs per side, as one experiment batch.
func MajorizationChecks(n, runs int, seed uint64) ([]MajCheck, error) {
	type check struct {
		prop   string
		lp, rp kdchoice.Config
	}
	checks := []check{
		{"(ii) A(k,d+a) <= A(k,d)", kdchoice.Config{Bins: n, K: 2, D: 6}, kdchoice.Config{Bins: n, K: 2, D: 3}},
		{"(iii) A(k-a,d) <= A(k,d)", kdchoice.Config{Bins: n, K: 1, D: 4}, kdchoice.Config{Bins: n, K: 3, D: 4}},
		{"(iv) A(ak,ad) <= A(k,d)", kdchoice.Config{Bins: n, K: 2, D: 4}, kdchoice.Config{Bins: n, K: 1, D: 2}},
		{"(v) A(k,d) <= A(k+a,d+a)", kdchoice.Config{Bins: n, K: 1, D: 2}, kdchoice.Config{Bins: n, K: 3, D: 4}},
	}
	cells := make([]kdchoice.Cell, 0, 2*len(checks))
	for i, c := range checks {
		c.lp.Seed = seed + uint64(i)*13
		c.rp.Seed = seed + uint64(i)*13 + 6
		cells = append(cells, kdchoice.Cell{Config: c.lp}, kdchoice.Cell{Config: c.rp})
	}
	rep, err := kdchoice.Experiment{Cells: cells, Runs: runs, Seed: seed}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: majorization: %w", err)
	}
	// Tolerance for sampling noise at the configured run count.
	tol := 0.2
	if runs >= 400 {
		tol = 0.12
	}
	out := make([]MajCheck, 0, len(checks))
	for i, c := range checks {
		lm := rep.Cells[2*i].MeanMax
		rm := rep.Cells[2*i+1].MeanMax
		out = append(out, MajCheck{
			Property:  c.prop,
			Left:      fmt.Sprintf("(%d,%d)", c.lp.K, c.lp.D),
			Right:     fmt.Sprintf("(%d,%d)", c.rp.K, c.rp.D),
			LeftMean:  lm,
			RightMean: rm,
			Holds:     lm <= rm+tol,
		})
	}
	return out, nil
}

// MeanOfInts is a convenience re-export used by the cmds.
func MeanOfInts(xs []int) float64 { return stats.MeanInts(xs) }
