package experiments

// The approximate-store frontier: what does shrinking the per-bin load
// state below one byte cost in allocation quality? The exact stores
// (compact 2 B/bin, nibble ~0.5 B/bin) are bit-identical to the dense
// reference, so their rows differ only in measured memory; the count-min
// sketch store drops below 0.5 B/bin by giving up exactness, and its
// one-sided load overestimates inflate the achieved max load. ApproxFrontier
// measures all three side by side — bytes per bin as actually allocated
// (including any overflow-escape surcharge) against mean max load and mean
// gap — at the same (k,d) shape the heavy-load scale study tracks.

import (
	"fmt"

	kdchoice "repro"
)

// ApproxFrontierOpts configures the approximate-store frontier study.
type ApproxFrontierOpts struct {
	// K, D are the round shape (default 2, 64, matching HeavyScale).
	K, D int
	// Ns are the bin counts (default 1e5, 1e6).
	Ns []int
	// Mult is the load multiplier: each run places Mult·n balls (default
	// 1, the canonical n-balls case). Unlike HeavyScale's default 100,
	// light load keeps the sketch's 8-bit saturating counters in their
	// useful range at the sub-half-byte default geometry.
	Mult int
	// Runs is the number of independent runs per (n, store) cell
	// (default 3).
	Runs int
	// Seed is the root seed.
	Seed uint64
	// Stores are the representations to compare (default compact, nibble,
	// sketch). The first entry is the baseline the MaxInflation column is
	// measured against.
	Stores []kdchoice.Store
	// SketchWidth, SketchDepth configure the sketch geometry (0 = the
	// store defaults: n/8 counters per row, 2 rows).
	SketchWidth, SketchDepth int
}

func (o ApproxFrontierOpts) withDefaults() ApproxFrontierOpts {
	if o.K == 0 {
		o.K = 2
	}
	if o.D == 0 {
		o.D = 64
	}
	if len(o.Ns) == 0 {
		o.Ns = []int{100_000, 1_000_000}
	}
	if o.Mult == 0 {
		o.Mult = 1
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if len(o.Stores) == 0 {
		o.Stores = []kdchoice.Store{kdchoice.StoreCompact, kdchoice.StoreNibble, kdchoice.StoreSketch}
	}
	return o
}

// ApproxFrontierPoint is one (n, store) cell of the frontier.
type ApproxFrontierPoint struct {
	N     int
	Store kdchoice.Store
	Balls int
	// BytesPerBin is the measured per-bin memory cost, averaged over runs
	// and including the escape-table surcharge of the sub-byte stores.
	BytesPerBin float64
	MeanMax     float64
	MeanGap     float64
	// MaxInflation is MeanMax minus the baseline store's MeanMax at the
	// same n and seeds: 0 for every exact store (they are bit-identical),
	// positive for the sketch when collisions distort its decisions.
	MaxInflation float64
}

// ApproxFrontier runs the error-vs-gap-vs-bytes frontier: for every n and
// every store, Runs independent allocations of Mult·n balls with identical
// seeds across stores, reporting measured bytes per bin next to the
// achieved max load and gap. Runs execute serially — the study exists to
// measure per-store memory, so only one allocator's store is live at a
// time — with the pipelined engine on inside each run.
func ApproxFrontier(opts ApproxFrontierOpts) ([]ApproxFrontierPoint, error) {
	o := opts.withDefaults()
	out := make([]ApproxFrontierPoint, 0, len(o.Ns)*len(o.Stores))
	for i, n := range o.Ns {
		baseMax := 0.0
		for si, store := range o.Stores {
			var sumMax, sumGap, sumBpb float64
			for r := 0; r < o.Runs; r++ {
				a, err := kdchoice.New(kdchoice.Config{
					Bins: n, K: o.K, D: o.D,
					Store:       store,
					SketchWidth: o.SketchWidth,
					SketchDepth: o.SketchDepth,
					Pipeline:    true,
					// Same per-(n, run) seed for every store, so the exact
					// stores run literally the same allocation and the
					// sketch's divergence is attributable to the sketch.
					Seed: o.Seed + uint64(i)*1e6 + uint64(r),
				})
				if err != nil {
					return nil, fmt.Errorf("experiments: approx frontier: %w", err)
				}
				if err := a.Place(o.Mult * n); err != nil {
					a.Close()
					return nil, fmt.Errorf("experiments: approx frontier: %w", err)
				}
				sumMax += float64(a.MaxLoad())
				sumGap += a.Gap()
				sumBpb += a.BytesPerBin()
				a.Close()
			}
			runs := float64(o.Runs)
			pt := ApproxFrontierPoint{
				N:           n,
				Store:       store,
				Balls:       o.Mult * n,
				BytesPerBin: sumBpb / runs,
				MeanMax:     sumMax / runs,
				MeanGap:     sumGap / runs,
			}
			if si == 0 {
				baseMax = pt.MeanMax
			}
			pt.MaxInflation = pt.MeanMax - baseMax
			out = append(out, pt)
		}
	}
	return out, nil
}
