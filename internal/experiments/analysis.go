package experiments

// This file verifies the paper's PROOF MACHINERY empirically, not just its
// end results: the layered-induction sequence β_i of Theorem 4, the
// single-choice occupancy lemmas (Lemma 2 and Lemma 11) that anchor the
// B_{β0} bound, and the per-round overflow tail bound of Lemma 4. These
// are the reproduction's deepest checks — if the implementation deviated
// from the paper's process in any structural way, these would fail first.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/theory"
	"repro/internal/xrand"
)

// InductionRow is one layer of the Theorem 4 induction check.
type InductionRow struct {
	I      int
	Beta   float64 // β_i from the recursion
	MeasNu float64 // measured mean ν_{y0+i}
	Holds  bool    // measured ≤ β_i
}

// InductionResult is the outcome of the layered-induction check for one
// (k, d) at one n.
type InductionResult struct {
	K, D, N int
	Runs    int
	// Y0 is the measured anchor: the smallest y with mean ν_y ≤ β₀.
	Y0 int
	// IStar is the proof's layer count bound ln ln n/ln(d−k+1) (computed
	// from the β sequence).
	IStar int
	Rows  []InductionRow
	// MaxLoadMean is the measured mean maximum load, which the proof
	// bounds by y0 + i* + 2.
	MaxLoadMean float64
	// ProofBound is y0 + i* + 2.
	ProofBound int
}

// LayeredInductionCheck runs (k,d)-choice and verifies the Theorem 4
// invariant ν_{y0+i} ≤ β_i layer by layer, where β is the paper's
// recursion and y0 is the measured anchor layer. The paper proves the
// invariant holds w.h.p.; here the run-averaged ν must satisfy it at
// every layer for the check to pass.
func LayeredInductionCheck(k, d, n, runs int, seed uint64) (*InductionResult, error) {
	if runs < 1 {
		return nil, fmt.Errorf("experiments: induction check needs runs >= 1")
	}
	if k < 1 || d <= k {
		return nil, fmt.Errorf("experiments: induction check requires 1 <= k < d, got k=%d d=%d", k, d)
	}
	beta := theory.BetaSequence(k, d, n)
	// Mean ν_y over runs, reconstructed per run from the final load vector.
	var nuMean []float64
	var maxMean stats.Online
	for r := 0; r < runs; r++ {
		pr, err := core.New(core.KDChoice, core.Params{N: n, K: k, D: d}, xrand.NewStream(seed, uint64(r)))
		if err != nil {
			return nil, err
		}
		pr.Place(n)
		maxMean.Add(float64(pr.MaxLoad()))
		nu := pr.Loads().NuAll()
		for len(nuMean) < len(nu) {
			nuMean = append(nuMean, 0)
		}
		for y, c := range nu {
			nuMean[y] += float64(c)
		}
	}
	for y := range nuMean {
		nuMean[y] /= float64(runs)
	}
	nuAt := func(y int) float64 {
		if y < 0 || y >= len(nuMean) {
			return 0
		}
		return nuMean[y]
	}
	// Anchor: smallest y with mean ν_y <= β₀ (Theorem 3 supplies y0).
	y0 := 0
	for nuAt(y0) > beta[0] {
		y0++
		if y0 > len(nuMean)+1 {
			break
		}
	}
	res := &InductionResult{
		K: k, D: d, N: n, Runs: runs,
		Y0:          y0,
		IStar:       theory.IStar(k, d, n),
		MaxLoadMean: maxMean.Mean(),
	}
	res.ProofBound = y0 + res.IStar + 2
	for i, b := range beta {
		meas := nuAt(y0 + i)
		res.Rows = append(res.Rows, InductionRow{
			I: i, Beta: b, MeasNu: meas, Holds: meas <= b,
		})
	}
	return res, nil
}

// OccupancyRow compares measured single-choice occupancy against the
// Lemma 2 / Lemma 11 bounds at one height y.
type OccupancyRow struct {
	Y          int
	MuMeasured float64
	MuBound    float64 // Lemma 2: 8n/y!
	NuMeasured float64
	NuBound    float64 // Lemma 11: n/(8 y!)
	MuHolds    bool    // µ ≤ bound
	NuHolds    bool    // ν ≥ bound
}

// SingleChoiceOccupancy verifies Lemma 2 (µ_y ≤ 8n/y! w.h.p.) and
// Lemma 11 (ν_y ≥ n/(8·y!) w.h.p.) for the classical single-choice
// process, for every y where the bounds are meaningful (bound ≥ ~ln n so
// the w.h.p. statement has room).
func SingleChoiceOccupancy(n, runs int, seed uint64) ([]OccupancyRow, error) {
	var muMean, nuMean []float64
	for r := 0; r < runs; r++ {
		pr, err := core.New(core.SingleChoice, core.Params{N: n}, xrand.NewStream(seed, uint64(r)))
		if err != nil {
			return nil, err
		}
		pr.Place(n)
		loads := pr.Loads()
		maxY := loads.Max()
		for len(muMean) <= maxY {
			muMean = append(muMean, 0)
			nuMean = append(nuMean, 0)
		}
		for y := 1; y <= maxY; y++ {
			muMean[y] += float64(loads.MuY(y))
			nuMean[y] += float64(loads.NuY(y))
		}
	}
	for y := range muMean {
		muMean[y] /= float64(runs)
		nuMean[y] /= float64(runs)
	}
	var rows []OccupancyRow
	for y := 1; y < len(muMean); y++ {
		nuBound := theory.Lemma11Bound(n, y)
		if nuBound < 8 { // concentration gone; w.h.p. statements vacuous
			break
		}
		rows = append(rows, OccupancyRow{
			Y:          y,
			MuMeasured: muMean[y],
			MuBound:    theory.Lemma2Bound(n, y),
			NuMeasured: nuMean[y],
			NuBound:    nuBound,
			MuHolds:    muMean[y] <= theory.Lemma2Bound(n, y),
			NuHolds:    nuMean[y] >= nuBound,
		})
	}
	return rows, nil
}

// OverflowRow is one (j, bound-vs-frequency) comparison of the Lemma 4
// check within a ν_y/n bucket.
type OverflowRow struct {
	J         int
	NuFracMax float64 // bucket upper edge for ν_y/n
	Freq      float64 // empirical Pr(X_r >= j) within the bucket
	Bound     float64 // Lemma 4 bound at the bucket's upper edge
	Rounds    int     // rounds in the bucket
	Holds     bool
}

// Lemma4Check verifies the round-overflow tail bound: for each round r,
// the number X_r of balls with height ≥ y+1 placed in round r satisfies
// Pr(X_r ≥ j | ν_y) ≤ C(d, d−k+j)(ν_y/n)^{d−k+j}. Rounds are bucketed by
// the value of ν_y/n just before the round; within each bucket the
// empirical frequency must not exceed the bound evaluated at the bucket's
// UPPER edge (the bound is monotone in ν_y). y is chosen as the average
// load (1 for the canonical n-into-n run).
func Lemma4Check(k, d, n, runs int, seed uint64) ([]OverflowRow, error) {
	const y = 1
	buckets := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	type cell struct {
		rounds int
		geJ    []int // geJ[j-1] = rounds with X_r >= j
	}
	cells := make([]cell, len(buckets))
	for i := range cells {
		cells[i].geJ = make([]int, k)
	}
	for r := 0; r < runs; r++ {
		pr, err := core.New(core.KDChoice, core.Params{N: n, K: k, D: d}, xrand.NewStream(seed, uint64(r)))
		if err != nil {
			return nil, err
		}
		hr := core.NewHeightRecorder(0)
		nuBefore := 0 // ν_y at round start, maintained incrementally
		hr.SetRoundHook(func(round int, heights []int) {
			// X_r = balls this round with height >= y+1.
			x := 0
			for _, h := range heights {
				if h >= y+1 {
					x++
				}
			}
			frac := float64(nuBefore) / float64(n)
			bi := 0
			for bi < len(buckets)-1 && frac > buckets[bi] {
				bi++
			}
			cells[bi].rounds++
			for j := 1; j <= x && j <= k; j++ {
				cells[bi].geJ[j-1]++
			}
			// Update ν_y for the next round.
			for _, h := range heights {
				if h == y {
					nuBefore++
				}
			}
		})
		pr.SetObserver(hr)
		pr.Place(n)
	}
	var rows []OverflowRow
	for bi, c := range cells {
		if c.rounds < 50 {
			continue // not enough mass for a frequency estimate
		}
		edge := buckets[bi]
		nuEdge := int(edge * float64(n))
		if nuEdge < 1 {
			nuEdge = 1
		}
		for j := 1; j <= k && j <= 3; j++ {
			freq := float64(c.geJ[j-1]) / float64(c.rounds)
			bound := theory.Lemma4Bound(k, d, n, j, nuEdge)
			rows = append(rows, OverflowRow{
				J:         j,
				NuFracMax: edge,
				Freq:      freq,
				Bound:     bound,
				Rounds:    c.rounds,
				Holds:     freq <= bound*1.05+3.0/float64(c.rounds), // tiny slack for sampling noise
			})
		}
	}
	return rows, nil
}
