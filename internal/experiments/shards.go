package experiments

import (
	"fmt"

	kdchoice "repro"
)

// ShardFrontierOpts configures the sharded-engine staleness study.
type ShardFrontierOpts struct {
	// N is the bin count; N balls are placed (the paper's canonical m = n).
	N int
	// K, D are the round shape (default 2, 8).
	K, D int
	// Shards is the worker count of every sharded cell (default 4; the
	// frontier is identical for any count >= 2 — sharded results are
	// worker-count independent by construction).
	Shards int
	// Blocks are the superstep sizes to sweep (default 1, 4, 16, 64, 256).
	Blocks []int
	// Runs is the repetition count per cell.
	Runs int
	// Seed is the root seed.
	Seed uint64
}

// ShardFrontierPoint is one point of the staleness-vs-synchronization
// frontier.
type ShardFrontierPoint struct {
	// Block is the superstep size in rounds: every decision inside a
	// block sees the loads as of the block start.
	Block int
	// Syncs is the number of serial synchronization points per run
	// (ceil(rounds/Block)) — the quantity parallel hardware buys down as
	// Block grows, and the x-axis a multi-core speedup curve follows.
	Syncs int
	// MeanGap is the sharded cell's mean max−avg gap.
	MeanGap float64
	// GapInflation is MeanGap minus the serial baseline's mean gap — the
	// staleness price of deciding Block rounds against a frozen snapshot.
	// Exactly 0 at Block = 1 (the sharded engine is bit-identical to
	// serial there).
	GapInflation float64
}

// ShardFrontier measures the sharded superstep engine's staleness frontier:
// the same (k,d)-choice process run serially and under the sharded engine
// at increasing block sizes. A block of B rounds decides all B·k balls
// against the loads at the block start, so B is both the parallel grain
// (one gather/decide fan-out per block, one serial sync per block) and the
// staleness horizon. The frontier quantifies the tradeoff the engine
// exposes: Block = 1 is bit-identical to the sequential paper process and
// synchronizes every round; large blocks synchronize rarely — the regime
// where shard workers would scale on real cores — but drift toward
// independent stale decisions, the parallel-allocation model the paper
// argues against (§1, references [1, 16]). The gap column measures that
// drift directly.
//
// The whole sweep (serial baseline + every block size) runs as one
// Experiment on the shared worker pool. Results are deterministic given
// the seed and independent of the worker count.
func ShardFrontier(opts ShardFrontierOpts) ([]ShardFrontierPoint, error) {
	if opts.K == 0 {
		opts.K = 2
	}
	if opts.D == 0 {
		opts.D = 8
	}
	if opts.Shards == 0 {
		opts.Shards = 4
	}
	blocks := opts.Blocks
	if len(blocks) == 0 {
		blocks = []int{1, 4, 16, 64, 256}
	}
	base := kdchoice.Config{
		Bins: opts.N, K: opts.K, D: opts.D,
		Policy: kdchoice.KDChoice, Seed: normalizeSeed(opts.Seed),
	}
	// Cell 0 is the serial baseline; cell i+1 is the sharded engine at
	// blocks[i].
	cells := make([]kdchoice.Cell, 0, len(blocks)+1)
	cells = append(cells, kdchoice.Cell{Config: base})
	for _, b := range blocks {
		cfg := base
		cfg.Shards = opts.Shards
		cfg.Block = b
		cells = append(cells, kdchoice.Cell{Config: cfg})
	}
	rep, err := kdchoice.Experiment{
		Cells: cells,
		Runs:  opts.Runs,
		Seed:  opts.Seed,
	}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: shard frontier: %w", err)
	}
	serialGap := rep.Cells[0].MeanGap
	rounds := (opts.N + opts.K - 1) / opts.K
	out := make([]ShardFrontierPoint, 0, len(blocks))
	for i, b := range blocks {
		c := &rep.Cells[i+1]
		out = append(out, ShardFrontierPoint{
			Block:        b,
			Syncs:        (rounds + b - 1) / b,
			MeanGap:      c.MeanGap,
			GapInflation: c.MeanGap - serialGap,
		})
	}
	return out, nil
}
