package experiments

import (
	"fmt"

	kdchoice "repro"
)

// PipelinePoint measures the distributed protocol at one pipeline depth.
type PipelinePoint struct {
	Pipeline     int
	MeanMax      float64
	MeanMakespan float64
	MsgsPerBall  float64
}

// PipelineAblation runs the netsim protocol (AB3): (k,d)-choice as literal
// probe/reply/place messages, sweeping the number of concurrent dispatcher
// rounds. Depth 1 is the paper's sequential process; deeper pipelines
// finish sooner but decide on stale load reports, trading balance for
// latency — the gap the paper's synchronous model abstracts away. The whole
// depths × runs grid executes as one study on the shared worker pool.
func PipelineAblation(servers, k, d, rounds, runs int, seed uint64, depths []int) ([]PipelinePoint, error) {
	if len(depths) == 0 {
		depths = []int{1, 4, 16, 64}
	}
	cells := make([]kdchoice.AppCell, 0, len(depths))
	for _, depth := range depths {
		cells = append(cells, kdchoice.ProtocolCell{
			Servers:  servers,
			K:        k,
			D:        d,
			Rounds:   rounds,
			Pipeline: depth,
			NetDelay: kdchoice.ExponentialDist(1),
			Seed:     normalizeSeed(seed + uint64(depth)*1000),
		})
	}
	rep, err := kdchoice.Study{Cells: cells, Runs: runs, Seed: seed}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: pipeline ablation: %w", err)
	}
	balls := float64(rounds * k)
	out := make([]PipelinePoint, 0, len(depths))
	for i, depth := range depths {
		c := &rep.Cells[i]
		out = append(out, PipelinePoint{
			Pipeline:     depth,
			MeanMax:      c.MeanMaxLoad,
			MeanMakespan: c.MeanMakespan,
			MsgsPerBall:  c.MeanMessages / balls,
		})
	}
	return out, nil
}
