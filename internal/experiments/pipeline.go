package experiments

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// PipelinePoint measures the distributed protocol at one pipeline depth.
type PipelinePoint struct {
	Pipeline     int
	MeanMax      float64
	MeanMakespan float64
	MsgsPerBall  float64
}

// PipelineAblation runs the netsim protocol (AB3): (k,d)-choice as literal
// probe/reply/place messages, sweeping the number of concurrent dispatcher
// rounds. Depth 1 is the paper's sequential process; deeper pipelines
// finish sooner but decide on stale load reports, trading balance for
// latency — the gap the paper's synchronous model abstracts away.
func PipelineAblation(servers, k, d, rounds, runs int, seed uint64, depths []int) ([]PipelinePoint, error) {
	if len(depths) == 0 {
		depths = []int{1, 4, 16, 64}
	}
	out := make([]PipelinePoint, 0, len(depths))
	balls := float64(rounds * k)
	for _, depth := range depths {
		var maxes, spans, msgs stats.Online
		for i := 0; i < runs; i++ {
			st, err := netsim.Run(netsim.Config{
				Servers:  servers,
				K:        k,
				D:        d,
				Rounds:   rounds,
				Pipeline: depth,
				NetDelay: workload.Exponential(1),
				Seed:     seed + uint64(depth)*1000 + uint64(i),
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: pipeline depth %d: %w", depth, err)
			}
			maxes.Add(float64(st.MaxLoad))
			spans.Add(st.Makespan)
			msgs.Add(float64(st.Messages))
		}
		out = append(out, PipelinePoint{
			Pipeline:     depth,
			MeanMax:      maxes.Mean(),
			MeanMakespan: spans.Mean(),
			MsgsPerBall:  msgs.Mean() / balls,
		})
	}
	return out, nil
}
