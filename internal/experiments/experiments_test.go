package experiments

import (
	"strings"
	"testing"
)

func TestTable1SmallGrid(t *testing.T) {
	cells, err := Table1(Table1Opts{N: 3 * (1 << 8), Runs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Count expected cells: all (k,d) with k < d, plus (1,1), restricted to
	// the grid and to d <= n.
	want := 0
	for _, k := range Table1Ks {
		for _, d := range Table1Ds {
			if d <= 3*(1<<8) && (k < d || (k == 1 && d == 1)) {
				want++
			}
		}
	}
	if len(cells) != want {
		t.Fatalf("got %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if len(c.DistinctMax) == 0 {
			t.Fatalf("cell (%d,%d) has no results", c.K, c.D)
		}
		for _, m := range c.DistinctMax {
			if m < 1 {
				t.Fatalf("cell (%d,%d) reports max load %d", c.K, c.D, m)
			}
		}
	}
}

func TestTable1Render(t *testing.T) {
	cells, err := Table1(Table1Opts{N: 96, Runs: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tbl := Table1Render(cells)
	text := tbl.Text()
	if !strings.Contains(text, "k=192") || !strings.Contains(text, "d=193") {
		t.Fatalf("render missing rows/cols:\n%s", text)
	}
	// k=192, d=2 is blank.
	lines := strings.Split(text, "\n")
	var k192 string
	for _, l := range lines {
		if strings.HasPrefix(l, "k=192") {
			k192 = l
		}
	}
	if !strings.Contains(k192, "-") {
		t.Fatalf("k=192 row should contain blank cells: %q", k192)
	}
}

func TestTable1RespectsGridInvariant(t *testing.T) {
	cells, err := Table1(Table1Opts{N: 96, Runs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.K >= c.D && !(c.K == 1 && c.D == 1) {
			t.Fatalf("unexpected cell (%d,%d)", c.K, c.D)
		}
	}
}

func TestPaperTable1Sanity(t *testing.T) {
	paper := PaperTable1()
	// Spot-check the famous cells.
	if got := paper[[2]int{1, 1}]; len(got) != 3 || got[0] != 7 {
		t.Fatalf("(1,1) = %v", got)
	}
	if got := paper[[2]int{192, 193}]; len(got) != 2 || got[0] != 5 {
		t.Fatalf("(192,193) = %v", got)
	}
	// Every key must be a valid grid cell.
	inGrid := func(v int, grid []int) bool {
		for _, g := range grid {
			if g == v {
				return true
			}
		}
		return false
	}
	for key := range paper {
		if !inGrid(key[0], Table1Ks) || !inGrid(key[1], Table1Ds) {
			t.Fatalf("paper cell %v not on the grid", key)
		}
	}
}

func TestLoadVectorProfile(t *testing.T) {
	p, err := LoadVectorProfile(2, 3, 1024, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.B1 <= 0 || p.B1 < p.BBeta0 || p.BBeta0 < p.BGammaStar {
		t.Fatalf("profile not decreasing: B1=%v BBeta0=%v BGammaStar=%v", p.B1, p.BBeta0, p.BGammaStar)
	}
	if p.MeasuredGap < 0 {
		t.Fatalf("negative measured gap %v", p.MeasuredGap)
	}
	if len(p.MeanProfile) != 1024 {
		t.Fatalf("profile length %d", len(p.MeanProfile))
	}
	if p.Beta0 < 1 || p.GammaStar < p.Beta0 {
		t.Fatalf("checkpoints: beta0=%d gammastar=%d", p.Beta0, p.GammaStar)
	}
}

func TestLoadVectorProfileError(t *testing.T) {
	if _, err := LoadVectorProfile(3, 2, 64, 1, 1); err == nil {
		t.Fatal("invalid k/d accepted")
	}
}

func TestScalingSeries(t *testing.T) {
	pts, err := ScalingSeries(1, 2, []int{256, 1024, 4096}, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// Mean max should not decrease with n, and predictions grow.
	for i := 1; i < len(pts); i++ {
		if pts[i].MeanMax < pts[i-1].MeanMax-0.5 {
			t.Fatalf("mean max dropped: %v", pts)
		}
		if pts[i].Predicted < pts[i-1].Predicted {
			t.Fatalf("prediction dropped: %v", pts)
		}
	}
}

func TestScalingSeriesSingleChoice(t *testing.T) {
	pts, err := ScalingSeries(1, 1, []int{1024}, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].MeanMax < 3 {
		t.Fatalf("single-choice mean max %v suspiciously low", pts[0].MeanMax)
	}
}

func TestHeavySeries(t *testing.T) {
	pts, err := HeavySeries(2, 4, 256, []int{1, 4, 16}, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.MeanGap < 0 {
			t.Fatalf("negative gap at mult %d", p.Mult)
		}
		if p.GapLower > p.GapUpper {
			t.Fatalf("theory bounds inverted at mult %d", p.Mult)
		}
	}
	// Gap at m=16n should not exceed gap at m=4n by much (Theorem 2).
	if pts[2].MeanGap > pts[1].MeanGap+1.5 {
		t.Fatalf("gap not stabilizing: %v", pts)
	}
}

func TestTradeoffFrontier(t *testing.T) {
	pts, err := TradeoffFrontier(4096, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d frontier points", len(pts))
	}
	byLabel := map[string]TradeoffPoint{}
	for _, p := range pts {
		byLabel[p.Label] = p
	}
	single := byLabel["single choice"]
	two := byLabel["two-choice"]
	if single.MessagesPerBall != 1 {
		t.Fatalf("single-choice messages/ball = %v", single.MessagesPerBall)
	}
	if two.MessagesPerBall != 2 {
		t.Fatalf("two-choice messages/ball = %v", two.MessagesPerBall)
	}
	if two.MeanMax >= single.MeanMax {
		t.Fatal("two-choice should beat single choice")
	}
	// The d=2k sweet spot: 2 messages/ball and low max load.
	for _, p := range pts {
		if strings.Contains(p.Label, "d=2k") {
			if p.MessagesPerBall < 1.9 || p.MessagesPerBall > 2.1 {
				t.Fatalf("d=2k messages/ball = %v", p.MessagesPerBall)
			}
			if p.MeanMax >= single.MeanMax {
				t.Fatal("d=2k sweet spot should beat single choice")
			}
		}
	}
}

func TestRemarks(t *testing.T) {
	rows, err := Remarks(4096, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d remark rows", len(rows))
	}
	// (64,65) must beat single choice on max load.
	last := rows[2]
	if MeanOfInts(last.LeftMax) >= MeanOfInts(last.RightMax) {
		t.Fatalf("(64,65) max %v not better than single choice %v", last.LeftMax, last.RightMax)
	}
}

func TestAdaptiveAblation(t *testing.T) {
	pts, err := AdaptiveAblation(2048, 5, 19, [][2]int{{2, 3}, {7, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d ablation points", len(pts))
	}
	for _, p := range pts {
		// Section 7: the adaptive variant should never be meaningfully
		// worse.
		if p.AdaptMax > p.StrictMax+0.5 {
			t.Fatalf("(%d,%d): adaptive %.2f worse than strict %.2f", p.K, p.D, p.AdaptMax, p.StrictMax)
		}
	}
}

func TestMajorizationChecks(t *testing.T) {
	checks, err := MajorizationChecks(1024, 200, 23)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 4 {
		t.Fatalf("%d checks", len(checks))
	}
	for _, c := range checks {
		if !c.Holds {
			t.Fatalf("majorization %s failed: left %.3f right %.3f", c.Property, c.LeftMean, c.RightMean)
		}
	}
}

func TestSchedulerComparison(t *testing.T) {
	rows, err := SchedulerComparison(SchedulerOpts{
		Workers: 50, Jobs: 600, Rho: 0.8, Seed: 29, Ks: []int{2, 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.BatchMean <= 0 || r.PerTaskMean <= 0 || r.RandomMean <= 0 {
			t.Fatalf("non-positive response times: %+v", r)
		}
		if r.ProbesPerJob != float64(2*r.K) {
			t.Fatalf("k=%d probes/job %v, want %d", r.K, r.ProbesPerJob, 2*r.K)
		}
		// Informed placement beats random.
		if r.BatchMean >= r.RandomMean {
			t.Fatalf("k=%d: batch %.3f not better than random %.3f", r.K, r.BatchMean, r.RandomMean)
		}
	}
	// At k=8 the batch tail should beat the per-task tail (the paper's
	// argument for sharing probes).
	if rows[1].BatchP95 >= rows[1].PerTaskP95 {
		t.Fatalf("k=8: batch p95 %.3f not better than per-task %.3f",
			rows[1].BatchP95, rows[1].PerTaskP95)
	}
}

func TestStorageComparison(t *testing.T) {
	rows, err := StorageComparison(StorageOpts{
		Servers: 128, Files: 4000, Seed: 31, Ks: []int{3, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Search cost: k+1 vs 2k, the paper's claim.
		if r.KDSearch != r.K+1 {
			t.Fatalf("k=%d kd search %d, want %d", r.K, r.KDSearch, r.K+1)
		}
		if r.TwoSearch != 2*r.K {
			t.Fatalf("k=%d two search %d, want %d", r.K, r.TwoSearch, 2*r.K)
		}
		// Message cost: (k+1)/file vs 2k/file.
		if r.KDMsgsPerFile >= r.TwoMsgsPerFile {
			t.Fatalf("k=%d: kd msgs %.2f not below two-choice %.2f", r.K, r.KDMsgsPerFile, r.TwoMsgsPerFile)
		}
		// Balance comparable: within a couple of objects.
		if r.KDMax > r.TwoMax+3 {
			t.Fatalf("k=%d: kd max %.1f much worse than two %.1f", r.K, r.KDMax, r.TwoMax)
		}
	}
}

func TestSharingAblation(t *testing.T) {
	pts, err := SharingAblation(1024, 100, 61, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.SharedMax > p.StaleMax+0.15 {
			t.Fatalf("k=%d: shared %.2f worse than stale %.2f", p.K, p.SharedMax, p.StaleMax)
		}
		if p.Budget != 2*p.K {
			t.Fatalf("k=%d: budget %d", p.K, p.Budget)
		}
	}
}

func TestSchedulerComparisonSkipsInfeasibleK(t *testing.T) {
	// 30 workers cannot host a d = 32 probe batch; k = 16 must be dropped.
	rows, err := SchedulerComparison(SchedulerOpts{
		Workers: 30, Jobs: 100, Rho: 0.6, Seed: 1, Ks: []int{4, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].K != 4 {
		t.Fatalf("expected only k=4, got %+v", rows)
	}
	// No feasible level at all is an error.
	if _, err := SchedulerComparison(SchedulerOpts{
		Workers: 3, Jobs: 10, Rho: 0.6, Seed: 1, Ks: []int{4},
	}); err == nil {
		t.Fatal("infeasible cluster accepted")
	}
}

func TestHeavyScaleQuick(t *testing.T) {
	points, err := HeavyScale(HeavyScaleOpts{
		Ns:   []int{512, 2048},
		Mult: 8,
		Runs: 2,
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	for _, p := range points {
		if p.Balls != 8*p.N {
			t.Fatalf("n=%d: balls = %d, want %d", p.N, p.Balls, 8*p.N)
		}
		// Theorem 2: the gap stays far below any linear-in-m/n growth; at
		// (2,64) it is O(1) with generous slack.
		if p.MeanGap < 0 || p.MeanGap > 5 {
			t.Fatalf("n=%d: gap %v out of the Theorem 2 window", p.N, p.MeanGap)
		}
		if p.GapUpper <= 0 {
			t.Fatalf("n=%d: missing upper term", p.N)
		}
		// ν_{avg+1} comes from the streamed occupancy profile and is
		// bounded by the bin count.
		if p.AboveAvg < 0 || p.AboveAvg > float64(p.N) {
			t.Fatalf("n=%d: AboveAvg %v out of range", p.N, p.AboveAvg)
		}
	}
	// Determinism: the same options reproduce the same points.
	again, err := HeavyScale(HeavyScaleOpts{Ns: []int{512, 2048}, Mult: 8, Runs: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if points[i] != again[i] {
			t.Fatalf("HeavyScale not deterministic at point %d", i)
		}
	}
}
