package experiments

import (
	"math"
	"testing"
)

func TestFaultFrontier(t *testing.T) {
	pts, err := FaultFrontier(FaultFrontierOpts{
		N:         256,
		LossRates: []float64{0.1, 0.5},
		Retries:   []int{0, 4},
		Runs:      3,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4 (2 losses x 2 retries)", len(pts))
	}
	byKey := map[[2]int]FaultFrontierPoint{}
	for _, p := range pts {
		if math.IsNaN(p.MeanGap) || math.IsInf(p.MeanGap, 0) {
			t.Fatalf("point %+v has a non-finite gap", p)
		}
		if p.ProbesLost <= 0 {
			t.Fatalf("point %+v lost no probes under loss %g", p, p.LossRate)
		}
		if p.Retry == 0 && p.Retries != 0 {
			t.Fatalf("point %+v retried with a zero budget", p)
		}
		if p.Retry > 0 && p.Retries == 0 {
			t.Fatalf("point %+v has a retry budget but never retried", p)
		}
		byKey[[2]int{int(p.LossRate * 10), p.Retry}] = p
	}
	// More loss loses more probes at the same retry budget.
	if byKey[[2]int{5, 0}].ProbesLost <= byKey[[2]int{1, 0}].ProbesLost {
		t.Fatalf("loss 0.5 lost no more probes than loss 0.1: %+v vs %+v",
			byKey[[2]int{5, 0}], byKey[[2]int{1, 0}])
	}
	// Retries soften the gap at heavy loss: the retried point must not be
	// materially worse than the unretried one.
	heavy, retried := byKey[[2]int{5, 0}], byKey[[2]int{5, 4}]
	if retried.GapInflation > heavy.GapInflation+0.5 {
		t.Fatalf("retry:4 inflated the gap beyond retry:0 at loss 0.5: %+v vs %+v", retried, heavy)
	}
}

func TestFaultFrontierDeterministic(t *testing.T) {
	opts := FaultFrontierOpts{
		N:         128,
		LossRates: []float64{0.2},
		Retries:   []int{2},
		FailRate:  0.01,
		DownFor:   8,
		Runs:      2,
		Seed:      3,
	}
	a, err := FaultFrontier(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultFrontier(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frontier not reproducible: %+v vs %+v", a[i], b[i])
		}
	}
}
