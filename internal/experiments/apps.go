package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/storage"
	"repro/internal/workload"
)

// SchedulerOpts configures the Section 1.3 cluster-scheduling experiment
// (A1): batch (k,d)-choice placement vs per-task d-choice at equal probe
// budget, across job parallelism levels.
type SchedulerOpts struct {
	Workers int     // worker machines (default 100)
	Jobs    int     // jobs per cell (default 2000)
	Rho     float64 // utilization (default 0.85)
	Seed    uint64
	Ks      []int // job parallelism levels (default {2,4,8,16})
	Pareto  bool  // heavy-tailed task durations instead of exponential
}

// SchedulerRow is one parallelism level of the scheduler comparison.
type SchedulerRow struct {
	K            int
	BatchMean    float64
	BatchP95     float64
	LateMean     float64
	LateP95      float64
	PerTaskMean  float64
	PerTaskP95   float64
	RandomMean   float64
	RandomP95    float64
	ProbesPerJob float64 // identical for batch, late-binding and per-task by design
}

// SchedulerComparison runs the A1 experiment: for each parallelism k, batch
// sampling with d = 2k against per-task two-choice (same total probes) and
// random placement.
func SchedulerComparison(opts SchedulerOpts) ([]SchedulerRow, error) {
	if opts.Workers == 0 {
		opts.Workers = 100
	}
	if opts.Jobs == 0 {
		opts.Jobs = 2000
	}
	if opts.Rho == 0 {
		opts.Rho = 0.85
	}
	if len(opts.Ks) == 0 {
		opts.Ks = []int{2, 4, 8, 16}
	}
	// Drop parallelism levels whose probe batch d = 2k cannot fit the
	// cluster (the comparison needs D <= workers).
	feasible := make([]int, 0, len(opts.Ks))
	for _, k := range opts.Ks {
		if 2*k <= opts.Workers {
			feasible = append(feasible, k)
		}
	}
	if len(feasible) == 0 {
		return nil, fmt.Errorf("experiments: no parallelism level fits %d workers (need 2k <= workers)", opts.Workers)
	}
	opts.Ks = feasible
	dist := workload.Exponential(1.0)
	if opts.Pareto {
		dist = workload.Pareto(2.0, 1.0)
	}
	rows := make([]SchedulerRow, 0, len(opts.Ks))
	for i, k := range opts.Ks {
		base := cluster.Config{
			NumWorkers: opts.Workers,
			K:          k,
			D:          2 * k,
			DPerTask:   2,
			Jobs:       opts.Jobs,
			Rho:        opts.Rho,
			TaskDist:   dist,
			Seed:       opts.Seed + uint64(i)*101,
		}
		batchCfg := base
		batchCfg.Policy = cluster.BatchKD
		batch, err := cluster.Run(batchCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: scheduler batch k=%d: %w", k, err)
		}
		lateCfg := base
		lateCfg.Policy = cluster.LateBinding
		late, err := cluster.Run(lateCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: scheduler late-binding k=%d: %w", k, err)
		}
		ptCfg := base
		ptCfg.Policy = cluster.PerTaskD
		perTask, err := cluster.Run(ptCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: scheduler per-task k=%d: %w", k, err)
		}
		rndCfg := base
		rndCfg.Policy = cluster.RandomPlace
		random, err := cluster.Run(rndCfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: scheduler random k=%d: %w", k, err)
		}
		rows = append(rows, SchedulerRow{
			K:            k,
			BatchMean:    batch.MeanResponse(),
			BatchP95:     batch.ResponseQuantile(0.95),
			LateMean:     late.MeanResponse(),
			LateP95:      late.ResponseQuantile(0.95),
			PerTaskMean:  perTask.MeanResponse(),
			PerTaskP95:   perTask.ResponseQuantile(0.95),
			RandomMean:   random.MeanResponse(),
			RandomP95:    random.ResponseQuantile(0.95),
			ProbesPerJob: batch.ProbesPerJob(),
		})
	}
	return rows, nil
}

// StorageOpts configures the Section 1.3 storage experiment (A2).
type StorageOpts struct {
	Servers int // default 256
	Files   int // default 20000
	Seed    uint64
	Ks      []int // replication factors (default {2,3,5,8})
}

// StorageRow compares (k,k+1)-choice against per-copy two-choice and random
// placement for one replication factor.
type StorageRow struct {
	K               int
	KDMax           float64
	KDMsgsPerFile   float64
	KDSearch        int
	TwoMax          float64
	TwoMsgsPerFile  float64
	TwoSearch       int
	RandMax         float64
	RandMsgsPerFile float64
}

// StorageComparison runs the A2 experiment: placement balance, message
// cost, and search cost of (k,k+1)-choice vs per-copy two-choice vs random.
func StorageComparison(opts StorageOpts) ([]StorageRow, error) {
	if opts.Servers == 0 {
		opts.Servers = 256
	}
	if opts.Files == 0 {
		opts.Files = 20000
	}
	if len(opts.Ks) == 0 {
		opts.Ks = []int{2, 3, 5, 8}
	}
	rows := make([]StorageRow, 0, len(opts.Ks))
	for i, k := range opts.Ks {
		mk := func(policy storage.PlacementPolicy, seedOff uint64) (*storage.System, error) {
			s, err := storage.New(storage.Config{
				Servers:  opts.Servers,
				Files:    opts.Files,
				K:        k,
				D:        k + 1,
				DPerCopy: 2,
				Distinct: true,
				Policy:   policy,
				Seed:     opts.Seed + uint64(i)*307 + seedOff,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: storage k=%d: %w", k, err)
			}
			s.IngestAll()
			return s, nil
		}
		kd, err := mk(storage.KDPlace, 0)
		if err != nil {
			return nil, err
		}
		two, err := mk(storage.PerCopyD, 1)
		if err != nil {
			return nil, err
		}
		rnd, err := mk(storage.RandomPlace, 2)
		if err != nil {
			return nil, err
		}
		files := float64(opts.Files)
		rows = append(rows, StorageRow{
			K:               k,
			KDMax:           kd.MaxLoad(),
			KDMsgsPerFile:   float64(kd.Messages()) / files,
			KDSearch:        kd.SearchCost(),
			TwoMax:          two.MaxLoad(),
			TwoMsgsPerFile:  float64(two.Messages()) / files,
			TwoSearch:       two.SearchCost(),
			RandMax:         rnd.MaxLoad(),
			RandMsgsPerFile: float64(rnd.Messages()) / files,
		})
	}
	return rows, nil
}
