package experiments

import (
	"fmt"

	kdchoice "repro"
)

// The Section 1.3 application comparisons run on the public kdchoice.Study
// harness: every (parallelism, policy) cell of a comparison is one study
// cell, and the whole grid — thousands of discrete-event runs — executes on
// the shared bounded worker pool with deterministic per-(cell, run) seed
// streams. Cell seeds reproduce the original serial drivers exactly, so
// rows are bit-identical to the pre-harness implementation for equal seeds
// (pinned by TestSchedulerComparisonMatchesSerialPath and friends).

// SchedulerOpts configures the Section 1.3 cluster-scheduling experiment
// (A1): batch (k,d)-choice placement vs per-task d-choice at equal probe
// budget, across job parallelism levels.
type SchedulerOpts struct {
	Workers int     // worker machines (default 100)
	Jobs    int     // jobs per cell (default 2000)
	Rho     float64 // utilization (default 0.85)
	Seed    uint64  // root seed (0 is normalized to 1)
	Ks      []int   // job parallelism levels (default {2,4,8,16})
	Pareto  bool    // heavy-tailed task durations instead of exponential
	Runs    int     // independent runs averaged per cell (default 1)
	Pool    int     // study worker-pool bound (default GOMAXPROCS)
}

// normalizeSeed keeps derived cell seeds away from 0: a zero cell seed is
// the Study's "derive from the root seed" sentinel, which would silently
// give the policies of a comparison row different streams instead of the
// shared one the serial drivers used. Seed 0 therefore means seed 1.
func normalizeSeed(seed uint64) uint64 {
	if seed == 0 {
		return 1
	}
	return seed
}

// SchedulerRow is one parallelism level of the scheduler comparison.
type SchedulerRow struct {
	K            int
	BatchMean    float64
	BatchP95     float64
	LateMean     float64
	LateP95      float64
	PerTaskMean  float64
	PerTaskP95   float64
	RandomMean   float64
	RandomP95    float64
	ProbesPerJob float64 // identical for batch, late-binding and per-task by design
}

// schedulerPolicies is the fixed policy order of one comparison row.
var schedulerPolicies = []kdchoice.SchedulerPolicy{
	kdchoice.BatchSampling,
	kdchoice.SparrowBinding,
	kdchoice.PerTaskChoice,
	kdchoice.RandomAssignment,
}

// SchedulerComparison runs the A1 experiment: for each parallelism k, batch
// sampling with d = 2k against Sparrow late binding, per-task two-choice
// (same total probes) and random placement. All cells run in parallel as
// one study.
func SchedulerComparison(opts SchedulerOpts) ([]SchedulerRow, error) {
	if opts.Workers == 0 {
		opts.Workers = 100
	}
	if opts.Jobs == 0 {
		opts.Jobs = 2000
	}
	if opts.Rho == 0 {
		opts.Rho = 0.85
	}
	if len(opts.Ks) == 0 {
		opts.Ks = []int{2, 4, 8, 16}
	}
	opts.Seed = normalizeSeed(opts.Seed)
	// Drop parallelism levels whose probe batch d = 2k cannot fit the
	// cluster (the comparison needs D <= workers).
	feasible := make([]int, 0, len(opts.Ks))
	for _, k := range opts.Ks {
		if 2*k <= opts.Workers {
			feasible = append(feasible, k)
		}
	}
	if len(feasible) == 0 {
		return nil, fmt.Errorf("experiments: no parallelism level fits %d workers (need 2k <= workers)", opts.Workers)
	}
	opts.Ks = feasible
	dist := kdchoice.ExponentialDist(1.0)
	if opts.Pareto {
		dist = kdchoice.ParetoDist(2.0, 1.0)
	}
	cells := make([]kdchoice.AppCell, 0, len(schedulerPolicies)*len(opts.Ks))
	for i, k := range opts.Ks {
		base := kdchoice.SchedulerCell{
			Workers:  opts.Workers,
			K:        k,
			D:        2 * k,
			DPerTask: 2,
			Jobs:     opts.Jobs,
			Rho:      opts.Rho,
			TaskDist: dist,
			// The row's policies share one seed, exactly as the serial
			// driver ran them (normalized away from the 0 sentinel, which
			// only an overflowing opts.Seed can produce here).
			Seed: normalizeSeed(opts.Seed + uint64(i)*101),
		}
		for _, pol := range schedulerPolicies {
			c := base
			c.Policy = pol
			cells = append(cells, c)
		}
	}
	rep, err := kdchoice.Study{Cells: cells, Runs: opts.Runs, Seed: opts.Seed, Workers: opts.Pool}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: scheduler comparison: %w", err)
	}
	rows := make([]SchedulerRow, 0, len(opts.Ks))
	for i, k := range opts.Ks {
		batch := &rep.Cells[len(schedulerPolicies)*i]
		late := &rep.Cells[len(schedulerPolicies)*i+1]
		perTask := &rep.Cells[len(schedulerPolicies)*i+2]
		random := &rep.Cells[len(schedulerPolicies)*i+3]
		rows = append(rows, SchedulerRow{
			K:            k,
			BatchMean:    batch.MeanResponse,
			BatchP95:     batch.MeanP95,
			LateMean:     late.MeanResponse,
			LateP95:      late.MeanP95,
			PerTaskMean:  perTask.MeanResponse,
			PerTaskP95:   perTask.MeanP95,
			RandomMean:   random.MeanResponse,
			RandomP95:    random.MeanP95,
			ProbesPerJob: batch.MessagesPerUnit,
		})
	}
	return rows, nil
}

// StorageOpts configures the Section 1.3 storage experiment (A2).
type StorageOpts struct {
	Servers int    // default 256
	Files   int    // default 20000
	Seed    uint64 // root seed (0 is normalized to 1)
	Ks      []int  // replication factors (default {2,3,5,8})
	Runs    int    // independent runs averaged per cell (default 1)
	Pool    int    // study worker-pool bound (default GOMAXPROCS)
}

// StorageRow compares (k,k+1)-choice against per-copy two-choice and random
// placement for one replication factor.
type StorageRow struct {
	K               int
	KDMax           float64
	KDMsgsPerFile   float64
	KDSearch        int
	TwoMax          float64
	TwoMsgsPerFile  float64
	TwoSearch       int
	RandMax         float64
	RandMsgsPerFile float64
}

// storagePolicies is the fixed policy order of one comparison row; the
// offsets preserve the serial driver's per-policy seed staggering.
var storagePolicies = []struct {
	policy  kdchoice.StoragePolicy
	seedOff uint64
}{
	{kdchoice.KDPlacement, 0},
	{kdchoice.PerCopyChoice, 1},
	{kdchoice.RandomCopyPlacement, 2},
}

// StorageComparison runs the A2 experiment: placement balance, message
// cost, and search cost of (k,k+1)-choice vs per-copy two-choice vs random.
// All cells run in parallel as one study.
func StorageComparison(opts StorageOpts) ([]StorageRow, error) {
	if opts.Servers == 0 {
		opts.Servers = 256
	}
	if opts.Files == 0 {
		opts.Files = 20000
	}
	if len(opts.Ks) == 0 {
		opts.Ks = []int{2, 3, 5, 8}
	}
	opts.Seed = normalizeSeed(opts.Seed)
	cells := make([]kdchoice.AppCell, 0, len(storagePolicies)*len(opts.Ks))
	for i, k := range opts.Ks {
		for _, p := range storagePolicies {
			cells = append(cells, kdchoice.StorageCell{
				Servers:  opts.Servers,
				Files:    opts.Files,
				K:        k,
				D:        k + 1,
				DPerCopy: 2,
				Distinct: true,
				Policy:   p.policy,
				Seed:     normalizeSeed(opts.Seed + uint64(i)*307 + p.seedOff),
			})
		}
	}
	rep, err := kdchoice.Study{Cells: cells, Runs: opts.Runs, Seed: opts.Seed, Workers: opts.Pool}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: storage comparison: %w", err)
	}
	rows := make([]StorageRow, 0, len(opts.Ks))
	for i, k := range opts.Ks {
		kd := &rep.Cells[len(storagePolicies)*i]
		two := &rep.Cells[len(storagePolicies)*i+1]
		rnd := &rep.Cells[len(storagePolicies)*i+2]
		rows = append(rows, StorageRow{
			K:               k,
			KDMax:           kd.MeanMaxLoad,
			KDMsgsPerFile:   kd.MessagesPerUnit,
			KDSearch:        kd.Runs[0].SearchCost,
			TwoMax:          two.MeanMaxLoad,
			TwoMsgsPerFile:  two.MessagesPerUnit,
			TwoSearch:       two.Runs[0].SearchCost,
			RandMax:         rnd.MeanMaxLoad,
			RandMsgsPerFile: rnd.MessagesPerUnit,
		})
	}
	return rows, nil
}
