package experiments

import (
	"testing"

	kdchoice "repro"
)

// TestApproxFrontier pins the frontier's structural contracts at small n:
// the exact stores occupy their documented budgets and are bit-identical
// (zero inflation), and the sketch undercuts half a byte per bin while only
// ever inflating the max load (one-sided error).
func TestApproxFrontier(t *testing.T) {
	pts, err := ApproxFrontier(ApproxFrontierOpts{
		Ns:   []int{2048, 4096},
		Runs: 2,
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6 (2 n × 3 stores)", len(pts))
	}
	byStore := func(n int, s kdchoice.Store) ApproxFrontierPoint {
		t.Helper()
		for _, p := range pts {
			if p.N == n && p.Store == s {
				return p
			}
		}
		t.Fatalf("no point for n=%d store=%v", n, s)
		return ApproxFrontierPoint{}
	}
	for _, n := range []int{2048, 4096} {
		compact := byStore(n, kdchoice.StoreCompact)
		nibble := byStore(n, kdchoice.StoreNibble)
		sketch := byStore(n, kdchoice.StoreSketch)
		if compact.BytesPerBin != 2 {
			t.Fatalf("n=%d: compact BytesPerBin = %v, want 2", n, compact.BytesPerBin)
		}
		if nibble.BytesPerBin != 0.5 {
			t.Fatalf("n=%d: nibble BytesPerBin = %v, want 0.5 (no escapes at light load)", n, nibble.BytesPerBin)
		}
		if sketch.BytesPerBin >= 0.5 {
			t.Fatalf("n=%d: sketch BytesPerBin = %v, want < 0.5", n, sketch.BytesPerBin)
		}
		if nibble.MeanMax != compact.MeanMax || nibble.MaxInflation != 0 {
			t.Fatalf("n=%d: nibble diverged from the exact baseline: max %v vs %v",
				n, nibble.MeanMax, compact.MeanMax)
		}
		if sketch.MaxInflation < 0 {
			t.Fatalf("n=%d: sketch max-load inflation %v negative; overestimates must be one-sided",
				n, sketch.MaxInflation)
		}
		if compact.Balls != n || nibble.Balls != n {
			t.Fatalf("n=%d: Balls = %d/%d, want %d (Mult default 1)", n, compact.Balls, nibble.Balls, n)
		}
	}
}
