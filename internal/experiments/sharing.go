package experiments

import (
	"fmt"

	kdchoice "repro"
)

// SharingPoint compares, at one probe budget, the paper's shared-batch
// (k,d)-choice against the stale parallel baseline (each ball probing
// independently against round-start loads) and against sequential d-choice
// with the same per-ball probe count.
type SharingPoint struct {
	K          int
	Budget     int // probes per round for the shared batch (= d)
	SharedMax  float64
	StaleMax   float64
	DChoiceMax float64
}

// SharingAblation runs the information-sharing ablation (AB2): for each k,
// the probe budget is 2k per round, spent either as one shared batch
// ((k,2k)-choice), as 2 stale probes per ball (parallel model of the
// paper's refs [1,16]), or as sequential per-ball two-choice. The whole
// 3 × len(ks) grid runs as one experiment batch.
func SharingAblation(n, runs int, seed uint64, ks []int) ([]SharingPoint, error) {
	if len(ks) == 0 {
		ks = []int{2, 4, 8, 16}
	}
	cells := make([]kdchoice.Cell, 0, 3*len(ks))
	for i, k := range ks {
		cells = append(cells,
			kdchoice.Cell{Config: kdchoice.Config{Bins: n, K: k, D: 2 * k, Seed: seed + uint64(i)*17}},
			kdchoice.Cell{Config: kdchoice.Config{Bins: n, K: k, D: 2, Policy: kdchoice.StaleBatch, Seed: seed + uint64(i)*17 + 3}},
			kdchoice.Cell{Config: kdchoice.Config{Bins: n, D: 2, Policy: kdchoice.DChoice, Seed: seed + uint64(i)*17 + 7}},
		)
	}
	rep, err := kdchoice.Experiment{Cells: cells, Runs: runs, Seed: seed}.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: sharing ablation: %w", err)
	}
	out := make([]SharingPoint, 0, len(ks))
	for i, k := range ks {
		out = append(out, SharingPoint{
			K:          k,
			Budget:     2 * k,
			SharedMax:  rep.Cells[3*i].MeanMax,
			StaleMax:   rep.Cells[3*i+1].MeanMax,
			DChoiceMax: rep.Cells[3*i+2].MeanMax,
		})
	}
	return out, nil
}
