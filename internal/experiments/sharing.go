package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// SharingPoint compares, at one probe budget, the paper's shared-batch
// (k,d)-choice against the stale parallel baseline (each ball probing
// independently against round-start loads) and against sequential d-choice
// with the same per-ball probe count.
type SharingPoint struct {
	K          int
	Budget     int // probes per round for the shared batch (= d)
	SharedMax  float64
	StaleMax   float64
	DChoiceMax float64
}

// SharingAblation runs the information-sharing ablation (AB2): for each k,
// the probe budget is 2k per round, spent either as one shared batch
// ((k,2k)-choice), as 2 stale probes per ball (parallel model of the
// paper's refs [1,16]), or as sequential per-ball two-choice.
func SharingAblation(n, runs int, seed uint64, ks []int) ([]SharingPoint, error) {
	if len(ks) == 0 {
		ks = []int{2, 4, 8, 16}
	}
	out := make([]SharingPoint, 0, len(ks))
	for i, k := range ks {
		shared, err := sim.Run(sim.Config{
			Policy: core.KDChoice, Params: core.Params{N: n, K: k, D: 2 * k},
			Runs: runs, Seed: seed + uint64(i)*17,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: sharing shared k=%d: %w", k, err)
		}
		stale, err := sim.Run(sim.Config{
			Policy: core.StaleBatch, Params: core.Params{N: n, K: k, D: 2},
			Runs: runs, Seed: seed + uint64(i)*17 + 3,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: sharing stale k=%d: %w", k, err)
		}
		seq, err := sim.Run(sim.Config{
			Policy: core.DChoice, Params: core.Params{N: n, D: 2},
			Runs: runs, Seed: seed + uint64(i)*17 + 7,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: sharing dchoice k=%d: %w", k, err)
		}
		out = append(out, SharingPoint{
			K:          k,
			Budget:     2 * k,
			SharedMax:  shared.MaxStats().Mean(),
			StaleMax:   stale.MaxStats().Mean(),
			DChoiceMax: seq.MaxStats().Mean(),
		})
	}
	return out, nil
}
