package experiments

// The online-serving study: the gap under churn instead of after a one-shot
// placement. OnlineServing walks the (β, departure-rate) grid of the
// (1+β)-capable serving family — each cell a churned insert/delete stream
// served through the deletion-aware allocator — and reports the end-state
// gap and the amortized message cost, the two axes of the serving tradeoff:
// larger β probes more per insert but holds the gap down as churn rises.

import (
	"fmt"

	kdchoice "repro"
)

// OnlineServingOpts configures the online-serving study.
type OnlineServingOpts struct {
	// Bins is the number of bins n (default 100_000).
	Bins int
	// D is the probe count of the β-branch (default 2).
	D int
	// Ops is the number of stream operations per run (default 10·Bins).
	Ops int
	// Betas lists the (1+β) mixing probabilities (default 0, 0.5, 1).
	Betas []float64
	// ChurnRates lists the per-ball departure rates μ at unit arrival rate
	// (default 0, 0.2, 0.5 — insert-only through heavy churn).
	ChurnRates []float64
	// Weights draws ball weights (zero value: unit weights).
	Weights kdchoice.Dist
	// DeleteLoaded switches every cell to the adversarial
	// delete-the-loaded victim rule.
	DeleteLoaded bool
	// Store selects the bin-load representation; nil means the study
	// default, StoreHist (O(1) amortized deletes).
	Store *kdchoice.Store
	// Runs is the number of independent runs per cell (default 3).
	Runs int
	// Seed is the root seed.
	Seed uint64
	// Workers bounds the shared pool; 0 means GOMAXPROCS.
	Workers int
}

func (o OnlineServingOpts) withDefaults() OnlineServingOpts {
	if o.Bins == 0 {
		o.Bins = 100_000
	}
	if o.D == 0 {
		o.D = 2
	}
	if len(o.Betas) == 0 {
		o.Betas = []float64{0, 0.5, 1}
	}
	if len(o.ChurnRates) == 0 {
		o.ChurnRates = []float64{0, 0.2, 0.5}
	}
	if o.Store == nil {
		def := kdchoice.StoreHist
		o.Store = &def
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	return o
}

// OnlineServingPoint is one (β, churn-rate) measurement of the serving
// study.
type OnlineServingPoint struct {
	// Beta and ChurnRate locate the cell on the grid.
	Beta      float64
	ChurnRate float64
	// MeanGap is the run-averaged end-state gap (max − mean load units).
	MeanGap float64
	// MeanMax is the run-averaged end-state maximum load.
	MeanMax float64
	// MsgsPerOp is the amortized message cost per stream operation — the
	// serving reading of the paper's message-cost axis.
	MsgsPerOp float64
}

// OnlineServing runs the (β, churn-rate) serving grid and returns one point
// per cell in grid order (β-major). The report is deterministic for any
// worker count.
func OnlineServing(opts OnlineServingOpts) ([]OnlineServingPoint, error) {
	o := opts.withDefaults()
	grid := kdchoice.ServeGrid{
		Bins:         o.Bins,
		D:            o.D,
		Ops:          o.Ops,
		Betas:        o.Betas,
		ChurnRates:   o.ChurnRates,
		Weights:      o.Weights,
		DeleteLoaded: o.DeleteLoaded,
		Store:        *o.Store,
		Runs:         o.Runs,
		Seed:         o.Seed,
		Workers:      o.Workers,
	}
	rep, err := grid.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: online serving: %w", err)
	}
	out := make([]OnlineServingPoint, 0, len(rep.Cells))
	i := 0
	for _, beta := range o.Betas {
		for _, mu := range o.ChurnRates {
			c := rep.Cells[i]
			i++
			out = append(out, OnlineServingPoint{
				Beta:      beta,
				ChurnRate: mu,
				MeanGap:   c.MeanGap,
				MeanMax:   c.MeanMaxLoad,
				MsgsPerOp: c.MessagesPerUnit,
			})
		}
	}
	return out, nil
}
