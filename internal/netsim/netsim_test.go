package netsim

import (
	"strings"
	"testing"

	"repro/internal/appevent"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/theory"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func baseConfig() Config {
	return Config{
		Servers: 128,
		K:       2,
		D:       3,
		Rounds:  64, // 128 balls
		Seed:    5,
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Servers = 0 }, "Servers"},
		{func(c *Config) { c.K = 0 }, "K"},
		{func(c *Config) { c.D = 2 }, "K"},
		{func(c *Config) { c.D = 500 }, "exceeds"},
		{func(c *Config) { c.Rounds = 0 }, "Rounds"},
		{func(c *Config) { c.Pipeline = -1 }, "Pipeline"},
	}
	for i, tc := range cases {
		cfg := baseConfig()
		tc.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("case %d: error %q does not mention %q", i, err, tc.want)
		}
	}
}

func TestConservation(t *testing.T) {
	cfg := baseConfig()
	st := MustRun(cfg)
	if got := st.Loads.Total(); got != cfg.Rounds*cfg.K {
		t.Fatalf("total load %d, want %d", got, cfg.Rounds*cfg.K)
	}
	if len(st.RoundLatencies) != cfg.Rounds {
		t.Fatalf("%d round latencies, want %d", len(st.RoundLatencies), cfg.Rounds)
	}
	if st.MaxLoad != st.Loads.Max() {
		t.Fatal("MaxLoad inconsistent with load vector")
	}
}

func TestDeterminism(t *testing.T) {
	a := MustRun(baseConfig())
	b := MustRun(baseConfig())
	if a.MaxLoad != b.MaxLoad || a.Messages != b.Messages || a.Makespan != b.Makespan {
		t.Fatal("same seed produced different runs")
	}
}

func TestMessageAccounting(t *testing.T) {
	cfg := baseConfig()
	st := MustRun(cfg)
	// ProbeMessages is the paper's cost measure: every sampled slot counts,
	// duplicates included, so it is exactly d per round — the documented
	// theory.Messages(k, d, k·rounds) figure.
	if st.ProbeMessages != int64(cfg.Rounds*cfg.D) {
		t.Fatalf("probe messages %d, want %d (d per round)", st.ProbeMessages, cfg.Rounds*cfg.D)
	}
	if want := theory.Messages(cfg.K, cfg.D, cfg.K*cfg.Rounds); st.ProbeMessages != want {
		t.Fatalf("probe messages %d disagree with theory.Messages %d", st.ProbeMessages, want)
	}
	// On the wire: one probe per distinct sampled server, one reply per
	// probe, k placements per round. Total sends follow exactly.
	if st.ProbesSent > st.ProbeMessages || st.ProbesSent < int64(cfg.Rounds) {
		t.Fatalf("probes sent %d outside [rounds, probe messages] = [%d, %d]",
			st.ProbesSent, cfg.Rounds, st.ProbeMessages)
	}
	if want := 2*st.ProbesSent + int64(cfg.Rounds*cfg.K); st.Messages != want {
		t.Fatalf("total messages %d, want 2·%d probes/replies + %d placements = %d",
			st.Messages, st.ProbesSent, cfg.Rounds*cfg.K, want)
	}
}

// TestDuplicatesPiggybacked: with D == Servers, duplicate samples are
// certain at D > 1... not quite — with replacement, collisions are merely
// overwhelmingly likely over many rounds. Force the degenerate 2-server
// protocol and verify duplicate slots are charged to ProbeMessages but not
// sent as extra probes.
func TestDuplicatesPiggybacked(t *testing.T) {
	cfg := Config{Servers: 2, K: 1, D: 2, Rounds: 200, Seed: 5}
	st := MustRun(cfg)
	if st.ProbeMessages != int64(cfg.Rounds*cfg.D) {
		t.Fatalf("probe messages %d, want %d", st.ProbeMessages, cfg.Rounds*cfg.D)
	}
	// Over 200 rounds of sampling 2-of-2 with replacement, some round
	// certainly sampled one server twice (p = 1/2 per round).
	if st.ProbesSent == st.ProbeMessages {
		t.Fatal("no duplicate was piggybacked in 200 rounds of 2-of-2 sampling")
	}
	if want := 2*st.ProbesSent + int64(cfg.Rounds*cfg.K); st.Messages != want {
		t.Fatalf("total messages %d, want %d", st.Messages, want)
	}
}

// TestObserverRounds: the per-round observer must see every round exactly
// once with consistent cumulative counters, and observation must not change
// the outcome.
func TestObserverRounds(t *testing.T) {
	plain := MustRun(baseConfig())
	cfg := baseConfig()
	var rounds int
	var lastBalls int
	var lastMessages int64
	cfg.Observer = func(ev appevent.Round) {
		rounds++
		if ev.Round != rounds {
			t.Fatalf("round numbering: got %d, want %d", ev.Round, rounds)
		}
		if len(ev.Samples) != cfg.D {
			t.Fatalf("round %d: %d samples, want %d", ev.Round, len(ev.Samples), cfg.D)
		}
		if len(ev.Placed) != cfg.K || len(ev.Heights) != cfg.K {
			t.Fatalf("round %d: %d placed / %d heights, want %d", ev.Round, len(ev.Placed), len(ev.Heights), cfg.K)
		}
		if ev.Balls != rounds*cfg.K {
			t.Fatalf("round %d: cumulative balls %d, want %d", ev.Round, ev.Balls, rounds*cfg.K)
		}
		if ev.Messages <= lastMessages || ev.Balls <= lastBalls && rounds > 1 {
			t.Fatalf("round %d: counters not increasing", ev.Round)
		}
		lastBalls, lastMessages = ev.Balls, ev.Messages
	}
	st := MustRun(cfg)
	if rounds != cfg.Rounds {
		t.Fatalf("observed %d rounds, want %d", rounds, cfg.Rounds)
	}
	if st.MaxLoad != plain.MaxLoad || st.Messages != plain.Messages || st.Makespan != plain.Makespan {
		t.Fatal("attaching an observer changed the run outcome")
	}
}

func TestRoundLatencyDeterministicDelay(t *testing.T) {
	cfg := baseConfig()
	cfg.NetDelay = workload.Deterministic(1)
	st := MustRun(cfg)
	// probe (1) + reply (1) + placement (1) = 3 time units per round.
	for i, l := range st.RoundLatencies {
		if l != 3 {
			t.Fatalf("round %d latency %v, want 3", i, l)
		}
	}
	// Sequential pipeline: makespan = 3 * rounds.
	if st.Makespan != float64(3*cfg.Rounds) {
		t.Fatalf("makespan %v, want %v", st.Makespan, 3*cfg.Rounds)
	}
}

// TestSequentialMatchesCoreDistribution: with Pipeline=1 the network
// protocol is the paper's process; its max-load distribution must match
// internal/core's KDChoice.
func TestSequentialMatchesCoreDistribution(t *testing.T) {
	const n, k, d, runs = 256, 2, 4, 250
	var netMean, coreMean stats.Online
	for i := 0; i < runs; i++ {
		st := MustRun(Config{
			Servers: n, K: k, D: d, Rounds: n / k, Seed: uint64(1000 + i),
		})
		netMean.Add(float64(st.MaxLoad))
		pr := core.MustNew(core.KDChoice, core.Params{N: n, K: k, D: d}, xrand.NewStream(7, uint64(i)))
		pr.Place(n)
		coreMean.Add(float64(pr.MaxLoad()))
	}
	if diff := netMean.Mean() - coreMean.Mean(); diff < -0.2 || diff > 0.2 {
		t.Fatalf("network mean max %.3f vs core %.3f", netMean.Mean(), coreMean.Mean())
	}
}

// TestPipelineStalenessDegradesBalance: concurrent dispatchers see stale
// loads, so deep pipelines should not improve balance — and with heavy
// concurrency the max load must be at least as bad as sequential.
func TestPipelineStalenessDegradesBalance(t *testing.T) {
	const runs = 60
	mean := func(pipeline int, seed uint64) float64 {
		var o stats.Online
		for i := 0; i < runs; i++ {
			st := MustRun(Config{
				Servers: 256, K: 2, D: 4, Rounds: 128,
				Pipeline: pipeline,
				NetDelay: workload.Exponential(1),
				Seed:     seed + uint64(i),
			})
			o.Add(float64(st.MaxLoad))
		}
		return o.Mean()
	}
	seq := mean(1, 100)
	deep := mean(64, 200)
	if deep < seq-0.1 {
		t.Fatalf("deep pipeline %.3f mysteriously better than sequential %.3f", deep, seq)
	}
}

// TestPipelineSpeedsUpMakespan: the point of pipelining — wall-clock
// completion shrinks even though balance may suffer.
func TestPipelineSpeedsUpMakespan(t *testing.T) {
	cfg := baseConfig()
	cfg.Rounds = 128
	cfg.NetDelay = workload.Deterministic(1)
	seq := MustRun(cfg)
	cfg.Pipeline = 16
	par := MustRun(cfg)
	if par.Makespan >= seq.Makespan {
		t.Fatalf("pipelined makespan %v not faster than sequential %v", par.Makespan, seq.Makespan)
	}
	// Total work is identical.
	if par.Loads.Total() != seq.Loads.Total() {
		t.Fatal("pipelining changed the ball count")
	}
}

func TestMeanRoundLatency(t *testing.T) {
	cfg := baseConfig()
	cfg.NetDelay = workload.Deterministic(2)
	st := MustRun(cfg)
	if got := st.MeanRoundLatency(); got != 6 {
		t.Fatalf("mean latency %v, want 6", got)
	}
}

func TestPipelineZeroDefaultsToOne(t *testing.T) {
	cfg := baseConfig()
	cfg.Pipeline = 0
	st := MustRun(cfg)
	if st.Loads.Total() != cfg.Rounds*cfg.K {
		t.Fatal("default pipeline run broken")
	}
}
