// Package netsim runs the (k,d)-choice allocation as an actual distributed
// protocol over a simulated network, making the paper's cost measure — "the
// number of bins to be probed" — literal: every probe, reply, and placement
// is a network message with latency.
//
// Topology: one or more dispatcher (front-end) nodes place balls onto n
// server nodes. A round at a dispatcher is a three-phase protocol:
//
//  1. PROBE: the dispatcher samples d servers (with replacement, as in the
//     paper) and sends each distinct server one probe message.
//  2. REPLY: each probed server reports its current load after a network
//     delay.
//  3. PLACE: when all replies have arrived the dispatcher applies the
//     (k,d)-choice rule (k lowest slots, a server sampled m times receives
//     at most m balls) and sends placement messages; servers increment
//     their load when the placement arrives.
//
// With a single dispatcher the protocol reproduces the sequential process
// exactly. With several concurrent dispatchers the load information in
// replies goes STALE while placements are in flight — the distributed-
// systems phenomenon (herding) that the paper's synchronous model abstracts
// away. The Pipeline knob measures how much balance degrades with
// concurrency, complementing the StaleBatch ablation in internal/core.
package netsim

import (
	"fmt"
	"sort"

	"repro/internal/appevent"
	"repro/internal/eventsim"
	"repro/internal/loadvec"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Config describes a protocol run.
type Config struct {
	// Servers is the number of server nodes (bins), >= 1.
	Servers int
	// K and D are the (k,d)-choice parameters (1 <= K < D <= Servers).
	K, D int
	// Rounds is the number of allocation rounds; Rounds*K balls total.
	Rounds int
	// Pipeline is the number of dispatchers running rounds concurrently
	// (default 1 = the paper's sequential process).
	Pipeline int
	// NetDelay is the one-way message latency distribution; the zero value
	// means Deterministic(1).
	NetDelay workload.Dist
	// Seed makes the run reproducible.
	Seed uint64
	// Observer, when non-nil, receives one appevent.Round per completed
	// protocol round, numbered in completion order (pipelined rounds can
	// finish out of launch order). The protocol performs no observation
	// bookkeeping when it is nil.
	Observer appevent.Observer
}

// Validate reports whether the configuration is runnable; it is the check
// Run applies before starting. Exposed so batch harnesses can validate
// every cell before dispatching any work.
func (c Config) Validate() error { return c.validate() }

func (c Config) validate() error {
	if c.Servers < 1 {
		return fmt.Errorf("netsim: Servers = %d, need >= 1", c.Servers)
	}
	if c.K < 1 || c.D <= c.K {
		return fmt.Errorf("netsim: need 1 <= K < D, got K=%d D=%d", c.K, c.D)
	}
	if c.D > c.Servers {
		return fmt.Errorf("netsim: D = %d exceeds Servers = %d", c.D, c.Servers)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("netsim: Rounds = %d, need >= 1", c.Rounds)
	}
	if c.Pipeline < 0 {
		return fmt.Errorf("netsim: Pipeline = %d, need >= 0", c.Pipeline)
	}
	return nil
}

// Stats summarizes a finished run.
type Stats struct {
	// Messages is the total number of messages actually sent over the
	// network: probe sends + replies + placements. A server sampled m > 1
	// times in one round receives a single probe message covering all its
	// slots (the reply piggybacks every slot), so duplicates do not appear
	// here.
	Messages int64
	// ProbeMessages is the paper's cost measure — "the number of bins to be
	// probed": all d sampled slots of every round, duplicates included.
	// It always equals d × rounds, matching theory.Messages(k, d, k·rounds).
	ProbeMessages int64
	// ProbesSent counts the probe messages actually sent (one per DISTINCT
	// sampled server per round), so ProbeMessages − ProbesSent is the
	// number of duplicate slots piggybacked for free, and
	// Messages = 2·ProbesSent + placements (each probe gets one reply).
	ProbesSent int64
	// MaxLoad is the final maximum server load.
	MaxLoad int
	// Loads is the final load vector.
	Loads loadvec.Vector
	// RoundLatencies holds each round's probe-to-last-placement latency.
	RoundLatencies []float64
	// Makespan is the simulated completion time.
	Makespan float64
}

// MeanRoundLatency returns the average round latency.
func (s *Stats) MeanRoundLatency() float64 { return stats.Mean(s.RoundLatencies) }

// Run executes the protocol and returns its statistics.
func Run(cfg Config) (*Stats, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Pipeline == 0 {
		cfg.Pipeline = 1
	}
	if cfg.NetDelay.Mean() == 0 {
		cfg.NetDelay = workload.Deterministic(1)
	}
	r := &runner{
		cfg:   cfg,
		rng:   xrand.New(cfg.Seed),
		loads: make([]int, cfg.Servers),
		st:    &Stats{RoundLatencies: make([]float64, 0, cfg.Rounds)},
	}
	// Launch the initial window of concurrent rounds; each completed round
	// starts the next pending one.
	r.remaining = cfg.Rounds
	launch := cfg.Pipeline
	if launch > cfg.Rounds {
		launch = cfg.Rounds
	}
	for i := 0; i < launch; i++ {
		r.startRound()
	}
	r.sim.Run()
	r.st.Loads = loadvec.Vector(r.loads)
	r.st.MaxLoad = r.st.Loads.Max()
	r.st.Makespan = r.sim.Now()
	return r.st, nil
}

// MustRun is Run but panics on error.
func MustRun(cfg Config) *Stats {
	st, err := Run(cfg)
	if err != nil {
		panic(err)
	}
	return st
}

type runner struct {
	cfg       Config
	sim       eventsim.Sim
	rng       *xrand.Rand
	loads     []int
	st        *Stats
	remaining int

	// Observation state, touched only when cfg.Observer is non-nil.
	obsRound  int
	obsBalls  int
	obsPlaced []int
	obsHeight []int
}

// roundState tracks one in-flight round at a dispatcher.
type roundState struct {
	samples   []int // d sampled servers (sorted, with duplicates)
	replies   map[int]int
	waitingOn int
	started   float64
}

func (r *runner) delay() float64 { return r.cfg.NetDelay.Sample(r.rng) }

// startRound begins one protocol round if any remain.
func (r *runner) startRound() {
	if r.remaining == 0 {
		return
	}
	r.remaining--
	rs := &roundState{
		samples: make([]int, r.cfg.D),
		replies: make(map[int]int, r.cfg.D),
		started: r.sim.Now(),
	}
	r.rng.FillIntn(rs.samples, r.cfg.Servers)
	sort.Ints(rs.samples)
	// The paper's cost measure charges every sampled slot, so ProbeMessages
	// grows by d per round even when a server is sampled more than once.
	r.st.ProbeMessages += int64(len(rs.samples))
	// On the wire, one probe per DISTINCT server suffices: its reply covers
	// all of the server's slots, so duplicates ride along for free. Only
	// these distinct sends count toward Messages (and ProbesSent).
	prev := -1
	for _, sv := range rs.samples {
		if sv == prev {
			continue
		}
		prev = sv
		rs.waitingOn++
		sv := sv
		r.st.Messages++ // probe
		r.st.ProbesSent++
		if err := r.sim.Schedule(r.delay(), func() { r.serverProbed(sv, rs) }); err != nil {
			panic(err)
		}
	}
}

// serverProbed runs at the server when the probe arrives: it replies with
// its current load.
func (r *runner) serverProbed(sv int, rs *roundState) {
	load := r.loads[sv]
	r.st.Messages++ // reply
	if err := r.sim.Schedule(r.delay(), func() { r.dispatcherReply(sv, load, rs) }); err != nil {
		panic(err)
	}
}

// dispatcherReply runs at the dispatcher when a load reply arrives.
func (r *runner) dispatcherReply(sv, load int, rs *roundState) {
	rs.replies[sv] = load
	rs.waitingOn--
	if rs.waitingOn > 0 {
		return
	}
	// All replies in: apply the (k,d) slot rule on the REPORTED loads.
	type slot struct {
		server int
		height int
		tie    uint64
	}
	slots := make([]slot, 0, len(rs.samples))
	prev := -1
	mult := 0
	for _, s := range rs.samples {
		if s == prev {
			mult++
		} else {
			mult = 1
			prev = s
		}
		slots = append(slots, slot{server: s, height: rs.replies[s] + mult, tie: r.rng.Uint64()})
	}
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].height != slots[j].height {
			return slots[i].height < slots[j].height
		}
		return slots[i].tie < slots[j].tie
	})
	observing := r.cfg.Observer != nil
	if observing {
		r.obsPlaced = r.obsPlaced[:0]
		r.obsHeight = r.obsHeight[:0]
	}
	placementsLeft := r.cfg.K
	var lastArrival float64
	for i := 0; i < placementsLeft && i < len(slots); i++ {
		sv := slots[i].server
		r.st.Messages++ // placement
		d := r.delay()
		if r.sim.Now()+d > lastArrival {
			lastArrival = r.sim.Now() + d
		}
		if observing {
			r.obsPlaced = append(r.obsPlaced, sv)
			r.obsHeight = append(r.obsHeight, slots[i].height)
		}
		if err := r.sim.Schedule(d, func() { r.loads[sv]++ }); err != nil {
			panic(err)
		}
	}
	// A round is observed when its placement decision is made: Heights are
	// the slot heights of the (k,d) rule on the REPORTED loads, and MaxLoad
	// is the dispatcher-visible state (in-flight placements of concurrent
	// rounds have not landed yet).
	if observing {
		r.obsRound++
		r.obsBalls += len(r.obsPlaced)
		maxLoad := 0
		for _, l := range r.loads {
			if l > maxLoad {
				maxLoad = l
			}
		}
		r.cfg.Observer(appevent.Round{
			Round:    r.obsRound,
			Samples:  rs.samples,
			Placed:   r.obsPlaced,
			Heights:  r.obsHeight,
			Bins:     r.cfg.Servers,
			Balls:    r.obsBalls,
			MaxLoad:  maxLoad,
			Messages: r.st.Messages,
		})
	}
	// Record latency as of the last placement's arrival and pipeline the
	// next round.
	started := rs.started
	if err := r.sim.At(lastArrival, func() {
		r.st.RoundLatencies = append(r.st.RoundLatencies, r.sim.Now()-started)
		r.startRound()
	}); err != nil {
		panic(err)
	}
}
