package cluster

// Late binding (Sparrow, the paper's reference [12]). Instead of committing
// each task to a worker based on probed queue lengths — information that is
// stale by the time the task runs — the job enqueues D lightweight
// reservations and lets the first K workers that actually become free pull
// the K tasks. This is (k,d)-choice evaluated on true availability order
// rather than the queue-length proxy, and it composes naturally with the
// paper's batch-probing message economics: D reservation messages per job
// (the probe-cost analogue), counted in Metrics.Probes like BatchKD's D
// probes.

// placeLateBinding enqueues d reservations for a job of k tasks arriving
// now. The job's task durations were pre-sampled into r.durs and must be
// copied because the buffer is reused by the next arrival.
func (r *runner) placeLateBinding(arrival float64, k int) {
	d := r.cfg.D
	r.metrics.Probes += int64(d)
	job := &lateJob{
		arrival:   arrival,
		durs:      append([]float64(nil), r.durs[:k]...),
		remaining: k,
	}
	observing := r.cfg.Observer != nil
	r.rng.FillIntn(r.samples[:d], len(r.workers))
	for _, w := range r.samples[:d] {
		wk := &r.workers[w]
		depth := len(wk.resQueue)
		if wk.busy {
			depth++
		}
		if depth > r.metrics.MaxQueueSeen {
			r.metrics.MaxQueueSeen = depth
		}
		wk.resQueue = append(wk.resQueue, &reservation{job: job})
		if observing {
			r.obsSamples = append(r.obsSamples, w)
			r.obsHeights = append(r.obsHeights, depth+1)
		}
		r.latePull(w)
	}
	// A late-binding "round" is the reservation batch: Placed mirrors the
	// sampled workers (one reservation each) and Heights holds each
	// reservation's queue depth at enqueue time; the job's k tasks count as
	// placed now for the cumulative Balls figure, even though workers pull
	// them later.
	if observing {
		r.obsTasks += k
		r.emitRound(r.obsSamples, r.obsSamples, r.obsHeights)
	}
}

// latePull lets worker w pull work if it is idle: reservations whose job
// has no tasks left are discarded (lazy cancellation), the first live one
// launches a task.
func (r *runner) latePull(w int) {
	wk := &r.workers[w]
	if wk.busy {
		return
	}
	for len(wk.resQueue) > 0 {
		res := wk.resQueue[0]
		wk.resQueue = wk.resQueue[1:]
		job := res.job
		if job.nextTask >= len(job.durs) {
			continue // all tasks claimed elsewhere; reservation cancelled
		}
		dur := job.durs[job.nextTask]
		job.nextTask++
		now := r.sim.Now()
		r.metrics.TaskWaits = append(r.metrics.TaskWaits, now-job.arrival)
		wk.busy = true
		finishAt := now + dur
		if err := r.sim.At(finishAt, func() {
			wk.busy = false
			job.remaining--
			if job.remaining == 0 {
				r.metrics.ResponseTimes = append(r.metrics.ResponseTimes, finishAt-job.arrival)
				if finishAt > r.metrics.Makespan {
					r.metrics.Makespan = finishAt
				}
			}
			r.latePull(w)
		}); err != nil {
			panic(err) // finishAt >= now by construction
		}
		return
	}
}
