package cluster

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func baseConfig() Config {
	return Config{
		NumWorkers: 50,
		K:          4,
		D:          8,
		Jobs:       500,
		Rho:        0.7,
		TaskDist:   workload.Exponential(1.0),
		Policy:     BatchKD,
		Seed:       42,
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.NumWorkers = 0 }, "NumWorkers"},
		{func(c *Config) { c.K = 0 }, "K ="},
		{func(c *Config) { c.Jobs = 0 }, "Jobs"},
		{func(c *Config) { c.Rho = 0 }, "Rho"},
		{func(c *Config) { c.Rho = 1 }, "Rho"},
		{func(c *Config) { c.TaskDist = workload.Dist{} }, "TaskDist"},
		{func(c *Config) { c.D = 4 }, "D > K"},
		{func(c *Config) { c.D = 51 }, "D <= NumWorkers"},
		{func(c *Config) { c.Policy = PlacementPolicy(9) }, "unknown policy"},
		{func(c *Config) { c.Policy = PerTaskD; c.DPerTask = 99 }, "DPerTask"},
	}
	for i, tc := range cases {
		cfg := baseConfig()
		tc.mutate(&cfg)
		_, err := Run(cfg)
		if err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("case %d: error %q does not mention %q", i, err, tc.want)
		}
	}
}

func TestRunCompletesAllJobs(t *testing.T) {
	for _, policy := range []PlacementPolicy{BatchKD, PerTaskD, RandomPlace} {
		cfg := baseConfig()
		cfg.Policy = policy
		m := MustRun(cfg)
		if m.JobsRun != cfg.Jobs {
			t.Fatalf("%v: %d jobs completed, want %d", policy, m.JobsRun, cfg.Jobs)
		}
		if len(m.TaskWaits) != cfg.Jobs*cfg.K {
			t.Fatalf("%v: %d task waits, want %d", policy, len(m.TaskWaits), cfg.Jobs*cfg.K)
		}
		if m.Makespan <= 0 {
			t.Fatalf("%v: makespan %v", policy, m.Makespan)
		}
		for _, rt := range m.ResponseTimes {
			if rt <= 0 {
				t.Fatalf("%v: non-positive response time %v", policy, rt)
			}
		}
		for _, w := range m.TaskWaits {
			if w < 0 {
				t.Fatalf("%v: negative wait %v", policy, w)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := baseConfig()
	a := MustRun(cfg)
	b := MustRun(cfg)
	if a.MeanResponse() != b.MeanResponse() || a.Probes != b.Probes {
		t.Fatal("same seed produced different metrics")
	}
	cfg.Seed = 43
	c := MustRun(cfg)
	if a.MeanResponse() == c.MeanResponse() {
		t.Fatal("different seeds produced identical mean response (suspicious)")
	}
}

func TestProbeAccounting(t *testing.T) {
	cfg := baseConfig()
	m := MustRun(cfg)
	// BatchKD: exactly D probes per job.
	if want := int64(cfg.Jobs) * int64(cfg.D); m.Probes != want {
		t.Fatalf("batch probes = %d, want %d", m.Probes, want)
	}
	if got := m.ProbesPerJob(); got != float64(cfg.D) {
		t.Fatalf("ProbesPerJob = %v", got)
	}

	cfg.Policy = PerTaskD
	cfg.DPerTask = 2
	m2 := MustRun(cfg)
	if want := int64(cfg.Jobs) * int64(cfg.K*2); m2.Probes != want {
		t.Fatalf("per-task probes = %d, want %d", m2.Probes, want)
	}

	cfg.Policy = RandomPlace
	m3 := MustRun(cfg)
	if want := int64(cfg.Jobs) * int64(cfg.K); m3.Probes != want {
		t.Fatalf("random probes = %d, want %d", m3.Probes, want)
	}
}

func TestPerTaskDefaultsToTwo(t *testing.T) {
	cfg := baseConfig()
	cfg.Policy = PerTaskD
	cfg.DPerTask = 0
	m := MustRun(cfg)
	if want := int64(cfg.Jobs) * int64(cfg.K*2); m.Probes != want {
		t.Fatalf("default DPerTask probes = %d, want %d", m.Probes, want)
	}
}

// TestBatchBeatsRandom: sharing probes must beat blind placement on mean
// response time at moderate load.
func TestBatchBeatsRandom(t *testing.T) {
	cfg := baseConfig()
	cfg.Jobs = 2000
	batch := MustRun(cfg)
	cfg.Policy = RandomPlace
	random := MustRun(cfg)
	if batch.MeanResponse() >= random.MeanResponse() {
		t.Fatalf("batch mean response %.3f not better than random %.3f",
			batch.MeanResponse(), random.MeanResponse())
	}
}

// TestBatchBeatsPerTaskTail reproduces the paper's Section 1.3 argument: as
// job parallelism k grows, per-task probing suffers in the tail because the
// job waits for its unluckiest task, while batch sampling shares probe
// information across the whole job. Compare p95 response at equal TOTAL
// probe budget (batch D = 2k vs per-task d = 2).
func TestBatchBeatsPerTaskTail(t *testing.T) {
	mk := func(policy PlacementPolicy) *Metrics {
		cfg := Config{
			NumWorkers: 100,
			K:          8,
			D:          16,
			DPerTask:   2,
			Jobs:       3000,
			Rho:        0.85,
			TaskDist:   workload.Exponential(1.0),
			Policy:     policy,
			Seed:       7,
		}
		return MustRun(cfg)
	}
	batch := mk(BatchKD)
	perTask := mk(PerTaskD)
	if batch.Probes != perTask.Probes {
		t.Fatalf("probe budgets differ: %d vs %d", batch.Probes, perTask.Probes)
	}
	b95 := batch.ResponseQuantile(0.95)
	p95 := perTask.ResponseQuantile(0.95)
	if b95 >= p95 {
		t.Fatalf("batch p95 %.3f not better than per-task p95 %.3f", b95, p95)
	}
}

func TestResponseAtLeastMaxTaskDuration(t *testing.T) {
	// With deterministic unit tasks, every response time is >= 1 and every
	// wait is a non-negative integer multiple of 1 on an idle system.
	cfg := baseConfig()
	cfg.TaskDist = workload.Deterministic(1.0)
	cfg.Rho = 0.3
	m := MustRun(cfg)
	for _, rt := range m.ResponseTimes {
		if rt < 1.0-1e-9 {
			t.Fatalf("response %v below task duration", rt)
		}
	}
}

func TestMaxQueueSeenPositiveUnderLoad(t *testing.T) {
	cfg := baseConfig()
	cfg.Rho = 0.9
	cfg.Jobs = 1500
	m := MustRun(cfg)
	if m.MaxQueueSeen < 1 {
		t.Fatalf("MaxQueueSeen = %d at rho=0.9; queues should form", m.MaxQueueSeen)
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []PlacementPolicy{BatchKD, PerTaskD, RandomPlace} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
	if !strings.Contains(PlacementPolicy(77).String(), "77") {
		t.Fatal("unknown policy String")
	}
}

func TestEmptyMetricsAccessors(t *testing.T) {
	m := &Metrics{}
	if m.ProbesPerJob() != 0 {
		t.Fatal("ProbesPerJob on empty metrics")
	}
	if m.MeanResponse() != 0 {
		t.Fatal("MeanResponse on empty metrics")
	}
}
