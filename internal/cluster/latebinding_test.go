package cluster

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func lateConfig() Config {
	return Config{
		NumWorkers: 50,
		K:          4,
		D:          8,
		Jobs:       800,
		Rho:        0.7,
		TaskDist:   workload.Exponential(1.0),
		Policy:     LateBinding,
		Seed:       42,
	}
}

func TestLateBindingCompletesAllJobs(t *testing.T) {
	cfg := lateConfig()
	m := MustRun(cfg)
	if m.JobsRun != cfg.Jobs {
		t.Fatalf("%d jobs completed, want %d", m.JobsRun, cfg.Jobs)
	}
	if len(m.TaskWaits) != cfg.Jobs*cfg.K {
		t.Fatalf("%d task launches, want %d (every task must run exactly once)",
			len(m.TaskWaits), cfg.Jobs*cfg.K)
	}
	for _, rt := range m.ResponseTimes {
		if rt <= 0 {
			t.Fatalf("non-positive response %v", rt)
		}
	}
	for _, w := range m.TaskWaits {
		if w < 0 {
			t.Fatalf("negative wait %v", w)
		}
	}
}

func TestLateBindingValidation(t *testing.T) {
	cfg := lateConfig()
	cfg.D = 3 // fewer reservations than tasks
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "D >= K") {
		t.Fatalf("D < K accepted: %v", err)
	}
	cfg = lateConfig()
	cfg.D = 51
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "NumWorkers") {
		t.Fatalf("D > workers accepted: %v", err)
	}
	// D == K is legal (no slack, still correct).
	cfg = lateConfig()
	cfg.D = cfg.K
	m := MustRun(cfg)
	if m.JobsRun != cfg.Jobs {
		t.Fatal("D == K run incomplete")
	}
}

func TestLateBindingProbeAccounting(t *testing.T) {
	cfg := lateConfig()
	m := MustRun(cfg)
	if want := int64(cfg.Jobs) * int64(cfg.D); m.Probes != want {
		t.Fatalf("probes %d, want %d (D reservations per job)", m.Probes, want)
	}
}

func TestLateBindingDeterminism(t *testing.T) {
	a := MustRun(lateConfig())
	b := MustRun(lateConfig())
	if a.MeanResponse() != b.MeanResponse() || a.Makespan != b.Makespan {
		t.Fatal("same seed produced different runs")
	}
}

func TestLateBindingName(t *testing.T) {
	if LateBinding.String() != "late-binding" {
		t.Fatalf("name %q", LateBinding.String())
	}
}

// TestLateBindingBeatsBatchTail reproduces Sparrow's core finding: at equal
// reservation/probe budget, pulling work on actual availability beats
// binding on stale queue lengths, especially in the tail.
func TestLateBindingBeatsBatchTail(t *testing.T) {
	mk := func(policy PlacementPolicy) *Metrics {
		cfg := Config{
			NumWorkers: 100,
			K:          8,
			D:          16,
			Jobs:       3000,
			Rho:        0.85,
			TaskDist:   workload.Exponential(1.0),
			Policy:     policy,
			Seed:       7,
		}
		return MustRun(cfg)
	}
	late := mk(LateBinding)
	batch := mk(BatchKD)
	if late.Probes != batch.Probes {
		t.Fatalf("probe budgets differ: %d vs %d", late.Probes, batch.Probes)
	}
	if late.ResponseQuantile(0.95) >= batch.ResponseQuantile(0.95) {
		t.Fatalf("late-binding p95 %.3f not better than batch %.3f",
			late.ResponseQuantile(0.95), batch.ResponseQuantile(0.95))
	}
	if late.MeanResponse() >= batch.MeanResponse() {
		t.Fatalf("late-binding mean %.3f not better than batch %.3f",
			late.MeanResponse(), batch.MeanResponse())
	}
}

// TestLateBindingIdleCluster: on an idle cluster every task starts
// immediately, so each job's response equals its longest task duration.
func TestLateBindingIdleCluster(t *testing.T) {
	cfg := lateConfig()
	cfg.Rho = 0.05 // nearly idle
	cfg.TaskDist = workload.Deterministic(2.0)
	cfg.Jobs = 200
	m := MustRun(cfg)
	// With deterministic durations and an idle cluster, response ~= 2.0
	// for nearly every job.
	if q := m.ResponseQuantile(0.5); q != 2.0 {
		t.Fatalf("idle median response %v, want 2.0", q)
	}
	if w := m.MeanWait(); w > 0.2 {
		t.Fatalf("idle mean wait %v too high", w)
	}
}
